// Quickstart: generate basket data, mine association rules sequentially.
//
//   $ quickstart [--transactions 20000] [--minsup 0.01] [--minconf 0.6]
//
// This is the five-minute tour of the mining substrate: the Quest workload
// generator, the Apriori miner, and rule derivation. For the cluster and
// remote-memory machinery, see remote_memory_cluster and migration_failover.
#include <cstdio>

#include "common/flags.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"
#include "mining/rules.hpp"

using namespace rms;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"transactions", "number of transactions (default 20000)"},
               {"items", "item universe size (default 300)"},
               {"minsup", "minimum support fraction (default 0.01)"},
               {"minconf", "minimum confidence (default 0.6)"},
               {"corruption", "pattern corruption level 0-1 (default 0.25; "
                              "lower = stronger rules)"},
               {"seed", "workload seed (default 42)"}});

  // 1. Generate synthetic basket data (Agrawal-Srikant Quest generator).
  mining::QuestParams params;
  params.num_transactions = flags.get_int("transactions", 20'000);
  params.num_items = static_cast<std::uint32_t>(flags.get_int("items", 300));
  params.num_patterns = 80;
  params.corruption_mean = flags.get_double("corruption", 0.25);
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  mining::TransactionDb db = mining::QuestGenerator(params).generate();
  std::printf("generated %zu transactions over %u items (%.1f MB)\n",
              db.size(), params.num_items,
              static_cast<double>(db.approx_bytes()) / 1e6);

  // 2. Mine large itemsets with Apriori.
  const double minsup = flags.get_double("minsup", 0.01);
  const mining::AprioriResult mined = mining::apriori(db, minsup);
  std::printf("\nminimum support %.3f (>= %u transactions)\n", minsup,
              mined.min_count);
  std::printf("%-6s %-12s %-10s\n", "pass", "candidates", "large");
  for (const mining::PassInfo& p : mined.passes) {
    std::printf("%-6zu %-12lld %-10lld\n", p.k,
                static_cast<long long>(p.candidates),
                static_cast<long long>(p.large));
  }

  // 3. Derive association rules.
  const double minconf = flags.get_double("minconf", 0.6);
  const auto rules = mining::derive_rules(mined, minconf);
  std::printf("\n%zu rules with confidence >= %.2f; top 10:\n", rules.size(),
              minconf);
  for (std::size_t i = 0; i < rules.size() && i < 10; ++i) {
    std::printf("  %s\n", rules[i].to_string().c_str());
  }
  return 0;
}
