// Remote-memory cluster demo: run Hash Partitioned Apriori on the simulated
// ATM-connected PC cluster with a per-node memory limit, and compare what
// happens under each over-limit policy.
//
//   $ remote_memory_cluster                       # compact comparison
//   $ remote_memory_cluster --policy remote-update --limit-mb 1.2
//
// The workload is deliberately small so the demo runs in seconds; the bench
// binaries run the paper-scale experiments.
#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "hpa/hpa.hpp"
#include "hpa/report.hpp"

using namespace rms;

namespace {

hpa::HpaConfig demo_config() {
  hpa::HpaConfig cfg;
  cfg.app_nodes = 4;
  cfg.memory_nodes = 8;
  cfg.workload.num_transactions = 20'000;
  cfg.workload.num_items = 1'000;
  cfg.workload.seed = 7;
  cfg.min_support = 0.002;
  cfg.hash_lines = 40'000;
  cfg.max_k = 3;
  return cfg;
}

core::SwapPolicy parse_policy(const std::string& name) {
  if (name == "disk") return core::SwapPolicy::kDiskSwap;
  if (name == "remote-swap") return core::SwapPolicy::kRemoteSwap;
  if (name == "remote-update") return core::SwapPolicy::kRemoteUpdate;
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      {{"policy", "disk | remote-swap | remote-update (default: compare all)"},
       {"limit-mb", "per-node candidate memory limit in MB (default 0.8)"},
       {"memory-nodes", "memory-available nodes (default 8)"}});

  const double limit_mb = flags.get_double("limit-mb", 0.8);
  const auto limit = static_cast<std::int64_t>(limit_mb * 1e6);

  if (flags.has("policy")) {
    hpa::HpaConfig cfg = demo_config();
    cfg.memory_nodes =
        static_cast<std::size_t>(flags.get_int("memory-nodes", 8));
    cfg.memory_limit_bytes = limit;
    cfg.policy = parse_policy(flags.get("policy", ""));
    std::printf("running HPA: %s\n", hpa::describe(cfg).c_str());
    const hpa::HpaResult r = hpa::run_hpa(cfg);
    hpa::print_report(r);
    std::printf("\nnetwork: %lld messages, %.1f MB on the wire\n",
                static_cast<long long>(r.stats.counter("net.messages")),
                static_cast<double>(r.stats.counter("net.wire_bytes")) / 1e6);
    std::printf("mean fault latency: %.2f ms\n",
                r.stats.summary("store.fault_ms").mean());
    return 0;
  }

  // Default: the paper's headline comparison at demo scale.
  std::printf("HPA pass-2 time under a %.1f MB per-node candidate limit:\n\n",
              limit_mb);
  hpa::HpaConfig base = demo_config();
  const Time no_limit = hpa::run_hpa(base).pass(2)->duration;
  std::printf("  %-22s %8.2f s\n", "no limit", to_seconds(no_limit));
  for (core::SwapPolicy policy :
       {core::SwapPolicy::kDiskSwap, core::SwapPolicy::kRemoteSwap,
        core::SwapPolicy::kRemoteUpdate}) {
    hpa::HpaConfig cfg = demo_config();
    cfg.memory_limit_bytes = limit;
    cfg.policy = policy;
    const hpa::HpaResult r = hpa::run_hpa(cfg);
    std::int64_t updates = 0;
    for (std::int64_t v : r.pass(2)->updates_per_node) updates += v;
    std::printf("  %-22s %8.2f s   (max faults %lld, updates %lld)\n",
                core::to_string(policy), to_seconds(r.pass(2)->duration),
                static_cast<long long>(r.pass(2)->max_pagefaults()),
                static_cast<long long>(updates));
  }
  std::printf(
      "\nthe ordering (disk >> simple swapping > remote update ~ no limit) "
      "is the paper's Figure 4.\n");
  return 0;
}
