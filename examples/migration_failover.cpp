// Migration failover demo: memory-available nodes lose their free memory
// while they hold swapped-out hash lines; the availability monitors notice,
// the application nodes direct a migration, and mining finishes with every
// count intact.
//
//   $ migration_failover [--withdrawals 2] [--monitor-interval-ms 500]
//
// This is the paper's §4.2/Figure 5 scenario as a narrated run: the demo
// prints what moved where and proves the mining result is unchanged.
#include <cstdio>

#include "common/flags.hpp"
#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"

using namespace rms;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"withdrawals", "memory nodes to withdraw mid-run (default 2)"},
               {"monitor-interval-ms", "availability sampling period "
                                       "(default 500)"},
               {"limit-mb", "per-node candidate limit in MB (default 0.8)"}});

  hpa::HpaConfig cfg;
  cfg.app_nodes = 4;
  cfg.memory_nodes = 6;
  cfg.workload.num_transactions = 30'000;
  cfg.workload.num_items = 1'000;
  cfg.workload.seed = 13;
  cfg.min_support = 0.002;
  cfg.hash_lines = 40'000;
  cfg.max_k = 2;
  cfg.policy = core::SwapPolicy::kRemoteUpdate;
  cfg.memory_limit_bytes =
      static_cast<std::int64_t>(flags.get_double("limit-mb", 0.8) * 1e6);
  cfg.monitor_interval = msec(flags.get_int("monitor-interval-ms", 500));

  // Baseline: no withdrawals, to learn the timeline and the reference
  // mining result.
  std::printf("baseline run (all memory-available nodes stay available)...\n");
  const hpa::HpaResult baseline = hpa::run_hpa(cfg);
  const Time span = baseline.total_time;
  std::printf("  pass 2: %.2f s, swapped lines on memory nodes: %lld\n",
              to_seconds(baseline.pass(2)->duration),
              static_cast<long long>(
                  baseline.stats.counter("server.swap_out")));

  // Failover run: withdraw nodes mid-execution.
  const auto n_withdraw =
      static_cast<std::size_t>(flags.get_int("withdrawals", 2));
  hpa::HpaConfig failover = cfg;
  for (std::size_t w = 0; w < n_withdraw && w < cfg.memory_nodes; ++w) {
    failover.withdrawals.push_back(hpa::HpaConfig::Withdrawal{
        w, span / 2 + static_cast<Time>(w) * (span / 10)});
    std::printf(
        "scheduling withdrawal: memory node #%zu loses its free memory at "
        "t = %.2f s\n",
        w, to_seconds(failover.withdrawals.back().at));
  }

  std::printf("\nfailover run...\n");
  const hpa::HpaResult r = hpa::run_hpa(failover);
  std::printf("  pass 2: %.2f s (baseline %.2f s, +%.1f%%)\n",
              to_seconds(r.pass(2)->duration),
              to_seconds(baseline.pass(2)->duration),
              100.0 * (to_seconds(r.pass(2)->duration) /
                           to_seconds(baseline.pass(2)->duration) -
                       1.0));
  std::printf("  shortage events noticed by clients: %lld\n",
              static_cast<long long>(
                  r.stats.counter("client.shortage_events")));
  std::printf("  migrations executed: %lld (%lld hash lines moved)\n",
              static_cast<long long>(r.stats.counter("server.migrations")),
              static_cast<long long>(
                  r.stats.counter("server.lines_migrated")));

  // Prove correctness: identical large itemsets and supports.
  bool identical = r.mined.support.size() == baseline.mined.support.size();
  if (identical) {
    for (const auto& [itemset, count] : baseline.mined.support) {
      const auto it = r.mined.support.find(itemset);
      if (it == r.mined.support.end() || it->second != count) {
        identical = false;
        break;
      }
    }
  }
  std::printf("\nmining result identical to baseline: %s (%zu large "
              "itemsets)\n",
              identical ? "YES" : "NO -- BUG", r.mined.support.size());
  return identical ? 0 : 1;
}
