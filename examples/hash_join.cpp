// hash_join: ad-hoc query processing on the same remote-memory machinery.
//
// The paper motivates the cluster for "data mining and ad hoc query
// processing in databases"; this example is the second domain: a
// distributed counting hash join R ⋈ S. Build-side tuples are hashed into
// the same per-node hash-line stores the miner uses (entries encode
// (join key, row tag)); when the build side exceeds the per-node memory
// limit, lines spill to memory-available nodes exactly like candidate
// itemsets, and probe-side lookups fault them back (`count_matches`, a read
// query one-way updates cannot answer).
//
//   $ hash_join [--build-rows 40000] [--probe-rows 40000] [--limit-kb 192]
//
// Output compares join cardinality against an in-memory reference and
// reports the remote-memory traffic the spill produced, under both remote
// swapping and local-disk swapping.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cpu_charger.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/availability.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

using namespace rms;

namespace {

struct Row {
  mining::Item key = 0;
  std::uint32_t row_id = 0;
};

struct JoinWorld {
  static constexpr std::size_t kAppNodes = 4;
  static constexpr std::size_t kMemNodes = 4;
  static constexpr std::size_t kLinesPerNode = 512;

  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl;
  std::vector<std::unique_ptr<core::MemoryServer>> servers;
  std::unique_ptr<placement::MemoryBroker> table;
  std::vector<std::unique_ptr<core::HashLineStore>> stores;

  explicit JoinWorld(core::SwapPolicy policy, std::int64_t limit,
                     std::int64_t tiered_budget = -1,
                     obs::TraceRecorder* trace = nullptr) {
    cluster::ClusterConfig ccfg;
    ccfg.num_nodes = kAppNodes + kMemNodes;
    cl = std::make_unique<cluster::Cluster>(sim, ccfg);
    std::vector<net::NodeId> mem_ids;
    for (std::size_t m = 0; m < kMemNodes; ++m) {
      const auto id = static_cast<net::NodeId>(kAppNodes + m);
      mem_ids.push_back(id);
      core::MemoryServer::Config mscfg;
      mscfg.trace = trace;
      servers.push_back(
          std::make_unique<core::MemoryServer>(cl->node(id), mscfg));
      sim.spawn(servers.back()->serve());
    }
    table = std::make_unique<placement::MemoryBroker>(mem_ids);
    for (net::NodeId id : mem_ids) {
      table->update(core::AvailabilityInfo{id, 32 << 20, 1}, 0);
    }
    for (std::size_t n = 0; n < kAppNodes; ++n) {
      core::HashLineStore::Config scfg;
      scfg.num_lines = kLinesPerNode;
      scfg.memory_limit_bytes = limit;
      scfg.policy = limit < 0 ? core::SwapPolicy::kNoLimit : policy;
      scfg.tiered_remote_budget_bytes = tiered_budget;
      scfg.trace = trace;
      stores.push_back(std::make_unique<core::HashLineStore>(
          cl->node(static_cast<net::NodeId>(n)), scfg, table.get()));
    }
  }

  // Key -> (owner node, local line).
  std::pair<std::size_t, core::LineId> place(mining::Item key) const {
    const std::uint64_t h = (key * 0x9e3779b97f4a7c15ULL) >> 16;
    const std::size_t gline = h % (kLinesPerNode * kAppNodes);
    return {gline % kAppNodes,
            static_cast<core::LineId>(gline / kAppNodes)};
  }
};

// Build-table entry for one R row: {join key, tagged row id}. A plain
// function because GCC 12 miscompiles initializer-list construction inside
// coroutines ("array used as initializer").
mining::Itemset make_entry(mining::Item key, std::uint32_t row_id) {
  mining::Itemset s;
  s.push_back(key);
  s.push_back(1'000'000u + row_id);
  return s;
}

sim::Process run_join(JoinWorld& w, const std::vector<Row>& build,
                      const std::vector<Row>& probe, std::uint64_t& output,
                      bool& done, bool stop_sim) {
  // Per-row CPU is charged in chunks on the owning node with the same
  // CpuCharger the miner's scan loops use (tuple parse on build, hash probe
  // on probe), keeping events proportional to faults instead of rows.
  std::vector<cluster::CpuCharger> parse;
  std::vector<cluster::CpuCharger> lookup;
  parse.reserve(JoinWorld::kAppNodes);
  lookup.reserve(JoinWorld::kAppNodes);
  for (std::size_t n = 0; n < JoinWorld::kAppNodes; ++n) {
    cluster::Node& node = w.cl->node(static_cast<net::NodeId>(n));
    parse.emplace_back(node, node.costs().per_tx_parse);
    lookup.emplace_back(node, node.costs().per_probe);
  }

  // Build phase: insert R tuples, partitioned by key hash (each entry is
  // {key, tagged row id} so entries within a line stay unique).
  for (const Row& r : build) {
    const auto placed = w.place(r.key);
    co_await w.stores[placed.first]->insert(placed.second,
                                            make_entry(r.key, r.row_id));
    co_await parse[placed.first].add(1);
  }
  for (auto& c : parse) co_await c.flush();
  for (auto& s : w.stores) s->set_phase(core::HashLineStore::Phase::kCount);

  // Probe phase: count matches per S tuple (a counting join).
  for (const Row& r : probe) {
    const auto placed = w.place(r.key);
    output += co_await w.stores[placed.first]->count_matches(placed.second,
                                                             r.key);
    co_await lookup[placed.first].add(1);
  }
  for (auto& c : lookup) co_await c.flush();
  done = true;
  // With a metrics sampler ticking forever, the event queue never drains;
  // stop the loop explicitly (no-op difference otherwise, so only do it
  // when observability asked for it — the default run stays untouched).
  if (stop_sim) w.sim.request_stop();
}

std::vector<Row> make_rows(std::int64_t n, std::uint32_t keys,
                           std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Zipf-ish skew: a quarter of the rows hit a hot tenth of the keys.
    const mining::Item key = rng.bernoulli(0.25)
                                 ? rng.below(keys / 10 + 1)
                                 : rng.below(keys);
    rows.push_back(Row{key, static_cast<std::uint32_t>(i)});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"build-rows", "build-side rows (default 40000)"},
               {"probe-rows", "probe-side rows (default 40000)"},
               {"keys", "distinct join keys (default 5000)"},
               {"limit-kb", "per-node build-table limit (default 192)"},
               {"trace-out", "write a Chrome trace_event JSON here"},
               {"metrics-out", "write per-node gauge time-series JSON here"},
               {"json-out", "write a machine-readable run summary here"}});
  const std::int64_t n_build = flags.get_int("build-rows", 40'000);
  const std::int64_t n_probe = flags.get_int("probe-rows", 40'000);
  const auto keys = static_cast<std::uint32_t>(flags.get_int("keys", 5000));
  const std::int64_t limit = flags.get_int("limit-kb", 192) * 1000;

  // Observability sinks — the same recorder/sampler the HPA benches use,
  // proving they are not HPA-specific. All disabled (null) by default.
  const std::string trace_path = flags.get("trace-out", "");
  const std::string metrics_path = flags.get("metrics-out", "");
  const std::string json_path = flags.get("json-out", "");
  std::unique_ptr<obs::TraceRecorder> trace;
  if (!trace_path.empty()) trace = std::make_unique<obs::TraceRecorder>();
  std::unique_ptr<obs::MetricsSampler> sampler;
  if (!metrics_path.empty() || !json_path.empty()) {
    sampler = std::make_unique<obs::MetricsSampler>(msec(100));
  }

  const std::vector<Row> build = make_rows(n_build, keys, 11);
  const std::vector<Row> probe = make_rows(n_probe, keys, 22);

  // In-memory reference.
  std::unordered_map<mining::Item, std::uint64_t> ref_counts;
  for (const Row& r : build) ++ref_counts[r.key];
  std::uint64_t expected = 0;
  for (const Row& r : probe) {
    const auto it = ref_counts.find(r.key);
    if (it != ref_counts.end()) expected += it->second;
  }
  std::printf("R ⋈ S reference cardinality: %llu (%lld x %lld rows, %u keys)\n",
              static_cast<unsigned long long>(expected),
              static_cast<long long>(n_build),
              static_cast<long long>(n_probe), keys);

  obs::JsonWriter artifact;
  artifact.begin_object();
  artifact.kv("schema", "rmswap.hash_join/v1");
  artifact.kv("reference_cardinality", static_cast<std::uint64_t>(expected));
  artifact.key("runs");
  artifact.begin_array();

  for (core::SwapPolicy policy :
       {core::SwapPolicy::kRemoteSwap, core::SwapPolicy::kDiskSwap,
        core::SwapPolicy::kTiered}) {
    // The tiered run caps remote memory well below the spill volume so both
    // tiers (remote first, then disk past the budget) see traffic.
    JoinWorld w(policy, limit,
                policy == core::SwapPolicy::kTiered ? limit / 8 : -1,
                trace.get());
    if (trace) trace->begin_run(core::to_string(policy));
    if (sampler) {
      sampler->begin_run(core::to_string(policy));
      for (std::size_t n = 0; n < JoinWorld::kAppNodes; ++n) {
        core::HashLineStore& s = *w.stores[n];
        const auto node = static_cast<std::int32_t>(n);
        sampler->add_gauge("resident_bytes", node, [&s] {
          return static_cast<double>(s.resident_bytes());
        });
        sampler->add_gauge("lines_remote", node, [&s] {
          return static_cast<double>(s.remote_lines());
        });
        sampler->add_gauge("lines_disk", node, [&s] {
          return static_cast<double>(s.disk_lines());
        });
      }
      w.sim.spawn(obs::sample_process(w.sim, *sampler));
    }
    std::uint64_t output = 0;
    bool done = false;
    w.sim.spawn(run_join(w, build, probe, output, done, sampler != nullptr));
    w.sim.run();
    if (sampler) {
      w.sim.shutdown();
      sampler->clear_gauges();
    }
    RMS_CHECK_MSG(done, "join did not complete");

    std::int64_t faults = 0;
    for (auto& s : w.stores) faults += s->pagefaults();
    std::printf(
        "%-12s join output %llu (%s), %.1f virtual s, %lld pagefaults\n",
        core::to_string(policy), static_cast<unsigned long long>(output),
        output == expected ? "exact" : "MISMATCH!",
        to_seconds(w.sim.now()), static_cast<long long>(faults));

    StatsRegistry merged;
    for (std::size_t n = 0; n < JoinWorld::kAppNodes + JoinWorld::kMemNodes;
         ++n) {
      merged.merge(w.cl->node(static_cast<net::NodeId>(n)).stats());
    }
    artifact.begin_object();
    artifact.kv("policy", core::to_string(policy));
    artifact.kv("output", static_cast<std::uint64_t>(output));
    artifact.kv("exact", output == expected);
    artifact.kv("virtual_s", to_seconds(w.sim.now()));
    artifact.kv("pagefaults", faults);
    obs::stats_json(artifact, merged);
    artifact.end_object();

    if (output != expected) return 1;
  }
  artifact.end_array();
  artifact.end_object();

  if (trace && !trace_path.empty()) {
    std::printf("%s chrome trace: %s\n",
                trace->write_chrome_trace(trace_path) ? "wrote" : "FAILED",
                trace_path.c_str());
  }
  if (sampler && !metrics_path.empty()) {
    std::printf("%s metrics series: %s\n",
                sampler->write_json(metrics_path) ? "wrote" : "FAILED",
                metrics_path.c_str());
  }
  if (!json_path.empty()) {
    std::printf("%s run summary: %s\n",
                obs::write_file(json_path, artifact.str()) ? "wrote" : "FAILED",
                json_path.c_str());
  }
  std::printf(
      "\nthe build table spilled past %lld kB/node into remote memory (or "
      "disk) and every probe still found exactly its matches -- the same "
      "machinery, a different data-intensive application.\n",
      static_cast<long long>(limit / 1000));
  return 0;
}
