// hash_join: ad-hoc query processing on the same remote-memory machinery.
//
// The paper motivates the cluster for "data mining and ad hoc query
// processing in databases"; this example is the second domain: a
// distributed counting hash join R ⋈ S, implemented in
// src/workloads/hash_join.{hpp,cpp} as a runtime::Workload (two phases,
// "build" and "probe", on the same PhasedRunner that drives the miner).
// This driver just parses flags, runs the join under three swap policies,
// and renders the comparison.
//
//   $ hash_join [--build-rows 40000] [--probe-rows 40000] [--limit-kb 192]
//
// Output compares join cardinality against an in-memory reference and
// reports the remote-memory traffic the spill produced, under both remote
// swapping and local-disk swapping.
#include <cstdio>

#include "common/flags.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workloads/hash_join.hpp"

using namespace rms;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"build-rows", "build-side rows (default 40000)"},
               {"probe-rows", "probe-side rows (default 40000)"},
               {"keys", "distinct join keys (default 5000)"},
               {"limit-kb", "per-node build-table limit (default 192)"},
               {"trace-out", "write a Chrome trace_event JSON here"},
               {"metrics-out", "write per-node gauge time-series JSON here"},
               {"json-out", "write a machine-readable run summary here"}});
  const std::int64_t n_build = flags.get_int("build-rows", 40'000);
  const std::int64_t n_probe = flags.get_int("probe-rows", 40'000);
  const auto keys = static_cast<std::uint32_t>(flags.get_int("keys", 5000));
  const std::int64_t limit = flags.get_int("limit-kb", 192) * 1000;

  // Observability sinks — the same recorder/sampler the HPA benches use,
  // proving they are not HPA-specific. All disabled (null) by default.
  const std::string trace_path = flags.get("trace-out", "");
  const std::string metrics_path = flags.get("metrics-out", "");
  const std::string json_path = flags.get("json-out", "");
  std::unique_ptr<obs::TraceRecorder> trace;
  if (!trace_path.empty()) trace = std::make_unique<obs::TraceRecorder>();
  std::unique_ptr<obs::MetricsSampler> sampler;
  if (!metrics_path.empty() || !json_path.empty()) {
    sampler = std::make_unique<obs::MetricsSampler>(msec(100));
  }

  obs::JsonWriter artifact;
  artifact.begin_object();
  artifact.kv("schema", "rmswap.hash_join/v1");
  bool wrote_reference = false;
  artifact.key("runs");
  artifact.begin_array();

  int rc = 0;
  for (core::SwapPolicy policy :
       {core::SwapPolicy::kRemoteSwap, core::SwapPolicy::kDiskSwap,
        core::SwapPolicy::kTiered}) {
    workloads::HashJoinConfig cfg;
    cfg.build_rows = n_build;
    cfg.probe_rows = n_probe;
    cfg.keys = keys;
    cfg.memory_limit_bytes = limit;
    cfg.policy = policy;
    // The tiered run caps remote memory well below the spill volume so both
    // tiers (remote first, then disk past the budget) see traffic.
    cfg.tiered_remote_budget_bytes =
        policy == core::SwapPolicy::kTiered ? limit / 8 : -1;
    cfg.trace = trace.get();
    cfg.metrics = sampler.get();
    if (trace) trace->begin_run(core::to_string(policy));
    if (sampler) sampler->begin_run(core::to_string(policy));

    const workloads::HashJoinResult r = workloads::run_hash_join(cfg);
    if (!wrote_reference) {
      std::printf(
          "R ⋈ S reference cardinality: %llu (%lld x %lld rows, %u keys)\n",
          static_cast<unsigned long long>(r.expected),
          static_cast<long long>(n_build), static_cast<long long>(n_probe),
          keys);
      wrote_reference = true;
    }
    std::printf(
        "%-12s join output %llu (%s), %.1f virtual s, %lld pagefaults\n",
        core::to_string(policy), static_cast<unsigned long long>(r.output),
        r.exact() ? "exact" : "MISMATCH!", to_seconds(r.total_time),
        static_cast<long long>(r.pagefaults));

    artifact.begin_object();
    artifact.kv("policy", core::to_string(policy));
    artifact.kv("output", static_cast<std::uint64_t>(r.output));
    artifact.kv("reference_cardinality",
                static_cast<std::uint64_t>(r.expected));
    artifact.kv("exact", r.exact());
    artifact.kv("virtual_s", to_seconds(r.total_time));
    artifact.kv("pagefaults", r.pagefaults);
    if (!r.passes.empty()) {
      // Phase breakdown keyed by the runtime phase registry.
      artifact.key("phases");
      artifact.begin_object();
      for (std::size_t p = 0; p < r.phase_names.size(); ++p) {
        artifact.kv(r.phase_names[p] + "_s",
                    to_seconds(r.passes.front().phase_time(p)));
      }
      artifact.end_object();
    }
    obs::stats_json(artifact, r.stats);
    artifact.end_object();

    if (!r.exact()) rc = 1;
  }
  artifact.end_array();
  artifact.end_object();

  if (trace && !trace_path.empty()) {
    std::printf("%s chrome trace: %s\n",
                trace->write_chrome_trace(trace_path) ? "wrote" : "FAILED",
                trace_path.c_str());
  }
  if (sampler && !metrics_path.empty()) {
    std::printf("%s metrics series: %s\n",
                sampler->write_json(metrics_path) ? "wrote" : "FAILED",
                metrics_path.c_str());
  }
  if (!json_path.empty()) {
    std::printf("%s run summary: %s\n",
                obs::write_file(json_path, artifact.str()) ? "wrote" : "FAILED",
                json_path.c_str());
  }
  if (rc == 0) {
    std::printf(
        "\nthe build table spilled past %lld kB/node into remote memory (or "
        "disk) and every probe still found exactly its matches -- the same "
        "machinery, a different data-intensive application.\n",
        static_cast<long long>(limit / 1000));
  }
  return rc;
}
