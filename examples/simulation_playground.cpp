// simulation_playground: the discrete-event substrate as a standalone
// library, independent of the mining application.
//
// Builds a toy storage tier -- clients issuing requests over the ATM
// network model to a server that serves from a cache or a 7,200 rpm disk --
// and reports latency percentiles per tier. A template for building your
// own simulated systems on rms::sim / rms::net / rms::disk.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "disk/disk.hpp"
#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

using namespace rms;

namespace {

struct Request {
  int client = 0;
  std::int64_t key = 0;
  Time issued = 0;
};

struct Reply {
  std::int64_t key = 0;
  Time issued = 0;
  bool cache_hit = false;
};

struct LatencyLog {
  std::vector<double> hit_ms;
  std::vector<double> miss_ms;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// The storage server: single CPU, LRU-less random cache, one disk.
sim::Process server(sim::Simulation& sim, sim::Channel<Request>& in,
                    net::Network& net, disk::Disk& d, double hit_rate,
                    Pcg32& rng) {
  sim::Resource cpu(sim, 1);
  for (;;) {
    Request req = co_await in.recv();
    auto lease = co_await cpu.acquire();
    co_await sim.timeout(usec(50));  // request parsing
    const bool hit = rng.bernoulli(hit_rate);
    if (!hit) {
      co_await d.read(8192, disk::Access::kRandom);
    }
    net.send(net::Message::make(/*src=*/0, /*dst=*/req.client, /*tag=*/1,
                                8192, Reply{req.key, req.issued, hit}));
  }
}

sim::Process client(sim::Simulation& sim, int id, net::Network& net,
                    sim::Channel<net::Message>& inbox, int requests,
                    Pcg32& rng, LatencyLog& log) {
  for (int i = 0; i < requests; ++i) {
    co_await sim.timeout(usec(200 + rng.below(800)));  // think time
    net.send(net::Message::make(id, 0, /*tag=*/0, 64,
                                Request{id, i, sim.now()}));
    net::Message msg = co_await inbox.recv();
    const auto& reply = msg.as<Reply>();
    const double ms = to_millis(sim.now() - reply.issued);
    (reply.cache_hit ? log.hit_ms : log.miss_ms).push_back(ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"clients", "number of clients (default 6)"},
               {"requests", "requests per client (default 500)"},
               {"hit-rate", "server cache hit rate (default 0.8)"}});
  const int n_clients = static_cast<int>(flags.get_int("clients", 6));
  const int requests = static_cast<int>(flags.get_int("requests", 500));
  const double hit_rate = flags.get_double("hit-rate", 0.8);

  sim::Simulation sim;
  net::Network net(sim, static_cast<std::size_t>(n_clients) + 1,
                   net::LinkParams::atm155());
  disk::Disk d(sim, disk::DiskParams::barracuda_7200());
  Pcg32 server_rng(1), client_rng(2);

  sim::Channel<Request> server_in(sim);
  net.set_delivery(0, [&](net::Message m) {
    server_in.send(m.as<Request>());
  });

  std::vector<std::unique_ptr<sim::Channel<net::Message>>> inboxes;
  LatencyLog log;
  for (int c = 1; c <= n_clients; ++c) {
    inboxes.push_back(std::make_unique<sim::Channel<net::Message>>(sim));
    auto* inbox = inboxes.back().get();
    net.set_delivery(c, [inbox](net::Message m) { inbox->send(std::move(m)); });
    sim.spawn(client(sim, c, net, *inbox, requests, client_rng, log));
  }
  sim.spawn(server(sim, server_in, net, d, hit_rate, server_rng));

  const Time end = sim.run();
  std::printf("simulated %.2f s of wall time in %llu events\n",
              to_seconds(end),
              static_cast<unsigned long long>(sim.executed_events()));
  std::printf("%zu cache hits, %zu misses\n", log.hit_ms.size(),
              log.miss_ms.size());
  std::printf("hit  latency: p50 %.2f ms, p99 %.2f ms\n",
              percentile(log.hit_ms, 0.5), percentile(log.hit_ms, 0.99));
  std::printf("miss latency: p50 %.2f ms, p99 %.2f ms (the 7,200 rpm disk)\n",
              percentile(log.miss_ms, 0.5), percentile(log.miss_ms, 0.99));
  std::printf("disk served %lld reads, mean %.2f ms\n",
              static_cast<long long>(d.stats().counter("disk.read.count")),
              d.stats().summary("disk.read.latency_ms").mean());
  return 0;
}
