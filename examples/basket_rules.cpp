// Basket rules: a human-readable end-to-end scenario in the spirit of the
// paper's motivation -- "an example of an association rule is: if customers
// buy A and B then 90% of them also buy C" (§2.1).
//
// Transactions with strong co-purchase patterns are generated, mined in
// parallel on the simulated cluster under a candidate memory limit (remote
// update policy), and the resulting rules are printed with product names:
// the most frequent items get the catalogue names, the long tail prints as
// "sku-<id>".
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/flags.hpp"
#include "hpa/hpa.hpp"
#include "mining/rules.hpp"

using namespace rms;

namespace {

const std::vector<std::string> kCatalogue = {
    "espresso beans", "oat milk",   "croissant",    "butter",
    "strawberry jam", "baguette",   "brie",         "red wine",
    "pasta",          "tomato sauce", "parmesan",   "basil",
    "tortilla chips", "salsa",      "lime",         "lager",
    "rice",           "curry paste", "coconut milk", "naan",
    "dark chocolate", "oranges",    "yoghurt",      "granola",
    "eggs",           "bacon",      "maple syrup",  "pancake mix",
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"minconf", "minimum rule confidence (default 0.7)"},
               {"rules", "how many rules to print (default 12)"}});

  hpa::HpaConfig cfg;
  cfg.app_nodes = 4;
  cfg.memory_nodes = 4;
  cfg.workload.num_transactions = 25'000;
  cfg.workload.num_items = 400;
  cfg.workload.num_patterns = 60;
  cfg.workload.avg_pattern_size = 3.0;
  cfg.workload.corruption_mean = 0.3;  // patterns survive mostly intact
  cfg.workload.seed = 2026;
  cfg.min_support = 0.004;
  cfg.hash_lines = 40'000;
  cfg.max_k = 4;
  cfg.memory_limit_bytes = 60'000;  // force remote-memory usage
  cfg.policy = core::SwapPolicy::kRemoteUpdate;

  std::printf("mining %lld baskets on a 4+4-node simulated cluster "
              "(remote-update policy, %.2f MB/node candidate limit)...\n",
              static_cast<long long>(cfg.workload.num_transactions),
              static_cast<double>(cfg.memory_limit_bytes) / 1e6);
  const hpa::HpaResult r = hpa::run_hpa(cfg);
  std::printf("done in %.2f virtual seconds; %lld remote updates, %lld "
              "pagefaults\n\n",
              to_seconds(r.total_time),
              static_cast<long long>(
                  r.stats.counter("server.updates_applied")),
              static_cast<long long>(r.stats.counter("store.pagefaults")));

  // Name the most frequent items after the catalogue (rank by support).
  std::vector<std::pair<std::uint32_t, mining::Item>> by_freq;
  for (const mining::Itemset& s : r.mined.large_by_k[0]) {
    by_freq.emplace_back(r.mined.support.at(s), s[0]);
  }
  std::sort(by_freq.rbegin(), by_freq.rend());
  std::map<mining::Item, std::string> names;
  for (std::size_t i = 0; i < by_freq.size() && i < kCatalogue.size(); ++i) {
    names[by_freq[i].second] = kCatalogue[i];
  }
  auto item_name = [&](mining::Item item) {
    const auto it = names.find(item);
    return it != names.end() ? it->second : "sku-" + std::to_string(item);
  };
  auto describe = [&](const mining::Itemset& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i > 0) out += (i + 1 == s.size()) ? " and " : ", ";
      out += item_name(s[i]);
    }
    return out;
  };

  const double minconf = flags.get_double("minconf", 0.7);
  auto rules = mining::derive_rules(r.mined, minconf);
  // Most interesting first: single-consequent rules with high support.
  std::stable_sort(rules.begin(), rules.end(),
                   [](const mining::Rule& a, const mining::Rule& b) {
                     return a.support > b.support;
                   });
  const auto show = static_cast<std::size_t>(flags.get_int("rules", 12));
  std::printf("top co-purchase rules (confidence >= %.0f%%, %zu total):\n",
              100.0 * minconf, rules.size());
  std::size_t printed = 0;
  for (const mining::Rule& rule : rules) {
    if (printed >= show) break;
    if (rule.consequent.size() != 1) continue;  // classic A,B => C form
    std::printf(
        "  if customers buy %s then %.0f%% of them also buy %s   "
        "(support %.2f%%)\n",
        describe(rule.antecedent).c_str(), 100.0 * rule.confidence,
        describe(rule.consequent).c_str(), 100.0 * rule.support);
    ++printed;
  }
  return 0;
}
