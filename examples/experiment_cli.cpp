// experiment_cli: the full configuration surface of the system as one
// command-line tool. Every knob the paper's experiments turn (and the
// ablation extensions add) is exposed, so new experiments don't need code:
//
//   $ experiment_cli --scale 0.05 --limit-mb 13 --policy remote-update \
//       --memory-nodes 4 --withdraw 0@30s --withdraw 1@45s --csv run.csv
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "hpa/hpa.hpp"
#include "hpa/report.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

using namespace rms;

namespace {

core::SwapPolicy parse_policy(const std::string& name) {
  if (name == "none") return core::SwapPolicy::kNoLimit;
  if (name == "disk") return core::SwapPolicy::kDiskSwap;
  if (name == "remote-swap") return core::SwapPolicy::kRemoteSwap;
  if (name == "remote-update") return core::SwapPolicy::kRemoteUpdate;
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

core::EvictionPolicy parse_eviction(const std::string& name) {
  if (name == "lru") return core::EvictionPolicy::kLru;
  if (name == "fifo") return core::EvictionPolicy::kFifo;
  if (name == "random") return core::EvictionPolicy::kRandom;
  std::fprintf(stderr, "unknown eviction policy '%s'\n", name.c_str());
  std::exit(2);
}

// "--withdraw 2@45s": memory node 2 loses its memory at t = 45 s.
hpa::HpaConfig::Withdrawal parse_withdrawal(const std::string& spec) {
  const auto at = spec.find('@');
  RMS_CHECK_MSG(at != std::string::npos, "--withdraw needs idx@seconds");
  hpa::HpaConfig::Withdrawal w;
  w.memory_node_index =
      static_cast<std::size_t>(std::strtoll(spec.c_str(), nullptr, 10));
  w.at = static_cast<Time>(std::strtod(spec.c_str() + at + 1, nullptr) * 1e9);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      {{"app-nodes", "application execution nodes (default 8)"},
       {"memory-nodes", "memory-available nodes (default 16)"},
       {"scale", "transaction scale vs the paper's 1M (default 0.05)"},
       {"items", "item universe (default 5000)"},
       {"minsup", "minimum support fraction (default 0.00025)"},
       {"hash-lines", "global candidate hash lines (default 800000)"},
       {"limit-mb", "per-node candidate limit in decimal MB (default: none)"},
       {"policy", "none | disk | remote-swap | remote-update"},
       {"eviction", "lru | fifo | random (default lru)"},
       {"block", "message block bytes (default 4096)"},
       {"monitor-ms", "availability monitor interval (default 3000)"},
       {"max-k", "stop after pass k (default 2)"},
       {"seed", "workload seed"},
       {"withdraw", "idx@seconds: withdraw a memory node mid-run "
                    "(repeatable via comma list)"},
       {"remote-determination", "servers filter sub-threshold entries out "
                                "of end-of-pass fetches (extension)"},
       {"paper-skew", "use the paper's Table-3 partition skew (8 app nodes)"},
       {"profile", "run the per-pass attribution profiler and print the "
                   "time-attribution table"},
       {"csv", "write the per-pass table to this CSV path"}});

  hpa::HpaConfig cfg;
  cfg.app_nodes = static_cast<std::size_t>(flags.get_int("app-nodes", 8));
  cfg.memory_nodes =
      static_cast<std::size_t>(flags.get_int("memory-nodes", 16));
  cfg.workload =
      mining::QuestParams::paper_experiment(flags.get_double("scale", 0.05));
  cfg.workload.num_items =
      static_cast<std::uint32_t>(flags.get_int("items", 5000));
  cfg.workload.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(cfg.workload.seed)));
  cfg.min_support = flags.get_double("minsup", 0.00025);
  cfg.hash_lines =
      static_cast<std::size_t>(flags.get_int("hash-lines", 800'000));
  cfg.message_block_bytes = flags.get_int("block", 4096);
  cfg.monitor_interval = msec(flags.get_int("monitor-ms", 3000));
  cfg.max_k = static_cast<std::size_t>(flags.get_int("max-k", 2));
  if (flags.has("limit-mb")) {
    cfg.memory_limit_bytes =
        static_cast<std::int64_t>(flags.get_double("limit-mb", 13.0) * 1e6);
    cfg.policy = parse_policy(flags.get("policy", "remote-update"));
  } else {
    cfg.policy = parse_policy(flags.get("policy", "none"));
  }
  cfg.eviction = parse_eviction(flags.get("eviction", "lru"));
  cfg.remote_determination = flags.get_bool("remote-determination", false);
  if (flags.get_bool("paper-skew", false)) {
    cfg.partition_weights = hpa::paper_table3_weights();
  }
  if (flags.has("withdraw")) {
    std::string spec = flags.get("withdraw", "");
    std::size_t start = 0;
    while (start < spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string one =
          spec.substr(start, comma == std::string::npos ? spec.npos
                                                        : comma - start);
      cfg.withdrawals.push_back(parse_withdrawal(one));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  // --profile: attach a recorder + profiler pair so the report can render
  // the attribution table (the recorder feeds the profiler at push time).
  obs::TraceRecorder recorder;
  obs::PassProfiler profiler;
  const bool profile = flags.get_bool("profile", false);
  if (profile) {
    recorder.set_profile_hook(&profiler);
    cfg.trace = &recorder;
    cfg.profiler = &profiler;
    profiler.begin_run(hpa::describe(cfg));
  }

  std::printf("running: %s\n", hpa::describe(cfg).c_str());
  const hpa::HpaResult r = hpa::run_hpa(cfg);
  if (profile) profiler.end_run(recorder.dropped());
  hpa::print_report(r, profile ? &profiler.runs().back() : nullptr);

  TablePrinter table("per-pass detail",
                     {"pass", "C", "L", "time [s]", "max faults",
                      "swap-outs", "updates"});
  for (const hpa::PassReport& p : r.passes) {
    std::int64_t swaps = 0, updates = 0;
    for (std::int64_t v : p.swap_outs_per_node) swaps += v;
    for (std::int64_t v : p.updates_per_node) updates += v;
    table.add_row({TablePrinter::integer(static_cast<std::int64_t>(p.k)),
                   TablePrinter::integer(p.candidates_global),
                   TablePrinter::integer(p.large_global),
                   TablePrinter::num(to_seconds(p.duration), 2),
                   TablePrinter::integer(p.max_pagefaults()),
                   TablePrinter::integer(swaps),
                   TablePrinter::integer(updates)});
  }
  const std::string csv = flags.get("csv", "");
  if (!csv.empty() && table.write_csv(csv)) {
    std::printf("(csv written to %s)\n", csv.c_str());
  }

  std::printf("\nkey stats:\n");
  for (const char* key :
       {"store.pagefaults", "store.remote_swap_out", "store.disk_swap_out",
        "server.swap_in", "server.updates_applied", "server.lines_migrated",
        "client.shortage_events", "net.messages", "monitor.broadcasts"}) {
    std::printf("  %-26s %lld\n", key,
                static_cast<long long>(r.stats.counter(key)));
  }
  return 0;
}
