// Network model tests: delivery, FIFO order, calibration against the paper's
// measured constants (0.5 ms small-message RTT, ~120 Mbps point-to-point,
// ~0.3 ms for a 4 KB block).
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::net {
namespace {

struct Payload {
  int value = 0;
};

TEST(Network, DeliversTypedBody) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  std::vector<int> got;
  net.set_delivery(1, [&](Message m) { got.push_back(m.as<Payload>().value); });
  net.send(Message::make(0, 1, 7, 100, Payload{41}));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 41);
  EXPECT_EQ(net.stats().counter("net.messages"), 1);
}

TEST(Network, SamePairMessagesKeepFifoOrder) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  std::vector<int> got;
  net.set_delivery(1, [&](Message m) { got.push_back(m.as<Payload>().value); });
  for (int i = 0; i < 10; ++i) {
    net.send(Message::make(0, 1, 0, 4096, Payload{i}));
  }
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Network, UnloadedLatencyIsTxPlusPropagation) {
  sim::Simulation sim;
  const LinkParams p = LinkParams::atm155();
  Network net(sim, 2, p);
  Time delivered_at = -1;
  net.set_delivery(1, [&](Message) { delivered_at = sim.now(); });
  net.send(Message::make(0, 1, 0, 4096, Payload{}));
  sim.run();
  EXPECT_EQ(delivered_at, net.transmission_time(4096) + p.propagation);
}

TEST(Network, SmallMessageRoundTripMatchesPaper) {
  // The paper (§5.2): "The point-to-point round trip time on our PC cluster
  // is approximately 0.5 msec".
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  sim::Channel<Message> at0(sim), at1(sim);
  net.set_delivery(0, [&](Message m) { at0.send(std::move(m)); });
  net.set_delivery(1, [&](Message m) { at1.send(std::move(m)); });

  Time rtt = -1;
  auto pinger = [&](sim::Simulation& s) -> sim::Process {
    const Time start = s.now();
    net.send(Message::make(0, 1, 0, 32, Payload{}));
    (void)co_await at0.recv();
    rtt = s.now() - start;
  };
  auto ponger = [&]() -> sim::Process {
    Message m = co_await at1.recv();
    net.send(Message::make(1, 0, 0, 32, Payload{}));
  };
  sim.spawn(pinger(sim));
  sim.spawn(ponger());
  sim.run();
  EXPECT_GT(rtt, usec(400));
  EXPECT_LT(rtt, usec(600));
}

TEST(Network, PointToPointThroughputMatchesPaper) {
  // The paper (§5.2): "the point-to-point throughput is about 120 Mbps".
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  std::int64_t received = 0;
  Time last = 0;
  net.set_delivery(1, [&](Message m) {
    received += m.payload_bytes;
    last = sim.now();
  });
  const int blocks = 1000;
  for (int i = 0; i < blocks; ++i) {
    net.send(Message::make(0, 1, 0, 4096, Payload{}));
  }
  sim.run();
  const double mbps =
      static_cast<double>(received) * 8.0 / (to_seconds(last) * 1e6);
  EXPECT_GT(mbps, 100.0);
  EXPECT_LT(mbps, 125.0);
}

TEST(Network, FourKbBlockTransmissionNearPaperEstimate) {
  // Table 4 analysis: "the data transmission time ... approximately 0.3 msec"
  // for one 4 KB message block.
  Network::DeliveryFn nop = [](Message) {};
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  const double ms = to_millis(net.transmission_time(4096));
  EXPECT_GT(ms, 0.2);
  EXPECT_LT(ms, 0.4);
}

TEST(Network, TxPortSerializesConcurrentSenders) {
  // Two messages from the same source cannot overlap on its uplink.
  sim::Simulation sim;
  Network net(sim, 3, LinkParams::atm155());
  std::vector<Time> deliveries;
  net.set_delivery(1, [&](Message) { deliveries.push_back(sim.now()); });
  net.set_delivery(2, [&](Message) { deliveries.push_back(sim.now()); });
  net.send(Message::make(0, 1, 0, 65536, Payload{}));
  net.send(Message::make(0, 2, 0, 65536, Payload{}));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const Time tx = net.transmission_time(65536);
  EXPECT_EQ(deliveries[1] - deliveries[0], tx);
}

TEST(Network, BroadcastReachesEveryOtherNode) {
  sim::Simulation sim;
  Network net(sim, 5, LinkParams::atm155());
  std::vector<int> hit(5, 0);
  for (int n = 0; n < 5; ++n) {
    net.set_delivery(n, [&hit, n](Message m) {
      ++hit[static_cast<std::size_t>(n)];
      EXPECT_EQ(m.as<Payload>().value, 100 + n);
    });
  }
  net.broadcast(2, 9, 24, [](NodeId dst) {
    return std::any(std::make_shared<const Payload>(Payload{100 + dst}));
  });
  sim.run();
  EXPECT_EQ(hit, (std::vector<int>{1, 1, 0, 1, 1}));
}

TEST(NetworkDeathTest, BodyTypeMismatchAborts) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  bool checked = false;
  net.set_delivery(1, [&](Message m) {
    checked = true;
    EXPECT_DEATH((void)m.as<int>(), "type mismatch");
  });
  net.send(Message::make(0, 1, 0, 32, Payload{1}));
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(NetworkDeathTest, LoopbackThroughWireAborts) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  EXPECT_DEATH(net.send(Message::make(1, 1, 0, 32, Payload{})), "loopback");
}

TEST(NetworkDeathTest, DeliveryToUnregisteredNodeAborts) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  net.send(Message::make(0, 1, 0, 32, Payload{}));  // node 1 has no hook
  EXPECT_DEATH(sim.run(), "delivery hook");
}

TEST(Network, EthernetIsMuchSlower) {
  sim::Simulation sim;
  Network atm(sim, 2, LinkParams::atm155());
  Network eth(sim, 2, LinkParams::ethernet10());
  EXPECT_GT(eth.transmission_time(4096), 10 * atm.transmission_time(4096));
}

}  // namespace
}  // namespace rms::net
