// Edge-configuration tests for the parallel miner: degenerate topologies,
// extreme thresholds, and pathological structure sizes must either work
// correctly or abort loudly.
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams tiny() {
  mining::QuestParams p;
  p.num_transactions = 600;
  p.num_items = 50;
  p.avg_transaction_size = 6;
  p.num_patterns = 15;
  p.seed = 77;
  return p;
}

HpaConfig base() {
  HpaConfig c;
  c.app_nodes = 2;
  c.memory_nodes = 2;
  c.workload = tiny();
  c.min_support = 0.02;
  c.hash_lines = 128;
  return c;
}

void expect_matches_sequential(const HpaConfig& cfg) {
  mining::TransactionDb db = mining::QuestGenerator(cfg.workload).generate();
  mining::AprioriOptions opt;
  opt.max_k = cfg.max_k;
  const mining::AprioriResult seq =
      mining::apriori(db, cfg.min_support, opt);
  const HpaResult par = run_hpa(cfg);
  ASSERT_EQ(seq.support.size(), par.mined.support.size());
  for (const auto& [itemset, count] : seq.support) {
    const auto it = par.mined.support.find(itemset);
    ASSERT_NE(it, par.mined.support.end()) << itemset.to_string();
    EXPECT_EQ(it->second, count);
  }
}

TEST(HpaEdge, SingleApplicationNode) {
  HpaConfig c = base();
  c.app_nodes = 1;  // all counting traffic is loopback
  expect_matches_sequential(c);
}

TEST(HpaEdge, SingleAppNodeWithRemoteMemory) {
  HpaConfig c = base();
  c.app_nodes = 1;
  c.memory_nodes = 1;
  c.memory_limit_bytes = 1000;
  c.policy = core::SwapPolicy::kRemoteUpdate;
  expect_matches_sequential(c);
}

TEST(HpaEdge, DiskPolicyNeedsNoMemoryNodes) {
  HpaConfig c = base();
  c.memory_nodes = 0;
  c.memory_limit_bytes = 1000;
  c.policy = core::SwapPolicy::kDiskSwap;
  expect_matches_sequential(c);
}

TEST(HpaEdgeDeathTest, RemotePolicyWithoutMemoryNodesAborts) {
  HpaConfig c = base();
  c.memory_nodes = 0;
  c.memory_limit_bytes = 1000;
  c.policy = core::SwapPolicy::kRemoteSwap;
  EXPECT_DEATH(run_hpa(c), "memory-available");
}

TEST(HpaEdgeDeathTest, LimitWithoutPolicyAborts) {
  HpaConfig c = base();
  c.memory_limit_bytes = 1000;
  c.policy = core::SwapPolicy::kNoLimit;
  EXPECT_DEATH(run_hpa(c), "swap policy");
}

TEST(HpaEdge, MaxKOneStopsAfterPassOne) {
  HpaConfig c = base();
  c.max_k = 1;
  const HpaResult r = run_hpa(c);
  EXPECT_EQ(r.passes.size(), 1u);
  EXPECT_EQ(r.mined.large_by_k.size(), 1u);
}

TEST(HpaEdge, ImpossibleSupportTerminatesCleanly) {
  HpaConfig c = base();
  c.min_support = 0.999;  // nothing qualifies
  const HpaResult r = run_hpa(c);
  ASSERT_GE(r.passes.size(), 1u);
  EXPECT_EQ(r.passes[0].large_global, 0);
  EXPECT_TRUE(r.mined.support.empty());
}

TEST(HpaEdge, OneHashLinePerNodeStillCorrect) {
  // Total collision: every candidate of a node shares one hash line.
  HpaConfig c = base();
  c.hash_lines = 2;  // one line per app node
  expect_matches_sequential(c);
}

TEST(HpaEdge, OneHashLinePerNodeWithSwapping) {
  HpaConfig c = base();
  c.hash_lines = 4;
  c.memory_limit_bytes = 10'000;  // forces whole-line churn
  c.policy = core::SwapPolicy::kRemoteSwap;
  expect_matches_sequential(c);
}

TEST(HpaEdge, TinyMessageBlocks) {
  HpaConfig c = base();
  c.message_block_bytes = 64;  // ~5 itemsets per count message
  expect_matches_sequential(c);
}

TEST(HpaEdge, TinyIoBlocks) {
  HpaConfig c = base();
  c.io_block_bytes = 512;
  expect_matches_sequential(c);
}

TEST(HpaEdge, RemoteDeterminationMinesExactlyWithLessTraffic) {
  HpaConfig plain = base();
  plain.memory_limit_bytes = 1200;
  plain.policy = core::SwapPolicy::kRemoteUpdate;
  HpaConfig filtered = plain;
  filtered.remote_determination = true;

  const HpaResult a = run_hpa(plain);
  const HpaResult b = run_hpa(filtered);

  // Identical mining results...
  ASSERT_EQ(a.mined.support.size(), b.mined.support.size());
  for (const auto& [itemset, count] : a.mined.support) {
    EXPECT_EQ(b.mined.support.at(itemset), count);
  }
  // ...with strictly less fetch traffic on the wire.
  EXPECT_GT(b.stats.counter("server.filtered_fetch_lines"), 0);
  EXPECT_LT(b.stats.counter("net.payload_bytes"),
            a.stats.counter("net.payload_bytes"));
  // And it must not be slower.
  EXPECT_LE(b.pass(2)->duration, a.pass(2)->duration);
}

TEST(HpaEdge, LossyNetworkStillMinesExactly) {
  HpaConfig c = base();
  c.cluster.link = net::LinkParams::atm155_lossy(0.02, msec(2));
  c.memory_limit_bytes = 1500;
  c.policy = core::SwapPolicy::kRemoteUpdate;
  expect_matches_sequential(c);
}

TEST(HpaEdge, ManyMoreMemoryNodesThanAppNodes) {
  HpaConfig c = base();
  c.memory_nodes = 24;
  c.memory_limit_bytes = 1200;
  c.policy = core::SwapPolicy::kRemoteSwap;
  expect_matches_sequential(c);
}

TEST(HpaEdge, OddAppNodeCountWithWeights) {
  HpaConfig c = base();
  c.app_nodes = 3;
  c.hash_lines = 10'000;
  c.partition_weights = {1.0, 2.0, 3.0};
  const HpaResult r = run_hpa(c);
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  // Node 2 (weight 3) owns ~3x node 0's candidates (weight 1).
  EXPECT_GT(p2->candidates_per_node[2],
            2 * p2->candidates_per_node[0]);
  expect_matches_sequential(c);
}

TEST(HpaEdgeDeathTest, WeightCountMismatchAborts) {
  HpaConfig c = base();
  c.hash_lines = 10'000;
  c.partition_weights = {1.0, 1.0, 1.0};  // 3 weights, 2 app nodes
  EXPECT_DEATH(run_hpa(c), "one entry per app node");
}

TEST(HpaEdgeDeathTest, WeightedPartitionNeedsRoundHashLines) {
  HpaConfig c = base();
  c.hash_lines = 999;  // not a multiple of the weight resolution
  c.partition_weights = {1.0, 1.0};
  EXPECT_DEATH(run_hpa(c), "10000");
}

}  // namespace
}  // namespace rms::hpa
