// Tests for the HPA reporting surface: pass accessors, per-node aggregates,
// config description, and the printable summary.
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "hpa/report.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

HpaConfig small_config() {
  HpaConfig c;
  c.app_nodes = 2;
  c.memory_nodes = 2;
  c.workload.num_transactions = 800;
  c.workload.num_items = 60;
  c.workload.seed = 9;
  c.min_support = 0.02;
  c.hash_lines = 256;
  return c;
}

TEST(Report, PassAccessorFindsByK) {
  const HpaResult r = run_hpa(small_config());
  ASSERT_GE(r.passes.size(), 2u);
  const PassReport* p1 = r.pass(1);
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p1->k, 1u);
  EXPECT_EQ(p2->k, 2u);
  EXPECT_EQ(r.pass(99), nullptr);
}

TEST(Report, MaxPagefaultsIsMaxOverNodes) {
  PassReport rep;
  EXPECT_EQ(rep.max_pagefaults(), 0);
  rep.pagefaults_per_node = {3, 17, 5};
  EXPECT_EQ(rep.max_pagefaults(), 17);
}

TEST(Report, DescribeMentionsKeyParameters) {
  HpaConfig c = small_config();
  c.memory_limit_bytes = 13'000'000;
  c.policy = core::SwapPolicy::kRemoteUpdate;
  const std::string d = describe(c);
  EXPECT_NE(d.find("2 app nodes"), std::string::npos);
  EXPECT_NE(d.find("remote-update"), std::string::npos);
  EXPECT_NE(d.find("13.0MB"), std::string::npos);
  EXPECT_NE(d.find("D=800"), std::string::npos);

  c.memory_limit_bytes = -1;
  EXPECT_NE(describe(c).find("limit=none"), std::string::npos);
}

TEST(Report, PrintReportDoesNotCrash) {
  const HpaResult r = run_hpa(small_config());
  // Sanity: prints a table to stdout without tripping any width checks.
  print_report(r);
}

TEST(Report, PassReportsCarryPerNodeVectors) {
  HpaConfig c = small_config();
  c.memory_limit_bytes = 2000;
  c.policy = core::SwapPolicy::kRemoteSwap;
  const HpaResult r = run_hpa(c);
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->candidates_per_node.size(), 2u);
  EXPECT_EQ(p2->pagefaults_per_node.size(), 2u);
  EXPECT_EQ(p2->swap_outs_per_node.size(), 2u);
  EXPECT_EQ(p2->updates_per_node.size(), 2u);
}

TEST(Report, PhaseBreakdownSumsToPassDuration) {
  const HpaResult r = run_hpa(small_config());
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  const Time build = p2->phase(kBuildPhase);
  const Time count = p2->phase(kCountPhase);
  const Time determine = p2->phase(kDeterminePhase);
  EXPECT_GT(build, 0);
  EXPECT_GT(count, 0);
  EXPECT_GT(determine, 0);
  // Candidate generation happens between pass start and build start, so the
  // three phases cover at most the pass.
  EXPECT_LE(build + count + determine, p2->duration);
  // And nearly all of it.
  EXPECT_GT(build + count + determine, p2->duration * 9 / 10);
}

TEST(Report, MinedPassInfoMirrorsReports) {
  const HpaResult r = run_hpa(small_config());
  ASSERT_EQ(r.mined.passes.size(), r.passes.size());
  for (std::size_t i = 0; i < r.passes.size(); ++i) {
    EXPECT_EQ(r.mined.passes[i].k, r.passes[i].k);
    EXPECT_EQ(r.mined.passes[i].candidates, r.passes[i].candidates_global);
    EXPECT_EQ(r.mined.passes[i].large, r.passes[i].large_global);
  }
}

TEST(Report, WeightedPartitionMatchesRequestedProportions) {
  HpaConfig c = small_config();
  c.app_nodes = 8;
  c.hash_lines = 40'000;
  c.workload.num_transactions = 1500;
  c.partition_weights = paper_table3_weights();
  const HpaResult r = run_hpa(c);
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  std::int64_t total = 0;
  for (std::int64_t v : p2->candidates_per_node) total += v;
  const auto weights = paper_table3_weights();
  double wtotal = 0;
  for (double w : weights) wtotal += w;
  for (std::size_t i = 0; i < 8; ++i) {
    const double expected =
        weights[i] / wtotal * static_cast<double>(total);
    EXPECT_NEAR(static_cast<double>(p2->candidates_per_node[i]), expected,
                expected * 0.08 + 20)
        << "node " << i;
  }
}

}  // namespace
}  // namespace rms::hpa
