// Unit tests for the discrete-event kernel: clock, ordering, processes,
// channels, resources, and teardown behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace rms::sim {
namespace {

Process nop(Simulation& sim) { co_await sim.timeout(0); }

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.run(), 0);
}

TEST(Simulation, TimeAdvancesWithTimeouts) {
  Simulation sim;
  std::vector<Time> observed;
  auto proc = [](Simulation& s, std::vector<Time>& out) -> Process {
    co_await s.timeout(msec(5));
    out.push_back(s.now());
    co_await s.timeout(msec(7));
    out.push_back(s.now());
  };
  sim.spawn(proc(sim, observed));
  sim.run();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], msec(5));
  EXPECT_EQ(observed[1], msec(12));
}

TEST(Simulation, CallAtFiresInOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.call_at(msec(10), [&] { order.push_back(2); });
  sim.call_at(msec(5), [&] { order.push_back(1); });
  sim.call_at(msec(10), [&] { order.push_back(3); });  // same instant: FIFO
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameInstantEventsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& out, int id) -> Process {
    co_await s.timeout(msec(1));
    out.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(sim, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.call_at(msec(5), [&] { ++fired; });
  sim.call_at(msec(15), [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(msec(10)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), msec(10));
  EXPECT_FALSE(sim.run_until(msec(20)));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RequestStopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.call_at(msec(1), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.call_at(msec(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, ExecutedEventsCounts) {
  Simulation sim;
  for (int i = 0; i < 3; ++i) sim.call_at(msec(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Process, JoinResumesAfterCompletion) {
  Simulation sim;
  std::vector<int> order;
  auto worker = [](Simulation& s, std::vector<int>& out) -> Process {
    co_await s.timeout(msec(10));
    out.push_back(1);
  };
  auto joiner = [](Simulation& s, Process w, std::vector<int>& out) -> Process {
    co_await w;
    out.push_back(2);
    EXPECT_EQ(s.now(), msec(10));
  };
  Process w = sim.spawn(worker(sim, order));
  sim.spawn(joiner(sim, w, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(w.done());
}

TEST(Process, JoinCompletedProcessReturnsImmediately) {
  Simulation sim;
  Process w = sim.spawn(nop(sim));
  sim.run();
  ASSERT_TRUE(w.done());
  bool joined = false;
  auto joiner = [](Simulation& s, Process p, bool& out) -> Process {
    co_await p;
    out = true;
    EXPECT_EQ(s.now(), 0);
  };
  sim.spawn(joiner(sim, w, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(Process, ManyJoinersAllResume) {
  Simulation sim;
  auto worker = [](Simulation& s) -> Process { co_await s.timeout(msec(3)); };
  Process w = sim.spawn(worker(sim));
  int resumed = 0;
  auto joiner = [](Process p, int& out) -> Process {
    co_await p;
    ++out;
  };
  for (int i = 0; i < 10; ++i) sim.spawn(joiner(w, resumed));
  sim.run();
  EXPECT_EQ(resumed, 10);
}

TEST(Channel, FifoDelivery) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto consumer = [](Channel<int>& c, std::vector<int>& out) -> Process {
    for (int i = 0; i < 3; ++i) out.push_back(co_await c.recv());
  };
  sim.spawn(consumer(ch, got));
  ch.send(1);
  ch.send(2);
  ch.send(3);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, ReceiverBlocksUntilSend) {
  Simulation sim;
  Channel<int> ch(sim);
  Time received_at = -1;
  auto consumer = [](Simulation& s, Channel<int>& c, Time& at) -> Process {
    (void)co_await c.recv();
    at = s.now();
  };
  auto producer = [](Simulation& s, Channel<int>& c) -> Process {
    co_await s.timeout(msec(42));
    c.send(7);
  };
  sim.spawn(consumer(sim, ch, received_at));
  sim.spawn(producer(sim, ch));
  sim.run();
  EXPECT_EQ(received_at, msec(42));
}

TEST(Channel, MultipleWaitersServedInOrder) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto consumer = [](Channel<int>& c, std::vector<std::pair<int, int>>& out,
                     int id) -> Process {
    const int v = co_await c.recv();
    out.emplace_back(id, v);
  };
  sim.spawn(consumer(ch, got, 0));
  sim.spawn(consumer(ch, got, 1));
  sim.run();  // both waiting now
  ch.send(10);
  ch.send(11);
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 10}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 11}));
}

TEST(Channel, TryRecvDoesNotBlock) {
  Simulation sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(Resource, SerializesAtCapacityOne) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<Time> finish;
  auto worker = [](Simulation& s, Resource& r, std::vector<Time>& out) -> Process {
    Lease l = co_await r.acquire();
    co_await s.timeout(msec(5));
    out.push_back(s.now());
  };
  for (int i = 0; i < 3; ++i) sim.spawn(worker(sim, res, finish));
  sim.run();
  EXPECT_EQ(finish, (std::vector<Time>{msec(5), msec(10), msec(15)}));
  EXPECT_EQ(res.in_use(), 0);
  EXPECT_EQ(res.total_acquired(), 3u);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
  Simulation sim;
  Resource res(sim, 2);
  std::vector<Time> finish;
  auto worker = [](Simulation& s, Resource& r, std::vector<Time>& out) -> Process {
    Lease l = co_await r.acquire();
    co_await s.timeout(msec(5));
    out.push_back(s.now());
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, res, finish));
  sim.run();
  EXPECT_EQ(finish, (std::vector<Time>{msec(5), msec(5), msec(10), msec(10)}));
}

TEST(Resource, EarlyReleaseHandsSlotOver) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<int> order;
  auto holder = [](Simulation& s, Resource& r, std::vector<int>& out) -> Process {
    Lease l = co_await r.acquire();
    co_await s.timeout(msec(1));
    l.release();  // give the slot up before doing more work
    out.push_back(1);
    co_await s.timeout(msec(100));
    out.push_back(3);
  };
  auto waiter = [](Simulation& s, Resource& r, std::vector<int>& out) -> Process {
    Lease l = co_await r.acquire();
    EXPECT_EQ(s.now(), msec(1));
    out.push_back(2);
  };
  sim.spawn(holder(sim, res, order));
  sim.spawn(waiter(sim, res, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Task, RunsInlineAndReturnsValue) {
  Simulation sim;
  auto sub = [](Simulation& s) -> Task<int> {
    co_await s.timeout(msec(2));
    co_return 42;
  };
  int got = 0;
  auto proc = [&](Simulation& s) -> Process {
    got = co_await sub(s);
    EXPECT_EQ(s.now(), msec(2));
  };
  sim.spawn(proc(sim));
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Task, VoidTaskCompletesWithoutSuspending) {
  Simulation sim;
  auto sub = []() -> Task<> { co_return; };
  bool after = false;
  auto proc = [&](Simulation& s) -> Process {
    co_await sub();
    after = true;
    EXPECT_EQ(s.now(), 0);
  };
  sim.spawn(proc(sim));
  sim.run();
  EXPECT_TRUE(after);
}

TEST(Task, NestedTasksCompose) {
  Simulation sim;
  auto inner = [](Simulation& s) -> Task<int> {
    co_await s.timeout(msec(1));
    co_return 10;
  };
  auto outer = [&](Simulation& s) -> Task<int> {
    const int a = co_await inner(s);
    const int b = co_await inner(s);
    co_return a + b;
  };
  int got = 0;
  auto proc = [&](Simulation& s) -> Process {
    got = co_await outer(s);
  };
  sim.spawn(proc(sim));
  sim.run();
  EXPECT_EQ(got, 20);
  EXPECT_EQ(sim.now(), msec(2));
}

TEST(Teardown, SuspendedProcessesAreReclaimed) {
  // A server blocked on a channel forever must not leak or crash at
  // simulation destruction.
  auto server = [](Channel<int>& c, int& sum) -> Process {
    for (;;) sum += co_await c.recv();
  };
  int sum = 0;
  {
    Simulation sim;
    Channel<int> ch(sim);
    sim.spawn(server(ch, sum));
    ch.send(4);
    sim.run();
  }
  EXPECT_EQ(sum, 4);
}

TEST(Teardown, ShutdownReleasesLeases) {
  Simulation sim;
  Resource res(sim, 1);
  auto holder = [](Simulation& s, Resource& r) -> Process {
    Lease l = co_await r.acquire();
    co_await s.timeout(sec(100));  // never finishes
  };
  sim.spawn(holder(sim, res));
  sim.run_until(msec(1));
  EXPECT_EQ(res.in_use(), 1);
  sim.shutdown();  // destroys the frame; the Lease destructor releases
  EXPECT_EQ(res.in_use(), 0);
}

}  // namespace
}  // namespace rms::sim
