// Parameterized property tests for the mining substrate: the generator's
// distributional contracts over a parameter grid, and Apriori-vs-brute-force
// across support thresholds.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "mining/apriori.hpp"
#include "mining/generator.hpp"
#include "mining/rules.hpp"

namespace rms::mining {
namespace {

// ---------------------------------------------------------------------------
// Generator grid.
// ---------------------------------------------------------------------------

using GenCase = std::tuple<double /*avg tx*/, double /*avg pattern*/,
                           std::int64_t /*patterns*/, std::uint64_t /*seed*/>;

class GeneratorGridTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorGridTest, StructuralContractsHold) {
  const auto [avg_tx, avg_pattern, patterns, seed] = GetParam();
  QuestParams p;
  p.num_transactions = 3000;
  p.num_items = 250;
  p.avg_transaction_size = avg_tx;
  p.avg_pattern_size = avg_pattern;
  p.num_patterns = patterns;
  p.seed = seed;
  TransactionDb db = QuestGenerator(p).generate();

  ASSERT_EQ(db.size(), 3000u);
  std::size_t total_items = 0;
  for (std::size_t t = 0; t < db.size(); ++t) {
    auto tx = db.tx(t);
    ASSERT_FALSE(tx.empty());
    for (std::size_t i = 0; i < tx.size(); ++i) {
      ASSERT_LT(tx[i], p.num_items);
      if (i > 0) ASSERT_LT(tx[i - 1], tx[i]);  // sorted unique
    }
    total_items += tx.size();
  }
  // Mean size within a tolerant band of the target (duplicates inside
  // patterns shrink it a little).
  const double mean =
      static_cast<double>(total_items) / static_cast<double>(db.size());
  EXPECT_GT(mean, avg_tx * 0.55) << "mean " << mean;
  EXPECT_LT(mean, avg_tx * 1.45) << "mean " << mean;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorGridTest,
    // Pattern pools below ~50 cannot reach large per-transaction targets
    // after deduplication, so the mean-size band only applies from there.
    ::testing::Combine(::testing::Values(5.0, 10.0, 20.0),
                       ::testing::Values(2.0, 4.0),
                       ::testing::Values(std::int64_t{50}, std::int64_t{200}),
                       ::testing::Values(std::uint64_t{1})),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return "t" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_i" + std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_p" + std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Apriori vs brute force across support thresholds.
// ---------------------------------------------------------------------------

std::map<std::vector<Item>, std::uint32_t> brute_force(
    const TransactionDb& db, std::size_t max_k) {
  std::map<std::vector<Item>, std::uint32_t> counts;
  for (std::size_t t = 0; t < db.size(); ++t) {
    auto tx = db.tx(t);
    const std::size_t n = tx.size();
    RMS_CHECK(n <= 20);
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      const auto bits = static_cast<std::size_t>(__builtin_popcount(mask));
      if (bits == 0 || bits > max_k) continue;
      std::vector<Item> subset;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1u) subset.push_back(tx[i]);
      }
      ++counts[subset];
    }
  }
  return counts;
}

class AprioriSupportTest : public ::testing::TestWithParam<double> {};

TEST_P(AprioriSupportTest, MatchesBruteForce) {
  const double minsup = GetParam();
  QuestParams p;
  p.num_transactions = 300;
  p.num_items = 30;
  p.avg_transaction_size = 6;
  p.avg_pattern_size = 3;
  p.num_patterns = 10;
  p.seed = 44;
  TransactionDb db = QuestGenerator(p).generate();

  AprioriOptions opt;
  opt.max_k = 4;
  const AprioriResult mined = apriori(db, minsup, opt);
  const auto truth = brute_force(db, 4);

  std::size_t expected = 0;
  for (const auto& [items, count] : truth) {
    if (count < mined.min_count) continue;
    ++expected;
    Itemset s;
    for (Item i : items) s.push_back(i);
    const auto it = mined.support.find(s);
    ASSERT_NE(it, mined.support.end()) << s.to_string();
    EXPECT_EQ(it->second, count);
  }
  EXPECT_EQ(mined.support.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AprioriSupportTest,
                         ::testing::Values(0.01, 0.03, 0.08, 0.2, 0.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "minsup_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 1000));
                         });

// ---------------------------------------------------------------------------
// Rule derivation properties across confidence thresholds.
// ---------------------------------------------------------------------------

class RuleConfidenceTest : public ::testing::TestWithParam<double> {};

TEST_P(RuleConfidenceTest, RulesAreExactlyTheQualifyingPartitions) {
  const double minconf = GetParam();
  QuestParams p;
  p.num_transactions = 1500;
  p.num_items = 60;
  p.seed = 55;
  TransactionDb db = QuestGenerator(p).generate();
  const AprioriResult mined = apriori(db, 0.03);
  const auto rules = derive_rules(mined, minconf);

  // Count qualifying partitions directly from the support map.
  std::size_t expected = 0;
  for (const auto& [itemset, count] : mined.support) {
    if (itemset.size() < 2) continue;
    const auto mask_limit = static_cast<std::uint32_t>(1u << itemset.size());
    for (std::uint32_t mask = 1; mask + 1 < mask_limit; ++mask) {
      Itemset ante;
      for (std::size_t i = 0; i < itemset.size(); ++i) {
        if ((mask >> i) & 1u) ante.push_back(itemset[i]);
      }
      const double conf = static_cast<double>(count) /
                          static_cast<double>(mined.support.at(ante));
      if (conf >= minconf) ++expected;
    }
  }
  EXPECT_EQ(rules.size(), expected);
  for (const Rule& r : rules) {
    EXPECT_GE(r.confidence, minconf);
    EXPECT_LE(r.confidence, 1.0 + 1e-12);
    EXPECT_GT(r.support, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Confidences, RuleConfidenceTest,
                         ::testing::Values(0.2, 0.5, 0.8, 0.95),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "conf_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

}  // namespace
}  // namespace rms::mining
