// Sequential Apriori tests: hand-checkable cases, a brute-force cross-check
// on random workloads, and structural invariants (downward closure, pass
// monotonicity).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::mining {
namespace {

TransactionDb tiny_db() {
  // Classic example: 4 transactions over items {1..5}.
  TransactionDb db;
  const std::vector<std::vector<Item>> txs = {
      {1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}};
  for (const auto& t : txs) db.add({t.data(), t.size()});
  return db;
}

TEST(Apriori, TinyExampleMatchesHandComputation) {
  // minsup 50% of 4 = 2 transactions.
  const AprioriResult r = apriori(tiny_db(), 0.5);
  ASSERT_GE(r.large_by_k.size(), 3u);

  // L1 = {1},{2},{3},{5} (item 4 appears once).
  EXPECT_EQ(r.large_by_k[0].size(), 4u);
  EXPECT_EQ(r.support.at(Itemset{1}), 2u);
  EXPECT_EQ(r.support.at(Itemset{2}), 3u);
  EXPECT_EQ(r.support.at(Itemset{3}), 3u);
  EXPECT_EQ(r.support.at(Itemset{5}), 3u);
  EXPECT_EQ(r.support.count(Itemset{4}), 0u);

  // L2 = {1,3},{2,3},{2,5},{3,5}.
  EXPECT_EQ(r.large_by_k[1].size(), 4u);
  EXPECT_EQ(r.support.at(Itemset{1, 3}), 2u);
  EXPECT_EQ(r.support.at(Itemset{2, 3}), 2u);
  EXPECT_EQ(r.support.at(Itemset{2, 5}), 3u);
  EXPECT_EQ(r.support.at(Itemset{3, 5}), 2u);

  // L3 = {2,3,5}.
  EXPECT_EQ(r.large_by_k[2].size(), 1u);
  EXPECT_EQ(r.support.at(Itemset{2, 3, 5}), 2u);
}

TEST(Apriori, MinCountRounding) {
  const AprioriResult r = apriori(tiny_db(), 0.5);
  EXPECT_EQ(r.min_count, 2u);
  EXPECT_EQ(r.num_transactions, 4);
}

TEST(Apriori, PassInfoTracksCandidatesAndLarges) {
  const AprioriResult r = apriori(tiny_db(), 0.5);
  ASSERT_GE(r.passes.size(), 3u);
  EXPECT_EQ(r.passes[0].k, 1u);
  EXPECT_EQ(r.passes[0].large, 4);
  EXPECT_EQ(r.passes[1].k, 2u);
  EXPECT_EQ(r.passes[1].candidates, 6);  // C(4,2)
  EXPECT_EQ(r.passes[1].large, 4);
  EXPECT_EQ(r.passes[2].candidates, 1);  // only {2,3,5} joins+survives prune
  EXPECT_EQ(r.passes[2].large, 1);
}

// Brute force: count every itemset of size <= 3 directly.
std::map<std::vector<Item>, std::uint32_t> brute_force(const TransactionDb& db,
                                                       std::size_t max_k) {
  std::map<std::vector<Item>, std::uint32_t> counts;
  for (std::size_t t = 0; t < db.size(); ++t) {
    auto tx = db.tx(t);
    const std::size_t n = tx.size();
    // size-1..max_k subsets via bitmask (transactions are small).
    RMS_CHECK(n <= 20);
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      const auto bits = static_cast<std::size_t>(__builtin_popcount(mask));
      if (bits == 0 || bits > max_k) continue;
      std::vector<Item> subset;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1u) subset.push_back(tx[i]);
      }
      ++counts[subset];
    }
  }
  return counts;
}

TEST(Apriori, MatchesBruteForceOnRandomWorkloads) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    QuestParams p;
    p.num_transactions = 400;
    p.num_items = 40;
    p.avg_transaction_size = 6;
    p.avg_pattern_size = 3;
    p.num_patterns = 12;
    p.seed = seed;
    TransactionDb db = QuestGenerator(p).generate();

    const double minsup = 0.05;
    AprioriOptions opt;
    opt.max_k = 3;
    const AprioriResult mined = apriori(db, minsup, opt);
    const auto truth = brute_force(db, 3);
    const auto min_count = mined.min_count;

    // Every brute-force-large itemset must be mined with the exact count.
    std::size_t expected_large = 0;
    for (const auto& [items, count] : truth) {
      if (count < min_count) continue;
      ++expected_large;
      Itemset s;
      for (Item i : items) s.push_back(i);
      const auto it = mined.support.find(s);
      ASSERT_NE(it, mined.support.end()) << s.to_string() << " seed " << seed;
      EXPECT_EQ(it->second, count) << s.to_string();
    }
    // And nothing extra.
    EXPECT_EQ(mined.support.size(), expected_large) << "seed " << seed;
  }
}

TEST(Apriori, DownwardClosureHolds) {
  QuestParams p;
  p.num_transactions = 2000;
  p.num_items = 100;
  p.seed = 5;
  TransactionDb db = QuestGenerator(p).generate();
  const AprioriResult r = apriori(db, 0.02);
  for (const auto& [itemset, count] : r.support) {
    EXPECT_GE(count, r.min_count);
    if (itemset.size() < 2) continue;
    for (std::size_t d = 0; d < itemset.size(); ++d) {
      const Itemset sub = itemset.without(d);
      const auto it = r.support.find(sub);
      ASSERT_NE(it, r.support.end())
          << sub.to_string() << " subset of " << itemset.to_string();
      EXPECT_GE(it->second, count);  // anti-monotone support
    }
  }
}

TEST(Apriori, HigherSupportMinesSubset) {
  QuestParams p;
  p.num_transactions = 2000;
  p.num_items = 100;
  p.seed = 6;
  TransactionDb db = QuestGenerator(p).generate();
  const AprioriResult low = apriori(db, 0.02);
  const AprioriResult high = apriori(db, 0.05);
  EXPECT_LT(high.support.size(), low.support.size());
  for (const auto& [itemset, count] : high.support) {
    const auto it = low.support.find(itemset);
    ASSERT_NE(it, low.support.end());
    EXPECT_EQ(it->second, count);
  }
}

TEST(Apriori, HashLineCountIsIrrelevantToResults) {
  QuestParams p;
  p.num_transactions = 1000;
  p.num_items = 60;
  p.seed = 9;
  TransactionDb db = QuestGenerator(p).generate();
  AprioriOptions few;
  few.hash_lines = 7;
  AprioriOptions many;
  many.hash_lines = 1 << 18;
  const AprioriResult a = apriori(db, 0.03, few);
  const AprioriResult b = apriori(db, 0.03, many);
  ASSERT_EQ(a.support.size(), b.support.size());
  for (const auto& [itemset, count] : a.support) {
    EXPECT_EQ(b.support.at(itemset), count);
  }
}

TEST(Apriori, PassCountsShapeLikeTable2) {
  // The paper's Table 2 shape: C explodes in pass 2, then collapses.
  QuestParams p = QuestParams::paper_table2(0.002);  // 20k transactions
  TransactionDb db = QuestGenerator(p).generate();
  const AprioriResult r = apriori(db, 0.007);
  ASSERT_GE(r.passes.size(), 2u);
  const std::int64_t l1 = r.passes[0].large;
  EXPECT_EQ(r.passes[1].candidates, l1 * (l1 - 1) / 2);
  EXPECT_GT(r.passes[1].candidates, 100 * std::max<std::int64_t>(
                                              1, r.passes[1].large));
}

}  // namespace
}  // namespace rms::mining
