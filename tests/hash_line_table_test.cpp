// Hash-line table tests: insert/probe semantics and the paper's 24-byte
// memory accounting.
#include <gtest/gtest.h>

#include "mining/hash_line_table.hpp"

namespace rms::mining {
namespace {

TEST(HashLineTable, ProbeIncrementsOnlyRegisteredCandidates) {
  HashLineTable t(64);
  t.insert(Itemset{1, 2});
  t.insert(Itemset{2, 3});

  EXPECT_TRUE(t.probe(Itemset{1, 2}));
  EXPECT_TRUE(t.probe(Itemset{1, 2}));
  EXPECT_FALSE(t.probe(Itemset{1, 3}));  // not a candidate

  EXPECT_EQ(t.count_of(Itemset{1, 2}), 2);
  EXPECT_EQ(t.count_of(Itemset{2, 3}), 0);
  EXPECT_EQ(t.count_of(Itemset{1, 3}), -1);
}

TEST(HashLineTable, LineOfIsHashModLines) {
  HashLineTable t(17);
  const Itemset s{4, 9};
  EXPECT_EQ(t.line_of(s), s.hash() % 17);
  EXPECT_LT(t.line_of(s), 17u);
}

TEST(HashLineTable, CollidingItemsetsShareALine) {
  // With one line everything collides; probes must still distinguish
  // itemsets within the line (the "linked structures" of §3.3).
  HashLineTable t(1);
  t.insert(Itemset{1});
  t.insert(Itemset{2});
  t.insert(Itemset{3});
  EXPECT_EQ(t.line(0).size(), 3u);
  EXPECT_TRUE(t.probe(Itemset{2}));
  EXPECT_EQ(t.count_of(Itemset{2}), 1);
  EXPECT_EQ(t.count_of(Itemset{1}), 0);
}

TEST(HashLineTable, AccountedBytesIs24PerCandidate) {
  HashLineTable t(8);
  for (Item i = 0; i < 10; ++i) t.insert(Itemset{i, i + 100});
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(t.accounted_bytes(), 240);
}

TEST(HashLineTable, ForEachVisitsEverything) {
  HashLineTable t(4);
  t.insert(Itemset{1, 2}, 5);
  t.insert(Itemset{3, 4}, 7);
  std::int64_t total = 0;
  std::size_t n = 0;
  t.for_each([&](const CountedItemset& e) {
    total += e.count;
    ++n;
  });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(total, 12);
}

TEST(HashLineTableDeathTest, DuplicateInsertAborts) {
  HashLineTable t(8);
  t.insert(Itemset{1, 2});
  EXPECT_DEATH(t.insert(Itemset{1, 2}), "duplicate");
}

}  // namespace
}  // namespace rms::mining
