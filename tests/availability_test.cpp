// Availability mechanism tests: broker view semantics, monitor broadcasting
// at the configured interval, client updates, and shortage-handler arming.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "cluster/cluster.hpp"
#include "core/availability.hpp"
#include "placement/placement.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::core {
namespace {

// Drive the broker the way RemoteBackend does: one placement request per
// swap-out, debiting the estimate on success.
std::optional<net::NodeId> pick(placement::MemoryBroker& b, std::int64_t bytes,
                                net::NodeId exclude = -1, Time now = -1) {
  placement::PlacementRequest req;
  req.bytes = bytes;
  req.exclude = exclude;
  req.now = now;
  const placement::PlacementDecision d = b.choose(req);
  if (!d.ok()) return std::nullopt;
  return d.node;
}

TEST(MemoryBroker, UpdateAndStaleness) {
  placement::MemoryBroker t({10, 11});
  EXPECT_EQ(t.available(10), 0);
  EXPECT_TRUE(t.update(AvailabilityInfo{10, 5 << 20, 1}, msec(1)));
  EXPECT_EQ(t.available(10), 5 << 20);
  // Stale (same seq) report is dropped.
  EXPECT_FALSE(t.update(AvailabilityInfo{10, 9 << 20, 1}, msec(2)));
  EXPECT_EQ(t.available(10), 5 << 20);
  EXPECT_TRUE(t.update(AvailabilityInfo{10, 9 << 20, 2}, msec(3)));
  EXPECT_EQ(t.available(10), 9 << 20);
}

TEST(MemoryBroker, ChooseRoundRobinsOverQualifyingNodes) {
  placement::MemoryBroker t({5, 6, 7});
  t.update(AvailabilityInfo{5, 10 << 20, 1}, 0);
  t.update(AvailabilityInfo{6, 10 << 20, 1}, 0);
  t.update(AvailabilityInfo{7, 10 << 20, 1}, 0);
  std::vector<net::NodeId> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(*pick(t, 1 << 20));
  EXPECT_EQ(picks, (std::vector<net::NodeId>{5, 6, 7, 5, 6, 7}));
}

TEST(MemoryBroker, ChooseSkipsShortAndExcludedNodes) {
  placement::MemoryBroker t({5, 6, 7});
  t.update(AvailabilityInfo{5, 1 << 10, 1}, 0);  // too small
  t.update(AvailabilityInfo{6, 10 << 20, 1}, 0);
  t.update(AvailabilityInfo{7, 10 << 20, 1}, 0);
  EXPECT_EQ(*pick(t, 1 << 20), 6);
  EXPECT_EQ(*pick(t, 1 << 20, /*exclude=*/7), 6);
  EXPECT_EQ(*pick(t, 1 << 20), 7);
}

TEST(MemoryBroker, ChooseDeniesWhenNobodyQualifies) {
  placement::MemoryBroker t({5});
  EXPECT_FALSE(pick(t, 1).has_value());  // never reported
  t.update(AvailabilityInfo{5, 100, 1}, 0);
  EXPECT_FALSE(pick(t, 1000).has_value());
  EXPECT_TRUE(pick(t, 50).has_value());
  // Decisions are tallied per policy.
  EXPECT_EQ(t.stats().counter("placement.paper-rr.chosen"), 1);
  EXPECT_EQ(t.stats().counter("placement.paper-rr.denied"), 2);
}

TEST(MemoryBroker, ChooseDebitsTheEstimateUntilNextReport) {
  placement::MemoryBroker t({5});
  t.update(AvailabilityInfo{5, 1 << 20, 1}, 0);
  EXPECT_TRUE(pick(t, 1 << 19).has_value());
  EXPECT_EQ(t.available(5), 1 << 19);  // choose() debits what it granted
  t.debit(5, 1 << 20);                 // clamps at zero
  EXPECT_EQ(t.available(5), 0);
  t.update(AvailabilityInfo{5, 2 << 20, 2}, 0);
  EXPECT_EQ(t.available(5), 2 << 20);
}

TEST(MemoryBroker, StaleEntriesStopAttractingSwapOuts) {
  placement::MemoryBroker t({5, 6});
  t.set_max_age(sec(1));
  t.update(AvailabilityInfo{5, 10 << 20, 1}, 0);
  t.update(AvailabilityInfo{6, 10 << 20, 1}, sec(2));
  // At t = 2.5 s node 5's report (t = 0) is older than max_age: excluded.
  EXPECT_TRUE(t.expired(5, msec(2500)));
  EXPECT_FALSE(t.expired(6, msec(2500)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*pick(t, 1 << 20, -1, msec(2500)), 6);
  }
  EXPECT_GE(t.stats().counter("placement.paper-rr.stale_skip"), 4);
  // A fresh report re-qualifies the node.
  t.update(AvailabilityInfo{5, 10 << 20, 2}, msec(2600));
  EXPECT_FALSE(t.expired(5, msec(2700)));
  std::vector<net::NodeId> picks;
  for (int i = 0; i < 2; ++i) {
    picks.push_back(*pick(t, 1 << 20, -1, msec(2700)));
  }
  EXPECT_EQ((std::set<net::NodeId>(picks.begin(), picks.end())),
            (std::set<net::NodeId>{5, 6}));
}

TEST(MemoryBroker, MarkDeadExcludesUntilANewerReportRevives) {
  placement::MemoryBroker t({5, 6});
  t.update(AvailabilityInfo{5, 10 << 20, 1}, 0);
  t.update(AvailabilityInfo{6, 10 << 20, 1}, 0);
  t.mark_dead(5);
  EXPECT_TRUE(t.dead(5));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*pick(t, 1 << 20), 6);
  }
  // A stale (same-seq) report does not revive.
  EXPECT_FALSE(t.update(AvailabilityInfo{5, 10 << 20, 1}, sec(1)));
  EXPECT_TRUE(t.dead(5));
  // A fresh report (the node restarted and its monitor resumed) does.
  EXPECT_TRUE(t.update(AvailabilityInfo{5, 10 << 20, 2}, sec(2)));
  EXPECT_FALSE(t.dead(5));
  std::set<net::NodeId> picks;
  for (int i = 0; i < 4; ++i) picks.insert(*pick(t, 1 << 20));
  EXPECT_EQ(picks, (std::set<net::NodeId>{5, 6}));
}

TEST(MemoryBroker, QuarantinedNodeIsNeverChosenAndStaysQuarantined) {
  placement::MemoryBroker t({5, 6});
  t.update(AvailabilityInfo{5, 10 << 20, 1}, 0);
  t.update(AvailabilityInfo{6, 10 << 20, 1}, 0);
  t.quarantine(5);
  EXPECT_TRUE(t.quarantined(5));
  EXPECT_FALSE(t.dead(5));  // alive, just untrusted
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*pick(t, 1 << 20), 6);
  }
  // Unlike mark_dead, a fresh heartbeat does NOT clear quarantine: the node
  // keeps reporting (it is up) but keeps serving corrupt data.
  EXPECT_TRUE(t.update(AvailabilityInfo{5, 10 << 20, 2}, sec(1)));
  EXPECT_TRUE(t.quarantined(5));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*pick(t, 1 << 20), 6);
  }
  // With every node quarantined, nobody qualifies (callers degrade to disk).
  t.quarantine(6);
  EXPECT_FALSE(pick(t, 1 << 20).has_value());
}

TEST(Availability, FailureDetectorSuspectsASilentMonitor) {
  sim::Simulation sim;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;  // 0: app node, 1: monitored memory node
  cluster::Cluster cl(sim, cfg);

  placement::MemoryBroker table({1});
  ClientConfig ccfg;
  sim.spawn(availability_client(cl.node(0), table, ccfg,
                                [](net::NodeId) -> sim::Task<> { co_return; }));
  MonitorConfig mcfg;
  mcfg.interval = sec(1);
  mcfg.subscribers = {0};
  sim.spawn(availability_monitor(cl.node(1), mcfg));

  std::vector<net::NodeId> suspects;
  DetectorConfig dcfg;
  dcfg.expected_interval = sec(1);
  dcfg.miss_threshold = 3;
  sim.spawn(failure_detector(cl.node(0), table, dcfg,
                             [&](net::NodeId n) -> sim::Task<> {
                               suspects.push_back(n);
                               co_return;
                             }));

  sim.call_at(msec(3500), [&] { cl.node(1).crash(); });
  sim.run_until(sec(6));
  EXPECT_TRUE(suspects.empty());  // silence below the threshold so far
  sim.run_until(msec(7200));
  ASSERT_EQ(suspects.size(), 1u);  // > 3 missed heartbeats: suspected once
  EXPECT_EQ(suspects[0], 1);
  EXPECT_TRUE(table.dead(1));

  // Restart: the monitor resumes with fresh sequence numbers and the next
  // accepted report clears the suspicion.
  sim.call_at(msec(7500), [&] { cl.node(1).restart(); });
  sim.run_until(sec(10));
  EXPECT_FALSE(table.dead(1));
  EXPECT_EQ(suspects.size(), 1u);  // not re-suspected after revival
}

TEST(Availability, MonitorBroadcastsAtInterval) {
  sim::Simulation sim;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;  // node 2 monitors; nodes 0, 1 subscribe
  cluster::Cluster cl(sim, cfg);

  MonitorConfig mcfg;
  mcfg.interval = sec(3);
  mcfg.subscribers = {0, 1};
  sim.spawn(availability_monitor(cl.node(2), mcfg));

  std::vector<std::pair<Time, std::int64_t>> reports;
  auto listener = [](sim::Simulation& s, cluster::Node& n,
                     std::vector<std::pair<Time, std::int64_t>>& out)
      -> sim::Process {
    for (;;) {
      net::Message m = co_await n.mailbox().recv(kAvailInfo);
      out.emplace_back(s.now(), m.as<AvailabilityInfo>().available_bytes);
    }
  };
  sim.spawn(listener(sim, cl.node(0), reports));

  sim.run_until(sec(10));
  ASSERT_EQ(reports.size(), 4u);  // t~0, 3, 6, 9
  EXPECT_LT(reports[0].first, msec(5));
  EXPECT_NEAR(static_cast<double>(reports[1].first), static_cast<double>(sec(3)),
              static_cast<double>(msec(5)));
  EXPECT_EQ(reports[0].second, cl.node(2).memory().available());
}

TEST(Availability, MonitorReportsWithdrawal) {
  sim::Simulation sim;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cluster::Cluster cl(sim, cfg);

  MonitorConfig mcfg;
  mcfg.interval = sec(1);
  mcfg.subscribers = {0};
  sim.spawn(availability_monitor(cl.node(1), mcfg));

  std::vector<std::int64_t> seen;
  auto listener = [](cluster::Node& n, std::vector<std::int64_t>& out)
      -> sim::Process {
    for (;;) {
      net::Message m = co_await n.mailbox().recv(kAvailInfo);
      out.push_back(m.as<AvailabilityInfo>().available_bytes);
    }
  };
  sim.spawn(listener(cl.node(0), seen));

  // Withdraw the node's memory at t = 1.5 s.
  sim.call_at(msec(1500), [&] {
    cl.node(1).memory().external_bytes = cl.node(1).memory().total_bytes;
  });
  sim.run_until(sec(4));
  ASSERT_GE(seen.size(), 3u);
  EXPECT_GT(seen[0], 0);
  EXPECT_GT(seen[1], 0);
  EXPECT_EQ(seen[2], 0);  // first tick after withdrawal
}

TEST(Availability, ClientUpdatesTableAndFiresShortageOnce) {
  sim::Simulation sim;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cluster::Cluster cl(sim, cfg);

  placement::MemoryBroker table({1});
  int shortage_calls = 0;
  ClientConfig ccfg;
  ccfg.shortage_threshold_bytes = 1 << 20;
  sim.spawn(availability_client(
      cl.node(0), table, ccfg,
      [&](net::NodeId holder) -> sim::Task<> {
        EXPECT_EQ(holder, 1);
        ++shortage_calls;
        co_return;
      }));

  MonitorConfig mcfg;
  mcfg.interval = sec(1);
  mcfg.subscribers = {0};
  sim.spawn(availability_monitor(cl.node(1), mcfg));

  sim.call_at(msec(1500), [&] {
    cl.node(1).memory().external_bytes = cl.node(1).memory().total_bytes;
  });
  sim.run_until(sec(6));

  EXPECT_GT(table.available(1), -1);
  EXPECT_EQ(table.available(1), 0);
  // Several shortage broadcasts arrived but the handler fired once.
  EXPECT_EQ(shortage_calls, 1);
  EXPECT_GT(cl.node(0).stats().counter("client.availability_updates"), 2);
}

TEST(Availability, ShortageRearmsAfterRecovery) {
  sim::Simulation sim;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cluster::Cluster cl(sim, cfg);

  placement::MemoryBroker table({1});
  int shortage_calls = 0;
  ClientConfig ccfg;
  ccfg.shortage_threshold_bytes = 1 << 20;
  sim.spawn(availability_client(cl.node(0), table, ccfg,
                                [&](net::NodeId) -> sim::Task<> {
                                  ++shortage_calls;
                                  co_return;
                                }));
  MonitorConfig mcfg;
  mcfg.interval = sec(1);
  mcfg.subscribers = {0};
  sim.spawn(availability_monitor(cl.node(1), mcfg));

  auto& mem = cl.node(1).memory();
  sim.call_at(msec(1500), [&] { mem.external_bytes = mem.total_bytes; });
  sim.call_at(msec(3500), [&] { mem.external_bytes = 0; });  // recovery
  sim.call_at(msec(5500), [&] { mem.external_bytes = mem.total_bytes; });
  sim.run_until(sec(8));
  EXPECT_EQ(shortage_calls, 2);
}

}  // namespace
}  // namespace rms::core
