// Tests for the observability layer: JSON writer, trace recorder ring
// buffer + Chrome export, and the metrics sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace rms::obs {
namespace {

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", std::int64_t{1});
  w.key("b");
  w.begin_array();
  w.value(std::int64_t{2});
  w.value("three");
  w.begin_object();
  w.kv("four", 4.5);
  w.end_object();
  w.end_array();
  w.kv("c", true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,"three",{"four":4.5}],"c":true})");
}

TEST(JsonWriter, EscapesStringsAndControlChars) {
  JsonWriter w;
  w.begin_object();
  w.kv("k", "quote\" back\\ nl\n tab\t bell\x01");
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"k\":\"quote\\\" back\\\\ nl\\n tab\\t bell\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.value(2.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,2.5]");
}

TEST(TraceRecorder, RecordsSpansAndInstantsInOrder) {
  TraceRecorder t(16);
  t.span(EventKind::kSwapOut, 3, msec(10), msec(12), 7, 4096);
  t.instant(EventKind::kBarrier, TraceRecorder::kPhaseTrack, msec(20), 2);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.recorded(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
  const TraceEvent& swap = t.event(0);
  EXPECT_EQ(swap.kind, EventKind::kSwapOut);
  EXPECT_EQ(swap.track, 3);
  EXPECT_EQ(swap.start, msec(10));
  EXPECT_EQ(swap.duration, msec(2));
  EXPECT_EQ(swap.arg0, 7);
  EXPECT_EQ(swap.arg1, 4096);
  EXPECT_LT(t.event(1).duration, 0);  // instant
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder t(4);
  for (int i = 0; i < 10; ++i) {
    t.instant(EventKind::kBarrier, 0, msec(i), i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest retained is event #6; record order is preserved.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.event(i).arg0, static_cast<std::int64_t>(6 + i));
  }
}

TEST(TraceRecorder, BeginRunLabelsAndPartitionsRuns) {
  TraceRecorder t(16);
  t.begin_run("first");  // nothing recorded yet: renames implicit run 0
  t.instant(EventKind::kBarrier, 0, msec(1));
  t.begin_run("second");
  t.instant(EventKind::kBarrier, 0, msec(2));
  ASSERT_EQ(t.run_labels().size(), 2u);
  EXPECT_EQ(t.run_labels()[0], "first");
  EXPECT_EQ(t.run_labels()[1], "second");
  EXPECT_EQ(t.event(0).run, 0);
  EXPECT_EQ(t.event(1).run, 1);
}

TEST(TraceRecorder, ChromeTraceJsonShape) {
  TraceRecorder t(16);
  t.begin_run("demo");
  t.span(EventKind::kFaultIn, 2, msec(5), msec(6), 11, 64);
  t.instant(EventKind::kSuspicion, 1, msec(7), 9);
  const std::string json = t.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_in\""), std::string::npos);
  EXPECT_NE(json.find("\"suspicion\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("demo"), std::string::npos);
  // Timestamps are microseconds: the 5 ms span starts at 5000 us.
  EXPECT_NE(json.find("\"ts\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);
}

TEST(TraceRecorder, KindNamesCoverEveryKind) {
  for (int k = 0; k <= static_cast<int>(EventKind::kDiskIo); ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_NE(TraceRecorder::kind_name(kind), nullptr);
    EXPECT_GT(std::string(TraceRecorder::kind_name(kind)).size(), 0u);
    EXPECT_GT(std::string(TraceRecorder::kind_category(kind)).size(), 0u);
  }
}

TEST(MetricsSampler, SamplesGaugesAtInterval) {
  sim::Simulation sim;
  MetricsSampler sampler(msec(500));
  sampler.begin_run("run");
  double v = 1.0;
  sampler.add_gauge("g", 0, [&v] { return v; });
  sampler.add_gauge("h", 1, [] { return 42.0; });
  sim.spawn(sample_process(sim, sampler));
  sim.call_at(msec(750), [&] { v = 2.0; });
  sim.run_until(msec(1100));
  sim.shutdown();
  sampler.clear_gauges();

  ASSERT_EQ(sampler.runs().size(), 1u);
  const MetricsSampler::Run& run = sampler.runs()[0];
  ASSERT_EQ(run.series.size(), 2u);
  EXPECT_EQ(run.series[0].name, "g");
  EXPECT_EQ(run.series[1].node, 1);
  // Samples at t = 0, 500, 1000 ms.
  ASSERT_EQ(run.at.size(), 3u);
  EXPECT_EQ(run.at[1], msec(500));
  EXPECT_DOUBLE_EQ(run.rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(run.rows[2][0], 2.0);  // saw the change at 750 ms
  EXPECT_DOUBLE_EQ(run.rows[2][1], 42.0);
}

TEST(MetricsSampler, JsonCarriesSchemaAndSeries) {
  MetricsSampler sampler(sec(1));
  sampler.begin_run("only");
  sampler.add_gauge("depth", 3, [] { return 7.0; });
  sampler.sample(sec(2));
  const std::string json = sampler.json();
  EXPECT_NE(json.find("rmswap.metrics/v1"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"only\""), std::string::npos);
}

}  // namespace
}  // namespace rms::obs
