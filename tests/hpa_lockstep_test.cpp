// Lockstep regression: the runtime-ported HPA must reproduce the
// pre-refactor miner bit-for-bit in virtual time.
//
// The expected integer-nanosecond values below were captured from the
// original hpa::Runner (hard-coded app_main/coordinator loop, commit
// 242cffd) on three configurations that exercise every phase path: an
// unconstrained run, a memory-limited remote-update run (pagefaults,
// swap-outs, and update batching all active), and a crash-failover run
// (replication, failure detection, re-replication). Any divergence --
// one extra await, a reordered barrier, a changed charge -- shifts these
// totals and fails the test.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hpa/hpa.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams small_workload() {
  mining::QuestParams p;
  p.num_transactions = 3000;
  p.num_items = 200;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 40;
  p.seed = 3;
  return p;
}

HpaConfig small_config() {
  HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 4;
  c.workload = small_workload();
  c.min_support = 0.02;
  c.hash_lines = 4096;
  return c;
}

/// One pass of the pre-refactor reference: candidate count, large count,
/// duration, and the build/count/determine phase breakdown, all integer ns.
struct PassRef {
  std::int64_t k;
  std::int64_t candidates;
  std::int64_t large;
  Time duration;
  Time build;
  Time count;
  Time determine;
};

// Pass 1 has no phase breakdown (the prologue runs outside the phase loop).
const std::vector<PassRef> kNoLimitRef = {
    {1, 200, 79, 17015284, 0, 0, 0},
    {2, 3081, 345, 584710267, 27924000, 540286267, 16500000},
    {3, 1227, 111, 1311660500, 11288000, 1293092500, 7280000},
    {4, 56, 11, 2394787167, 544000, 2392946767, 1296400},
    {5, 2, 1, 3529661567, 28000, 3528639300, 994267},
};
constexpr Time kNoLimitTotal = 7847834785;

void expect_pass(const HpaResult& r, const PassRef& ref) {
  const PassReport* p = r.pass(ref.k);
  ASSERT_NE(p, nullptr) << "pass " << ref.k;
  EXPECT_EQ(p->candidates_global, ref.candidates) << "pass " << ref.k;
  EXPECT_EQ(p->large_global, ref.large) << "pass " << ref.k;
  EXPECT_EQ(p->duration, ref.duration) << "pass " << ref.k;
  if (ref.k == 1) {
    EXPECT_TRUE(p->phase_time.empty()) << "pass 1 has no phase loop";
    return;
  }
  ASSERT_EQ(p->phase_time.size(), kNumPhases) << "pass " << ref.k;
  EXPECT_EQ(p->phase(kBuildPhase), ref.build) << "pass " << ref.k;
  EXPECT_EQ(p->phase(kCountPhase), ref.count) << "pass " << ref.k;
  EXPECT_EQ(p->phase(kDeterminePhase), ref.determine) << "pass " << ref.k;
}

TEST(HpaLockstep, NoLimitRunIsBitIdenticalToPreRefactorRunner) {
  const HpaResult r = run_hpa(small_config());
  EXPECT_EQ(r.total_time, kNoLimitTotal);
  ASSERT_EQ(r.passes.size(), kNoLimitRef.size());
  for (const PassRef& ref : kNoLimitRef) expect_pass(r, ref);
  for (const PassReport& p : r.passes) {
    EXPECT_EQ(p.max_pagefaults(), 0) << "pass " << p.k;
  }
  // The registry-driven phase names match the old hard-coded order.
  ASSERT_EQ(r.phase_names.size(), kNumPhases);
  EXPECT_EQ(r.phase_names[kBuildPhase], "build");
  EXPECT_EQ(r.phase_names[kCountPhase], "count");
  EXPECT_EQ(r.phase_names[kDeterminePhase], "determine");
}

TEST(HpaLockstep, RemoteUpdateUnderLimitIsBitIdentical) {
  HpaConfig c = small_config();
  c.memory_limit_bytes = 8 << 10;
  c.policy = core::SwapPolicy::kRemoteUpdate;
  const HpaResult r = run_hpa(c);
  EXPECT_EQ(r.total_time, 8464579494);

  // Only pass 2 exceeds the 8 KB limit; passes 3-5 fit and replay the
  // unconstrained timings exactly.
  std::vector<PassRef> ref = kNoLimitRef;
  ref[1].duration = 1201454976;
  ref[1].build = 608396307;
  ref[1].count = 547092000;
  ref[1].determine = 45966669;
  for (const PassRef& pr : ref) expect_pass(r, pr);

  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->pagefaults_per_node, (std::vector<std::int64_t>{97, 92, 78, 86}));
  EXPECT_EQ(p2->swap_outs_per_node,
            (std::vector<std::int64_t>{437, 438, 442, 423}));
  EXPECT_EQ(p2->updates_per_node,
            (std::vector<std::int64_t>{11098, 11539, 11968, 11800}));
}

TEST(HpaLockstep, CrashFailoverRunIsBitIdentical) {
  HpaConfig c = small_config();
  c.memory_limit_bytes = 8 << 10;
  c.policy = core::SwapPolicy::kRemoteSwap;
  c.replicate_k = 1;
  c.validate_invariants = true;
  c.crashes.push_back({0, sec(2), -1});
  const HpaResult r = run_hpa(c);
  EXPECT_EQ(r.total_time, 53905897312);

  std::vector<PassRef> ref = kNoLimitRef;
  ref[1].duration = 46642772794;
  ref[1].build = 1111815093;
  ref[1].count = 45406105433;
  ref[1].determine = 124852268;
  for (const PassRef& pr : ref) expect_pass(r, pr);

  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->pagefaults_per_node,
            (std::vector<std::int64_t>{6888, 6532, 6905, 6658}));
  EXPECT_EQ(p2->swap_outs_per_node,
            (std::vector<std::int64_t>{7220, 6884, 7266, 7004}));
  EXPECT_EQ(p2->updates_per_node, (std::vector<std::int64_t>{0, 0, 0, 0}));
}

}  // namespace
}  // namespace rms::hpa
