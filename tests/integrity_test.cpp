// End-to-end line-integrity tests (corruption extension): flipped bits in
// swapped lines — on the wire or at rest on a memory server — must never be
// counted into support totals. With a surviving good copy (replicate_k
// mirror or the tiered disk shadow) the run self-repairs and the mining
// result stays bit-identical to the sequential reference; with no good copy
// the line is orphaned (counts lost, never inflated). Also covers
// redundancy restoration: after a holder crash consumes backups by
// promotion, re-replication re-mirrors the survivors so a second crash is
// still harmless.
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams workload() {
  mining::QuestParams p;
  p.num_transactions = 6000;
  p.num_items = 200;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 40;
  p.seed = 21;
  return p;
}

HpaConfig config(const mining::TransactionDb* db, core::SwapPolicy policy) {
  HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 6;
  c.workload = workload();
  c.min_support = 0.01;
  c.hash_lines = 2048;
  c.shared_db = db;
  c.policy = policy;
  // Fast monitor + tight RPC deadlines so crashes are noticed at test scale.
  c.monitor_interval = msec(200);
  c.rpc_deadline = msec(500);
  c.rpc_max_retries = 1;
  // Full invariant sweep at every phase barrier: checksum stamps, replica
  // counts vs unreplicated tracking, holder/byte accounting.
  c.validate_invariants = true;
  return c;
}

class IntegrityFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new mining::TransactionDb(
        mining::QuestGenerator(workload()).generate());
    seq_ = new mining::AprioriResult(apriori(*db_, 0.01));
    HpaConfig probe = config(db_, core::SwapPolicy::kNoLimit);
    const HpaResult nolimit = run_hpa(probe);
    const PassReport* p2 = nolimit.pass(2);
    std::int64_t max_cand = 0;
    for (std::int64_t c : p2->candidates_per_node) {
      max_cand = std::max(max_cand, c);
    }
    limit_ = max_cand * 24 * 6 / 10;
    // Mid-run instant: pass-2 counting in full swing, plenty swapped out.
    mid_run_ = nolimit.total_time / 3;
  }
  static void TearDownTestSuite() {
    delete db_;
    delete seq_;
  }

  /// A wire-corruption episode covering the whole (fault-lengthened) run.
  static HpaConfig::Corruption wire_episode(double flip_rate) {
    HpaConfig::Corruption ep;
    ep.at = msec(1);
    ep.duration = mid_run_ * 30;
    ep.flip_rate = flip_rate;
    return ep;
  }

  static void expect_same_mining(const mining::AprioriResult& a,
                                 const mining::AprioriResult& b) {
    ASSERT_EQ(a.support.size(), b.support.size());
    for (const auto& [itemset, count] : a.support) {
      const auto it = b.support.find(itemset);
      ASSERT_NE(it, b.support.end()) << itemset.to_string();
      EXPECT_EQ(it->second, count) << itemset.to_string();
    }
  }

  /// Corrupt data must never inflate a count: every reported itemset is
  /// genuinely large with a count no higher than the sequential truth.
  static void expect_counts_not_inflated(const mining::AprioriResult& truth,
                                         const mining::AprioriResult& got) {
    for (const auto& [itemset, count] : got.support) {
      const auto it = truth.support.find(itemset);
      ASSERT_NE(it, truth.support.end()) << itemset.to_string();
      EXPECT_LE(count, it->second) << itemset.to_string();
    }
  }

  static mining::TransactionDb* db_;
  static mining::AprioriResult* seq_;
  static std::int64_t limit_;
  static Time mid_run_;
};

mining::TransactionDb* IntegrityFixture::db_ = nullptr;
mining::AprioriResult* IntegrityFixture::seq_ = nullptr;
std::int64_t IntegrityFixture::limit_ = 0;
Time IntegrityFixture::mid_run_ = 0;

TEST_F(IntegrityFixture, WireCorruptionSweepWithReplicaSelfRepairs) {
  // Property sweep: policy x flip rate, replicate_k = 1. Every detected
  // corruption repairs from the mirror; the result can differ from the
  // sequential truth only if some line lost both copies (orphaned) — and it
  // must never inflate.
  const core::SwapPolicy policies[] = {core::SwapPolicy::kRemoteUpdate,
                                       core::SwapPolicy::kRemoteSwap};
  const double rates[] = {0.001, 0.02};
  for (const core::SwapPolicy policy : policies) {
    for (const double rate : rates) {
      SCOPED_TRACE(testing::Message()
                   << core::to_string(policy) << " flip_rate=" << rate);
      HpaConfig c = config(db_, policy);
      c.memory_limit_bytes = limit_;
      c.replicate_k = 1;
      c.corruption = {wire_episode(rate)};
      const HpaResult r = run_hpa(c);
      expect_counts_not_inflated(*seq_, r.mined);
      if (r.failover.orphaned_lines == 0) {
        expect_same_mining(*seq_, r.mined);
      }
      if (rate >= 0.01) {
        // The high-rate runs must actually exercise the machinery.
        EXPECT_GT(r.stats.counter("net.corrupted_payloads"), 0);
      }
      if (rate <= 0.001) {
        // Acceptance bar: at realistic flip rates a single mirror absorbs
        // every hit — the output is exactly the fault-free result.
        EXPECT_EQ(r.failover.orphaned_lines, 0);
        expect_same_mining(*seq_, r.mined);
      }
    }
  }
}

TEST_F(IntegrityFixture, AtRestCorruptionRepairsFromReplica) {
  // Flip bits in lines stored on every memory server mid-pass-2. Simple
  // swapping faults lines back during counting, so the owner's checksum
  // verification catches the rot in-band and promotes the mirror.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  HpaConfig::Corruption ep;
  ep.at = mid_run_;
  ep.duration = msec(100);
  ep.rest_flip_rate = 0.05;
  c.corruption = {ep};
  const HpaResult r = run_hpa(c);
  expect_counts_not_inflated(*seq_, r.mined);
  EXPECT_GT(r.integrity.checksum_mismatches, 0);
  EXPECT_GT(r.integrity.repaired_from_replica +
                r.failover.promoted_lines, 0);
  if (r.failover.orphaned_lines == 0) expect_same_mining(*seq_, r.mined);
}

TEST_F(IntegrityFixture, ServerScrubDropsCorruptCopies) {
  // Same at-rest injection, but a scrub pass runs right after: the servers
  // drop the mismatched copies themselves, so owners see a clean miss
  // (ok=false) instead of a corrupt payload and recover via the mirror.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  HpaConfig::Corruption ep;
  ep.at = mid_run_;
  ep.duration = msec(100);
  ep.rest_flip_rate = 0.05;
  ep.scrub = true;
  c.corruption = {ep};
  const HpaResult r = run_hpa(c);
  expect_counts_not_inflated(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("server.scrub_mismatches"), 0);
  if (r.failover.orphaned_lines == 0) expect_same_mining(*seq_, r.mined);
}

TEST_F(IntegrityFixture, TieredShadowRepairsFromDiskExactly) {
  // No replica at all — the tiered backend's local disk shadow is the good
  // copy. Every corrupt remote payload repairs from the shadow, so the run
  // is exact even at an aggressive flip rate.
  HpaConfig c = config(db_, core::SwapPolicy::kTiered);
  c.memory_limit_bytes = limit_;
  c.integrity_disk_shadow = true;
  c.corruption = {wire_episode(0.02)};
  const HpaResult r = run_hpa(c);
  EXPECT_GT(r.stats.counter("net.corrupted_payloads"), 0);
  EXPECT_GT(r.integrity.repaired_from_disk, 0);
  EXPECT_EQ(r.integrity.lines_lost, 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
  expect_same_mining(*seq_, r.mined);
}

TEST_F(IntegrityFixture, CorruptionWithoutRedundancyOrphansNeverInflates) {
  // No mirror, no shadow: a corrupt payload has no good copy left. The line
  // is orphaned — its counts are lost but garbage is never used, so the
  // result underestimates and never inflates.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.corruption = {wire_episode(0.05)};
  const HpaResult r = run_hpa(c);
  expect_counts_not_inflated(*seq_, r.mined);
  EXPECT_GT(r.integrity.checksum_mismatches, 0);
  EXPECT_GT(r.integrity.lines_lost, 0);
  // Every corrupt-orphan is an orphan, but a corrupted swap-out push also
  // orphans (the server rejects it, so the later fault-in just misses).
  EXPECT_LE(r.integrity.lines_lost, r.failover.orphaned_lines);
}

TEST_F(IntegrityFixture, RepeatedCorruptionQuarantinesTheHolder) {
  // One memory node serves corrupt payloads half the time. After
  // quarantine_after strikes each owner excludes it from placement; the
  // mirrors (always on other nodes) keep the run exact.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  HpaConfig::Corruption ep = wire_episode(0.5);
  ep.memory_node_index = 0;  // only node 0's links corrupt
  c.corruption = {ep};
  const HpaResult r = run_hpa(c);
  EXPECT_GT(r.integrity.checksum_mismatches, 0);
  EXPECT_GT(r.integrity.quarantines, 0);
  expect_counts_not_inflated(*seq_, r.mined);
  if (r.failover.orphaned_lines == 0) expect_same_mining(*seq_, r.mined);
}

TEST_F(IntegrityFixture, ReReplicationSurvivesASecondCrash) {
  // Crash one holder mid-pass-2: backups are promoted (consuming the
  // redundancy) and re_replicate re-mirrors the survivors. A second crash
  // later must still find a good copy of everything — the acceptance bar
  // for redundancy restoration.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  c.crashes = {{0, mid_run_, -1}, {1, mid_run_ * 2, -1}};
  const HpaResult r = run_hpa(c);
  EXPECT_GT(r.failover.promoted_lines, 0);
  EXPECT_GT(r.integrity.re_replications, 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
  expect_same_mining(*seq_, r.mined);
}

TEST_F(IntegrityFixture, ReReplicationProtectsSimpleSwappingToo) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  c.crashes = {{0, mid_run_, -1}, {1, mid_run_ * 2, -1}};
  const HpaResult r = run_hpa(c);
  EXPECT_GT(r.integrity.re_replications, 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
  expect_same_mining(*seq_, r.mined);
}

TEST_F(IntegrityFixture, LostUpdateOpsNotDoubleCountedWithReplicas) {
  // Regression (failover accounting audit): update ops queued towards a
  // crashed holder used to be counted lost wholesale, even though mirror
  // ops survive at the primary and primary ops survive at the backup. With
  // full redundancy a single crash loses nothing — the result is exact and
  // the lost-op counter must agree.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  c.crashes = {{0, mid_run_, -1}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.failover.updates_mirrored, 0);
  EXPECT_EQ(r.failover.lost_update_ops, 0);
}

TEST_F(IntegrityFixture, CorruptionSeededRunsAreDeterministic) {
  // Same config, same seeds: the corruption draws, repairs, and virtual
  // timeline must replay identically.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  c.corruption = {wire_episode(0.02)};
  const HpaResult r1 = run_hpa(c);
  const HpaResult r2 = run_hpa(c);
  EXPECT_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(r1.integrity.checksum_mismatches, r2.integrity.checksum_mismatches);
  EXPECT_EQ(r1.integrity.lines_lost, r2.integrity.lines_lost);
  expect_same_mining(r1.mined, r2.mined);
}

}  // namespace
}  // namespace rms::hpa
