// HashLineStore tests: the memory limit, LRU line eviction, the three swap
// policies, faulting, update batching, and end-of-pass collection.
#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::core {
namespace {

using mining::Item;
using mining::Itemset;

// A world with one application node (0) and two memory servers (1, 2) whose
// availability is pre-seeded (no monitors: tests stay fully deterministic).
struct World {
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl;
  std::unique_ptr<MemoryServer> server1;
  std::unique_ptr<MemoryServer> server2;
  placement::MemoryBroker table{{1, 2}};

  World() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 3;
    cl = std::make_unique<cluster::Cluster>(sim, cfg);
    server1 = std::make_unique<MemoryServer>(cl->node(1));
    server2 = std::make_unique<MemoryServer>(cl->node(2));
    sim.spawn(server1->serve());
    sim.spawn(server2->serve());
    table.update(AvailabilityInfo{1, 32 << 20, 1}, 0);
    table.update(AvailabilityInfo{2, 32 << 20, 1}, 0);
  }

  HashLineStore::Config config(SwapPolicy policy, std::int64_t limit,
                               std::size_t lines = 8) {
    HashLineStore::Config c;
    c.num_lines = lines;
    c.memory_limit_bytes = limit;
    c.policy = policy;
    return c;
  }
};

// Drive a store script inside a process and run to completion.
template <typename Fn>
void drive(World& w, Fn&& body) {
  bool finished = false;
  auto proc = [](Fn& f, bool& done) -> sim::Process {
    co_await f();
    done = true;
  };
  w.sim.spawn(proc(body, finished));
  w.sim.run_until(sec(100));
  ASSERT_TRUE(finished) << "store script deadlocked";
}

Itemset pair_of(Item a, Item b) { return Itemset{a, b}; }

TEST(HashLineStore, NoLimitKeepsEverythingResident) {
  World w;
  HashLineStore store(w.cl->node(0), w.config(SwapPolicy::kNoLimit, -1),
                      &w.table);
  drive(w, [&]() -> sim::Task<> {
    for (Item i = 0; i < 20; ++i) {
      co_await store.insert(i % 8, pair_of(i, i + 100));
    }
    for (Item i = 0; i < 20; ++i) {
      co_await store.probe(i % 8, pair_of(i, i + 100));
    }
  });
  EXPECT_EQ(store.size(), 20u);
  EXPECT_EQ(store.resident_bytes(), 20 * 24);
  EXPECT_EQ(store.pagefaults(), 0);
  EXPECT_EQ(store.swap_outs(), 0);
}

TEST(HashLineStore, EvictionKeepsResidencyUnderLimit) {
  World w;
  // 8 lines x 3 entries x 24 B = 576 B total; limit 300 B.
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteSwap, 300), &w.table);
  drive(w, [&]() -> sim::Task<> {
    for (Item i = 0; i < 24; ++i) {
      co_await store.insert(i % 8, pair_of(i, i + 100));
    }
  });
  EXPECT_EQ(store.total_bytes(), 24 * 24);
  EXPECT_LE(store.resident_bytes(), 300);
  EXPECT_GT(store.swap_outs(), 0);
  EXPECT_EQ(w.server1->stored_lines() + w.server2->stored_lines(),
            static_cast<std::size_t>(store.swap_outs()) -
                static_cast<std::size_t>(store.pagefaults()));
}

TEST(HashLineStore, RemoteSwapFaultsBackAndCountsCorrectly) {
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteSwap, 4 * 24), &w.table);
  std::map<std::string, std::uint32_t> final_counts;
  drive(w, [&]() -> sim::Task<> {
    // 8 lines, one entry each; limit allows 4 resident.
    for (Item i = 0; i < 8; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
    store.set_phase(HashLineStore::Phase::kCount);
    // Probe every line 3x: swapped-out lines fault back in.
    for (int round = 0; round < 3; ++round) {
      for (Item i = 0; i < 8; ++i) {
        co_await store.probe(i, pair_of(i, i + 100));
      }
    }
    co_await store.collect([&](const mining::CountedItemset& e) {
      final_counts[e.items.to_string()] = e.count;
    });
  });
  EXPECT_GT(store.pagefaults(), 0);
  ASSERT_EQ(final_counts.size(), 8u);
  for (const auto& [name, count] : final_counts) {
    EXPECT_EQ(count, 3u) << name;
  }
}

TEST(HashLineStore, LruEvictsLeastRecentlyUsedLine) {
  World w;
  // 3 lines x 1 entry; limit 2 entries resident.
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteSwap, 2 * 24, 3), &w.table);
  drive(w, [&]() -> sim::Task<> {
    co_await store.insert(0, pair_of(0, 100));
    co_await store.insert(1, pair_of(1, 101));
    // Touch line 0 so line 1 is the LRU victim when line 2 arrives.
    store.set_phase(HashLineStore::Phase::kCount);
    co_await store.probe(0, pair_of(0, 100));
    store.set_phase(HashLineStore::Phase::kBuild);
    co_await store.insert(2, pair_of(2, 102));

    // Line 0 still resident (no fault), line 1 must fault.
    const std::int64_t before = store.pagefaults();
    store.set_phase(HashLineStore::Phase::kCount);
    co_await store.probe(0, pair_of(0, 100));
    EXPECT_EQ(store.pagefaults(), before);
    co_await store.probe(1, pair_of(1, 101));
    EXPECT_EQ(store.pagefaults(), before + 1);
  });
}

TEST(HashLineStore, RemoteSwapFaultCostMatchesTable4) {
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteSwap, 24, 2), &w.table);
  drive(w, [&]() -> sim::Task<> {
    co_await store.insert(0, pair_of(0, 100));
    co_await store.insert(1, pair_of(1, 101));  // evicts line 0
    store.set_phase(HashLineStore::Phase::kCount);
    // Let the one-way swap-out drain at the server so the fault below
    // measures an unloaded round trip (the paper's Table 4 arithmetic).
    co_await w.sim.timeout(msec(50));
    co_await store.probe(0, pair_of(0, 100));   // faults line 0 back
  });
  ASSERT_EQ(store.pagefaults(), 1);
  const auto& fault_ms = w.cl->node(0).stats().summary("store.fault_ms");
  ASSERT_EQ(fault_ms.count(), 1u);
  // Paper Table 4: 1.90-2.37 ms per pagefault.
  EXPECT_GT(fault_ms.mean(), 1.8);
  EXPECT_LT(fault_ms.mean(), 2.7);
}

TEST(HashLineStore, DiskSwapFaultCostMatchesPaperDiskArithmetic) {
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kDiskSwap, 24, 2), &w.table);
  drive(w, [&]() -> sim::Task<> {
    co_await store.insert(0, pair_of(0, 100));
    co_await store.insert(1, pair_of(1, 101));
    store.set_phase(HashLineStore::Phase::kCount);
    co_await store.probe(0, pair_of(0, 100));
  });
  ASSERT_EQ(store.pagefaults(), 1);
  const auto& fault_ms = w.cl->node(0).stats().summary("store.fault_ms");
  // "at least 13.0 msec in average to read data from 7,200 rpm hard disks".
  EXPECT_GT(fault_ms.mean(), 5.0);   // single sample: seek jitter applies
  EXPECT_LT(fault_ms.mean(), 25.0);
}

TEST(HashLineStore, RemoteUpdateDoesNotFaultDuringCounting) {
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteUpdate, 4 * 24), &w.table);
  std::map<std::string, std::uint32_t> final_counts;
  drive(w, [&]() -> sim::Task<> {
    for (Item i = 0; i < 8; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
    const std::int64_t build_faults = store.pagefaults();
    store.set_phase(HashLineStore::Phase::kCount);
    for (int round = 0; round < 5; ++round) {
      for (Item i = 0; i < 8; ++i) {
        co_await store.probe(i, pair_of(i, i + 100));
      }
    }
    // Counting must not have synchronously faulted once.
    EXPECT_EQ(store.pagefaults(), build_faults);
    EXPECT_GT(store.updates_sent(), 0);
    co_await store.collect([&](const mining::CountedItemset& e) {
      final_counts[e.items.to_string()] = e.count;
    });
  });
  ASSERT_EQ(final_counts.size(), 8u);
  for (const auto& [name, count] : final_counts) {
    EXPECT_EQ(count, 5u) << name;
  }
}

TEST(HashLineStore, RemoteUpdateBatchesFillToMessageBlock) {
  World w;
  HashLineStore::Config cfg = w.config(SwapPolicy::kRemoteUpdate, 24, 2);
  cfg.message_block_bytes = 160;  // 10 update ops per block
  cfg.update_op_bytes = 16;
  HashLineStore store(w.cl->node(0), cfg, &w.table);
  drive(w, [&]() -> sim::Task<> {
    co_await store.insert(0, pair_of(0, 100));
    co_await store.insert(1, pair_of(1, 101));  // line 0 evicted
    store.set_phase(HashLineStore::Phase::kCount);
    for (int i = 0; i < 25; ++i) {
      co_await store.probe(0, pair_of(0, 100));
    }
    co_await store.flush_updates();
  });
  // 25 updates at 10/block: 2 full blocks + 1 flush.
  EXPECT_EQ(store.updates_sent(), 25);
  EXPECT_EQ(w.cl->node(0).stats().counter("store.update_batches"), 3);
}

TEST(HashLineStore, EvictionsSpreadRoundRobinOverMemoryNodes) {
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteSwap, 2 * 24, 16), &w.table);
  drive(w, [&]() -> sim::Task<> {
    for (Item i = 0; i < 16; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
  });
  // 14 evictions alternate between the two memory-available nodes.
  EXPECT_EQ(store.lines_at(1) + store.lines_at(2), 14u);
  EXPECT_EQ(store.lines_at(1), 7u);
  EXPECT_EQ(store.lines_at(2), 7u);
}

TEST(HashLineStore, CollectStreamsEveryEntryUnderEveryPolicy) {
  for (SwapPolicy policy : {SwapPolicy::kDiskSwap, SwapPolicy::kRemoteSwap,
                            SwapPolicy::kRemoteUpdate}) {
    World w;
    HashLineStore store(w.cl->node(0), w.config(policy, 3 * 24), &w.table);
    std::size_t seen = 0;
    std::uint32_t total = 0;
    drive(w, [&]() -> sim::Task<> {
      for (Item i = 0; i < 12; ++i) {
        co_await store.insert(i % 8, pair_of(i, i + 100));
      }
      store.set_phase(HashLineStore::Phase::kCount);
      for (Item i = 0; i < 12; ++i) {
        co_await store.probe(i % 8, pair_of(i, i + 100));
      }
      co_await store.collect([&](const mining::CountedItemset& e) {
        ++seen;
        total += e.count;
      });
    });
    EXPECT_EQ(seen, 12u) << to_string(policy);
    EXPECT_EQ(total, 12u) << to_string(policy);
  }
}

TEST(HashLineStore, CountMatchesFindsKeyedEntries) {
  // The read-query API the hash-join example uses: entries encode keyed
  // tuples; count_matches returns how many share the probed key.
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteSwap, 2 * 24, 4), &w.table);
  std::uint32_t k7 = 99, k8 = 99, k9 = 99;
  drive(w, [&]() -> sim::Task<> {
    co_await store.insert(0, pair_of(7, 1000));
    co_await store.insert(0, pair_of(7, 1001));
    co_await store.insert(0, pair_of(8, 1002));
    co_await store.insert(1, pair_of(9, 1003));  // line 0 may be evicted now
    store.set_phase(HashLineStore::Phase::kCount);
    k7 = co_await store.count_matches(0, 7);
    k8 = co_await store.count_matches(0, 8);
    k9 = co_await store.count_matches(1, 9);
    store.check_invariants();
  });
  EXPECT_EQ(k7, 2u);
  EXPECT_EQ(k8, 1u);
  EXPECT_EQ(k9, 1u);
}

TEST(HashLineStore, CountMatchesFaultsEvictedLinesUnderEveryPolicy) {
  for (SwapPolicy policy : {SwapPolicy::kDiskSwap, SwapPolicy::kRemoteSwap,
                            SwapPolicy::kRemoteUpdate}) {
    World w;
    HashLineStore store(w.cl->node(0), w.config(policy, 24, 2), &w.table);
    std::uint32_t matches = 0;
    drive(w, [&]() -> sim::Task<> {
      co_await store.insert(0, pair_of(5, 500));
      co_await store.insert(1, pair_of(6, 600));  // line 0 evicted
      store.set_phase(HashLineStore::Phase::kCount);
      const std::int64_t before = store.pagefaults();
      matches = co_await store.count_matches(0, 5);
      EXPECT_EQ(store.pagefaults(), before + 1) << to_string(policy);
    });
    EXPECT_EQ(matches, 1u) << to_string(policy);
  }
}

TEST(HashLineStore, CountMatchesMissReturnsZero) {
  World w;
  HashLineStore store(w.cl->node(0), w.config(SwapPolicy::kNoLimit, -1),
                      &w.table);
  std::uint32_t matches = 99;
  drive(w, [&]() -> sim::Task<> {
    co_await store.insert(0, pair_of(5, 500));
    matches = co_await store.count_matches(0, 777);
  });
  EXPECT_EQ(matches, 0u);
}

TEST(HashLineStore, ProbeOfNonCandidateIsMissEverywhere) {
  World w;
  HashLineStore store(w.cl->node(0),
                      w.config(SwapPolicy::kRemoteUpdate, 2 * 24), &w.table);
  std::uint32_t total = 0;
  drive(w, [&]() -> sim::Task<> {
    for (Item i = 0; i < 6; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
    store.set_phase(HashLineStore::Phase::kCount);
    for (Item i = 0; i < 6; ++i) {
      co_await store.probe(i, pair_of(i, i + 999));  // never registered
    }
    co_await store.collect(
        [&](const mining::CountedItemset& e) { total += e.count; });
  });
  EXPECT_EQ(total, 0u);
}

TEST(HashLineStoreDeathTest, LimitWithoutPolicyAborts) {
  World w;
  HashLineStore store(w.cl->node(0), w.config(SwapPolicy::kNoLimit, 24),
                      &w.table);
  EXPECT_DEATH(
      {
        auto body = [&]() -> sim::Task<> {
          co_await store.insert(0, pair_of(0, 100));
          co_await store.insert(1, pair_of(1, 101));
        };
        bool done = false;
        auto proc = [](decltype(body)& f, bool& d) -> sim::Process {
          co_await f();
          d = true;
        };
        w.sim.spawn(proc(body, done));
        w.sim.run_until(sec(1));
      },
      "kNoLimit");
}

}  // namespace
}  // namespace rms::core
