// Disk model tests: mean random-access latency pinned to the paper's quoted
// drive characteristics, FCFS arm behaviour, and sequential-access speedup.
#include <gtest/gtest.h>

#include "disk/disk.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::disk {
namespace {

// Run `n` random reads of `bytes` and return the mean latency in ms.
double mean_random_read_ms(const DiskParams& params, int n,
                           std::int64_t bytes) {
  sim::Simulation sim;
  Disk d(sim, params);
  auto proc = [](sim::Simulation&, Disk& disk, int count,
                 std::int64_t b) -> sim::Process {
    for (int i = 0; i < count; ++i) {
      co_await disk.read(b, Access::kRandom);
    }
  };
  sim.spawn(proc(sim, d, n, bytes));
  sim.run();
  return d.stats().summary("disk.read.latency_ms").mean();
}

TEST(Disk, Barracuda7200RandomReadAtLeast13ms) {
  // §5.2: "it takes at least 13.0 msec in average to read data from
  // 7,200 rpm hard disks".
  const double ms = mean_random_read_ms(DiskParams::barracuda_7200(), 4000, 4096);
  EXPECT_GT(ms, 12.0);
  EXPECT_LT(ms, 14.5);
}

TEST(Disk, Dk3e1t12000RandomReadAround7_5ms) {
  // §5.2: "7.5 msec even with the fastest 12,000 rpm hard disks".
  const double ms = mean_random_read_ms(DiskParams::dk3e1t_12000(), 4000, 4096);
  EXPECT_GT(ms, 6.8);
  EXPECT_LT(ms, 8.4);
}

TEST(Disk, ExpectedRandomAccessMatchesSpecArithmetic) {
  sim::Simulation sim;
  Disk d(sim, DiskParams::barracuda_7200());
  // 8.8 ms seek + 4.17 ms half rotation + transfer + controller.
  const double ms = to_millis(d.expected_random_access(4096));
  EXPECT_GT(ms, 12.9);
  EXPECT_LT(ms, 13.6);
}

TEST(Disk, SequentialSkipsPositioning) {
  sim::Simulation sim;
  Disk d(sim, DiskParams::barracuda_7200());
  Time t_seq = 0;
  auto proc = [](sim::Simulation& s, Disk& disk, Time& out) -> sim::Process {
    const Time start = s.now();
    for (int i = 0; i < 100; ++i) {
      co_await disk.read(65536, Access::kSequential);
    }
    out = s.now() - start;
  };
  sim.spawn(proc(sim, d, t_seq));
  sim.run();
  // 100 x 64 KB at 120 Mbps media rate + controller: well under 1 s; random
  // positioning would have added ~1.3 s alone.
  EXPECT_LT(t_seq, msec(600));
  EXPECT_GT(t_seq, msec(100));
}

TEST(Disk, ArmIsFcfsAcrossProcesses) {
  sim::Simulation sim;
  Disk d(sim, DiskParams::barracuda_7200());
  std::vector<int> done_order;
  auto reader = [](Disk& disk, std::vector<int>& out, int id) -> sim::Process {
    co_await disk.read(4096, Access::kRandom);
    out.push_back(id);
  };
  for (int i = 0; i < 4; ++i) sim.spawn(reader(d, done_order, i));
  sim.run();
  EXPECT_EQ(done_order, (std::vector<int>{0, 1, 2, 3}));
  // Serialized: total time ~ sum of four independent accesses.
  EXPECT_GT(sim.now(), msec(4 * 9));
}

TEST(Disk, WritesAreCountedSeparately) {
  sim::Simulation sim;
  Disk d(sim, DiskParams::caviar_ide());
  auto proc = [](Disk& disk) -> sim::Process {
    co_await disk.write(8192, Access::kSequential);
    co_await disk.read(4096, Access::kRandom);
  };
  sim.spawn(proc(d));
  sim.run();
  EXPECT_EQ(d.stats().counter("disk.write.count"), 1);
  EXPECT_EQ(d.stats().counter("disk.read.count"), 1);
  EXPECT_EQ(d.stats().counter("disk.write.bytes"), 8192);
}

TEST(Disk, DeterministicAcrossRuns) {
  const double a = mean_random_read_ms(DiskParams::barracuda_7200(), 500, 4096);
  const double b = mean_random_read_ms(DiskParams::barracuda_7200(), 500, 4096);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace rms::disk
