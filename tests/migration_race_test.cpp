// Migration-vs-swap-traffic race test: migrate_away() runs concurrently
// with a stream of probes, faults and evictions, across several seeds and
// both remote policies. Whatever interleaving the simulator produces (each
// seed is fully deterministic and reproducible), no count may be lost or
// duplicated and the store invariants must hold throughout.
//
// This pins down the kMigrating/kFaulting state machine: a probe that
// lands on a line mid-migration parks on the line's trigger; a fault racing
// a migration directive must resolve to exactly one holder; pending update
// batches queued towards the old holder must be re-aimed, not dropped.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::core {
namespace {

using mining::Item;
using mining::Itemset;

using Case = std::tuple<SwapPolicy, std::uint64_t /*seed*/>;

class MigrationRaceTest : public ::testing::TestWithParam<Case> {};

TEST_P(MigrationRaceTest, ConcurrentMigrationLosesNothing) {
  const auto [policy, seed] = GetParam();

  sim::Simulation sim;
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 4;  // app node 0, memory nodes 1..3
  cluster::Cluster cl(sim, ccfg);
  MemoryServer s1(cl.node(1)), s2(cl.node(2)), s3(cl.node(3));
  sim.spawn(s1.serve());
  sim.spawn(s2.serve());
  sim.spawn(s3.serve());
  placement::MemoryBroker table({1, 2, 3});
  table.update(AvailabilityInfo{1, 8 << 20, 1}, 0);
  table.update(AvailabilityInfo{2, 8 << 20, 1}, 0);
  table.update(AvailabilityInfo{3, 8 << 20, 1}, 0);

  constexpr std::size_t kLines = 16;
  HashLineStore::Config cfg;
  cfg.num_lines = kLines;
  cfg.memory_limit_bytes = 24 * 3;  // tight: constant swap traffic
  cfg.policy = policy;
  cfg.message_block_bytes = 256;
  HashLineStore store(cl.node(0), cfg, &table);

  std::map<std::pair<LineId, std::string>, std::uint32_t> model;

  Pcg32 rng(seed);
  Pcg32 migrate_rng(seed ^ 0xabcdef);
  bool mutator_done = false;
  bool migrator_done = false;
  bool collected = false;

  auto mutator = [&]() -> sim::Task<> {
    std::vector<std::vector<Itemset>> per_line(kLines);
    Item uid = 0;
    for (int i = 0; i < 100; ++i) {
      const auto line = static_cast<LineId>(rng.below(kLines));
      const Itemset s{uid, uid + 5000};
      ++uid;
      per_line[static_cast<std::size_t>(line)].push_back(s);
      model[{line, s.to_string()}] = 0;
      co_await store.insert(line, s);
      store.check_invariants();
    }
    store.set_phase(HashLineStore::Phase::kCount);
    for (int i = 0; i < 400; ++i) {
      const auto line = static_cast<LineId>(rng.below(kLines));
      auto& candidates = per_line[static_cast<std::size_t>(line)];
      if (candidates.empty()) continue;
      const Itemset& s = candidates[rng.below(
          static_cast<std::uint32_t>(candidates.size()))];
      ++model[{line, s.to_string()}];
      co_await store.probe(line, s);
      store.check_invariants();
    }
    mutator_done = true;
    // Collect only after the migrator is quiet, so the race under test is
    // migration-vs-probe/evict traffic (collect settles kMigrating itself,
    // but a directive arriving *after* its last settle would extend the
    // test's domain beyond what migrate_away promises).
    while (!migrator_done) {
      co_await sim.timeout(msec(1));
    }
    std::map<std::pair<LineId, std::string>, std::uint32_t> got;
    co_await store.collect([&](const mining::CountedItemset& e) {
      for (const auto& [key, count] : model) {
        if (key.second == e.items.to_string()) {
          got[key] = e.count;
          break;
        }
      }
    });
    EXPECT_EQ(got.size(), model.size());
    for (const auto& [key, count] : model) {
      const auto it = got.find(key);
      EXPECT_TRUE(it != got.end()) << key.second;
      if (it != got.end()) {
        EXPECT_EQ(it->second, count) << key.second;
      }
    }
    collected = true;
  };

  // Fire migration directives while the mutator is mid-stream: random
  // holder, random phase offset, back to back.
  auto migrator = [&]() -> sim::Task<> {
    for (int round = 0; round < 8; ++round) {
      co_await sim.timeout(usec(500 + migrate_rng.below(4000)));
      const net::NodeId holder =
          static_cast<net::NodeId>(1 + migrate_rng.below(3));
      co_await store.migrate_away(holder);
      store.check_invariants();
      if (mutator_done) break;
    }
    migrator_done = true;
  };

  auto proc = [](sim::Task<> t) -> sim::Process { co_await std::move(t); };
  sim.spawn(proc(mutator()));
  sim.spawn(proc(migrator()));
  sim.run_until(sec(600));
  ASSERT_TRUE(mutator_done) << "mutator deadlocked";
  ASSERT_TRUE(migrator_done) << "migrator deadlocked";
  ASSERT_TRUE(collected) << "collect deadlocked";

  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.total_bytes(), 100 * 24);
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto [policy, seed] = info.param;
  std::string name = to_string(policy);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MigrationRaceTest,
    ::testing::Combine(::testing::Values(SwapPolicy::kRemoteSwap,
                                         SwapPolicy::kRemoteUpdate),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}, std::uint64_t{4},
                                         std::uint64_t{5})),
    case_name);

}  // namespace
}  // namespace rms::core
