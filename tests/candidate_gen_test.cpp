// Candidate generation (join + prune) tests, including the paper's exact
// pass-2 combinatorics: |L1| = 3122 must yield C2 = 4,871,881.
#include <gtest/gtest.h>

#include "mining/apriori.hpp"
#include "mining/candidate_gen.hpp"

namespace rms::mining {
namespace {

std::vector<Itemset> singletons(std::initializer_list<Item> items) {
  std::vector<Itemset> out;
  for (Item i : items) {
    Itemset s;
    s.push_back(i);
    out.push_back(s);
  }
  return out;
}

TEST(CandidateGen, Pass2IsAllPairs) {
  const auto cands = generate_candidates(singletons({1, 4, 7, 9}));
  ASSERT_EQ(cands.size(), 6u);
  EXPECT_EQ(cands[0], (Itemset{1, 4}));
  EXPECT_EQ(cands[5], (Itemset{7, 9}));
}

TEST(CandidateGen, EmptyInputYieldsNothing) {
  EXPECT_TRUE(generate_candidates({}).empty());
  EXPECT_EQ(count_candidates({}), 0);
}

TEST(CandidateGen, SingleItemsetYieldsNothing) {
  EXPECT_TRUE(generate_candidates(singletons({5})).empty());
}

TEST(CandidateGen, JoinRequiresSharedPrefix) {
  // L2 = {1,2},{1,3},{2,3} -> join gives {1,2,3} (from {1,2}+{1,3});
  // {2,3} pairs with nothing sharing its first item.
  const std::vector<Itemset> l2 = {{1, 2}, {1, 3}, {2, 3}};
  const auto cands = generate_candidates(l2);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], (Itemset{1, 2, 3}));
}

TEST(CandidateGen, PruneRemovesCandidatesWithNonLargeSubsets) {
  // {1,2},{1,3},{1,4},{2,3}: join produces {1,2,3},{1,2,4},{1,3,4}.
  // {1,2,3} survives (all 2-subsets large); {1,2,4} dies ({2,4} not large);
  // {1,3,4} dies ({3,4} not large).
  const std::vector<Itemset> l2 = {{1, 2}, {1, 3}, {1, 4}, {2, 3}};
  const auto cands = generate_candidates(l2);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], (Itemset{1, 2, 3}));
}

TEST(CandidateGen, CandidatesAreSortedItemsets) {
  const std::vector<Itemset> l2 = {{1, 2}, {1, 5}, {1, 9}};
  for (const Itemset& c : generate_candidates(l2)) {
    for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
  }
}

TEST(CandidateGen, PaperPass2Combinatorics) {
  // §5.1: 4,871,881 candidate 2-itemsets = C(3122, 2), i.e. |L1| = 3122.
  std::vector<Itemset> l1;
  for (Item i = 0; i < 3122; ++i) {
    Itemset s;
    s.push_back(i);
    l1.push_back(s);
  }
  EXPECT_EQ(count_candidates(l1), 4'871'881);
}

TEST(CandidateGen, Table2Pass2Combinatorics) {
  // Table 2: 522,753 candidate 2-itemsets = C(1023, 2), i.e. |L1| = 1023.
  std::vector<Itemset> l1;
  for (Item i = 0; i < 1023; ++i) {
    Itemset s;
    s.push_back(i);
    l1.push_back(s);
  }
  EXPECT_EQ(count_candidates(l1), 522'753);
}

TEST(SubsetEnumeration, EnumeratesAllCombinations) {
  const Item tx[] = {2, 4, 6, 8};
  const auto keep_all = [](Item) { return true; };
  std::vector<std::string> got;
  for_each_k_subset({tx, 4}, 2, keep_all,
                    [&](const Itemset& s) { got.push_back(s.to_string()); });
  EXPECT_EQ(got, (std::vector<std::string>{"{2,4}", "{2,6}", "{2,8}", "{4,6}",
                                           "{4,8}", "{6,8}"}));
}

TEST(SubsetEnumeration, KEqualsSizeYieldsWholeTransaction) {
  const Item tx[] = {1, 2, 3};
  const auto keep_all = [](Item) { return true; };
  int calls = 0;
  for_each_k_subset({tx, 3}, 3, keep_all, [&](const Itemset& s) {
    ++calls;
    EXPECT_EQ(s, (Itemset{1, 2, 3}));
  });
  EXPECT_EQ(calls, 1);
}

TEST(SubsetEnumeration, KLargerThanSizeYieldsNothing) {
  const Item tx[] = {1, 2};
  const auto keep_all = [](Item) { return true; };
  int calls = 0;
  for_each_k_subset({tx, 2}, 3, keep_all, [&](const Itemset&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SubsetEnumeration, FilterPrunesBeforeEnumeration) {
  const Item tx[] = {1, 2, 3, 4, 5};
  const auto keep_odd = [](Item it) { return it % 2 == 1; };
  std::vector<std::string> got;
  for_each_k_subset({tx, 5}, 2, keep_odd,
                    [&](const Itemset& s) { got.push_back(s.to_string()); });
  EXPECT_EQ(got, (std::vector<std::string>{"{1,3}", "{1,5}", "{3,5}"}));
}

TEST(SubsetEnumeration, FilterAllOutYieldsNothing) {
  const Item tx[] = {1, 2, 3};
  const auto keep_none = [](Item) { return false; };
  int calls = 0;
  for_each_k_subset({tx, 3}, 1, keep_none, [&](const Itemset&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SubsetEnumeration, CountMatchesBinomial) {
  std::vector<Item> tx;
  for (Item i = 0; i < 12; ++i) tx.push_back(i * 3);
  const auto keep_all = [](Item) { return true; };
  for (std::size_t k = 1; k <= 5; ++k) {
    std::int64_t calls = 0;
    for_each_k_subset({tx.data(), tx.size()}, k, keep_all,
                      [&](const Itemset&) { ++calls; });
    // C(12, k)
    std::int64_t expect = 1;
    for (std::size_t i = 0; i < k; ++i) {
      expect = expect * static_cast<std::int64_t>(12 - i) /
               static_cast<std::int64_t>(i + 1);
    }
    EXPECT_EQ(calls, expect) << "k=" << k;
  }
}

TEST(CandidateGen, StreamAndMaterializeAgree) {
  const std::vector<Itemset> l2 = {{1, 2}, {1, 3}, {2, 3}, {2, 4}};
  const auto materialized = generate_candidates(l2);
  std::vector<Itemset> streamed;
  for_each_candidate(l2, [&](const Itemset& c) { streamed.push_back(c); });
  EXPECT_EQ(materialized.size(), streamed.size());
  for (std::size_t i = 0; i < materialized.size(); ++i) {
    EXPECT_EQ(materialized[i], streamed[i]);
  }
  EXPECT_EQ(count_candidates(l2),
            static_cast<std::int64_t>(materialized.size()));
}

}  // namespace
}  // namespace rms::mining
