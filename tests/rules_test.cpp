// Association-rule derivation tests.
#include <gtest/gtest.h>

#include "mining/generator.hpp"
#include "mining/rules.hpp"

namespace rms::mining {
namespace {

TransactionDb tiny_db() {
  TransactionDb db;
  const std::vector<std::vector<Item>> txs = {
      {1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}};
  for (const auto& t : txs) db.add({t.data(), t.size()});
  return db;
}

const Rule* find_rule(const std::vector<Rule>& rules, const Itemset& a,
                      const Itemset& c) {
  for (const Rule& r : rules) {
    if (r.antecedent == a && r.consequent == c) return &r;
  }
  return nullptr;
}

TEST(Rules, DerivesExpectedRuleWithExactConfidence) {
  const AprioriResult mined = apriori(tiny_db(), 0.5);
  const auto rules = derive_rules(mined, 0.6);

  // {2,5} appears 3x; {2} appears 3x -> conf({2} => {5}) = 1.0.
  const Rule* r = find_rule(rules, Itemset{2}, Itemset{5});
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->confidence, 1.0);
  EXPECT_DOUBLE_EQ(r->support, 0.75);

  // {3} appears 3x, {2,3,5} 2x -> conf({3} => {2,5}) = 2/3.
  const Rule* r2 = find_rule(rules, Itemset{3}, Itemset{2, 5});
  ASSERT_NE(r2, nullptr);
  EXPECT_NEAR(r2->confidence, 2.0 / 3.0, 1e-12);
}

TEST(Rules, ConfidenceThresholdFilters) {
  const AprioriResult mined = apriori(tiny_db(), 0.5);
  const auto strict = derive_rules(mined, 0.99);
  for (const Rule& r : strict) {
    EXPECT_GE(r.confidence, 0.99);
  }
  const auto lax = derive_rules(mined, 0.5);
  EXPECT_GT(lax.size(), strict.size());
}

TEST(Rules, AntecedentAndConsequentPartitionTheItemset) {
  const AprioriResult mined = apriori(tiny_db(), 0.5);
  for (const Rule& r : derive_rules(mined, 0.5)) {
    EXPECT_FALSE(r.antecedent.empty());
    EXPECT_FALSE(r.consequent.empty());
    // Disjoint and jointly large.
    for (Item a : r.antecedent) {
      for (Item c : r.consequent) EXPECT_NE(a, c);
    }
    const std::size_t total = r.antecedent.size() + r.consequent.size();
    EXPECT_GE(total, 2u);
  }
}

TEST(Rules, SortedByConfidenceThenSupport) {
  QuestParams p;
  p.num_transactions = 3000;
  p.num_items = 80;
  p.seed = 17;
  TransactionDb db = QuestGenerator(p).generate();
  const AprioriResult mined = apriori(db, 0.02);
  const auto rules = derive_rules(mined, 0.4);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    const bool ordered =
        rules[i - 1].confidence > rules[i].confidence ||
        (rules[i - 1].confidence == rules[i].confidence &&
         rules[i - 1].support >= rules[i].support);
    EXPECT_TRUE(ordered) << "at " << i;
  }
}

TEST(Rules, ToStringIsReadable) {
  const AprioriResult mined = apriori(tiny_db(), 0.5);
  const auto rules = derive_rules(mined, 0.9);
  ASSERT_FALSE(rules.empty());
  const std::string s = rules[0].to_string();
  EXPECT_NE(s.find("=>"), std::string::npos);
  EXPECT_NE(s.find("conf"), std::string::npos);
}

}  // namespace
}  // namespace rms::mining
