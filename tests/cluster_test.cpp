// Cluster runtime tests: node wiring, loopback, CPU serialization,
// mailbox tag demultiplexing, and the request/reply helper.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::cluster {
namespace {

struct Ping {
  int value = 0;
};

ClusterConfig small_config(std::size_t n = 4) {
  ClusterConfig c;
  c.num_nodes = n;
  return c;
}

TEST(Cluster, BuildsNodesWithIds) {
  sim::Simulation sim;
  Cluster cl(sim, small_config(5));
  EXPECT_EQ(cl.size(), 5u);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(cl.node(i).id(), i);
}

TEST(Cluster, MessageBetweenNodesArrivesViaMailbox) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  int got = 0;
  auto receiver = [](Node& n, int& out) -> sim::Process {
    net::Message m = co_await n.mailbox().recv(7);
    out = m.as<Ping>().value;
    EXPECT_EQ(m.src, 0);
  };
  sim.spawn(receiver(cl.node(1), got));
  cl.node(0).send_to<Ping>(1, 7, 64, Ping{99});
  sim.run();
  EXPECT_EQ(got, 99);
}

TEST(Cluster, LoopbackSkipsTheWire) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  Time arrival = -1;
  auto receiver = [](sim::Simulation& s, Node& n, Time& at) -> sim::Process {
    (void)co_await n.mailbox().recv(3);
    at = s.now();
  };
  sim.spawn(receiver(sim, cl.node(2), arrival));
  cl.node(2).send_to<Ping>(2, 3, 4096, Ping{1});
  sim.run();
  EXPECT_EQ(arrival, 0);  // instantaneous delivery, no network events
  EXPECT_EQ(cl.network().stats().counter("net.messages"), 0);
  EXPECT_EQ(cl.node(2).stats().counter("node.loopback_messages"), 1);
}

TEST(Cluster, MailboxDemultiplexesTags) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  std::vector<int> tag5, tag6;
  auto rx5 = [](Node& n, std::vector<int>& out) -> sim::Process {
    for (int i = 0; i < 2; ++i) {
      out.push_back((co_await n.mailbox().recv(5)).as<Ping>().value);
    }
  };
  auto rx6 = [](Node& n, std::vector<int>& out) -> sim::Process {
    out.push_back((co_await n.mailbox().recv(6)).as<Ping>().value);
  };
  sim.spawn(rx5(cl.node(1), tag5));
  sim.spawn(rx6(cl.node(1), tag6));
  cl.node(0).send_to<Ping>(1, 5, 32, Ping{50});
  cl.node(0).send_to<Ping>(1, 6, 32, Ping{60});
  cl.node(0).send_to<Ping>(1, 5, 32, Ping{51});
  sim.run();
  EXPECT_EQ(tag5, (std::vector<int>{50, 51}));
  EXPECT_EQ(tag6, (std::vector<int>{60}));
}

TEST(Cluster, ComputeSerializesOnNodeCpu) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  std::vector<Time> done;
  auto worker = [](sim::Simulation& s, Node& n, std::vector<Time>& out)
      -> sim::Process {
    co_await n.compute(msec(10));
    out.push_back(s.now());
  };
  sim.spawn(worker(sim, cl.node(0), done));
  sim.spawn(worker(sim, cl.node(0), done));  // same node: serialized
  sim.spawn(worker(sim, cl.node(1), done));  // different node: parallel
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], msec(10));
  EXPECT_EQ(done[1], msec(10));  // node 1 overlaps with node 0's first job
  EXPECT_EQ(done[2], msec(20));  // node 0's second job waited
}

TEST(Cluster, RequestReplyRoundTrip) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  auto server = [](Node& n) -> sim::Process {
    net::Message req = co_await n.mailbox().recv(9);
    n.reply(req, 64, Ping{req.as<Ping>().value * 2});
  };
  int answer = 0;
  Time rtt = -1;
  auto client = [](sim::Simulation& s, Node& n, int& out, Time& t)
      -> sim::Process {
    const Time start = s.now();
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, 9, 32, Ping{21}));
    out = rep.as<Ping>().value;
    t = s.now() - start;
  };
  sim.spawn(server(cl.node(1)));
  sim.spawn(client(sim, cl.node(0), answer, rtt));
  sim.run();
  EXPECT_EQ(answer, 42);
  EXPECT_GT(rtt, usec(400));  // ~the calibrated small-message RTT
  EXPECT_LT(rtt, usec(700));
}

TEST(Cluster, ConcurrentRequestsGetDistinctReplies) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  auto server = [](Node& n) -> sim::Process {
    for (;;) {
      net::Message req = co_await n.mailbox().recv(9);
      n.reply(req, 64, Ping{req.as<Ping>().value + 100});
    }
  };
  std::vector<int> answers(3, 0);
  auto client = [](Node& n, int v, int& out) -> sim::Process {
    net::Message rep =
        co_await n.request(net::Message::make(n.id(), 3, 9, 32, Ping{v}));
    out = rep.as<Ping>().value;
  };
  sim.spawn(server(cl.node(3)));
  for (int i = 0; i < 3; ++i) {
    sim.spawn(client(cl.node(0), i, answers[static_cast<std::size_t>(i)]));
  }
  sim.run();
  EXPECT_EQ(answers, (std::vector<int>{100, 101, 102}));
}

TEST(Cluster, HostMemoryModelAccounting) {
  HostMemoryModel m;
  const std::int64_t initial = m.available();
  EXPECT_EQ(initial, (64LL << 20) - (24LL << 20));
  m.donated_bytes = 10 << 20;
  EXPECT_EQ(m.available(), initial - (10 << 20));
  m.external_bytes = m.total_bytes;  // withdrawal: everything consumed
  EXPECT_EQ(m.available(), 0);
}

}  // namespace
}  // namespace rms::cluster
