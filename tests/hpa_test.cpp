// HPA integration tests: the parallel miner on the simulated cluster must
// produce exactly the sequential miner's results, and its reports must obey
// the structural properties the paper relies on.
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams small_workload(std::uint64_t seed = 3) {
  mining::QuestParams p;
  p.num_transactions = 3000;
  p.num_items = 200;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 40;
  p.seed = seed;
  return p;
}

HpaConfig small_config(std::uint64_t seed = 3) {
  HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 4;
  c.workload = small_workload(seed);
  c.min_support = 0.02;
  c.hash_lines = 4096;
  return c;
}

void expect_same_mining(const mining::AprioriResult& seq,
                        const mining::AprioriResult& par) {
  ASSERT_EQ(seq.large_by_k.size(), par.large_by_k.size());
  for (std::size_t k = 0; k < seq.large_by_k.size(); ++k) {
    ASSERT_EQ(seq.large_by_k[k].size(), par.large_by_k[k].size())
        << "pass " << k + 1;
    for (std::size_t i = 0; i < seq.large_by_k[k].size(); ++i) {
      EXPECT_EQ(seq.large_by_k[k][i], par.large_by_k[k][i]);
    }
  }
  ASSERT_EQ(seq.support.size(), par.support.size());
  for (const auto& [itemset, count] : seq.support) {
    const auto it = par.support.find(itemset);
    ASSERT_NE(it, par.support.end()) << itemset.to_string();
    EXPECT_EQ(it->second, count) << itemset.to_string();
  }
}

TEST(Hpa, MatchesSequentialAprioriNoLimit) {
  const HpaConfig cfg = small_config();
  const HpaResult par = run_hpa(cfg);

  mining::TransactionDb db = mining::QuestGenerator(cfg.workload).generate();
  const mining::AprioriResult seq = apriori(db, cfg.min_support);

  expect_same_mining(seq, par.mined);

  // Candidate counts per pass match too (k >= 2; pass-1 candidate counting
  // differs only in how the item universe is sized).
  ASSERT_EQ(seq.passes.size(), par.mined.passes.size());
  for (std::size_t p = 1; p < seq.passes.size(); ++p) {
    EXPECT_EQ(seq.passes[p].candidates, par.mined.passes[p].candidates);
    EXPECT_EQ(seq.passes[p].large, par.mined.passes[p].large);
  }
}

TEST(Hpa, NoSwappingWithoutMemoryLimit) {
  const HpaResult r = run_hpa(small_config());
  for (const PassReport& p : r.passes) {
    EXPECT_EQ(p.max_pagefaults(), 0);
    for (std::int64_t s : p.swap_outs_per_node) EXPECT_EQ(s, 0);
  }
  EXPECT_EQ(r.stats.counter("store.pagefaults"), 0);
}

TEST(Hpa, VirtualTimeIsPositiveAndOrdered) {
  const HpaResult r = run_hpa(small_config());
  EXPECT_GT(r.total_time, 0);
  Time sum = 0;
  for (const PassReport& p : r.passes) {
    EXPECT_GT(p.duration, 0) << "pass " << p.k;
    sum += p.duration;
  }
  EXPECT_LE(sum, r.total_time);
}

TEST(Hpa, CandidatePartitioningCoversAllNodes) {
  const HpaResult r = run_hpa(small_config());
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  ASSERT_EQ(p2->candidates_per_node.size(), 4u);
  std::int64_t total = 0;
  for (std::int64_t c : p2->candidates_per_node) {
    EXPECT_GT(c, 0);
    total += c;
  }
  EXPECT_EQ(total, p2->candidates_global);
  // Hash partitioning balances within a reasonable factor (paper Table 3
  // shows ~6% spread).
  std::int64_t mn = p2->candidates_per_node[0], mx = mn;
  for (std::int64_t c : p2->candidates_per_node) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_LT(static_cast<double>(mx), 1.5 * static_cast<double>(mn));
}

TEST(Hpa, DeterministicAcrossRuns) {
  const HpaResult a = run_hpa(small_config());
  const HpaResult b = run_hpa(small_config());
  EXPECT_EQ(a.total_time, b.total_time);
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (std::size_t i = 0; i < a.passes.size(); ++i) {
    EXPECT_EQ(a.passes[i].duration, b.passes[i].duration);
    EXPECT_EQ(a.passes[i].candidates_global, b.passes[i].candidates_global);
  }
  expect_same_mining(a.mined, b.mined);
}

TEST(Hpa, SharedDbAvoidsRegeneration) {
  HpaConfig cfg = small_config();
  mining::TransactionDb db = mining::QuestGenerator(cfg.workload).generate();
  cfg.shared_db = &db;
  const HpaResult a = run_hpa(cfg);
  const HpaResult b = run_hpa(small_config());
  expect_same_mining(a.mined, b.mined);
}

TEST(Hpa, MoreAppNodesShortenThePass) {
  HpaConfig one = small_config();
  one.app_nodes = 1;
  HpaConfig eight = small_config();
  eight.app_nodes = 8;
  const HpaResult r1 = run_hpa(one);
  const HpaResult r8 = run_hpa(eight);
  expect_same_mining(r1.mined, r8.mined);
  ASSERT_NE(r1.pass(2), nullptr);
  ASSERT_NE(r8.pass(2), nullptr);
  // Speedup need not be linear (communication), but must be substantial.
  EXPECT_LT(r8.pass(2)->duration, r1.pass(2)->duration / 2);
}

TEST(Hpa, DifferentSeedsChangeWorkloadNotInvariants) {
  HpaConfig cfg = small_config(99);
  const HpaResult r = run_hpa(cfg);
  // Every large itemset meets the support threshold.
  for (const auto& [itemset, count] : r.mined.support) {
    EXPECT_GE(count, r.mined.min_count);
  }
  // Downward closure across large_by_k.
  for (std::size_t k = 1; k < r.mined.large_by_k.size(); ++k) {
    for (const mining::Itemset& s : r.mined.large_by_k[k]) {
      for (std::size_t d = 0; d < s.size(); ++d) {
        EXPECT_TRUE(r.mined.support.count(s.without(d)) == 1);
      }
    }
  }
}

}  // namespace
}  // namespace rms::hpa
