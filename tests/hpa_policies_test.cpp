// Swap-policy integration tests: under a per-node memory limit every policy
// must still mine exactly the sequential result, and the performance
// relations the paper reports must hold (disk >> remote swap > remote
// update; pagefaults grow as the limit shrinks).
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams workload() {
  mining::QuestParams p;
  p.num_transactions = 4000;
  p.num_items = 200;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 40;
  p.seed = 11;
  return p;
}

HpaConfig base_config(const mining::TransactionDb* db) {
  HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 4;
  c.workload = workload();
  c.min_support = 0.01;
  c.hash_lines = 2048;
  c.shared_db = db;
  return c;
}

class PolicyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new mining::TransactionDb(
        mining::QuestGenerator(workload()).generate());
    seq_ = new mining::AprioriResult(apriori(*db_, 0.01));
    // Pick a limit that forces real eviction pressure: ~60% of the busiest
    // node's pass-2 candidate bytes.
    HpaConfig probe = base_config(db_);
    const HpaResult nolimit = run_hpa(probe);
    const PassReport* p2 = nolimit.pass(2);
    ASSERT_NE(p2, nullptr);
    std::int64_t max_cand = 0;
    for (std::int64_t c : p2->candidates_per_node) {
      max_cand = std::max(max_cand, c);
    }
    limit_ = max_cand * 24 * 6 / 10;
    ASSERT_GT(limit_, 0);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete seq_;
    db_ = nullptr;
    seq_ = nullptr;
  }

  static HpaResult run_policy(core::SwapPolicy policy) {
    HpaConfig c = base_config(db_);
    c.memory_limit_bytes = limit_;
    c.policy = policy;
    return run_hpa(c);
  }

  static void expect_same_mining(const mining::AprioriResult& a,
                                 const mining::AprioriResult& b) {
    ASSERT_EQ(a.support.size(), b.support.size());
    for (const auto& [itemset, count] : a.support) {
      const auto it = b.support.find(itemset);
      ASSERT_NE(it, b.support.end()) << itemset.to_string();
      EXPECT_EQ(it->second, count) << itemset.to_string();
    }
  }

  static mining::TransactionDb* db_;
  static mining::AprioriResult* seq_;
  static std::int64_t limit_;
};

mining::TransactionDb* PolicyFixture::db_ = nullptr;
mining::AprioriResult* PolicyFixture::seq_ = nullptr;
std::int64_t PolicyFixture::limit_ = 0;

TEST_F(PolicyFixture, DiskSwapMinesExactly) {
  const HpaResult r = run_policy(core::SwapPolicy::kDiskSwap);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("store.pagefaults"), 0);
}

TEST_F(PolicyFixture, RemoteSwapMinesExactly) {
  const HpaResult r = run_policy(core::SwapPolicy::kRemoteSwap);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("store.pagefaults"), 0);
  EXPECT_GT(r.stats.counter("server.swap_out"), 0);
  EXPECT_GT(r.stats.counter("server.swap_in"), 0);
}

TEST_F(PolicyFixture, RemoteUpdateMinesExactly) {
  const HpaResult r = run_policy(core::SwapPolicy::kRemoteUpdate);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("server.updates_applied"), 0);
}

TEST_F(PolicyFixture, PolicyOrderingMatchesFigure4) {
  // Figure 4: disk swapping is worst, simple remote swapping much better,
  // remote update best.
  const Time disk = run_policy(core::SwapPolicy::kDiskSwap).pass(2)->duration;
  const Time remote =
      run_policy(core::SwapPolicy::kRemoteSwap).pass(2)->duration;
  const Time update =
      run_policy(core::SwapPolicy::kRemoteUpdate).pass(2)->duration;
  EXPECT_GT(disk, remote);
  EXPECT_GT(remote, update);
}

TEST_F(PolicyFixture, RemoteUpdateAvoidsCountingFaults) {
  const HpaResult swap = run_policy(core::SwapPolicy::kRemoteSwap);
  const HpaResult update = run_policy(core::SwapPolicy::kRemoteUpdate);
  // Simple swapping faults repeatedly during counting; remote update only
  // faults while building the candidate table.
  EXPECT_LT(update.pass(2)->max_pagefaults(),
            swap.pass(2)->max_pagefaults());
  EXPECT_GT(update.stats.counter("store.update_batches"), 0);
}

TEST_F(PolicyFixture, TighterLimitMeansMoreFaults) {
  HpaConfig loose = base_config(db_);
  loose.memory_limit_bytes = limit_;
  loose.policy = core::SwapPolicy::kRemoteSwap;
  HpaConfig tight = loose;
  tight.memory_limit_bytes = limit_ / 2;
  const HpaResult l = run_hpa(loose);
  const HpaResult t = run_hpa(tight);
  EXPECT_GT(t.stats.counter("store.pagefaults"),
            l.stats.counter("store.pagefaults"));
  EXPECT_GT(t.pass(2)->duration, l.pass(2)->duration);
  expect_same_mining(l.mined, t.mined);
}

TEST_F(PolicyFixture, MoreMemoryNodesRelieveTheBottleneck) {
  // Figure 3: with one memory-available node the server serializes all
  // faults; more nodes resolve the bottleneck.
  HpaConfig one = base_config(db_);
  one.memory_limit_bytes = limit_;
  one.policy = core::SwapPolicy::kRemoteSwap;
  one.memory_nodes = 1;
  HpaConfig four = one;
  four.memory_nodes = 4;
  const HpaResult r1 = run_hpa(one);
  const HpaResult r4 = run_hpa(four);
  expect_same_mining(r1.mined, r4.mined);
  EXPECT_GT(r1.pass(2)->duration, r4.pass(2)->duration);
}

TEST_F(PolicyFixture, RemoteMemoryBeatsDiskEvenWithOneServer) {
  // The paper's core claim in one line.
  HpaConfig remote = base_config(db_);
  remote.memory_limit_bytes = limit_;
  remote.policy = core::SwapPolicy::kRemoteUpdate;
  remote.memory_nodes = 1;
  HpaConfig disk = base_config(db_);
  disk.memory_limit_bytes = limit_;
  disk.policy = core::SwapPolicy::kDiskSwap;
  EXPECT_LT(run_hpa(remote).pass(2)->duration,
            run_hpa(disk).pass(2)->duration);
}

}  // namespace
}  // namespace rms::hpa
