// Failover integration tests (robustness extension): memory-node crashes
// mid-run must never hang or abort the miner. Without replication the run
// degrades — orphaned lines lose their counts, but counts never inflate and
// the run completes. With replicate_k = 1 a single crash is invisible: the
// mining result stays bit-identical to the sequential reference.
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams workload() {
  mining::QuestParams p;
  p.num_transactions = 6000;
  p.num_items = 200;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 40;
  p.seed = 21;
  return p;
}

HpaConfig config(const mining::TransactionDb* db, core::SwapPolicy policy) {
  HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 6;
  c.workload = workload();
  c.min_support = 0.01;
  c.hash_lines = 2048;
  c.shared_db = db;
  c.policy = policy;
  // Fast monitor + tight RPC deadlines so crashes are noticed at test scale
  // (both the heartbeat detector and the in-band deadline path fire within a
  // fraction of a pass).
  c.monitor_interval = msec(200);
  c.rpc_deadline = msec(500);
  c.rpc_max_retries = 1;
  // Run the full store + backend invariant sweep (replica/holder
  // cross-consistency, update-batch byte accounting) at every phase barrier.
  c.validate_invariants = true;
  return c;
}

class FailoverFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new mining::TransactionDb(
        mining::QuestGenerator(workload()).generate());
    seq_ = new mining::AprioriResult(apriori(*db_, 0.01));
    HpaConfig probe = config(db_, core::SwapPolicy::kNoLimit);
    const HpaResult nolimit = run_hpa(probe);
    const PassReport* p2 = nolimit.pass(2);
    std::int64_t max_cand = 0;
    for (std::int64_t c : p2->candidates_per_node) {
      max_cand = std::max(max_cand, c);
    }
    limit_ = max_cand * 24 * 6 / 10;
    // Crash mid-way through the run: pass-2 counting is in full swing and
    // plenty of lines are swapped out.
    crash_at_ = nolimit.total_time / 3;
  }
  static void TearDownTestSuite() {
    delete db_;
    delete seq_;
  }

  static void expect_same_mining(const mining::AprioriResult& a,
                                 const mining::AprioriResult& b) {
    ASSERT_EQ(a.support.size(), b.support.size());
    for (const auto& [itemset, count] : a.support) {
      const auto it = b.support.find(itemset);
      ASSERT_NE(it, b.support.end()) << itemset.to_string();
      EXPECT_EQ(it->second, count) << itemset.to_string();
    }
  }

  /// Degraded runs may lose counts (orphaned lines) but can never invent
  /// them: every itemset reported large must be genuinely large, with a
  /// count no higher than the sequential truth.
  static void expect_counts_not_inflated(const mining::AprioriResult& truth,
                                         const mining::AprioriResult& got) {
    for (const auto& [itemset, count] : got.support) {
      const auto it = truth.support.find(itemset);
      ASSERT_NE(it, truth.support.end()) << itemset.to_string();
      EXPECT_LE(count, it->second) << itemset.to_string();
    }
  }

  static mining::TransactionDb* db_;
  static mining::AprioriResult* seq_;
  static std::int64_t limit_;
  static Time crash_at_;
};

mining::TransactionDb* FailoverFixture::db_ = nullptr;
mining::AprioriResult* FailoverFixture::seq_ = nullptr;
std::int64_t FailoverFixture::limit_ = 0;
Time FailoverFixture::crash_at_ = 0;

TEST_F(FailoverFixture, NoDestinationDegradesToDiskExactly) {
  // Every memory node withdraws its memory before the first eviction: the
  // availability table never offers a destination with headroom, so all
  // evictions take the disk-swap path. Disk swapping is lossless — the
  // result stays exact. (A crash instead of a withdrawal would race the
  // monitors' t=0 broadcast: one-way swap-outs aimed at a node that just
  // died are lost by design and orphan their lines.)
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  for (std::size_t i = 0; i < c.memory_nodes; ++i) {
    c.withdrawals.push_back({i, msec(1)});
  }
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.failover.degraded_evictions, 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
  EXPECT_EQ(r.failover.promoted_lines, 0);
}

TEST_F(FailoverFixture, MidRunCrashOfEveryMemoryNodeStillCompletes) {
  // The worst case: all remote state vanishes mid-pass-2. Orphaned lines
  // restart empty (their counts are lost), later evictions degrade to disk,
  // and the run must still terminate with a sane (never inflated) result.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  for (std::size_t i = 0; i < c.memory_nodes; ++i) {
    c.crashes.push_back({i, crash_at_, -1});
  }
  const HpaResult r = run_hpa(c);
  expect_counts_not_inflated(*seq_, r.mined);
  EXPECT_GT(r.failover.suspicions, 0);
  EXPECT_GT(r.failover.orphaned_lines, 0);
  EXPECT_EQ(r.failover.promoted_lines, 0);
}

TEST_F(FailoverFixture, SingleCrashWithoutReplicationDegrades) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.crashes = {{0, crash_at_, -1}};
  const HpaResult r = run_hpa(c);
  expect_counts_not_inflated(*seq_, r.mined);
  EXPECT_GT(r.failover.suspicions, 0);
  EXPECT_EQ(r.failover.promoted_lines, 0);
}

TEST_F(FailoverFixture, ReplicationMakesSingleCrashExact) {
  // The acceptance bar: replicate_k = 1, crash one memory node mid-pass-2,
  // and the mining result is bit-identical to the no-fault / sequential
  // reference — every lost primary had a live backup to promote.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  c.crashes = {{0, crash_at_, -1}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.failover.replicas_stored, 0);
  EXPECT_GT(r.failover.promoted_lines, 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
}

TEST_F(FailoverFixture, ReplicationAloneDoesNotPerturbTheResult) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.failover.replicas_stored, 0);
  EXPECT_EQ(r.failover.promoted_lines, 0);
  EXPECT_EQ(r.failover.suspicions, 0);
}

TEST_F(FailoverFixture, ReplicationProtectsSimpleSwappingToo) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  c.crashes = {{0, crash_at_, -1}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.failover.replicas_stored, 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
}

TEST_F(FailoverFixture, CrashedNodeRestartsAndRejoins) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.replicate_k = 1;
  // Restart well before the run ends (the faulty run takes at least as long
  // as the unlimited probe, which ran to 3 * crash_at_).
  c.crashes = {{0, crash_at_, crash_at_ * 2}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_EQ(r.stats.counter("node.crashes"), 1);
  EXPECT_EQ(r.stats.counter("node.restarts"), 1);
}

TEST_F(FailoverFixture, LossBurstIsAbsorbedByRetransmission) {
  // A scripted period of 30% message loss mid-pass-2 (no crash): the
  // transport retransmits, nothing is declared dead (the heartbeat
  // threshold is raised well above the burst), and the result stays exact.
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.rpc_deadline = msec(2000);  // ride out retransmission delays
  c.rpc_max_retries = 2;
  c.suspect_after_misses = 30;  // a 500 ms burst must not look like a crash
  c.loss_bursts = {{crash_at_, msec(500), 0.3}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("net.retransmissions"), 0);
  EXPECT_EQ(r.failover.orphaned_lines, 0);
}

}  // namespace
}  // namespace rms::hpa
