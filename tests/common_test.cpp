// Tests for the common utilities: time arithmetic, RNG distributions,
// stats, table printer, and flag parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace rms {
namespace {

TEST(TimeArithmetic, UnitsCompose) {
  EXPECT_EQ(usec(1), nsec(1000));
  EXPECT_EQ(msec(1), usec(1000));
  EXPECT_EQ(sec(1), msec(1000));
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(usec(1500)), 1.5);
}

TEST(TimeArithmetic, TransmitTimeRoundsUp) {
  // 1 byte at 8 bps = exactly 1 second.
  EXPECT_EQ(transmit_time(1, 8), sec(1));
  // 4096 B at 120 Mbps ~= 273 us.
  const Time t = transmit_time(4096, 120'000'000);
  EXPECT_GT(t, usec(270));
  EXPECT_LT(t, usec(276));
  // Rounds up, never to zero for nonzero payloads.
  EXPECT_GE(transmit_time(1, 1'000'000'000'000LL), 1);
}

TEST(Rng, DeterministicPerSeedAndStream) {
  Pcg32 a(7, 1), b(7, 1), c(7, 2), d(8, 1);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)va;
  }
  bool differs_stream = false, differs_seed = false;
  Pcg32 a2(7, 1);
  for (int i = 0; i < 100; ++i) {
    const auto v = a2();
    if (v != c()) differs_stream = true;
    if (v != d()) differs_seed = true;
  }
  EXPECT_TRUE(differs_stream);
  EXPECT_TRUE(differs_seed);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Pcg32 rng(123);
  std::vector<int> hist(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++hist[v];
  }
  for (int h : hist) {
    EXPECT_GT(h, n / 10 * 92 / 100);
    EXPECT_LT(h, n / 10 * 108 / 100);
  }
}

TEST(Rng, RangeInclusive) {
  Pcg32 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PoissonMoments) {
  Pcg32 rng(77);
  for (double mean : {0.5, 4.0, 10.0, 50.0}) {
    double sum = 0, sq = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
      const double v = rng.poisson(mean);
      sum += v;
      sq += v * v;
    }
    const double m = sum / n;
    const double var = sq / n - m * m;
    EXPECT_NEAR(m, mean, mean * 0.05 + 0.05) << "mean " << mean;
    EXPECT_NEAR(var, mean, mean * 0.12 + 0.1) << "mean " << mean;
  }
}

TEST(Rng, ExponentialMean) {
  Pcg32 rng(88);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Pcg32 rng(99);
  double sum = 0, sq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Stats, SummaryTracksMoments) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Stats, SummaryMerge) {
  Summary a, b;
  a.add(1.0);
  a.add(3.0);
  b.add(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);
}

TEST(Stats, RegistryCountersAndMerge) {
  StatsRegistry r;
  r.bump("x");
  r.bump("x", 4);
  r.sample("lat", 2.0);
  EXPECT_EQ(r.counter("x"), 5);
  EXPECT_EQ(r.counter("missing"), 0);
  EXPECT_EQ(r.summary("lat").count(), 1u);
  EXPECT_EQ(r.summary("missing").count(), 0u);

  StatsRegistry other;
  other.bump("x", 10);
  other.sample("lat", 4.0);
  r.merge(other);
  EXPECT_EQ(r.counter("x"), 15);
  EXPECT_DOUBLE_EQ(r.summary("lat").mean(), 3.0);
}

TEST(Histogram, PercentilesOnUniformData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i) / 100.0);
  EXPECT_EQ(h.count(), 1000u);
  // Log buckets have 7% resolution; allow that plus bucket-edge rounding.
  EXPECT_NEAR(h.percentile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.percentile(0.99), 9.9, 0.9);
  EXPECT_NEAR(h.percentile(0.0), 0.01, 0.01);
  EXPECT_NEAR(h.percentile(1.0), 10.0, 1.0);
}

TEST(Histogram, EmptyAndSingle) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  h.add(2.5);
  EXPECT_NEAR(h.percentile(0.0), 2.5, 0.25);
  EXPECT_NEAR(h.percentile(1.0), 2.5, 0.25);
  EXPECT_DOUBLE_EQ(h.summary().mean(), 2.5);
}

TEST(Histogram, EmptyReportsAllPercentilesEqualToMax) {
  const Histogram h;
  // Empty: every percentile and the summary max agree (all zero) — report
  // consumers can print p50/p95/p99/max without special-casing.
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), h.summary().max());
  }
  EXPECT_DOUBLE_EQ(h.summary().max(), 0.0);
}

TEST(Histogram, SingleSampleReportsAllPercentilesEqualToMax) {
  Histogram h;
  h.add(13.2);
  // One sample IS the whole distribution: p50 = p95 = p99 = max exactly
  // (the log-bucket upper edge must not inflate it).
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 13.2);
    EXPECT_DOUBLE_EQ(h.percentile(p), h.summary().max());
  }
}

TEST(Summary, EmptyIsConsistentZeros) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Summary, SingleSampleMinMeanMaxCoincide) {
  Summary s;
  s.add(-4.25);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), -4.25);
  EXPECT_DOUBLE_EQ(s.max(), -4.25);
  EXPECT_DOUBLE_EQ(s.mean(), -4.25);
}

TEST(Histogram, TinyAndHugeValuesClampToEdgeBuckets) {
  Histogram h;
  h.add(-5.0);     // below range
  h.add(1e-9);     // below range
  h.add(1e9);      // above range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.percentile(1.0), h.percentile(0.0));
}

TEST(Histogram, MergeCombinesDistributions) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.add(1.0);
  for (int i = 0; i < 100; ++i) b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.percentile(0.25), 1.0, 0.1);
  EXPECT_NEAR(a.percentile(0.75), 100.0, 10.0);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  Pcg32 rng(42);
  for (int i = 0; i < 5000; ++i) {
    h.add(rng.exponential(3.0));  // heavy tail spanning many buckets
  }
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0 + 1e-12; p += 0.01) {
    const double v = h.percentile(std::min(p, 1.0));
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(Histogram, MergeEqualsPooledAdd) {
  Histogram a, b, pooled;
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.exponential(1.0);
    a.add(v);
    pooled.add(v);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = 50.0 + rng.exponential(20.0);
    b.add(v);
    pooled.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_DOUBLE_EQ(a.summary().sum(), pooled.summary().sum());
  EXPECT_DOUBLE_EQ(a.summary().min(), pooled.summary().min());
  EXPECT_DOUBLE_EQ(a.summary().max(), pooled.summary().max());
  // Same buckets, so every percentile must agree exactly.
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), pooled.percentile(p)) << "p=" << p;
  }
}

TEST(Histogram, ZeroAndNegativeShareTheFirstBucket) {
  Histogram h;
  h.add(0.0);
  h.add(-123.0);
  h.add(1e-3);  // exactly the lower edge
  EXPECT_EQ(h.count(), 3u);
  // All three land in bucket 0: every percentile is its upper edge.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.percentile(1.0));
  EXPECT_GT(h.percentile(0.5), 0.0);
  // The exact summary still sees the raw values.
  EXPECT_DOUBLE_EQ(h.summary().min(), -123.0);
  EXPECT_DOUBLE_EQ(h.summary().max(), 1e-3);
}

TEST(Stats, SummaryMergePreservesMinMaxAcrossDirections) {
  Summary lo, hi;
  lo.add(-2.0);
  lo.add(1.0);
  hi.add(100.0);
  hi.add(200.0);
  Summary m = lo;
  m.merge(hi);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.min(), -2.0);
  EXPECT_DOUBLE_EQ(m.max(), 200.0);
  EXPECT_DOUBLE_EQ(m.sum(), 299.0);
  // Merging the other direction gives the same moments.
  Summary m2 = hi;
  m2.merge(lo);
  EXPECT_EQ(m2.count(), m.count());
  EXPECT_DOUBLE_EQ(m2.min(), m.min());
  EXPECT_DOUBLE_EQ(m2.max(), m.max());
  EXPECT_DOUBLE_EQ(m2.sum(), m.sum());
}

TEST(Registry, RecordFeedsHistogram) {
  StatsRegistry r;
  for (int i = 0; i < 50; ++i) r.record("lat", 2.0);
  EXPECT_EQ(r.histogram("lat").count(), 50u);
  EXPECT_NEAR(r.histogram("lat").percentile(0.5), 2.0, 0.2);
  EXPECT_EQ(r.histogram("missing").count(), 0u);

  StatsRegistry other;
  other.record("lat", 8.0);
  r.merge(other);
  EXPECT_EQ(r.histogram("lat").count(), 51u);
}

TEST(Table, CsvRoundTrip) {
  TablePrinter t("test", {"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const std::string path = ::testing::TempDir() + "/rmswap_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,x\n2,y\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::integer(-42), "-42");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  TablePrinter t("test", {"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",     "--alpha=3",  "--beta", "7",
                        "--gamma",  "positional", nullptr};
  Flags f(6, argv,
          {{"alpha", ""}, {"beta", ""}, {"gamma", ""}});
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_EQ(f.get_int("beta", 0), 7);
  // A non-flag token after "--gamma" is consumed as gamma's value.
  EXPECT_EQ(f.get("gamma", ""), "positional");
}

TEST(Flags, TrailingBareFlagIsBooleanTrue) {
  const char* argv[] = {"prog", "--verbose", nullptr};
  Flags f(2, argv, {{"verbose", ""}});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, BareFlagBeforeAnotherFlagIsBooleanTrue) {
  const char* argv[] = {"prog", "--verbose", "--rate=1", nullptr};
  Flags f(3, argv, {{"verbose", ""}, {"rate", ""}});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("rate", 0), 1);
}

TEST(Flags, DefaultsAndTypes) {
  const char* argv[] = {"prog", "--rate=2.5", nullptr};
  Flags f(2, argv, {{"rate", ""}, {"other", ""}});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(f.get_double("other", 1.25), 1.25);
  EXPECT_EQ(f.get("other", "dflt"), "dflt");
  EXPECT_FALSE(f.has("other"));
  EXPECT_TRUE(f.has("rate"));
}

TEST(FlagsDeathTest, UnknownFlagExits) {
  const char* argv[] = {"prog", "--nope=1", nullptr};
  EXPECT_EXIT(Flags(2, argv, {{"known", ""}}),
              ::testing::ExitedWithCode(2), "unknown flag");
}

}  // namespace
}  // namespace rms
