// PassProfiler tests: hand-built event sequences with known attribution
// (the exact-sum invariant, barrier skew, critical path), the rpc-op name
// table's lockstep with the core protocol, graceful degradation, and an
// end-to-end check that attribution shares are stable across identical runs.
#include <gtest/gtest.h>

#include <string>

#include "core/protocol.hpp"
#include "hpa/hpa.hpp"
#include "mining/generator.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace rms::obs {
namespace {

/// Emit a pass span on the phase track — the profiler's analysis trigger.
void close_pass(TraceRecorder& t, std::int64_t k, Time start, Time end) {
  t.span(EventKind::kPass, TraceRecorder::kPhaseTrack, start, end, k);
}

/// Force analysis of everything pending.
void finish(PassProfiler& p) { p.end_run(); }

TEST(PassProfiler, CategoriesSumToPassDurationExactly) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);

  // Node 0, window [0, 300] ns: compute [0,100], rpc [50,150] (overlaps
  // compute by 50), fault-in [120,200] (overlaps rpc by 30). Priority
  // fault_in > rpc > compute:
  //   compute owns [0,50)            =  50
  //   rpc owns [50,120)              =  70
  //   fault_in owns [120,200)        =  80
  //   unattributed [200,300)         = 100
  p.on_busy(0, EventKind::kCompute, 0, 100);
  t.span(EventKind::kRpc, 0, 50, 150, /*peer=*/1, /*attempts=*/1);
  t.span(EventKind::kFaultIn, 0, 120, 200, /*line=*/7, /*bytes=*/64);
  close_pass(t, 2, 0, 300);
  finish(p);

  ASSERT_EQ(p.runs().size(), 1u);
  const RunProfile& run = p.runs()[0];
  ASSERT_EQ(run.passes.size(), 1u);
  const PassProfile& pass = run.passes[0];
  EXPECT_EQ(pass.k, 2);
  EXPECT_EQ(pass.duration(), 300);
  const NodeProfile* n0 = pass.node_profile(0);
  ASSERT_NE(n0, nullptr);
  EXPECT_EQ(n0->category(ProfileCategory::kCompute), 50);
  EXPECT_EQ(n0->category(ProfileCategory::kRpc), 70);
  EXPECT_EQ(n0->category(ProfileCategory::kFaultIn), 80);
  EXPECT_EQ(n0->category(ProfileCategory::kUnattributed), 100);
  // The invariant: exact integer equality, not approximate.
  EXPECT_EQ(n0->total(), pass.duration());
}

TEST(PassProfiler, SpansAreClippedToThePassWindow) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);

  // Spans straddling both window edges; only the inside parts count.
  t.span(EventKind::kSwapOut, 3, 50, 150, 1, 64);    // clips to [100,150]
  t.span(EventKind::kServe, 3, 380, 450, 0, 0);      // clips to [380,400]
  t.span(EventKind::kMigrate, 3, 500, 600, 2, 4);    // outside entirely
  close_pass(t, 2, 100, 400);
  finish(p);

  const PassProfile& pass = p.runs()[0].passes[0];
  const NodeProfile* n = pass.node_profile(3);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->category(ProfileCategory::kSwapOut), 50);
  EXPECT_EQ(n->category(ProfileCategory::kServe), 20);
  EXPECT_EQ(n->category(ProfileCategory::kMigrate), 0);
  EXPECT_EQ(n->category(ProfileCategory::kUnattributed), 230);
  EXPECT_EQ(n->total(), 300);
}

TEST(PassProfiler, BarrierSkewMatchesSlowestNode) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);

  // One barrier group in pass 2: arrivals 100 / 150 / 200. Release = 200,
  // so node 0 idles 100, node 1 idles 50, node 2 (the straggler) idles 0.
  t.instant(EventKind::kBarrier, 0, 100, /*k=*/2);
  t.instant(EventKind::kBarrier, 1, 150, 2);
  t.instant(EventKind::kBarrier, 2, 200, 2);
  close_pass(t, 2, 0, 250);
  finish(p);

  const PassProfile& pass = p.runs()[0].passes[0];
  ASSERT_EQ(pass.stragglers.size(), 3u);
  // Ascending by wait: front() is the pass straggler (waited least).
  EXPECT_EQ(pass.stragglers[0].node, 2);
  EXPECT_EQ(pass.stragglers[0].barrier_wait, 0);
  EXPECT_EQ(pass.stragglers[1].node, 1);
  EXPECT_EQ(pass.stragglers[1].barrier_wait, 50);
  EXPECT_EQ(pass.stragglers[2].node, 0);
  EXPECT_EQ(pass.stragglers[2].barrier_wait, 100);
  // The idle interval is attributed as barrier wait, and sums stay exact.
  const NodeProfile* n0 = pass.node_profile(0);
  ASSERT_NE(n0, nullptr);
  EXPECT_EQ(n0->category(ProfileCategory::kBarrierWait), 100);
  EXPECT_EQ(n0->total(), pass.duration());
}

TEST(PassProfiler, CriticalPathOnSyntheticThreeNodePass) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);

  // Pass 2 over [0, 1000]: build [0,300], count [300,800], determine
  // [800,1000]; three barrier groups (one per phase) on tracks 0/1/2.
  // Stragglers: build -> node 1 (arrives 300), count -> node 2 (800),
  // determine -> node 0 (1000).
  t.instant(EventKind::kBarrier, 0, 200, 2);
  t.instant(EventKind::kBarrier, 1, 300, 2);
  t.instant(EventKind::kBarrier, 2, 250, 2);
  t.instant(EventKind::kBarrier, 0, 700, 2);
  t.instant(EventKind::kBarrier, 1, 650, 2);
  t.instant(EventKind::kBarrier, 2, 800, 2);
  t.instant(EventKind::kBarrier, 0, 1000, 2);
  t.instant(EventKind::kBarrier, 1, 900, 2);
  t.instant(EventKind::kBarrier, 2, 950, 2);
  // The build straggler spent its segment in fault-in wait.
  t.span(EventKind::kFaultIn, 1, 0, 300, 9, 64);
  // Phase spans (recorded at pass end, on the phase track, arg0 = k,
  // arg1 = the id the recorder's phase registry handed out).
  const std::int64_t build = t.register_phase("build");
  const std::int64_t count = t.register_phase("count");
  const std::int64_t determine = t.register_phase("determine");
  t.span(EventKind::kPhase, TraceRecorder::kPhaseTrack, 0, 300, 2, build);
  t.span(EventKind::kPhase, TraceRecorder::kPhaseTrack, 300, 800, 2, count);
  t.span(EventKind::kPhase, TraceRecorder::kPhaseTrack, 800, 1000, 2,
         determine);
  close_pass(t, 2, 0, 1000);
  finish(p);

  const PassProfile& pass = p.runs()[0].passes[0];
  ASSERT_EQ(pass.critical_path.size(), 3u);
  EXPECT_EQ(pass.critical_path[0].phase, build);
  EXPECT_EQ(pass.critical_path[0].node, 1);
  EXPECT_EQ(pass.critical_path[0].start, 0);
  EXPECT_EQ(pass.critical_path[0].end, 300);
  // The straggler's segment breakdown shows what it was doing.
  EXPECT_EQ(pass.critical_path[0]
                .time[static_cast<std::size_t>(ProfileCategory::kFaultIn)],
            300);
  EXPECT_EQ(pass.critical_path[1].phase, count);
  EXPECT_EQ(pass.critical_path[1].node, 2);
  EXPECT_EQ(pass.critical_path[1].end, 800);
  EXPECT_EQ(pass.critical_path[2].phase, determine);
  EXPECT_EQ(pass.critical_path[2].node, 0);
  EXPECT_EQ(pass.critical_path[2].end, 1000);
  // The run carries the registry names for rendering.
  ASSERT_EQ(p.runs()[0].phase_names.size(), 3u);
  EXPECT_EQ(p.runs()[0].phase_names[static_cast<std::size_t>(build)],
            "build");
}

TEST(PassProfiler, RpcByOpIsInclusiveAndKeyedByAnnotation) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);

  const std::int64_t fetch = core::rpc_op(core::MemRequest::Kind::kFetch);
  const std::int64_t swap_in = core::rpc_op(core::MemRequest::Kind::kSwapIn);
  // A swap-in RPC nested inside a fault-in span: exclusively the time is
  // fault_in, but rpc_by_op still sees the full RPC wait (inclusive view).
  t.span(EventKind::kFaultIn, 0, 100, 300, 1, 64);
  t.span(EventKind::kRpc, 0, 120, 280, 9, 1, swap_in);
  t.span(EventKind::kRpc, 0, 400, 500, 9, 1, fetch);
  close_pass(t, 2, 0, 600);
  finish(p);

  const NodeProfile* n = p.runs()[0].passes[0].node_profile(0);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->category(ProfileCategory::kFaultIn), 200);
  EXPECT_EQ(n->category(ProfileCategory::kRpc), 100);  // only the bare fetch
  ASSERT_EQ(n->rpc_by_op.size(), 2u);
  EXPECT_EQ(n->rpc_by_op.at(swap_in), 160);
  EXPECT_EQ(n->rpc_by_op.at(fetch), 100);
  EXPECT_EQ(n->total(), 600);
}

TEST(PassProfiler, BusyIntervalsCoalesceLosslessly) {
  PassProfiler p;
  // Back-to-back compute chunks (the CpuCharger pattern) coalesce into one
  // interval; a gap or a different kind starts a new one.
  p.on_busy(0, EventKind::kCompute, 0, 10);
  p.on_busy(0, EventKind::kCompute, 10, 25);
  p.on_busy(0, EventKind::kCompute, 25, 40);
  p.on_busy(0, EventKind::kDiskIo, 40, 60);
  p.on_busy(0, EventKind::kCompute, 70, 80);
  TraceEvent pass;
  pass.kind = EventKind::kPass;
  pass.track = TraceRecorder::kPhaseTrack;
  pass.start = 0;
  pass.duration = 100;
  pass.arg0 = 2;
  p.on_event(pass);
  finish(p);

  const NodeProfile* n = p.runs()[0].passes[0].node_profile(0);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->category(ProfileCategory::kCompute), 50);
  EXPECT_EQ(n->category(ProfileCategory::kDiskIo), 20);
  EXPECT_EQ(n->category(ProfileCategory::kUnattributed), 30);
  EXPECT_EQ(n->total(), 100);
}

TEST(PassProfiler, BufferCapDegradesGracefully) {
  PassProfiler::Options opt;
  opt.max_buffered_events = 4;
  TraceRecorder t;
  PassProfiler p(opt);
  t.set_profile_hook(&p);

  for (int i = 0; i < 10; ++i) {
    t.span(EventKind::kServe, 1, i * 10, i * 10 + 5, 0, 0);
  }
  close_pass(t, 2, 0, 100);
  finish(p);

  const RunProfile& run = p.runs()[0];
  EXPECT_FALSE(run.complete());
  EXPECT_EQ(run.events_dropped, 6u);
  // The retained events still attribute exactly; lost time is unattributed.
  const NodeProfile* n = run.passes[0].node_profile(1);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->category(ProfileCategory::kServe), 20);  // 4 retained spans
  EXPECT_EQ(n->total(), 100);
}

TEST(PassProfiler, RpcOpNamesMatchTheCoreProtocol) {
  using Kind = core::MemRequest::Kind;
  for (const Kind k :
       {Kind::kSwapOut, Kind::kSwapIn, Kind::kUpdateBatch, Kind::kFetch,
        Kind::kMigrateDirective, Kind::kMigrateData, Kind::kReplicaStore,
        Kind::kReplicaPromote, Kind::kReplicaDrop, Kind::kPing,
        Kind::kReplicaSync}) {
    EXPECT_STREQ(rpc_op_name(core::rpc_op(k)), core::MemRequest::to_string(k));
  }
  EXPECT_STREQ(rpc_op_name(0), "other");
  EXPECT_STREQ(rpc_op_name(-1), "unknown");
  EXPECT_STREQ(rpc_op_name(1000), "unknown");
}

TEST(PassProfiler, ProfileJsonCarriesSchemaAndSections) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);
  p.begin_run("demo");
  t.span(EventKind::kFaultIn, 0, 0, 100, 1, 64);
  close_pass(t, 2, 0, 200);
  finish(p);

  const std::string json = profile_file_json(p.runs());
  EXPECT_NE(json.find("rmswap.profile/v2"), std::string::npos);
  EXPECT_NE(json.find("\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_in_s\""), std::string::npos);
  EXPECT_NE(json.find("\"unattributed_s\""), std::string::npos);
  EXPECT_NE(json.find("\"stragglers\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
}

TEST(PassProfiler, SlowestOperationsRankDescending) {
  TraceRecorder t;
  PassProfiler p;
  t.set_profile_hook(&p);
  t.span(EventKind::kFaultIn, 0, 0, 50, 1, 64);
  t.span(EventKind::kFaultIn, 1, 10, 210, 2, 64);
  t.span(EventKind::kServe, 2, 20, 120, 0, 0);
  close_pass(t, 2, 0, 300);
  finish(p);

  const PassProfile& pass = p.runs()[0].passes[0];
  ASSERT_EQ(pass.slowest.size(), 3u);
  EXPECT_EQ(pass.slowest[0].duration, 200);
  EXPECT_EQ(pass.slowest[0].node, 1);
  EXPECT_EQ(pass.slowest[1].duration, 100);
  EXPECT_EQ(pass.slowest[2].duration, 50);
}

// ---------------------------------------------------------------------------
// End-to-end: a real (small) HPA run.
// ---------------------------------------------------------------------------

hpa::HpaConfig small_config() {
  hpa::HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 4;
  mining::QuestParams w;
  w.num_transactions = 3000;
  w.num_items = 200;
  w.avg_transaction_size = 8;
  w.avg_pattern_size = 3;
  w.num_patterns = 40;
  w.seed = 3;
  c.workload = w;
  c.min_support = 0.02;
  c.hash_lines = 4096;
  return c;
}

RunProfile profiled_run(const hpa::HpaConfig& base) {
  TraceRecorder recorder;
  PassProfiler profiler;
  recorder.set_profile_hook(&profiler);
  hpa::HpaConfig cfg = base;
  cfg.trace = &recorder;
  cfg.profiler = &profiler;
  profiler.begin_run("e2e");
  hpa::run_hpa(cfg);
  profiler.end_run(recorder.dropped());
  return profiler.runs().back();
}

TEST(PassProfilerEndToEnd, ExactSumsAndStableSharesAcrossRuns) {
  const hpa::HpaConfig cfg = small_config();
  const RunProfile a = profiled_run(cfg);
  const RunProfile b = profiled_run(cfg);

  ASSERT_FALSE(a.passes.empty());
  EXPECT_TRUE(a.complete());
  for (const PassProfile& pass : a.passes) {
    EXPECT_GT(pass.duration(), 0);
    ASSERT_FALSE(pass.nodes.empty());
    for (const NodeProfile& n : pass.nodes) {
      // The tentpole invariant, on real traffic: exact to the nanosecond.
      EXPECT_EQ(n.total(), pass.duration())
          << "pass " << pass.k << " node " << n.node;
    }
    // Passes beyond the first see the instrumented barriers.
    if (pass.k >= 2) {
      EXPECT_FALSE(pass.stragglers.empty()) << "pass " << pass.k;
      EXPECT_EQ(pass.critical_path.size(), 3u) << "pass " << pass.k;
    }
  }

  // Determinism: an identical config yields the identical profile (virtual
  // time is exact, so this is equality, not tolerance).
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (std::size_t i = 0; i < a.passes.size(); ++i) {
    EXPECT_EQ(a.passes[i].duration(), b.passes[i].duration());
    ASSERT_EQ(a.passes[i].nodes.size(), b.passes[i].nodes.size());
    for (std::size_t j = 0; j < a.passes[i].nodes.size(); ++j) {
      EXPECT_EQ(a.passes[i].nodes[j].time, b.passes[i].nodes[j].time);
    }
  }
}

TEST(PassProfilerEndToEnd, ComputeDominatesAnUnlimitedRun) {
  const RunProfile run = profiled_run(small_config());
  // With no memory limit there is no swapping: pass-2 time is mostly CPU
  // (plus barrier skew); fault-in and swap-out must be zero.
  const PassProfile& p2 = run.passes.back();
  Time compute = 0, faults = 0, swaps = 0, total = 0;
  for (const NodeProfile& n : p2.nodes) {
    compute += n.category(ProfileCategory::kCompute);
    faults += n.category(ProfileCategory::kFaultIn);
    swaps += n.category(ProfileCategory::kSwapOut);
    total += n.duration;
  }
  EXPECT_EQ(faults, 0);
  EXPECT_EQ(swaps, 0);
  EXPECT_GT(compute, 0);
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace rms::obs
