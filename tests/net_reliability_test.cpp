// Reliability-layer tests: transmission losses with TCP-style retransmission
// and in-order delivery (the behaviour the authors' companion work tunes on
// the real cluster).
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::net {
namespace {

struct Payload {
  int value = 0;
};

TEST(Reliability, LossyLinkStillDeliversEverything) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155_lossy(0.2, msec(5)));
  std::vector<int> got;
  net.set_delivery(1, [&](Message m) { got.push_back(m.as<Payload>().value); });
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    net.send(Message::make(0, 1, 0, 512, Payload{i}));
  }
  sim.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  EXPECT_GT(net.stats().counter("net.retransmissions"), n / 20);
}

TEST(Reliability, InOrderDeliveryDespiteLosses) {
  // The FIFO guarantee our swap/update protocols rely on must survive
  // retransmissions: later messages buffer behind a lost earlier one.
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155_lossy(0.25, msec(3)));
  std::vector<int> got;
  net.set_delivery(1, [&](Message m) { got.push_back(m.as<Payload>().value); });
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    net.send(Message::make(0, 1, 0, 512, Payload{i}));
  }
  sim.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "order broken at " << i;
  }
  // Some messages arrived out of order internally and were buffered.
  EXPECT_GT(net.stats().counter("net.reordered"), 0);
}

TEST(Reliability, IndependentPairsDoNotBlockEachOther) {
  // Head-of-line blocking is per (src,dst) pair only.
  sim::Simulation sim;
  Network net(sim, 3, LinkParams::atm155_lossy(0.3, msec(50)));
  Time t1 = -1, t2 = -1;
  net.set_delivery(1, [&](Message) { t1 = sim.now(); });
  net.set_delivery(2, [&](Message) { t2 = sim.now(); });
  // Many attempts to node 1 (some will be lost), one message to node 2.
  for (int i = 0; i < 20; ++i) {
    net.send(Message::make(0, 1, 0, 4096, Payload{i}));
  }
  net.send(Message::make(0, 2, 0, 4096, Payload{99}));
  sim.run();
  EXPECT_GE(t1, 0);
  EXPECT_GE(t2, 0);
  // The (0,2) message only waits for TX serialization, never for node 1's
  // retransmission timers.
  EXPECT_LT(t2, msec(50));
}

TEST(Reliability, RetransmissionTimeoutDominatesStallTime) {
  // One message, forced loss on the first attempt(s): delivery time is
  // dominated by the RTO — the effect the companion work's tuning removes.
  auto run_with_rto = [](Time rto) {
    sim::Simulation sim;
    Network net(sim, 2, LinkParams::atm155_lossy(0.5, rto));
    Time delivered = -1;
    net.set_delivery(1, [&](Message) { delivered = sim.now(); });
    for (int i = 0; i < 50; ++i) {
      net.send(Message::make(0, 1, 0, 512, Payload{i}));
    }
    sim.run();
    return sim.now();
  };
  const Time coarse = run_with_rto(msec(200));
  const Time tuned = run_with_rto(msec(2));
  EXPECT_GT(coarse, 10 * tuned);
}

TEST(Reliability, ZeroLossPathHasNoOverhead) {
  sim::Simulation sim;
  Network net(sim, 2, LinkParams::atm155());
  Time delivered = -1;
  net.set_delivery(1, [&](Message) { delivered = sim.now(); });
  net.send(Message::make(0, 1, 0, 4096, Payload{}));
  sim.run();
  EXPECT_EQ(delivered,
            net.transmission_time(4096) + net.params().propagation);
  EXPECT_EQ(net.stats().counter("net.retransmissions"), 0);
  EXPECT_EQ(net.stats().counter("net.reordered"), 0);
}

TEST(Reliability, DeterministicLossPattern) {
  auto run_once = [] {
    sim::Simulation sim;
    Network net(sim, 2, LinkParams::atm155_lossy(0.1, msec(5)));
    std::vector<Time> deliveries;
    net.set_delivery(1, [&](Message) { deliveries.push_back(sim.now()); });
    for (int i = 0; i < 200; ++i) {
      net.send(Message::make(0, 1, 0, 1024, Payload{i}));
    }
    sim.run();
    return deliveries;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rms::net
