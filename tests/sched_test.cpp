// Multi-tenant scheduler tests: admission on slots and pool bytes,
// simultaneous arrivals at one virtual instant, deadline shedding,
// priority reclamation (including a reclaim racing the victim's own
// completion), tenant-quota degradation, full capacity release between
// jobs, and arrival-trace determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sched/arrivals.hpp"
#include "sched/scheduler.hpp"
#include "sched/world.hpp"
#include "sim/simulation.hpp"
#include "workloads/hash_aggregate.hpp"
#include "workloads/hash_join.hpp"

namespace rms::sched {
namespace {

WorldConfig small_world(std::size_t app_nodes, std::size_t memory_nodes) {
  WorldConfig cfg;
  cfg.app_nodes = app_nodes;
  cfg.memory_nodes = memory_nodes;
  cfg.monitor_interval = msec(500);
  return cfg;
}

/// Shrink every donor to exactly `free_bytes` of reported free memory by
/// modelling the rest as foreign load, so pool arithmetic in the tests is
/// exact.
void set_donor_free(World& world, std::int64_t free_bytes) {
  for (std::size_t i = 0; i < world.config().memory_nodes; ++i) {
    cluster::HostMemoryModel& mem =
        world.cluster().node(world.memory_node(i)).memory();
    mem.external_bytes = std::max<std::int64_t>(
        0, mem.total_bytes - mem.base_bytes - free_bytes);
  }
}

/// A small two-node join that finishes in a few virtual seconds and swaps
/// part of its build table to the donor pool.
workloads::HashJoinConfig small_join() {
  workloads::HashJoinConfig cfg;
  cfg.app_nodes = 2;
  cfg.build_rows = 4'000;
  cfg.probe_rows = 4'000;
  cfg.keys = 1'000;
  cfg.memory_limit_bytes = 24'000;
  cfg.policy = core::SwapPolicy::kRemoteSwap;
  return cfg;
}

/// A two-node group-by whose table mostly lives in the donor pool (tight
/// limit, one-way updates park the lines remotely) — the reclamation victim.
workloads::HashAggregateConfig small_aggregate() {
  workloads::HashAggregateConfig cfg;
  cfg.app_nodes = 2;
  cfg.workload = mining::QuestParams::paper_experiment(0.01);
  cfg.hash_lines = 1024;
  cfg.memory_limit_bytes = 8 * 1024;
  cfg.policy = core::SwapPolicy::kRemoteUpdate;
  return cfg;
}

JobSpec join_spec(const char* name, std::int64_t tenant, int priority,
                  Time arrival, workloads::HashJoinConfig cfg) {
  JobSpec s;
  s.name = name;
  s.workload = "hash_join";
  s.tenant = tenant;
  s.priority = priority;
  s.arrival = arrival;
  s.slots = cfg.app_nodes;
  s.make = [cfg] { return workloads::make_hash_join_job(cfg); };
  return s;
}

JobSpec aggregate_spec(const char* name, std::int64_t tenant, int priority,
                       Time arrival, workloads::HashAggregateConfig cfg) {
  JobSpec s;
  s.name = name;
  s.workload = "hash_aggregate";
  s.tenant = tenant;
  s.priority = priority;
  s.arrival = arrival;
  s.slots = cfg.app_nodes;
  s.make = [cfg] { return workloads::make_hash_aggregate_job(cfg); };
  return s;
}

SchedulerConfig guarded() {
  SchedulerConfig cfg;
  cfg.horizon = sec(600);  // a wedged world aborts instead of hanging
  return cfg;
}

TEST(Scheduler, SimultaneousArrivalsAdmitByPriorityThenSubmissionOrder) {
  sim::Simulation sim;
  World world(sim, small_world(4, 2));
  set_donor_free(world, 256 << 10);
  JobScheduler scheduler(world, guarded());

  // Three 2-slot jobs all arriving at the same virtual instant; capacity
  // for two. The two priority-5 jobs win, tie broken by submission order;
  // the priority-1 job waits for a completion.
  scheduler.submit(join_spec("low", 1, 1, sec(1), small_join()));
  scheduler.submit(join_spec("hi-a", 2, 5, sec(1), small_join()));
  scheduler.submit(join_spec("hi-b", 3, 5, sec(1), small_join()));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const std::vector<JobRecord>& jobs = scheduler.jobs();
  for (const JobRecord& j : jobs) {
    EXPECT_EQ(j.state, JobState::kCompleted) << j.spec.name;
    EXPECT_TRUE(j.report.exact) << j.spec.name << ": " << j.report.summary;
  }
  // Two concurrent swapping tenants on shared donors stay loss-free: no
  // congestion-induced false death verdicts (which would orphan lines).
  for (std::size_t n = 1; n <= 4; ++n) {
    EXPECT_EQ(world.cluster().node(n).stats().counter("store.suspicions"), 0)
        << "node " << n;
  }
  EXPECT_EQ(jobs[1].admitted, sec(1));
  EXPECT_EQ(jobs[2].admitted, sec(1));
  // Deterministic slot leases: first admitted job gets the lowest slots.
  EXPECT_EQ(jobs[1].slot_indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(jobs[2].slot_indices, (std::vector<std::size_t>{2, 3}));
  // The low-priority job waited for a slot pair to free up.
  EXPECT_GE(jobs[0].admitted,
            std::min(jobs[1].finished, jobs[2].finished));
  EXPECT_EQ(scheduler.stats().admitted, 3);
  EXPECT_EQ(scheduler.stats().peak_running, 2u);
}

TEST(Scheduler, ZeroCapacityPoolShedsAtDeadline) {
  sim::Simulation sim;
  World world(sim, small_world(2, 2));
  set_donor_free(world, 0);  // donors exist but report nothing free
  JobScheduler scheduler(world, guarded());

  JobSpec spec = join_spec("starved", 1, 1, sec(1), small_join());
  spec.demand_bytes = 1;  // any demand at all is unsatisfiable
  spec.admission_deadline = sec(2);
  scheduler.submit(std::move(spec));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const JobRecord& job = scheduler.jobs()[0];
  EXPECT_EQ(job.state, JobState::kShed);
  EXPECT_EQ(job.admitted, -1);
  EXPECT_EQ(job.finished, sec(3));  // shed exactly at arrival + deadline
  EXPECT_EQ(scheduler.stats().admitted, 0);
  EXPECT_EQ(scheduler.stats().shed, 1);
  EXPECT_GT(scheduler.stats().admission_waits, 0);
  EXPECT_EQ(world.pool_free_bytes(), 0);
}

TEST(Scheduler, ZeroDemandAdmitsOnSlotsAlone) {
  sim::Simulation sim;
  World world(sim, small_world(2, 2));
  set_donor_free(world, 0);  // an empty pool does not block demand 0
  JobScheduler scheduler(world, guarded());

  workloads::HashJoinConfig cfg = small_join();
  cfg.memory_limit_bytes = -1;  // nothing to swap: no pool bytes needed
  cfg.policy = core::SwapPolicy::kNoLimit;
  scheduler.submit(join_spec("local-only", 1, 1, 0, cfg));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const JobRecord& job = scheduler.jobs()[0];
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_EQ(job.admitted, 0);
  EXPECT_TRUE(job.report.exact);
}

TEST(Scheduler, ReclaimFreesLowPriorityDonationsForHighPriority) {
  sim::Simulation sim;
  World world(sim, small_world(4, 2));
  const std::int64_t donor_free = 128 << 10;
  set_donor_free(world, donor_free);
  JobScheduler scheduler(world, guarded());

  scheduler.submit(aggregate_spec("victim", 1, 1, 0, small_aggregate()));
  // The high-priority job demands all but 8 KB of the pool, so any donated
  // footprint beyond that blocks it and must be reclaimed.
  JobSpec hi = join_spec("preemptor", 2, 5, sec(1), small_join());
  hi.demand_bytes = 2 * donor_free - (8 << 10);
  scheduler.submit(std::move(hi));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const JobRecord& victim = scheduler.jobs()[0];
  const JobRecord& preemptor = scheduler.jobs()[1];
  EXPECT_EQ(victim.state, JobState::kCompleted);
  EXPECT_EQ(preemptor.state, JobState::kCompleted);
  EXPECT_TRUE(victim.report.exact);
  EXPECT_TRUE(preemptor.report.exact);
  // Reclamation hit the low-priority tenant, never the high-priority one.
  EXPECT_GT(scheduler.stats().reclaim_events, 0);
  EXPECT_GT(victim.reclaimed_bytes, 0);
  EXPECT_EQ(preemptor.reclaimed_bytes, 0);
  EXPECT_EQ(scheduler.stats().reclaimed_bytes, victim.reclaimed_bytes);
  // The victim's spilled lines degraded to its local swap disks.
  EXPECT_GT(victim.report.degraded_evictions, 0);
  EXPECT_GT(preemptor.admitted, sec(1));
  EXPECT_EQ(world.pool_donated_bytes(), 0);
}

TEST(Scheduler, ReclaimRacingVictimCompletionIsSafe) {
  // Measure the victim's solo finish time, then rerun with a high-priority
  // job arriving just before it: the reclaim sweep overlaps the victim's
  // own collect phase fetching the same lines home. The line state machine
  // settles in-flight lines before either side touches them, so both jobs
  // stay exact whatever the interleaving.
  Time solo_finish = 0;
  {
    sim::Simulation sim;
    World world(sim, small_world(4, 2));
    set_donor_free(world, 128 << 10);
    JobScheduler scheduler(world, guarded());
    scheduler.submit(aggregate_spec("victim", 1, 1, 0, small_aggregate()));
    world.start();
    sim.spawn(scheduler.run());
    sim.run();
    ASSERT_EQ(scheduler.jobs()[0].state, JobState::kCompleted);
    solo_finish = scheduler.jobs()[0].finished;
    ASSERT_GT(solo_finish, msec(400));
  }

  sim::Simulation sim;
  World world(sim, small_world(4, 2));
  const std::int64_t donor_free = 128 << 10;
  set_donor_free(world, donor_free);
  JobScheduler scheduler(world, guarded());
  scheduler.submit(aggregate_spec("victim", 1, 1, 0, small_aggregate()));
  JobSpec hi = join_spec("preemptor", 2, 5, solo_finish - msec(200),
                         small_join());
  hi.demand_bytes = 2 * donor_free - (8 << 10);
  scheduler.submit(std::move(hi));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  for (const JobRecord& j : scheduler.jobs()) {
    EXPECT_EQ(j.state, JobState::kCompleted) << j.spec.name;
    EXPECT_TRUE(j.report.exact) << j.spec.name;
  }
  EXPECT_EQ(world.pool_donated_bytes(), 0);
}

TEST(Scheduler, TenantQuotaDegradesEvictionsToDisk) {
  sim::Simulation sim;
  World world(sim, small_world(2, 2));
  set_donor_free(world, 128 << 10);
  JobScheduler scheduler(world, guarded());

  JobSpec spec = aggregate_spec("capped", 1, 1, 0, small_aggregate());
  spec.quota_bytes = 16 << 10;  // far below the table's donated footprint
  scheduler.submit(std::move(spec));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const JobRecord& job = scheduler.jobs()[0];
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_TRUE(job.report.exact);  // spilling to disk never loses data
  EXPECT_GT(job.report.degraded_evictions, 0);
  // Everything charged against the quota was released at completion.
  EXPECT_EQ(job.ledger.charged_bytes, 0);
  EXPECT_EQ(world.pool_donated_bytes(), 0);
}

TEST(Scheduler, SecondJobSeesFullCapacityAfterFirstCompletes) {
  sim::Simulation sim;
  World world(sim, small_world(2, 2));
  const std::int64_t donor_free = 128 << 10;
  set_donor_free(world, donor_free);
  JobScheduler scheduler(world, guarded());

  // The first job donates heavily; the second demands the ENTIRE pool, so
  // it can only admit if every line and broker debit of the first was
  // released at its completion.
  scheduler.submit(aggregate_spec("first", 1, 1, 0, small_aggregate()));
  JobSpec second = join_spec("second", 2, 1, sec(1), small_join());
  second.demand_bytes = 2 * donor_free;
  scheduler.submit(std::move(second));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const JobRecord& first = scheduler.jobs()[0];
  const JobRecord& second_rec = scheduler.jobs()[1];
  EXPECT_EQ(first.state, JobState::kCompleted);
  EXPECT_EQ(second_rec.state, JobState::kCompleted);
  EXPECT_TRUE(first.report.exact);
  EXPECT_TRUE(second_rec.report.exact);
  EXPECT_EQ(first.ledger.charged_bytes, 0);
  // Same-priority tenants never reclaim from each other: the second job
  // simply waited for the first to finish and return its share.
  EXPECT_EQ(scheduler.stats().reclaim_events, 0);
  EXPECT_GE(second_rec.admitted, first.finished);
  EXPECT_EQ(world.pool_donated_bytes(), 0);
}

TEST(Arrivals, PoissonTraceIsDeterministicSortedAndSeedSensitive) {
  const std::vector<Time> a = poisson_arrivals(16, msec(2000), 7);
  const std::vector<Time> b = poisson_arrivals(16, msec(2000), 7);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_GT(a.front(), 0);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i], a[i - 1]);  // interarrival gaps clamp to >= 1 tick
  }
  EXPECT_NE(poisson_arrivals(16, msec(2000), 8), a);
  const std::vector<Time> offset = poisson_arrivals(16, msec(2000), 7, sec(5));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(offset[i], a[i] + sec(5));
  }
}

TEST(Arrivals, CatalogNamesRoundTrip) {
  for (ArrivalTrace trace : all_arrival_traces()) {
    const auto parsed = parse_arrival_trace(arrival_trace_name(trace));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, trace);
  }
  EXPECT_FALSE(parse_arrival_trace("bogus").has_value());
}

}  // namespace
}  // namespace rms::sched
