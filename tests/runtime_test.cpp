// Unit tests for the generic phased-workload runtime: PhaseRegistry,
// PhasedRunner's hook ordering and barrier alignment, convergence/abort
// handling, invariant gating, and the trace spans it emits.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/cpu_charger.hpp"
#include "runtime/runner.hpp"
#include "runtime/workload.hpp"
#include "sim/simulation.hpp"

namespace rms::runtime {
namespace {

TEST(PhaseRegistry, DenseIdsInDeclarationOrder) {
  PhaseRegistry r;
  EXPECT_EQ(r.add("build"), 0u);
  EXPECT_EQ(r.add("count"), 1u);
  EXPECT_EQ(r.add("determine"), 2u);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.name(1), "count");
  EXPECT_EQ(r.names(),
            (std::vector<std::string>{"build", "count", "determine"}));
}

TEST(PhaseRegistry, DuplicateNameIsFatal) {
  PhaseRegistry r;
  r.add("build");
  EXPECT_DEATH(r.add("build"), "duplicate phase name");
}

/// Records every hook call as "<hook>:<pass>[:<detail>]" strings, with
/// per-phase virtual-time charges so barrier alignment is observable.
class ScriptedWorkload final : public Workload {
 public:
  explicit ScriptedWorkload(sim::Simulation& sim) : sim_(sim) {}

  std::vector<std::string> log;
  std::size_t stop_after = 3;   // done() fires when pass > this
  std::size_t abort_at = 0;     // proceed() false at this pass (0: never)
  bool use_prologue = false;
  std::vector<PassTiming> reports;

  void register_phases(PhaseRegistry& phases) override {
    phases.add("alpha");
    phases.add("beta");
  }
  bool has_prologue() const override { return use_prologue; }
  sim::Task<> prologue(std::size_t idx) override {
    log.push_back("prologue:" + std::to_string(idx));
    co_await sim_.timeout(msec(1));
  }
  void end_prologue(const PassTiming& timing) override {
    log.push_back("end_prologue");
    reports.push_back(timing);
  }
  bool done(std::size_t pass) const override { return pass > stop_after; }
  void begin_pass(std::size_t pass) override {
    log.push_back("begin_pass:" + std::to_string(pass));
  }
  bool proceed(std::size_t pass) const override { return pass != abort_at; }
  void abort_pass(std::size_t pass) override {
    log.push_back("abort_pass:" + std::to_string(pass));
  }
  sim::Task<> run_phase(std::size_t idx, PhaseId phase,
                        std::size_t pass) override {
    log.push_back("phase:" + std::to_string(pass) + ":" +
                  std::to_string(phase) + ":" + std::to_string(idx));
    // Participant idx works (idx + 1) ms in alpha, 1 ms in beta: the
    // barrier must stretch every phase window to the slowest participant.
    co_await sim_.timeout(phase == 0 ? msec(idx + 1) : msec(1));
  }
  void check_invariants(std::size_t idx) override {
    log.push_back("invariants:" + std::to_string(idx));
  }
  void end_pass(const PassTiming& timing) override {
    log.push_back("end_pass:" + std::to_string(timing.pass));
    reports.push_back(timing);
  }
  void end_pass_local(std::size_t idx, std::size_t pass) override {
    log.push_back("end_local:" + std::to_string(pass) + ":" +
                  std::to_string(idx));
  }

 private:
  sim::Simulation& sim_;
};

std::size_t count(const std::vector<std::string>& log,
                  const std::string& prefix) {
  std::size_t n = 0;
  for (const std::string& s : log) {
    if (s.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

std::ptrdiff_t index_of(const std::vector<std::string>& log,
                        const std::string& entry) {
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i] == entry) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

TEST(PhasedRunner, RunsPassesUntilConvergence) {
  sim::Simulation sim;
  ScriptedWorkload w(sim);
  w.stop_after = 3;
  RunnerConfig cfg;
  cfg.participants = 2;
  cfg.first_pass = 1;
  cfg.max_pass = 10;
  PhasedRunner runner(sim, w, cfg);
  runner.start();
  sim.run();

  ASSERT_TRUE(runner.finished());
  // Passes 1..3 ran; done(4) stopped the run before max_pass.
  EXPECT_EQ(count(w.log, "begin_pass:"), 3u);
  EXPECT_EQ(count(w.log, "end_pass:"), 3u);
  EXPECT_EQ(runner.passes().size(), 3u);
  // Each pass: 2 participants x 2 phases.
  EXPECT_EQ(count(w.log, "phase:1:"), 4u);
  // begin_pass runs on participant 0 only, before any phase of that pass.
  EXPECT_LT(index_of(w.log, "begin_pass:1"), index_of(w.log, "phase:1:0:0"));
  // Phase order: all alpha bodies start before any beta body of the pass.
  EXPECT_LT(index_of(w.log, "phase:1:0:1"), index_of(w.log, "phase:1:1:0"));
  // end_pass (node 0) precedes every end_pass_local of the pass.
  EXPECT_LT(index_of(w.log, "end_pass:1"), index_of(w.log, "end_local:1:0"));
  EXPECT_LT(index_of(w.log, "end_pass:1"), index_of(w.log, "end_local:1:1"));
  // And pass 2 starts only after pass 1 fully tore down.
  EXPECT_LT(index_of(w.log, "end_local:1:1"), index_of(w.log, "begin_pass:2"));
}

TEST(PhasedRunner, PhaseWindowsAreBarrierAlignedAndTileThePass) {
  sim::Simulation sim;
  ScriptedWorkload w(sim);
  w.stop_after = 1;
  RunnerConfig cfg;
  cfg.participants = 3;
  cfg.first_pass = 1;
  cfg.max_pass = 1;
  PhasedRunner runner(sim, w, cfg);
  runner.start();
  sim.run();

  ASSERT_TRUE(runner.finished());
  ASSERT_EQ(w.reports.size(), 1u);
  const PassTiming& t = w.reports[0];
  EXPECT_EQ(t.pass, 1u);
  ASSERT_EQ(t.phase_end.size(), 2u);
  // alpha's window is the slowest participant (3 ms), beta's is 1 ms, and
  // the windows tile the pass exactly: no gaps, no overlap.
  EXPECT_EQ(t.phase_time(0), msec(3));
  EXPECT_EQ(t.phase_time(1), msec(1));
  EXPECT_EQ(t.phase_start[0], t.start);
  EXPECT_EQ(t.phase_end[0], t.phase_start[1]);
  EXPECT_EQ(t.phase_end[1], t.end);
  EXPECT_EQ(t.duration(), msec(4));
  EXPECT_EQ(runner.total_time(), t.end);
}

TEST(PhasedRunner, AbortedPassRunsNoPhases) {
  sim::Simulation sim;
  ScriptedWorkload w(sim);
  w.stop_after = 5;
  w.abort_at = 2;
  RunnerConfig cfg;
  cfg.participants = 2;
  cfg.first_pass = 1;
  cfg.max_pass = 5;
  PhasedRunner runner(sim, w, cfg);
  runner.start();
  sim.run();

  ASSERT_TRUE(runner.finished());
  // Pass 1 completed; pass 2's proceed() was false: begin_pass ran, the
  // abort hook undid it on node 0, and no phase body or report followed.
  EXPECT_EQ(count(w.log, "begin_pass:"), 2u);
  EXPECT_EQ(count(w.log, "abort_pass:"), 1u);
  EXPECT_EQ(count(w.log, "phase:2:"), 0u);
  EXPECT_EQ(count(w.log, "end_pass:2"), 0u);
  EXPECT_EQ(runner.passes().size(), 1u);
}

TEST(PhasedRunner, PrologueRunsBeforePhasedLoopAndIsReported) {
  sim::Simulation sim;
  ScriptedWorkload w(sim);
  w.use_prologue = true;
  w.stop_after = 2;
  RunnerConfig cfg;
  cfg.participants = 2;
  cfg.first_pass = 2;  // prologue is pass 1
  cfg.max_pass = 2;
  PhasedRunner runner(sim, w, cfg);
  runner.start();
  sim.run();

  ASSERT_TRUE(runner.finished());
  EXPECT_LT(index_of(w.log, "prologue:0"), index_of(w.log, "begin_pass:2"));
  EXPECT_LT(index_of(w.log, "end_prologue"), index_of(w.log, "begin_pass:2"));
  ASSERT_EQ(w.reports.size(), 2u);
  EXPECT_EQ(w.reports[0].pass, 1u);
  EXPECT_TRUE(w.reports[0].phase_end.empty());
  EXPECT_EQ(w.reports[1].pass, 2u);
  // The runner's pass list mirrors what the workload saw.
  ASSERT_EQ(runner.passes().size(), 2u);
  EXPECT_EQ(runner.passes()[0].pass, 1u);
}

TEST(PhasedRunner, InvariantHooksAreGatedByConfig) {
  for (const bool validate : {false, true}) {
    sim::Simulation sim;
    ScriptedWorkload w(sim);
    w.stop_after = 1;
    RunnerConfig cfg;
    cfg.participants = 2;
    cfg.max_pass = 1;
    cfg.validate_invariants = validate;
    PhasedRunner runner(sim, w, cfg);
    runner.start();
    sim.run();
    ASSERT_TRUE(runner.finished());
    // When enabled: one call per participant per phase barrier plus one
    // per participant after the report barrier = (2 phases + 1) * 2.
    EXPECT_EQ(count(w.log, "invariants:"), validate ? 6u : 0u);
  }
}

TEST(PhasedRunner, WarmupDelaysTheFirstPass) {
  sim::Simulation sim;
  ScriptedWorkload w(sim);
  w.stop_after = 1;
  RunnerConfig cfg;
  cfg.participants = 1;
  cfg.max_pass = 1;
  cfg.warmup = msec(10);
  PhasedRunner runner(sim, w, cfg);
  runner.start();
  sim.run();
  ASSERT_TRUE(runner.finished());
  ASSERT_EQ(w.reports.size(), 1u);
  EXPECT_EQ(w.reports[0].start, msec(10));
}

TEST(PhasedRunner, EmitsPassAndPhaseSpansOnThePhaseTrack) {
  sim::Simulation sim;
  ScriptedWorkload w(sim);
  w.stop_after = 1;
  obs::TraceRecorder trace;
  RunnerConfig cfg;
  cfg.participants = 2;
  cfg.max_pass = 1;
  cfg.trace = &trace;
  PhasedRunner runner(sim, w, cfg);
  runner.start();
  sim.run();
  ASSERT_TRUE(runner.finished());

  std::size_t pass_spans = 0;
  std::size_t phase_spans = 0;
  std::size_t barriers = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& e = trace.event(i);
    if (e.kind == obs::EventKind::kPass) ++pass_spans;
    if (e.kind == obs::EventKind::kPhase) {
      ++phase_spans;
      EXPECT_EQ(e.track, obs::TraceRecorder::kPhaseTrack);
      // arg1 carries the recorder's phase id; the registered name matches
      // the workload's registry.
      const auto id = static_cast<std::size_t>(e.arg1);
      ASSERT_LT(id, trace.phase_names().size());
      EXPECT_EQ(trace.phase_names()[id], runner.phases().name(id));
    }
    if (e.kind == obs::EventKind::kBarrier) ++barriers;
  }
  EXPECT_EQ(pass_spans, 1u);
  EXPECT_EQ(phase_spans, 2u);
  // One barrier instant per participant per phase barrier.
  EXPECT_GE(barriers, 4u);
}

TEST(CpuCharger, ChunkedChargesPreserveTheExactTotal) {
  sim::Simulation sim;
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cluster::Cluster cluster(sim, cc);
  Time finished = -1;
  auto body = [](cluster::Node& node, Time& out) -> sim::Process {
    // 2500 ops at 1 us each, flushed in chunks of 1024: three compute
    // awaits, but the total charged time is exactly 2500 us.
    CpuCharger cpu(node, usec(1), 1024);
    for (int i = 0; i < 2500; ++i) co_await cpu.add(1);
    co_await cpu.flush();
    out = node.cluster().sim().now();
  };
  sim.spawn(body(cluster.node(0), finished));
  sim.run();
  EXPECT_EQ(finished, usec(2500));
}

}  // namespace
}  // namespace rms::runtime
