// Tests for Trigger (one-shot broadcast) and Barrier (reusable counting).
#include <gtest/gtest.h>

#include <vector>

#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace rms::sim {
namespace {

TEST(Trigger, WakesAllWaiters) {
  Simulation sim;
  Trigger t(sim);
  int woken = 0;
  auto waiter = [](Trigger& tr, int& out) -> Process {
    co_await tr.wait();
    ++out;
  };
  for (int i = 0; i < 4; ++i) sim.spawn(waiter(t, woken));
  sim.run();
  EXPECT_EQ(woken, 0);
  t.fire();
  sim.run();
  EXPECT_EQ(woken, 4);
}

TEST(Trigger, WaitAfterFireIsImmediate) {
  Simulation sim;
  Trigger t(sim);
  t.fire();
  EXPECT_TRUE(t.fired());
  Time woke_at = -1;
  auto waiter = [](Simulation& s, Trigger& tr, Time& at) -> Process {
    co_await s.timeout(msec(5));
    co_await tr.wait();
    at = s.now();
  };
  sim.spawn(waiter(sim, t, woke_at));
  sim.run();
  EXPECT_EQ(woke_at, msec(5));
}

TEST(Trigger, DoubleFireIsIdempotent) {
  Simulation sim;
  Trigger t(sim);
  int woken = 0;
  auto waiter = [](Trigger& tr, int& out) -> Process {
    co_await tr.wait();
    ++out;
  };
  sim.spawn(waiter(t, woken));
  sim.run();
  t.fire();
  t.fire();
  sim.run();
  EXPECT_EQ(woken, 1);
}

TEST(Barrier, ReleasesWhenAllArrive) {
  Simulation sim;
  Barrier b(sim, 3);
  std::vector<Time> released;
  auto party = [](Simulation& s, Barrier& bar, Time delay,
                  std::vector<Time>& out) -> Process {
    co_await s.timeout(delay);
    co_await bar.arrive();
    out.push_back(s.now());
  };
  sim.spawn(party(sim, b, msec(1), released));
  sim.spawn(party(sim, b, msec(5), released));
  sim.spawn(party(sim, b, msec(9), released));
  sim.run();
  ASSERT_EQ(released.size(), 3u);
  for (Time t : released) EXPECT_EQ(t, msec(9));  // all wait for the last
  EXPECT_EQ(b.generation(), 1u);
}

TEST(Barrier, IsReusableAcrossPhases) {
  Simulation sim;
  Barrier b(sim, 2);
  std::vector<int> phases_done;
  auto party = [](Simulation& s, Barrier& bar, Time step,
                  std::vector<int>& out) -> Process {
    for (int phase = 0; phase < 3; ++phase) {
      co_await s.timeout(step);
      co_await bar.arrive();
      out.push_back(phase);
    }
  };
  sim.spawn(party(sim, b, msec(2), phases_done));
  sim.spawn(party(sim, b, msec(3), phases_done));
  sim.run();
  EXPECT_EQ(phases_done, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(b.generation(), 3u);
}

TEST(Barrier, SinglePartyPassesThrough) {
  Simulation sim;
  Barrier b(sim, 1);
  int passes = 0;
  auto party = [](Barrier& bar, int& out) -> Process {
    for (int i = 0; i < 5; ++i) {
      co_await bar.arrive();
      ++out;
    }
  };
  sim.spawn(party(b, passes));
  sim.run();
  EXPECT_EQ(passes, 5);
}

}  // namespace
}  // namespace rms::sim
