// Property-based sweeps over the full system: for EVERY (swap policy x
// memory-limit fraction x memory-node count x eviction policy) combination,
// the distributed miner must produce exactly the sequential miner's large
// itemsets and supports, and the run reports must satisfy the structural
// invariants the experiments rely on.
#include <gtest/gtest.h>

#include <tuple>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams tiny_workload() {
  mining::QuestParams p;
  p.num_transactions = 1500;
  p.num_items = 120;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 30;
  p.seed = 31;
  return p;
}

struct SharedWorld {
  mining::TransactionDb db;
  mining::AprioriResult seq;
  std::int64_t busiest_candidates;

  SharedWorld()
      : db(mining::QuestGenerator(tiny_workload()).generate()),
        seq(mining::apriori(db, 0.015)) {
    HpaConfig probe;
    probe.app_nodes = 4;
    probe.memory_nodes = 2;
    probe.workload = tiny_workload();
    probe.min_support = 0.015;
    probe.hash_lines = 1024;
    probe.shared_db = &db;
    const HpaResult r = run_hpa(probe);
    busiest_candidates = 0;
    for (std::int64_t c : r.pass(2)->candidates_per_node) {
      busiest_candidates = std::max(busiest_candidates, c);
    }
  }
};

SharedWorld& world() {
  static SharedWorld* w = new SharedWorld();
  return *w;
}

using PolicyCase =
    std::tuple<core::SwapPolicy, double /*limit fraction*/,
               std::size_t /*memory nodes*/, core::EvictionPolicy>;

class HpaPropertyTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(HpaPropertyTest, MinesExactlyAndObeysInvariants) {
  const auto [policy, fraction, memory_nodes, eviction] = GetParam();
  SharedWorld& w = world();

  HpaConfig cfg;
  cfg.app_nodes = 4;
  cfg.memory_nodes = memory_nodes;
  cfg.workload = tiny_workload();
  cfg.min_support = 0.015;
  cfg.hash_lines = 1024;
  cfg.shared_db = &w.db;
  cfg.policy = policy;
  cfg.eviction = eviction;
  cfg.memory_limit_bytes = static_cast<std::int64_t>(
      static_cast<double>(w.busiest_candidates) * 24.0 * fraction);

  const HpaResult r = run_hpa(cfg);

  // 1. Exact mining equality with the sequential reference.
  ASSERT_EQ(w.seq.support.size(), r.mined.support.size());
  for (const auto& [itemset, count] : w.seq.support) {
    const auto it = r.mined.support.find(itemset);
    ASSERT_NE(it, r.mined.support.end()) << itemset.to_string();
    EXPECT_EQ(it->second, count) << itemset.to_string();
  }

  // 2. Swapping occurred (the limit is below the busiest node's volume).
  const PassReport* p2 = r.pass(2);
  ASSERT_NE(p2, nullptr);
  std::int64_t swap_outs = 0;
  for (std::int64_t s : p2->swap_outs_per_node) swap_outs += s;
  EXPECT_GT(swap_outs, 0);

  // 3. Policy-specific traffic invariants.
  std::int64_t updates = 0;  // across every pass
  for (const PassReport& pass : r.passes) {
    for (std::int64_t u : pass.updates_per_node) updates += u;
  }
  if (policy == core::SwapPolicy::kRemoteUpdate) {
    EXPECT_GT(updates, 0);
    EXPECT_EQ(r.stats.counter("server.updates_applied"), updates);
  } else {
    EXPECT_EQ(updates, 0);
  }
  if (policy == core::SwapPolicy::kDiskSwap) {
    EXPECT_EQ(r.stats.counter("server.swap_out"), 0);
    EXPECT_GT(r.stats.counter("disk.write.count"), 0);
  } else {
    EXPECT_EQ(r.stats.counter("store.disk_swap_out"), 0);
  }

  // 4. Conservation: servers can only return lines they were given, and
  //    the aggregated pass report matches the global fault counter.
  EXPECT_LE(r.stats.counter("server.swap_in"),
            r.stats.counter("server.swap_out") +
                r.stats.counter("server.migrate_in"));
  std::int64_t faults = 0;  // across every pass, not just pass 2
  for (const PassReport& pass : r.passes) {
    for (std::int64_t f : pass.pagefaults_per_node) faults += f;
  }
  EXPECT_EQ(faults, r.stats.counter("store.pagefaults"));

  // 5. Timing sanity: limited run is no faster than the no-limit baseline.
  HpaConfig nolimit = cfg;
  nolimit.memory_limit_bytes = -1;
  nolimit.policy = core::SwapPolicy::kNoLimit;
  const HpaResult base = run_hpa(nolimit);
  EXPECT_GE(p2->duration, base.pass(2)->duration);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, HpaPropertyTest,
    ::testing::Combine(
        ::testing::Values(core::SwapPolicy::kDiskSwap,
                          core::SwapPolicy::kRemoteSwap,
                          core::SwapPolicy::kRemoteUpdate),
        ::testing::Values(0.35, 0.7),
        ::testing::Values(std::size_t{1}, std::size_t{3}),
        ::testing::Values(core::EvictionPolicy::kLru)),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name = core::to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) < 0.5 ? "_tight" : "_loose";
      name += "_m" + std::to_string(std::get<2>(info.param));
      return name;
    });

INSTANTIATE_TEST_SUITE_P(
    EvictionSweep, HpaPropertyTest,
    ::testing::Combine(
        ::testing::Values(core::SwapPolicy::kRemoteSwap),
        ::testing::Values(0.5),
        ::testing::Values(std::size_t{2}),
        ::testing::Values(core::EvictionPolicy::kLru,
                          core::EvictionPolicy::kFifo,
                          core::EvictionPolicy::kRandom)),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return std::string("ev_") +
             core::to_string(std::get<3>(info.param));
    });

// Seeds sweep: the same invariants over different generated databases
// (exercises different candidate distributions and fault patterns).
class HpaSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HpaSeedTest, RemoteUpdateMatchesSequential) {
  mining::QuestParams p = tiny_workload();
  p.seed = GetParam();
  mining::TransactionDb db = mining::QuestGenerator(p).generate();
  const mining::AprioriResult seq = mining::apriori(db, 0.015);

  HpaConfig cfg;
  cfg.app_nodes = 3;  // odd node count: uneven partitions
  cfg.memory_nodes = 2;
  cfg.workload = p;
  cfg.min_support = 0.015;
  cfg.hash_lines = 1024;
  cfg.shared_db = &db;
  cfg.policy = core::SwapPolicy::kRemoteUpdate;
  cfg.memory_limit_bytes = 3000;  // well below any node's volume

  const HpaResult r = run_hpa(cfg);
  ASSERT_EQ(seq.support.size(), r.mined.support.size()) << "seed " << p.seed;
  for (const auto& [itemset, count] : seq.support) {
    const auto it = r.mined.support.find(itemset);
    ASSERT_NE(it, r.mined.support.end()) << itemset.to_string();
    EXPECT_EQ(it->second, count) << itemset.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpaSeedTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace rms::hpa
