// Transport-layer tests: tag registry layout, byte-budgeted streams,
// window flow control (saturation, FIFO credit handover), retry/duplicate
// tolerance, reply-tag retirement, crash-mid-window failure latching, and
// pipelined completion sets.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "transport/stream.hpp"
#include "transport/tags.hpp"
#include "transport/transport.hpp"

namespace rms::transport {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

struct Ping {
  int value = 0;
};
struct Pong {
  int value = 0;
};

ClusterConfig small_config(std::size_t n = 4) {
  ClusterConfig c;
  c.num_nodes = n;
  return c;
}

net::Tag echo_tag() {
  return TagRegistry::global().register_service("transport_test.echo");
}

/// Replies to every request on `tag` after `service` of wall time, forever.
sim::Process echo_server(Node& n, net::Tag tag, Time service) {
  for (;;) {
    net::Message m = co_await n.mailbox().recv(tag);
    if (service > 0) co_await n.sim().timeout(service);
    n.reply(m, 16, Pong{m.as<Ping>().value});
  }
}

/// One transport call; appends the echoed value to `done` on completion.
sim::Process one_call(Transport& t, net::NodeId dst, net::Tag tag, int v,
                      std::vector<int>& done) {
  cluster::RpcResult r = co_await t.call(
      net::Message::make(t.node().id(), dst, tag, 16, Ping{v}));
  EXPECT_TRUE(r.ok());
  if (r.ok()) done.push_back(r.reply->as<Pong>().value);
}

sim::Process failing_call(Transport& t, net::NodeId dst, net::Tag tag,
                          int& failures) {
  cluster::RpcResult r = co_await t.call(
      net::Message::make(t.node().id(), dst, tag, 16, Ping{0}));
  if (!r.ok()) ++failures;
}

// ---- TagRegistry ----------------------------------------------------------

TEST(TagRegistry, LayoutSeparatesServiceAndReplySpace) {
  EXPECT_FALSE(TagRegistry::is_reply_tag(TagRegistry::kMemService));
  EXPECT_FALSE(TagRegistry::is_reply_tag(TagRegistry::kLargeExchange));
  EXPECT_FALSE(TagRegistry::is_reply_tag(TagRegistry::kDynamicBase));
  EXPECT_TRUE(TagRegistry::is_reply_tag(TagRegistry::reply_window_start(0)));
  // Per-node windows are disjoint.
  EXPECT_EQ(TagRegistry::reply_window_start(1) -
                TagRegistry::reply_window_start(0),
            TagRegistry::kReplyTagWindow);
}

TEST(TagRegistry, DynamicRegistrationIsSequentialAndIdempotent) {
  TagRegistry reg;
  const net::Tag a = reg.register_service("alpha");
  const net::Tag b = reg.register_service("beta");
  EXPECT_EQ(a, TagRegistry::kDynamicBase);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(reg.register_service("alpha"), a);
  EXPECT_EQ(reg.name_of(a), "alpha");
  EXPECT_EQ(reg.name_of(TagRegistry::kMemService), "mem_service");
  EXPECT_EQ(reg.name_of(TagRegistry::kCountData), "count_data");
  EXPECT_EQ(reg.name_of(TagRegistry::reply_window_start(2)), "reply");
  EXPECT_EQ(reg.name_of(999), "unknown");
}

// ---- Stream ---------------------------------------------------------------

TEST(Stream, ComesDueExactlyAtTheByteBudget) {
  struct Batch {
    std::vector<int> xs;
  };
  Stream<Batch> s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.due());
  for (int i = 0; i < 3; ++i) {
    s.open().xs.push_back(i);
    s.note(30);
  }
  EXPECT_FALSE(s.due());  // 90 < 100
  EXPECT_EQ(s.pending_ops(), 3);
  EXPECT_EQ(s.pending_bytes(), 90);
  s.open().xs.push_back(3);
  s.note(30);
  EXPECT_TRUE(s.due());  // 120 >= 100

  const auto closed = s.take();
  EXPECT_EQ(closed.ops, 4);
  EXPECT_EQ(closed.bytes, 120);
  EXPECT_EQ(closed.batch.xs, (std::vector<int>{0, 1, 2, 3}));
  // take() resets for the next batch.
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.due());
  EXPECT_TRUE(s.open().xs.empty());
}

// ---- Window flow control --------------------------------------------------

TEST(Transport, WindowSaturationBlocksTheThirdCall) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(10)));

  Transport t(cl.node(0), TransportOptions{sec(1), 0, /*window=*/2});
  std::vector<int> done;
  for (int v : {1, 2, 3}) sim.spawn(one_call(t, 1, echo_tag(), v, done));
  sim.run();

  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
  // Two calls fit the window; the third had to wait for a credit.
  EXPECT_EQ(t.peak_in_flight_to(1), 2);
  EXPECT_EQ(t.credit_waits(), 1);
  EXPECT_EQ(t.in_flight(), 0);
  EXPECT_EQ(t.in_flight_to(1), 0);
  EXPECT_EQ(cl.node(0).stats().counter("transport.credit_waits"), 1);
}

TEST(Transport, CreditHandoverIsFifoPerPeer) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(5)));

  Transport t(cl.node(0), TransportOptions{sec(1), 0, /*window=*/1});
  std::vector<int> done;
  for (int v : {1, 2, 3, 4, 5}) sim.spawn(one_call(t, 1, echo_tag(), v, done));
  sim.run();

  // Issue order is completion order: each waiter inherits the slot in FIFO
  // order, and the window of 1 serializes the calls.
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(t.peak_in_flight_to(1), 1);
  EXPECT_EQ(t.credit_waits(), 4);
}

TEST(Transport, WindowIsPerPeerNotGlobal) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(10)));
  sim.spawn(echo_server(cl.node(2), echo_tag(), msec(10)));

  Transport t(cl.node(0), TransportOptions{sec(1), 0, /*window=*/1});
  std::vector<int> done;
  sim.spawn(one_call(t, 1, echo_tag(), 1, done));
  sim.spawn(one_call(t, 2, echo_tag(), 2, done));
  sim.run();

  // One outstanding call per peer; neither waited on the other's window.
  EXPECT_EQ(done.size(), 2u);
  EXPECT_EQ(t.credit_waits(), 0);
  EXPECT_EQ(t.peak_in_flight_to(1), 1);
  EXPECT_EQ(t.peak_in_flight_to(2), 1);
}

// ---- Retry + duplicate tolerance ------------------------------------------

TEST(Transport, DuplicateReplyAfterRetryIsDroppedNotDelivered) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  // The server replies to *every* request (the original and the retry), but
  // only after 150 ms — past the first 100 ms deadline, inside the doubled
  // second one. The second reply arrives after the call settled.
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(150)));

  Transport t(cl.node(0),
              TransportOptions{msec(100), /*max_retries=*/1, /*window=*/1});
  std::vector<int> done;
  sim.spawn(one_call(t, 1, echo_tag(), 42, done));
  sim.run();

  EXPECT_EQ(done, (std::vector<int>{42}));
  EXPECT_EQ(t.retries(), 1);
  EXPECT_EQ(t.deadline_misses(), 1);
  EXPECT_EQ(t.failed_calls(), 0);
  // The straggler reply hit a retired tag: dropped and counted, and no
  // channel was left behind to leak.
  EXPECT_EQ(cl.node(0).stats().counter("node.late_replies_dropped"), 1);
  EXPECT_EQ(cl.node(0).mailbox().open_reply_count(), 0u);
  EXPECT_EQ(cl.node(0).mailbox().channel_count(), 0u);
}

TEST(Node, LateReplyAfterTimeoutIsDroppedAndCounted) {
  // Regression for the raw request_with_deadline path: a reply that loses
  // the race against the deadline must not queue forever on a dead tag.
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(200)));

  bool failed = false;
  auto caller = [](Node& n, net::Tag tag, bool& out) -> sim::Process {
    cluster::RpcResult r = co_await n.request_with_deadline(
        net::Message::make(n.id(), 1, tag, 16, Ping{1}), msec(50), 0);
    out = !r.ok();
  };
  sim.spawn(caller(cl.node(0), echo_tag(), failed));
  sim.run();

  EXPECT_TRUE(failed);
  EXPECT_EQ(cl.node(0).stats().counter("node.late_replies_dropped"), 1);
  EXPECT_EQ(cl.node(0).mailbox().open_reply_count(), 0u);
  EXPECT_EQ(cl.node(0).mailbox().channel_count(), 0u);
}

// ---- Failure latching -----------------------------------------------------

TEST(Transport, CrashMidWindowFailsAllOutstandingAndLatchesOnFailure) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(50)));

  Transport t(cl.node(0),
              TransportOptions{msec(100), /*max_retries=*/0, /*window=*/4});
  int on_failure_calls = 0;
  t.set_on_failure([&](net::NodeId peer) {
    EXPECT_EQ(peer, 1);
    ++on_failure_calls;
  });

  int failures = 0;
  for (int i = 0; i < 3; ++i) sim.spawn(failing_call(t, 1, echo_tag(), failures));
  // The peer crashes while all three calls are in flight; its pending
  // replies and everything re-sent to it vanish.
  sim.call_at(msec(5), [&] { cl.node(1).crash(); });
  sim.run();

  EXPECT_EQ(failures, 3);
  EXPECT_EQ(t.failed_calls(), 3);
  EXPECT_EQ(t.consecutive_failures(1), 3);
  // All credits were returned even though every call failed.
  EXPECT_EQ(t.in_flight(), 0);
  EXPECT_EQ(t.in_flight_to(1), 0);
  // One suspicion episode -> exactly one on_failure, not one per call.
  EXPECT_EQ(on_failure_calls, 1);
}

TEST(Transport, ForgiveReArmsTheFailureLatch) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());

  // No server at all: every call to node 1 fails.
  Transport t(cl.node(0),
              TransportOptions{msec(50), /*max_retries=*/0, /*window=*/1});
  int on_failure_calls = 0;
  t.set_on_failure([&](net::NodeId) { ++on_failure_calls; });

  int failures = 0;
  auto episode = [&](Time at) {
    sim.call_at(at, [&] { sim.spawn(failing_call(t, 1, echo_tag(), failures)); });
  };
  episode(0);
  episode(msec(100));  // same episode: still latched, no second callback
  sim.call_at(msec(200), [&] { t.forgive(1); });
  episode(msec(300));  // new episode after forgive(): fires again
  sim.run();

  EXPECT_EQ(failures, 3);
  EXPECT_EQ(on_failure_calls, 2);
}

// ---- Pipelining -----------------------------------------------------------

sim::Process pipeline_driver(Transport& t, std::vector<net::Message> msgs,
                             std::vector<int>& values, Time& elapsed) {
  const Time started = t.node().sim().now();
  std::vector<cluster::RpcResult> results = co_await t.pipeline(std::move(msgs));
  elapsed = t.node().sim().now() - started;
  for (const cluster::RpcResult& r : results) {
    EXPECT_TRUE(r.ok());
    if (r.ok()) values.push_back(r.reply->as<Pong>().value);
  }
}

std::vector<net::Message> four_echoes(Node& from) {
  // Two messages per peer, interleaved, values encode issue order.
  std::vector<net::Message> msgs;
  for (int i = 0; i < 4; ++i) {
    const net::NodeId dst = 1 + (i % 2);
    msgs.push_back(net::Message::make(from.id(), dst, echo_tag(), 16, Ping{i}));
  }
  return msgs;
}

Time run_pipeline(int window, std::vector<int>& values) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  sim.spawn(echo_server(cl.node(1), echo_tag(), msec(10)));
  sim.spawn(echo_server(cl.node(2), echo_tag(), msec(10)));
  Transport t(cl.node(0), TransportOptions{sec(1), 0, window});
  Time elapsed = 0;
  sim.spawn(pipeline_driver(t, four_echoes(cl.node(0)), values, elapsed));
  sim.run();
  return elapsed;
}

TEST(Transport, PipelineReturnsCompletionSetInIssueOrder) {
  std::vector<int> seq, par;
  const Time serial = run_pipeline(1, seq);
  const Time overlapped = run_pipeline(4, par);

  // Issue-order indexing holds at any window.
  EXPECT_EQ(seq, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(par, (std::vector<int>{0, 1, 2, 3}));
  // At window 4 the two peers serve their two calls concurrently; the batch
  // finishes measurably earlier than the strictly sequential window-1 run.
  EXPECT_LT(overlapped, serial);
}

TEST(Transport, EmptyPipelineCompletesImmediately) {
  sim::Simulation sim;
  Cluster cl(sim, small_config());
  Transport t(cl.node(0), TransportOptions{sec(1), 0, 4});
  bool done = false;
  auto driver = [](Transport& tr, bool& out) -> sim::Process {
    std::vector<cluster::RpcResult> r = co_await tr.pipeline({});
    EXPECT_TRUE(r.empty());
    out = true;
  };
  sim.spawn(driver(t, done));
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace rms::transport
