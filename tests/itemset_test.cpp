// Itemset value-type tests: ordering, subsets, hashing stability.
#include <gtest/gtest.h>

#include <unordered_set>

#include "mining/itemset.hpp"

namespace rms::mining {
namespace {

TEST(Itemset, BuildsSortedAndIndexes) {
  Itemset s{2, 5, 9};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[2], 9u);
  EXPECT_EQ(s.front(), 2u);
  EXPECT_EQ(s.back(), 9u);
  EXPECT_EQ(s.to_string(), "{2,5,9}");
}

TEST(Itemset, EqualityAndOrdering) {
  EXPECT_EQ((Itemset{1, 2}), (Itemset{1, 2}));
  EXPECT_FALSE((Itemset{1, 2}) == (Itemset{1, 3}));
  EXPECT_FALSE((Itemset{1, 2}) == (Itemset{1, 2, 3}));
  EXPECT_LT((Itemset{1, 2}), (Itemset{1, 3}));
  EXPECT_LT((Itemset{1, 2}), (Itemset{1, 2, 3}));  // prefix sorts first
  EXPECT_LT((Itemset{1, 9}), (Itemset{2, 3}));
}

TEST(Itemset, PrefixAndWithout) {
  Itemset s{3, 7, 11};
  EXPECT_EQ(s.prefix(), (Itemset{3, 7}));
  EXPECT_EQ(s.without(0), (Itemset{7, 11}));
  EXPECT_EQ(s.without(1), (Itemset{3, 11}));
  EXPECT_EQ(s.without(2), (Itemset{3, 7}));
}

TEST(Itemset, WithExtends) {
  Itemset s{3, 7};
  EXPECT_EQ(s.with(11), (Itemset{3, 7, 11}));
}

TEST(Itemset, SubsetOf) {
  const Item tx[] = {1, 3, 5, 7, 9};
  EXPECT_TRUE((Itemset{3, 7}).subset_of(tx, tx + 5));
  EXPECT_TRUE((Itemset{1, 9}).subset_of(tx, tx + 5));
  EXPECT_TRUE((Itemset{1, 3, 5, 7, 9}).subset_of(tx, tx + 5));
  EXPECT_FALSE((Itemset{2}).subset_of(tx, tx + 5));
  EXPECT_FALSE((Itemset{7, 10}).subset_of(tx, tx + 5));
  EXPECT_TRUE(Itemset{}.subset_of(tx, tx + 5));
}

TEST(Itemset, HashIsStableAndSpreads) {
  // Stability matters: candidate partitioning must be reproducible.
  EXPECT_EQ((Itemset{1, 2, 3}).hash(), (Itemset{1, 2, 3}).hash());
  EXPECT_NE((Itemset{1, 2, 3}).hash(), (Itemset{1, 2, 4}).hash());

  // Pairs over a small item universe should spread well across 8 buckets.
  std::vector<std::int64_t> bucket(8, 0);
  for (Item a = 0; a < 64; ++a) {
    for (Item b = a + 1; b < 64; ++b) {
      ++bucket[(Itemset{a, b}).hash() % 8];
    }
  }
  const std::int64_t total = 64 * 63 / 2;
  for (std::int64_t c : bucket) {
    EXPECT_GT(c, total / 8 * 7 / 10);
    EXPECT_LT(c, total / 8 * 13 / 10);
  }
}

TEST(Itemset, WorksInUnorderedContainers) {
  std::unordered_set<Itemset, ItemsetHash> set;
  set.insert(Itemset{1, 2});
  set.insert(Itemset{1, 2});
  set.insert(Itemset{2, 3});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Itemset{1, 2}) == 1);
}

TEST(ItemsetDeathTest, RejectsUnsortedAppend) {
  Itemset s{5};
  EXPECT_DEATH(s.push_back(3), "ascending");
  EXPECT_DEATH(s.push_back(5), "ascending");
}

TEST(ItemsetDeathTest, RejectsOverflow) {
  Itemset s;
  for (Item i = 0; i < Itemset::kMaxK; ++i) s.push_back(i);
  EXPECT_DEATH(s.push_back(99), "capacity");
}

}  // namespace
}  // namespace rms::mining
