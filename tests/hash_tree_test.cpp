// Hash-tree tests (extension module): counting correctness against the
// hash-line table, splitting behaviour, and the short-circuit ablation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "mining/apriori.hpp"
#include "mining/hash_line_table.hpp"
#include "mining/hash_tree.hpp"

namespace rms::mining {
namespace {

TEST(HashTree, CountsContainedCandidates) {
  HashTree tree(2);
  tree.insert(Itemset{1, 2});
  tree.insert(Itemset{2, 3});
  tree.insert(Itemset{4, 5});

  const Item tx[] = {1, 2, 3};
  tree.count_transaction(tx);

  std::map<std::string, std::uint32_t> counts;
  for (const CountedItemset& e : tree.entries()) {
    counts[e.items.to_string()] = e.count;
  }
  EXPECT_EQ(counts["{1,2}"], 1u);
  EXPECT_EQ(counts["{2,3}"], 1u);
  EXPECT_EQ(counts["{4,5}"], 0u);
}

TEST(HashTree, ShortTransactionsAreSkipped) {
  HashTree tree(3);
  tree.insert(Itemset{1, 2, 3});
  const Item tx[] = {1, 2};
  tree.count_transaction(tx);
  EXPECT_EQ(tree.entries()[0].count, 0u);
}

TEST(HashTree, SplitsPreserveCounts) {
  // Small leaf capacity forces splits while counts are non-zero.
  HashTree tree(2, 4, 2);
  const Item tx[] = {0, 1, 2, 3, 4, 5, 6, 7};
  tree.insert(Itemset{0, 1});
  tree.count_transaction(tx);  // {0,1} -> 1
  for (Item a = 0; a < 8; ++a) {
    for (Item b = a + 1; b < 8; ++b) {
      if (a == 0 && b == 1) continue;
      tree.insert(Itemset{a, b});
    }
  }
  tree.count_transaction(tx);  // everything contained -> +1
  std::uint32_t zero_one = 0;
  std::uint32_t total = 0;
  for (const CountedItemset& e : tree.entries()) {
    total += e.count;
    if (e.items == (Itemset{0, 1})) zero_one = e.count;
  }
  EXPECT_EQ(zero_one, 2u);
  EXPECT_EQ(total, 28u + 1u);
  EXPECT_EQ(tree.size(), 28u);
}

TEST(HashTree, NoDoubleCountingWithHashCollisions) {
  // Items 1 and 33 collide (fanout 32); candidates must still count once.
  HashTree tree(2, 32, 1);
  tree.insert(Itemset{1, 40});
  tree.insert(Itemset{33, 40});
  tree.insert(Itemset{1, 33});
  const Item tx[] = {1, 33, 40};
  tree.count_transaction(tx);
  for (const CountedItemset& e : tree.entries()) {
    EXPECT_EQ(e.count, 1u) << e.items.to_string();
  }
}

TEST(HashTree, AgreesWithHashLineTableOnRandomWorkload) {
  Pcg32 rng(99);
  constexpr std::size_t kK = 3;
  HashTree tree(kK, 8, 4);
  HashLineTable table(64);

  // Random candidate set.
  for (int i = 0; i < 200; ++i) {
    Item a = rng.below(30);
    Item b, c;
    do { b = rng.below(30); } while (b == a);
    do { c = rng.below(30); } while (c == a || c == b);
    Item v[3] = {a, b, c};
    std::sort(v, v + 3);
    Itemset s{v[0], v[1], v[2]};
    if (table.count_of(s) >= 0) continue;
    table.insert(s);
    tree.insert(s);
  }

  // Random transactions counted by both structures.
  const auto keep = [](Item) { return true; };
  for (int t = 0; t < 500; ++t) {
    std::vector<Item> tx;
    for (Item i = 0; i < 30; ++i) {
      if (rng.bernoulli(0.3)) tx.push_back(i);
    }
    tree.count_transaction({tx.data(), tx.size()});
    for_each_k_subset({tx.data(), tx.size()}, kK, keep,
                      [&](const Itemset& s) { (void)table.probe(s); });
  }

  for (const CountedItemset& e : tree.entries()) {
    EXPECT_EQ(static_cast<std::int64_t>(e.count), table.count_of(e.items))
        << e.items.to_string();
  }
}

TEST(HashTree, ShortCircuitReducesComparisonsNotCounts) {
  Pcg32 rng(123);
  auto build = [&](HashTree& tree) {
    Pcg32 r(5);
    for (int i = 0; i < 300; ++i) {
      Item a = r.below(40);
      Item b, c, d;
      do { b = r.below(40); } while (b == a);
      do { c = r.below(40); } while (c == a || c == b);
      do { d = r.below(40); } while (d == a || d == b || d == c);
      Item v[4] = {a, b, c, d};
      std::sort(v, v + 4);
      Itemset s{v[0], v[1], v[2], v[3]};
      bool dup = false;
      for (const auto& e : tree.entries()) {
        if (e.items == s) dup = true;
      }
      if (!dup) tree.insert(s);
    }
  };
  HashTree with_sc(4, 8, 4);
  HashTree without_sc(4, 8, 4);
  build(with_sc);
  build(without_sc);

  for (int t = 0; t < 200; ++t) {
    std::vector<Item> tx;
    for (Item i = 0; i < 40; ++i) {
      if (rng.bernoulli(0.35)) tx.push_back(i);
    }
    // Same RNG stream drives both trees with identical transactions.
    with_sc.count_transaction({tx.data(), tx.size()}, true);
    without_sc.count_transaction({tx.data(), tx.size()}, false);
  }

  auto a = with_sc.entries();
  auto b = without_sc.entries();
  ASSERT_EQ(a.size(), b.size());
  auto by_items = [](const CountedItemset& x, const CountedItemset& y) {
    return x.items < y.items;
  };
  std::sort(a.begin(), a.end(), by_items);
  std::sort(b.begin(), b.end(), by_items);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_EQ(a[i].count, b[i].count);
  }
  EXPECT_LT(with_sc.comparisons(), without_sc.comparisons());
}

}  // namespace
}  // namespace rms::mining
