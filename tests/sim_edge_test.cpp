// Edge-case and misuse tests for the kernel: death checks on contract
// violations, Lease move semantics, try_recv interleavings, and stress
// shapes that exercise queue growth.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace rms::sim {
namespace {

TEST(SimEdgeDeathTest, SchedulingIntoThePastAborts) {
  Simulation sim;
  sim.call_at(msec(10), [] {});
  sim.run();
  EXPECT_EQ(sim.now(), msec(10));
  EXPECT_DEATH(sim.call_at(msec(5), [] {}), "past");
}

TEST(SimEdgeDeathTest, NegativeTimeoutAborts) {
  Simulation sim;
  EXPECT_DEATH((void)sim.timeout(-1), "delay");
}

TEST(SimEdgeDeathTest, DoubleSpawnAborts) {
  auto proc = [](Simulation& s) -> Process { co_await s.timeout(1); };
  Simulation sim;
  Process p = sim.spawn(proc(sim));
  EXPECT_DEATH(sim.spawn(p), "twice");
}

TEST(SimEdge, UnspawnedProcessIsReclaimedWithoutRunning) {
  bool ran = false;
  auto proc = [](bool& flag) -> Process {
    flag = true;
    co_return;
  };
  {
    Process p = proc(ran);  // never spawned
    (void)p;
  }
  EXPECT_FALSE(ran);
}

TEST(SimEdge, LeaseMoveTransfersOwnership) {
  Simulation sim;
  Resource res(sim, 1);
  auto holder = [](Simulation& s, Resource& r) -> Process {
    Lease a = co_await r.acquire();
    EXPECT_TRUE(a.holds());
    Lease b = std::move(a);
    EXPECT_FALSE(a.holds());
    EXPECT_TRUE(b.holds());
    EXPECT_EQ(r.in_use(), 1);
    Lease c;
    c = std::move(b);
    EXPECT_TRUE(c.holds());
    co_await s.timeout(msec(1));
    // c releases at scope exit.
  };
  sim.spawn(holder(sim, res));
  sim.run();
  EXPECT_EQ(res.in_use(), 0);
}

TEST(SimEdge, LeaseDoubleReleaseIsIdempotent) {
  Simulation sim;
  Resource res(sim, 1);
  auto holder = [](Resource& r) -> Process {
    Lease l = co_await r.acquire();
    l.release();
    l.release();  // no-op
    EXPECT_EQ(r.in_use(), 0);
  };
  sim.spawn(holder(res));
  sim.run();
  EXPECT_EQ(res.in_use(), 0);
}

TEST(SimEdge, TryRecvAndBlockingRecvInterleave) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto blocking = [](Channel<int>& c, std::vector<int>& out) -> Process {
    out.push_back(co_await c.recv());
  };
  sim.spawn(blocking(ch, got));
  sim.run();
  // A waiter is registered; try_recv must not steal from it (queue empty).
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(1);  // goes to the waiter
  ch.send(2);  // queued
  sim.run();
  EXPECT_EQ(got, std::vector<int>{1});
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2);
}

TEST(SimEdge, ChannelWithMoveOnlyPayload) {
  Simulation sim;
  Channel<std::unique_ptr<int>> ch(sim);
  int got = 0;
  auto consumer = [](Channel<std::unique_ptr<int>>& c, int& out) -> Process {
    std::unique_ptr<int> p = co_await c.recv();
    out = *p;
  };
  sim.spawn(consumer(ch, got));
  ch.send(std::make_unique<int>(31));
  sim.run();
  EXPECT_EQ(got, 31);
}

TEST(SimEdge, DeepTaskNestingCompletes) {
  Simulation sim;
  // 200-deep task chain: exercises symmetric transfer without stack growth
  // proportional to simulated awaits.
  struct Nest {
    static Task<int> down(Simulation& s, int depth) {
      if (depth == 0) {
        co_await s.timeout(1);
        co_return 1;
      }
      const int below = co_await down(s, depth - 1);
      co_return below + 1;
    }
  };
  int got = 0;
  auto proc = [&](Simulation& s) -> Process {
    got = co_await Nest::down(s, 200);
  };
  sim.spawn(proc(sim));
  sim.run();
  EXPECT_EQ(got, 201);
}

TEST(SimEdge, ManyConcurrentProcesses) {
  Simulation sim;
  constexpr int kProcs = 5000;
  int done = 0;
  auto proc = [](Simulation& s, int id, int& counter) -> Process {
    co_await s.timeout(usec(id % 97));
    co_await s.timeout(usec(id % 13));
    ++counter;
  };
  for (int i = 0; i < kProcs; ++i) sim.spawn(proc(sim, i, done));
  sim.run();
  EXPECT_EQ(done, kProcs);
  // Three events per process: the spawn kick-off plus two timeouts.
  EXPECT_EQ(sim.executed_events(), static_cast<std::uint64_t>(kProcs) * 3);
}

TEST(SimEdge, RunUntilZeroHorizonRunsDueEvents) {
  Simulation sim;
  int fired = 0;
  sim.call_at(0, [&] { ++fired; });
  sim.call_at(1, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(0));
  EXPECT_EQ(fired, 1);
}

TEST(SimEdge, StopInsideProcessHaltsImmediately) {
  Simulation sim;
  std::vector<int> order;
  auto stopper = [](Simulation& s, std::vector<int>& out) -> Process {
    co_await s.timeout(msec(1));
    out.push_back(1);
    s.request_stop();
    co_await s.timeout(msec(1));
    out.push_back(2);  // never reached before shutdown
  };
  sim.spawn(stopper(sim, order));
  sim.run();
  EXPECT_EQ(order, std::vector<int>{1});
}

}  // namespace
}  // namespace rms::sim
