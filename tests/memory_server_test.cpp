// MemoryServer protocol tests: swap-out/in, remote updates, fetch, and
// donated-memory accounting, driven by hand-built requests.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/memory_server.hpp"
#include "core/protocol.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::core {
namespace {

mining::HashLine make_line(std::initializer_list<std::uint32_t> counts) {
  mining::HashLine line;
  mining::Item base = 10;
  for (std::uint32_t c : counts) {
    line.push_back(
        mining::CountedItemset{mining::Itemset{base, base + 1}, c});
    base += 10;
  }
  return line;
}

MemRequest swap_out(net::NodeId owner, LineId id, mining::HashLine entries) {
  MemRequest r;
  r.kind = MemRequest::Kind::kSwapOut;
  r.owner = owner;
  LinePayload p;
  p.line_id = id;
  p.accounted_bytes =
      static_cast<std::int64_t>(entries.size()) * mining::Itemset::kAccountedBytes;
  p.entries = std::move(entries);
  r.lines.push_back(std::move(p));
  return r;
}

struct World {
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl;
  std::unique_ptr<MemoryServer> server;

  World() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 3;  // 0: app, 1: server, 2: second server
    cl = std::make_unique<cluster::Cluster>(sim, cfg);
    server = std::make_unique<MemoryServer>(cl->node(1));
    sim.spawn(server->serve());
  }
};

TEST(MemoryServer, SwapOutStoresAndAccounts) {
  World w;
  w.cl->node(0).send_to(1, kMemService, 4096,
                        swap_out(0, 7, make_line({1, 2, 3})));
  w.sim.run_until(sec(1));
  EXPECT_EQ(w.server->stored_lines(), 1u);
  EXPECT_EQ(w.server->stored_bytes(), 3 * 24);
  EXPECT_EQ(w.cl->node(1).memory().donated_bytes, 3 * 24);
}

TEST(MemoryServer, SwapInReturnsContentAndFrees) {
  World w;
  bool checked = false;
  auto client = [&](cluster::Node& n) -> sim::Process {
    n.send_to(1, kMemService, 4096, swap_out(0, 7, make_line({5})));
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = 0;
    in.line_id = 7;
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    const auto& reply = rep.as<MemReply>();
    EXPECT_EQ(reply.lines.size(), 1u);
    if (reply.lines.size() == 1 && reply.lines[0].entries.size() == 1) {
      EXPECT_EQ(reply.lines[0].line_id, 7);
      EXPECT_EQ(reply.lines[0].entries[0].count, 5u);
      checked = true;
    }
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(1));
  EXPECT_TRUE(checked);
  EXPECT_EQ(w.server->stored_lines(), 0u);
  EXPECT_EQ(w.cl->node(1).memory().donated_bytes, 0);
}

TEST(MemoryServer, SwapInTakesAboutTwoPointThreeMs) {
  // Table 4: each pagefault costs 1.90-2.37 ms end to end; the request/reply
  // portion measured here is that minus the app-side message handling.
  World w;
  Time latency = -1;
  auto client = [&](sim::Simulation& s, cluster::Node& n) -> sim::Process {
    n.send_to(1, kMemService, 4096, swap_out(0, 7, make_line({5})));
    co_await s.timeout(msec(50));
    const Time start = s.now();
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = 0;
    in.line_id = 7;
    (void)co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    latency = s.now() - start;
  };
  w.sim.spawn(client(w.sim, w.cl->node(0)));
  w.sim.run_until(sec(1));
  // Unloaded round trip: ~0.25 ms request + 1.0 ms service + ~0.5 ms 4 KB
  // reply. Under load (Table 4) queueing brings the end-to-end fault to the
  // paper's ~2.3 ms; see bench_table4_pagefault_cost.
  EXPECT_GT(latency, usec(1600));
  EXPECT_LT(latency, usec(2100));
}

TEST(MemoryServer, UpdateBatchIncrementsMatchingItemsets) {
  World w;
  mining::HashLine line;
  line.push_back(mining::CountedItemset{mining::Itemset{1, 2}, 0});
  line.push_back(mining::CountedItemset{mining::Itemset{3, 4}, 0});
  w.cl->node(0).send_to(1, kMemService, 4096, swap_out(0, 3, line));

  MemRequest batch;
  batch.kind = MemRequest::Kind::kUpdateBatch;
  batch.owner = 0;
  batch.updates.push_back(UpdateOp{3, mining::Itemset{1, 2}});
  batch.updates.push_back(UpdateOp{3, mining::Itemset{1, 2}});
  batch.updates.push_back(UpdateOp{3, mining::Itemset{9, 10}});  // miss
  w.cl->node(0).send_to(1, kMemService, 48, std::move(batch));

  // Fetch back and inspect.
  std::uint32_t count12 = 999, count34 = 999;
  auto client = [&](cluster::Node& n) -> sim::Process {
    MemRequest f;
    f.kind = MemRequest::Kind::kFetch;
    f.owner = 0;
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(f)));
    for (const LinePayload& p : rep.as<MemReply>().lines) {
      for (const auto& e : p.entries) {
        if (e.items == (mining::Itemset{1, 2})) count12 = e.count;
        if (e.items == (mining::Itemset{3, 4})) count34 = e.count;
      }
    }
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(1));
  EXPECT_EQ(count12, 2u);
  EXPECT_EQ(count34, 0u);
  EXPECT_EQ(w.server->stored_lines(), 0u);  // fetch releases everything
  EXPECT_EQ(w.cl->node(1).stats().counter("server.updates_applied"), 3);
}

TEST(MemoryServer, FetchIsPerOwner) {
  World w;
  w.cl->node(0).send_to(1, kMemService, 4096, swap_out(0, 1, make_line({1})));
  w.cl->node(2).send_to(1, kMemService, 4096, swap_out(2, 9, make_line({2})));
  std::size_t fetched = 99;
  auto client = [&](cluster::Node& n) -> sim::Process {
    MemRequest f;
    f.kind = MemRequest::Kind::kFetch;
    f.owner = 0;
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(f)));
    fetched = rep.as<MemReply>().lines.size();
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(1));
  EXPECT_EQ(fetched, 1u);
  EXPECT_EQ(w.server->stored_lines(), 1u);  // node 2's line remains
}

TEST(MemoryServer, RequestsAreServedSequentially) {
  // 16 swap-ins from two clients: the server's single CPU serializes them,
  // the effect behind the Figure 3 bottleneck.
  World w;
  for (LineId id = 0; id < 16; ++id) {
    w.cl->node(0).send_to(1, kMemService, 4096,
                          swap_out(0, id, make_line({1})));
  }
  w.sim.run_until(sec(1));
  std::vector<Time> finish;
  auto client = [&](sim::Simulation& s, cluster::Node& n, LineId id)
      -> sim::Process {
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = 0;
    in.line_id = id;
    (void)co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    finish.push_back(s.now());
  };
  const Time t0 = w.sim.now();
  for (LineId id = 0; id < 16; ++id) {
    w.sim.spawn(client(w.sim, w.cl->node(id % 2 == 0 ? 0 : 2), id));
  }
  w.sim.run_until(sec(10));
  ASSERT_EQ(finish.size(), 16u);
  // The single server CPU serializes all 16 swap-in services.
  EXPECT_GT(finish.back() - t0, w.cl->node(1).costs().swap_service * 16);
}

TEST(MemoryServer, MigrateDirectiveMovesLinesToDestination) {
  World w;
  auto server2 = std::make_unique<MemoryServer>(w.cl->node(2));
  w.sim.spawn(server2->serve());

  for (LineId id = 0; id < 5; ++id) {
    w.cl->node(0).send_to(1, kMemService, 4096,
                          swap_out(0, id, make_line({static_cast<std::uint32_t>(id)})));
  }
  std::vector<LineId> migrated;
  auto client = [&](cluster::Node& n) -> sim::Process {
    co_await n.sim().timeout(msec(10));
    MemRequest d;
    d.kind = MemRequest::Kind::kMigrateDirective;
    d.owner = 0;
    d.migrate_dest = 2;
    d.migrate_lines = {0, 1, 2, 3, 4, 777};  // 777 was never swapped out
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 64, std::move(d)));
    migrated = rep.as<MemReply>().migrated;
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(2));

  EXPECT_EQ(migrated, (std::vector<LineId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(w.server->stored_lines(), 0u);
  EXPECT_EQ(server2->stored_lines(), 5u);
  EXPECT_EQ(w.cl->node(1).memory().donated_bytes, 0);
  EXPECT_EQ(w.cl->node(2).memory().donated_bytes, 5 * 24);

  // Content survives the move with counts intact.
  std::uint32_t count3 = 999;
  auto fetcher = [&](cluster::Node& n) -> sim::Process {
    MemRequest f;
    f.kind = MemRequest::Kind::kFetch;
    f.owner = 0;
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 2, kMemService, 32, std::move(f)));
    for (const LinePayload& p : rep.as<MemReply>().lines) {
      if (p.line_id == 3) count3 = p.entries[0].count;
    }
  };
  w.sim.spawn(fetcher(w.cl->node(0)));
  w.sim.run_until(sec(3));
  EXPECT_EQ(count3, 3u);
}

TEST(MemoryServer, LineKeysNeverCollideAcrossOwners) {
  // Regression: the store used to key lines by (owner << 40) ^ line_id, so
  // owner 0 with a line id >= 2^40 collided with another owner's small id.
  // Per-owner maps make the pair the key; both lines must coexist.
  World w;
  const LineId big = (LineId{2} << 40) ^ 5;  // == old key of (owner 2, line 5)
  w.cl->node(0).send_to(1, kMemService, 4096, swap_out(0, big, make_line({7})));
  w.cl->node(2).send_to(1, kMemService, 4096, swap_out(2, 5, make_line({9})));
  w.sim.run_until(sec(1));
  ASSERT_EQ(w.server->stored_lines(), 2u);

  std::uint32_t got0 = 0, got2 = 0;
  auto client = [&](cluster::Node& n, net::NodeId owner, LineId id,
                    std::uint32_t& out) -> sim::Process {
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = owner;
    in.line_id = id;
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    const auto& reply = rep.as<MemReply>();
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ(reply.lines.size(), 1u);
    if (reply.ok && reply.lines.size() == 1 &&
        !reply.lines[0].entries.empty()) {
      out = reply.lines[0].entries[0].count;
    }
  };
  w.sim.spawn(client(w.cl->node(0), 0, big, got0));
  w.sim.spawn(client(w.cl->node(2), 2, 5, got2));
  w.sim.run_until(sec(2));
  EXPECT_EQ(got0, 7u);
  EXPECT_EQ(got2, 9u);
}

TEST(MemoryServer, SwapInForUnknownLineRepliesNotOk) {
  World w;
  bool checked = false;
  auto client = [&](cluster::Node& n) -> sim::Process {
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = 0;
    in.line_id = 42;  // never swapped out
    net::Message rep = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    const auto& reply = rep.as<MemReply>();
    EXPECT_FALSE(reply.ok);
    EXPECT_TRUE(reply.lines.empty());
    checked = true;
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(1));
  EXPECT_TRUE(checked);
  EXPECT_EQ(w.cl->node(1).stats().counter("server.swap_in_misses"), 1);
}

TEST(MemoryServer, ReplicaIsInvisibleUntilPromoted) {
  World w;
  MemRequest rep_store = swap_out(0, 7, make_line({5}));
  rep_store.kind = MemRequest::Kind::kReplicaStore;
  w.cl->node(0).send_to(1, kMemService, 4096, std::move(rep_store));
  w.sim.run_until(sec(1));
  EXPECT_EQ(w.server->stored_lines(), 0u);
  EXPECT_EQ(w.server->replica_lines(), 1u);

  bool missed = false;
  std::uint32_t promoted_count = 0;
  std::vector<LineId> promoted;
  auto client = [&](cluster::Node& n) -> sim::Process {
    // A backup copy must not answer swap-ins.
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = 0;
    in.line_id = 7;
    net::Message r1 = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    missed = !r1.as<MemReply>().ok;

    // Promote, then the same swap-in succeeds with the replica's content.
    MemRequest prom;
    prom.kind = MemRequest::Kind::kReplicaPromote;
    prom.owner = 0;
    prom.migrate_lines = {7};
    net::Message r2 = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(prom)));
    EXPECT_TRUE(r2.as<MemReply>().ok);
    promoted = r2.as<MemReply>().migrated;

    MemRequest again;
    again.kind = MemRequest::Kind::kSwapIn;
    again.owner = 0;
    again.line_id = 7;
    net::Message r3 = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(again)));
    const auto& r3rep = r3.as<MemReply>();
    EXPECT_TRUE(r3rep.ok);
    if (r3rep.ok && r3rep.lines.size() == 1 &&
        !r3rep.lines[0].entries.empty()) {
      promoted_count = r3rep.lines[0].entries[0].count;
    }
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(2));
  EXPECT_TRUE(missed);
  EXPECT_EQ(promoted, (std::vector<LineId>{7}));
  EXPECT_EQ(promoted_count, 5u);
  EXPECT_EQ(w.server->replica_lines(), 0u);
  EXPECT_EQ(w.cl->node(1).stats().counter("server.replica_promotions"), 1);
}

TEST(MemoryServer, ReplicaDropDiscardsBackups) {
  World w;
  for (LineId id = 0; id < 3; ++id) {
    MemRequest r = swap_out(0, id, make_line({1}));
    r.kind = MemRequest::Kind::kReplicaStore;
    w.cl->node(0).send_to(1, kMemService, 4096, std::move(r));
  }
  w.sim.run_until(sec(1));
  ASSERT_EQ(w.server->replica_lines(), 3u);

  MemRequest one;
  one.kind = MemRequest::Kind::kReplicaDrop;
  one.owner = 0;
  one.line_id = 1;
  w.cl->node(0).send_to(1, kMemService, 32, std::move(one));
  w.sim.run_until(sec(2));
  EXPECT_EQ(w.server->replica_lines(), 2u);

  MemRequest all;
  all.kind = MemRequest::Kind::kReplicaDrop;
  all.owner = 0;
  all.line_id = -1;  // every replica of this owner
  w.cl->node(0).send_to(1, kMemService, 32, std::move(all));
  w.sim.run_until(sec(3));
  EXPECT_EQ(w.server->replica_lines(), 0u);
  EXPECT_EQ(w.cl->node(1).memory().donated_bytes, 0);
}

TEST(MemoryServer, CrashWipesTheStoreAndRestartAnswersNotOk) {
  World w;
  w.cl->node(0).send_to(1, kMemService, 4096, swap_out(0, 7, make_line({5})));
  MemRequest rep = swap_out(0, 8, make_line({6}));
  rep.kind = MemRequest::Kind::kReplicaStore;
  w.cl->node(0).send_to(1, kMemService, 4096, std::move(rep));
  w.sim.run_until(sec(1));
  ASSERT_EQ(w.server->stored_lines(), 1u);
  ASSERT_EQ(w.server->replica_lines(), 1u);

  w.cl->node(1).crash();
  EXPECT_EQ(w.server->stored_lines(), 0u);
  EXPECT_EQ(w.server->replica_lines(), 0u);
  EXPECT_EQ(w.server->stored_bytes(), 0);
  EXPECT_EQ(w.cl->node(1).memory().donated_bytes, 0);
  w.cl->node(1).restart();

  // The restarted (empty) server must answer, not abort.
  bool checked = false;
  auto client = [&](cluster::Node& n) -> sim::Process {
    MemRequest in;
    in.kind = MemRequest::Kind::kSwapIn;
    in.owner = 0;
    in.line_id = 7;
    net::Message r = co_await n.request(
        net::Message::make(n.id(), 1, kMemService, 32, std::move(in)));
    EXPECT_FALSE(r.as<MemReply>().ok);
    checked = true;
  };
  w.sim.spawn(client(w.cl->node(0)));
  w.sim.run_until(sec(2));
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace rms::core
