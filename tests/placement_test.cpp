// Placement subsystem tests.
//
// Three layers:
//   1. A regression holding kPaperRoundRobin to the pre-refactor behaviour:
//      an embedded reference implementation of the old
//      AvailabilityTable::choose_destination / choose_best_effort pair is
//      driven in lockstep with the broker over a long scripted op sequence,
//      plus a hand-computed literal destination sequence.
//   2. A property sweep: every policy x quarantine x staleness x
//      dead-node-revival combination (32 cases) under a randomized op
//      script, checking the decision invariants the consumers rely on.
//   3. Policy-specific units (least-loaded ordering, power-of-two
//      determinism and eligibility, affinity hint and fallback, parsing).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "placement/placement.hpp"

namespace rms::placement {
namespace {

using core::AvailabilityInfo;

PlacementRequest request(std::int64_t bytes, net::NodeId exclude = -1,
                         Time now = -1, bool best_effort = false,
                         std::int64_t headroom = 0, net::NodeId prev = -1) {
  PlacementRequest req;
  req.bytes = bytes;
  req.headroom = headroom;
  req.exclude = exclude;
  req.previous_holder = prev;
  req.now = now;
  req.best_effort = best_effort;
  return req;
}

// ---------------------------------------------------------------------------
// 1. Pre-refactor regression.
// ---------------------------------------------------------------------------

// The old AvailabilityTable, verbatim semantics: round-robin scan with a
// cursor that advances only on success, strict >= threshold, and the
// best-effort "most room among live fresh nodes" fallback. The broker's
// paper-rr policy must reproduce this decision for decision.
class ReferenceTable {
 public:
  struct Entry {
    std::int64_t available = 0;
    std::uint64_t seq = 0;
    Time updated = -1;
    bool valid = false;
    bool dead = false;
    bool quarantined = false;
  };

  explicit ReferenceTable(std::vector<net::NodeId> nodes)
      : nodes_(std::move(nodes)) {
    for (net::NodeId n : nodes_) entries_[n];
  }

  bool update(const AvailabilityInfo& info, Time now) {
    Entry& e = entries_[info.node];
    if (e.valid && info.seq <= e.seq) return false;
    e.available = info.available_bytes;
    e.seq = info.seq;
    e.updated = now;
    e.valid = true;
    e.dead = false;
    return true;
  }

  void set_max_age(Time max_age) { max_age_ = max_age; }
  void mark_dead(net::NodeId n) { entries_[n].dead = true; }
  void quarantine(net::NodeId n) { entries_[n].quarantined = true; }

  bool expired(const Entry& e, Time now) const {
    if (max_age_ <= 0 || !e.valid) return false;
    return now - e.updated > max_age_;
  }

  std::optional<net::NodeId> choose_destination(std::int64_t bytes_needed,
                                                net::NodeId exclude,
                                                Time now) {
    if (nodes_.empty()) return std::nullopt;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::size_t at = (cursor_ + i) % nodes_.size();
      const net::NodeId n = nodes_[at];
      const Entry& e = entries_[n];
      if (n == exclude || e.dead || e.quarantined) continue;
      if (now >= 0 && expired(e, now)) continue;
      const std::int64_t avail = e.valid ? e.available : 0;
      if (avail < bytes_needed) continue;
      cursor_ = (at + 1) % nodes_.size();
      return n;
    }
    return std::nullopt;
  }

  std::optional<net::NodeId> choose_best_effort(net::NodeId exclude,
                                                Time now) {
    std::optional<net::NodeId> best;
    std::int64_t best_room = -1;
    for (const net::NodeId n : nodes_) {
      const Entry& e = entries_[n];
      if (n == exclude || e.dead || e.quarantined || !e.valid) continue;
      if (now >= 0 && expired(e, now)) continue;
      if (e.available > best_room) {
        best_room = e.available;
        best = n;
      }
    }
    return best;
  }

  void debit(net::NodeId n, std::int64_t bytes) {
    Entry& e = entries_[n];
    if (!e.valid) return;
    e.available = e.available >= bytes ? e.available - bytes : 0;
  }

 private:
  std::vector<net::NodeId> nodes_;
  std::map<net::NodeId, Entry> entries_;
  Time max_age_ = 0;
  std::size_t cursor_ = 0;
};

// The exact consumer protocol: RemoteBackend qualifies destinations on
// bytes + headroom but debits only bytes (the headroom is breathing room,
// not an allocation).
std::optional<net::NodeId> reference_pick(ReferenceTable& t,
                                          const PlacementRequest& req) {
  std::optional<net::NodeId> dest =
      t.choose_destination(req.bytes + req.headroom, req.exclude, req.now);
  if (!dest.has_value() && req.best_effort) {
    dest = t.choose_best_effort(req.exclude, req.now);
  }
  if (dest.has_value()) t.debit(*dest, req.bytes);
  return dest;
}

TEST(PaperRoundRobinRegression, HandComputedDestinationSequence) {
  MemoryBroker b({1, 2, 3, 4});
  for (net::NodeId n : b.memory_nodes()) {
    b.update(AvailabilityInfo{n, 10 << 20, 1}, 0);
  }
  std::vector<net::NodeId> picks;
  const auto pick = [&] { picks.push_back(b.choose(request(1 << 20)).node); };
  for (int i = 0; i < 6; ++i) pick();  // 1 2 3 4 1 2
  b.mark_dead(3);
  for (int i = 0; i < 3; ++i) pick();  // 4 1 2 (cursor was on 3)
  b.quarantine(4);
  for (int i = 0; i < 2; ++i) pick();  // 1 2
  b.update(AvailabilityInfo{3, 10 << 20, 2}, 0);  // restart revives 3
  for (int i = 0; i < 2; ++i) pick();  // 3, then (4 quarantined) 1
  EXPECT_EQ(picks, (std::vector<net::NodeId>{1, 2, 3, 4, 1, 2, 4, 1, 2, 1, 2,
                                             3, 1}));
}

TEST(PaperRoundRobinRegression, LockstepWithPreRefactorReference) {
  const std::vector<net::NodeId> nodes{1, 2, 3, 4, 5, 6};
  MemoryBroker broker(nodes, PolicyKind::kPaperRoundRobin);
  ReferenceTable ref(nodes);
  broker.set_max_age(sec(2));
  ref.set_max_age(sec(2));

  Pcg32 rng(0xdecade);
  std::vector<std::uint64_t> seq(nodes.size(), 0);
  Time now = 0;
  int decisions = 0;
  for (int step = 0; step < 400; ++step) {
    now += msec(rng.below(300));
    const std::uint32_t op = rng.below(100);
    if (op < 30) {
      // A monitor report; occasionally replayed out of order (stale seq).
      const std::size_t i = rng.below(static_cast<std::uint32_t>(nodes.size()));
      const std::uint64_t s =
          rng.bernoulli(0.2) ? seq[i] : ++seq[i];
      const auto avail = static_cast<std::int64_t>(rng.below(12 << 20));
      EXPECT_EQ(broker.update(AvailabilityInfo{nodes[i], avail, s}, now),
                ref.update(AvailabilityInfo{nodes[i], avail, s}, now));
    } else if (op < 35) {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(nodes.size()));
      broker.mark_dead(nodes[i]);
      ref.mark_dead(nodes[i]);
    } else if (op < 37) {
      // Quarantine sparingly (it is sticky) so picks stay possible.
      const net::NodeId n = nodes[rng.below(2)];
      broker.quarantine(n);
      ref.quarantine(n);
    } else {
      PlacementRequest req = request(
          static_cast<std::int64_t>(1 + rng.below(4 << 20)),
          /*exclude=*/rng.bernoulli(0.3)
              ? nodes[rng.below(static_cast<std::uint32_t>(nodes.size()))]
              : -1,
          now,
          /*best_effort=*/rng.bernoulli(0.3),
          /*headroom=*/rng.bernoulli(0.5) ? (1 << 18) : 0);
      const PlacementDecision got = broker.choose(req);
      const std::optional<net::NodeId> want = reference_pick(ref, req);
      ASSERT_EQ(got.ok(), want.has_value()) << "step " << step;
      if (want.has_value()) {
        ASSERT_EQ(got.node, *want) << "step " << step;
      }
      ++decisions;
    }
  }
  ASSERT_GT(decisions, 200);
  EXPECT_EQ(broker.stats().counter("placement.paper-rr.chosen") +
                broker.stats().counter("placement.paper-rr.denied"),
            decisions);
}

// ---------------------------------------------------------------------------
// 2. Property sweep: policy x quarantine x staleness x dead-revival.
// ---------------------------------------------------------------------------

using SweepCase = std::tuple<PolicyKind, bool /*quarantine*/,
                             bool /*staleness*/, bool /*dead_revival*/>;

class PlacementSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PlacementSweepTest, DecisionInvariantsHoldUnderChurn) {
  const auto [policy, use_quarantine, use_staleness, use_revival] = GetParam();

  const std::vector<net::NodeId> nodes{1, 2, 3, 4, 5, 6};
  MemoryBroker b(nodes, policy, /*rng_stream=*/7);
  if (use_staleness) b.set_max_age(sec(2));

  Pcg32 rng(0xfeed0000u + (static_cast<std::uint64_t>(policy) << 8) +
            (use_quarantine ? 4u : 0u) + (use_staleness ? 2u : 0u) +
            (use_revival ? 1u : 0u));
  std::vector<std::uint64_t> seq(nodes.size(), 0);
  std::size_t quarantined_count = 0;
  Time now = 0;
  std::int64_t decisions = 0;

  for (int step = 0; step < 300; ++step) {
    now += msec(rng.below(400));
    const std::uint32_t op = rng.below(100);
    if (op < 35) {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(nodes.size()));
      b.update(AvailabilityInfo{nodes[i], static_cast<std::int64_t>(
                                              rng.below(12 << 20)),
                                ++seq[i]},
               now);
    } else if (op < 42) {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(nodes.size()));
      b.mark_dead(nodes[i]);
      if (use_revival && rng.bernoulli(0.6)) {
        // Restart: the monitor resumes with a fresh report, reviving it.
        b.update(AvailabilityInfo{nodes[i], static_cast<std::int64_t>(
                                                rng.below(12 << 20)),
                                  ++seq[i]},
                 now);
        EXPECT_FALSE(b.dead(nodes[i]));
      }
    } else if (op < 45 && use_quarantine && quarantined_count < 2) {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(nodes.size()));
      if (!b.quarantined(nodes[i])) {
        b.quarantine(nodes[i]);
        ++quarantined_count;
      }
    } else {
      const std::int64_t bytes =
          static_cast<std::int64_t>(1 + rng.below(6 << 20));
      const std::int64_t headroom = rng.bernoulli(0.5) ? (1 << 18) : 0;
      const net::NodeId exclude =
          rng.bernoulli(0.3)
              ? nodes[rng.below(static_cast<std::uint32_t>(nodes.size()))]
              : -1;
      const net::NodeId prev =
          rng.bernoulli(0.5)
              ? nodes[rng.below(static_cast<std::uint32_t>(nodes.size()))]
              : -1;
      const bool best_effort = rng.bernoulli(0.25);

      // Snapshot the estimates the decision will be made against
      // (choose() debits the winner).
      std::map<net::NodeId, std::int64_t> avail_before;
      for (net::NodeId n : nodes) avail_before[n] = b.available(n);

      const PlacementDecision d =
          b.choose(request(bytes, exclude, now, best_effort, headroom, prev));
      ++decisions;
      if (!d.ok()) continue;

      // Never a dead, quarantined, excluded, or stale node.
      EXPECT_FALSE(b.dead(d.node));
      EXPECT_FALSE(b.quarantined(d.node));
      EXPECT_NE(d.node, exclude);
      EXPECT_FALSE(b.expired(d.node, now));
      if (!d.best_effort_used) {
        // Threshold decisions honour bytes + headroom...
        EXPECT_GE(avail_before[d.node], bytes + headroom);
      } else {
        // ...and only best-effort requests may degrade below it.
        EXPECT_TRUE(best_effort);
      }
      // The winner was debited for exactly the granted bytes.
      EXPECT_EQ(b.available(d.node),
                std::max<std::int64_t>(0, avail_before[d.node] - bytes));
    }
  }

  // Every decision is accounted once, under the policy's namespace.
  const std::string prefix = std::string("placement.") + policy_name(policy);
  EXPECT_EQ(b.stats().counter(prefix + ".chosen") +
                b.stats().counter(prefix + ".denied"),
            decisions);
  EXPECT_GT(decisions, 100);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlacementSweepTest,
    ::testing::Combine(::testing::ValuesIn(all_policies()),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = policy_name(std::get<0>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      name += std::get<1>(info.param) ? "_quar" : "_noquar";
      name += std::get<2>(info.param) ? "_stale" : "_nostale";
      name += std::get<3>(info.param) ? "_revive" : "_norevive";
      return name;
    });

// ---------------------------------------------------------------------------
// 3. Policy-specific units.
// ---------------------------------------------------------------------------

TEST(PlacementPolicy, NamesParseAndRoundTrip) {
  EXPECT_EQ(all_policies().size(), 4u);
  for (PolicyKind k : all_policies()) {
    const auto parsed = parse_policy(policy_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_policy("round-robin").has_value());
  EXPECT_FALSE(parse_policy("").has_value());
}

TEST(PlacementPolicy, LeastLoadedPicksTheRoomiestAndTiesBreakEarlier) {
  MemoryBroker b({1, 2, 3}, PolicyKind::kLeastLoaded);
  b.update(AvailabilityInfo{1, 4 << 20, 1}, 0);
  b.update(AvailabilityInfo{2, 9 << 20, 1}, 0);
  b.update(AvailabilityInfo{3, 6 << 20, 1}, 0);
  EXPECT_EQ(b.choose(request(1 << 20)).node, 2);  // 9 MB, the roomiest
  // After the debit node 2 holds 8 MB — still the roomiest.
  EXPECT_EQ(b.choose(request(1 << 20)).node, 2);
  // Equal room: the earlier node in memory_nodes order wins.
  b.update(AvailabilityInfo{1, 7 << 20, 2}, 0);
  b.update(AvailabilityInfo{2, 7 << 20, 2}, 0);
  b.update(AvailabilityInfo{3, 7 << 20, 2}, 0);
  EXPECT_EQ(b.choose(request(1 << 20)).node, 1);
}

TEST(PlacementPolicy, PowerOfTwoIsDeterministicPerStreamAndEligible) {
  const std::vector<net::NodeId> nodes{1, 2, 3, 4, 5};
  const auto run = [&](std::uint64_t stream, std::vector<net::NodeId>& picks) {
    MemoryBroker b(nodes, PolicyKind::kPowerOfTwoChoices, stream);
    for (net::NodeId n : nodes) {
      b.update(AvailabilityInfo{n, 32 << 20, 1}, 0);
    }
    b.mark_dead(4);
    for (int i = 0; i < 24; ++i) {
      const PlacementDecision d = b.choose(request(1 << 20));
      ASSERT_TRUE(d.ok());
      EXPECT_NE(d.node, 4);  // dead nodes never qualify
      picks.push_back(d.node);
    }
    // Two choices spread the load: no single node takes everything.
    EXPECT_GT((std::set<net::NodeId>(picks.begin(), picks.end())).size(), 1u);
  };
  std::vector<net::NodeId> a, b2, c;
  run(3, a);
  run(3, b2);
  EXPECT_EQ(a, b2);  // same stream: bit-identical decisions
  run(4, c);
  EXPECT_NE(a, c);  // different broker streams decorrelate
}

TEST(PlacementPolicy, PowerOfTwoWithOneCandidateStillPlaces) {
  MemoryBroker b({1, 2}, PolicyKind::kPowerOfTwoChoices);
  b.update(AvailabilityInfo{1, 8 << 20, 1}, 0);
  EXPECT_EQ(b.choose(request(1 << 20)).node, 1);
}

TEST(PlacementPolicy, AffinityPrefersThePreviousHolderWhileItQualifies) {
  MemoryBroker b({1, 2, 3}, PolicyKind::kAffinity);
  b.update(AvailabilityInfo{1, 8 << 20, 1}, 0);
  b.update(AvailabilityInfo{2, 8 << 20, 1}, 0);
  b.update(AvailabilityInfo{3, 8 << 20, 1}, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(b.choose(request(1 << 20, -1, -1, false, 0, /*prev=*/2)).node,
              2);
  }
  EXPECT_EQ(b.stats().counter("placement.affinity.affinity_hits"), 3);
  // The hint stops binding when the holder no longer qualifies.
  b.mark_dead(2);
  const PlacementDecision d =
      b.choose(request(1 << 20, -1, -1, false, 0, /*prev=*/2));
  ASSERT_TRUE(d.ok());
  EXPECT_NE(d.node, 2);
  // No hint at all: behaves like the paper scan.
  EXPECT_TRUE(b.choose(request(1 << 20)).ok());
}

TEST(MemoryBroker, BestEffortFallbackTakesTheRoomiestLiveNode) {
  MemoryBroker b({1, 2, 3});
  b.update(AvailabilityInfo{1, 100, 1}, 0);
  b.update(AvailabilityInfo{2, 300, 1}, 0);
  b.update(AvailabilityInfo{3, 200, 1}, 0);
  // Nobody meets the threshold; a plain request is denied...
  EXPECT_FALSE(b.choose(request(1 << 20)).ok());
  // ...but a best-effort one (replica placement) takes the roomiest node.
  const PlacementDecision d = b.choose(request(1 << 20, -1, -1, true));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.best_effort_used);
  EXPECT_EQ(d.node, 2);
  EXPECT_EQ(b.stats().counter("placement.paper-rr.best_effort"), 1);
  // Even best-effort never touches an excluded or dead node.
  b.mark_dead(2);
  const PlacementDecision d2 = b.choose(request(1 << 20, /*exclude=*/3, -1,
                                                true));
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2.node, 1);
}

TEST(MemoryBroker, FallbackDiskNotesLandInThePolicyNamespace) {
  MemoryBroker b({1});
  EXPECT_FALSE(b.choose(request(64)).ok());
  b.note_fallback_disk();
  EXPECT_EQ(b.stats().counter("placement.paper-rr.fallback_disk"), 1);
  EXPECT_EQ(b.stats().counter("placement.paper-rr.denied"), 1);
}

}  // namespace
}  // namespace rms::placement
