// Migration integration tests (§4.2 / Figure 5): withdrawing a
// memory-available node mid-run must relocate its lines without losing a
// single count, and the overhead must be small.
#include <gtest/gtest.h>

#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

namespace rms::hpa {
namespace {

mining::QuestParams workload() {
  mining::QuestParams p;
  p.num_transactions = 6000;
  p.num_items = 200;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 40;
  p.seed = 21;
  return p;
}

HpaConfig config(const mining::TransactionDb* db, core::SwapPolicy policy) {
  HpaConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 6;
  c.workload = workload();
  c.min_support = 0.01;
  c.hash_lines = 2048;
  c.shared_db = db;
  c.policy = policy;
  // Fast monitor so withdrawals are noticed quickly at test scale.
  c.monitor_interval = msec(200);
  return c;
}

class MigrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new mining::TransactionDb(
        mining::QuestGenerator(workload()).generate());
    seq_ = new mining::AprioriResult(apriori(*db_, 0.01));
    HpaConfig probe = config(db_, core::SwapPolicy::kNoLimit);
    const HpaResult nolimit = run_hpa(probe);
    const PassReport* p2 = nolimit.pass(2);
    std::int64_t max_cand = 0;
    for (std::int64_t c : p2->candidates_per_node) {
      max_cand = std::max(max_cand, c);
    }
    limit_ = max_cand * 24 * 6 / 10;
    // The pass-2 counting phase at this scale runs within the first couple
    // of virtual seconds; withdraw mid-way.
    withdraw_at_ = nolimit.total_time / 3;
  }
  static void TearDownTestSuite() {
    delete db_;
    delete seq_;
  }

  static void expect_same_mining(const mining::AprioriResult& a,
                                 const mining::AprioriResult& b) {
    ASSERT_EQ(a.support.size(), b.support.size());
    for (const auto& [itemset, count] : a.support) {
      const auto it = b.support.find(itemset);
      ASSERT_NE(it, b.support.end()) << itemset.to_string();
      EXPECT_EQ(it->second, count) << itemset.to_string();
    }
  }

  static mining::TransactionDb* db_;
  static mining::AprioriResult* seq_;
  static std::int64_t limit_;
  static Time withdraw_at_;
};

mining::TransactionDb* MigrationFixture::db_ = nullptr;
mining::AprioriResult* MigrationFixture::seq_ = nullptr;
std::int64_t MigrationFixture::limit_ = 0;
Time MigrationFixture::withdraw_at_ = 0;

TEST_F(MigrationFixture, RemoteUpdateSurvivesOneWithdrawal) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.withdrawals = {{0, withdraw_at_}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("store.migrations_initiated"), 0);
  EXPECT_GT(r.stats.counter("server.lines_migrated"), 0);
}

TEST_F(MigrationFixture, RemoteUpdateSurvivesTwoWithdrawals) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.withdrawals = {{0, withdraw_at_}, {1, withdraw_at_ + msec(300)}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  EXPECT_GT(r.stats.counter("store.migrations_initiated"), 0);
}

TEST_F(MigrationFixture, SimpleSwappingSurvivesWithdrawal) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteSwap);
  c.memory_limit_bytes = limit_;
  c.withdrawals = {{0, withdraw_at_}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
}

TEST_F(MigrationFixture, MigrationOverheadIsNegligible) {
  // Figure 5: "the execution time did not change significantly from case to
  // case ... the overhead of memory contents migration is almost
  // negligible."
  HpaConfig base = config(db_, core::SwapPolicy::kRemoteUpdate);
  base.memory_limit_bytes = limit_;
  const Time t0 = run_hpa(base).pass(2)->duration;

  HpaConfig one = base;
  one.withdrawals = {{0, withdraw_at_}};
  const Time t1 = run_hpa(one).pass(2)->duration;

  HpaConfig two = base;
  two.withdrawals = {{0, withdraw_at_}, {1, withdraw_at_ + msec(300)}};
  const Time t2 = run_hpa(two).pass(2)->duration;

  EXPECT_LT(static_cast<double>(t1), 1.25 * static_cast<double>(t0));
  EXPECT_LT(static_cast<double>(t2), 1.35 * static_cast<double>(t0));
}

TEST_F(MigrationFixture, WithdrawnNodeHoldsNothingAtTheEnd) {
  HpaConfig c = config(db_, core::SwapPolicy::kRemoteUpdate);
  c.memory_limit_bytes = limit_;
  c.withdrawals = {{2, withdraw_at_}};
  const HpaResult r = run_hpa(c);
  expect_same_mining(*seq_, r.mined);
  // After migration + end-of-pass fetches the servers hold nothing anyway;
  // the migrated-lines counter proves the withdrawn node was drained by the
  // migration path rather than the fetch path.
  EXPECT_GT(r.stats.counter("server.migrations"), 0);
}

}  // namespace
}  // namespace rms::hpa
