// Property tests for the kernel primitives under randomized topologies:
// channels preserve the message multiset, resources never exceed capacity,
// barriers keep cohorts aligned, and everything is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace rms::sim {
namespace {

using Topology = std::tuple<int /*producers*/, int /*consumers*/,
                            int /*items per producer*/, std::uint64_t>;

class ChannelTopologyTest : public ::testing::TestWithParam<Topology> {};

TEST_P(ChannelTopologyTest, MessageMultisetIsPreserved) {
  const auto [producers, consumers, per_producer, seed] = GetParam();
  Simulation sim;
  Channel<int> ch(sim);
  Pcg32 rng(seed);

  std::vector<int> sent;
  std::vector<int> received;
  const int total = producers * per_producer;

  auto producer = [](Simulation& s, Channel<int>& c, int base, int n,
                     Time jitter, std::vector<int>& out) -> Process {
    for (int i = 0; i < n; ++i) {
      co_await s.timeout(jitter * (i + 1));
      const int v = base + i;
      out.push_back(v);
      c.send(v);
    }
  };
  auto consumer = [](Channel<int>& c, int n, std::vector<int>& out,
                     Simulation& s, Time pace) -> Process {
    for (int i = 0; i < n; ++i) {
      const int v = co_await c.recv();
      out.push_back(v);
      co_await s.timeout(pace);
    }
  };

  // Consumers split the total unevenly.
  std::vector<int> quota(static_cast<std::size_t>(consumers),
                         total / consumers);
  quota[0] += total % consumers;

  for (int p = 0; p < producers; ++p) {
    sim.spawn(producer(sim, ch, p * 1000, per_producer,
                       usec(1 + rng.below(50)), sent));
  }
  for (int c = 0; c < consumers; ++c) {
    sim.spawn(consumer(ch, quota[static_cast<std::size_t>(c)], received, sim,
                       usec(1 + rng.below(20))));
  }
  sim.run();

  ASSERT_EQ(sent.size(), static_cast<std::size_t>(total));
  ASSERT_EQ(received.size(), sent.size());
  std::vector<int> a = sent, b = received;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(ch.pending(), 0u);
  EXPECT_EQ(ch.waiting_receivers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ChannelTopologyTest,
    ::testing::Values(Topology{1, 1, 50, 1}, Topology{4, 1, 25, 2},
                      Topology{1, 4, 40, 3}, Topology{3, 3, 30, 4},
                      Topology{8, 2, 20, 5}, Topology{2, 8, 40, 6}));

using ResourceCase = std::tuple<int /*capacity*/, int /*workers*/,
                                std::uint64_t /*seed*/>;

class ResourcePropertyTest : public ::testing::TestWithParam<ResourceCase> {};

TEST_P(ResourcePropertyTest, ConcurrencyNeverExceedsCapacity) {
  const auto [capacity, workers, seed] = GetParam();
  Simulation sim;
  Resource res(sim, capacity);
  Pcg32 rng(seed);

  int active = 0;
  int peak = 0;
  int completed = 0;
  auto worker = [](Simulation& s, Resource& r, Time hold, int& act, int& pk,
                   int& done) -> Process {
    for (int round = 0; round < 3; ++round) {
      Lease lease = co_await r.acquire();
      ++act;
      pk = std::max(pk, act);
      co_await s.timeout(hold);
      --act;
      lease.release();
      co_await s.timeout(hold / 2 + 1);
    }
    ++done;
  };
  for (int w = 0; w < workers; ++w) {
    sim.spawn(worker(sim, res, usec(10 + rng.below(90)), active, peak,
                     completed));
  }
  sim.run();

  EXPECT_EQ(completed, workers);
  EXPECT_LE(peak, capacity);
  if (workers >= capacity) EXPECT_EQ(peak, capacity);  // fully utilized
  EXPECT_EQ(res.in_use(), 0);
  EXPECT_EQ(res.total_acquired(), static_cast<std::uint64_t>(workers) * 3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ResourcePropertyTest,
                         ::testing::Combine(::testing::Values(1, 2, 5),
                                            ::testing::Values(1, 4, 12),
                                            ::testing::Values(11u, 12u)));

class BarrierPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BarrierPropertyTest, CohortsNeverSkew) {
  const int parties = GetParam();
  Simulation sim;
  Barrier barrier(sim, static_cast<std::size_t>(parties));
  Pcg32 rng(static_cast<std::uint64_t>(parties));

  // Each party records the phase it believes it is in when released; all
  // releases of one generation must agree.
  std::vector<std::vector<int>> released_phases(16);
  auto party = [](Simulation& s, Barrier& b, Time pace,
                  std::vector<std::vector<int>>& log) -> Process {
    for (int phase = 0; phase < 16; ++phase) {
      co_await s.timeout(pace * (phase % 3 + 1));
      co_await b.arrive();
      log[static_cast<std::size_t>(phase)].push_back(phase);
    }
  };
  for (int p = 0; p < parties; ++p) {
    sim.spawn(party(sim, barrier, usec(3 + rng.below(40)),
                    released_phases));
  }
  sim.run();

  EXPECT_EQ(barrier.generation(), 16u);
  for (int phase = 0; phase < 16; ++phase) {
    EXPECT_EQ(released_phases[static_cast<std::size_t>(phase)].size(),
              static_cast<std::size_t>(parties))
        << "phase " << phase;
  }
}

INSTANTIATE_TEST_SUITE_P(Parties, BarrierPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16));

TEST(SimDeterminism, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim;
    Channel<int> ch(sim);
    Resource res(sim, 2);
    Pcg32 rng(seed);
    std::vector<std::pair<Time, int>> trace;

    auto producer = [](Simulation& s, Channel<int>& c, Pcg32& r,
                       std::vector<std::pair<Time, int>>& t) -> Process {
      for (int i = 0; i < 200; ++i) {
        co_await s.timeout(usec(r.below(100) + 1));
        c.send(i);
        t.emplace_back(s.now(), i);
      }
    };
    auto consumer = [](Simulation& s, Channel<int>& c, Resource& rs,
                       std::vector<std::pair<Time, int>>& t) -> Process {
      for (int i = 0; i < 200; ++i) {
        const int v = co_await c.recv();
        Lease l = co_await rs.acquire();
        co_await s.timeout(usec(7));
        t.emplace_back(s.now(), -v);
      }
    };
    sim.spawn(producer(sim, ch, rng, trace));
    sim.spawn(consumer(sim, ch, res, trace));
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace rms::sim
