// SwapBackend seam tests: the residency core must produce bit-identical
// mining results no matter which backend moves the lines, and the tiered
// backend must spill remote-first and degrade to disk only past its budget.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "cluster/cluster.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "hpa/hpa.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::core {
namespace {

using mining::Item;
using mining::Itemset;

// ---------------------------------------------------------------------------
// TieredBackend spill ordering (unit level, deterministic world).
// ---------------------------------------------------------------------------

// One application node (0), two pre-seeded memory servers (1, 2).
struct World {
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl;
  std::unique_ptr<MemoryServer> server1;
  std::unique_ptr<MemoryServer> server2;
  placement::MemoryBroker table{{1, 2}};

  World() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 3;
    cl = std::make_unique<cluster::Cluster>(sim, cfg);
    server1 = std::make_unique<MemoryServer>(cl->node(1));
    server2 = std::make_unique<MemoryServer>(cl->node(2));
    sim.spawn(server1->serve());
    sim.spawn(server2->serve());
    table.update(AvailabilityInfo{1, 32 << 20, 1}, 0);
    table.update(AvailabilityInfo{2, 32 << 20, 1}, 0);
  }

  HashLineStore::Config config(SwapPolicy policy, std::int64_t limit,
                               std::int64_t budget,
                               std::size_t lines = 8) {
    HashLineStore::Config c;
    c.num_lines = lines;
    c.memory_limit_bytes = limit;
    c.policy = policy;
    c.tiered_remote_budget_bytes = budget;
    return c;
  }

  std::size_t stored_remote() const {
    return server1->stored_lines() + server2->stored_lines();
  }
};

template <typename Fn>
void drive(World& w, Fn&& body) {
  bool finished = false;
  auto proc = [](Fn& f, bool& done) -> sim::Process {
    co_await f();
    done = true;
  };
  w.sim.spawn(proc(body, finished));
  w.sim.run_until(sec(100));
  ASSERT_TRUE(finished) << "store script deadlocked";
}

Itemset pair_of(Item a, Item b) { return Itemset{a, b}; }

constexpr std::int64_t kEntryBytes = 24;

TEST(TieredBackend, SpillsRemoteUntilBudgetThenDisk) {
  World w;
  // 8 lines x 1 entry; 4 lines fit resident; remote budget holds 2 lines.
  HashLineStore store(
      w.cl->node(0),
      w.config(SwapPolicy::kTiered, 4 * kEntryBytes, 2 * kEntryBytes),
      &w.table);
  drive(w, [&]() -> sim::Task<> {
    // First 6 inserts force exactly 2 evictions: both must land remote.
    // (The one-way kSwapOut is still in flight here, so the remote count is
    // asserted after the simulation drains; the synchronous counters prove
    // neither eviction spilled.)
    for (Item i = 0; i < 6; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
    EXPECT_EQ(store.swap_outs(), 2);
    EXPECT_EQ(store.stats().counter("backend.tiered.budget_spills"), 0);
    EXPECT_EQ(store.stats().counter("backend.disk.swap_outs"), 0);
    // The remaining inserts evict past the budget: remote stays capped and
    // every further victim degrades to the local disk.
    for (Item i = 6; i < 8; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
  });
  EXPECT_EQ(w.stored_remote(), 2u);
  EXPECT_EQ(store.stats().counter("backend.tiered.budget_spills"), 2);
  EXPECT_EQ(store.stats().counter("backend.disk.swap_outs"), 2);
  EXPECT_EQ(store.swap_outs(), 4);
  store.check_invariants();
}

TEST(TieredBackend, FaultInFreesBudgetForLaterEvictions) {
  World w;
  // 4 lines, 2 resident, budget of 1 remote line.
  HashLineStore store(
      w.cl->node(0),
      w.config(SwapPolicy::kTiered, 2 * kEntryBytes, 1 * kEntryBytes, 4),
      &w.table);
  drive(w, [&]() -> sim::Task<> {
    for (Item i = 0; i < 4; ++i) {
      co_await store.insert(i, pair_of(i, i + 100));
    }
    // Evictions so far: line 0 remote (fills the budget), line 1 to disk.
    EXPECT_EQ(store.swap_outs(), 2);
    EXPECT_EQ(store.stats().counter("backend.tiered.budget_spills"), 1);
    store.set_phase(HashLineStore::Phase::kCount);
    // Fault the remote line home: its bytes leave the budget, so the
    // eviction the fault triggers goes remote again instead of spilling.
    co_await store.probe(0, pair_of(0, 100));
  });
  EXPECT_EQ(w.stored_remote(), 1u);
  EXPECT_EQ(store.stats().counter("backend.tiered.budget_spills"), 1);
  store.check_invariants();
}

TEST(TieredBackend, UnlimitedBudgetMatchesRemoteSwap) {
  // With budget -1 the tiered backend must be the simple remote-swap path
  // in both behaviour and virtual time.
  auto run = [](SwapPolicy policy) {
    World w;
    HashLineStore store(w.cl->node(0),
                        w.config(policy, 3 * kEntryBytes, -1), &w.table);
    std::map<std::string, std::uint32_t> counts;
    drive(w, [&]() -> sim::Task<> {
      for (Item i = 0; i < 8; ++i) {
        co_await store.insert(i, pair_of(i, i + 100));
      }
      store.set_phase(HashLineStore::Phase::kCount);
      for (int round = 0; round < 2; ++round) {
        for (Item i = 0; i < 8; ++i) {
          co_await store.probe(i, pair_of(i, i + 100));
        }
      }
      co_await store.collect([&](const mining::CountedItemset& e) {
        counts[e.items.to_string()] = e.count;
      });
    });
    return std::tuple{w.sim.now(), store.pagefaults(), store.swap_outs(),
                      counts};
  };
  const auto tiered = run(SwapPolicy::kTiered);
  const auto remote = run(SwapPolicy::kRemoteSwap);
  EXPECT_EQ(std::get<0>(tiered), std::get<0>(remote));
  EXPECT_EQ(std::get<1>(tiered), std::get<1>(remote));
  EXPECT_EQ(std::get<2>(tiered), std::get<2>(remote));
  EXPECT_EQ(std::get<3>(tiered), std::get<3>(remote));
}

// ---------------------------------------------------------------------------
// Backend-independence property: every {policy x eviction x replicate_k}
// combination mines exactly the sequential result on the same seed.
// ---------------------------------------------------------------------------

mining::QuestParams tiny_workload() {
  mining::QuestParams p;
  p.num_transactions = 1500;
  p.num_items = 120;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 25;
  p.seed = 17;
  return p;
}

struct BackendCase {
  SwapPolicy policy;
  EvictionPolicy eviction;
  int replicate_k;
};

std::string case_name(const ::testing::TestParamInfo<BackendCase>& info) {
  std::string n = to_string(info.param.policy);
  for (char& c : n) {
    if (c == '-' || c == ' ') c = '_';
  }
  switch (info.param.eviction) {
    case EvictionPolicy::kLru: n += "_lru"; break;
    case EvictionPolicy::kFifo: n += "_fifo"; break;
    case EvictionPolicy::kRandom: n += "_random"; break;
  }
  n += info.param.replicate_k ? "_rep1" : "_rep0";
  return n;
}

hpa::HpaConfig property_config(const mining::TransactionDb* db) {
  hpa::HpaConfig cfg;
  cfg.app_nodes = 2;
  cfg.memory_nodes = 2;
  cfg.workload = tiny_workload();
  cfg.min_support = 0.01;
  cfg.hash_lines = 1024;
  cfg.shared_db = db;
  return cfg;
}

class BackendProperty : public ::testing::TestWithParam<BackendCase> {
 protected:
  static void SetUpTestSuite() {
    db_ = new mining::TransactionDb(
        mining::QuestGenerator(tiny_workload()).generate());
    seq_ = new mining::AprioriResult(apriori(*db_, 0.01));
    // Calibrate a limit that forces real eviction pressure: ~60% of the
    // busiest node's pass-2 candidate bytes.
    const hpa::HpaResult nolimit = hpa::run_hpa(property_config(db_));
    const hpa::PassReport* p2 = nolimit.pass(2);
    ASSERT_NE(p2, nullptr);
    std::int64_t max_cand = 0;
    for (std::int64_t c : p2->candidates_per_node) {
      max_cand = std::max(max_cand, c);
    }
    limit_ = max_cand * 24 * 6 / 10;
    ASSERT_GT(limit_, 0);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete seq_;
    db_ = nullptr;
    seq_ = nullptr;
  }

  static mining::TransactionDb* db_;
  static mining::AprioriResult* seq_;
  static std::int64_t limit_;
};

mining::TransactionDb* BackendProperty::db_ = nullptr;
mining::AprioriResult* BackendProperty::seq_ = nullptr;
std::int64_t BackendProperty::limit_ = 0;

TEST_P(BackendProperty, MinesExactlyTheSequentialResult) {
  const BackendCase& c = GetParam();
  hpa::HpaConfig cfg = property_config(db_);
  cfg.eviction = c.eviction;
  cfg.replicate_k = c.replicate_k;
  cfg.validate_invariants = true;
  if (c.policy != SwapPolicy::kNoLimit) {
    cfg.memory_limit_bytes = limit_;
    cfg.policy = c.policy;
    if (c.policy == SwapPolicy::kTiered) {
      // Half the limit: both the remote tier and the disk spill engage.
      cfg.tiered_remote_budget_bytes = limit_ / 2;
    }
  }
  const hpa::HpaResult r = hpa::run_hpa(cfg);
  ASSERT_EQ(seq_->support.size(), r.mined.support.size());
  for (const auto& [itemset, count] : seq_->support) {
    const auto it = r.mined.support.find(itemset);
    ASSERT_NE(it, r.mined.support.end()) << itemset.to_string();
    EXPECT_EQ(it->second, count) << itemset.to_string();
  }
  if (c.policy != SwapPolicy::kNoLimit) {
    std::int64_t swap_outs = 0;
    for (std::int64_t v : r.pass(2)->swap_outs_per_node) swap_outs += v;
    EXPECT_GT(swap_outs, 0);
  }
}

std::vector<BackendCase> all_cases() {
  std::vector<BackendCase> cases;
  for (SwapPolicy policy :
       {SwapPolicy::kNoLimit, SwapPolicy::kDiskSwap, SwapPolicy::kRemoteSwap,
        SwapPolicy::kRemoteUpdate, SwapPolicy::kTiered}) {
    for (EvictionPolicy ev : {EvictionPolicy::kLru, EvictionPolicy::kFifo,
                              EvictionPolicy::kRandom}) {
      for (int rep = 0; rep <= 1; ++rep) {
        cases.push_back(BackendCase{policy, ev, rep});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendProperty,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace rms::core
