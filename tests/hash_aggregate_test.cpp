// hash_aggregate integration tests: the distributed group-by on the phased
// runtime must reproduce the scalar single-pass reference exactly under
// every swap backend, and its runtime-assembled report must be coherent.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mining/generator.hpp"
#include "workloads/hash_aggregate.hpp"

namespace rms::workloads {
namespace {

mining::QuestParams small_workload() {
  mining::QuestParams p;
  p.num_transactions = 2000;
  p.num_items = 150;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 30;
  p.seed = 7;
  return p;
}

HashAggregateConfig small_config() {
  HashAggregateConfig c;
  c.app_nodes = 4;
  c.memory_nodes = 4;
  c.workload = small_workload();
  c.hash_lines = 1024;
  return c;
}

/// The scalar reference the workload checks itself against, recomputed
/// independently here so `exact` cannot be trivially self-consistent.
std::map<mining::Item, std::int64_t> scalar_counts(
    const mining::TransactionDb& db) {
  std::map<mining::Item, std::int64_t> counts;
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (const mining::Item item : db.tx(i)) ++counts[item];
  }
  return counts;
}

TEST(HashAggregate, MatchesScalarReferenceNoLimit) {
  const HashAggregateConfig cfg = small_config();
  const HashAggregateResult r = run_hash_aggregate(cfg);
  EXPECT_TRUE(r.exact);
  EXPECT_GT(r.total_time, 0);
  EXPECT_EQ(r.pagefaults, 0);

  const mining::TransactionDb db =
      mining::QuestGenerator(cfg.workload).generate();
  const auto ref = scalar_counts(db);
  ASSERT_EQ(r.groups.size(), ref.size());
  for (const mining::CountedItemset& g : r.groups) {
    ASSERT_EQ(g.items.size(), 1u);
    const auto it = ref.find(g.items[0]);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(static_cast<std::int64_t>(g.count), it->second);
  }
  // Sorted by item, no zero-count groups.
  for (std::size_t i = 1; i < r.groups.size(); ++i) {
    EXPECT_LT(r.groups[i - 1].items[0], r.groups[i].items[0]);
  }
  for (const mining::CountedItemset& g : r.groups) EXPECT_GT(g.count, 0u);
}

TEST(HashAggregate, ExactUnderEverySwapBackend) {
  for (const core::SwapPolicy policy :
       {core::SwapPolicy::kDiskSwap, core::SwapPolicy::kRemoteSwap,
        core::SwapPolicy::kRemoteUpdate, core::SwapPolicy::kTiered}) {
    HashAggregateConfig c = small_config();
    // 150 items x 24 B across 4 nodes is ~900 B of groups per node; a
    // 256 B limit forces the table through the swap machinery.
    c.memory_limit_bytes = 256;
    c.policy = policy;
    c.validate_invariants = true;
    if (policy == core::SwapPolicy::kTiered) {
      c.tiered_remote_budget_bytes = 128;
    }
    const HashAggregateResult r = run_hash_aggregate(c);
    EXPECT_TRUE(r.exact) << core::to_string(policy);
    EXPECT_GT(r.swap_outs, 0) << core::to_string(policy);
    if (policy == core::SwapPolicy::kRemoteUpdate) {
      // Scan probes to evicted lines become one-way updates, not faults.
      EXPECT_GT(r.updates_sent, 0);
    } else {
      EXPECT_GT(r.pagefaults, 0) << core::to_string(policy);
    }
  }
}

TEST(HashAggregate, RunsAreDeterministic) {
  HashAggregateConfig c = small_config();
  c.memory_limit_bytes = 256;
  c.policy = core::SwapPolicy::kRemoteSwap;
  const HashAggregateResult a = run_hash_aggregate(c);
  const HashAggregateResult b = run_hash_aggregate(c);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.pagefaults, b.pagefaults);
  EXPECT_EQ(a.swap_outs, b.swap_outs);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].count, b.groups[i].count);
  }
}

TEST(HashAggregate, ReportCarriesPhaseBreakdownThatTilesThePass) {
  const HashAggregateResult r = run_hash_aggregate(small_config());
  ASSERT_EQ(r.phase_names.size(), kAggNumPhases);
  EXPECT_EQ(r.phase_names[kAggBuildPhase], "build");
  EXPECT_EQ(r.phase_names[kAggScanPhase], "scan");
  EXPECT_EQ(r.phase_names[kAggCollectPhase], "collect");
  ASSERT_EQ(r.passes.size(), 1u);
  const runtime::PassTiming& t = r.passes[0];
  ASSERT_EQ(t.phase_end.size(), kAggNumPhases);
  Time sum = 0;
  for (std::size_t p = 0; p < kAggNumPhases; ++p) {
    EXPECT_GT(t.phase_time(p), 0) << r.phase_names[p];
    sum += t.phase_time(p);
  }
  // Barrier-aligned windows tile the pass exactly.
  EXPECT_EQ(sum, t.duration());
  EXPECT_EQ(r.total_time, t.end);
}

TEST(HashAggregate, SharedDbAvoidsRegeneration) {
  HashAggregateConfig c = small_config();
  const mining::TransactionDb db =
      mining::QuestGenerator(c.workload).generate();
  c.shared_db = &db;
  const HashAggregateResult r = run_hash_aggregate(c);
  EXPECT_TRUE(r.exact);
  const auto ref = scalar_counts(db);
  EXPECT_EQ(r.groups.size(), ref.size());
}

}  // namespace
}  // namespace rms::workloads
