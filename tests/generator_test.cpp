// Quest generator tests: determinism, parameter adherence, distribution
// sanity (mean transaction size, item-universe coverage, pattern skew).
#include <gtest/gtest.h>

#include <algorithm>

#include "mining/generator.hpp"

namespace rms::mining {
namespace {

QuestParams small_params(std::uint64_t seed = 7) {
  QuestParams p;
  p.num_transactions = 5000;
  p.num_items = 200;
  p.avg_transaction_size = 10;
  p.avg_pattern_size = 4;
  p.num_patterns = 50;
  p.seed = seed;
  return p;
}

TEST(QuestGenerator, ProducesRequestedTransactionCount) {
  QuestGenerator gen(small_params());
  TransactionDb db = gen.generate();
  EXPECT_EQ(db.size(), 5000u);
}

TEST(QuestGenerator, TransactionsAreSortedUniqueAndInRange) {
  QuestGenerator gen(small_params());
  TransactionDb db = gen.generate();
  for (std::size_t t = 0; t < db.size(); ++t) {
    auto tx = db.tx(t);
    ASSERT_FALSE(tx.empty());
    for (std::size_t i = 0; i < tx.size(); ++i) {
      EXPECT_LT(tx[i], 200u);
      if (i > 0) EXPECT_LT(tx[i - 1], tx[i]);
    }
  }
}

TEST(QuestGenerator, MeanTransactionSizeNearTarget) {
  QuestGenerator gen(small_params());
  TransactionDb db = gen.generate();
  const double mean =
      static_cast<double>(db.total_items()) / static_cast<double>(db.size());
  EXPECT_GT(mean, 6.5);
  EXPECT_LT(mean, 13.0);
}

TEST(QuestGenerator, DeterministicForSameSeed) {
  TransactionDb a = QuestGenerator(small_params(42)).generate();
  TransactionDb b = QuestGenerator(small_params(42)).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    auto ta = a.tx(t);
    auto tb = b.tx(t);
    ASSERT_EQ(ta.size(), tb.size());
    EXPECT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin()));
  }
}

TEST(QuestGenerator, DifferentSeedsDiffer) {
  TransactionDb a = QuestGenerator(small_params(1)).generate();
  TransactionDb b = QuestGenerator(small_params(2)).generate();
  ASSERT_EQ(a.size(), b.size());
  std::size_t differing = 0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    auto ta = a.tx(t);
    auto tb = b.tx(t);
    if (ta.size() != tb.size() ||
        !std::equal(ta.begin(), ta.end(), tb.begin())) {
      ++differing;
    }
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(QuestGenerator, ItemFrequenciesAreSkewed) {
  // Pattern weights are exponential: some items must be far more frequent
  // than the uniform baseline, which is what makes support thresholds bite.
  QuestGenerator gen(small_params());
  TransactionDb db = gen.generate();
  std::vector<std::int64_t> freq(200, 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (Item it : db.tx(t)) ++freq[it];
  }
  std::sort(freq.begin(), freq.end());
  const std::int64_t p90 = freq[180];
  const std::int64_t p10 = freq[20];
  EXPECT_GT(p90, 3 * std::max<std::int64_t>(1, p10));
}

TEST(QuestGenerator, PaperExperimentParamsScaleTransactionsOnly) {
  const QuestParams full = QuestParams::paper_experiment(1.0);
  const QuestParams tenth = QuestParams::paper_experiment(0.1);
  EXPECT_EQ(full.num_transactions, 1'000'000);
  EXPECT_EQ(tenth.num_transactions, 100'000);
  EXPECT_EQ(full.num_items, tenth.num_items);
  EXPECT_EQ(full.seed, tenth.seed);
}

TEST(TransactionDb, PartitionRoundRobinPreservesAll) {
  QuestGenerator gen(small_params());
  TransactionDb db = gen.generate();
  auto parts = db.partition(8);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, db.size());
  // Round-robin: partition j holds transactions j, j+8, j+16, ...
  auto t11 = db.tx(11);
  auto p3_1 = parts[3].tx(1);
  ASSERT_EQ(t11.size(), p3_1.size());
  EXPECT_TRUE(std::equal(t11.begin(), t11.end(), p3_1.begin()));
}

TEST(TransactionDb, ApproxBytesTracksContent) {
  TransactionDb db;
  const Item tx1[] = {1, 2, 3};
  db.add(tx1);
  EXPECT_EQ(db.approx_bytes(), TransactionDb::kTxHeaderBytes + 12);
}

TEST(TransactionDbDeathTest, RejectsUnsortedTransaction) {
  TransactionDb db;
  const Item bad[] = {3, 1};
  EXPECT_DEATH(db.add(bad), "sorted");
}

}  // namespace
}  // namespace rms::mining
