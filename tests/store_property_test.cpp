// Property test for HashLineStore: random op sequences against a reference
// model. Whatever the swap policy, eviction policy, limit, and probe
// pattern, the collected counts must match a plain in-memory table, and the
// resident footprint must respect the limit between operations.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::core {
namespace {

using mining::Item;
using mining::Itemset;

using Case = std::tuple<SwapPolicy, EvictionPolicy, std::int64_t /*limit*/,
                        std::uint64_t /*seed*/>;

class StorePropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(StorePropertyTest, RandomOpsMatchReferenceModel) {
  const auto [policy, eviction, limit, seed] = GetParam();

  sim::Simulation sim;
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 4;  // app node 0, memory nodes 1..3
  cluster::Cluster cl(sim, ccfg);
  MemoryServer s1(cl.node(1)), s2(cl.node(2)), s3(cl.node(3));
  sim.spawn(s1.serve());
  sim.spawn(s2.serve());
  sim.spawn(s3.serve());
  placement::MemoryBroker table({1, 2, 3});
  table.update(AvailabilityInfo{1, 8 << 20, 1}, 0);
  table.update(AvailabilityInfo{2, 8 << 20, 1}, 0);
  table.update(AvailabilityInfo{3, 8 << 20, 1}, 0);

  constexpr std::size_t kLines = 16;
  HashLineStore::Config cfg;
  cfg.num_lines = kLines;
  cfg.memory_limit_bytes = limit;
  cfg.policy = policy;
  cfg.eviction = eviction;
  cfg.message_block_bytes = 256;
  HashLineStore store(cl.node(0), cfg, &table);

  // Reference model: (line, itemset) -> count.
  std::map<std::pair<LineId, std::string>, std::uint32_t> model;

  Pcg32 rng(seed);
  bool finished = false;
  auto script = [&]() -> sim::Task<> {
    // Build phase: 120 inserts into random lines (some duplicates of item
    // pairs in different lines are fine; within a line itemsets differ).
    std::vector<std::vector<Itemset>> per_line(kLines);
    Item uid = 0;  // globally unique itemsets: model keys stay unambiguous
    for (int i = 0; i < 120; ++i) {
      const auto line = static_cast<LineId>(rng.below(kLines));
      const Itemset s{uid, uid + 5000};
      ++uid;
      per_line[static_cast<std::size_t>(line)].push_back(s);
      model[{line, s.to_string()}] = 0;
      co_await store.insert(line, s);
      store.check_invariants();
      // The swap unit is a whole line and the line being inserted into is
      // pinned, so residency is bounded by max(limit, that line's size).
      EXPECT_TRUE(cfg.memory_limit_bytes < 0 ||
                  store.resident_bytes() <= cfg.memory_limit_bytes ||
                  store.resident_bytes() == store.line_bytes(line))
          << "resident " << store.resident_bytes() << " line "
          << store.line_bytes(line);
    }
    // Count phase: 600 probes; ~70% hit a registered candidate.
    store.set_phase(HashLineStore::Phase::kCount);
    for (int i = 0; i < 600; ++i) {
      const auto line = static_cast<LineId>(rng.below(kLines));
      auto& candidates = per_line[static_cast<std::size_t>(line)];
      if (!candidates.empty() && !rng.bernoulli(0.3)) {
        const Itemset& s = candidates[rng.below(
            static_cast<std::uint32_t>(candidates.size()))];
        ++model[{line, s.to_string()}];
        co_await store.probe(line, s);
        store.check_invariants();
      } else {
        // Probe a non-candidate: must be a miss everywhere.
        const Item m = 20000 + rng.below(50);
        const Itemset miss{m, m + 30000};
        co_await store.probe(line, miss);
      }
    }
    // Collect and compare exactly.
    std::map<std::pair<LineId, std::string>, std::uint32_t> got;
    LineId current = -1;
    (void)current;
    co_await store.collect([&](const mining::CountedItemset& e) {
      // Locate the entry in the model by (any line, itemset string): line
      // ids are unique per itemset by construction above.
      for (const auto& [key, count] : model) {
        if (key.second == e.items.to_string()) {
          got[key] = e.count;
          break;
        }
      }
    });
    EXPECT_EQ(got.size(), model.size());
    for (const auto& [key, count] : model) {
      const auto it = got.find(key);
      EXPECT_TRUE(it != got.end()) << key.second;
      if (it != got.end()) {
        EXPECT_EQ(it->second, count) << key.second;
      }
    }
    finished = true;
  };
  auto proc = [](decltype(script)& f, bool&) -> sim::Process { co_await f(); };
  sim.spawn(proc(script, finished));
  sim.run_until(sec(600));
  ASSERT_TRUE(finished) << "store script did not finish";

  EXPECT_EQ(store.size(), 120u);
  EXPECT_EQ(store.total_bytes(), 120 * 24);
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto [policy, eviction, limit, seed] = info.param;
  std::string name = to_string(policy);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += std::string("_") + to_string(eviction);
  name += limit < 0 ? "_lnone" : "_l" + std::to_string(limit);
  name += "_s" + std::to_string(seed);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StorePropertyTest,
    ::testing::Combine(
        ::testing::Values(SwapPolicy::kDiskSwap, SwapPolicy::kRemoteSwap,
                          SwapPolicy::kRemoteUpdate),
        ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kFifo,
                          EvictionPolicy::kRandom),
        ::testing::Values(std::int64_t{24 * 3}, std::int64_t{24 * 40}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2})),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    NoLimitControl, StorePropertyTest,
    ::testing::Combine(::testing::Values(SwapPolicy::kNoLimit),
                       ::testing::Values(EvictionPolicy::kLru),
                       ::testing::Values(std::int64_t{-1}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{7})),
    case_name);

}  // namespace
}  // namespace rms::core
