// Extension: swap-destination placement policy sweep. The paper hard-codes
// one destination heuristic (round-robin over nodes with room, §4.2); the
// placement subsystem makes it pluggable, and this bench measures what the
// choice is worth in the regimes where it can matter:
//
//   skew  — the paper's Table-3 partition skew under a tight limit: the
//           busiest node swaps constantly while availability is plentiful,
//           so every policy has room to steer.
//   churn — crash-restart churn on two memory-available nodes with a fast
//           failure detector and staleness expiry: the estimate quality
//           degrades, which is exactly where power-of-two choices and
//           affinity earn (or fail to earn) their keep.
//
// Reported per (policy, scenario): pass-2 time, swap-outs, and the broker's
// own decision counters (chosen / denied / best-effort / disk fallbacks /
// stale skips). paper-rr is the bit-identical baseline.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

namespace {

std::int64_t counter(const hpa::HpaResult& r, const std::string& policy,
                     const char* leaf) {
  return r.stats.counter("placement." + policy + "." + leaf);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv, bench::with_policy_flags());
  const bench::PolicyFlags pf = bench::parse_policy_flags(
      env.flags, core::SwapPolicy::kRemoteUpdate, 13.0);

  // Baseline (paper-rr, no faults) pins the time axis for the churn script.
  hpa::HpaConfig base = env.config();
  pf.apply(base);
  base.replicate_k = 1;  // replica placement exercises the best-effort path
  std::fprintf(stderr, "[placement] baseline (paper-rr, no faults)...\n");
  hpa::HpaConfig base_rr = base;
  base_rr.placement = placement::PolicyKind::kPaperRoundRobin;
  const hpa::HpaResult baseline = env.run(base_rr, "baseline");
  const Time total0 = baseline.total_time;

  TablePrinter table(
      "Placement policy sweep (remote update, limit " +
          TablePrinter::num(pf.limit_mb, 1) + " MB, Table-3 skew); baseline " +
          bench::secs(total0) + " s",
      {"policy", "scenario", "pass2 [s]", "swap-outs", "chosen", "denied",
       "best-eff", "disk-fb", "stale-skip"});

  for (const placement::PolicyKind kind : placement::all_policies()) {
    const std::string name = placement::policy_name(kind);

    // Scenario 1: the paper's skewed pass 2, fault-free.
    hpa::HpaConfig skew = base;
    skew.placement = kind;
    std::fprintf(stderr, "[placement] %s / skew...\n", name.c_str());
    const hpa::HpaResult rs = env.run(skew, bench::label("%s/skew",
                                                         name.c_str()));

    // Scenario 2: crash-restart churn. Two memory nodes bounce mid-pass;
    // detection is fast and estimates expire, so the broker keeps deciding
    // on a degraded view.
    hpa::HpaConfig churn = base;
    churn.placement = kind;
    churn.monitor_interval = msec(500);
    churn.suspect_after_misses = 3;
    churn.stale_after_intervals = 4;
    churn.rpc_deadline = msec(500);
    churn.rpc_max_retries = 1;
    const auto frac = [&](double f) {
      return static_cast<Time>(static_cast<double>(total0) * f);
    };
    churn.crashes = {{0, frac(0.25), frac(0.55)}, {1, frac(0.45), frac(0.8)}};
    std::fprintf(stderr, "[placement] %s / churn...\n", name.c_str());
    const hpa::HpaResult rc = env.run(churn, bench::label("%s/churn",
                                                          name.c_str()));

    for (const auto* leg : {"skew", "churn"}) {
      const hpa::HpaResult& r = *(leg == std::string("skew") ? &rs : &rc);
      std::int64_t swaps = 0;
      for (const hpa::PassReport& p : r.passes) {
        for (std::int64_t v : p.swap_outs_per_node) swaps += v;
      }
      table.add_row({name, leg, bench::secs(r.passes.back().duration),
                     TablePrinter::integer(swaps),
                     TablePrinter::integer(counter(r, name, "chosen")),
                     TablePrinter::integer(counter(r, name, "denied")),
                     TablePrinter::integer(counter(r, name, "best_effort")),
                     TablePrinter::integer(counter(r, name, "fallback_disk")),
                     TablePrinter::integer(counter(r, name, "stale_skip"))});
    }
  }
  env.finish(table, "ext_placement.csv");

  std::printf(
      "\nunder the fault-free skew the policies mostly tie -- availability "
      "is plentiful and the paper's round-robin already spreads the load; "
      "under churn the differences show up in the denied/stale-skip columns "
      "(how often a policy aimed at a node whose estimate had gone bad) "
      "rather than in wall-clock, which the swap pipeline largely hides.\n");
  return 0;
}
