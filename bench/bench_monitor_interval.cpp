// Monitor-interval sensitivity (extension of the paper's §5.4 discussion).
//
// The paper reports qualitatively: results do not change at 1 s, and "too
// short interval such as shorter than 1 sec degrades the system performance
// because of the monitoring and communication overhead; such a short
// interval is expected to be unnecessary in most cases". This bench sweeps
// the interval and reports execution time plus the monitoring traffic that
// causes the degradation.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv, bench::with_policy_flags());
  const bench::PolicyFlags pf = bench::parse_policy_flags(
      env.flags, core::SwapPolicy::kRemoteUpdate, 13.0);

  TablePrinter table(
      "Monitor interval sensitivity (remote update, 16 memory-available "
      "nodes, one mid-run withdrawal)",
      {"interval", "pass 2 [s]", "monitor broadcasts", "availability msgs",
       "lines migrated"});

  std::fprintf(stderr, "[monitor] baseline for signal placement...\n");
  hpa::HpaConfig probe = env.config();
  pf.apply(probe);
  const Time baseline = env.run(probe, "baseline").pass(2)->duration;

  for (Time interval : {msec(100), msec(300), msec(1000), msec(3000),
                        msec(10000)}) {
    hpa::HpaConfig cfg = env.config();
    pf.apply(cfg);
    cfg.monitor_interval = interval;
    cfg.withdrawals = {{0, baseline / 2}};
    std::fprintf(stderr, "[monitor] interval %.1f s...\n",
                 to_seconds(interval));
    const hpa::HpaResult r = env.run(
        cfg, bench::label("interval_%.1fs", to_seconds(interval)));
    table.add_row(
        {TablePrinter::num(to_seconds(interval), 1) + "s",
         bench::secs(r.pass(2)->duration),
         TablePrinter::integer(r.stats.counter("monitor.broadcasts")),
         TablePrinter::integer(
             r.stats.counter("client.availability_updates")),
         TablePrinter::integer(r.stats.counter("server.lines_migrated"))});
  }
  env.finish(table, "monitor_interval.csv");

  std::printf(
      "\npaper §5.4: results unchanged at 1 s; intervals well below 1 s add "
      "monitoring/communication overhead without helping; 3 s is \"frequent "
      "enough for monitoring and not too heavy\".\n");
  return 0;
}
