// bench_ext_multitenant: the multi-tenant scheduler's headline scenario —
// concurrent workloads arbitrating one dynamic remote-memory pool.
//
// One sched::World (8 execution slots, a deliberately small donor pool),
// one JobScheduler, four tenants:
//
//   t=0s   agg-bg    (pri 1)  hash_aggregate under a tight memory limit:
//                             it swaps its group table to the donor pool
//                             and keeps it parked there (one-way updates).
//   t=2s   bulk-shed (pri 0)  demands more pool bytes than exist; shed at
//                             its admission deadline (backpressure path).
//   t=6s   hpa-hi    (pri 5)  the paper's miner, demanding nearly the whole
//                             pool. Blocked: agg-bg's donated lines shrink
//                             the broadcast free-memory view below the
//                             demand. The scheduler reclaims the deficit
//                             from the lowest-priority tenant (agg-bg's
//                             lines spill to its local swap disks through
//                             the congested links — reclamation latency is
//                             part of the picture — and its quota is
//                             capped), the next availability broadcast
//                             shows the recovered capacity, and hpa-hi
//                             admits. agg-bg visibly degrades: its updates
//                             now fault against the local swap disk.
//   t=12s  join-mid  (pri 3)  hash_join; backfills onto the free slots
//                             while hpa-hi still waits on pool bytes.
//
// Everything is virtual-time deterministic: same flags, byte-identical
// artifact (CI replays it). --arrival-trace poisson reschedules the same
// four jobs on a seeded open-loop trace instead of the fixed script.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "workloads/hash_aggregate.hpp"
#include "workloads/hash_join.hpp"

using namespace rms;

namespace {

/// Per-job one-line description for the artifact's config section.
struct SpecDoc {
  sched::JobSpec spec;
  std::string description;
};

void write_passes(obs::JsonWriter& w,
                  const std::vector<runtime::PassTiming>& passes,
                  const std::vector<std::string>& phase_names) {
  w.key("passes");
  w.begin_array();
  for (const runtime::PassTiming& p : passes) {
    w.begin_object();
    w.kv("k", static_cast<std::uint64_t>(p.pass));
    w.kv("duration_s", to_seconds(p.duration()));
    if (!p.phase_end.empty()) {
      w.key("phases");
      w.begin_object();
      for (std::size_t i = 0; i < p.phase_end.size(); ++i) {
        w.kv(phase_names[i] + "_s", to_seconds(p.phase_time(i)));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
}

/// The run artifact: rmswap.run_artifact/v2 with a top-level "scheduler"
/// section (admission/reclamation accounting plus one record per job) and
/// one run section per job. Job runs carry "job"/"tenant" markers and no
/// profile — the world's clock is shared, so per-job attribution does not
/// exist (tools/check_artifact.py accepts the marked shape).
std::string scheduler_artifact_json(const sched::JobScheduler& scheduler,
                                    const std::vector<SpecDoc>& docs,
                                    const std::string& arrival_trace,
                                    std::int64_t pool_donated_end) {
  const sched::JobScheduler::Stats& st = scheduler.stats();
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "rmswap.run_artifact/v2");

  w.key("scheduler");
  w.begin_object();
  w.kv("arrival_trace", arrival_trace);
  w.kv("admitted", static_cast<std::int64_t>(st.admitted));
  w.kv("completed", static_cast<std::int64_t>(st.completed));
  w.kv("shed", static_cast<std::int64_t>(st.shed));
  w.kv("reclaim_events", static_cast<std::int64_t>(st.reclaim_events));
  w.kv("reclaimed_bytes", st.reclaimed_bytes);
  w.kv("admission_waits", static_cast<std::int64_t>(st.admission_waits));
  w.kv("peak_queue_depth", static_cast<std::uint64_t>(st.peak_queue_depth));
  w.kv("peak_running", static_cast<std::uint64_t>(st.peak_running));
  w.kv("pool_donated_bytes_end", pool_donated_end);
  w.key("jobs");
  w.begin_array();
  for (const sched::JobRecord& j : scheduler.jobs()) {
    w.begin_object();
    w.kv("id", static_cast<std::uint64_t>(j.id));
    w.kv("name", j.spec.name);
    w.kv("workload", j.spec.workload);
    w.kv("tenant", j.spec.tenant);
    w.kv("priority", static_cast<std::int64_t>(j.spec.priority));
    w.kv("slots", static_cast<std::uint64_t>(j.spec.slots));
    w.kv("demand_bytes", j.spec.demand_bytes);
    w.kv("arrival_s", to_seconds(j.spec.arrival));
    w.kv("admitted_s", j.admitted < 0 ? -1.0 : to_seconds(j.admitted));
    w.kv("finished_s", j.finished < 0 ? -1.0 : to_seconds(j.finished));
    w.kv("state", sched::job_state_name(j.state));
    w.kv("reclaimed_bytes", j.reclaimed_bytes);
    w.kv("reclaim_events", static_cast<std::int64_t>(j.reclaim_events));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("runs");
  w.begin_array();
  for (std::size_t i = 0; i < scheduler.jobs().size(); ++i) {
    const sched::JobRecord& j = scheduler.jobs()[i];
    const sched::JobReport& r = j.report;
    w.begin_object();
    w.kv("label", j.spec.name);
    w.kv("workload", j.spec.workload);
    w.kv("job", static_cast<std::uint64_t>(j.id));
    w.kv("tenant", j.spec.tenant);
    w.key("config");
    w.begin_object();
    w.kv("description", docs[i].description);
    w.kv("slots", static_cast<std::uint64_t>(j.spec.slots));
    w.kv("priority", static_cast<std::int64_t>(j.spec.priority));
    w.kv("demand_bytes", j.spec.demand_bytes);
    w.end_object();
    w.kv("completed", r.completed);
    if (!r.completed) {
      w.end_object();
      continue;
    }
    w.kv("exact", r.exact);
    w.kv("summary", r.summary);
    w.kv("total_time_s", to_seconds(r.total_time));
    w.kv("makespan_s", to_seconds(r.total_time - j.admitted));
    w.key("phase_names");
    w.begin_array();
    for (const std::string& name : r.phase_names) w.value(name);
    w.end_array();
    write_passes(w, r.passes, r.phase_names);
    w.key("counters");
    w.begin_object();
    w.kv("store.pagefaults", r.pagefaults);
    w.kv("store.swap_outs", r.swap_outs);
    w.kv("store.updates_sent", r.updates_sent);
    w.kv("store.degraded_evictions", r.degraded_evictions);
    w.end_object();
    // Uniform v2 shape: the merged registries live on the world, not the
    // job, so these sections are present but empty for scheduled runs.
    for (const char* section : {"summaries", "histograms", "failover"}) {
      w.key(section);
      w.begin_object();
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string time_or_dash(Time t) {
  return t < 0 ? "-" : TablePrinter::num(to_seconds(t), 1);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      bench::with_arrival_flags(
          {{"app-nodes", "world execution slots (default 8)"},
           {"memory-nodes", "shared donor pool size (default 4)"},
           {"donor-free-kb",
            "free memory per donor node in KB (default 512; the rest is "
            "modelled as foreign load)"},
           {"scale",
            "hpa-hi job: transaction-count scale vs the paper's 1M "
            "(default 0.01)"},
           {"min-support", "hpa-hi job: minimum support (default 0.01)"},
           {"hpa-demand-kb",
            "hpa-hi job: declared pool demand in KB (default: pool minus "
            "16 KB, so any donated bytes block admission)"},
           {"hpa-arrival-ms",
            "hpa-hi job: fixed-trace arrival in virtual ms (default 20000)"},
           {"no-reclaim",
            "disable priority reclamation (ablation: hpa-hi then waits for "
            "agg-bg to finish on its own)"},
           {"expect-reclaim",
            "exit nonzero unless reclamation fired (the CI headline gate)"},
           {"horizon-s",
            "abort if the world is still running past this virtual time "
            "(default 900)"},
           {"seed", "world seed (default 1)"},
           {"trace-out", "write a Chrome trace_event JSON here"},
           {"json-out", "write the machine-readable run artifact here"}}));
  const sched::ArrivalTrace atrace = bench::parse_arrival_trace_flag(flags);

  const std::size_t app_nodes =
      static_cast<std::size_t>(flags.get_int("app-nodes", 8));
  const std::size_t memory_nodes =
      static_cast<std::size_t>(flags.get_int("memory-nodes", 4));
  const std::int64_t donor_free =
      flags.get_int("donor-free-kb", 512) * 1024;
  const std::int64_t pool_bytes =
      donor_free * static_cast<std::int64_t>(memory_nodes);

  const std::string trace_path = flags.get("trace-out", "");
  const std::string artifact_path = flags.get("json-out", "");
  std::unique_ptr<obs::TraceRecorder> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::TraceRecorder>();
    trace->begin_run("multitenant");
  }

  sim::Simulation sim;
  sched::WorldConfig wcfg;
  wcfg.app_nodes = app_nodes;
  wcfg.memory_nodes = memory_nodes;
  wcfg.monitor_interval = sec(1);  // snappier admission than the 3 s default
  wcfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  wcfg.trace = trace.get();
  sched::World world(sim, wcfg);

  // Shrink each donor to --donor-free-kb of free memory: the balance is
  // foreign load (the paper's "other processes"), so the pool the tenants
  // fight over is small and exactly known.
  for (std::size_t i = 0; i < memory_nodes; ++i) {
    cluster::HostMemoryModel& mem =
        world.cluster().node(world.memory_node(i)).memory();
    mem.external_bytes =
        std::max<std::int64_t>(0, mem.total_bytes - mem.base_bytes -
                                      donor_free);
  }

  // ---- the four tenants -----------------------------------------------

  // agg-bg: group-by whose table lives mostly in the donor pool (tight
  // limit, one-way updates keep the lines parked remotely) — the
  // reclamation victim.
  workloads::HashAggregateConfig acfg;
  acfg.app_nodes = 4;
  acfg.workload = mining::QuestParams::paper_experiment(0.1);
  acfg.hash_lines = 4096;
  acfg.memory_limit_bytes = 8 * 1024;
  acfg.policy = core::SwapPolicy::kRemoteUpdate;
  acfg.trace = trace.get();

  // hpa-hi: the paper's miner at a bench scale, itself memory-limited so
  // it swaps into the capacity it reclaimed.
  mining::QuestParams wl = mining::QuestParams::paper_experiment(
      flags.get_double("scale", 0.01));
  const mining::TransactionDb db = mining::QuestGenerator(wl).generate();
  hpa::HpaConfig hcfg;
  hcfg.app_nodes = 4;
  hcfg.workload = wl;
  hcfg.shared_db = &db;
  hcfg.min_support = flags.get_double("min-support", 0.01);
  hcfg.hash_lines = 20'000;
  hcfg.max_k = 2;
  hcfg.memory_limit_bytes = 20'000;
  hcfg.policy = core::SwapPolicy::kRemoteUpdate;
  hcfg.trace = trace.get();

  // join-mid / bulk-shed: the join both backfills (modest demand) and,
  // with an impossible demand, exercises the deadline-shed path.
  workloads::HashJoinConfig jcfg;
  jcfg.app_nodes = 4;
  jcfg.build_rows = 20'000;
  jcfg.probe_rows = 20'000;
  jcfg.memory_limit_bytes = 96'000;
  jcfg.policy = core::SwapPolicy::kRemoteSwap;
  jcfg.trace = trace.get();

  workloads::HashJoinConfig shed_cfg = jcfg;
  shed_cfg.app_nodes = 2;

  const std::int64_t hpa_demand =
      flags.has("hpa-demand-kb")
          ? flags.get_int("hpa-demand-kb", 0) * 1024
          : pool_bytes - 16 * 1024;

  std::vector<SpecDoc> docs;
  const auto add = [&docs](sched::JobSpec spec, std::string description) {
    docs.push_back({std::move(spec), std::move(description)});
  };

  {
    sched::JobSpec s;
    s.name = "agg-bg";
    s.workload = "hash_aggregate";
    s.tenant = 1;
    s.priority = 1;
    s.arrival = 0;
    s.slots = 4;
    s.demand_bytes = 0;
    s.make = [&acfg] { return workloads::make_hash_aggregate_job(acfg); };
    add(std::move(s),
        bench::label("group-by over D=%lld, limit %lld B/node, one-way "
                     "updates",
                     static_cast<long long>(acfg.workload.num_transactions),
                     static_cast<long long>(acfg.memory_limit_bytes)));
  }
  {
    sched::JobSpec s;
    s.name = "bulk-shed";
    s.workload = "hash_join";
    s.tenant = 4;
    s.priority = 0;
    s.arrival = sec(2);
    s.slots = 2;
    s.demand_bytes = 8LL << 20;  // 4x the whole pool: can never admit
    s.admission_deadline = sec(3);
    s.make = [&shed_cfg] { return workloads::make_hash_join_job(shed_cfg); };
    add(std::move(s), "join demanding 4x the donor pool; shed at its 3 s "
                      "admission deadline");
  }
  {
    sched::JobSpec s;
    s.name = "hpa-hi";
    s.workload = "hpa";
    s.tenant = 2;
    s.priority = 5;
    s.arrival = msec(flags.get_int("hpa-arrival-ms", 6'000));
    s.slots = 4;
    s.demand_bytes = hpa_demand;
    s.make = [&hcfg] { return hpa::make_hpa_job(hcfg); };
    add(std::move(s),
        bench::label("miner over D=%lld, min_support %.4f, demand %lld B",
                     static_cast<long long>(wl.num_transactions),
                     hcfg.min_support, static_cast<long long>(hpa_demand)));
  }
  {
    sched::JobSpec s;
    s.name = "join-mid";
    s.workload = "hash_join";
    s.tenant = 3;
    s.priority = 3;
    s.arrival = sec(12);
    s.slots = 4;
    s.demand_bytes = 128 << 10;
    s.make = [&jcfg] { return workloads::make_hash_join_job(jcfg); };
    add(std::move(s),
        bench::label("%lld x %lld row join, limit %lld B/node",
                     static_cast<long long>(jcfg.build_rows),
                     static_cast<long long>(jcfg.probe_rows),
                     static_cast<long long>(jcfg.memory_limit_bytes)));
  }

  if (atrace == sched::ArrivalTrace::kPoisson) {
    const std::vector<Time> arrivals = sched::poisson_arrivals(
        docs.size(), msec(flags.get_int("arrival-mean-ms", 2000)),
        static_cast<std::uint64_t>(flags.get_int("arrival-seed", 7)));
    for (std::size_t i = 0; i < docs.size(); ++i) {
      docs[i].spec.arrival = arrivals[i];
    }
  }

  sched::SchedulerConfig scfg;
  scfg.reclaim_enabled = !flags.get_bool("no-reclaim", false);
  scfg.horizon = sec(flags.get_int("horizon-s", 900));
  scfg.trace = trace.get();
  sched::JobScheduler scheduler(world, scfg);
  for (const SpecDoc& doc : docs) scheduler.submit(doc.spec);

  std::printf("[multitenant] %zu slots, %zu donors x %lld KB free "
              "(pool %lld KB), hpa-hi demand %lld KB, arrivals: %s\n",
              world.num_slots(), memory_nodes,
              static_cast<long long>(donor_free / 1024),
              static_cast<long long>(pool_bytes / 1024),
              static_cast<long long>(hpa_demand / 1024),
              sched::arrival_trace_name(atrace));

  world.start();
  sim.spawn(scheduler.run());
  sim.run();

  const std::int64_t pool_donated_end = world.pool_donated_bytes();
  const sched::JobScheduler::Stats& st = scheduler.stats();

  TablePrinter table("multi-tenant schedule",
                     {"job", "workload", "tenant", "pri", "arrive [s]",
                      "admit [s]", "finish [s]", "state", "reclaimed [KB]",
                      "result"});
  bool ok = true;
  for (const sched::JobRecord& j : scheduler.jobs()) {
    std::string result = "-";
    if (j.state == sched::JobState::kCompleted) {
      result = j.report.exact ? "exact, " + j.report.summary : "MISMATCH!";
      if (!j.report.exact || !j.report.completed) ok = false;
    } else if (j.state != sched::JobState::kShed) {
      ok = false;  // still queued/running after the world drained: wedged
    }
    table.add_row({j.spec.name, j.spec.workload,
                   TablePrinter::integer(j.spec.tenant),
                   TablePrinter::integer(j.spec.priority),
                   time_or_dash(j.spec.arrival), time_or_dash(j.admitted),
                   time_or_dash(j.finished),
                   sched::job_state_name(j.state),
                   TablePrinter::num(
                       static_cast<double>(j.reclaimed_bytes) / 1024.0, 1),
                   result});
  }
  table.print();

  std::printf("scheduler: %d admitted, %d completed, %d shed; "
              "%d reclaim event(s) freeing %lld KB; %d admission wait(s); "
              "%lld KB still donated at end\n",
              st.admitted, st.completed, st.shed, st.reclaim_events,
              static_cast<long long>(st.reclaimed_bytes / 1024),
              st.admission_waits,
              static_cast<long long>(pool_donated_end / 1024));

  if (flags.get_bool("expect-reclaim", false) && st.reclaim_events == 0) {
    std::fprintf(stderr, "FAIL: expected priority reclamation to fire\n");
    ok = false;
  }

  if (!artifact_path.empty()) {
    const std::string artifact = scheduler_artifact_json(
        scheduler, docs, sched::arrival_trace_name(atrace), pool_donated_end);
    if (obs::write_file(artifact_path, artifact)) {
      std::printf("wrote run artifact: %s\n", artifact_path.c_str());
    } else {
      std::fprintf(stderr, "FAILED writing run artifact: %s\n",
                   artifact_path.c_str());
      ok = false;
    }
  }
  if (trace && !trace_path.empty()) {
    if (trace->write_chrome_trace(trace_path)) {
      std::printf("wrote chrome trace: %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "FAILED writing chrome trace: %s\n",
                   trace_path.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
