// Shared scaffolding for the table/figure reproduction harnesses.
//
// Every bench binary reproduces one table or figure of the paper on the
// simulated cluster. The workload is the paper's §5.1 experiment: 5,000
// items, average transaction size 10, and a minimum support calibrated so
// |L1| ~ 3122, which makes the pass-2 candidate count match the paper's
// 4,871,881 (and the per-node candidate memory its 14-15 MB) independent of
// the transaction-count scale.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "hpa/hpa.hpp"
#include "mining/generator.hpp"
#include "obs/artifact.hpp"
#include "runtime/registry.hpp"
#include "sched/arrivals.hpp"

namespace rms::bench {

struct ExperimentEnv {
  Flags flags;
  double scale;
  mining::TransactionDb db;
  hpa::HpaConfig base;
  /// Non-null when any of --trace-out / --metrics-out / --json-out was
  /// passed; owns the trace recorder and metrics sampler for the process.
  std::unique_ptr<obs::RunObserver> observer;

  explicit ExperimentEnv(int argc, const char* const* argv,
                         std::map<std::string, std::string> extra_flags = {});

  /// A copy of the base configuration (shared db, paper parameters).
  hpa::HpaConfig config() const { return base; }

  /// Run one configuration under the observer (when enabled): opens a run
  /// section labelled `label`, stamps the trace/metrics sinks into `cfg`,
  /// and snapshots the result for the run artifact. With no observer this
  /// is exactly `hpa::run_hpa(cfg)`.
  hpa::HpaResult run(hpa::HpaConfig cfg, const std::string& label) const {
    if (observer) observer->begin_run(cfg, label);
    hpa::HpaResult result = hpa::run_hpa(cfg);
    if (observer) observer->end_run(result);
    return result;
  }

  /// Write the table as CSV when --csv was passed; always print to stdout.
  /// Also emits the observer's trace/metrics/artifact files when enabled.
  void finish(const TablePrinter& table, const std::string& default_csv) const;
};

// ---- shared flag-value rejection ------------------------------------------
//
// Every enumerated flag (--workload, --placement, --backend,
// --arrival-trace) rejects an unknown value the same way: exit 2 with a
// "choose one of" listing built from the owning catalog, so the valid set
// never drifts from the code.

/// " | "-joined canonical names of every placement policy.
inline std::string placement_names() {
  std::string out;
  for (placement::PolicyKind kind : placement::all_policies()) {
    if (!out.empty()) out += " | ";
    out += placement::policy_name(kind);
  }
  return out;
}

/// " | "-joined canonical names of every arrival-trace kind.
inline std::string arrival_trace_names() {
  std::string out;
  for (sched::ArrivalTrace trace : sched::all_arrival_traces()) {
    if (!out.empty()) out += " | ";
    out += sched::arrival_trace_name(trace);
  }
  return out;
}

/// Uniform unknown-value rejection:
///   unknown --<flag> '<value>' (choose one of: a | b | c)
/// then exit 2.
[[noreturn]] inline void reject_flag_value(const char* flag,
                                           const std::string& value,
                                           const std::string& choices) {
  std::fprintf(stderr, "unknown --%s '%s' (choose one of: %s)\n", flag,
               value.c_str(), choices.c_str());
  std::exit(2);
}

inline std::map<std::string, std::string> with_common_flags(
    std::map<std::string, std::string> extra) {
  extra.emplace("scale",
                "transaction-count scale vs the paper's 1M (default 0.1)");
  extra.emplace("app-nodes", "application execution nodes (default 8)");
  extra.emplace("memory-nodes", "maximum memory-available nodes (default 16)");
  extra.emplace("csv", "write results to this CSV path");
  extra.emplace("seed", "workload seed (default: paper experiment seed)");
  extra.emplace("flat",
                "use uniform candidate partitioning instead of the paper's "
                "observed Table-3 skew");
  extra.emplace("rpc-window",
                "transport sliding-window size for swap/migration RPCs "
                "(default 1: the paper's synchronous behaviour)");
  extra.emplace("placement",
                "swap-destination policy: " + placement_names() +
                    " (default paper-rr: the paper's heuristic)");
  extra.emplace("corrupt-rate",
                "payload-corruption injection: per-message bit-flip "
                "probability on the wire (default 0: no injection)");
  extra.emplace("corrupt-at-ms",
                "corruption episode start, virtual ms (default 500)");
  extra.emplace("corrupt-for-ms",
                "corruption episode duration, virtual ms (default 120000)");
  extra.emplace("trace-out",
                "write a Chrome trace_event JSON (chrome://tracing) here");
  extra.emplace("metrics-out", "write per-node gauge time-series JSON here");
  extra.emplace("json-out", "write the machine-readable run artifact here");
  extra.emplace("profile-out",
                "write the per-pass attribution profile JSON here");
  return extra;
}

inline ExperimentEnv::ExperimentEnv(
    int argc, const char* const* argv,
    std::map<std::string, std::string> extra_flags)
    : flags(argc, argv, with_common_flags(std::move(extra_flags))),
      scale(flags.get_double("scale", 0.1)) {
  mining::QuestParams wl = mining::QuestParams::paper_experiment(scale);
  wl.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(wl.seed)));
  std::fprintf(stderr, "[bench] generating workload: D=%lld, %u items...\n",
               static_cast<long long>(wl.num_transactions), wl.num_items);
  db = mining::QuestGenerator(wl).generate();

  base.app_nodes = static_cast<std::size_t>(flags.get_int("app-nodes", 8));
  base.memory_nodes =
      static_cast<std::size_t>(flags.get_int("memory-nodes", 16));
  base.workload = wl;
  base.shared_db = &db;
  // Calibrated so |L1| ~ 3122 => C2 ~ 4.87M (see DESIGN.md §2): 0.025% of
  // the transactions.
  base.min_support = 0.00025;
  base.hash_lines = 800'000;
  base.message_block_bytes = 4096;  // §5.1
  base.io_block_bytes = 65536;      // §5.1
  // The paper's evaluation reports pass-2 execution time; stop after it.
  base.max_k = 2;
  // Reproduce the paper's observed partition skew (Table 3) unless --flat:
  // the busiest node's 15.4 MB of candidates is what keeps the 15 MB limit
  // swapping in Figures 3-5.
  if (!flags.get_bool("flat", false) && base.app_nodes == 8) {
    base.partition_weights = hpa::paper_table3_weights();
  }
  base.rpc_window = static_cast<int>(flags.get_int("rpc-window", 1));

  const std::string placement_name = flags.get("placement", "paper-rr");
  if (const auto kind = placement::parse_policy(placement_name)) {
    base.placement = *kind;
  } else {
    reject_flag_value("placement", placement_name, placement_names());
  }

  // Optional wire-corruption injection, for chaos benches and the
  // corruption-seeded determinism replay in CI. Self-repair (checksums +
  // replicas) keeps the mined result exact; the artifact's integrity block
  // records what was detected and repaired.
  const double corrupt_rate = flags.get_double("corrupt-rate", 0.0);
  if (corrupt_rate > 0.0) {
    hpa::HpaConfig::Corruption ep;
    ep.at = msec(flags.get_int("corrupt-at-ms", 500));
    ep.duration = msec(flags.get_int("corrupt-for-ms", 120000));
    ep.flip_rate = corrupt_rate;
    base.corruption.push_back(ep);
  }

  observer = obs::RunObserver::from_paths(
      {flags.get("trace-out", ""), flags.get("metrics-out", ""),
       flags.get("json-out", ""), flags.get("profile-out", "")});
}

inline void ExperimentEnv::finish(const TablePrinter& table,
                                  const std::string& default_csv) const {
  table.print();
  const std::string path = flags.get("csv", "");
  if (!path.empty()) {
    if (table.write_csv(path)) {
      std::printf("(csv written to %s)\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not write csv to %s\n", path.c_str());
    }
  }
  (void)default_csv;
  if (observer) observer->write();
}

/// printf-style run-section label for the observer artifacts, e.g.
/// `bench::label("remote_swap/%.0fMB", limit)`.
inline std::string label(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Megabyte limits as the paper writes them (x-axis of Figures 3-5). The
/// paper's accounting is decimal: 641,243 candidates x 24 B = 15.39 "MB" on
/// the busiest node, which is why its 15 MB limit still swaps there.
inline std::int64_t mb(double v) {
  return static_cast<std::int64_t>(v * 1e6);
}

/// Seconds with one decimal, the paper's reporting precision.
inline std::string secs(Time t) { return TablePrinter::num(to_seconds(t), 1); }

// ---- shared policy/limit flag parsing -------------------------------------
//
// The ablation benches all take the same memory-limit flag, and the
// single-policy ones additionally select their swap backend; the helpers
// below replace the per-bench copies of that parsing.

/// Register the --limit-mb help text (benches that sweep policies
/// themselves use just this).
inline std::map<std::string, std::string> with_limit_flag(
    std::map<std::string, std::string> extra = {}) {
  extra.emplace("limit-mb", "per-node memory usage limit in MB");
  return extra;
}

/// Register --backend / --limit-mb / --tiered-budget-mb help text for the
/// single-policy benches.
inline std::map<std::string, std::string> with_policy_flags(
    std::map<std::string, std::string> extra = {}) {
  extra.emplace("backend", "swap backend: disk | remote | update | tiered");
  extra.emplace("tiered-budget-mb",
                "tiered backend: per-node remote-memory budget in MB "
                "(default: unlimited)");
  return with_limit_flag(std::move(extra));
}

/// Map a --backend value to the SwapPolicy it selects.
inline core::SwapPolicy backend_policy(const std::string& name) {
  if (name == "disk") return core::SwapPolicy::kDiskSwap;
  if (name == "remote") return core::SwapPolicy::kRemoteSwap;
  if (name == "update") return core::SwapPolicy::kRemoteUpdate;
  if (name == "tiered") return core::SwapPolicy::kTiered;
  reject_flag_value("backend", name, "disk | remote | update | tiered");
}

/// The parsed backend/limit selection of a single-policy bench.
struct PolicyFlags {
  core::SwapPolicy policy = core::SwapPolicy::kRemoteUpdate;
  double limit_mb = 13.0;
  double tiered_budget_mb = -1.0;  // < 0: unlimited

  /// Stamp the selection onto a run configuration.
  void apply(hpa::HpaConfig& cfg) const {
    cfg.policy = policy;
    cfg.memory_limit_bytes = mb(limit_mb);
    cfg.tiered_remote_budget_bytes =
        tiered_budget_mb < 0 ? -1 : mb(tiered_budget_mb);
  }
};

/// Parse the flags registered by with_policy_flags, with per-bench defaults.
inline PolicyFlags parse_policy_flags(const Flags& flags,
                                      core::SwapPolicy default_policy,
                                      double default_limit_mb = 13.0) {
  PolicyFlags p;
  p.policy = flags.has("backend") ? backend_policy(flags.get("backend", ""))
                                  : default_policy;
  p.limit_mb = flags.get_double("limit-mb", default_limit_mb);
  p.tiered_budget_mb = flags.get_double("tiered-budget-mb", -1.0);
  return p;
}

// ---- shared workload selection --------------------------------------------
//
// Multi-workload benches select from the runtime workload catalog the same
// way the single-policy benches select their backend.

/// Register --workload / --list-workloads help text.
inline std::map<std::string, std::string> with_workload_flags(
    std::map<std::string, std::string> extra = {}) {
  extra.emplace("workload",
                "workload to run: " + runtime::workload_names() +
                    " (default hpa)");
  extra.emplace("list-workloads", "print the workload catalog and exit");
  return extra;
}

/// Resolve the flags registered by with_workload_flags to a catalog name.
/// --list-workloads prints the catalog and exits 0; an unknown name exits 2
/// with a friendly error naming the valid workloads.
inline std::string parse_workload_flag(const Flags& flags,
                                       const std::string& default_name =
                                           "hpa") {
  if (flags.get_bool("list-workloads", false)) {
    for (const runtime::WorkloadInfo& info : runtime::workload_catalog()) {
      std::printf("%-16s %s\n", info.name.c_str(), info.description.c_str());
    }
    std::exit(0);
  }
  const std::string name = flags.get("workload", default_name);
  if (!runtime::find_workload(name)) {
    reject_flag_value("workload", name, runtime::workload_names());
  }
  return name;
}

// ---- shared arrival-trace selection ---------------------------------------
//
// The multi-tenant bench selects its job arrival trace the same way the
// other benches select their backend or workload.

/// Register --arrival-trace / --arrival-mean-ms / --arrival-seed help text.
inline std::map<std::string, std::string> with_arrival_flags(
    std::map<std::string, std::string> extra = {}) {
  extra.emplace("arrival-trace",
                "job arrival trace: " + arrival_trace_names() +
                    " (default fixed: the specs' own schedule)");
  extra.emplace("arrival-mean-ms",
                "poisson trace: mean interarrival in virtual ms "
                "(default 2000)");
  extra.emplace("arrival-seed", "poisson trace: arrival RNG seed (default 7)");
  return extra;
}

/// Resolve --arrival-trace; an unknown value exits 2 with the catalog
/// listing, like every other enumerated flag.
inline sched::ArrivalTrace parse_arrival_trace_flag(const Flags& flags) {
  const std::string name = flags.get("arrival-trace", "fixed");
  if (const auto trace = sched::parse_arrival_trace(name)) return *trace;
  reject_flag_value("arrival-trace", name, arrival_trace_names());
}

}  // namespace rms::bench
