// Table 4 reproduction: the execution time of each pagefault, derived the
// way the paper derives it -- (execution time minus the no-memory-limit
// execution time) divided by the maximum pagefault count across nodes --
// with 16 memory-available nodes and simple swapping.
//
// Paper values: Exec 7183.1/4674.0/2489.7/757.3 s for 12/13/14/15 MB with
// Max 2.9M/1.9M/1.0M/268k faults, giving 2.37/2.33/2.22/1.90 ms per fault,
// decomposed as ~0.5 ms RTT + ~0.3 ms transmission + ~1.5 ms server ops.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv);

  std::fprintf(stderr, "[table4] no-limit baseline...\n");
  const Time no_limit = env.run(env.config(), "no_limit").pass(2)->duration;

  struct PaperRow {
    double exec, diff, pf_ms;
    std::int64_t max_faults;
  };
  const std::vector<PaperRow> paper = {{7183.1, 6936.1, 2.37, 2925243},
                                       {4674.0, 4427.0, 2.33, 1896226},
                                       {2489.7, 2242.7, 2.22, 1003757},
                                       {757.3, 510.3, 1.90, 268093}};

  TablePrinter table(
      "Table 4: execution time of each pagefault (16 memory-available nodes, "
      "simple swapping)",
      {"usage limit", "Exec [s]", "Diff [s]", "Max faults", "PF [ms]",
       "fault p50/p99 [ms]", "PF paper [ms]"});

  const std::vector<double> limits_mb = {12, 13, 14, 15};
  for (std::size_t i = 0; i < limits_mb.size(); ++i) {
    hpa::HpaConfig cfg = env.config();
    cfg.memory_limit_bytes = bench::mb(limits_mb[i]);
    cfg.policy = core::SwapPolicy::kRemoteSwap;
    std::fprintf(stderr, "[table4] limit %.0f MB...\n", limits_mb[i]);
    const hpa::HpaResult r =
        env.run(cfg, bench::label("remote_swap/%.0fMB", limits_mb[i]));
    const hpa::PassReport* p2 = r.pass(2);
    const Time exec = p2->duration;
    const Time diff = exec - no_limit;
    const std::int64_t max_faults = p2->max_pagefaults();
    const double pf_ms =
        max_faults > 0 ? to_millis(diff) / static_cast<double>(max_faults)
                       : 0.0;
    const auto& hist = r.stats.histogram("store.fault_ms");
    table.add_row({TablePrinter::num(limits_mb[i], 0) + "MB",
                   bench::secs(exec), bench::secs(diff),
                   TablePrinter::integer(max_faults),
                   TablePrinter::num(pf_ms, 2),
                   TablePrinter::num(hist.percentile(0.5), 2) + " / " +
                       TablePrinter::num(hist.percentile(0.99), 2),
                   TablePrinter::num(paper[i].pf_ms, 2)});
  }
  env.finish(table, "table4.csv");

  std::printf(
      "\ndecomposition check (paper §5.2): round trip ~0.5 ms + 4 KB block "
      "~0.3 ms + memory-server operations ~1.5 ms = ~2.3 ms.\nThe 'unloaded "
      "fault' column measures the fault round trip directly; the derived PF "
      "column additionally absorbs eviction traffic (swap-outs share the "
      "server), which the paper's larger fault counts amortized away.\n");
  return 0;
}
