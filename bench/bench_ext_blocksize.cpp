// Extension ablation: message block size.
//
// The paper fixes "the message block size is set to be 4 Kbytes" (§5.1)
// without a sweep. The block size trades per-message protocol overhead
// (fewer, larger messages) against batching latency and padded swap
// traffic; this bench sweeps it for both remote policies at a fixed limit.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv, bench::with_limit_flag());
  const double limit = env.flags.get_double("limit-mb", 13.0);

  TablePrinter table(
      "Extension: message-block-size ablation (limit " +
          TablePrinter::num(limit, 0) + " MB, 16 memory-available nodes; "
          "paper fixes 4 KB)",
      {"block", "simple swapping [s]", "remote update [s]",
       "count messages", "wire MB (ru)"});

  for (std::int64_t block : {1024, 2048, 4096, 8192, 16384}) {
    Time swap_t = 0;
    Time update_t = 0;
    std::int64_t msgs = 0;
    std::int64_t wire = 0;
    for (core::SwapPolicy policy :
         {core::SwapPolicy::kRemoteSwap, core::SwapPolicy::kRemoteUpdate}) {
      hpa::HpaConfig cfg = env.config();
      cfg.memory_limit_bytes = bench::mb(limit);
      cfg.policy = policy;
      cfg.message_block_bytes = block;
      std::fprintf(stderr, "[blocksize] %s at %lld B...\n",
                   core::to_string(policy), static_cast<long long>(block));
      const hpa::HpaResult r = env.run(
          cfg, bench::label("%s/%lldB", core::to_string(policy),
                            static_cast<long long>(block)));
      if (policy == core::SwapPolicy::kRemoteSwap) {
        swap_t = r.pass(2)->duration;
      } else {
        update_t = r.pass(2)->duration;
        msgs = r.stats.counter("net.messages");
        wire = r.stats.counter("net.wire_bytes");
      }
    }
    table.add_row({TablePrinter::integer(block) + "B", bench::secs(swap_t),
                   bench::secs(update_t), TablePrinter::integer(msgs),
                   TablePrinter::num(static_cast<double>(wire) / 1e6, 1)});
  }
  env.finish(table, "ext_blocksize.csv");
  std::printf(
      "\nlarge blocks pad every swapped line and lose steadily; at the small "
      "end the extra per-message protocol cost roughly cancels the padding "
      "saved, so 1-4 KB sit within ~10%% of each other -- the flat region "
      "the paper's 4 KB (one hash line per block, §5.1) belongs to.\n");
  return 0;
}
