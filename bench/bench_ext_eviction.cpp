// Extension ablation: victim-selection policy for hash-line eviction.
//
// The paper picks LRU ("the hash line swapped out is selected using a LRU
// algorithm", §4.3) without evaluating alternatives. This bench quantifies
// that design choice: under simple remote swapping, LRU vs FIFO vs Random
// victim selection at several memory limits, reporting pass-2 time and the
// pagefault count the choice induces.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(
      argc, argv,
      {{"backend", "swap backend: disk | remote | update | tiered"},
       {"tiered-budget-mb",
        "tiered backend: per-node remote-memory budget in MB "
        "(default: unlimited)"}});
  bench::PolicyFlags pf = bench::parse_policy_flags(
      env.flags, core::SwapPolicy::kRemoteSwap);

  std::fprintf(stderr, "[eviction] no-limit baseline...\n");
  const Time no_limit = env.run(env.config(), "no_limit").pass(2)->duration;

  TablePrinter table(
      "Extension: eviction-policy ablation (simple swapping, 16 "
      "memory-available nodes; paper uses LRU)",
      {"usage limit", "lru [s]", "fifo [s]", "random [s]", "lru faults",
       "fifo faults", "random faults"});

  for (double limit : {12.0, 13.0, 14.0, 15.0}) {
    std::vector<std::string> times;
    std::vector<std::string> faults;
    for (core::EvictionPolicy ev :
         {core::EvictionPolicy::kLru, core::EvictionPolicy::kFifo,
          core::EvictionPolicy::kRandom}) {
      hpa::HpaConfig cfg = env.config();
      pf.limit_mb = limit;
      pf.apply(cfg);
      cfg.eviction = ev;
      std::fprintf(stderr, "[eviction] %s at %.0f MB...\n",
                   core::to_string(ev), limit);
      const hpa::HpaResult r = env.run(
          cfg, bench::label("%s/%.0fMB", core::to_string(ev), limit));
      times.push_back(bench::secs(r.pass(2)->duration));
      faults.push_back(TablePrinter::integer(
          r.stats.counter("store.pagefaults")));
    }
    table.add_row({TablePrinter::num(limit, 0) + "MB", times[0], times[1],
                   times[2], faults[0], faults[1], faults[2]});
  }
  env.finish(table, "ext_eviction.csv");

  std::printf(
      "\nno-limit baseline: %s s. LRU exploits the probe stream's reuse; "
      "FIFO and Random evict hot lines and fault more -- the gap is the "
      "value of the paper's LRU choice.\n",
      bench::secs(no_limit).c_str());
  return 0;
}
