// Extension: TCP retransmission behaviour under transmission losses.
//
// The authors' companion work ("Optimizing Protocol Parameters to Large
// Scale PC Cluster...", HPDC'98, ref [2] of the paper) tunes TCP timers on
// this exact cluster because Solaris' coarse 200 ms retransmission timeout
// stalls the mesh under cell loss. This bench reproduces that story on the
// simulated cluster: pass-2 time of the remote-update run as a function of
// transmission loss rate, with the stock 200 ms RTO vs a tuned 3 ms RTO.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "net/network.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv, bench::with_policy_flags());
  const bench::PolicyFlags pf = bench::parse_policy_flags(
      env.flags, core::SwapPolicy::kRemoteUpdate, 13.0);

  TablePrinter table(
      "Extension: TCP retransmission tuning (remote update, limit " +
          TablePrinter::num(pf.limit_mb, 0) + " MB)",
      {"loss rate", "RTO 200ms [s]", "RTO 3ms [s]", "retransmissions",
       "speedup from tuning"});

  for (double loss : {0.0, 0.0001, 0.001, 0.01}) {
    Time coarse = 0, tuned = 0;
    std::int64_t retx = 0;
    for (Time rto : {msec(200), msec(3)}) {
      hpa::HpaConfig cfg = env.config();
      pf.apply(cfg);
      cfg.cluster.link = net::LinkParams::atm155_lossy(loss, rto);
      std::fprintf(stderr, "[tcp] loss %.4f, rto %.0f ms...\n", loss,
                   to_millis(rto));
      const hpa::HpaResult r = env.run(
          cfg, bench::label("loss_%.4f/rto_%.0fms", loss, to_millis(rto)));
      if (rto == msec(200)) {
        coarse = r.pass(2)->duration;
        retx = r.stats.counter("net.retransmissions");
      } else {
        tuned = r.pass(2)->duration;
      }
    }
    table.add_row({TablePrinter::num(loss * 100, 2) + "%",
                   bench::secs(coarse), bench::secs(tuned),
                   TablePrinter::integer(retx),
                   TablePrinter::num(static_cast<double>(coarse) /
                                         static_cast<double>(tuned),
                                     2) +
                       "x"});
  }
  env.finish(table, "ext_tcp.csv");
  std::printf(
      "\nwith coarse Solaris-era timers, even 0.1%% loss stalls the counting "
      "mesh behind 200 ms timeouts; tuning the RTO to the cluster's actual "
      "RTT recovers most of it -- the companion work's conclusion.\n");
  return 0;
}
