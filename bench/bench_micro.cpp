// Microbenchmarks (google-benchmark) for the substrate primitives: event
// loop, channels, resources, network transfers, disk model, and the mining
// hot paths. These bound how much real time the table/figure harnesses
// spend per simulated operation.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "disk/disk.hpp"
#include "mining/apriori.hpp"
#include "mining/candidate_gen.hpp"
#include "mining/generator.hpp"
#include "mining/hash_line_table.hpp"
#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rms;

void BM_SimTimeoutEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    auto proc = [](sim::Simulation& s, int n) -> sim::Process {
      for (int i = 0; i < n; ++i) co_await s.timeout(usec(1));
    };
    sim.spawn(proc(sim, 10'000));
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimTimeoutEvents);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Channel<int> a(sim), b(sim);
    auto ping = [](sim::Channel<int>& out, sim::Channel<int>& in,
                   int n) -> sim::Process {
      for (int i = 0; i < n; ++i) {
        out.send(i);
        (void)co_await in.recv();
      }
    };
    auto pong = [](sim::Channel<int>& in, sim::Channel<int>& out,
                   int n) -> sim::Process {
      for (int i = 0; i < n; ++i) {
        const int v = co_await in.recv();
        out.send(v);
      }
    };
    sim.spawn(ping(a, b, 5'000));
    sim.spawn(pong(a, b, 5'000));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ChannelPingPong);

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource res(sim, 1);
    auto worker = [](sim::Simulation& s, sim::Resource& r, int n) -> sim::Process {
      for (int i = 0; i < n; ++i) {
        auto lease = co_await r.acquire();
        co_await s.timeout(usec(1));
      }
    };
    for (int w = 0; w < 4; ++w) sim.spawn(worker(sim, res, 1'000));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 4'000);
}
BENCHMARK(BM_ResourceContention);

void BM_NetworkMessages(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network net(sim, 2, net::LinkParams::atm155());
    std::int64_t delivered = 0;
    net.set_delivery(1, [&](net::Message) { ++delivered; });
    for (int i = 0; i < 2'000; ++i) {
      net.send(net::Message::make(0, 1, 0, 4096, i));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_NetworkMessages);

void BM_DiskRandomReads(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    disk::Disk d(sim, disk::DiskParams::barracuda_7200());
    auto proc = [](disk::Disk& dd, int n) -> sim::Process {
      for (int i = 0; i < n; ++i) {
        co_await dd.read(4096, disk::Access::kRandom);
      }
    };
    sim.spawn(proc(d, 2'000));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_DiskRandomReads);

void BM_ItemsetHash(benchmark::State& state) {
  mining::Itemset s{17, 4211};
  std::uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc += s.hash());
  }
}
BENCHMARK(BM_ItemsetHash);

void BM_SubsetEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<mining::Item> tx(n);
  for (std::size_t i = 0; i < n; ++i) tx[i] = static_cast<mining::Item>(i * 3);
  const auto keep = [](mining::Item) { return true; };
  std::uint64_t count = 0;
  for (auto _ : state) {
    mining::for_each_k_subset({tx.data(), tx.size()}, 2, keep,
                              [&](const mining::Itemset&) { ++count; });
  }
  benchmark::DoNotOptimize(count);
  state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SubsetEnumeration)->Arg(10)->Arg(20);

void BM_HashLineProbe(benchmark::State& state) {
  mining::HashLineTable table(1 << 14);
  for (mining::Item a = 0; a < 256; ++a) {
    for (mining::Item b = a + 1; b < a + 33; ++b) {
      table.insert(mining::Itemset{a, b});
    }
  }
  mining::Item a = 0;
  for (auto _ : state) {
    a = (a + 1) % 256;
    benchmark::DoNotOptimize(table.probe(mining::Itemset{a, a + 7}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashLineProbe);

void BM_CandidateGeneration(benchmark::State& state) {
  std::vector<mining::Itemset> l1;
  for (mining::Item i = 0; i < 1000; ++i) {
    mining::Itemset s;
    s.push_back(i);
    l1.push_back(s);
  }
  for (auto _ : state) {
    std::int64_t n = mining::count_candidates(l1);
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(n);
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_QuestGeneration(benchmark::State& state) {
  mining::QuestParams p;
  p.num_transactions = 10'000;
  p.num_items = 1000;
  p.seed = 3;
  for (auto _ : state) {
    mining::QuestGenerator gen(p);
    mining::TransactionDb db = gen.generate();
    benchmark::DoNotOptimize(db.total_items());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_QuestGeneration);

}  // namespace

BENCHMARK_MAIN();
