// Extension: crash-tolerant remote swapping. A memory-available node
// crash-stops mid-pass-2 while holding swapped-out hash lines; the run must
// finish anyway. The sweep crosses the crash time with the failure-detection
// interval and the recovery mode:
//
//   degrade   — no replicas: lines on the dead node are orphaned (their
//               counts are lost) and later evictions fall back to disk;
//   replicate — replicate_k = 1 mirrors every swapped-out line on a second
//               memory node, so the dead node's primaries are promoted and
//               the mining result stays exact.
//
// Reported per cell: completion time of pass 2 and the count loss (orphaned
// candidate entries), plus the failover counters behind them.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(
      argc, argv,
      bench::with_policy_flags(
          {{"crash-node", "memory-available node index to crash (default 0)"}}));
  const bench::PolicyFlags pf = bench::parse_policy_flags(
      env.flags, core::SwapPolicy::kRemoteUpdate, 14.0);
  const auto crash_node =
      static_cast<std::size_t>(env.flags.get_int("crash-node", 0));

  // Baseline (no fault) pins the time axis for placing the crash.
  hpa::HpaConfig base = env.config();
  pf.apply(base);
  std::fprintf(stderr, "[failover] baseline (no fault)...\n");
  const hpa::HpaResult baseline = env.run(base, "baseline");
  const Time total0 = baseline.total_time;

  const std::vector<double> crash_fractions{0.25, 0.5, 0.75};
  const std::vector<Time> detect_intervals{msec(500), sec(3)};
  constexpr int kMissThreshold = 3;

  TablePrinter table(
      "Failover sweep: crash of one memory-available node (remote update, "
      "limit " + TablePrinter::num(pf.limit_mb, 1) + " MB); baseline " +
          bench::secs(total0) + " s",
      {"crash at", "detect", "mode", "time [s]", "entries lost", "orphaned",
       "promoted", "degraded", "suspicions"});

  for (double frac : crash_fractions) {
    const Time crash_at =
        static_cast<Time>(static_cast<double>(total0) * frac);
    for (Time detect : detect_intervals) {
      for (int replicate = 0; replicate <= 1; ++replicate) {
        hpa::HpaConfig cfg = base;
        cfg.monitor_interval = detect;
        cfg.suspect_after_misses = kMissThreshold;
        cfg.replicate_k = replicate;
        cfg.rpc_deadline = msec(500);
        cfg.rpc_max_retries = 1;
        cfg.crashes = {{crash_node, crash_at, -1}};
        std::fprintf(stderr,
                     "[failover] crash @ %.2f s, detect %lld ms, %s...\n",
                     to_seconds(crash_at),
                     static_cast<long long>(detect / msec(1)),
                     replicate ? "replicate" : "degrade");
        const hpa::HpaResult r = env.run(
            cfg, bench::label("crash_%.0f%%/detect_%lldms/%s", frac * 100,
                              static_cast<long long>(detect / msec(1)),
                              replicate ? "replicate" : "degrade"));
        const core::FailoverStats& f = r.failover;
        table.add_row(
            {bench::secs(crash_at) + "s",
             TablePrinter::integer(detect / msec(1)) + "ms x" +
                 TablePrinter::integer(kMissThreshold),
             replicate ? "replicate" : "degrade", bench::secs(r.total_time),
             TablePrinter::integer(f.orphaned_entries),
             TablePrinter::integer(f.orphaned_lines),
             TablePrinter::integer(f.promoted_lines),
             TablePrinter::integer(f.degraded_evictions),
             TablePrinter::integer(f.suspicions)});
      }
    }
  }
  env.finish(table, "ext_failover.csv");

  std::printf(
      "\nwith replication every crash cell loses zero entries (backups are "
      "promoted); without it the loss tracks how many lines the dead node "
      "held when it crashed, and a shorter detection interval mainly bounds "
      "how long swap-outs keep aiming at the dead node.\n");
  return 0;
}
