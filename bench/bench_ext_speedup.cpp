// Extension: parallel speedup of HPA with the number of application
// execution nodes.
//
// The paper reports only that "reasonably good performance improvement" was
// obtained on the 100-PC cluster (§3.3) without giving the curve; this
// bench measures it on the simulated cluster for the experiment workload,
// with and without a memory limit (remote update), showing how remote
// memory keeps the speedup curve intact when nodes are memory-starved.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv, bench::with_policy_flags());
  const bench::PolicyFlags pf = bench::parse_policy_flags(
      env.flags, core::SwapPolicy::kRemoteUpdate, 13.0);
  const double limit8 = pf.limit_mb;  // scaled by 8/app_nodes below

  TablePrinter table(
      "Extension: HPA pass-2 speedup vs application nodes (no-limit, and "
      "remote update with a proportional per-node limit)",
      {"app nodes", "no limit [s]", "speedup", "remote update [s]",
       "speedup (ru)"});

  Time base_nolimit = 0;
  Time base_ru = 0;
  for (std::size_t nodes : {1, 2, 4, 8, 16}) {
    hpa::HpaConfig cfg = env.config();
    cfg.app_nodes = nodes;
    cfg.partition_weights.clear();  // skew emulation is 8-node specific
    std::fprintf(stderr, "[speedup] %zu app nodes, no limit...\n", nodes);
    const Time t =
        env.run(cfg, bench::label("no_limit/%zu_nodes", nodes)).pass(2)->duration;
    if (nodes == 1) base_nolimit = t;

    // Per-node candidate volume shrinks with more nodes; scale the limit to
    // keep the same eviction pressure per node.
    hpa::HpaConfig ru = cfg;
    pf.apply(ru);
    ru.memory_limit_bytes =
        static_cast<std::int64_t>(limit8 * 1e6 * 8.0 /
                                  static_cast<double>(nodes));
    std::fprintf(stderr, "[speedup] %zu app nodes, remote update...\n",
                 nodes);
    const Time tr =
        env.run(ru, bench::label("remote_update/%zu_nodes", nodes))
            .pass(2)->duration;
    if (nodes == 1) base_ru = tr;

    table.add_row(
        {TablePrinter::integer(static_cast<std::int64_t>(nodes)),
         bench::secs(t),
         TablePrinter::num(static_cast<double>(base_nolimit) /
                               static_cast<double>(t),
                           2),
         bench::secs(tr),
         TablePrinter::num(static_cast<double>(base_ru) /
                               static_cast<double>(tr),
                           2)});
  }
  env.finish(table, "ext_speedup.csv");
  std::printf(
      "\ncandidate generation is replicated on every node (HPA step 1), so "
      "speedup saturates once the scan no longer dominates -- the same "
      "effect the 100-PC cluster would show at this workload size.\n");
  return 0;
}
