// Extension ablation: candidate-structure comparison for support counting.
//
// NOT a figure of the target paper (see DESIGN.md source-text note): the
// paper stores candidates in hash lines; the classic alternative is the
// Agrawal-Srikant hash tree, and the shared-memory Apriori literature adds
// short-circuited subset checking on top. This bench mines L2 first, then
// counts the candidate 3-itemsets with:
//
//   - hash-line table probing (enumerate k-subsets, hash each), the
//     structure the paper's remote-memory system swaps;
//   - hash-tree counting with and without short-circuiting (pruning subtree
//     descents that cannot complete a k-subset).
//
// Short-circuiting's benefit grows with transaction size and with k, which
// is why the sweep raises |T|.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"
#include "mining/hash_tree.hpp"

using namespace rms;
using namespace rms::mining;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"csv", "write results to this CSV path"}});

  TablePrinter table(
      "Extension: candidate-structure ablation for pass-3 counting "
      "(not a paper figure)",
      {"workload", "C3", "hash-line [s]", "tree+sc [s]", "tree no-sc [s]",
       "comparisons saved"});

  struct Workload {
    std::string name;
    double avg_tx;
    std::int64_t txs;
    double minsup;
  };
  for (const Workload& w : {Workload{"T10.D50K", 10, 50'000, 0.004},
                            Workload{"T15.D30K", 15, 30'000, 0.006},
                            Workload{"T20.D20K", 20, 20'000, 0.008}}) {
    QuestParams p;
    p.num_transactions = w.txs;
    p.num_items = 1000;
    p.avg_transaction_size = w.avg_tx;
    p.num_patterns = 300;
    p.seed = 77;
    TransactionDb db = QuestGenerator(p).generate();
    std::fprintf(stderr, "[ext] workload %s...\n", w.name.c_str());

    // Mine through pass 2 to obtain L2, then form candidate 3-itemsets.
    AprioriOptions opt;
    opt.max_k = 2;
    const AprioriResult mined = apriori(db, w.minsup, opt);
    if (mined.large_by_k.size() < 2) continue;
    const std::vector<Itemset> c3 =
        generate_candidates(mined.large_by_k[1]);
    if (c3.empty()) {
      std::fprintf(stderr, "[ext] %s: no candidate 3-itemsets, skipped\n",
                   w.name.c_str());
      continue;
    }

    const auto keep = [&](Item it) {
      Itemset s;
      s.push_back(it);
      return mined.support.count(s) != 0;
    };

    HashLineTable lines(1 << 16);
    HashTree tree_sc(3, 64, 8);
    HashTree tree_plain(3, 64, 8);
    for (const Itemset& c : c3) {
      lines.insert(c);
      tree_sc.insert(c);
      tree_plain.insert(c);
    }

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < db.size(); ++t) {
      for_each_k_subset(db.tx(t), 3, keep,
                        [&](const Itemset& s) { (void)lines.probe(s); });
    }
    const double line_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < db.size(); ++t) {
      tree_sc.count_transaction(db.tx(t), true);
    }
    const double sc_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < db.size(); ++t) {
      tree_plain.count_transaction(db.tx(t), false);
    }
    const double plain_s = seconds_since(t0);

    const double saved =
        tree_plain.comparisons() == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(tree_sc.comparisons()) /
                                 static_cast<double>(tree_plain.comparisons()));
    table.add_row(
        {w.name,
         TablePrinter::integer(static_cast<std::int64_t>(c3.size())),
         TablePrinter::num(line_s, 3), TablePrinter::num(sc_s, 3),
         TablePrinter::num(plain_s, 3), TablePrinter::num(saved, 1) + "%"});
  }
  table.print();
  const std::string csv = flags.get("csv", "");
  if (!csv.empty() && table.write_csv(csv)) {
    std::printf("(csv written to %s)\n", csv.c_str());
  }
  std::printf(
      "\nshort-circuiting prunes descents that cannot complete a k-subset; "
      "only boundary positions qualify, so the relative savings shrink as "
      "|T| grows and grow with k (the SC'96 literature adds further "
      "leaf-level checks to reach ~25-60%% at higher iterations).\n");
  return 0;
}
