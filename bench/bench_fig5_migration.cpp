// Figure 5 reproduction: dynamic memory migration on memory-available
// nodes. During a remote-update run (16 memory-available nodes, 3 s monitor
// interval), one or two memory-available nodes receive a "no memory left"
// signal mid-execution; their swapped-out hash lines must migrate to other
// memory-available nodes.
//
// Paper behaviour: the three curves (all nodes available / 1 withdrawn /
// 2 withdrawn) lie nearly on top of each other -- "the overhead of memory
// contents migration is almost negligible".
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(
      argc, argv,
      {{"fine", "sweep 0.5 MB steps like the paper's x-axis"},
       {"limit-mb", "run a single usage limit instead of the 12-15 MB sweep"},
       {"monitor-interval-ms", "availability monitoring period (default "
                               "3000, the paper's 3 s)"}});
  const bool fine = env.flags.get_bool("fine", false);
  const Time interval = msec(env.flags.get_int("monitor-interval-ms", 3000));

  std::vector<double> limits_mb;
  if (env.flags.has("limit-mb")) {
    // Single-point mode (3 runs instead of 12): the perf-baseline harness
    // uses it to keep the fig5 leg fast.
    limits_mb.push_back(env.flags.get_double("limit-mb", 12.0));
  } else {
    for (double v = 12.0; v <= 15.0 + 1e-9; v += fine ? 0.5 : 1.0) {
      limits_mb.push_back(v);
    }
  }

  TablePrinter table(
      "Figure 5: dynamic memory migration -- execution time of pass 2 [s] "
      "vs memory usage limit (remote update, 16 memory-available nodes)",
      {"usage limit", "all available [s]", "1 node withdrawn [s]",
       "2 nodes withdrawn [s]", "lines migrated (1w)", "lines migrated (2w)"});

  for (double limit : limits_mb) {
    auto run = [&](int withdrawals,
                   Time baseline_total) -> std::pair<Time, std::int64_t> {
      hpa::HpaConfig cfg = env.config();
      cfg.memory_limit_bytes = bench::mb(limit);
      cfg.policy = core::SwapPolicy::kRemoteUpdate;
      cfg.monitor_interval = interval;
      // Send the signals mid-way through the (baseline-measured) run, the
      // second one a little later, like the paper's two-signal experiment.
      for (int w = 0; w < withdrawals; ++w) {
        cfg.withdrawals.push_back(hpa::HpaConfig::Withdrawal{
            static_cast<std::size_t>(w),
            baseline_total / 2 + w * (baseline_total / 8)});
      }
      std::fprintf(stderr, "[fig5] limit %.1f MB, %d withdrawal(s)...\n",
                   limit, withdrawals);
      const hpa::HpaResult r = env.run(
          cfg, bench::label("%.1fMB/%d_withdrawn", limit, withdrawals));
      return {r.pass(2)->duration,
              r.stats.counter("server.lines_migrated")};
    };

    const auto [t0, m0] = run(0, 0);
    (void)m0;
    hpa::HpaConfig probe = env.config();  // total time to place the signals
    const Time total0 = t0;  // pass 2 dominates; signal at half its span
    const auto [t1, m1] = run(1, total0);
    const auto [t2, m2] = run(2, total0);

    table.add_row({TablePrinter::num(limit, 1) + "MB", bench::secs(t0),
                   bench::secs(t1), bench::secs(t2),
                   TablePrinter::integer(m1), TablePrinter::integer(m2)});
    (void)probe;
  }
  env.finish(table, "fig5.csv");

  std::printf(
      "\npaper's Figure 5: the three curves nearly coincide (0-500 s range "
      "at D = 1M); migration overhead is negligible unless the monitoring "
      "interval is made much shorter than 1 s.\n");
  return 0;
}
