// Figure 3 reproduction: execution time of HPA pass 2 under dynamic remote
// memory acquisition with simple swapping, as a function of the number of
// memory-available nodes (1, 2, 4, 8, 16) for per-node memory usage limits
// of 12/13/14/15 MB plus the no-limit baseline.
//
// Paper behaviour to reproduce: with few memory-available nodes the swap
// servers are the bottleneck and execution time blows up (the smaller the
// limit, the worse); the bottleneck resolves by 8-16 nodes; limited runs
// stay well above the no-limit baseline because every fault costs ~2.3 ms.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv,
                           {{"quick", "sweep fewer points (2 limits x 3 node"
                                      " counts)"}});
  const bool quick = env.flags.get_bool("quick", false);

  const std::vector<double> limits_mb =
      quick ? std::vector<double>{12, 15} : std::vector<double>{12, 13, 14, 15};
  const std::vector<std::size_t> node_counts =
      quick ? std::vector<std::size_t>{1, 4, 16}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};

  // The no-limit baseline does not depend on the memory-node count (no
  // swap traffic); run it once, at the largest pool.
  hpa::HpaConfig base = env.config();
  base.memory_nodes = node_counts.back();
  std::fprintf(stderr, "[fig3] no-limit baseline...\n");
  const Time no_limit = env.run(base, "no_limit").pass(2)->duration;

  std::vector<std::string> header = {"memory nodes"};
  for (double limit : limits_mb) {
    header.push_back("limit " + TablePrinter::num(limit, 0) + "MB [s]");
  }
  header.push_back("no limit [s]");
  TablePrinter table(
      "Figure 3: execution time of HPA pass 2 [s] vs number of "
      "memory-available nodes (simple swapping)",
      header);

  for (std::size_t nodes : node_counts) {
    std::vector<std::string> row = {
        TablePrinter::integer(static_cast<std::int64_t>(nodes))};
    for (double limit : limits_mb) {
      hpa::HpaConfig cfg = env.config();
      cfg.memory_nodes = nodes;
      cfg.memory_limit_bytes = bench::mb(limit);
      cfg.policy = core::SwapPolicy::kRemoteSwap;
      std::fprintf(stderr, "[fig3] %zu memory nodes, %.0f MB limit...\n",
                   nodes, limit);
      const hpa::HpaResult r = env.run(
          cfg, bench::label("%zu_mem_nodes/%.0fMB", nodes, limit));
      row.push_back(bench::secs(r.pass(2)->duration));
    }
    row.push_back(bench::secs(no_limit));
    table.add_row(std::move(row));
  }
  env.finish(table, "fig3.csv");

  std::printf(
      "\npaper's Figure 3 shape: ~22,000 s at (12 MB, 1 node) falling to "
      "7,183 s at 16 nodes;\n757-4,674 s for 13-15 MB at 16 nodes; no-limit "
      "flat at ~247 s (all at D = 1M; this run is scaled by %.2f on D, so "
      "scan-proportional components shrink accordingly).\n",
      env.scale);
  return 0;
}
