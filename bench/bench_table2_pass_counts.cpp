// Table 2 reproduction: candidate (C) and large (L) itemset counts per pass.
//
// Paper setting (§3.3): 10,000,000 transactions, 5,000 items, minimum
// support 0.7% -> |L1| = 1023, C2 = C(1023,2) = 522,753, then a sharp
// collapse (L2 = 32, C3 = 19, ...). We run the same workload family at a
// configurable transaction scale and calibrate the support threshold to the
// paper's |L1| = 1023, which pins C2 to the same combinatorial explosion;
// the later passes depend on the synthetic data's correlation tail and are
// reported as measured.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"

using namespace rms;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"scale", "transaction scale vs the paper's 10M (default 0.01)"},
               {"target-l1", "|L1| to calibrate minsup to (default 1023)"},
               {"csv", "write results to this CSV path"}});
  const double scale = flags.get_double("scale", 0.01);
  const auto target_l1 =
      static_cast<std::size_t>(flags.get_int("target-l1", 1023));

  mining::QuestParams wl = mining::QuestParams::paper_table2(scale);
  std::fprintf(stderr, "[bench] generating %lld transactions...\n",
               static_cast<long long>(wl.num_transactions));
  mining::TransactionDb db = mining::QuestGenerator(wl).generate();

  // Calibrate minimum support to the paper's |L1|: the support threshold is
  // the frequency of the (target_l1)-th most frequent item.
  std::vector<std::int64_t> freq(wl.num_items, 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (mining::Item it : db.tx(t)) ++freq[it];
  }
  std::vector<std::int64_t> sorted = freq;
  std::sort(sorted.rbegin(), sorted.rend());
  const std::int64_t threshold = sorted[std::min(target_l1, sorted.size() - 1)];
  const double minsup =
      static_cast<double>(threshold) / static_cast<double>(db.size());
  std::fprintf(stderr, "[bench] calibrated minsup %.5f (count >= %lld)\n",
               minsup, static_cast<long long>(threshold));

  mining::AprioriOptions opt;
  opt.hash_lines = 800'000;
  const mining::AprioriResult r = mining::apriori(db, minsup, opt);

  // Paper Table 2 reference values.
  struct Ref {
    std::int64_t c;
    std::int64_t l;
  };
  const std::vector<Ref> paper = {{-1, 1023}, {522753, 32}, {19, 19},
                                  {7, 7},     {1, 0}};

  TablePrinter table(
      "Table 2: number of candidate (C) and large (L) itemsets at each pass"
      " -- measured vs paper",
      {"pass", "C (measured)", "L (measured)", "C (paper)", "L (paper)"});
  const std::size_t rows = std::max(r.passes.size(), paper.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::string c = "-", l = "-", pc = "-", pl = "-";
    if (i < r.passes.size()) {
      c = i == 0 ? "-" : TablePrinter::integer(r.passes[i].candidates);
      l = TablePrinter::integer(r.passes[i].large);
    }
    if (i < paper.size()) {
      pc = paper[i].c < 0 ? "-" : TablePrinter::integer(paper[i].c);
      pl = TablePrinter::integer(paper[i].l);
    }
    table.add_row({TablePrinter::integer(static_cast<std::int64_t>(i + 1)), c,
                   l, pc, pl});
  }
  table.print();
  const std::string csv = flags.get("csv", "");
  if (!csv.empty() && table.write_csv(csv)) {
    std::printf("(csv written to %s)\n", csv.c_str());
  }

  // The headline property: pass 2's candidate count explodes combinatorially
  // from |L1| while later passes collapse.
  if (r.passes.size() >= 2) {
    const std::int64_t l1 = r.passes[0].large;
    std::printf("\npass-2 explosion: C2 = C(|L1|,2) = %lld (paper: 522,753)\n",
                static_cast<std::int64_t>(l1 * (l1 - 1) / 2));
  }
  return 0;
}
