// Figure 4 reproduction: execution time of HPA pass 2 for the three
// over-limit policies as a function of the per-node memory usage limit
// (12-15 MB, 16 memory-available nodes):
//
//   - swapping out to hard disks (Seagate Barracuda 7,200 rpm),
//   - dynamic remote memory acquisition with simple swapping,
//   - dynamic remote memory acquisition with remote update operations.
//
// Paper behaviour: disk swapping is worst and blows up as the limit
// shrinks; simple remote swapping is much better but still grows; remote
// update stays near the no-limit baseline across the whole range.
//
// Extensions (beyond the paper's figure): the same disk sweep with the
// 12,000 rpm HITACHI DK3E1T the paper only cites spec numbers for, and the
// tiered backend (remote-first with a per-node remote budget, disk past it)
// which lands between simple swapping and disk swapping depending on how
// much of the working set the budget covers.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "disk/disk.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(
      argc, argv,
      {{"fine", "sweep 0.5 MB steps like the paper's x-axis"},
       {"no-ext", "skip the 12,000 rpm and tiered extension series"},
       {"limit-mb", "restrict the sweep to this one limit (smoke runs)"},
       {"tiered-budget-mb",
        "per-node remote-memory budget for the tiered series (default 2)"}});
  const bool fine = env.flags.get_bool("fine", false);
  const bool ext = !env.flags.get_bool("no-ext", false);
  const double tiered_budget_mb =
      env.flags.get_double("tiered-budget-mb", 2.0);

  std::vector<double> limits_mb;
  if (env.flags.has("limit-mb")) {
    limits_mb.push_back(env.flags.get_double("limit-mb", 13.0));
  } else {
    for (double v = 12.0; v <= 15.0 + 1e-9; v += fine ? 0.5 : 1.0) {
      limits_mb.push_back(v);
    }
  }

  std::fprintf(stderr, "[fig4] no-limit baseline...\n");
  const Time no_limit = env.run(env.config(), "no_limit").pass(2)->duration;

  auto run = [&](double limit, core::SwapPolicy policy,
                 bool fast_disk) -> Time {
    hpa::HpaConfig cfg = env.config();
    cfg.memory_limit_bytes = bench::mb(limit);
    cfg.policy = policy;
    if (policy == core::SwapPolicy::kTiered) {
      cfg.tiered_remote_budget_bytes = bench::mb(tiered_budget_mb);
    }
    if (fast_disk) {
      cfg.cluster.swap_disk = disk::DiskParams::dk3e1t_12000();
    }
    std::fprintf(stderr, "[fig4] %s%s at %.1f MB...\n",
                 core::to_string(policy), fast_disk ? " (12000rpm)" : "",
                 limit);
    return env
        .run(cfg, bench::label("%s%s/%.1fMB", core::to_string(policy),
                               fast_disk ? "_12000rpm" : "", limit))
        .pass(2)->duration;
  };

  std::vector<std::string> header = {"usage limit", "disk swap [s]",
                                     "simple swapping [s]",
                                     "remote update [s]", "no limit [s]"};
  if (ext) {
    header.insert(header.begin() + 2, "disk 12000rpm [s] (ext)");
    header.insert(header.end() - 1,
                  "tiered " + TablePrinter::num(tiered_budget_mb, 0) +
                      "MB [s] (ext)");
  }
  TablePrinter table(
      "Figure 4: comparison of the proposed methods -- execution time of "
      "pass 2 [s] vs memory usage limit (16 memory-available nodes)",
      header);

  for (double limit : limits_mb) {
    std::vector<std::string> row = {TablePrinter::num(limit, 1) + "MB"};
    row.push_back(bench::secs(run(limit, core::SwapPolicy::kDiskSwap, false)));
    if (ext) {
      row.push_back(
          bench::secs(run(limit, core::SwapPolicy::kDiskSwap, true)));
    }
    row.push_back(
        bench::secs(run(limit, core::SwapPolicy::kRemoteSwap, false)));
    row.push_back(
        bench::secs(run(limit, core::SwapPolicy::kRemoteUpdate, false)));
    if (ext) {
      row.push_back(bench::secs(run(limit, core::SwapPolicy::kTiered, false)));
    }
    row.push_back(bench::secs(no_limit));
    table.add_row(std::move(row));
  }
  env.finish(table, "fig4.csv");

  std::printf(
      "\npaper's Figure 4 shape (D = 1M): disk swapping worst and steepest "
      "(>12,000 s near 12 MB), simple swapping intermediate (7,183 s at "
      "12 MB), remote update flat and close to the 247 s baseline.\n");
  return 0;
}
