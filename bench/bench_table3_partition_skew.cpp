// Table 3 reproduction: the number of candidate 2-itemsets assigned to each
// of the 8 application execution nodes by the hash partitioning.
//
// Paper (§5.1): 4,871,881 candidate 2-itemsets spread as 582,149-641,243
// per node ("although the itemsets are assigned using a hash function, the
// numbers at each node are not equal"). Our FNV-based partitioning spreads
// more evenly; both the totals and the spread are reported.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv);

  hpa::HpaConfig cfg = env.config();
  const hpa::HpaResult r = env.run(cfg, "table3");
  const hpa::PassReport* p2 = r.pass(2);
  RMS_CHECK(p2 != nullptr);

  const std::vector<std::int64_t> paper = {602559, 641243, 582149, 614412,
                                           604851, 596359, 622679, 607629};

  TablePrinter table(
      "Table 3: candidate 2-itemsets per application node -- measured vs "
      "paper",
      {"node", "measured", "paper"});
  for (std::size_t i = 0; i < p2->candidates_per_node.size(); ++i) {
    table.add_row({TablePrinter::integer(static_cast<std::int64_t>(i + 1)),
                   TablePrinter::integer(p2->candidates_per_node[i]),
                   i < paper.size() ? TablePrinter::integer(paper[i]) : "-"});
  }
  std::int64_t total = 0, mn = p2->candidates_per_node[0], mx = mn;
  for (std::int64_t c : p2->candidates_per_node) {
    total += c;
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  table.add_row({"total", TablePrinter::integer(total), "4871881"});
  env.finish(table, "table3.csv");

  std::printf(
      "\nskew: min %lld / max %lld (%.2f%% spread; paper: 582,149/641,243 = "
      "9.6%% spread)\n",
      static_cast<long long>(mn), static_cast<long long>(mx),
      100.0 * static_cast<double>(mx - mn) / static_cast<double>(mn));
  std::printf(
      "per-node candidate memory at 24 B/itemset: %.2f-%.2f MB (paper: "
      "\"approximately 14-15 Mbytes ... at each node\")\n",
      static_cast<double>(mn) * 24.0 / 1e6, static_cast<double>(mx) * 24.0 / 1e6);
  return 0;
}
