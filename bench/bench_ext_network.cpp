// Extension ablation: interconnect dependence.
//
// The paper's premise is that a fast commodity network (155 Mbps ATM) makes
// remote memory competitive with local disk. This bench replays the
// Figure-4 comparison over three interconnects -- the paper's ATM, a
// 10 Mbps Ethernet (the cluster's control network), and an idealized
// near-zero-latency link -- to show where the crossover against disk
// swapping sits.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "net/network.hpp"

using namespace rms;

int main(int argc, char** argv) {
  bench::ExperimentEnv env(argc, argv, bench::with_limit_flag());
  const double limit = env.flags.get_double("limit-mb", 13.0);

  struct Link {
    const char* name;
    net::LinkParams params;
  };
  const std::vector<Link> links = {
      {"ethernet 10Mbps", net::LinkParams::ethernet10()},
      {"ATM 155Mbps (paper)", net::LinkParams::atm155()},
      {"ideal 1Gbps/20us", net::LinkParams{1'000'000'000, usec(20), 48}},
  };

  std::fprintf(stderr, "[network] disk-swap reference...\n");
  hpa::HpaConfig diskcfg = env.config();
  diskcfg.memory_limit_bytes = bench::mb(limit);
  diskcfg.policy = core::SwapPolicy::kDiskSwap;
  const Time disk_t = env.run(diskcfg, "disk_swap").pass(2)->duration;

  TablePrinter table(
      "Extension: interconnect ablation at limit " +
          TablePrinter::num(limit, 0) +
          " MB (disk-swap reference: " + bench::secs(disk_t) + " s)",
      {"link", "simple swapping [s]", "remote update [s]",
       "fault round trip [ms]", "beats disk?"});

  for (const Link& link : links) {
    Time swap_t = 0;
    Time update_t = 0;
    double fault_ms = 0;
    for (core::SwapPolicy policy :
         {core::SwapPolicy::kRemoteSwap, core::SwapPolicy::kRemoteUpdate}) {
      hpa::HpaConfig cfg = env.config();
      cfg.memory_limit_bytes = bench::mb(limit);
      cfg.policy = policy;
      cfg.cluster.link = link.params;
      std::fprintf(stderr, "[network] %s under %s...\n",
                   core::to_string(policy), link.name);
      const hpa::HpaResult r = env.run(
          cfg, bench::label("%s/%s", core::to_string(policy), link.name));
      if (policy == core::SwapPolicy::kRemoteSwap) {
        swap_t = r.pass(2)->duration;
        fault_ms = r.stats.summary("store.fault_ms").mean();
      } else {
        update_t = r.pass(2)->duration;
      }
    }
    table.add_row({link.name, bench::secs(swap_t), bench::secs(update_t),
                   TablePrinter::num(fault_ms, 2),
                   swap_t < disk_t ? "yes" : "no"});
  }
  // ---- RPC-window sweep (transport flow control) --------------------------
  // Pipelining end-of-pass fetches across holders overlaps request service
  // with transfer; the sweep shows how much of the determine phase the
  // window recovers on the paper's ATM link. Mining results are identical
  // at every window size.
  TablePrinter wtable(
      "Extension: RPC-window sweep on ATM 155Mbps at limit " +
          TablePrinter::num(limit, 0) + " MB",
      {"window", "simple swapping [s]", "remote update [s]",
       "determine phase [s]"});
  for (const int window : {1, 2, 4, 8}) {
    Time swap_t = 0;
    Time update_t = 0;
    Time determine_t = 0;
    for (core::SwapPolicy policy :
         {core::SwapPolicy::kRemoteSwap, core::SwapPolicy::kRemoteUpdate}) {
      hpa::HpaConfig cfg = env.config();
      cfg.memory_limit_bytes = bench::mb(limit);
      cfg.policy = policy;
      cfg.rpc_window = window;
      std::fprintf(stderr, "[network] %s at rpc window %d...\n",
                   core::to_string(policy), window);
      const hpa::HpaResult r = env.run(
          cfg, bench::label("%s/window%d", core::to_string(policy), window));
      if (policy == core::SwapPolicy::kRemoteSwap) {
        swap_t = r.pass(2)->duration;
      } else {
        update_t = r.pass(2)->duration;
        determine_t = r.pass(2)->phase(hpa::kDeterminePhase);
      }
    }
    wtable.add_row({TablePrinter::num(window, 0), bench::secs(swap_t),
                    bench::secs(update_t), bench::secs(determine_t)});
  }

  env.finish(table, "ext_network.csv");
  wtable.print();
  std::printf(
      "\nthe paper's argument quantified: remote memory wins exactly when "
      "the network fault round trip beats the ~13 ms disk access -- ATM "
      "does by ~5x; even 10 Mbps Ethernet's larger serialization delay "
      "still undercuts a 7,200 rpm disk for 4 KB lines.\n");
  return 0;
}
