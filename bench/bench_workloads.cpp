// bench_workloads: run any catalog workload end-to-end with the full
// observability stack (--trace-out / --metrics-out / --json-out /
// --profile-out) and a memory-limit/backend selection.
//
// The HPA benches each reproduce one paper table or figure; this harness is
// the workload-generic smoke driver: `--workload hpa | hash_join |
// hash_aggregate` selects from the runtime catalog (`--list-workloads`
// prints it), and every workload emits the same rmswap.run_artifact/v2
// shape, so tools/check_artifact.py validates all of them. HPA runs go
// through obs::RunObserver; the other workloads assemble the artifact from
// their runtime::PassTiming records directly — same schema, no hpa
// coupling.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "hpa/report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "workloads/hash_aggregate.hpp"
#include "workloads/hash_join.hpp"

using namespace rms;

namespace {

/// The observability sinks a non-HPA workload run wires up by hand (the
/// same wiring obs::RunObserver does for HPA configs).
struct Sinks {
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::MetricsSampler> metrics;
  std::unique_ptr<obs::PassProfiler> profiler;

  std::string trace_path;
  std::string metrics_path;
  std::string artifact_path;
  std::string profile_path;

  explicit Sinks(const Flags& flags)
      : trace_path(flags.get("trace-out", "")),
        metrics_path(flags.get("metrics-out", "")),
        artifact_path(flags.get("json-out", "")),
        profile_path(flags.get("profile-out", "")) {
    const bool profiling = !artifact_path.empty() || !profile_path.empty();
    if (!trace_path.empty() || profiling) {
      trace = std::make_unique<obs::TraceRecorder>();
    }
    if (profiling) {
      profiler = std::make_unique<obs::PassProfiler>();
      trace->set_profile_hook(profiler.get());
    }
    if (!metrics_path.empty() || !artifact_path.empty()) {
      metrics = std::make_unique<obs::MetricsSampler>();
    }
  }

  void begin_run(const std::string& label) {
    if (trace) trace->begin_run(label);
    if (metrics) metrics->begin_run(label);
    if (profiler) profiler->begin_run(label);
  }
  void end_run() {
    if (profiler) profiler->end_run(trace->dropped());
  }

  bool write(const std::string& artifact_json) const {
    bool ok = true;
    const auto emit = [&ok](const char* what, const std::string& path,
                            bool wrote) {
      if (wrote) {
        std::printf("wrote %s: %s\n", what, path.c_str());
      } else {
        std::fprintf(stderr, "FAILED writing %s: %s\n", what, path.c_str());
        ok = false;
      }
    };
    if (trace && !trace_path.empty()) {
      emit("chrome trace", trace_path, trace->write_chrome_trace(trace_path));
    }
    if (metrics && !metrics_path.empty()) {
      emit("metrics series", metrics_path, metrics->write_json(metrics_path));
    }
    if (!artifact_path.empty()) {
      emit("run artifact", artifact_path,
           obs::write_file(artifact_path, artifact_json));
    }
    if (profiler && !profile_path.empty()) {
      emit("attribution profile", profile_path,
           obs::write_file(profile_path,
                           obs::profile_file_json(profiler->runs())));
    }
    return ok;
  }
};

/// One run of a non-HPA workload as a rmswap.run_artifact/v2 run section:
/// label/workload/config/passes (phase breakdown keyed by the registry) plus
/// the merged stats and, when profiling, the attribution profile.
std::string workload_artifact_json(
    const std::string& name, const std::string& label,
    const std::string& description, Time total_time,
    const std::vector<runtime::PassTiming>& passes,
    const std::vector<std::string>& phase_names, std::int64_t pagefaults,
    bool exact, const StatsRegistry& stats, const Sinks& sinks) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "rmswap.run_artifact/v2");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.kv("label", label);
  w.kv("workload", name);
  w.key("config");
  w.begin_object();
  w.kv("description", description);
  w.end_object();
  w.kv("completed", true);
  w.kv("total_time_s", to_seconds(total_time));
  w.kv("exact", exact);
  w.kv("pagefaults", pagefaults);
  w.key("phase_names");
  w.begin_array();
  for (const std::string& phase : phase_names) w.value(phase);
  w.end_array();
  w.key("passes");
  w.begin_array();
  for (const runtime::PassTiming& p : passes) {
    w.begin_object();
    w.kv("k", static_cast<std::uint64_t>(p.pass));
    w.kv("duration_s", to_seconds(p.duration()));
    if (!p.phase_end.empty()) {
      w.key("phases");
      w.begin_object();
      for (std::size_t i = 0; i < p.phase_end.size(); ++i) {
        w.kv(phase_names[i] + "_s", to_seconds(p.phase_time(i)));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  obs::stats_json(w, stats);
  // No fault injection in the generic driver (yet): an empty failover
  // section keeps the artifact shape uniform across workloads.
  w.key("failover");
  w.begin_object();
  w.end_object();
  if (sinks.metrics && !sinks.metrics->runs().empty()) {
    // The sampled series file has the full data; the artifact only needs
    // to exist for every requested sink, so embed just the profile.
  }
  if (sinks.profiler && !sinks.profiler->runs().empty()) {
    w.key("profile");
    obs::profile_json(w, sinks.profiler->runs().back());
  }
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

void print_phase_summary(const std::vector<runtime::PassTiming>& passes,
                         const std::vector<std::string>& phase_names) {
  std::vector<std::string> headers = {"pass", "time [s]"};
  for (const std::string& name : phase_names) headers.push_back(name + " [s]");
  TablePrinter t("per-pass phase breakdown", headers);
  for (const runtime::PassTiming& p : passes) {
    std::vector<std::string> row = {
        TablePrinter::integer(static_cast<std::int64_t>(p.pass)),
        TablePrinter::num(to_seconds(p.duration()), 2)};
    for (std::size_t i = 0; i < phase_names.size(); ++i) {
      row.push_back(p.phase_end.empty()
                        ? "-"
                        : TablePrinter::num(to_seconds(p.phase_time(i)), 2));
    }
    t.add_row(row);
  }
  t.print();
}

int run_hpa_workload(const Flags& flags) {
  // A small paper-shaped mining run: the full HPA pipeline (all passes) at
  // a bench-friendly scale, through the standard RunObserver.
  const double scale = flags.get_double("scale", 0.01);
  mining::QuestParams wl = mining::QuestParams::paper_experiment(scale);
  const mining::TransactionDb db = mining::QuestGenerator(wl).generate();

  hpa::HpaConfig cfg;
  cfg.app_nodes = static_cast<std::size_t>(flags.get_int("app-nodes", 8));
  cfg.memory_nodes =
      static_cast<std::size_t>(flags.get_int("memory-nodes", 16));
  cfg.workload = wl;
  cfg.shared_db = &db;
  cfg.min_support = 0.00025;
  cfg.hash_lines = 800'000;
  cfg.max_k = 2;
  const double limit_mb = flags.get_double("limit-mb", -1.0);
  if (limit_mb >= 0) {
    cfg.memory_limit_bytes = bench::mb(limit_mb);
    cfg.policy = bench::backend_policy(flags.get("backend", "remote"));
  }

  auto observer = obs::RunObserver::from_paths(
      {flags.get("trace-out", ""), flags.get("metrics-out", ""),
       flags.get("json-out", ""), flags.get("profile-out", "")});
  const std::string label = bench::label("hpa/%s", hpa::describe(cfg).c_str());
  if (observer) observer->begin_run(cfg, label);
  const hpa::HpaResult r = hpa::run_hpa(cfg);
  if (observer) observer->end_run(r);
  hpa::print_report(r, observer ? observer->last_profile() : nullptr);
  if (observer && !observer->write()) return 1;
  return 0;
}

int run_hash_join_workload(const Flags& flags) {
  Sinks sinks(flags);
  workloads::HashJoinConfig cfg;
  cfg.build_rows = flags.get_int("rows", 40'000);
  cfg.probe_rows = flags.get_int("rows", 40'000);
  cfg.memory_limit_bytes = flags.get_int("limit-kb", 192) * 1000;
  cfg.policy = bench::backend_policy(flags.get("backend", "remote"));
  cfg.trace = sinks.trace.get();
  cfg.metrics = sinks.metrics.get();
  cfg.profiler = sinks.profiler.get();
  const std::string label =
      bench::label("hash_join/%s", core::to_string(cfg.policy));
  sinks.begin_run(label);
  const workloads::HashJoinResult r = workloads::run_hash_join(cfg);
  sinks.end_run();

  std::printf("hash_join (%s): output %llu vs reference %llu (%s), "
              "%.1f virtual s, %lld pagefaults\n",
              core::to_string(cfg.policy),
              static_cast<unsigned long long>(r.output),
              static_cast<unsigned long long>(r.expected),
              r.exact() ? "exact" : "MISMATCH!", to_seconds(r.total_time),
              static_cast<long long>(r.pagefaults));
  print_phase_summary(r.passes, r.phase_names);
  const std::string artifact = workload_artifact_json(
      "hash_join", label,
      bench::label("%lld build x %lld probe rows, limit %lld B/node",
                   static_cast<long long>(cfg.build_rows),
                   static_cast<long long>(cfg.probe_rows),
                   static_cast<long long>(cfg.memory_limit_bytes)),
      r.total_time, r.passes, r.phase_names, r.pagefaults, r.exact(), r.stats,
      sinks);
  if (!sinks.write(artifact)) return 1;
  return r.exact() ? 0 : 1;
}

int run_hash_aggregate_workload(const Flags& flags) {
  Sinks sinks(flags);
  workloads::HashAggregateConfig cfg;
  cfg.workload =
      mining::QuestParams::paper_experiment(flags.get_double("scale", 0.003));
  const double limit_mb = flags.get_double("limit-mb", 0.02);
  if (limit_mb >= 0) {
    cfg.memory_limit_bytes = bench::mb(limit_mb);
    cfg.policy = bench::backend_policy(flags.get("backend", "remote"));
  }
  cfg.validate_invariants = flags.get_bool("validate", false);
  cfg.trace = sinks.trace.get();
  cfg.metrics = sinks.metrics.get();
  cfg.profiler = sinks.profiler.get();
  const std::string label =
      bench::label("hash_aggregate/%s", core::to_string(cfg.policy));
  sinks.begin_run(label);
  const workloads::HashAggregateResult r = workloads::run_hash_aggregate(cfg);
  sinks.end_run();

  std::printf("hash_aggregate (%s): %zu groups (%s), %.1f virtual s, "
              "%lld pagefaults, %lld swap-outs, %lld updates\n",
              core::to_string(cfg.policy), r.groups.size(),
              r.exact ? "exact" : "MISMATCH!", to_seconds(r.total_time),
              static_cast<long long>(r.pagefaults),
              static_cast<long long>(r.swap_outs),
              static_cast<long long>(r.updates_sent));
  print_phase_summary(r.passes, r.phase_names);
  const std::string artifact = workload_artifact_json(
      "hash_aggregate", label,
      bench::label("group-by over D=%lld, limit %lld B/node",
                   static_cast<long long>(cfg.workload.num_transactions),
                   static_cast<long long>(cfg.memory_limit_bytes)),
      r.total_time, r.passes, r.phase_names, r.pagefaults, r.exact, r.stats,
      sinks);
  if (!sinks.write(artifact)) return 1;
  return r.exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      bench::with_workload_flags(bench::with_policy_flags(
          {{"scale", "hpa/hash_aggregate: transaction-count scale"},
           {"rows", "hash_join: rows per side (default 40000)"},
           {"limit-kb", "hash_join: per-node build-table limit (default 192)"},
           {"app-nodes", "application execution nodes"},
           {"memory-nodes", "memory-available nodes"},
           {"validate", "run store invariant checks at phase barriers"},
           {"trace-out", "write a Chrome trace_event JSON here"},
           {"metrics-out", "write per-node gauge time-series JSON here"},
           {"json-out", "write the machine-readable run artifact here"},
           {"profile-out",
            "write the per-pass attribution profile JSON here"}})));
  const std::string name = bench::parse_workload_flag(flags);
  if (name == "hpa") return run_hpa_workload(flags);
  if (name == "hash_join") return run_hash_join_workload(flags);
  if (name == "hash_aggregate") return run_hash_aggregate_workload(flags);
  std::fprintf(stderr, "workload '%s' has no driver\n", name.c_str());
  return 2;
}
