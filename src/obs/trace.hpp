// TraceRecorder: typed, virtual-time-stamped event spans and instants.
//
// The paper's whole argument is a latency story (a 13 ms disk fault against
// a sub-millisecond remote-memory fault), but aggregate counters cannot show
// *where* time goes during a pass — a swap storm, an RPC retry burst, or the
// tiered budget filling up are invisible in end-of-run totals. Components
// therefore record typed events against the virtual clock:
//
//   spans    — swap-out, fault-in, RPC call, memory-server request,
//              migration, per-pass workload phases (named via the phase
//              registry: register_phase())
//   instants — RPC retries/failures, suspicions, orphans, promotions,
//              degraded evictions, tiered spills, update batches, barriers
//
// Recording is passive: no virtual-time charges, no awaits, no hot-path
// string formatting (events carry an EventKind and two integer args; names
// materialize only at export). Every instrumented component holds a
// `TraceRecorder*` that defaults to nullptr, so a disabled run does a single
// pointer test per site and is otherwise untouched.
//
// Memory is bounded: a ring buffer of `capacity` events; once full, the
// oldest events are overwritten and counted in `dropped()` (the tail of the
// run is the interesting part when a ring fills).
//
// Export is Chrome `trace_event` JSON (write_chrome_trace): one track (tid)
// per cluster node plus a "phases" track, one process (pid) per recorded
// run, so multi-run bench sweeps open side by side in chrome://tracing or
// https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace rms::obs {

enum class EventKind : std::uint8_t {
  // Spans.
  kSwapOut,        // line eviction through the backend (arg0 line, arg1 bytes)
  kFaultIn,        // synchronous swap-in (arg0 line, arg1 bytes)
  kRpc,            // deadline-bounded RPC (arg0 peer, arg1 attempts)
  kServe,          // memory-server request (arg0 request kind, arg1 owner)
  kMigrate,        // migrate_away directive (arg0 holder, arg1 lines moved)
  kPass,           // one workload pass (arg0 k)
  kPhase,          // one named workload phase (arg0 k, arg1 phase id from
                   // register_phase; replaces the v1 build/count/determine
                   // kinds — kinds after this point renumbered vs /v1)
  // Instants.
  kRpcRetry,       // attempts beyond the first (arg0 peer, arg1 retries)
  kRpcFailed,      // every attempt timed out (arg0 peer, arg1 attempts)
  kSuspicion,      // peer declared dead (arg0 peer)
  kOrphan,         // line restarted empty (arg0 line, arg1 entries lost)
  kPromote,        // backup promoted to primary (arg0 line, arg1 backup)
  kDegraded,       // eviction degraded to local disk (arg0 line, arg1 bytes)
  kTieredSpill,    // tiered budget full, spilled to disk (arg0 line, arg1 bytes)
  kReplicaStore,   // replica pushed (arg0 line, arg1 backup holder)
  kUpdateBatch,    // one-way update batch sent (arg0 holder, arg1 ops)
  kBarrier,        // phase-barrier arrival (arg0 k)
  kChecksumMismatch,  // fetched payload failed verification (arg0 line,
                      // arg1 holder)
  kQuarantine,     // holder quarantined for corruption (arg0 node, arg1 strikes)
  kReReplicate,    // redundancy restored (arg0 line, arg1 new backup)
  kPlacement,      // broker destination decision (arg0 node or -1, arg1 bytes)
  kStall,          // instant: sender blocked on a window credit (arg0 peer,
                   // arg1 in-flight)
  kCompute,        // span: CPU charge incl. queueing (profiler feed — too hot
                   // for the ring, delivered via ProfileHook::on_busy)
  kDiskIo,         // span: disk access incl. arm queueing (profiler feed,
                   // arg0 bytes)
  kReclaim,        // span: scheduler-driven recall of donated capacity from
                   // one holder (arg0 holder, arg1 bytes freed); recorded on
                   // the victim tenant's app-node track
  kJobAdmit,       // instant: scheduler admitted a job (arg0 job, arg1 tenant)
  kJobDone,        // instant: job completed (arg0 job, arg1 tenant)
  kJobShed,        // instant: job shed past its admission deadline
                   // (arg0 job, arg1 tenant)
};

struct TraceEvent {
  Time start = 0;
  Time duration = -1;  // < 0: instant
  std::int32_t track = 0;  // node id; kPhaseTrack for the run-phase track
  std::int32_t run = 0;    // exported as the Chrome pid
  EventKind kind = EventKind::kBarrier;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::int64_t arg2 = 0;   // kRpc: service-tag annotation (core::rpc_op)
};

/// Push-time event sink. A TraceRecorder with a hook forwards every event to
/// it *before* ring placement, so ring overflow can never lose an event on
/// the analysis side (the exported trace file still drops; see dropped()).
/// Node/Disk additionally feed CPU charges and disk accesses — far too hot
/// for the ring — straight to the hook as busy intervals.
///
/// Hook implementations must be passive (no awaits, no charges, no
/// randomness): they run inside instrumented hot paths and must not perturb
/// virtual time. obs::PassProfiler is the canonical implementation.
class ProfileHook {
 public:
  virtual ~ProfileHook() = default;
  /// Every recorded span/instant, in record order.
  virtual void on_event(const TraceEvent& ev) = 0;
  /// A busy interval bypassing the ring. `kind` is kCompute or kDiskIo.
  virtual void on_busy(std::int32_t track, EventKind kind, Time start,
                       Time end) = 0;
  /// A phase name registered with the recorder (`id` is the kPhase arg1).
  /// Called once per distinct name, in id order; also replayed when the
  /// hook attaches after registration.
  virtual void on_phase(std::int64_t id, const std::string& name) {
    (void)id;
    (void)name;
  }
};

class TraceRecorder {
 public:
  /// Synthetic track for pass/phase spans (no single node owns a barrier).
  static constexpr std::int32_t kPhaseTrack = -1;

  explicit TraceRecorder(std::size_t capacity = 1 << 20);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Start a new run section (bench sweeps record several configurations
  /// into one recorder; each run exports as its own Chrome process). The
  /// first events recorded without begin_run land in an implicit run 0.
  void begin_run(const std::string& label);

  void span(EventKind kind, std::int32_t track, Time start, Time end,
            std::int64_t arg0 = 0, std::int64_t arg1 = 0,
            std::int64_t arg2 = 0) {
    push(TraceEvent{start, end - start, track, run_, kind, arg0, arg1, arg2});
  }
  void instant(EventKind kind, std::int32_t track, Time at,
               std::int64_t arg0 = 0, std::int64_t arg1 = 0) {
    push(TraceEvent{at, -1, track, run_, kind, arg0, arg1, 0});
  }

  /// Forward every subsequent event to `hook` at push time (before the ring,
  /// so a full ring cannot lose it). Already-registered phase names replay
  /// to the new hook so attach order does not matter. Null detaches.
  void set_profile_hook(ProfileHook* hook);
  ProfileHook* profile_hook() const { return hook_; }

  /// Intern a workload phase name, returning the id kPhase spans carry in
  /// arg1. Idempotent by name (re-registering returns the existing id), so
  /// ids are stable across the runs of a bench sweep. Forwards new names to
  /// the profile hook (ProfileHook::on_phase).
  std::int64_t register_phase(const std::string& name);
  /// Registered phase names, indexed by id.
  const std::vector<std::string>& phase_names() const { return phase_names_; }

  // ---- Introspection / export ----
  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events recorded over the recorder's lifetime.
  std::uint64_t recorded() const { return total_; }
  /// Events overwritten because the ring was full (oldest-first).
  std::uint64_t dropped() const;
  /// i-th retained event in record order (0 = oldest retained).
  const TraceEvent& event(std::size_t i) const;
  const std::vector<std::string>& run_labels() const { return run_labels_; }

  /// Serialize to Chrome trace_event JSON (the whole recorder, all runs).
  std::string chrome_trace_json() const;
  /// chrome_trace_json() to a file; false on IO error.
  bool write_chrome_trace(const std::string& path) const;

  void clear();

  /// Human-readable name/category for one kind (export + tests).
  static const char* kind_name(EventKind kind);
  static const char* kind_category(EventKind kind);

 private:
  void push(const TraceEvent& ev) {
    if (hook_ != nullptr) hook_->on_event(ev);
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = ev;
    ++total_;
  }

  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
  std::int32_t run_ = 0;
  std::vector<std::string> run_labels_;
  std::vector<std::string> phase_names_;
  ProfileHook* hook_ = nullptr;
};

}  // namespace rms::obs
