#include "obs/artifact.hpp"

#include <cstdio>
#include <utility>

#include "hpa/report.hpp"
#include "obs/json.hpp"

namespace rms::obs {

void stats_json(JsonWriter& w, const StatsRegistry& stats) {
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : stats.counters()) {
    if (value == 0) continue;
    w.kv(name, value);
  }
  w.end_object();

  w.key("summaries");
  w.begin_object();
  for (const auto& [name, s] : stats.summaries()) {
    if (s.count() == 0) continue;
    w.key(name);
    w.begin_object();
    w.kv("count", s.count());
    w.kv("sum", s.sum());
    w.kv("min", s.min());
    w.kv("max", s.max());
    w.kv("mean", s.mean());
    w.end_object();
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : stats.histograms()) {
    if (h.count() == 0) continue;
    w.key(name);
    w.begin_object();
    w.kv("count", h.count());
    w.kv("p50", h.percentile(0.50));
    w.kv("p95", h.percentile(0.95));
    w.kv("p99", h.percentile(0.99));
    w.kv("mean", h.summary().mean());
    w.kv("max", h.summary().max());
    w.end_object();
  }
  w.end_object();
}

namespace {

void config_json(JsonWriter& w, const hpa::HpaConfig& cfg) {
  w.begin_object();
  w.kv("description", hpa::describe(cfg));
  w.kv("app_nodes", static_cast<std::uint64_t>(cfg.app_nodes));
  w.kv("memory_nodes", static_cast<std::uint64_t>(cfg.memory_nodes));
  w.kv("policy", core::to_string(cfg.policy));
  w.kv("placement", placement::policy_name(cfg.placement));
  w.kv("memory_limit_bytes", cfg.memory_limit_bytes);
  w.kv("tiered_remote_budget_bytes", cfg.tiered_remote_budget_bytes);
  w.kv("min_support", cfg.min_support);
  w.kv("num_transactions", cfg.workload.num_transactions);
  w.kv("hash_lines", static_cast<std::uint64_t>(cfg.hash_lines));
  w.kv("message_block_bytes", cfg.message_block_bytes);
  w.kv("monitor_interval_s", to_seconds(cfg.monitor_interval));
  w.kv("replicate_k", cfg.replicate_k);
  w.kv("remote_determination", cfg.remote_determination);
  w.kv("crashes", static_cast<std::uint64_t>(cfg.crashes.size()));
  w.kv("withdrawals", static_cast<std::uint64_t>(cfg.withdrawals.size()));
  w.kv("corruption_episodes", static_cast<std::uint64_t>(cfg.corruption.size()));
  w.kv("quarantine_after", cfg.quarantine_after);
  w.kv("integrity_disk_shadow", cfg.integrity_disk_shadow);
  w.end_object();
}

void per_node_json(JsonWriter& w, std::string_view key,
                   const std::vector<std::int64_t>& values) {
  w.key(key);
  w.begin_array();
  for (const std::int64_t v : values) w.value(v);
  w.end_array();
}

void pass_json(JsonWriter& w, const hpa::PassReport& p,
               const std::vector<std::string>& phase_names) {
  w.begin_object();
  w.kv("k", static_cast<std::uint64_t>(p.k));
  w.kv("candidates", p.candidates_global);
  w.kv("large", p.large_global);
  w.kv("duration_s", to_seconds(p.duration));
  if (!p.phase_time.empty()) {
    // Keyed by the runtime phase registry so the artifact cannot drift
    // from the phases the workload actually ran (empty for pass 1).
    w.key("phases");
    w.begin_object();
    for (std::size_t i = 0; i < p.phase_time.size(); ++i) {
      const std::string name =
          i < phase_names.size() ? phase_names[i]
                                 : "phase" + std::to_string(i);
      w.kv(name + "_s", to_seconds(p.phase_time[i]));
    }
    w.end_object();
  }
  w.kv("max_pagefaults", p.max_pagefaults());
  per_node_json(w, "candidates_per_node", p.candidates_per_node);
  per_node_json(w, "pagefaults_per_node", p.pagefaults_per_node);
  per_node_json(w, "swap_outs_per_node", p.swap_outs_per_node);
  per_node_json(w, "updates_per_node", p.updates_per_node);
  w.end_object();
}

void failover_json(JsonWriter& w, const core::FailoverStats& f) {
  w.begin_object();
  w.kv("suspicions", f.suspicions);
  w.kv("rpc_retries", f.rpc_retries);
  w.kv("deadline_misses", f.deadline_misses);
  w.kv("orphaned_lines", f.orphaned_lines);
  w.kv("orphaned_entries", f.orphaned_entries);
  w.kv("promoted_lines", f.promoted_lines);
  w.kv("degraded_evictions", f.degraded_evictions);
  w.kv("replicas_stored", f.replicas_stored);
  w.kv("updates_mirrored", f.updates_mirrored);
  w.kv("lost_update_ops", f.lost_update_ops);
  w.end_object();
}

void integrity_json(JsonWriter& w, const core::IntegrityStats& g) {
  w.begin_object();
  w.kv("checksum_mismatches", g.checksum_mismatches);
  w.kv("repaired_from_replica", g.repaired_from_replica);
  w.kv("repaired_from_disk", g.repaired_from_disk);
  w.kv("lines_lost", g.lines_lost);
  w.kv("re_replications", g.re_replications);
  w.kv("quarantines", g.quarantines);
  w.end_object();
}

void metrics_run_json(JsonWriter& w, const MetricsSampler::Run& run) {
  w.begin_object();
  w.key("series");
  w.begin_array();
  for (const MetricsSampler::Series& s : run.series) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("node", s.node);
    w.end_object();
  }
  w.end_array();
  w.key("t_s");
  w.begin_array();
  for (const Time t : run.at) w.value(to_seconds(t));
  w.end_array();
  w.key("samples");
  w.begin_array();
  for (const std::vector<double>& row : run.rows) {
    w.begin_array();
    for (const double v : row) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

RunObserver::RunObserver(Paths paths) : paths_(std::move(paths)) {
  // The artifact embeds the per-pass attribution profile, so --json-out
  // alone enables profiling; the profiler in turn needs the recorder as its
  // event source (the recorder's ring is never read for it — events are
  // tapped at push time).
  const bool profiling = !paths_.artifact.empty() || !paths_.profile.empty();
  if (!paths_.trace.empty() || profiling) {
    trace_ = std::make_unique<TraceRecorder>();
  }
  if (profiling) {
    profiler_ = std::make_unique<PassProfiler>();
    trace_->set_profile_hook(profiler_.get());
  }
  // The artifact embeds the sampled series, so --json-out alone still
  // enables the sampler (gauge reads are O(nodes) per interval — cheap).
  if (!paths_.metrics.empty() || !paths_.artifact.empty()) {
    metrics_ = std::make_unique<MetricsSampler>();
  }
}

std::unique_ptr<RunObserver> RunObserver::from_paths(Paths paths) {
  if (paths.trace.empty() && paths.metrics.empty() && paths.artifact.empty() &&
      paths.profile.empty()) {
    return nullptr;
  }
  return std::make_unique<RunObserver>(std::move(paths));
}

void RunObserver::begin_run(hpa::HpaConfig& cfg, const std::string& label) {
  cfg.trace = trace_.get();
  cfg.metrics = metrics_.get();
  cfg.profiler = profiler_.get();
  if (trace_) trace_->begin_run(label);
  if (metrics_) metrics_->begin_run(label);
  if (profiler_) {
    profiler_->begin_run(label);
    drop_mark_ = trace_->dropped();
  }
  RunRecord rec;
  rec.label = label;
  rec.config = cfg;
  rec.config.shared_db = nullptr;
  rec.config.trace = nullptr;
  rec.config.metrics = nullptr;
  rec.config.profiler = nullptr;
  runs_.push_back(std::move(rec));
}

void RunObserver::end_run(const hpa::HpaResult& result) {
  RMS_CHECK_MSG(!runs_.empty(), "end_run without begin_run");
  if (profiler_) profiler_->end_run(trace_->dropped() - drop_mark_);
  RunRecord& rec = runs_.back();
  rec.have_result = true;
  rec.passes = result.passes;
  rec.phase_names = result.phase_names;
  rec.total_time = result.total_time;
  rec.stats = result.stats;
  rec.failover = result.failover;
  rec.integrity = result.integrity;
}

std::string RunObserver::artifact_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rmswap.run_artifact/v2");
  w.key("runs");
  w.begin_array();
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const RunRecord& rec = runs_[i];
    w.begin_object();
    w.kv("label", rec.label);
    w.kv("workload", "hpa");
    w.key("config");
    config_json(w, rec.config);
    w.kv("completed", rec.have_result);
    if (rec.have_result) {
      w.kv("total_time_s", to_seconds(rec.total_time));
      w.key("phase_names");
      w.begin_array();
      for (const std::string& name : rec.phase_names) w.value(name);
      w.end_array();
      w.key("passes");
      w.begin_array();
      for (const hpa::PassReport& p : rec.passes) {
        pass_json(w, p, rec.phase_names);
      }
      w.end_array();
      stats_json(w, rec.stats);
      w.key("failover");
      failover_json(w, rec.failover);
      w.key("integrity");
      integrity_json(w, rec.integrity);
    }
    if (metrics_ && i < metrics_->runs().size()) {
      w.key("metrics");
      metrics_run_json(w, metrics_->runs()[i]);
    }
    if (profiler_ && i < profiler_->runs().size()) {
      w.key("profile");
      profile_json(w, profiler_->runs()[i]);
    }
    w.end_object();
  }
  w.end_array();
  // Only when a trace *file* was requested: --json-out alone now creates the
  // recorder (as the profiler's event source), and stamping its ring totals
  // here would perturb artifacts that never asked for tracing.
  if (trace_ && !paths_.trace.empty()) {
    w.key("trace");
    w.begin_object();
    w.kv("recorded", trace_->recorded());
    w.kv("dropped", trace_->dropped());
    w.end_object();
  }
  w.end_object();
  return w.str();
}

bool RunObserver::write() const {
  bool ok = true;
  const auto emit = [&ok](const char* what, const std::string& path,
                          bool wrote) {
    if (wrote) {
      std::printf("wrote %s: %s\n", what, path.c_str());
    } else {
      std::fprintf(stderr, "FAILED writing %s: %s\n", what, path.c_str());
      ok = false;
    }
  };
  if (trace_ && !paths_.trace.empty()) {
    emit("chrome trace", paths_.trace, trace_->write_chrome_trace(paths_.trace));
  }
  if (metrics_ && !paths_.metrics.empty()) {
    emit("metrics series", paths_.metrics, metrics_->write_json(paths_.metrics));
  }
  if (!paths_.artifact.empty()) {
    emit("run artifact", paths_.artifact,
         write_file(paths_.artifact, artifact_json()));
  }
  if (profiler_ && !paths_.profile.empty()) {
    emit("attribution profile", paths_.profile,
         write_file(paths_.profile, profile_file_json(profiler_->runs())));
  }
  return ok;
}

}  // namespace rms::obs
