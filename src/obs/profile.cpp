#include "obs/profile.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace rms::obs {

namespace {

const char* kCategoryNames[kProfileCategories] = {
    "fault_in", "swap_out", "migrate",      "serve",        "rpc",
    "stream",   "disk_io",  "compute",      "barrier_wait", "unattributed",
};

/// Transport `op` annotation names: index 0 is the untagged default, then
/// 1 + core::MemRequest::Kind in declaration order. profile_test cross-checks
/// this table against core::rpc_op/core::to_string so obs/ need not include
/// the protocol header.
const char* kRpcOpNames[] = {
    "other",         "swap_out",      "swap_in",      "update_batch",
    "fetch",         "migrate_directive", "migrate_data", "replica_store",
    "replica_promote", "replica_drop", "ping",         "replica_sync",
};

/// Sweep category for a span kind; kProfileCategories = not attributable.
std::size_t category_of(EventKind kind) {
  switch (kind) {
    case EventKind::kFaultIn:
      return static_cast<std::size_t>(ProfileCategory::kFaultIn);
    case EventKind::kSwapOut:
      return static_cast<std::size_t>(ProfileCategory::kSwapOut);
    case EventKind::kMigrate:
      return static_cast<std::size_t>(ProfileCategory::kMigrate);
    case EventKind::kServe:
      return static_cast<std::size_t>(ProfileCategory::kServe);
    case EventKind::kRpc:
      return static_cast<std::size_t>(ProfileCategory::kRpc);
    case EventKind::kUpdateBatch:
      return static_cast<std::size_t>(ProfileCategory::kStream);
    case EventKind::kDiskIo:
      return static_cast<std::size_t>(ProfileCategory::kDiskIo);
    case EventKind::kCompute:
      return static_cast<std::size_t>(ProfileCategory::kCompute);
    default:
      return kProfileCategories;
  }
}

bool slow_table_kind(EventKind kind) {
  switch (kind) {
    case EventKind::kFaultIn:
    case EventKind::kSwapOut:
    case EventKind::kMigrate:
    case EventKind::kServe:
    case EventKind::kRpc:
    case EventKind::kUpdateBatch:
    case EventKind::kDiskIo:
      return true;
    default:
      // kCompute is excluded: charges arrive in artificial scheduler-sized
      // chunks, so "slowest compute" would rank an implementation detail.
      return false;
  }
}

/// One clipped busy interval on a node's timeline.
struct Interval {
  Time start;
  Time end;
  std::uint8_t cat;  // index into ProfileCategory, < kBarrierWait index
};

/// Priority boundary sweep over [s, e): at every instant the lowest category
/// index active owns the time; instants with nothing active accrue to
/// kUnattributed. Exact in integer ns: the emitted segments partition
/// [s, e), so out[] sums to exactly e - s (plus whatever it already held).
void sweep(const std::vector<Interval>& ivs, Time s, Time e,
           std::array<Time, kProfileCategories>& out) {
  if (e <= s) return;
  struct Point {
    Time pos;
    std::uint8_t cat;
    std::int8_t delta;
  };
  std::vector<Point> pts;
  pts.reserve(ivs.size() * 2);
  for (const Interval& iv : ivs) {
    const Time a = std::max(iv.start, s);
    const Time b = std::min(iv.end, e);
    if (a >= b) continue;
    pts.push_back(Point{a, iv.cat, +1});
    pts.push_back(Point{b, iv.cat, -1});
  }
  std::sort(pts.begin(), pts.end(),
            [](const Point& x, const Point& y) { return x.pos < y.pos; });

  std::array<std::int64_t, kProfileCategories> active{};
  const auto winner = [&active]() -> std::size_t {
    for (std::size_t c = 0; c < kProfileCategories; ++c) {
      if (active[c] > 0) return c;
    }
    return static_cast<std::size_t>(ProfileCategory::kUnattributed);
  };
  Time cursor = s;
  std::size_t i = 0;
  while (i < pts.size()) {
    const Time pos = pts[i].pos;
    if (pos > cursor) {
      out[winner()] += pos - cursor;
      cursor = pos;
    }
    // Apply every delta at this position before measuring the next segment.
    while (i < pts.size() && pts[i].pos == pos) {
      active[pts[i].cat] += pts[i].delta;
      ++i;
    }
  }
  if (cursor < e) out[winner()] += e - cursor;
}

}  // namespace

const char* category_name(ProfileCategory c) {
  const auto idx = static_cast<std::size_t>(c);
  RMS_CHECK(idx < kProfileCategories);
  return kCategoryNames[idx];
}

const char* rpc_op_name(std::int64_t op) {
  constexpr auto kN =
      static_cast<std::int64_t>(sizeof(kRpcOpNames) / sizeof(kRpcOpNames[0]));
  return (op >= 0 && op < kN) ? kRpcOpNames[op] : "unknown";
}

Time NodeProfile::total() const {
  Time sum = 0;
  for (const Time t : time) sum += t;
  return sum;
}

const NodeProfile* PassProfile::node_profile(std::int32_t node) const {
  for (const NodeProfile& n : nodes) {
    if (n.node == node) return &n;
  }
  return nullptr;
}

PassProfiler::PassProfiler(Options options) : options_(options) {
  RMS_CHECK(options_.max_buffered_events > 0);
}

RunProfile& PassProfiler::current() {
  if (runs_.empty()) runs_.emplace_back();  // implicit unlabeled run
  return runs_.back();
}

void PassProfiler::begin_run(const std::string& label) {
  // An unlabeled implicit run with nothing in it is renamed, mirroring
  // TraceRecorder::begin_run.
  if (!(runs_.size() == 1 && runs_[0].label.empty() &&
        runs_[0].passes.empty() && events_.empty() && pending_.empty())) {
    runs_.emplace_back();
  } else if (runs_.empty()) {
    runs_.emplace_back();
  }
  runs_.back().label = label;
  runs_.back().phase_names = phase_names_;
  events_.clear();
  pending_.clear();
  tail_busy_.clear();
}

void PassProfiler::end_run(std::uint64_t trace_dropped) {
  for (const PendingPass& p : pending_) analyze(p);
  pending_.clear();
  events_.clear();
  tail_busy_.clear();
  current().trace_dropped = trace_dropped;
  current().phase_names = phase_names_;
}

void PassProfiler::buffer(const TraceEvent& ev) {
  if (events_.size() >= options_.max_buffered_events) {
    ++current().events_dropped;
    return;
  }
  events_.push_back(ev);
}

void PassProfiler::on_event(const TraceEvent& ev) {
  if (ev.kind == EventKind::kPass && ev.track == TraceRecorder::kPhaseTrack &&
      ev.duration >= 0) {
    // Pass k just closed. Its straggling spans (a server still draining a
    // one-way batch) may record after this point, so analysis of k waits
    // until the NEXT pass closes (or end_run); only the pass before last is
    // ripe now. The buffer therefore holds at most ~two passes of events.
    pending_.push_back(
        PendingPass{ev.arg0, ev.start, ev.start + ev.duration});
    while (pending_.size() > 1) {
      analyze(pending_.front());
      evict(pending_.front().end);
      pending_.erase(pending_.begin());
    }
    return;
  }
  buffer(ev);
}

void PassProfiler::on_phase(std::int64_t id, const std::string& name) {
  const auto idx = static_cast<std::size_t>(id);
  if (phase_names_.size() <= idx) phase_names_.resize(idx + 1);
  phase_names_[idx] = name;
  current().phase_names = phase_names_;
}

void PassProfiler::on_busy(std::int32_t track, EventKind kind, Time start,
                           Time end) {
  if (end <= start) return;
  // Contiguous same-kind busy intervals coalesce losslessly (CpuCharger
  // chunks arrive back-to-back by the thousand); the sweep sees one
  // interval either way, the buffer holds far fewer events.
  const auto it = tail_busy_.find(track);
  if (it != tail_busy_.end() && it->second.kind == kind &&
      it->second.end == start && it->second.index < events_.size()) {
    TraceEvent& tail = events_[it->second.index];
    tail.duration = end - tail.start;
    it->second.end = end;
    return;
  }
  TraceEvent ev;
  ev.start = start;
  ev.duration = end - start;
  ev.track = track;
  ev.kind = kind;
  if (events_.size() >= options_.max_buffered_events) {
    ++current().events_dropped;
    tail_busy_.erase(track);
    return;
  }
  tail_busy_[track] = TailBusy{events_.size(), kind, end};
  events_.push_back(ev);
}

void PassProfiler::evict(Time upto) {
  const auto ends_by = [upto](const TraceEvent& ev) {
    const Time end = ev.duration < 0 ? ev.start : ev.start + ev.duration;
    return end <= upto;
  };
  events_.erase(std::remove_if(events_.begin(), events_.end(), ends_by),
                events_.end());
  tail_busy_.clear();  // indices shifted; coalescing restarts cleanly
}

void PassProfiler::analyze(const PendingPass& pass) {
  PassProfile out;
  out.k = pass.k;
  out.start = pass.start;
  out.end = pass.end;
  const Time s = pass.start;
  const Time e = pass.end;

  std::map<std::int32_t, std::vector<Interval>> ivs;
  std::map<std::int32_t, std::vector<Time>> barriers;
  std::map<std::int32_t, std::map<std::int64_t, Time>> rpc_ops;
  struct Phase {
    std::int64_t id = -1;
    Time start = -1;
    Time end = -1;
  };
  std::vector<Phase> phases;  // this pass's kPhase spans, registry-keyed
  std::vector<SlowOp> slow;

  for (const TraceEvent& ev : events_) {
    if (ev.duration < 0) {
      if (ev.kind == EventKind::kBarrier && ev.track >= 0 &&
          ev.arg0 == pass.k && ev.start >= s && ev.start <= e) {
        barriers[ev.track].push_back(ev.start);
      }
      continue;
    }
    if (ev.track == TraceRecorder::kPhaseTrack) {
      if (ev.arg0 != pass.k) continue;
      if (ev.kind == EventKind::kPhase) {
        phases.push_back(Phase{ev.arg1, ev.start, ev.start + ev.duration});
      }
      continue;
    }
    if (ev.track < 0) continue;
    const Time a = std::max(ev.start, s);
    const Time b = std::min(ev.start + ev.duration, e);
    if (a >= b) continue;
    const std::size_t cat = category_of(ev.kind);
    if (cat < kProfileCategories) {
      ivs[ev.track].push_back(
          Interval{a, b, static_cast<std::uint8_t>(cat)});
      if (ev.kind == EventKind::kRpc) rpc_ops[ev.track][ev.arg2] += b - a;
    }
    if (slow_table_kind(ev.kind)) {
      slow.push_back(SlowOp{ev.kind, ev.track, ev.start, ev.duration, ev.arg0,
                            ev.arg1, ev.arg2});
    }
  }

  // ---- barrier skew ----
  // Groups pair the g-th arrival of every participating node; the release
  // is the slowest arrival and everyone else's gap is attributable barrier
  // wait. Uneven counts (a node missed an instrumented barrier — does not
  // happen on healthy app nodes) degrade gracefully: skip skew attribution
  // for the pass rather than pair arrivals across different barriers.
  std::size_t groups = 0;
  bool barriers_consistent = !barriers.empty();
  for (auto& [track, arrivals] : barriers) {
    std::sort(arrivals.begin(), arrivals.end());
    if (groups == 0) groups = arrivals.size();
    if (arrivals.size() != groups) barriers_consistent = false;
  }
  std::map<std::int32_t, Time> idle;
  if (barriers_consistent && groups > 0) {
    for (std::size_t g = 0; g < groups; ++g) {
      Time release = 0;
      for (const auto& [track, arrivals] : barriers) {
        release = std::max(release, arrivals[g]);
      }
      for (const auto& [track, arrivals] : barriers) {
        const Time wait = release - arrivals[g];
        idle[track] += wait;
        if (wait > 0) {
          ivs[track].push_back(Interval{
              std::max(arrivals[g], s), std::min(release, e),
              static_cast<std::uint8_t>(ProfileCategory::kBarrierWait)});
        }
      }
    }
    for (const auto& [track, wait] : idle) {
      out.stragglers.push_back(Straggler{track, wait});
    }
    std::sort(out.stragglers.begin(), out.stragglers.end(),
              [](const Straggler& x, const Straggler& y) {
                return x.barrier_wait != y.barrier_wait
                           ? x.barrier_wait < y.barrier_wait
                           : x.node < y.node;
              });
  }

  // ---- per-node attribution ----
  for (const auto& [track, list] : ivs) {
    NodeProfile np;
    np.node = track;
    np.duration = e - s;
    sweep(list, s, e, np.time);
    const auto it = rpc_ops.find(track);
    if (it != rpc_ops.end()) np.rpc_by_op = it->second;
    out.nodes.push_back(std::move(np));
  }

  // ---- critical path ----
  // The chain of "who released each phase barrier": for every phase, the
  // straggler (last arrival) from phase start to its arrival, broken down
  // by category. Phases pair with barrier groups in execution (time) order,
  // so the path needs exactly one barrier group per recorded phase span;
  // pass 1 and degraded passes simply export an empty path.
  std::sort(phases.begin(), phases.end(),
            [](const Phase& x, const Phase& y) { return x.start < y.start; });
  if (barriers_consistent && !phases.empty() && groups == phases.size()) {
    for (std::size_t g = 0; g < phases.size(); ++g) {
      std::int32_t straggler = -1;
      Time arrival = -1;
      for (const auto& [track, arrivals] : barriers) {
        if (arrivals[g] > arrival) {
          arrival = arrivals[g];
          straggler = track;
        }
      }
      CriticalSegment seg;
      seg.phase = phases[g].id;
      seg.node = straggler;
      seg.start = phases[g].start;
      seg.end = arrival;
      const auto it = ivs.find(straggler);
      if (it != ivs.end()) sweep(it->second, seg.start, seg.end, seg.time);
      out.critical_path.push_back(seg);
    }
  }

  // ---- top-K slowest operations ----
  std::sort(slow.begin(), slow.end(), [](const SlowOp& x, const SlowOp& y) {
    if (x.duration != y.duration) return x.duration > y.duration;
    if (x.start != y.start) return x.start < y.start;
    return x.node < y.node;
  });
  if (slow.size() > options_.top_k) slow.resize(options_.top_k);
  out.slowest = std::move(slow);

  current().passes.push_back(std::move(out));
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

namespace {

void categories_json(JsonWriter& w,
                     const std::array<Time, kProfileCategories>& time) {
  for (std::size_t c = 0; c < kProfileCategories; ++c) {
    w.kv(std::string(kCategoryNames[c]) + "_s", to_seconds(time[c]));
  }
}

std::string phase_label(const std::vector<std::string>& names,
                        std::int64_t id) {
  const auto idx = static_cast<std::size_t>(id);
  if (id >= 0 && idx < names.size() && !names[idx].empty()) return names[idx];
  return "phase" + std::to_string(id);
}

void pass_profile_json(JsonWriter& w, const PassProfile& p,
                       const std::vector<std::string>& phase_names) {
  w.begin_object();
  w.kv("k", p.k);
  w.kv("start_s", to_seconds(p.start));
  w.kv("duration_s", to_seconds(p.duration()));
  w.key("nodes");
  w.begin_array();
  for (const NodeProfile& n : p.nodes) {
    w.begin_object();
    w.kv("node", static_cast<std::int64_t>(n.node));
    w.kv("duration_s", to_seconds(n.duration));
    categories_json(w, n.time);
    if (!n.rpc_by_op.empty()) {
      w.key("rpc_by_op_s");
      w.begin_object();
      for (const auto& [op, t] : n.rpc_by_op) {
        w.kv(rpc_op_name(op), to_seconds(t));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("stragglers");
  w.begin_array();
  for (const Straggler& sg : p.stragglers) {
    w.begin_object();
    w.kv("node", static_cast<std::int64_t>(sg.node));
    w.kv("barrier_wait_s", to_seconds(sg.barrier_wait));
    w.end_object();
  }
  w.end_array();
  w.key("critical_path");
  w.begin_array();
  for (const CriticalSegment& seg : p.critical_path) {
    w.begin_object();
    w.kv("phase", phase_label(phase_names, seg.phase));
    w.kv("node", static_cast<std::int64_t>(seg.node));
    w.kv("start_s", to_seconds(seg.start));
    w.kv("end_s", to_seconds(seg.end));
    categories_json(w, seg.time);
    w.end_object();
  }
  w.end_array();
  w.key("slowest");
  w.begin_array();
  for (const SlowOp& op : p.slowest) {
    w.begin_object();
    w.kv("kind", TraceRecorder::kind_name(op.kind));
    w.kv("node", static_cast<std::int64_t>(op.node));
    w.kv("start_s", to_seconds(op.start));
    w.kv("duration_ms", to_millis(op.duration));
    w.kv("arg0", op.arg0);
    w.kv("arg1", op.arg1);
    if (op.kind == EventKind::kRpc) w.kv("op", rpc_op_name(op.arg2));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void profile_body(JsonWriter& w, const RunProfile& run) {
  w.kv("trace_dropped", run.trace_dropped);
  w.kv("events_dropped", run.events_dropped);
  w.kv("complete", run.complete());
  w.key("phases");
  w.begin_array();
  for (const std::string& name : run.phase_names) w.value(name);
  w.end_array();
  w.key("passes");
  w.begin_array();
  for (const PassProfile& p : run.passes) {
    pass_profile_json(w, p, run.phase_names);
  }
  w.end_array();
}

}  // namespace

void profile_json(JsonWriter& w, const RunProfile& run) {
  w.begin_object();
  profile_body(w, run);
  w.end_object();
}

std::string profile_file_json(const std::vector<RunProfile>& runs) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rmswap.profile/v2");
  w.key("runs");
  w.begin_array();
  for (const RunProfile& run : runs) {
    w.begin_object();
    w.kv("label", run.label);
    profile_body(w, run);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace rms::obs
