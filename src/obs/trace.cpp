#include "obs/trace.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace rms::obs {

namespace {

struct KindInfo {
  const char* name;
  const char* category;
  const char* arg0;
  const char* arg1;
  const char* arg2 = "";
};

const KindInfo& info(EventKind kind) {
  static const KindInfo kTable[] = {
      {"swap_out", "store", "line", "bytes"},
      {"fault_in", "store", "line", "bytes"},
      {"rpc", "rpc", "peer", "attempts", "op"},
      {"serve", "server", "kind", "owner"},
      {"migrate", "migration", "holder", "lines_moved"},
      {"pass", "phase", "k", ""},
      {"phase", "phase", "k", "phase"},
      {"rpc_retry", "rpc", "peer", "retries"},
      {"rpc_failed", "rpc", "peer", "attempts"},
      {"suspicion", "failover", "peer", ""},
      {"orphan", "failover", "line", "entries_lost"},
      {"promote", "failover", "line", "backup"},
      {"degraded", "failover", "line", "bytes"},
      {"tiered_spill", "store", "line", "bytes"},
      {"replica_store", "failover", "line", "backup"},
      {"update_batch", "store", "holder", "ops"},
      {"barrier", "phase", "k", ""},
      {"checksum_mismatch", "integrity", "line", "holder"},
      {"quarantine", "integrity", "node", "strikes"},
      {"re_replicate", "integrity", "line", "backup"},
      {"placement", "placement", "node", "bytes"},
      {"stall", "rpc", "peer", "in_flight"},
      {"compute", "cpu", "", ""},
      {"disk_io", "disk", "bytes", ""},
      {"reclaim", "sched", "holder", "bytes"},
      {"job_admit", "sched", "job", "tenant"},
      {"job_done", "sched", "job", "tenant"},
      {"job_shed", "sched", "job", "tenant"},
  };
  const auto idx = static_cast<std::size_t>(kind);
  RMS_CHECK(idx < sizeof(kTable) / sizeof(kTable[0]));
  return kTable[idx];
}

}  // namespace

const char* TraceRecorder::kind_name(EventKind kind) {
  return info(kind).name;
}
const char* TraceRecorder::kind_category(EventKind kind) {
  return info(kind).category;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity), run_labels_{""} {}

void TraceRecorder::set_profile_hook(ProfileHook* hook) {
  hook_ = hook;
  if (hook_ == nullptr) return;
  for (std::size_t id = 0; id < phase_names_.size(); ++id) {
    hook_->on_phase(static_cast<std::int64_t>(id), phase_names_[id]);
  }
}

std::int64_t TraceRecorder::register_phase(const std::string& name) {
  for (std::size_t id = 0; id < phase_names_.size(); ++id) {
    if (phase_names_[id] == name) return static_cast<std::int64_t>(id);
  }
  phase_names_.push_back(name);
  const auto id = static_cast<std::int64_t>(phase_names_.size() - 1);
  if (hook_ != nullptr) hook_->on_phase(id, name);
  return id;
}

void TraceRecorder::begin_run(const std::string& label) {
  if (total_ == 0 && run_ == 0 && run_labels_.size() == 1) {
    run_labels_[0] = label;  // nothing recorded yet: name the implicit run
    return;
  }
  ++run_;
  run_labels_.push_back(label);
}

std::size_t TraceRecorder::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_, ring_.size()));
}

std::uint64_t TraceRecorder::dropped() const {
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

const TraceEvent& TraceRecorder::event(std::size_t i) const {
  RMS_CHECK(i < size());
  const std::uint64_t first = total_ > ring_.size() ? total_ - ring_.size() : 0;
  return ring_[static_cast<std::size_t>((first + i) % ring_.size())];
}

void TraceRecorder::clear() {
  total_ = 0;
  run_ = 0;
  run_labels_.assign(1, "");
}

std::string TraceRecorder::chrome_trace_json() const {
  // Chrome trace_event format, JSON object flavour: timestamps/durations in
  // microseconds (virtual time), pid = run index, tid = node/track.
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata: name each run's process and every track it used.
  const std::size_t n = size();
  std::vector<std::vector<std::int32_t>> tracks(run_labels_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = event(i);
    const auto run = static_cast<std::size_t>(ev.run);
    if (run < tracks.size() &&
        std::find(tracks[run].begin(), tracks[run].end(), ev.track) ==
            tracks[run].end()) {
      tracks[run].push_back(ev.track);
    }
  }
  for (std::size_t run = 0; run < run_labels_.size(); ++run) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", static_cast<std::int64_t>(run));
    w.kv("tid", static_cast<std::int64_t>(0));
    w.key("args");
    w.begin_object();
    w.kv("name", run_labels_[run].empty() ? std::string("run ") +
                                                std::to_string(run)
                                          : run_labels_[run]);
    w.end_object();
    w.end_object();
    std::sort(tracks[run].begin(), tracks[run].end());
    for (const std::int32_t track : tracks[run]) {
      w.begin_object();
      w.kv("name", "thread_name");
      w.kv("ph", "M");
      w.kv("pid", static_cast<std::int64_t>(run));
      w.kv("tid", static_cast<std::int64_t>(track));
      w.key("args");
      w.begin_object();
      w.kv("name", track == kPhaseTrack
                       ? std::string("phases")
                       : std::string("node ") + std::to_string(track));
      w.end_object();
      w.end_object();
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = event(i);
    const KindInfo& ki = info(ev.kind);
    w.begin_object();
    // Phase spans export under their registered name so the phase track
    // reads build/count/... instead of a generic "phase" label.
    const auto phase_id = static_cast<std::size_t>(ev.arg1);
    if (ev.kind == EventKind::kPhase && phase_id < phase_names_.size()) {
      w.kv("name", phase_names_[phase_id]);
    } else {
      w.kv("name", ki.name);
    }
    w.kv("cat", ki.category);
    w.kv("ph", ev.duration < 0 ? "i" : "X");
    w.kv("ts", static_cast<double>(ev.start) / 1e3);  // ns -> us
    if (ev.duration < 0) {
      w.kv("s", "t");  // instant scoped to its thread/track
    } else {
      w.kv("dur", static_cast<double>(ev.duration) / 1e3);
    }
    w.kv("pid", static_cast<std::int64_t>(ev.run));
    w.kv("tid", static_cast<std::int64_t>(ev.track));
    w.key("args");
    w.begin_object();
    if (ki.arg0[0] != '\0') w.kv(ki.arg0, ev.arg0);
    if (ki.arg1[0] != '\0') w.kv(ki.arg1, ev.arg1);
    if (ki.arg2[0] != '\0') w.kv(ki.arg2, ev.arg2);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("recorded", recorded());
  w.kv("dropped", dropped());
  w.end_object();
  w.end_object();
  return w.str();
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  return write_file(path, chrome_trace_json());
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace rms::obs
