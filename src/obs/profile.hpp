// PassProfiler: per-pass, per-node attribution of where virtual time went.
//
// The paper's argument is a time-breakdown argument (Tables 2-4): remote
// swapping wins because fault service dominates pass time on disk and
// shrinks by an order of magnitude over the network. The trace layer records
// every span, but a span dump is not an answer to "where did pass 2 go?".
// The profiler turns the event stream into, per pass and per node:
//
//   - an attributed wall-time breakdown over mutually exclusive categories
//     (fault-in wait, swap-out wait, migration, server service, RPC wait,
//     update-batch streaming, disk I/O, CPU, barrier skew), with the
//     invariant that the categories plus an explicit `unattributed` residual
//     sum to the pass duration EXACTLY (integer nanoseconds, no rounding);
//   - RPC wait additionally split by service tag (core::rpc_op annotation);
//   - barrier/straggler skew: how long each node idled at each phase
//     barrier waiting for the slowest arrival, and a straggler ranking;
//   - the pass critical path: the chain of phase segments ending at each
//     phase barrier, owned by that phase's straggler, with its own category
//     breakdown — the longest causal chain through the pass;
//   - a top-K slowest-operations table.
//
// Exactness under overlap: a fault-in span contains an RPC span which
// contains the server's serve span; naive per-category sums double-count.
// The profiler instead runs a boundary sweep per node: at every instant the
// highest-priority active category owns the time (priority = the enum order
// below, fault-in highest), so category times are disjoint by construction
// and sum to the window length. `rpc_by_op` is reported separately as an
// *inclusive* view (it overlaps fault_in/swap_out by design).
//
// Loss model: the profiler is fed by TraceRecorder's push-time hook plus
// direct Node/Disk busy hooks, so TraceRecorder ring overflow — routine at
// bench scale — cannot corrupt attribution (`trace_dropped` reports it for
// the trace *file*'s sake). The profiler's own buffer is bounded; if it
// caps, events are counted in `events_dropped` and the lost time lands in
// `unattributed` — the sums stay exact, the run is flagged incomplete.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/trace.hpp"

namespace rms::obs {

class JsonWriter;

/// Attribution categories. Declaration order IS the sweep priority, highest
/// first: when spans overlap on one node's timeline, the earliest-listed
/// active category owns the instant.
enum class ProfileCategory : std::uint8_t {
  kFaultIn,       // synchronous swap-in wait (kFaultIn spans)
  kSwapOut,       // eviction wait (kSwapOut spans)
  kMigrate,       // migrate_away directives (kMigrate spans)
  kServe,         // memory-server request service (kServe spans)
  kRpc,           // transport call wait not inside the above (kRpc spans)
  kStream,        // one-way update-batch flush, send -> drain (kUpdateBatch)
  kDiskIo,        // disk access incl. arm queueing (kDiskIo busy intervals)
  kCompute,       // CPU charge incl. cpu queueing (kCompute busy intervals)
  kBarrierWait,   // idle at a phase barrier waiting for the straggler
  kUnattributed,  // residual: pass time no instrumented span covers
};
inline constexpr std::size_t kProfileCategories = 10;

/// Stable category name ("fault_in", "compute", ...; artifact keys append
/// "_s").
const char* category_name(ProfileCategory c);

/// Name for a Transport::call `op` annotation (0 = "other"; 1 + kind mirrors
/// core::rpc_op — kept in lockstep by a unit test so obs/ stays independent
/// of core/).
const char* rpc_op_name(std::int64_t op);

/// One node's attributed breakdown over one pass window.
struct NodeProfile {
  std::int32_t node = 0;
  Time duration = 0;  // == the pass window length
  std::array<Time, kProfileCategories> time{};
  /// Inclusive RPC wait per service-tag annotation (overlaps the exclusive
  /// categories above: a swap-in's RPC time is *attributed* to fault_in).
  std::map<std::int64_t, Time> rpc_by_op;

  Time category(ProfileCategory c) const {
    return time[static_cast<std::size_t>(c)];
  }
  /// Sum over every category including kUnattributed; == duration always.
  Time total() const;
};

/// Barrier skew of one node over one pass, for the straggler ranking.
struct Straggler {
  std::int32_t node = 0;
  /// Total idle across the pass's phase barriers; the pass straggler waits
  /// least (everyone else was waiting for it).
  Time barrier_wait = 0;
};

/// One hop of the critical path: the phase's straggler node from phase
/// start to its barrier arrival, with its own category breakdown.
struct CriticalSegment {
  /// Phase-registry id (TraceRecorder::register_phase); index into
  /// RunProfile::phase_names for the human-readable name.
  std::int64_t phase = -1;
  std::int32_t node = 0;  // last arrival at this barrier
  Time start = 0;
  Time end = 0;  // the straggler's arrival == the barrier release
  std::array<Time, kProfileCategories> time{};
};

/// One row of the top-K slowest-operations table.
struct SlowOp {
  EventKind kind = EventKind::kRpc;
  std::int32_t node = 0;
  Time start = 0;
  Time duration = 0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::int64_t arg2 = 0;
};

struct PassProfile {
  std::int64_t k = 0;
  Time start = 0;
  Time end = 0;
  Time duration() const { return end - start; }
  /// Every node that showed activity in the window, ascending by id.
  std::vector<NodeProfile> nodes;
  /// Ascending by barrier_wait: front() is the pass straggler. Empty when
  /// the pass had no instrumented barriers (pass 1).
  std::vector<Straggler> stragglers;
  /// Phase segments in execution order (whatever phases the workload
  /// registered); empty when barrier/phase data is incomplete.
  std::vector<CriticalSegment> critical_path;
  /// Slowest individual operations overlapping the window, descending.
  std::vector<SlowOp> slowest;

  const NodeProfile* node_profile(std::int32_t node) const;
};

struct RunProfile {
  std::string label;
  std::vector<PassProfile> passes;
  /// Phase-registry names (ProfileHook::on_phase), indexed by the id
  /// CriticalSegment::phase carries.
  std::vector<std::string> phase_names;
  /// TraceRecorder ring drops during this run: the exported Chrome trace is
  /// incomplete past this count. Attribution is NOT affected (the profiler
  /// taps events before the ring).
  std::uint64_t trace_dropped = 0;
  /// Events the profiler's own buffer refused; their time is in
  /// kUnattributed. 0 = attribution saw every event.
  std::uint64_t events_dropped = 0;
  bool complete() const { return events_dropped == 0; }
};

class PassProfiler final : public ProfileHook {
 public:
  struct Options {
    /// Buffered-event cap (events live until their pass is analyzed —
    /// roughly two passes of traffic). Beyond it events are counted in
    /// events_dropped and their time degrades to kUnattributed.
    std::size_t max_buffered_events = std::size_t{1} << 22;
    /// Rows in the slowest-operations table.
    std::size_t top_k = 10;
  };

  PassProfiler() : PassProfiler(Options{}) {}
  explicit PassProfiler(Options options);

  /// Open a new run section (mirrors TraceRecorder::begin_run).
  void begin_run(const std::string& label);
  /// Close the current run: analyze every pass still pending. Pass the
  /// recorder's ring-drop delta for this run (0 when unknown/none).
  void end_run(std::uint64_t trace_dropped = 0);

  // ProfileHook: passive, record-only.
  void on_event(const TraceEvent& ev) override;
  void on_busy(std::int32_t track, EventKind kind, Time start,
               Time end) override;
  void on_phase(std::int64_t id, const std::string& name) override;

  const std::vector<RunProfile>& runs() const { return runs_; }
  const Options& options() const { return options_; }

 private:
  struct PendingPass {
    std::int64_t k = 0;
    Time start = 0;
    Time end = 0;
  };

  RunProfile& current();
  void buffer(const TraceEvent& ev);
  void analyze(const PendingPass& pass);
  /// Drop buffered events that ended at or before `upto` (they can no
  /// longer overlap a later pass window).
  void evict(Time upto);

  Options options_;
  std::vector<RunProfile> runs_;
  std::vector<TraceEvent> events_;
  std::vector<PendingPass> pending_;
  /// Tail compute/disk interval per track for lossless coalescing of
  /// contiguous busy intervals (CpuCharger chunks arrive back-to-back).
  struct TailBusy {
    std::size_t index = 0;
    EventKind kind = EventKind::kCompute;
    Time end = -1;
  };
  std::map<std::int32_t, TailBusy> tail_busy_;
  /// Phase-registry names seen so far; stamped onto every run (the registry
  /// outlives run boundaries — ids are stable across a bench sweep).
  std::vector<std::string> phase_names_;
};

/// Append one run's profile as the currently-open JSON object's content
/// (the artifact's "profile" section).
void profile_json(JsonWriter& w, const RunProfile& run);

/// Standalone "rmswap.profile/v2" document for --profile-out.
std::string profile_file_json(const std::vector<RunProfile>& runs);

}  // namespace rms::obs
