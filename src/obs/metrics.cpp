#include "obs/metrics.hpp"

#include "common/check.hpp"
#include "obs/json.hpp"

namespace rms::obs {

MetricsSampler::Run& MetricsSampler::current_run() {
  if (runs_.empty()) runs_.emplace_back();
  return runs_.back();
}

void MetricsSampler::begin_run(const std::string& label) {
  gauges_.clear();
  // Reuse an empty implicit run 0 instead of leaving a hollow section.
  if (!(runs_.size() == 1 && runs_[0].label.empty() &&
        runs_[0].series.empty() && runs_[0].at.empty())) {
    runs_.emplace_back();
  }
  current_run().label = label;
}

void MetricsSampler::add_gauge(const std::string& name, std::int32_t node,
                               std::function<double()> fn) {
  Run& run = current_run();
  RMS_CHECK_MSG(run.at.empty(),
                "gauges must be registered before the first sample of a run");
  run.series.push_back(Series{name, node});
  gauges_.push_back(std::move(fn));
}

void MetricsSampler::sample(Time now) {
  if (gauges_.empty()) return;
  Run& run = current_run();
  RMS_CHECK(run.series.size() == gauges_.size());
  run.at.push_back(now);
  std::vector<double> row;
  row.reserve(gauges_.size());
  for (const auto& g : gauges_) row.push_back(g());
  run.rows.push_back(std::move(row));
}

void MetricsSampler::clear() {
  gauges_.clear();
  runs_.clear();
}

std::string MetricsSampler::json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rmswap.metrics/v1");
  w.kv("interval_s", to_seconds(interval_));
  w.key("runs");
  w.begin_array();
  for (const Run& run : runs_) {
    w.begin_object();
    w.kv("label", run.label);
    w.key("series");
    w.begin_array();
    for (const Series& s : run.series) {
      w.begin_object();
      w.kv("name", s.name);
      w.kv("node", static_cast<std::int64_t>(s.node));
      w.end_object();
    }
    w.end_array();
    w.key("t_s");
    w.begin_array();
    for (const Time t : run.at) w.value(to_seconds(t));
    w.end_array();
    w.key("samples");
    w.begin_array();
    for (const auto& row : run.rows) {
      w.begin_array();
      for (const double v : row) w.value(v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool MetricsSampler::write_json(const std::string& path) const {
  return write_file(path, json());
}

sim::Process sample_process(sim::Simulation& sim, MetricsSampler& sampler) {
  for (;;) {
    sampler.sample(sim.now());
    co_await sim.timeout(sampler.interval());
  }
}

}  // namespace rms::obs
