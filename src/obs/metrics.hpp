// MetricsSampler: per-node gauge time-series driven off the simulation clock.
//
// Counters tell you how much happened; they cannot show the *shape* of a run
// — resident bytes ramping into the limit, the tiered remote budget filling,
// outstanding RPCs spiking during a retry storm. The sampler polls a set of
// registered gauges (cheap `double()` callbacks reading component state) at a
// fixed virtual-time interval, mirroring the paper's monitoring-server
// cadence (`monitor_interval`), and keeps the result as a compact columnar
// series: one timestamp vector plus one row of doubles per sample.
//
// Like tracing, sampling is passive — the sampling process only advances the
// virtual clock by suspending on `timeout`, it charges no compute — and a
// null `MetricsSampler*` disables the whole layer.
//
// Lifetime rule: gauges capture references into runner/store state. Callers
// MUST `clear_gauges()` (or begin a new run) before that state dies;
// `hpa::Runner::run` does this before returning.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rms::obs {

class MetricsSampler {
 public:
  struct Series {
    std::string name;     // metric name, e.g. "resident_bytes"
    std::int32_t node;    // node id, or -1 for cluster-wide gauges
  };

  /// One run section: the gauge layout is fixed for a run, so samples are
  /// rows of `series.size()` doubles taken at the times in `at`.
  struct Run {
    std::string label;
    std::vector<Series> series;
    std::vector<Time> at;
    std::vector<std::vector<double>> rows;
  };

  explicit MetricsSampler(Time interval = sec(3)) : interval_(interval) {}

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  Time interval() const { return interval_; }
  void set_interval(Time interval) { interval_ = interval; }

  /// Open a new run section; clears registered gauges (their captures are
  /// about to die with the previous run's state).
  void begin_run(const std::string& label);

  /// Register a gauge for the current run. `fn` must stay valid until
  /// clear_gauges()/the next begin_run.
  void add_gauge(const std::string& name, std::int32_t node,
                 std::function<double()> fn);

  /// Poll every gauge once at virtual time `now`.
  void sample(Time now);

  /// Drop gauge callbacks (keeps the recorded series). Call before the state
  /// the callbacks capture is destroyed.
  void clear_gauges() { gauges_.clear(); }

  std::size_t num_gauges() const { return gauges_.size(); }
  const std::vector<Run>& runs() const { return runs_; }

  /// Serialize all runs to JSON ({"schema":"rmswap.metrics/v1",...}).
  std::string json() const;
  bool write_json(const std::string& path) const;

  void clear();

 private:
  Run& current_run();

  Time interval_;
  std::vector<std::function<double()>> gauges_;
  std::vector<Run> runs_;
};

/// Daemon process: samples forever at the sampler's interval (first sample
/// at t = spawn time). Killed by Simulation::shutdown like other daemons.
sim::Process sample_process(sim::Simulation& sim, MetricsSampler& sampler);

}  // namespace rms::obs
