// RunObserver / run-artifact export: machine-readable results for the bench
// harnesses.
//
// The benches print paper-style tables; trajectory tracking (BENCH_*.json,
// CI smoke checks, plotting) needs the same data as stable JSON. A
// RunObserver owns the optional TraceRecorder and MetricsSampler for a bench
// invocation, stamps them into each run's HpaConfig, snapshots every
// HpaResult, and at exit writes up to three files:
//
//   --trace-out    Chrome trace_event JSON (chrome://tracing / Perfetto)
//   --metrics-out  per-node gauge time-series ("rmswap.metrics/v1")
//   --json-out     run artifact ("rmswap.run_artifact/v2"): per-pass
//                  reports (phase breakdowns keyed by the runtime phase
//                  registry), StatsRegistry counters / summaries / histogram
//                  percentiles, failover stats, the sampled time-series,
//                  and the per-pass attribution profile
//   --profile-out  standalone attribution profile ("rmswap.profile/v2")
//
// Unlike trace.hpp / metrics.hpp (which depend only on common/ and sim/),
// this layer knows about hpa:: — it is sibling tooling over the application
// layer, not part of the core stack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hpa/hpa.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace rms::obs {

class JsonWriter;

/// Serialize a StatsRegistry: counters (non-zero), summaries, and histogram
/// percentiles (p50/p95/p99/max), as three keyed objects appended to the
/// currently-open JSON object. Shared by the run artifact and the examples.
void stats_json(JsonWriter& w, const StatsRegistry& stats);

class RunObserver {
 public:
  struct Paths {
    std::string trace;     // chrome trace file (optional)
    std::string metrics;   // metrics series file (optional)
    std::string artifact;  // run-artifact file (optional)
    std::string profile;   // standalone attribution-profile file (optional)
  };

  explicit RunObserver(Paths paths);

  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  /// Null unless at least one output path was requested.
  static std::unique_ptr<RunObserver> from_paths(Paths paths);

  /// Open a run section: stamps cfg.trace / cfg.metrics and remembers the
  /// label + configuration for the artifact.
  void begin_run(hpa::HpaConfig& cfg, const std::string& label);

  /// Snapshot one finished run's result for the artifact.
  void end_run(const hpa::HpaResult& result);

  /// Emit every requested file; prints one line per file written. Returns
  /// false if any write failed.
  bool write() const;

  /// The artifact JSON (exposed for tests).
  std::string artifact_json() const;

  TraceRecorder* trace() { return trace_.get(); }
  MetricsSampler* metrics() { return metrics_.get(); }
  PassProfiler* profiler() { return profiler_.get(); }
  /// The finished profile of the most recent run (for print_report); null
  /// when profiling is off or no run has ended.
  const RunProfile* last_profile() const {
    return profiler_ && !profiler_->runs().empty() ? &profiler_->runs().back()
                                                   : nullptr;
  }

 private:
  struct RunRecord {
    std::string label;
    hpa::HpaConfig config;  // shared_db/trace/metrics pointers not serialized
    bool have_result = false;
    std::vector<hpa::PassReport> passes;
    std::vector<std::string> phase_names;  // runtime phase registry order
    Time total_time = 0;
    StatsRegistry stats;
    core::FailoverStats failover;
    core::IntegrityStats integrity;
  };

  Paths paths_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsSampler> metrics_;
  std::unique_ptr<PassProfiler> profiler_;
  /// trace_->dropped() at the current run's begin (per-run drop delta).
  std::uint64_t drop_mark_ = 0;
  std::vector<RunRecord> runs_;
};

}  // namespace rms::obs
