// Minimal streaming JSON writer for the observability exporters.
//
// The trace, metrics, and run-artifact files are plain JSON consumed by
// chrome://tracing / Perfetto and by the trajectory-tracking tooling
// (tools/check_artifact.py). No external JSON dependency exists in the
// container, so this is a tiny hand-rolled emitter: comma placement is
// tracked with a nesting stack, strings are escaped, and non-finite doubles
// degrade to null (JSON has no NaN/Inf).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace rms::obs {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(4096); }

  void begin_object() {
    comma();
    out_.push_back('{');
    stack_.push_back(true);
  }
  void end_object() {
    RMS_CHECK(!stack_.empty());
    stack_.pop_back();
    out_.push_back('}');
  }
  void begin_array() {
    comma();
    out_.push_back('[');
    stack_.push_back(true);
  }
  void end_array() {
    RMS_CHECK(!stack_.empty());
    stack_.pop_back();
    out_.push_back(']');
  }

  void key(std::string_view k) {
    comma();
    escape(k);
    out_.push_back(':');
    pending_value_ = true;
  }

  void value(std::string_view v) {
    comma();
    escape(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void value(std::int64_t v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
  }
  void value(std::uint64_t v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ += buf;
  }

  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// The document built so far. Call once nesting is fully closed.
  const std::string& str() const {
    RMS_CHECK_MSG(stack_.empty(), "unbalanced JSON nesting");
    return out_;
  }

 private:
  // Insert the separating comma unless this is the first element of the
  // enclosing container or the value completing a key.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back()) {
      stack_.back() = false;
    } else {
      out_.push_back(',');
    }
  }

  void escape(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  std::vector<bool> stack_;  // true while the container awaits its first item
  bool pending_value_ = false;
};

/// Write `content` to `path`; returns false (and leaves errno) on IO error.
bool write_file(const std::string& path, const std::string& content);

}  // namespace rms::obs
