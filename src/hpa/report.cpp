#include "hpa/report.hpp"

#include <cstdio>

#include "common/table.hpp"

namespace rms::hpa {

void print_report(const HpaResult& result) {
  TablePrinter t("HPA run: per-pass summary",
                 {"pass", "candidates C", "large L", "time [s]",
                  "pagefaults(max node)", "swap-outs", "updates"});
  for (const PassReport& p : result.passes) {
    std::int64_t swaps = 0;
    std::int64_t updates = 0;
    for (std::int64_t v : p.swap_outs_per_node) swaps += v;
    for (std::int64_t v : p.updates_per_node) updates += v;
    t.add_row({TablePrinter::integer(static_cast<std::int64_t>(p.k)),
               TablePrinter::integer(p.candidates_global),
               TablePrinter::integer(p.large_global),
               TablePrinter::num(to_seconds(p.duration), 2),
               TablePrinter::integer(p.max_pagefaults()),
               TablePrinter::integer(swaps), TablePrinter::integer(updates)});
  }
  t.print();
  std::printf("total virtual time: %.2f s\n", to_seconds(result.total_time));

  // Per-backend counters ("backend.<ns>.<counter>") exported by the swap
  // backends; absent entirely for kNoLimit runs.
  bool backend_header = false;
  for (const auto& [name, value] : result.stats.counters()) {
    if (value == 0 || name.rfind("backend.", 0) != 0) continue;
    if (!backend_header) {
      std::printf("backend counters:\n");
      backend_header = true;
    }
    std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));
  }

  // Broker decision counters ("placement.<policy>.<counter>"); absent when
  // no placement decision was ever made (disk-only or unlimited runs).
  bool placement_header = false;
  for (const auto& [name, value] : result.stats.counters()) {
    if (value == 0 || name.rfind("placement.", 0) != 0) continue;
    if (!placement_header) {
      std::printf("placement counters:\n");
      placement_header = true;
    }
    std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));
  }

  // Latency distributions (RPC, fault-in) — the percentiles the paper's
  // latency argument actually turns on.
  bool hist_header = false;
  for (const auto& [name, h] : result.stats.histograms()) {
    if (h.count() == 0) continue;
    if (!hist_header) {
      std::printf("latency histograms [ms]:\n");
      hist_header = true;
    }
    std::printf("  %-20s n=%-10llu p50=%-9.3f p95=%-9.3f p99=%-9.3f max=%.3f\n",
                name.c_str(), static_cast<unsigned long long>(h.count()),
                h.percentile(0.50), h.percentile(0.95), h.percentile(0.99),
                h.summary().max());
  }

  const core::FailoverStats& f = result.failover;
  if (f.any()) {
    std::printf(
        "failover: %lld suspicions, %lld rpc retries (%lld deadline misses), "
        "%lld promoted, %lld orphaned lines (%lld entries lost), "
        "%lld degraded evictions, %lld replicas, %lld updates mirrored, "
        "%lld update ops dropped\n",
        static_cast<long long>(f.suspicions),
        static_cast<long long>(f.rpc_retries),
        static_cast<long long>(f.deadline_misses),
        static_cast<long long>(f.promoted_lines),
        static_cast<long long>(f.orphaned_lines),
        static_cast<long long>(f.orphaned_entries),
        static_cast<long long>(f.degraded_evictions),
        static_cast<long long>(f.replicas_stored),
        static_cast<long long>(f.updates_mirrored),
        static_cast<long long>(f.lost_update_ops));
  }

  const core::IntegrityStats& g = result.integrity;
  if (g.any()) {
    std::printf(
        "integrity: %lld checksum mismatches, %lld repaired from replica, "
        "%lld repaired from disk, %lld lines lost, %lld re-replications, "
        "%lld holders quarantined\n",
        static_cast<long long>(g.checksum_mismatches),
        static_cast<long long>(g.repaired_from_replica),
        static_cast<long long>(g.repaired_from_disk),
        static_cast<long long>(g.lines_lost),
        static_cast<long long>(g.re_replications),
        static_cast<long long>(g.quarantines));
  }
}

std::string describe(const HpaConfig& config) {
  // Decimal megabytes, the paper's accounting (DESIGN.md §4).
  const std::string limit =
      config.memory_limit_bytes < 0
          ? "none"
          : TablePrinter::num(
                static_cast<double>(config.memory_limit_bytes) / 1e6, 1) +
                "MB";
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%zu app nodes, %zu memory nodes, policy=%s, limit=%s, D=%lld, minsup=%.4f",
      config.app_nodes, config.memory_nodes, core::to_string(config.policy),
      limit.c_str(),
      static_cast<long long>(config.workload.num_transactions),
      config.min_support);
  return buf;
}

}  // namespace rms::hpa
