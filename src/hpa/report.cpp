#include "hpa/report.hpp"

#include <cstdio>

#include "common/table.hpp"
#include "obs/profile.hpp"

namespace rms::hpa {

namespace {

/// Per-pass attribution shares, categories aggregated across nodes, plus the
/// pass straggler — the compact "where did the time go" view.
void print_profile(const obs::RunProfile& profile) {
  if (profile.trace_dropped > 0) {
    std::printf(
        "WARNING: trace ring dropped %llu events — the exported trace file "
        "is incomplete (attribution below is exact: the profiler taps "
        "events before the ring).\n",
        static_cast<unsigned long long>(profile.trace_dropped));
  }
  if (!profile.complete()) {
    std::printf(
        "WARNING: profiler buffer dropped %llu events — attribution is "
        "PARTIAL; the lost time is bucketed as unattributed.\n",
        static_cast<unsigned long long>(profile.events_dropped));
  }
  if (profile.passes.empty()) return;

  std::vector<std::string> headers = {"pass"};
  for (std::size_t c = 0; c < obs::kProfileCategories; ++c) {
    headers.push_back(std::string(obs::category_name(
                          static_cast<obs::ProfileCategory>(c))) +
                      " %");
  }
  headers.push_back("straggler");
  TablePrinter t("time attribution: share of pass time per category",
                 headers);
  for (const obs::PassProfile& p : profile.passes) {
    std::array<double, obs::kProfileCategories> sums{};
    double total = 0.0;
    for (const obs::NodeProfile& n : p.nodes) {
      total += static_cast<double>(n.duration);
      for (std::size_t c = 0; c < obs::kProfileCategories; ++c) {
        sums[c] += static_cast<double>(n.time[c]);
      }
    }
    std::vector<std::string> row = {TablePrinter::integer(p.k)};
    for (std::size_t c = 0; c < obs::kProfileCategories; ++c) {
      row.push_back(total > 0.0
                        ? TablePrinter::num(100.0 * sums[c] / total, 1)
                        : "-");
    }
    // The pass straggler waits least at the barriers: everyone waited for it.
    row.push_back(p.stragglers.empty()
                      ? "-"
                      : "node " + std::to_string(p.stragglers.front().node));
    t.add_row(row);
  }
  t.print();

  for (const obs::PassProfile& p : profile.passes) {
    if (p.critical_path.empty()) continue;
    std::printf("pass %lld critical path:", static_cast<long long>(p.k));
    for (const obs::CriticalSegment& seg : p.critical_path) {
      // Dominant category of the straggler's segment.
      std::size_t best = obs::kProfileCategories - 1;
      for (std::size_t c = 0; c < obs::kProfileCategories; ++c) {
        if (seg.time[c] > seg.time[best]) best = c;
      }
      // Phase label from the profile's registry snapshot (the same names
      // the workload registered — the table and profiler cannot drift).
      const auto phase = static_cast<std::size_t>(seg.phase);
      const std::string label =
          seg.phase >= 0 && phase < profile.phase_names.size()
              ? profile.phase_names[phase]
              : "phase" + std::to_string(seg.phase);
      std::printf(
          " %s[node %d, %.2fs, %s]", label.c_str(), seg.node,
          to_seconds(seg.end - seg.start),
          obs::category_name(static_cast<obs::ProfileCategory>(best)));
    }
    std::printf("\n");
  }
}

}  // namespace

void print_report(const HpaResult& result, const obs::RunProfile* profile) {
  // Phase columns come from the result's phase-name registry snapshot, so
  // the table renders whatever phases the runtime actually ran — it cannot
  // drift from the runner or the profiler when phases change.
  std::vector<std::string> headers = {"pass", "candidates C", "large L",
                                      "time [s]"};
  for (const std::string& name : result.phase_names) {
    headers.push_back(name + " [s]");
  }
  headers.insert(headers.end(),
                 {"pagefaults(max node)", "swap-outs", "updates"});
  TablePrinter t("HPA run: per-pass summary", headers);
  for (const PassReport& p : result.passes) {
    std::int64_t swaps = 0;
    std::int64_t updates = 0;
    for (std::int64_t v : p.swap_outs_per_node) swaps += v;
    for (std::int64_t v : p.updates_per_node) updates += v;
    std::vector<std::string> row = {
        TablePrinter::integer(static_cast<std::int64_t>(p.k)),
        TablePrinter::integer(p.candidates_global),
        TablePrinter::integer(p.large_global),
        TablePrinter::num(to_seconds(p.duration), 2)};
    for (std::size_t i = 0; i < result.phase_names.size(); ++i) {
      row.push_back(p.phase_time.empty()
                        ? "-"
                        : TablePrinter::num(to_seconds(p.phase(i)), 2));
    }
    row.insert(row.end(), {TablePrinter::integer(p.max_pagefaults()),
                           TablePrinter::integer(swaps),
                           TablePrinter::integer(updates)});
    t.add_row(row);
  }
  t.print();
  std::printf("total virtual time: %.2f s\n", to_seconds(result.total_time));

  // Per-backend counters ("backend.<ns>.<counter>") exported by the swap
  // backends; absent entirely for kNoLimit runs.
  bool backend_header = false;
  for (const auto& [name, value] : result.stats.counters()) {
    if (value == 0 || name.rfind("backend.", 0) != 0) continue;
    if (!backend_header) {
      std::printf("backend counters:\n");
      backend_header = true;
    }
    std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));
  }

  // Broker decision counters ("placement.<policy>.<counter>"); absent when
  // no placement decision was ever made (disk-only or unlimited runs).
  bool placement_header = false;
  for (const auto& [name, value] : result.stats.counters()) {
    if (value == 0 || name.rfind("placement.", 0) != 0) continue;
    if (!placement_header) {
      std::printf("placement counters:\n");
      placement_header = true;
    }
    std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));
  }

  // Latency distributions (RPC, fault-in) — the percentiles the paper's
  // latency argument actually turns on.
  bool hist_header = false;
  for (const auto& [name, h] : result.stats.histograms()) {
    if (h.count() == 0) continue;
    if (!hist_header) {
      std::printf("latency histograms [ms]:\n");
      hist_header = true;
    }
    std::printf("  %-20s n=%-10llu p50=%-9.3f p95=%-9.3f p99=%-9.3f max=%.3f\n",
                name.c_str(), static_cast<unsigned long long>(h.count()),
                h.percentile(0.50), h.percentile(0.95), h.percentile(0.99),
                h.summary().max());
  }

  const core::FailoverStats& f = result.failover;
  if (f.any()) {
    std::printf(
        "failover: %lld suspicions, %lld rpc retries (%lld deadline misses), "
        "%lld promoted, %lld orphaned lines (%lld entries lost), "
        "%lld degraded evictions, %lld replicas, %lld updates mirrored, "
        "%lld update ops dropped\n",
        static_cast<long long>(f.suspicions),
        static_cast<long long>(f.rpc_retries),
        static_cast<long long>(f.deadline_misses),
        static_cast<long long>(f.promoted_lines),
        static_cast<long long>(f.orphaned_lines),
        static_cast<long long>(f.orphaned_entries),
        static_cast<long long>(f.degraded_evictions),
        static_cast<long long>(f.replicas_stored),
        static_cast<long long>(f.updates_mirrored),
        static_cast<long long>(f.lost_update_ops));
  }

  const core::IntegrityStats& g = result.integrity;
  if (g.any()) {
    std::printf(
        "integrity: %lld checksum mismatches, %lld repaired from replica, "
        "%lld repaired from disk, %lld lines lost, %lld re-replications, "
        "%lld holders quarantined\n",
        static_cast<long long>(g.checksum_mismatches),
        static_cast<long long>(g.repaired_from_replica),
        static_cast<long long>(g.repaired_from_disk),
        static_cast<long long>(g.lines_lost),
        static_cast<long long>(g.re_replications),
        static_cast<long long>(g.quarantines));
  }

  if (profile != nullptr) print_profile(*profile);
}

std::string describe(const HpaConfig& config) {
  // Decimal megabytes, the paper's accounting (DESIGN.md §4).
  const std::string limit =
      config.memory_limit_bytes < 0
          ? "none"
          : TablePrinter::num(
                static_cast<double>(config.memory_limit_bytes) / 1e6, 1) +
                "MB";
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%zu app nodes, %zu memory nodes, policy=%s, limit=%s, D=%lld, minsup=%.4f",
      config.app_nodes, config.memory_nodes, core::to_string(config.policy),
      limit.c_str(),
      static_cast<long long>(config.workload.num_transactions),
      config.min_support);
  return buf;
}

}  // namespace rms::hpa
