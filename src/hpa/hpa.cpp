#include "hpa/hpa.hpp"

#include <algorithm>
#include <memory>

#include "cluster/fault.hpp"
#include "core/availability.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "core/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/cpu_charger.hpp"
#include "runtime/runner.hpp"
#include "runtime/workload.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "transport/stream.hpp"
#include "transport/tags.hpp"
#include "transport/transport.hpp"

namespace rms::hpa {
namespace {

using cluster::Node;
using runtime::CpuCharger;
using mining::Itemset;
using net::NodeId;

// Mining-phase wire tags, from the central registry (docs/PROTOCOL.md).
constexpr net::Tag kPass1Counts = transport::TagRegistry::kPass1Counts;
constexpr net::Tag kCountData = transport::TagRegistry::kCountData;
constexpr net::Tag kLargeExchange = transport::TagRegistry::kLargeExchange;

/// Counting-phase payload: a 4 KB message block of k-itemsets, or the
/// end-of-stream marker a sender broadcasts after finishing its scan.
struct CountMsg {
  std::vector<Itemset> itemsets;
  bool eos = false;
};

struct Pass1Counts {
  std::vector<std::uint32_t> counts;
};

struct LargeList {
  std::vector<mining::CountedItemset> larges;
};

class HpaWorkload final : public runtime::Workload {
 public:
  explicit HpaWorkload(const HpaConfig& cfg) : cfg_(cfg) {
    RMS_CHECK(cfg_.app_nodes >= 1);
    RMS_CHECK(cfg_.hash_lines >= cfg_.app_nodes);
    RMS_CHECK(cfg_.min_support > 0 && cfg_.min_support <= 1.0);
    RMS_CHECK_MSG(cfg_.memory_limit_bytes < 0 ||
                      cfg_.policy != core::SwapPolicy::kNoLimit,
                  "a memory limit needs a swap policy");
    RMS_CHECK_MSG(!uses_remote_memory_policy() || cfg_.memory_nodes > 0,
                  "remote policies need at least one memory-available node");
  }

  bool uses_remote_memory_policy() const {
    return cfg_.memory_limit_bytes >= 0 && core::uses_remote_memory(cfg_.policy);
  }

  HpaResult run();

  // ---- sched job mode (shared world; see sched/job.hpp) ----
  void launch(const sched::JobEnv& env, std::function<void()> on_done);
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes);
  std::int64_t donated_bytes() const;
  sched::JobReport harvest();

  // ---- runtime::Workload ----
  void register_phases(runtime::PhaseRegistry& phases) override {
    RMS_CHECK(phases.add("build") == kBuildPhase);
    RMS_CHECK(phases.add("count") == kCountPhase);
    RMS_CHECK(phases.add("determine") == kDeterminePhase);
  }
  bool has_prologue() const override { return true; }
  sim::Task<> prologue(std::size_t idx) override { co_await pass1(idx); }
  void end_prologue(const runtime::PassTiming& timing) override {
    result_.passes.back().duration = timing.duration();
  }
  bool done(std::size_t /*pass*/) const override {
    // Node 0 maintains the canonical state; all nodes see the same answer.
    return global_large_prev_.empty();
  }
  void begin_pass(std::size_t k) override { generate_candidates(k); }
  bool proceed(std::size_t /*pass*/) const override {
    return total_candidates_ != 0;
  }
  void abort_pass(std::size_t /*pass*/) override {
    // The sequential miner records nothing for a candidate-less pass;
    // mirror that so results compare exactly.
    result_.passes.pop_back();
    global_large_prev_.clear();
  }
  sim::Task<> run_phase(std::size_t idx, runtime::PhaseId phase,
                        std::size_t k) override {
    switch (phase) {
      case kBuildPhase:
        co_await build_store(idx, k);
        break;
      case kCountPhase: {
        stores_[idx]->set_phase(core::HashLineStore::Phase::kCount);
        sim::Process sender = sim_->spawn(count_sender(idx, k));
        sim::Process receiver = sim_->spawn(count_receiver(idx, k));
        co_await sender;
        co_await receiver;
        break;
      }
      case kDeterminePhase:
        co_await determine_large(idx, k);
        break;
      default:
        RMS_CHECK(false);
    }
  }
  void check_invariants(std::size_t idx) override {
    if (stores_[idx]) stores_[idx]->check_invariants();
  }
  void end_pass(const runtime::PassTiming& timing) override {
    finish_pass_report(timing);
  }
  void end_pass_local(std::size_t idx, std::size_t /*pass*/) override {
    failover_total_.merge(stores_[idx]->failover());
    integrity_total_.merge(stores_[idx]->integrity());
    store_stats_total_.merge(stores_[idx]->stats());
    stores_[idx].reset();
  }

 private:
  // ---- topology helpers ----
  // Scheduled jobs execute on world-assigned slot nodes (ext_app_ids_);
  // the single-run world uses the identity layout.
  NodeId app_id(std::size_t idx) const {
    return ext_app_ids_.empty() ? static_cast<NodeId>(idx)
                                : ext_app_ids_[idx];
  }
  NodeId mem_id(std::size_t idx) const {
    return static_cast<NodeId>(cfg_.app_nodes + idx);
  }
  std::size_t global_line(const Itemset& s) const {
    return static_cast<std::size_t>(s.hash() % cfg_.hash_lines);
  }

  // Line ownership. Uniform: line mod app_nodes. Weighted: line ids are
  // uniform hash buckets, so splitting each block of kWeightResolution
  // consecutive residues by the integer cuts reproduces the requested
  // proportions exactly per block.
  static constexpr std::size_t kWeightResolution = 10'000;

  std::size_t owner_of_line(std::size_t gline) const {
    if (cuts_.empty()) return gline % cfg_.app_nodes;
    const std::size_t r = gline % kWeightResolution;
    std::size_t owner = 0;
    while (r >= cuts_[owner + 1]) ++owner;
    return owner;
  }
  core::LineId local_line(std::size_t gline) const {
    if (cuts_.empty()) {
      return static_cast<core::LineId>(gline / cfg_.app_nodes);
    }
    const std::size_t q = gline / kWeightResolution;
    const std::size_t r = gline % kWeightResolution;
    const std::size_t owner = owner_of_line(gline);
    const std::size_t width = cuts_[owner + 1] - cuts_[owner];
    return static_cast<core::LineId>(q * width + (r - cuts_[owner]));
  }
  std::size_t local_line_count(std::size_t idx) const {
    if (cuts_.empty()) {
      return (cfg_.hash_lines + cfg_.app_nodes - 1 - idx) / cfg_.app_nodes;
    }
    return (cfg_.hash_lines / kWeightResolution) *
           (cuts_[idx + 1] - cuts_[idx]);
  }

  void build_partition_cuts() {
    if (cfg_.partition_weights.empty()) return;
    RMS_CHECK_MSG(cfg_.partition_weights.size() == cfg_.app_nodes,
                  "partition_weights must have one entry per app node");
    RMS_CHECK_MSG(cfg_.hash_lines % kWeightResolution == 0,
                  "weighted partitioning needs hash_lines % 10000 == 0");
    double total = 0;
    for (double w : cfg_.partition_weights) {
      RMS_CHECK(w > 0);
      total += w;
    }
    cuts_.assign(cfg_.app_nodes + 1, 0);
    double cum = 0;
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      cum += cfg_.partition_weights[i];
      cuts_[i + 1] = static_cast<std::size_t>(
          cum / total * static_cast<double>(kWeightResolution) + 0.5);
      RMS_CHECK_MSG(cuts_[i + 1] > cuts_[i],
                    "partition weight too small for the resolution");
    }
    cuts_.back() = kWeightResolution;
  }

  // ---- phase bodies (the runner owns barriers, spans, and timing) ----
  sim::Process count_sender(std::size_t idx, std::size_t k);
  sim::Process count_receiver(std::size_t idx, std::size_t k);

  sim::Task<> pass1(std::size_t idx);
  sim::Task<> build_store(std::size_t idx, std::size_t k);
  sim::Task<> determine_large(std::size_t idx, std::size_t k);

  void generate_candidates(std::size_t k);
  void finish_pass_report(const runtime::PassTiming& timing);
  void register_gauges();
  /// Database/partition/threshold preparation shared by both entry modes.
  void prepare_inputs();
  /// result_.mined equals the sequential miner over the same database.
  bool check_exactness() const;

  const HpaConfig& cfg_;
  std::vector<std::size_t> cuts_;  // weighted-partition residue cuts
  // Single-run mode owns its simulation and world; a scheduled job borrows
  // the shared ones and the owning members stay empty.
  sim::Simulation own_sim_;
  sim::Simulation* sim_ = &own_sim_;
  std::unique_ptr<cluster::Cluster> own_cluster_;
  cluster::Cluster* cluster_ = nullptr;
  std::vector<NodeId> ext_app_ids_;  // world slot ids (job mode)
  sched::SlotTable* slots_ = nullptr;
  std::unique_ptr<runtime::PhasedRunner> runner_;  // job mode only

  mining::TransactionDb generated_db_;
  const mining::TransactionDb* db_ = nullptr;
  std::vector<mining::TransactionDb> partitions_;
  std::uint32_t min_count_ = 1;

  std::vector<placement::MemoryBroker*> brokers_;
  std::vector<std::unique_ptr<placement::MemoryBroker>> own_brokers_;
  std::vector<std::unique_ptr<core::HashLineStore>> stores_;
  std::vector<std::unique_ptr<core::MemoryServer>> servers_;

  // Canonical global mining state. Every node receives the same exchanged
  // messages; the canonical copy avoids holding one merged copy per node.
  std::vector<char> is_large1_;
  std::vector<Itemset> global_large_prev_;
  std::vector<std::vector<std::pair<core::LineId, Itemset>>> cand_by_owner_;
  std::int64_t total_candidates_ = 0;

  HpaResult result_;
  core::FailoverStats failover_total_;
  core::IntegrityStats integrity_total_;
  StatsRegistry store_stats_total_;
  /// At-rest corruption draws (FaultPlan episodes); fixed stream so runs
  /// with identical configs corrupt identically.
  Pcg32 corrupt_rest_rng_{0xa27e57, 0x11};
};

// ---------------------------------------------------------------------------
// Pass 1: local item counting + all-to-all count exchange.
// ---------------------------------------------------------------------------

sim::Task<> HpaWorkload::pass1(std::size_t idx) {
  Node& node = cluster_->node(app_id(idx));
  const mining::TransactionDb& part = partitions_[idx];
  const cluster::CostModel& costs = node.costs();

  std::vector<std::uint32_t> counts(cfg_.workload.num_items, 0);

  // Scan the local partition from the data disk in 64 KB blocks.
  const std::int64_t bytes_per_tx =
      part.empty() ? 1 : std::max<std::int64_t>(1, part.approx_bytes() /
                              static_cast<std::int64_t>(part.size()));
  std::int64_t pending_bytes = 0;
  CpuCharger parse(node, costs.per_tx_parse);
  for (std::size_t t = 0; t < part.size(); ++t) {
    pending_bytes += bytes_per_tx;
    if (pending_bytes >= cfg_.io_block_bytes) {
      co_await node.data_disk().read(cfg_.io_block_bytes,
                                     disk::Access::kSequential);
      pending_bytes = 0;
    }
    for (mining::Item it : part.tx(t)) {
      RMS_CHECK(it < counts.size());
      ++counts[it];
    }
    co_await parse.add(1);
  }
  if (pending_bytes > 0) {
    co_await node.data_disk().read(pending_bytes, disk::Access::kSequential);
  }
  co_await parse.flush();

  // Exchange partial counts all-to-all; every node ends with global counts.
  const std::int64_t payload =
      static_cast<std::int64_t>(counts.size()) * 4;
  for (std::size_t j = 0; j < cfg_.app_nodes; ++j) {
    if (j == idx) continue;
    node.send_to(app_id(j), kPass1Counts, payload, Pass1Counts{counts});
    co_await node.compute(costs.per_message_cpu);
  }
  std::vector<std::uint32_t> total = counts;
  transport::Inbox inbox(node, kPass1Counts);
  for (std::size_t j = 0; j + 1 < cfg_.app_nodes; ++j) {
    net::Message msg = co_await inbox.recv();
    const auto& remote = msg.as<Pass1Counts>();
    RMS_CHECK(remote.counts.size() == total.size());
    co_await node.compute(costs.per_message_cpu);
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += remote.counts[i];
  }

  // Determine L1 (identical on every node); node 0 records the canonical
  // copy and the pass report.
  if (idx == 0) {
    is_large1_.assign(total.size(), 0);
    global_large_prev_.clear();
    for (std::size_t i = 0; i < total.size(); ++i) {
      if (total[i] >= min_count_) {
        is_large1_[i] = 1;
        Itemset s;
        s.push_back(static_cast<mining::Item>(i));
        global_large_prev_.push_back(s);
        result_.mined.support.emplace(s, total[i]);
      }
    }
    result_.mined.large_by_k.push_back(global_large_prev_);

    PassReport rep;
    rep.k = 1;
    rep.candidates_global = static_cast<std::int64_t>(total.size());
    rep.large_global = static_cast<std::int64_t>(global_large_prev_.size());
    result_.passes.push_back(std::move(rep));
  }
}

// ---------------------------------------------------------------------------
// Candidate generation (canonical) and store build (per node).
// ---------------------------------------------------------------------------

void HpaWorkload::generate_candidates(std::size_t k) {
  // Real HPA: every node scans the full candidate stream and keeps its own
  // share. The scan itself is identical on all nodes, so it is executed
  // once here; each node is charged the full scan in virtual time.
  cand_by_owner_.assign(cfg_.app_nodes, {});
  total_candidates_ = 0;
  mining::for_each_candidate(global_large_prev_, [&](const Itemset& c) {
    ++total_candidates_;
    const std::size_t gline = global_line(c);
    cand_by_owner_[owner_of_line(gline)].emplace_back(local_line(gline), c);
  });

  PassReport rep;
  rep.k = k;
  rep.candidates_global = total_candidates_;
  rep.candidates_per_node.resize(cfg_.app_nodes);
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
    rep.candidates_per_node[i] =
        static_cast<std::int64_t>(cand_by_owner_[i].size());
  }
  result_.passes.push_back(std::move(rep));
}

sim::Task<> HpaWorkload::build_store(std::size_t idx, std::size_t k) {
  Node& node = cluster_->node(app_id(idx));
  const cluster::CostModel& costs = node.costs();

  core::HashLineStore::Config scfg;
  scfg.num_lines = local_line_count(idx);
  scfg.memory_limit_bytes = cfg_.memory_limit_bytes;
  scfg.policy = cfg_.memory_limit_bytes < 0 ? core::SwapPolicy::kNoLimit
                                            : cfg_.policy;
  scfg.eviction = cfg_.eviction;
  scfg.tiered_remote_budget_bytes = cfg_.tiered_remote_budget_bytes;
  scfg.message_block_bytes = cfg_.message_block_bytes;
  if (cfg_.remote_determination) scfg.fetch_filter_min_count = min_count_;
  scfg.replicate_k = cfg_.replicate_k;
  scfg.quarantine_after = cfg_.quarantine_after;
  scfg.integrity_disk_shadow = cfg_.integrity_disk_shadow;
  scfg.rpc_deadline = cfg_.rpc_deadline;
  scfg.rpc_max_retries = cfg_.rpc_max_retries;
  scfg.rpc_window = cfg_.rpc_window;
  scfg.trace = cfg_.trace;
  stores_[idx] = std::make_unique<core::HashLineStore>(node, scfg,
                                                       brokers_[idx]);

  // Full candidate-stream scan (hash + destination test for every
  // candidate, §2.2 step 1).
  co_await node.compute(costs.per_candidate_gen * total_candidates_);

  // Insert this node's share into the (possibly limited) store.
  core::HashLineStore& store = *stores_[idx];
  CpuCharger charge(node, costs.per_probe);
  auto& own = cand_by_owner_[idx];
  for (const auto& [line, itemset] : own) {
    co_await store.insert(line, itemset);
    co_await charge.add(1);
  }
  co_await charge.flush();
  own.clear();
  own.shrink_to_fit();
  (void)k;
}

// ---------------------------------------------------------------------------
// Counting phase: sender scans and ships k-itemsets; receiver probes.
// ---------------------------------------------------------------------------

sim::Process HpaWorkload::count_sender(std::size_t idx, std::size_t k) {
  Node& node = cluster_->node(app_id(idx));
  const mining::TransactionDb& part = partitions_[idx];
  const cluster::CostModel& costs = node.costs();

  // One byte-budgeted stream per destination. The budget rounds the 4 KB
  // wire block down to a whole number of itemsets, so a stream comes due at
  // exactly the batch boundary the hand-rolled capacity check used.
  const std::int64_t itemset_wire_bytes = static_cast<std::int64_t>(k) * 4 + 4;
  const std::int64_t batch_capacity =
      std::max<std::int64_t>(1, cfg_.message_block_bytes / itemset_wire_bytes);

  std::vector<transport::Stream<CountMsg>> streams;
  streams.reserve(cfg_.app_nodes);
  for (std::size_t j = 0; j < cfg_.app_nodes; ++j) {
    streams.emplace_back(batch_capacity * itemset_wire_bytes);
  }

  auto flush = [&](std::size_t owner) -> sim::Task<> {
    if (streams[owner].empty()) co_return;
    auto closed = streams[owner].take();
    node.send_to(app_id(owner), kCountData, closed.bytes,
                 std::move(closed.batch));
    co_await node.compute(costs.per_message_cpu);
  };

  const auto keep = [this](mining::Item it) {
    return it < is_large1_.size() && is_large1_[it] != 0;
  };

  const std::int64_t bytes_per_tx =
      part.empty() ? 1 : std::max<std::int64_t>(1, part.approx_bytes() /
                              static_cast<std::int64_t>(part.size()));
  std::int64_t pending_bytes = 0;
  CpuCharger gen(node, costs.per_itemset_generate);
  CpuCharger parse(node, costs.per_tx_parse);
  std::vector<Itemset> scratch;

  for (std::size_t t = 0; t < part.size(); ++t) {
    pending_bytes += bytes_per_tx;
    if (pending_bytes >= cfg_.io_block_bytes) {
      co_await node.data_disk().read(cfg_.io_block_bytes,
                                     disk::Access::kSequential);
      pending_bytes = 0;
    }
    co_await parse.add(1);

    scratch.clear();
    mining::for_each_k_subset(part.tx(t), k, keep,
                              [&](const Itemset& s) { scratch.push_back(s); });
    co_await gen.add(static_cast<std::int64_t>(scratch.size()));
    for (const Itemset& s : scratch) {
      const std::size_t owner = owner_of_line(global_line(s));
      transport::Stream<CountMsg>& stream = streams[owner];
      stream.open().itemsets.push_back(s);
      stream.note(itemset_wire_bytes);
      if (stream.due()) co_await flush(owner);
    }
  }
  if (pending_bytes > 0) {
    co_await node.data_disk().read(pending_bytes, disk::Access::kSequential);
  }
  co_await parse.flush();
  co_await gen.flush();

  // Flush stragglers, then broadcast end-of-stream (FIFO per destination
  // keeps every data block ahead of the marker).
  for (std::size_t owner = 0; owner < cfg_.app_nodes; ++owner) {
    co_await flush(owner);
  }
  for (std::size_t owner = 0; owner < cfg_.app_nodes; ++owner) {
    CountMsg eos;
    eos.eos = true;
    node.send_to(app_id(owner), kCountData, 16, std::move(eos));
    co_await node.compute(costs.per_message_cpu);
  }
}

sim::Process HpaWorkload::count_receiver(std::size_t idx, std::size_t k) {
  Node& node = cluster_->node(app_id(idx));
  const cluster::CostModel& costs = node.costs();
  core::HashLineStore& store = *stores_[idx];

  std::size_t eos_seen = 0;
  transport::Inbox inbox(node, kCountData);
  while (eos_seen < cfg_.app_nodes) {
    net::Message msg = co_await inbox.recv();
    const auto& data = msg.as<CountMsg>();
    if (data.eos) {
      ++eos_seen;
      continue;
    }
    co_await node.compute(costs.per_message_cpu +
                          costs.per_probe *
                              static_cast<std::int64_t>(data.itemsets.size()));
    for (const Itemset& s : data.itemsets) {
      const std::size_t gline = global_line(s);
      RMS_CHECK(owner_of_line(gline) == idx);
      co_await store.probe(local_line(gline), s);
    }
  }
  (void)k;
}

// ---------------------------------------------------------------------------
// Large-itemset determination and exchange.
// ---------------------------------------------------------------------------

sim::Task<> HpaWorkload::determine_large(std::size_t idx, std::size_t k) {
  Node& node = cluster_->node(app_id(idx));
  const cluster::CostModel& costs = node.costs();
  core::HashLineStore& store = *stores_[idx];

  // Bring every line home and pick local large itemsets.
  LargeList local;
  co_await store.collect([&](const mining::CountedItemset& e) {
    if (e.count >= min_count_) local.larges.push_back(e);
  });
  co_await node.compute(costs.per_probe *
                        static_cast<std::int64_t>(store.size()));

  // Broadcast local larges; await everyone else's (§2.2 step 3).
  const std::int64_t entry_bytes = static_cast<std::int64_t>(k) * 4 + 8;
  const std::int64_t payload = std::max<std::int64_t>(
      16, entry_bytes * static_cast<std::int64_t>(local.larges.size()));
  for (std::size_t j = 0; j < cfg_.app_nodes; ++j) {
    if (j == idx) continue;
    node.send_to(app_id(j), kLargeExchange, payload, LargeList{local.larges});
    co_await node.compute(costs.per_message_cpu);
  }

  std::vector<mining::CountedItemset> global = std::move(local.larges);
  transport::Inbox inbox(node, kLargeExchange);
  for (std::size_t j = 0; j + 1 < cfg_.app_nodes; ++j) {
    net::Message msg = co_await inbox.recv();
    const auto& remote = msg.as<LargeList>();
    co_await node.compute(costs.per_message_cpu);
    global.insert(global.end(), remote.larges.begin(), remote.larges.end());
  }

  std::sort(global.begin(), global.end(),
            [](const mining::CountedItemset& a,
               const mining::CountedItemset& b) { return a.items < b.items; });

  if (idx == 0) {
    // Record the canonical global large set for pass k.
    global_large_prev_.clear();
    std::vector<Itemset> large_k;
    for (const mining::CountedItemset& e : global) {
      large_k.push_back(e.items);
      result_.mined.support.emplace(e.items, e.count);
    }
    global_large_prev_ = large_k;
    result_.mined.large_by_k.push_back(std::move(large_k));
  }
}

// ---------------------------------------------------------------------------
// Per-pass report assembly (PhasedRunner end_pass hook).
// ---------------------------------------------------------------------------

void HpaWorkload::finish_pass_report(const runtime::PassTiming& timing) {
  PassReport& rep = result_.passes.back();
  RMS_CHECK(rep.k == timing.pass);
  rep.large_global =
      static_cast<std::int64_t>(result_.mined.large_by_k.back().size());
  rep.duration = timing.duration();
  rep.phase_time.resize(kNumPhases);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    rep.phase_time[p] = timing.phase_time(p);
  }
  rep.pagefaults_per_node.resize(cfg_.app_nodes);
  rep.swap_outs_per_node.resize(cfg_.app_nodes);
  rep.updates_per_node.resize(cfg_.app_nodes);
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
    rep.pagefaults_per_node[i] = stores_[i]->pagefaults();
    rep.swap_outs_per_node[i] = stores_[i]->swap_outs();
    rep.updates_per_node[i] = stores_[i]->updates_sent();
  }
}

// ---------------------------------------------------------------------------
// Top-level run.
// ---------------------------------------------------------------------------

void HpaWorkload::prepare_inputs() {
  if (cfg_.shared_db != nullptr) {
    db_ = cfg_.shared_db;
  } else {
    mining::QuestGenerator gen(cfg_.workload);
    generated_db_ = gen.generate();
    db_ = &generated_db_;
  }
  RMS_CHECK(!db_->empty());
  partitions_ = db_->partition(cfg_.app_nodes);
  min_count_ = static_cast<std::uint32_t>(std::max<std::int64_t>(
      1,
      static_cast<std::int64_t>(cfg_.min_support *
                                    static_cast<double>(db_->size()) +
                                0.5)));
  result_.mined.num_transactions = static_cast<std::int64_t>(db_->size());
  result_.mined.min_count = min_count_;
}

bool HpaWorkload::check_exactness() const {
  // Re-mine sequentially (the reference path the unit tests compare
  // against) and require an identical support table.
  const mining::AprioriResult seq = mining::apriori(*db_, cfg_.min_support);
  if (seq.support.size() != result_.mined.support.size()) return false;
  for (const auto& [itemset, count] : seq.support) {
    const auto it = result_.mined.support.find(itemset);
    if (it == result_.mined.support.end() || it->second != count) {
      return false;
    }
  }
  return true;
}

HpaResult HpaWorkload::run() {
  // World construction.
  build_partition_cuts();
  cluster::ClusterConfig ccfg = cfg_.cluster;
  ccfg.num_nodes = cfg_.app_nodes + cfg_.memory_nodes;
  own_cluster_ = std::make_unique<cluster::Cluster>(*sim_, ccfg);
  cluster_ = own_cluster_.get();
  if (cfg_.profiler != nullptr) {
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      cluster_->node(static_cast<cluster::NodeId>(i))
          .set_profile_hook(cfg_.profiler);
    }
  }
  prepare_inputs();

  // Memory-available nodes: servers + monitors.
  std::vector<NodeId> memory_ids;
  std::vector<NodeId> app_ids;
  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i)
    memory_ids.push_back(mem_id(i));
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) app_ids.push_back(app_id(i));

  servers_.resize(cfg_.memory_nodes);
  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i) {
    Node& node = cluster_->node(mem_id(i));
    core::MemoryServer::Config mscfg;
    mscfg.message_block_bytes = cfg_.message_block_bytes;
    mscfg.rpc_window = cfg_.rpc_window;
    mscfg.trace = cfg_.trace;
    servers_[i] = std::make_unique<core::MemoryServer>(node, mscfg);
    sim_->spawn(servers_[i]->serve());
    sim_->spawn(core::availability_monitor(
        node, core::MonitorConfig{cfg_.monitor_interval, app_ids}));
  }

  // Application nodes: one placement::MemoryBroker each (availability view
  // + destination policy), an availability client feeding it with the
  // migration hook, plus a failure detector whose verdicts re-home lines
  // off dead holders.
  own_brokers_.resize(cfg_.app_nodes);
  brokers_.resize(cfg_.app_nodes);
  stores_.resize(cfg_.app_nodes);
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
    own_brokers_[i] = std::make_unique<placement::MemoryBroker>(
        memory_ids, cfg_.placement, static_cast<std::uint64_t>(app_id(i)));
    brokers_[i] = own_brokers_[i].get();
    if (cfg_.stale_after_intervals > 0) {
      brokers_[i]->set_max_age(cfg_.monitor_interval *
                               cfg_.stale_after_intervals);
    }
    if (cfg_.trace != nullptr) {
      brokers_[i]->set_trace(cfg_.trace, static_cast<std::int32_t>(app_id(i)));
    }
    core::ClientConfig clcfg;
    clcfg.shortage_threshold_bytes = cfg_.shortage_threshold_bytes;
    sim_->spawn(core::availability_client(
        cluster_->node(app_id(i)), *brokers_[i], clcfg,
        [this, i](NodeId holder) -> sim::Task<> {
          if (stores_[i]) co_await stores_[i]->migrate_away(holder);
        }));
    if (uses_remote_memory_policy()) {
      core::DetectorConfig dcfg;
      dcfg.expected_interval = cfg_.monitor_interval;
      dcfg.miss_threshold = cfg_.suspect_after_misses;
      sim_->spawn(core::failure_detector(
          cluster_->node(app_id(i)), *brokers_[i], dcfg,
          [this, i](NodeId suspect) -> sim::Task<> {
            if (stores_[i]) co_await stores_[i]->handle_holder_failure(suspect);
          }));
    }
  }

  // Fault injection: withdrawals of memory-available nodes (Figure 5).
  for (const HpaConfig::Withdrawal& w : cfg_.withdrawals) {
    RMS_CHECK(w.memory_node_index < cfg_.memory_nodes);
    Node& victim = cluster_->node(mem_id(w.memory_node_index));
    sim_->call_at(w.at, [&victim] {
      victim.memory().external_bytes = victim.memory().total_bytes;
    });
  }

  // Fault injection: crash-stops, loss bursts, and corruption episodes
  // (robustness extensions).
  {
    cluster::FaultPlan plan;
    for (const HpaConfig::Crash& c : cfg_.crashes) {
      RMS_CHECK(c.memory_node_index < cfg_.memory_nodes);
      plan.crashes.push_back(cluster::FaultPlan::Crash{
          mem_id(c.memory_node_index), c.at, c.restart_at});
    }
    plan.loss_bursts = cfg_.loss_bursts;
    bool any_wire_corruption = false;
    for (const HpaConfig::Corruption& c : cfg_.corruption) {
      NodeId focus = -1;
      if (c.memory_node_index >= 0) {
        RMS_CHECK(static_cast<std::size_t>(c.memory_node_index) <
                  cfg_.memory_nodes);
        focus = mem_id(static_cast<std::size_t>(c.memory_node_index));
      }
      plan.corruption.push_back(cluster::FaultPlan::Corruption{
          c.at, c.duration, c.flip_rate, c.rest_flip_rate, focus, c.scrub});
      if (c.flip_rate > 0.0) any_wire_corruption = true;
    }
    // The corruptor is installed only when an episode needs it: with no
    // injection the delivery path never draws from the corruption RNG and
    // results stay bit-identical with pre-integrity builds.
    if (any_wire_corruption) {
      cluster_->network().set_corruptor(core::corrupt_line_payloads);
    }
    cluster::CorruptionHooks hooks;
    if (!cfg_.corruption.empty()) {
      hooks.at_rest = [this](NodeId node, double rate) {
        for (auto& server : servers_) {
          if (node >= 0 && server->node().id() != node) continue;
          server->corrupt_stored(rate, corrupt_rest_rng_);
        }
      };
      hooks.scrub = [this](NodeId node) {
        for (auto& server : servers_) {
          if (node >= 0 && server->node().id() != node) continue;
          server->verify_stored();
        }
      };
    }
    plan.install(*cluster_, hooks);
  }

  if (cfg_.metrics != nullptr) {
    register_gauges();
    sim_->spawn(obs::sample_process(*sim_, *cfg_.metrics));
  }

  // Mining proper: the generic phased runner owns barriers, phase spans,
  // invariant hooks, and per-pass report assembly; this class is the
  // Workload it drives. first_pass is 2 because pass 1 is the prologue
  // (no hash-line store, no phases — see pass1()).
  runtime::RunnerConfig rcfg;
  rcfg.participants = cfg_.app_nodes;
  rcfg.first_pass = 2;
  rcfg.max_pass = cfg_.max_k;
  rcfg.validate_invariants = cfg_.validate_invariants;
  // Let the first availability broadcasts land before any swap decision.
  rcfg.warmup = msec(10);
  rcfg.trace = cfg_.trace;
  runtime::PhasedRunner runner(*sim_, *this, rcfg);
  runner.start();
  sim_->run();
  RMS_CHECK_MSG(runner.finished(),
                "simulation drained before mining finished");
  result_.total_time = runner.total_time();
  result_.phase_names = runner.phases().names();

  // Assemble mining metadata and merged statistics.
  for (std::size_t p = 0; p < result_.passes.size(); ++p) {
    result_.mined.passes.push_back(mining::PassInfo{
        result_.passes[p].k, result_.passes[p].candidates_global,
        result_.passes[p].large_global});
  }
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    Node& node = cluster_->node(static_cast<NodeId>(i));
    result_.stats.merge(node.stats());
    result_.stats.merge(node.data_disk().stats());
    result_.stats.merge(node.swap_disk().stats());
  }
  result_.stats.merge(cluster_->network().stats());
  // Backend-scoped counters live in the stores' own registries; "store.*"
  // keys duplicate node-level bumps already merged above, so only the
  // "backend."-namespaced ones are exported.
  for (const auto& [name, value] : store_stats_total_.counters()) {
    if (value != 0 && name.starts_with("backend.")) {
      result_.stats.bump(name, value);
    }
  }
  // Placement decision counters live in the brokers (which outlive the
  // per-pass stores); zero-valued slots are pre-registered scratch and are
  // skipped so disk-only runs do not grow placement keys.
  for (const auto& broker : brokers_) {
    for (const auto& [name, value] : broker->stats().counters()) {
      if (value != 0) result_.stats.bump(name, value);
    }
  }
  result_.failover = failover_total_;
  result_.integrity = integrity_total_;

  // Destroy still-suspended daemon frames (monitors, servers) while the
  // cluster objects their locals reference are alive.
  sim_->shutdown();
  // The gauges registered above capture this Runner; drop them before the
  // captured state dies with us (the recorded series stays).
  if (cfg_.metrics != nullptr) cfg_.metrics->clear_gauges();
  return result_;
}

void HpaWorkload::register_gauges() {
  obs::MetricsSampler& m = *cfg_.metrics;
  m.set_interval(cfg_.monitor_interval);
  // Per-application-node residency and RPC gauges. Stores are rebuilt each
  // pass and torn down at pass end, so every callback null-checks.
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
    const auto node = static_cast<std::int32_t>(app_id(i));
    const auto store_gauge = [this, i](auto fn) {
      return [this, i, fn]() -> double {
        return stores_[i] ? fn(*stores_[i]) : 0.0;
      };
    };
    m.add_gauge("resident_bytes", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.resident_bytes());
    }));
    m.add_gauge("remote_held_bytes", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.remote_held_bytes());
    }));
    m.add_gauge("lines_resident", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.resident_lines());
    }));
    m.add_gauge("lines_remote", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.remote_lines());
    }));
    m.add_gauge("lines_disk", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.disk_lines());
    }));
    m.add_gauge("outstanding_rpcs", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.outstanding_rpcs());
    }));
    m.add_gauge("rpc_window", node, store_gauge([](const auto& s) {
      return static_cast<double>(s.rpc_window());
    }));
    m.add_gauge("heartbeat_staleness_s", node, [this, i]() -> double {
      return to_seconds(brokers_[i]->oldest_report_age(sim_->now()));
    });
  }
  // Per-memory-node donation (how much RAM the node is lending out).
  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i) {
    const auto node = static_cast<std::int32_t>(mem_id(i));
    m.add_gauge("donated_bytes", node, [this, i]() -> double {
      return static_cast<double>(
          cluster_->node(mem_id(i)).memory().donated_bytes);
    });
  }
  // Cluster-wide: kernel event throughput (a cheap progress heartbeat).
  m.add_gauge("executed_events", -1, [this]() -> double {
    return static_cast<double>(sim_->executed_events());
  });
}

// ---------------------------------------------------------------------------
// Scheduled-job mode: run inside a shared sched::World.
// ---------------------------------------------------------------------------

void HpaWorkload::launch(const sched::JobEnv& env,
                         std::function<void()> on_done) {
  RMS_CHECK_MSG(cfg_.metrics == nullptr && cfg_.profiler == nullptr,
                "scheduled jobs do not own observability sinks");
  RMS_CHECK_MSG(cfg_.withdrawals.empty() && cfg_.crashes.empty() &&
                    cfg_.loss_bursts.empty() && cfg_.corruption.empty(),
                "fault injection belongs to the world, not a scheduled job");
  RMS_CHECK(env.sim != nullptr && env.cluster != nullptr);
  RMS_CHECK_MSG(env.app_nodes.size() == cfg_.app_nodes,
                "slot lease must match the job's participant count");
  RMS_CHECK(env.brokers.size() == cfg_.app_nodes);
  sim_ = env.sim;
  cluster_ = env.cluster;
  ext_app_ids_ = env.app_nodes;
  brokers_ = env.brokers;
  slots_ = env.slots;

  build_partition_cuts();
  prepare_inputs();

  // Stores are rebuilt each pass; bind the slots to getters so world
  // daemons always reach whatever store the slot carries right now.
  stores_.resize(cfg_.app_nodes);
  if (slots_ != nullptr) {
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      slots_->bind(app_id(i), [this, i]() -> core::HashLineStore* {
        return stores_[i].get();
      });
    }
  }

  runtime::RunnerConfig rcfg;
  rcfg.participants = cfg_.app_nodes;
  rcfg.first_pass = 2;
  rcfg.max_pass = cfg_.max_k;
  rcfg.validate_invariants = cfg_.validate_invariants;
  // Availability broadcasts are already flowing in a long-lived world, but
  // keep the single-run warmup so a job admitted at t=0 behaves alike.
  rcfg.warmup = msec(10);
  rcfg.trace = cfg_.trace;
  rcfg.tracks.reserve(cfg_.app_nodes);
  for (NodeId id : ext_app_ids_) {
    rcfg.tracks.push_back(static_cast<std::int32_t>(id));
  }
  rcfg.on_finished = std::move(on_done);
  runner_ = std::make_unique<runtime::PhasedRunner>(*sim_, *this, rcfg);
  runner_->start();
}

sim::Task<std::int64_t> HpaWorkload::reclaim(std::int64_t target_bytes) {
  std::int64_t freed = 0;
  for (auto& store : stores_) {
    if (freed >= target_bytes) break;
    if (store) freed += co_await store->reclaim(target_bytes - freed);
  }
  co_return freed;
}

std::int64_t HpaWorkload::donated_bytes() const {
  std::int64_t sum = 0;
  for (const auto& store : stores_) {
    if (store) sum += store->remote_held_bytes();
  }
  return sum;
}

sched::JobReport HpaWorkload::harvest() {
  sched::JobReport rep;
  rep.completed = runner_ != nullptr && runner_->finished();
  if (runner_ != nullptr) {
    rep.total_time = runner_->total_time();
    rep.passes = runner_->passes();
    rep.phase_names = runner_->phases().names();
  }
  // Stores are torn down at every pass end; the per-pass reports carry the
  // counters.
  for (const PassReport& p : result_.passes) {
    for (std::int64_t v : p.pagefaults_per_node) rep.pagefaults += v;
    for (std::int64_t v : p.swap_outs_per_node) rep.swap_outs += v;
    for (std::int64_t v : p.updates_per_node) rep.updates_sent += v;
  }
  rep.degraded_evictions = failover_total_.degraded_evictions;
  if (rep.completed) {
    rep.exact = check_exactness();
    rep.summary = "large=" + std::to_string(result_.mined.support.size());
  }
  if (slots_ != nullptr) {
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      slots_->unbind(app_id(i));
    }
  }
  return rep;
}

/// Owns the config copy and the workload it parameterizes.
class HpaJob final : public sched::JobRuntime {
 public:
  explicit HpaJob(HpaConfig cfg) : cfg_(std::move(cfg)), workload_(cfg_) {}

  const char* workload_name() const override { return "hpa"; }
  void launch(const sched::JobEnv& env,
              std::function<void()> on_done) override {
    workload_.launch(env, std::move(on_done));
  }
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes) override {
    return workload_.reclaim(target_bytes);
  }
  std::int64_t donated_bytes() const override {
    return workload_.donated_bytes();
  }
  sched::JobReport harvest() override { return workload_.harvest(); }

 private:
  HpaConfig cfg_;
  HpaWorkload workload_;
};

}  // namespace

HpaResult run_hpa(const HpaConfig& config) {
  HpaWorkload workload(config);
  return workload.run();
}

sched::JobRuntimePtr make_hpa_job(HpaConfig config) {
  return std::make_unique<HpaJob>(std::move(config));
}

std::vector<double> paper_table3_weights() {
  return {602559, 641243, 582149, 614412, 604851, 596359, 622679, 607629};
}

std::int64_t PassReport::max_pagefaults() const {
  std::int64_t m = 0;
  for (std::int64_t f : pagefaults_per_node) m = std::max(m, f);
  return m;
}

const PassReport* HpaResult::pass(std::size_t k) const {
  for (const PassReport& p : passes) {
    if (p.k == k) return &p;
  }
  return nullptr;
}

}  // namespace rms::hpa
