// Hash Partitioned Apriori (HPA) on the simulated ATM-connected PC cluster.
//
// This is the paper's application (§2.2, §3.3): candidate itemsets are
// partitioned across application execution nodes by a hash function; during
// the counting phase each node scans its local transaction partition, forms
// k-itemsets, and ships each to the owner node in 4 KB message blocks; the
// owner probes its hash-line store — which is where the memory limit and
// the remote-memory machinery of core:: take over.
//
// One call to `run_hpa` builds the whole world (cluster, disks, monitors,
// memory servers), mines to completion, and returns both the mining result
// (bit-comparable with the sequential miner) and the per-pass timing and
// fault statistics the paper's tables and figures are built from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/fault.hpp"
#include "common/stats.hpp"
#include "core/failover.hpp"
#include "core/integrity.hpp"
#include "core/policy.hpp"
#include "mining/apriori.hpp"
#include "mining/generator.hpp"
#include "placement/placement.hpp"
#include "sched/job.hpp"

namespace rms::obs {
class TraceRecorder;
class MetricsSampler;
class ProfileHook;
}

namespace rms::hpa {

struct HpaConfig {
  std::size_t app_nodes = 8;      // the paper's evaluation uses 8 (§5.1)
  std::size_t memory_nodes = 16;  // maximum memory-available nodes

  mining::QuestParams workload = mining::QuestParams::paper_experiment();
  double min_support = 0.001;  // paper experiment: 0.1%

  std::size_t hash_lines = 800'000;        // global candidate hash lines
  std::int64_t message_block_bytes = 4096; // §5.1
  std::int64_t io_block_bytes = 65536;     // §5.1

  /// Per-node memory usage limit for candidate itemsets; -1 disables.
  std::int64_t memory_limit_bytes = -1;
  core::SwapPolicy policy = core::SwapPolicy::kNoLimit;
  /// Victim selection for evictions (paper: LRU; others for ablation).
  core::EvictionPolicy eviction = core::EvictionPolicy::kLru;
  /// Swap-destination strategy for each node's placement::MemoryBroker
  /// (--placement on the benches). kPaperRoundRobin is bit-identical to the
  /// paper's hard-coded heuristic.
  placement::PolicyKind placement = placement::PolicyKind::kPaperRoundRobin;
  /// kTiered only: per-node byte budget for primary copies parked in remote
  /// memory; evictions past it spill to the local disk (-1 = unlimited).
  std::int64_t tiered_remote_budget_bytes = -1;
  /// Extension: memory servers filter sub-threshold entries out of
  /// end-of-pass fetches ("remote determination"), shrinking the collect
  /// transfer. Off by default (the paper ships lines back whole).
  bool remote_determination = false;

  /// Relative share of hash lines owned by each application node. Empty:
  /// uniform (line mod app_nodes). The paper's hash function produced a
  /// ~10% spread (Table 3); `paper_table3_weights()` reproduces those
  /// proportions so skew-dependent effects (the busiest node still swapping
  /// at the 15 MB limit) appear. Requires hash_lines % 10000 == 0.
  std::vector<double> partition_weights;

  Time monitor_interval = sec(3);
  std::int64_t shortage_threshold_bytes = 256 << 10;
  std::size_t max_k = mining::Itemset::kMaxK;

  cluster::ClusterConfig cluster;  // costs/link/disks; num_nodes is derived

  /// Fault injection for the migration experiment (Figure 5): at time `at`,
  /// memory-available node #`memory_node_index` loses all its free memory.
  struct Withdrawal {
    std::size_t memory_node_index = 0;
    Time at = 0;
  };
  std::vector<Withdrawal> withdrawals;

  // ---- failure injection + failover (robustness extension) ----
  /// Crash-stop memory-available node #`memory_node_index` at `at`
  /// (its stored lines vanish); optionally restart it at `restart_at`.
  struct Crash {
    std::size_t memory_node_index = 0;
    Time at = 0;
    Time restart_at = -1;  // < 0: stays down
  };
  std::vector<Crash> crashes;
  /// Scripted periods of elevated message loss on every link.
  std::vector<cluster::FaultPlan::LossBurst> loss_bursts;

  // ---- corruption injection + integrity (this extension) ----
  /// Scripted payload-corruption episodes. While active, line payloads on
  /// the wire flip a count bit with probability `flip_rate` per payload
  /// (focused on one memory node's links when `memory_node_index` >= 0,
  /// cluster-wide at -1); `rest_flip_rate` corrupts stored lines at rest on
  /// the matching memory servers once at `at`; `scrub` schedules a server
  /// verify pass at `at + duration` that drops mismatched copies.
  struct Corruption {
    Time at = 0;
    Time duration = 0;
    double flip_rate = 0.0;
    double rest_flip_rate = 0.0;
    std::ptrdiff_t memory_node_index = -1;  // -1: every node / link
    bool scrub = false;
  };
  std::vector<Corruption> corruption;
  /// Quarantine a holder in the placement broker after this many checksum
  /// mismatches on payloads it served (it stops attracting swap-outs).
  int quarantine_after = 3;
  /// kTiered only: keep a checksummed local disk shadow of every remotely
  /// parked line, enabling corruption repair without replicate_k.
  bool integrity_disk_shadow = false;
  /// Mirror each swapped-out line on a second memory node (0 or 1).
  int replicate_k = 0;
  /// Per-attempt RPC deadline / retry budget for the swap path.
  Time rpc_deadline = msec(2000);
  int rpc_max_retries = 2;
  /// Sliding-window size for swap-path and migration RPCs (transport flow
  /// control). 1 preserves the paper's fully synchronous behaviour
  /// bit-for-bit; >= 2 pipelines end-of-pass fetches across holders.
  int rpc_window = 1;
  /// Failure detector: declare a memory node dead after this many missed
  /// availability heartbeats.
  int suspect_after_misses = 3;
  /// Availability staleness: entries older than this many monitor intervals
  /// stop attracting swap-outs (0 = never expire).
  int stale_after_intervals = 0;
  /// Debug: run HashLineStore::check_invariants() (residency core plus the
  /// active backend's replica/holder/batch bookkeeping) at every phase
  /// barrier. Pure assertions — no virtual-time effect. Failover tests turn
  /// this on.
  bool validate_invariants = false;

  /// Reuse a pre-generated database (the benches sweep many configurations
  /// over one workload); when null the workload parameters generate one.
  const mining::TransactionDb* shared_db = nullptr;

  // ---- observability (all null by default: zero-cost when disabled) ----
  /// Trace sink: swap/RPC/failover spans plus per-pass phase spans. Must
  /// outlive the run. Recording is passive — virtual-time results are
  /// bit-identical with or without it.
  obs::TraceRecorder* trace = nullptr;
  /// Gauge sampler: per-node residency/RPC/staleness time-series at
  /// `monitor_interval` granularity. The runner registers its gauges, spawns
  /// the sampling process, and clears the gauges before returning.
  obs::MetricsSampler* metrics = nullptr;
  /// Profiler sink: when set, every node feeds CPU and disk busy intervals
  /// directly to it (bypassing the trace ring) so per-pass attribution stays
  /// exact even when the ring drops events. Stamped by obs::RunObserver; pair
  /// with `trace` (the profiler also consumes the recorded spans).
  obs::ProfileHook* profiler = nullptr;
};

// HPA's phase ids in the runtime phase registry, in registration (and
// execution) order. HpaResult::phase_names carries the matching names.
inline constexpr std::size_t kBuildPhase = 0;      // candidate gen + store
inline constexpr std::size_t kCountPhase = 1;      // scan + distributed probe
inline constexpr std::size_t kDeterminePhase = 2;  // collect + large exchange
inline constexpr std::size_t kNumPhases = 3;

struct PassReport {
  std::size_t k = 0;
  std::int64_t candidates_global = 0;  // paper Table 2 "C"
  std::int64_t large_global = 0;       // paper Table 2 "L"
  Time duration = 0;                   // virtual pass time (max across nodes)
  /// Barrier-to-barrier phase breakdown, indexed by the runtime phase
  /// registry (kBuildPhase/kCountPhase/kDeterminePhase); empty for pass 1.
  std::vector<Time> phase_time;
  std::vector<std::int64_t> candidates_per_node;  // paper Table 3
  std::vector<std::int64_t> pagefaults_per_node;
  std::vector<std::int64_t> swap_outs_per_node;
  std::vector<std::int64_t> updates_per_node;

  /// phase_time by registry id; 0 when the pass recorded no phases.
  Time phase(std::size_t p) const {
    return p < phase_time.size() ? phase_time[p] : 0;
  }
  std::int64_t max_pagefaults() const;  // paper Table 4 "Max"
};

struct HpaResult {
  std::vector<PassReport> passes;
  Time total_time = 0;

  /// Phase-registry names, indexed like PassReport::phase_time ("build",
  /// "count", "determine") — report rendering and the artifact key their
  /// phase tables off this so the layers cannot drift.
  std::vector<std::string> phase_names;

  /// Mining output in the same shape as the sequential miner, for equality
  /// checks and rule derivation.
  mining::AprioriResult mined;

  /// Merged counters from every node, network and disk.
  StatsRegistry stats;

  /// Failover accounting merged across every node's store and every pass
  /// (all zero when no fault-handling machinery fired).
  core::FailoverStats failover;

  /// Line-integrity accounting (checksums, repair, re-replication) merged
  /// the same way; all zero when nothing corrupted and redundancy held.
  core::IntegrityStats integrity;

  const PassReport* pass(std::size_t k) const;
};

HpaResult run_hpa(const HpaConfig& config);

/// Scheduled-job mode: the same miner parameterized by `config`, run inside
/// a shared sched::World on scheduler-leased slots. config.metrics and
/// config.profiler must be null and every fault-injection list empty (the
/// world owns the cluster); config.memory_nodes is ignored — the world
/// supplies the donor pool. config.trace may point at the world's shared
/// recorder.
sched::JobRuntimePtr make_hpa_job(HpaConfig config);

/// The candidate-partition proportions the paper observed across its 8
/// application nodes (Table 3: 602,559 ... 607,629 of 4,871,881).
std::vector<double> paper_table3_weights();

}  // namespace rms::hpa
