// Human-readable run reports for examples and experiment harnesses.
#pragma once

#include "hpa/hpa.hpp"

namespace rms::obs {
struct RunProfile;
}

namespace rms::hpa {

/// Print per-pass candidate/large counts and timings plus swap statistics
/// (the quick view examples show after a run). With a profile, additionally
/// render the per-pass attribution table, the critical path, and loud
/// warnings when the trace ring or the profiler buffer dropped events.
void print_report(const HpaResult& result,
                  const obs::RunProfile* profile = nullptr);

/// Describe a configuration in one line (policy, limit, node counts).
std::string describe(const HpaConfig& config);

}  // namespace rms::hpa
