// Human-readable run reports for examples and experiment harnesses.
#pragma once

#include "hpa/hpa.hpp"

namespace rms::hpa {

/// Print per-pass candidate/large counts and timings plus swap statistics
/// (the quick view examples show after a run).
void print_report(const HpaResult& result);

/// Describe a configuration in one line (policy, limit, node counts).
std::string describe(const HpaConfig& config);

}  // namespace rms::hpa
