// Transport: the unified async messaging stack for the cluster.
//
// Node::request_with_deadline is the mechanism (stable reply tag,
// exponential backoff, timeout sentinel); Transport is the policy layer
// every RPC caller shares — it subsumes the old cluster::RpcClient and adds
// per-peer flow control:
//
//   - Each peer gets a lazily created Connection with a sliding window of
//     outstanding requests (`TransportOptions::window`, default 1 — the old
//     fully synchronous behaviour). The (n+1)-th concurrent call to a peer
//     suspends on an awaitable credit and resumes, FIFO, when a slot frees.
//   - pipeline() issues a batch of RPCs through up to `window` concurrent
//     workers and returns the completion set in issue order — this is what
//     lets end-of-pass collection overlap fetches across memory servers.
//   - Failure policy: deadline/retry/backoff are per-transport options;
//     when a call to a peer exhausts every attempt, `on_failure` fires once
//     per suspicion episode (re-armed by a later success or by forgive()).
//
// At window = 1 with credit available, call() adds zero scheduler events
// over the old RpcClient path, so paper-figure benches stay bit-identical
// unless a window is explicitly swept.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/task.hpp"
#include "transport/tags.hpp"

namespace rms::obs {
class TraceRecorder;
}

namespace rms::transport {

/// Per-traffic-class transport policy knobs.
struct TransportOptions {
  /// Per-attempt deadline; doubles on each retry (exponential backoff).
  Time deadline = msec(2000);
  /// Retries beyond the first attempt before the call is declared failed.
  int max_retries = 2;
  /// Maximum outstanding requests per peer connection. 1 preserves the old
  /// synchronous one-call-at-a-time behaviour bit-for-bit.
  int window = 1;
  /// Optional trace sink (null: no tracing). Each call records a span plus
  /// retry/failure instants on the caller's node track.
  obs::TraceRecorder* trace = nullptr;
};

class Transport;

/// Per-peer state: the sliding window of outstanding requests plus the FIFO
/// of callers waiting for a credit.
class Connection {
 public:
  Connection(Transport& transport, net::NodeId peer)
      : transport_(transport), peer_(peer) {}

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  net::NodeId peer() const { return peer_; }
  int in_flight() const { return in_flight_; }
  /// High-water mark of concurrently outstanding requests.
  int peak_in_flight() const { return peak_in_flight_; }
  /// Calls that had to suspend waiting for a window slot.
  std::int64_t credit_waits() const { return credit_waits_; }

 private:
  friend class Transport;

  struct CreditAwaiter {
    Connection& conn;
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  /// Awaitable credit: synchronous when a slot is free (zero extra events),
  /// otherwise suspends FIFO until release() hands the slot over.
  CreditAwaiter acquire() { return CreditAwaiter{*this}; }
  void release();

  Transport& transport_;
  net::NodeId peer_;
  int in_flight_ = 0;
  int peak_in_flight_ = 0;
  std::int64_t credit_waits_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

class Transport {
 public:
  Transport(cluster::Node& node, TransportOptions options);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Invoked synchronously the first time a peer exhausts every attempt of
  /// a call (the peer is presumed crashed). Fires once per suspicion
  /// episode: re-armed when a later call to the peer succeeds or when the
  /// failover layer calls forgive(). Must not suspend.
  void set_on_failure(std::function<void(net::NodeId)> fn) {
    on_failure_ = std::move(fn);
  }

  /// Clear the failure latch for `peer` (the failover layer decided the
  /// peer is alive again), so a later total failure fires on_failure anew.
  void forgive(net::NodeId peer) { failure_latched_.erase(peer); }

  /// Issue one deadline-bounded call, holding a window credit on the peer's
  /// connection for its duration. Suspends first if the window is full.
  /// `op` is a free-form service-tag annotation recorded on the call's trace
  /// span (core::rpc_op; 0 = untagged) — it never affects behaviour.
  sim::Task<cluster::RpcResult> call(net::Message msg, std::int64_t op = 0);

  /// Issue a batch of RPCs and await the completion set (indexed in issue
  /// order). With window <= 1 the batch runs strictly sequentially — the
  /// exact pre-transport event sequence; otherwise up to `window` worker
  /// processes overlap the calls, each still subject to per-peer credits.
  sim::Task<std::vector<cluster::RpcResult>> pipeline(
      std::vector<net::Message> msgs, std::int64_t op = 0);

  /// One-way send through the transport (no reply, no credit: flow control
  /// for push traffic is byte-budgeted batching via transport::Stream).
  void send(net::Message msg) { node_.send(std::move(msg)); }
  template <typename T>
  void send_to(net::NodeId dst, net::Tag tag, std::int64_t bytes, T body) {
    node_.send_to(dst, tag, bytes, std::move(body));
  }

  const TransportOptions& options() const { return options_; }
  cluster::Node& node() { return node_; }

  // ---- Introspection ----
  /// Attempts beyond the first, summed over every call.
  std::int64_t retries() const { return retries_; }
  /// Deadlines that expired (every attempt but a successful last one).
  std::int64_t deadline_misses() const { return deadline_misses_; }
  /// Calls that exhausted every attempt.
  std::int64_t failed_calls() const { return failed_calls_; }
  /// Back-to-back failed calls to `peer` since its last success.
  int consecutive_failures(net::NodeId peer) const {
    const auto it = consecutive_failures_.find(peer);
    return it == consecutive_failures_.end() ? 0 : it->second;
  }
  /// Calls issued but not yet returned, across all peers (a metrics gauge:
  /// visible spikes during retry storms and pipelined bursts).
  std::int64_t in_flight() const { return in_flight_; }
  /// Outstanding calls on one peer's connection window.
  int in_flight_to(net::NodeId peer) const;
  /// Calls that suspended waiting for a window credit, across all peers.
  std::int64_t credit_waits() const;
  /// High-water mark of one connection's window occupancy.
  int peak_in_flight_to(net::NodeId peer) const;
  int window() const { return options_.window; }

 private:
  friend class Connection;
  friend sim::Process pipeline_worker(Transport& transport,
                                      std::vector<net::Message>& msgs,
                                      std::vector<cluster::RpcResult>& out,
                                      std::size_t& next, std::int64_t op);

  Connection& connection(net::NodeId peer);

  cluster::Node& node_;
  TransportOptions options_;
  std::function<void(net::NodeId)> on_failure_;
  std::int64_t retries_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t failed_calls_ = 0;
  std::int64_t in_flight_ = 0;
  Histogram* latency_ms_ = nullptr;  // node stats "rpc.latency_ms"
  std::unordered_map<net::NodeId, int> consecutive_failures_;
  std::unordered_map<net::NodeId, std::unique_ptr<Connection>> connections_;
  /// Peers whose current suspicion episode already fired on_failure.
  std::unordered_set<net::NodeId> failure_latched_;
};

/// Thin receive-side veneer: a named endpoint for one service tag on a
/// node's mailbox, so server loops and collectors address their traffic
/// through the transport layer's tag catalog instead of raw tag constants.
class Inbox {
 public:
  Inbox(cluster::Node& node, net::Tag tag) : node_(node), tag_(tag) {}

  net::Tag tag() const { return tag_; }
  auto recv() { return node_.mailbox().recv(tag_); }
  std::optional<net::Message> try_recv() {
    return node_.mailbox().try_recv(tag_);
  }
  std::size_t pending() { return node_.mailbox().pending(tag_); }

 private:
  cluster::Node& node_;
  net::Tag tag_;
};

}  // namespace rms::transport
