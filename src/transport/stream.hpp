// Stream<Batch>: one-way, byte-budgeted batching for push-style traffic.
//
// The paper's remote-update policy wins because it replaces blocking fault
// round-trips with one-way streamed messages coalesced into wire blocks.
// Stream is the batching half of that idiom, factored out of the three
// places that each hand-rolled it (remote-update batches in RemoteBackend,
// migration-data blocks in MemoryServer, count-phase itemset blocks in hpa):
// the caller appends operations into an open Batch, notes the accounted
// bytes of each, and flushes when the stream reports `due()` — i.e. the
// pending bytes reached the flush budget (typically message_block_bytes).
//
// Stream owns only accounting; the caller owns the Batch layout (header
// initialization via `if (stream.empty())` before appending) and the actual
// send. `take()` closes the batch and resets the stream, returning the batch
// together with its accounted bytes/ops so the caller can size the wire
// message and charge per-message CPU exactly as before.
#pragma once

#include <cstdint>
#include <utility>

#include "common/check.hpp"

namespace rms::transport {

template <typename Batch>
class Stream {
 public:
  explicit Stream(std::int64_t flush_budget_bytes)
      : budget_(flush_budget_bytes) {
    RMS_CHECK(budget_ > 0);
  }

  bool empty() const { return ops_ == 0; }
  /// True once the pending bytes reached the flush budget.
  bool due() const { return bytes_ >= budget_; }

  std::int64_t pending_bytes() const { return bytes_; }
  std::int64_t pending_ops() const { return ops_; }
  std::int64_t budget() const { return budget_; }

  /// The batch under construction. Callers initialize header fields when
  /// `empty()` and append operations directly.
  Batch& open() { return batch_; }
  /// Read-only view of the batch under construction (invariant checks).
  const Batch& peek() const { return batch_; }

  /// Account `op_bytes` of wire payload for `ops` just-appended operations.
  void note(std::int64_t op_bytes, std::int64_t ops = 1) {
    RMS_CHECK(op_bytes >= 0 && ops >= 1);
    bytes_ += op_bytes;
    ops_ += ops;
  }

  struct Closed {
    Batch batch{};
    std::int64_t bytes = 0;
    std::int64_t ops = 0;
  };

  /// Close the current batch and reset the stream for the next one.
  Closed take() {
    Closed closed{std::move(batch_), bytes_, ops_};
    batch_ = Batch{};
    bytes_ = 0;
    ops_ = 0;
    return closed;
  }

 private:
  Batch batch_{};
  std::int64_t budget_;
  std::int64_t bytes_ = 0;
  std::int64_t ops_ = 0;
};

}  // namespace rms::transport
