// TagRegistry: the central catalog of message tags on the cluster.
//
// Every message on the simulated wire carries a tag that routes it into a
// per-tag mailbox channel on the destination node (the simulated equivalent
// of the paper's per-purpose TLI transport endpoints). Before the transport
// layer existed, each subsystem hard-coded its own `constexpr Tag`; this
// registry is now the single place the tag space is laid out:
//
//   [0, kDynamicBase)            well-known service tags (the wire protocol
//                                catalog in docs/PROTOCOL.md)
//   [kDynamicBase, kReplyTagBase) runtime-registered service tags for tests
//                                and ad-hoc examples
//   [kReplyTagBase, 2^31)        per-node reply-tag windows handed out by
//                                Node::alloc_reply_tag and retired by the
//                                mailbox when an RPC completes
//
// The header is deliberately a leaf (it depends only on net::Tag) so both
// cluster/ (mailbox reply-tag retirement) and transport/ (connections,
// streams) can include it without cycles.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "net/network.hpp"

namespace rms::transport {

class TagRegistry {
 public:
  // ---- Well-known service tags (the wire-protocol catalog) ----
  /// Memory service: swap-out / swap-in / update / fetch / migration /
  /// replica traffic handled by the MemoryServer loop on memory nodes.
  static constexpr net::Tag kMemService = 100;
  /// Periodic availability broadcasts from monitor processes to the
  /// availability clients on application nodes.
  static constexpr net::Tag kAvailInfo = 110;
  /// HPA pass 1: all-to-all partial item-count exchange.
  static constexpr net::Tag kPass1Counts = 200;
  /// HPA counting phase: 4 KB blocks of k-itemsets, sender -> owner.
  static constexpr net::Tag kCountData = 201;
  /// HPA determination: all-to-all local large-itemset exchange.
  static constexpr net::Tag kLargeExchange = 202;

  /// Runtime-registered service tags start here.
  static constexpr net::Tag kDynamicBase = 1000;

  // ---- Reply-tag space ----
  // Reply tags live above all service tags; each node hands them out
  // round-robin from its own window so concurrent RPCs never collide, and
  // the window is sized so tags are effectively unique per run (8M RPCs per
  // node before a wrap). The mailbox opens a reply tag at allocation and
  // retires it when the RPC completes; reply-range deposits on a tag that is
  // not open are late stragglers and are dropped (counted, never queued).
  static constexpr net::Tag kReplyTagBase = 1 << 23;
  static constexpr net::Tag kReplyTagWindow = 1 << 23;

  static constexpr bool is_reply_tag(net::Tag tag) {
    return tag >= kReplyTagBase;
  }
  static constexpr net::Tag reply_window_start(net::NodeId node) {
    return kReplyTagBase + node * kReplyTagWindow;
  }

  /// Register (or look up) a dynamic service tag by name. Registration
  /// order determines the tag value, so deterministic call order yields
  /// deterministic tags; re-registering a name returns the same tag.
  net::Tag register_service(const std::string& name) {
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    const net::Tag tag =
        kDynamicBase + static_cast<net::Tag>(dynamic_names_.size());
    RMS_CHECK_MSG(tag < kReplyTagBase, "dynamic tag space exhausted");
    by_name_.emplace(name, tag);
    dynamic_names_.push_back(name);
    return tag;
  }

  /// Human-readable name for a tag (docs, traces, test failures).
  std::string name_of(net::Tag tag) const {
    switch (tag) {
      case kMemService: return "mem_service";
      case kAvailInfo: return "avail_info";
      case kPass1Counts: return "pass1_counts";
      case kCountData: return "count_data";
      case kLargeExchange: return "large_exchange";
      default: break;
    }
    if (is_reply_tag(tag)) return "reply";
    const auto idx = static_cast<std::size_t>(tag - kDynamicBase);
    if (tag >= kDynamicBase && idx < dynamic_names_.size()) {
      return dynamic_names_[idx];
    }
    return "unknown";
  }

  /// Process-wide registry (tests and examples that need ad-hoc tags).
  static TagRegistry& global() {
    static TagRegistry instance;
    return instance;
  }

 private:
  std::unordered_map<std::string, net::Tag> by_name_;
  std::vector<std::string> dynamic_names_;
};

}  // namespace rms::transport
