#include "transport/transport.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace rms::transport {

bool Connection::CreditAwaiter::await_ready() {
  if (conn.in_flight_ < conn.transport_.options_.window) {
    ++conn.in_flight_;
    conn.peak_in_flight_ = std::max(conn.peak_in_flight_, conn.in_flight_);
    return true;
  }
  return false;
}

void Connection::CreditAwaiter::await_suspend(std::coroutine_handle<> h) {
  ++conn.credit_waits_;
  conn.transport_.node_.stats().bump("transport.credit_waits");
  if (conn.transport_.options_.trace != nullptr) {
    conn.transport_.options_.trace->instant(
        obs::EventKind::kStall, conn.transport_.node_.id(),
        conn.transport_.node_.sim().now(), conn.peer_, conn.in_flight_);
  }
  conn.waiters_.push_back(h);
}

void Connection::release() {
  RMS_CHECK(in_flight_ > 0);
  if (!waiters_.empty()) {
    // Hand the slot straight to the longest-waiting caller (in_flight_ is
    // unchanged); wake it through the event queue for determinism.
    const std::coroutine_handle<> h = waiters_.front();
    waiters_.pop_front();
    transport_.node_.sim().schedule_now(h);
    return;
  }
  --in_flight_;
}

Transport::Transport(cluster::Node& node, TransportOptions options)
    : node_(node), options_(options) {
  RMS_CHECK(options_.deadline > 0 && options_.max_retries >= 0);
  RMS_CHECK_MSG(options_.window >= 1, "transport window must be >= 1");
  latency_ms_ = node_.stats().histogram_mut("rpc.latency_ms");
}

Connection& Transport::connection(net::NodeId peer) {
  auto it = connections_.find(peer);
  if (it == connections_.end()) {
    it = connections_
             .emplace(peer, std::make_unique<Connection>(*this, peer))
             .first;
  }
  return *it->second;
}

int Transport::in_flight_to(net::NodeId peer) const {
  const auto it = connections_.find(peer);
  return it == connections_.end() ? 0 : it->second->in_flight();
}

int Transport::peak_in_flight_to(net::NodeId peer) const {
  const auto it = connections_.find(peer);
  return it == connections_.end() ? 0 : it->second->peak_in_flight();
}

std::int64_t Transport::credit_waits() const {
  std::int64_t total = 0;
  for (const auto& [peer, conn] : connections_) total += conn->credit_waits();
  return total;
}

sim::Task<cluster::RpcResult> Transport::call(net::Message msg,
                                              std::int64_t op) {
  const net::NodeId peer = msg.dst;
  Connection& conn = connection(peer);
  co_await conn.acquire();
  const Time started = node_.sim().now();
  ++in_flight_;
  cluster::RpcResult res = co_await node_.request_with_deadline(
      std::move(msg), options_.deadline, options_.max_retries);
  --in_flight_;
  conn.release();
  retries_ += res.attempts - 1;
  // Every attempt but a successful last one expired its deadline.
  deadline_misses_ += res.ok() ? res.attempts - 1 : res.attempts;
  if (res.ok()) {
    consecutive_failures_.erase(peer);
    failure_latched_.erase(peer);  // a success ends the suspicion episode
  } else {
    ++failed_calls_;
    ++consecutive_failures_[peer];
    if (on_failure_ && failure_latched_.insert(peer).second) {
      on_failure_(peer);
    }
  }
  const Time ended = node_.sim().now();
  latency_ms_->add(to_millis(ended - started));
  if (options_.trace != nullptr) {
    options_.trace->span(obs::EventKind::kRpc, node_.id(), started, ended,
                         peer, res.attempts, op);
    if (res.attempts > 1) {
      options_.trace->instant(obs::EventKind::kRpcRetry, node_.id(), ended,
                              peer, res.attempts - 1);
    }
    if (!res.ok()) {
      options_.trace->instant(obs::EventKind::kRpcFailed, node_.id(), ended,
                              peer, res.attempts);
    }
  }
  co_return res;
}

sim::Process pipeline_worker(Transport& transport,
                             std::vector<net::Message>& msgs,
                             std::vector<cluster::RpcResult>& out,
                             std::size_t& next, std::int64_t op) {
  while (next < msgs.size()) {
    const std::size_t i = next++;
    out[i] = co_await transport.call(std::move(msgs[i]), op);
  }
}

sim::Task<std::vector<cluster::RpcResult>> Transport::pipeline(
    std::vector<net::Message> msgs, std::int64_t op) {
  std::vector<cluster::RpcResult> out(msgs.size());
  if (msgs.empty()) co_return out;
  const int workers =
      std::min<int>(options_.window, static_cast<int>(msgs.size()));
  if (workers <= 1) {
    // Strictly sequential: the exact pre-transport event sequence (no
    // worker processes are spawned, so no extra scheduler events exist).
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      out[i] = co_await call(std::move(msgs[i]), op);
    }
    co_return out;
  }
  // The worker pool pulls from a shared cursor so call issue order stays
  // the caller's order even when completions interleave. All locals outlive
  // the workers: pipeline() only returns after joining every one.
  std::size_t next = 0;
  std::vector<sim::Process> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.push_back(
        node_.sim().spawn(pipeline_worker(*this, msgs, out, next, op)));
  }
  for (const sim::Process& worker : pool) co_await worker;
  co_return out;
}

}  // namespace rms::transport
