#include "disk/disk.hpp"

#include "obs/trace.hpp"

namespace rms::disk {

DiskParams DiskParams::barracuda_7200() {
  // 7,200 rpm -> 8.33 ms/rev; paper quotes 8.8 ms avg seek, 4.2 ms avg
  // rotational wait (= half a revolution), i.e. >= 13.0 ms per random read.
  return DiskParams{"Seagate Barracuda 7200rpm", msec(8) + usec(800),
                    usec(8333), 120'000'000, usec(200)};
}

DiskParams DiskParams::dk3e1t_12000() {
  // 12,000 rpm -> 5 ms/rev; paper quotes 5 ms avg seek + 2.5 ms rotation.
  return DiskParams{"HITACHI DK3E1T 12000rpm", msec(5), msec(5), 160'000'000,
                    usec(200)};
}

DiskParams DiskParams::caviar_ide() {
  // WD Caviar 32500: ~5,200 rpm class IDE drive used for transaction data;
  // sequential scans at ~8 MB/s are what matter for the workload.
  return DiskParams{"WD Caviar 32500 IDE", msec(11), usec(11538), 64'000'000,
                    usec(500)};
}

Disk::Disk(sim::Simulation& sim, DiskParams params, std::uint64_t seed)
    : sim_(sim), params_(std::move(params)), arm_(sim, 1),
      rng_(seed, 0x5eedu) {
  RMS_CHECK(params_.transfer_bps > 0);
}

Time Disk::expected_random_access(std::int64_t bytes) const {
  return params_.avg_seek + params_.full_rotation / 2 +
         transmit_time(bytes, params_.transfer_bps) +
         params_.controller_overhead;
}

Time Disk::positioning_time(Access access) {
  if (access == Access::kSequential) return 0;
  // Seek time uniform in [0.2, 1.8] x avg (mean preserved); rotational wait
  // uniform over a revolution.
  const double seek_scale = 0.2 + 1.6 * rng_.uniform01();
  const Time seek =
      static_cast<Time>(static_cast<double>(params_.avg_seek) * seek_scale);
  const Time rot = static_cast<Time>(
      static_cast<double>(params_.full_rotation) * rng_.uniform01());
  return seek + rot;
}

sim::Task<> Disk::access(std::int64_t bytes, Access acc, const char* op) {
  RMS_CHECK(bytes > 0);
  const Time start = sim_.now();
  auto lease = co_await arm_.acquire();
  const Time service = positioning_time(acc) +
                       transmit_time(bytes, params_.transfer_bps) +
                       params_.controller_overhead;
  co_await sim_.timeout(service);
  stats_.bump(std::string("disk.") + op + ".count");
  stats_.bump(std::string("disk.") + op + ".bytes", bytes);
  stats_.sample(std::string("disk.") + op + ".latency_ms",
                to_millis(sim_.now() - start));
  if (profile_hook_ != nullptr) {
    profile_hook_->on_busy(profile_track_, obs::EventKind::kDiskIo, start,
                           sim_.now());
  }
}

sim::Task<> Disk::read(std::int64_t bytes, Access acc) {
  return access(bytes, acc, "read");
}

sim::Task<> Disk::write(std::int64_t bytes, Access acc) {
  return access(bytes, acc, "write");
}

}  // namespace rms::disk
