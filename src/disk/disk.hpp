// Mechanical disk model: seek + rotational latency + media transfer, with a
// single FCFS arm.
//
// The paper's baseline swaps candidate hash lines to a local SCSI disk and
// argues from drive specifications: a Seagate Barracuda (7,200 rpm) averages
// 8.8 ms seek + 4.2 ms rotational wait (>= 13.0 ms per random read); even a
// HITACHI DK3E1T (12,000 rpm) needs ~7.5 ms. Those two presets plus the IDE
// data disk (WD Caviar 32500) are provided; unit tests pin their means.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace rms::obs {
class ProfileHook;
enum class EventKind : std::uint8_t;
}  // namespace rms::obs

namespace rms::disk {

struct DiskParams {
  std::string model;
  Time avg_seek = msec(9);            // mean random seek
  Time full_rotation = msec(8);       // one revolution (60 s / rpm)
  std::int64_t transfer_bps = 80'000'000;  // media rate, bits/s
  Time controller_overhead = usec(500);

  /// Seagate Barracuda 4.3 GB, 7,200 rpm SCSI (the paper's swap device).
  static DiskParams barracuda_7200();
  /// HITACHI DK3E1T, 12,000 rpm (the paper's "fastest disk" reference).
  static DiskParams dk3e1t_12000();
  /// WD Caviar 32500 IDE (holds each node's transaction data file).
  static DiskParams caviar_ide();
};

enum class Access { kRandom, kSequential };

class Disk {
 public:
  Disk(sim::Simulation& sim, DiskParams params, std::uint64_t seed = 0x5eed);

  /// Blocking read: acquires the arm, pays positioning + transfer time.
  /// Sequential access skips the seek and rotational wait (the head is
  /// already positioned from the previous block).
  sim::Task<> read(std::int64_t bytes, Access access);

  /// Blocking write; mechanically identical in this model.
  sim::Task<> write(std::int64_t bytes, Access access);

  /// Expected service time of one random access of `bytes` (no queueing):
  /// avg seek + half rotation + transfer + controller.
  Time expected_random_access(std::int64_t bytes) const;

  const DiskParams& params() const { return params_; }
  StatsRegistry& stats() { return stats_; }
  const StatsRegistry& stats() const { return stats_; }

  /// Feed every access (arm queueing included) to `hook` as a kDiskIo busy
  /// interval on `track` (the owning node's id). Null detaches.
  void set_profile_hook(obs::ProfileHook* hook, std::int32_t track) {
    profile_hook_ = hook;
    profile_track_ = track;
  }

 private:
  sim::Task<> access(std::int64_t bytes, Access access, const char* op);
  Time positioning_time(Access access);

  sim::Simulation& sim_;
  DiskParams params_;
  sim::Resource arm_;
  Pcg32 rng_;
  StatsRegistry stats_;
  obs::ProfileHook* profile_hook_ = nullptr;
  std::int32_t profile_track_ = 0;
};

}  // namespace rms::disk
