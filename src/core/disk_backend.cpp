#include "core/disk_backend.hpp"

#include <algorithm>

namespace rms::core {

using Where = HashLineStore::Where;

DiskBackend::DiskBackend(HashLineStore& store)
    : SwapBackend(store),
      node_(store.node()),
      swap_outs_(&store.stats_mut().slot("backend.disk.swap_outs")),
      faults_(&store.stats_mut().slot("backend.disk.faults")) {}

sim::Task<> DiskBackend::swap_out(LineId id) {
  auto& l = store_.line(id);
  disk_store_[id] = std::move(l.entries);
  l.entries.clear();
  l.where = Where::kDisk;
  l.holder = -1;
  ++*swap_outs_;
  node_.stats().bump("store.disk_swap_out");
  co_await node_.swap_disk().write(
      std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
      disk::Access::kSequential);
}

sim::Task<> DiskBackend::fault_in(LineId id) {
  auto& l = store_.line(id);
  RMS_CHECK(l.where == Where::kDisk);
  l.where = Where::kFaulting;
  ++*faults_;
  co_await node_.swap_disk().read(
      std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
      disk::Access::kRandom);
  const auto it = disk_store_.find(id);
  RMS_CHECK(it != disk_store_.end());
  l.entries = std::move(it->second);
  disk_store_.erase(it);
  // Still kFaulting: the store charges residency and re-links the LRU.
}

sim::Task<> DiskBackend::collect_finish() {
  for (LineId id = 0; id < static_cast<LineId>(store_.num_lines()); ++id) {
    auto& l = store_.line(id);
    if (l.where != Where::kDisk) continue;
    co_await node_.swap_disk().read(
        std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
        disk::Access::kSequential);
    const auto it = disk_store_.find(id);
    RMS_CHECK(it != disk_store_.end());
    l.entries = std::move(it->second);
    disk_store_.erase(it);
    store_.make_resident(id);
  }
}

void DiskBackend::check_invariants() const {
  // Every parked line has exactly one stored copy; stored copies belong to
  // lines that are on disk or mid-fault.
  std::size_t on_disk = 0;
  for (std::size_t i = 0; i < store_.num_lines(); ++i) {
    const auto& l = store_.line(static_cast<LineId>(i));
    if (l.where != Where::kDisk) continue;
    ++on_disk;
    RMS_CHECK_MSG(disk_store_.count(static_cast<LineId>(i)) == 1,
                  "disk line without a stored copy");
  }
  for (const auto& [id, entries] : disk_store_) {
    const auto& l = store_.line(id);
    RMS_CHECK_MSG(l.where == Where::kDisk || l.where == Where::kFaulting,
                  "stored copy for a line that is not on disk");
  }
  RMS_CHECK_MSG(on_disk <= disk_store_.size(),
                "disk store lost track of parked lines");
}

}  // namespace rms::core
