#include "core/disk_backend.hpp"

#include <algorithm>

#include "core/protocol.hpp"

namespace rms::core {

using Where = HashLineStore::Where;

DiskBackend::DiskBackend(HashLineStore& store)
    : SwapBackend(store),
      node_(store.node()),
      swap_outs_(&store.stats_mut().slot("backend.disk.swap_outs")),
      faults_(&store.stats_mut().slot("backend.disk.faults")) {}

sim::Task<> DiskBackend::swap_out(LineId id) {
  auto& l = store_.line(id);
  SpillRecord rec;
  rec.checksum = line_checksum(l.entries);  // stamp before the move
  rec.entries = std::move(l.entries);
  disk_store_[id] = std::move(rec);
  l.entries.clear();
  l.where = Where::kDisk;
  l.holder = -1;
  ++*swap_outs_;
  node_.stats().bump("store.disk_swap_out");
  co_await node_.swap_disk().write(
      std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
      disk::Access::kSequential);
}

bool DiskBackend::restore_verified(LineId id) {
  const auto it = disk_store_.find(id);
  RMS_CHECK(it != disk_store_.end());
  auto& l = store_.line(id);
  if (it->second.checksum != line_checksum(it->second.entries)) {
    // The local copy rotted; there is no other copy to repair from. Never
    // restore garbage — orphan the line (resident and empty, counted).
    ++store_.integrity_mut().checksum_mismatches;
    ++store_.integrity_mut().lines_lost;
    node_.stats().bump("store.checksum_mismatches");
    node_.stats().bump("store.disk_corrupt_lines");
    disk_store_.erase(it);
    l.where = Where::kResident;
    store_.orphan_accounting(id);
    return false;
  }
  l.entries = std::move(it->second.entries);
  disk_store_.erase(it);
  return true;
}

sim::Task<> DiskBackend::fault_in(LineId id) {
  auto& l = store_.line(id);
  RMS_CHECK(l.where == Where::kDisk);
  l.where = Where::kFaulting;
  ++*faults_;
  co_await node_.swap_disk().read(
      std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
      disk::Access::kRandom);
  restore_verified(id);
  // Still kFaulting on success: the store charges residency and re-links
  // the LRU. On mismatch the line is already an orphan (resident, empty).
}

sim::Task<> DiskBackend::collect_finish() {
  for (LineId id = 0; id < static_cast<LineId>(store_.num_lines()); ++id) {
    auto& l = store_.line(id);
    if (l.where != Where::kDisk) continue;
    co_await node_.swap_disk().read(
        std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
        disk::Access::kSequential);
    if (restore_verified(id)) store_.make_resident(id);
  }
}

void DiskBackend::check_invariants() const {
  // Every parked line has exactly one stored copy; stored copies belong to
  // lines that are on disk or mid-fault and carry a checksum stamp.
  std::size_t on_disk = 0;
  for (std::size_t i = 0; i < store_.num_lines(); ++i) {
    const auto& l = store_.line(static_cast<LineId>(i));
    if (l.where != Where::kDisk) continue;
    ++on_disk;
    RMS_CHECK_MSG(disk_store_.count(static_cast<LineId>(i)) == 1,
                  "disk line without a stored copy");
  }
  for (const auto& [id, rec] : disk_store_) {
    const auto& l = store_.line(id);
    RMS_CHECK_MSG(l.where == Where::kDisk || l.where == Where::kFaulting,
                  "stored copy for a line that is not on disk");
    RMS_CHECK_MSG(rec.checksum != 0, "spill record without a checksum stamp");
  }
  RMS_CHECK_MSG(on_disk <= disk_store_.size(),
                "disk store lost track of parked lines");
}

}  // namespace rms::core
