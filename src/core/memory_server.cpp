#include "core/memory_server.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "transport/stream.hpp"

namespace rms::core {

MemoryServer::MemoryServer(cluster::Node& node, Config config)
    : node_(node),
      config_(config),
      migrate_xport_(node,
                     transport::TransportOptions{config.migrate_push_deadline,
                                                 config.migrate_push_retries,
                                                 config.rpc_window,
                                                 config.trace}),
      inbox_(node, kMemService) {
  // Crash-stop loses everything in RAM. The hook runs synchronously inside
  // Node::crash(); the serve loop itself stays suspended and abandons any
  // in-flight handler through the epoch check.
  node_.on_crash([this] { wipe_on_crash(); });
}

std::int64_t MemoryServer::release_owner(net::NodeId owner) {
  std::int64_t released = 0;
  const auto oit = store_.find(owner);
  if (oit != store_.end()) {
    for (const auto& [id, line] : oit->second) {
      released += line.accounted_bytes;
      --stored_lines_;
    }
    store_.erase(oit);
  }
  const auto rit = replicas_.find(owner);
  if (rit != replicas_.end()) {
    for (const auto& [id, line] : rit->second) {
      released += line.accounted_bytes;
      --replica_lines_;
    }
    replicas_.erase(rit);
  }
  stored_bytes_ -= released;
  node_.memory().donated_bytes -= released;
  if (released > 0) node_.stats().bump("server.owner_releases");
  return released;
}

void MemoryServer::wipe_on_crash() {
  node_.memory().donated_bytes -= stored_bytes_;
  store_.clear();
  replicas_.clear();
  stored_lines_ = 0;
  replica_lines_ = 0;
  stored_bytes_ = 0;
  // Requests delivered but not yet received are lost with the process.
  while (inbox_.try_recv()) {
  }
  node_.stats().bump("server.crash_wipes");
}

LinePayload* MemoryServer::find_line(net::NodeId owner, LineId id) {
  const auto oit = store_.find(owner);
  if (oit == store_.end()) return nullptr;
  const auto it = oit->second.find(id);
  return it == oit->second.end() ? nullptr : &it->second;
}

LinePayload* MemoryServer::find_replica(net::NodeId owner, LineId id) {
  const auto oit = replicas_.find(owner);
  if (oit == replicas_.end()) return nullptr;
  const auto it = oit->second.find(id);
  return it == oit->second.end() ? nullptr : &it->second;
}

void MemoryServer::adopt_line(net::NodeId owner, LinePayload line,
                              bool allow_replace) {
  OwnerLines& lines = store_[owner];
  const auto it = lines.find(line.line_id);
  if (it != lines.end()) {
    // Duplicate delivery happens legitimately under migrate-push retry (the
    // ack was slow, not lost); replace in place so accounting stays exact.
    RMS_CHECK_MSG(allow_replace, "line swapped out twice without a swap-in");
    stored_bytes_ -= it->second.accounted_bytes;
    node_.memory().donated_bytes -= it->second.accounted_bytes;
    --stored_lines_;
  }
  stored_bytes_ += line.accounted_bytes;
  node_.memory().donated_bytes += line.accounted_bytes;
  ++stored_lines_;
  lines.insert_or_assign(line.line_id, std::move(line));
}

LinePayload MemoryServer::release_line(net::NodeId owner, LineId id) {
  const auto oit = store_.find(owner);
  RMS_CHECK_MSG(oit != store_.end() &&
                    oit->second.find(id) != oit->second.end(),
                "release of a line this node does not hold");
  const auto it = oit->second.find(id);
  LinePayload line = std::move(it->second);
  oit->second.erase(it);
  stored_bytes_ -= line.accounted_bytes;
  node_.memory().donated_bytes -= line.accounted_bytes;
  --stored_lines_;
  return line;
}

void MemoryServer::store_replica(net::NodeId owner, LinePayload line) {
  OwnerLines& lines = replicas_[owner];
  const auto it = lines.find(line.line_id);
  if (it != lines.end()) {
    // Re-replication after the line cycled through the owner: overwrite.
    stored_bytes_ -= it->second.accounted_bytes;
    node_.memory().donated_bytes -= it->second.accounted_bytes;
    --replica_lines_;
  }
  stored_bytes_ += line.accounted_bytes;
  node_.memory().donated_bytes += line.accounted_bytes;
  ++replica_lines_;
  lines.insert_or_assign(line.line_id, std::move(line));
}

void MemoryServer::drop_replica(net::NodeId owner, LineId id) {
  const auto oit = replicas_.find(owner);
  if (oit == replicas_.end()) return;
  const auto it = oit->second.find(id);
  if (it == oit->second.end()) return;
  stored_bytes_ -= it->second.accounted_bytes;
  node_.memory().donated_bytes -= it->second.accounted_bytes;
  --replica_lines_;
  oit->second.erase(it);
}

sim::Process MemoryServer::serve() {
  for (;;) {
    net::Message msg = co_await inbox_.recv();
    if (msg.as<MemRequest>().kind == MemRequest::Kind::kMigrateDirective) {
      // Detached: the directive's pushes await the destination server's
      // acks, and that server may be executing a directive of its own
      // pointed back here. Serving it inline would park this loop — and
      // every queued swap-in — behind a cross-server cycle that only push
      // deadlines can break (see the class comment).
      node_.sim().spawn(run_migrate_directive(std::move(msg), node_.epoch()));
      continue;
    }
    if (config_.trace == nullptr) {
      co_await handle(std::move(msg), node_.epoch());
      continue;
    }
    const auto& req = msg.as<MemRequest>();
    const auto kind = static_cast<std::int64_t>(req.kind);
    const std::int64_t owner = req.owner;
    const Time started = node_.sim().now();
    co_await handle(std::move(msg), node_.epoch());
    config_.trace->span(obs::EventKind::kServe, node_.id(), started,
                        node_.sim().now(), kind, owner);
  }
}

sim::Process MemoryServer::run_migrate_directive(net::Message msg,
                                                 std::uint64_t epoch) {
  // A crash ordered between the spawn and this first step wiped the store;
  // the directive belongs to the dead incarnation.
  if (node_.epoch() != epoch) co_return;
  const std::int64_t owner = msg.as<MemRequest>().owner;
  const Time started = node_.sim().now();
  co_await handle_migrate_directive(msg, epoch);
  if (config_.trace != nullptr && node_.epoch() == epoch) {
    config_.trace->span(
        obs::EventKind::kServe, node_.id(), started, node_.sim().now(),
        static_cast<std::int64_t>(MemRequest::Kind::kMigrateDirective), owner);
  }
}

sim::Task<> MemoryServer::handle(net::Message msg, std::uint64_t epoch) {
  const auto& req = msg.as<MemRequest>();
  const cluster::CostModel& costs = node_.costs();
  // A crash while this handler was suspended wiped the store; mutating or
  // replying on behalf of the dead incarnation would resurrect lost state.
  const auto abandoned = [&] { return node_.epoch() != epoch; };

  switch (req.kind) {
    case MemRequest::Kind::kSwapOut: {
      // "At the memory available node, the received contents are allocated
      // and written in its main memory" (§4.3).
      co_await node_.compute(costs.swap_service);
      if (abandoned()) co_return;
      for (const LinePayload& line : req.lines) {
        // A payload corrupted in flight is refused: the owner's next
        // swap-in misses (ok=false) and recovery falls back to the replica
        // or disk copy — bad data never enters the store.
        if (line.checksum != 0 && !payload_intact(line)) {
          node_.stats().bump("server.rx_corrupt_lines");
          continue;
        }
        // allow_replace: after a false suspicion the owner may have promoted
        // a backup elsewhere while this node kept a stale primary; the
        // owner's fresh swap-out is authoritative.
        adopt_line(req.owner, line, /*allow_replace=*/true);
      }
      node_.stats().bump("server.swap_out",
                         static_cast<std::int64_t>(req.lines.size()));
      break;
    }

    case MemRequest::Kind::kSwapIn: {
      co_await node_.compute(costs.swap_service);
      if (abandoned()) co_return;
      MemReply reply;
      if (find_line(req.owner, req.line_id) != nullptr) {
        reply.lines.push_back(release_line(req.owner, req.line_id));
        node_.stats().bump("server.swap_in");
        node_.reply(msg, config_.message_block_bytes, std::move(reply));
      } else {
        // Unknown line: lost in a crash-restart, or a duplicate of a
        // swap-in that already succeeded. Say so instead of aborting.
        reply.ok = false;
        node_.stats().bump("server.swap_in_misses");
        node_.reply(msg, 16, std::move(reply));
      }
      break;
    }

    case MemRequest::Kind::kUpdateBatch: {
      // One-way remote updates (§4.4): search each target line for the
      // probed itemset and increment its counter on a match. Applied to the
      // primary copy, or to a backup replica when this node is the line's
      // backup (replicate_k mirroring); updates for lines this node no
      // longer holds (crash-restart) are dropped and counted.
      co_await node_.compute(
          costs.per_message_cpu +
          costs.per_update_apply *
              static_cast<std::int64_t>(req.updates.size()));
      if (abandoned()) co_return;
      std::int64_t applied = 0;
      std::int64_t dropped = 0;
      for (const UpdateOp& op : req.updates) {
        LinePayload* target = find_line(req.owner, op.line_id);
        if (target == nullptr) target = find_replica(req.owner, op.line_id);
        if (target == nullptr) {
          ++dropped;
          continue;
        }
        ++applied;
        for (mining::CountedItemset& e : target->entries) {
          if (e.items == op.itemset) {
            // Maintain the line checksum incrementally: the digest sum is
            // order-independent, so a corruption-induced mismatch persists
            // through any number of applied updates.
            const std::uint64_t before = entry_digest(e);
            ++e.count;
            if (target->checksum != 0) {
              target->checksum += entry_digest(e) - before;
            }
            break;
          }
        }
      }
      node_.stats().bump("server.updates_applied", applied);
      if (dropped > 0) node_.stats().bump("server.updates_dropped", dropped);
      break;
    }

    case MemRequest::Kind::kFetch: {
      // End-of-pass collection: return and drop every line of this owner.
      // With fetch_min_count set ("remote determination"), sub-threshold
      // entries are filtered server-side and never cross the wire.
      MemReply reply;
      const auto it = store_.find(req.owner);
      std::int64_t bytes = 0;
      if (it != store_.end()) {
        std::vector<LineId> ids;
        ids.reserve(it->second.size());
        for (const auto& [id, line] : it->second) ids.push_back(id);
        std::sort(ids.begin(), ids.end());
        for (LineId id : ids) {
          LinePayload line = release_line(req.owner, id);
          // Verify *before* any server-side rewrite: re-stamping a payload
          // corrupted at rest would launder the damage. A mismatched line
          // is withheld — the owner's un-fetched recovery promotes the
          // replica or orphans it.
          if (line.checksum != 0 && !payload_intact(line)) {
            node_.stats().bump("server.fetch_corrupt_lines");
            continue;
          }
          if (req.fetch_min_count > 0) {
            std::erase_if(line.entries,
                          [&](const mining::CountedItemset& e) {
                            return e.count < req.fetch_min_count;
                          });
            line.accounted_bytes =
                static_cast<std::int64_t>(line.entries.size()) *
                mining::Itemset::kAccountedBytes;
            if (line.checksum != 0) line.checksum = line_checksum(line.entries);
            node_.stats().bump("server.filtered_fetch_lines");
          }
          bytes += line.accounted_bytes;
          reply.lines.push_back(std::move(line));
        }
      }
      // Bulk streaming: cheaper per line than individual swap service.
      co_await node_.compute(
          costs.per_message_cpu +
          (costs.per_update_apply *
           static_cast<std::int64_t>(reply.lines.size())));
      if (abandoned()) co_return;
      node_.stats().bump("server.fetches");
      node_.reply(msg, std::max<std::int64_t>(bytes, 64), std::move(reply));
      break;
    }

    case MemRequest::Kind::kMigrateDirective: {
      co_await handle_migrate_directive(msg, epoch);
      break;
    }

    case MemRequest::Kind::kMigrateData: {
      co_await node_.compute(costs.swap_service);
      if (abandoned()) co_return;
      for (const LinePayload& line : req.lines) {
        if (line.checksum != 0 && !payload_intact(line)) {
          node_.stats().bump("server.rx_corrupt_lines");
          continue;
        }
        // allow_replace: a slow ack makes the pushing server retry the
        // whole block; adopting the duplicate in place is idempotent.
        adopt_line(req.owner, line, /*allow_replace=*/true);
      }
      node_.stats().bump("server.migrate_in",
                         static_cast<std::int64_t>(req.lines.size()));
      node_.reply(msg, 16, MemReply{});
      break;
    }

    case MemRequest::Kind::kReplicaStore: {
      co_await node_.compute(costs.swap_service);
      if (abandoned()) co_return;
      for (const LinePayload& line : req.lines) {
        if (line.checksum != 0 && !payload_intact(line)) {
          node_.stats().bump("server.rx_corrupt_lines");
          continue;
        }
        store_replica(req.owner, line);
      }
      node_.stats().bump("server.replica_stores",
                         static_cast<std::int64_t>(req.lines.size()));
      break;
    }

    case MemRequest::Kind::kReplicaPromote: {
      // The owner lost the primary holder: promote this node's backup
      // copies to primaries. Replicas this node does not hold (it crashed
      // too, or never got the copy) are simply missing from `migrated` —
      // the owner orphans those.
      co_await node_.compute(costs.swap_service);
      if (abandoned()) co_return;
      MemReply reply;
      for (LineId id : req.migrate_lines) {
        const auto oit = replicas_.find(req.owner);
        if (oit == replicas_.end()) break;
        const auto it = oit->second.find(id);
        if (it == oit->second.end()) continue;
        // A replica corrupted at rest must not become the new primary:
        // drop it instead, and the owner orphans the line (it is missing
        // from `migrated`).
        if (it->second.checksum != 0 && !payload_intact(it->second)) {
          node_.stats().bump("server.rx_corrupt_lines");
          drop_replica(req.owner, id);
          continue;
        }
        LinePayload line = std::move(it->second);
        stored_bytes_ -= line.accounted_bytes;
        node_.memory().donated_bytes -= line.accounted_bytes;
        --replica_lines_;
        oit->second.erase(it);
        adopt_line(req.owner, std::move(line), /*allow_replace=*/true);
        reply.migrated.push_back(id);
      }
      reply.ok = reply.migrated.size() == req.migrate_lines.size();
      node_.stats().bump("server.replica_promotions",
                         static_cast<std::int64_t>(reply.migrated.size()));
      node_.reply(msg,
                  16 + 8 * static_cast<std::int64_t>(reply.migrated.size()),
                  std::move(reply));
      break;
    }

    case MemRequest::Kind::kReplicaDrop: {
      co_await node_.compute(costs.per_message_cpu);
      if (abandoned()) co_return;
      if (req.line_id >= 0) {
        drop_replica(req.owner, req.line_id);
      } else {
        // Drop every replica of this owner (end-of-pass collection).
        const auto oit = replicas_.find(req.owner);
        if (oit != replicas_.end()) {
          for (const auto& [id, line] : oit->second) {
            stored_bytes_ -= line.accounted_bytes;
            node_.memory().donated_bytes -= line.accounted_bytes;
            --replica_lines_;
          }
          replicas_.erase(oit);
        }
      }
      break;
    }

    case MemRequest::Kind::kPing: {
      // Liveness probe: a failure detector confirming a heartbeat-based
      // suspicion before re-homing lines. Answer as fast as possible.
      co_await node_.compute(costs.per_message_cpu);
      if (abandoned()) co_return;
      node_.stats().bump("server.pings");
      node_.reply(msg, 16, MemReply{});
      break;
    }

    case MemRequest::Kind::kReplicaSync: {
      co_await handle_replica_sync(msg, epoch);
      break;
    }
  }
}

sim::Task<> MemoryServer::handle_migrate_directive(const net::Message& msg,
                                                   std::uint64_t epoch) {
  // "The memory available node migrates its contents to other memory
  // available nodes according to the direction" (§4.2). Lines are batched
  // into message blocks and pushed to the destination server; each block is
  // acknowledged so the owner only re-points its management table once the
  // data is safely adopted. A destination that stops acking is presumed
  // crashed: the unacked block is re-adopted locally and the directive
  // replies ok=false with only the lines that provably moved.
  const auto& req = msg.as<MemRequest>();
  const cluster::CostModel& costs = node_.costs();
  RMS_CHECK(req.migrate_dest >= 0 && req.migrate_dest != node_.id());

  MemReply done;
  // Lines coalesce into message blocks through a byte-budgeted stream; each
  // closed block is pushed as one acknowledged kMigrateData RPC. The block
  // still travels as a copy so a failed push can be re-adopted locally.
  transport::Stream<MemRequest> stream(config_.message_block_bytes);
  bool dest_dead = false;

  auto flush_block = [&]() -> sim::Task<> {
    if (stream.empty()) co_return;
    auto closed = stream.take();
    std::vector<LineId> in_flight;
    for (const LinePayload& l : closed.batch.lines) {
      in_flight.push_back(l.line_id);
    }
    net::Message data = net::Message::make(
        node_.id(), req.migrate_dest, kMemService,
        std::max<std::int64_t>(closed.bytes, 64), closed.batch);
    const cluster::RpcResult res = co_await migrate_xport_.call(
        std::move(data), rpc_op(MemRequest::Kind::kMigrateData));
    if (node_.epoch() != epoch) co_return;  // we crashed mid-push
    if (res.ok()) {
      done.migrated.insert(done.migrated.end(), in_flight.begin(),
                           in_flight.end());
    } else {
      // No ack: take the block back so the data survives here.
      dest_dead = true;
      node_.stats().bump("server.migrate_push_failures");
      for (LinePayload& l : closed.batch.lines) {
        adopt_line(req.owner, std::move(l), /*allow_replace=*/false);
      }
    }
  };

  for (LineId id : req.migrate_lines) {
    if (dest_dead) break;
    if (find_line(req.owner, id) == nullptr) {
      // The owner faulted this line back between composing the directive
      // and its arrival; nothing to move.
      continue;
    }
    co_await node_.compute(costs.per_update_apply);
    if (node_.epoch() != epoch) co_return;
    LinePayload line = release_line(req.owner, id);
    if (stream.empty()) {
      stream.open().kind = MemRequest::Kind::kMigrateData;
      stream.open().owner = req.owner;
    }
    stream.note(std::max<std::int64_t>(line.accounted_bytes, 16));
    stream.open().lines.push_back(std::move(line));
    if (stream.due()) co_await flush_block();
  }
  if (!dest_dead) co_await flush_block();
  if (node_.epoch() != epoch) co_return;

  done.ok = !dest_dead;
  node_.stats().bump("server.migrations");
  node_.stats().bump("server.lines_migrated",
                     static_cast<std::int64_t>(done.migrated.size()));
  node_.reply(msg, 16 + 8 * static_cast<std::int64_t>(done.migrated.size()),
              std::move(done));
}

sim::Task<> MemoryServer::handle_replica_sync(const net::Message& msg,
                                              std::uint64_t epoch) {
  // Redundancy restoration: the owner lost a line's backup (replica
  // promotion, holder death) and asks this node — the current primary
  // holder — to re-mirror. Unlike migration the primaries stay put: copies
  // of the requested lines are batched into message blocks and pushed
  // one-way to the new backup, exactly like the owner's own kReplicaStore
  // pushes at swap-out. The reply lists the lines actually synced so the
  // owner only records backups that exist.
  const auto& req = msg.as<MemRequest>();
  const cluster::CostModel& costs = node_.costs();
  RMS_CHECK(req.migrate_dest >= 0 && req.migrate_dest != node_.id());

  MemReply done;
  transport::Stream<MemRequest> stream(config_.message_block_bytes);
  auto flush_block = [&] {
    if (stream.empty()) return;
    auto closed = stream.take();
    node_.send_to(req.migrate_dest, kMemService,
                  std::max<std::int64_t>(closed.bytes, 64),
                  std::move(closed.batch));
  };

  for (LineId id : req.migrate_lines) {
    const LinePayload* line = find_line(req.owner, id);
    if (line == nullptr) continue;  // faulted home / lost before we got here
    co_await node_.compute(costs.per_update_apply);
    if (node_.epoch() != epoch) co_return;
    if (stream.empty()) {
      stream.open().kind = MemRequest::Kind::kReplicaStore;
      stream.open().owner = req.owner;
    }
    stream.note(std::max<std::int64_t>(line->accounted_bytes, 16));
    stream.open().lines.push_back(*line);
    done.migrated.push_back(id);
    if (stream.due()) {
      co_await node_.compute(costs.per_message_cpu);
      if (node_.epoch() != epoch) co_return;
      flush_block();
    }
  }
  if (!stream.empty()) {
    co_await node_.compute(costs.per_message_cpu);
    if (node_.epoch() != epoch) co_return;
    flush_block();
  }

  done.ok = done.migrated.size() == req.migrate_lines.size();
  node_.stats().bump("server.replica_syncs",
                     static_cast<std::int64_t>(done.migrated.size()));
  node_.reply(msg, 16 + 8 * static_cast<std::int64_t>(done.migrated.size()),
              std::move(done));
}

int MemoryServer::corrupt_stored(double flip_rate, Pcg32& rng) {
  RMS_CHECK(flip_rate >= 0.0 && flip_rate < 1.0);
  if (flip_rate <= 0.0) return 0;
  int corrupted = 0;
  // Deterministic sweep order: owners sorted, line ids sorted, primaries
  // before replicas — the injection is part of the reproducible schedule.
  const auto sweep = [&](std::unordered_map<net::NodeId, OwnerLines>& map) {
    std::vector<net::NodeId> owners;
    owners.reserve(map.size());
    for (const auto& [owner, lines] : map) owners.push_back(owner);
    std::sort(owners.begin(), owners.end());
    for (net::NodeId owner : owners) {
      OwnerLines& lines = map[owner];
      std::vector<LineId> ids;
      ids.reserve(lines.size());
      for (const auto& [id, line] : lines) ids.push_back(id);
      std::sort(ids.begin(), ids.end());
      for (LineId id : ids) {
        LinePayload& line = lines[id];
        if (line.checksum == 0 || line.entries.empty()) continue;
        if (!rng.bernoulli(flip_rate)) continue;
        const auto n = static_cast<std::uint32_t>(line.entries.size());
        line.entries[rng.below(n)].count ^= 0x4u;
        ++corrupted;
      }
    }
  };
  sweep(store_);
  sweep(replicas_);
  if (corrupted > 0) {
    node_.stats().bump("server.at_rest_corruptions", corrupted);
  }
  return corrupted;
}

int MemoryServer::verify_stored() {
  int dropped = 0;
  const auto scrub = [&](std::unordered_map<net::NodeId, OwnerLines>& map,
                         std::size_t& line_count) {
    for (auto& [owner, lines] : map) {
      for (auto it = lines.begin(); it != lines.end();) {
        const LinePayload& line = it->second;
        if (line.checksum != 0 && !payload_intact(line)) {
          stored_bytes_ -= line.accounted_bytes;
          node_.memory().donated_bytes -= line.accounted_bytes;
          --line_count;
          it = lines.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
  };
  scrub(store_, stored_lines_);
  scrub(replicas_, replica_lines_);
  if (dropped > 0) node_.stats().bump("server.scrub_mismatches", dropped);
  return dropped;
}

}  // namespace rms::core
