#include "core/memory_server.hpp"

#include <algorithm>

namespace rms::core {

MemoryServer::MemoryServer(cluster::Node& node, Config config)
    : node_(node), config_(config) {}

void MemoryServer::adopt_line(net::NodeId owner, LinePayload line) {
  const std::uint64_t k = key(owner, line.line_id);
  RMS_CHECK_MSG(store_.find(k) == store_.end(),
                "line swapped out twice without a swap-in");
  stored_bytes_ += line.accounted_bytes;
  node_.memory().donated_bytes += line.accounted_bytes;
  lines_by_owner_[owner].insert(line.line_id);
  store_.emplace(k, std::move(line));
}

LinePayload MemoryServer::release_line(net::NodeId owner, LineId id) {
  const auto it = store_.find(key(owner, id));
  RMS_CHECK_MSG(it != store_.end(), "swap-in for a line this node not hold");
  LinePayload line = std::move(it->second);
  store_.erase(it);
  stored_bytes_ -= line.accounted_bytes;
  node_.memory().donated_bytes -= line.accounted_bytes;
  lines_by_owner_[owner].erase(id);
  return line;
}

sim::Process MemoryServer::serve() {
  for (;;) {
    net::Message msg = co_await node_.mailbox().recv(kMemService);
    co_await handle(msg);
  }
}

sim::Task<> MemoryServer::handle(net::Message msg) {
  const auto& req = msg.as<MemRequest>();
  const cluster::CostModel& costs = node_.costs();

  switch (req.kind) {
    case MemRequest::Kind::kSwapOut: {
      // "At the memory available node, the received contents are allocated
      // and written in its main memory" (§4.3).
      co_await node_.compute(costs.swap_service);
      for (const LinePayload& line : req.lines) {
        adopt_line(req.owner, line);
      }
      node_.stats().bump("server.swap_out",
                         static_cast<std::int64_t>(req.lines.size()));
      break;
    }

    case MemRequest::Kind::kSwapIn: {
      co_await node_.compute(costs.swap_service);
      MemReply reply;
      reply.lines.push_back(release_line(req.owner, req.line_id));
      node_.stats().bump("server.swap_in");
      node_.reply(msg, config_.message_block_bytes, std::move(reply));
      break;
    }

    case MemRequest::Kind::kUpdateBatch: {
      // One-way remote updates (§4.4): search each target line for the
      // probed itemset and increment its counter on a match.
      co_await node_.compute(
          costs.per_message_cpu +
          costs.per_update_apply *
              static_cast<std::int64_t>(req.updates.size()));
      for (const UpdateOp& op : req.updates) {
        const auto it = store_.find(key(req.owner, op.line_id));
        RMS_CHECK_MSG(it != store_.end(), "remote update for an absent line");
        for (mining::CountedItemset& e : it->second.entries) {
          if (e.items == op.itemset) {
            ++e.count;
            break;
          }
        }
      }
      node_.stats().bump("server.updates_applied",
                         static_cast<std::int64_t>(req.updates.size()));
      break;
    }

    case MemRequest::Kind::kFetch: {
      // End-of-pass collection: return and drop every line of this owner.
      // With fetch_min_count set ("remote determination"), sub-threshold
      // entries are filtered server-side and never cross the wire.
      MemReply reply;
      const auto it = lines_by_owner_.find(req.owner);
      std::int64_t bytes = 0;
      if (it != lines_by_owner_.end()) {
        const std::vector<LineId> ids(it->second.begin(), it->second.end());
        for (LineId id : ids) {
          LinePayload line = release_line(req.owner, id);
          if (req.fetch_min_count > 0) {
            std::erase_if(line.entries,
                          [&](const mining::CountedItemset& e) {
                            return e.count < req.fetch_min_count;
                          });
            line.accounted_bytes =
                static_cast<std::int64_t>(line.entries.size()) *
                mining::Itemset::kAccountedBytes;
            node_.stats().bump("server.filtered_fetch_lines");
          }
          bytes += line.accounted_bytes;
          reply.lines.push_back(std::move(line));
        }
      }
      // Bulk streaming: cheaper per line than individual swap service.
      co_await node_.compute(
          costs.per_message_cpu +
          (costs.per_update_apply *
           static_cast<std::int64_t>(reply.lines.size())));
      node_.stats().bump("server.fetches");
      node_.reply(msg, std::max<std::int64_t>(bytes, 64), std::move(reply));
      break;
    }

    case MemRequest::Kind::kMigrateDirective: {
      co_await handle_migrate_directive(msg);
      break;
    }

    case MemRequest::Kind::kMigrateData: {
      co_await node_.compute(costs.swap_service);
      for (const LinePayload& line : req.lines) {
        adopt_line(req.owner, line);
      }
      node_.stats().bump("server.migrate_in",
                         static_cast<std::int64_t>(req.lines.size()));
      node_.reply(msg, 16, MemReply{});
      break;
    }
  }
}

sim::Task<> MemoryServer::handle_migrate_directive(const net::Message& msg) {
  // "The memory available node migrates its contents to other memory
  // available nodes according to the direction" (§4.2). Lines are batched
  // into message blocks and pushed to the destination server; each block is
  // acknowledged so the owner only re-points its management table once the
  // data is safely adopted.
  const auto& req = msg.as<MemRequest>();
  const cluster::CostModel& costs = node_.costs();
  RMS_CHECK(req.migrate_dest >= 0 && req.migrate_dest != node_.id());

  MemReply done;
  MemRequest block;
  block.kind = MemRequest::Kind::kMigrateData;
  block.owner = req.owner;
  std::int64_t block_bytes = 0;

  auto flush_block = [&]() -> sim::Task<> {
    if (block.lines.empty()) co_return;
    net::Message data = net::Message::make(
        node_.id(), req.migrate_dest, kMemService,
        std::max<std::int64_t>(block_bytes, 64), std::move(block));
    block = MemRequest{};
    block.kind = MemRequest::Kind::kMigrateData;
    block.owner = req.owner;
    block_bytes = 0;
    (void)co_await node_.request(std::move(data));  // wait for adoption ack
  };

  for (LineId id : req.migrate_lines) {
    if (store_.find(key(req.owner, id)) == store_.end()) {
      // The owner faulted this line back between composing the directive
      // and its arrival; nothing to move.
      continue;
    }
    co_await node_.compute(costs.per_update_apply);
    LinePayload line = release_line(req.owner, id);
    block_bytes += std::max<std::int64_t>(line.accounted_bytes, 16);
    done.migrated.push_back(id);
    block.lines.push_back(std::move(line));
    if (block_bytes >= config_.message_block_bytes) co_await flush_block();
  }
  co_await flush_block();

  node_.stats().bump("server.migrations");
  node_.stats().bump("server.lines_migrated",
                     static_cast<std::int64_t>(done.migrated.size()));
  node_.reply(msg, 16 + 8 * static_cast<std::int64_t>(done.migrated.size()),
              std::move(done));
}

}  // namespace rms::core
