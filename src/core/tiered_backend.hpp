// TieredBackend: remote-first placement under a byte budget (extension).
//
// Evictions go to remote memory with simple-swapping semantics until the
// accounted bytes of primary copies parked remotely would exceed
// `Config::tiered_remote_budget_bytes`; past that point each victim spills
// to the local swap disk instead. Fault-ins release budget, so the remote
// tier always holds the most recently evicted working set while the disk
// absorbs the cold overflow — the failover path's ad-hoc degrade-to-disk,
// formalized as a first-class composition of the remote and disk backends.
//
// The budget bounds primary copies only: replica mirrors (replicate_k) ride
// on the destination's own headroom accounting, as under plain kRemoteSwap.
// With an unlimited budget (-1) this is exactly kRemoteSwap.
#pragma once

#include "core/remote_backend.hpp"

namespace rms::core {

class TieredBackend final : public RemoteBackend {
 public:
  explicit TieredBackend(HashLineStore& store);

  sim::Task<> swap_out(LineId id) override;

 private:
  std::int64_t budget_;          // -1: unlimited
  std::int64_t* budget_spills_;  // backend.tiered.budget_spills
};

}  // namespace rms::core
