// TieredBackend: remote-first placement under a byte budget (extension).
//
// Evictions go to remote memory with simple-swapping semantics until the
// accounted bytes of primary copies parked remotely would exceed
// `Config::tiered_remote_budget_bytes`; past that point each victim spills
// to the local swap disk instead. Fault-ins release budget, so the remote
// tier always holds the most recently evicted working set while the disk
// absorbs the cold overflow — the failover path's ad-hoc degrade-to-disk,
// formalized as a first-class composition of the remote and disk backends.
//
// The budget bounds primary copies only: replica mirrors (replicate_k) ride
// on the destination's own headroom accounting, as under plain kRemoteSwap.
// With an unlimited budget (-1) this is exactly kRemoteSwap.
//
// With `Config::integrity_disk_shadow` enabled the backend additionally
// keeps a checksummed local disk copy (shadow) of every line it parks
// remotely, charged to the swap disk like a spill. A remote copy that later
// fails verification repairs from the shadow instead of orphaning — disk
// redundancy for corruption, without replicate_k's second memory node. The
// shadow is dropped when the line comes home. This tier runs simple
// swapping (no remote updates), so remote contents never change and the
// shadow stays valid across migrations.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/remote_backend.hpp"

namespace rms::core {

class TieredBackend final : public RemoteBackend {
 public:
  explicit TieredBackend(HashLineStore& store);

  sim::Task<> swap_out(LineId id) override;
  sim::Task<> fault_in(LineId id) override;
  sim::Task<> collect_finish() override;

  void check_invariants() const override;

 protected:
  /// Integrity repair: restore the line from its shadow copy (charged as a
  /// random swap-disk read) when one exists and verifies.
  sim::Task<bool> repair_from_disk(LineId id) override;

 private:
  struct Shadow {
    mining::HashLine entries;
    std::uint64_t checksum = 0;
  };

  std::int64_t budget_;          // -1: unlimited
  const bool shadow_enabled_;    // Config::integrity_disk_shadow
  std::unordered_map<LineId, Shadow> shadow_;
  std::int64_t* budget_spills_;  // backend.tiered.budget_spills
};

}  // namespace rms::core
