#include "core/remote_backend.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "obs/trace.hpp"

namespace rms::core {

namespace {
std::string ns_key(const char* ns, const char* leaf) {
  return std::string("backend.") + ns + "." + leaf;
}
}  // namespace

RemoteBackend::RemoteBackend(HashLineStore& store, Options options,
                             const char* stat_ns)
    : SwapBackend(store),
      node_(store.node()),
      update_mode_(options.update_mode),
      name_(stat_ns),
      broker_(store.broker()),
      xport_(store.node(),
             transport::TransportOptions{store.config().rpc_deadline,
                                         store.config().rpc_max_retries,
                                         store.config().rpc_window,
                                         store.config().trace}),
      fallback_(std::make_unique<DiskBackend>(store)),
      updates_sent_(&store.stats_mut().slot("store.updates_sent")),
      lines_migrated_(&store.stats_mut().slot("store.lines_migrated")),
      swap_outs_(&store.stats_mut().slot(ns_key(stat_ns, "swap_outs"))),
      faults_(&store.stats_mut().slot(ns_key(stat_ns, "faults"))),
      degraded_(&store.stats_mut().slot(ns_key(stat_ns, "degraded_to_disk"))) {
  RMS_CHECK_MSG(broker_ != nullptr,
                "remote backends need a placement::MemoryBroker");
  // In-band timeout verdicts: a peer that exhausts every attempt is marked
  // suspect the moment the last deadline expires, before the failed call
  // even returns to its caller. The transport latches the episode, so a
  // window full of concurrent failures to one crashed peer fires this once.
  xport_.set_on_failure([this](net::NodeId peer) { declare_dead(peer); });
}

std::size_t RemoteBackend::lines_at(net::NodeId holder) const {
  const auto it = lines_by_holder_.find(holder);
  return it == lines_by_holder_.end() ? 0 : it->second.size();
}

std::size_t RemoteBackend::replicas_at(net::NodeId holder) const {
  const auto it = replicas_by_holder_.find(holder);
  return it == replicas_by_holder_.end() ? 0 : it->second.size();
}

std::size_t RemoteBackend::remote_lines() const {
  std::size_t n = 0;
  for (const auto& [holder, ids] : lines_by_holder_) n += ids.size();
  return n;
}

std::size_t RemoteBackend::disk_lines() const {
  return fallback_->disk_lines();
}

std::int64_t RemoteBackend::outstanding_rpcs() const {
  return xport_.in_flight();
}

void RemoteBackend::hold_insert(net::NodeId holder, LineId id) {
  if (lines_by_holder_[holder].insert(id).second) {
    remote_bytes_ += store_.line(id).bytes;
    // Tenant arbitration: the donated footprint grows exactly when a
    // primary copy lands on a donor. Migration nets to zero (erase + insert
    // of the same bytes), so the ledger tracks real occupancy.
    broker_->tenant_charge(store_.line(id).bytes);
  }
}

void RemoteBackend::hold_erase(net::NodeId holder, LineId id) {
  const auto it = lines_by_holder_.find(holder);
  if (it != lines_by_holder_.end() && it->second.erase(id) > 0) {
    remote_bytes_ -= store_.line(id).bytes;
    broker_->tenant_release(store_.line(id).bytes);
  }
}

// ---------------------------------------------------------------------------
// Failover machinery
// ---------------------------------------------------------------------------

sim::Task<cluster::RpcResult> RemoteBackend::rpc(net::Message msg) {
  // Annotate the call's trace span with the protocol op (profiler RPC split).
  const std::int64_t op =
      msg.is<MemRequest>() ? rpc_op(msg.as<MemRequest>().kind) : 0;
  cluster::RpcResult res = co_await xport_.call(std::move(msg), op);
  failover().rpc_retries += res.attempts - 1;
  // Every attempt but a successful last one expired its deadline.
  failover().deadline_misses += res.ok() ? res.attempts - 1 : res.attempts;
  co_return res;
}

void RemoteBackend::declare_dead(net::NodeId holder) {
  if (!suspected_.insert(holder).second) return;
  ++failover().suspicions;
  node_.stats().bump("store.suspicions");
  if (broker_ != nullptr && !broker_->dead(holder)) broker_->mark_dead(holder);
  if (obs::TraceRecorder* trace = store_.config().trace) {
    trace->instant(obs::EventKind::kSuspicion, node_.id(), node_.sim().now(),
                   holder);
  }
}

bool RemoteBackend::holder_suspect(net::NodeId holder) {
  if (suspected_.count(holder) == 0) return false;
  if (broker_ != nullptr && !broker_->dead(holder)) {
    // The broker accepted a newer heartbeat: the node restarted
    // (its store wiped — our lines there were already re-homed). Forgive,
    // re-arming the transport's failure latch so a relapse re-fires
    // declare_dead.
    suspected_.erase(holder);
    xport_.forgive(holder);
    return false;
  }
  return true;
}

void RemoteBackend::orphan_line(LineId id) {
  store_.orphan_accounting(id);
  const auto pend = pending_updates_.find(id);
  if (pend != pending_updates_.end()) {
    failover().lost_update_ops +=
        static_cast<std::int64_t>(pend->second.size());
    pending_updates_.erase(pend);
  }
}

void RemoteBackend::drop_backup(LineId id) {
  auto& l = store_.line(id);
  if (l.backup < 0) return;
  replicas_by_holder_[l.backup].erase(id);
  if (!holder_suspect(l.backup)) {
    MemRequest req;
    req.kind = MemRequest::Kind::kReplicaDrop;
    req.owner = node_.id();
    req.line_id = id;
    node_.send_to(l.backup, kMemService, 16, std::move(req));
  }
  l.backup = -1;
}

sim::Task<> RemoteBackend::recover_lost_line(LineId id, RecoverCause cause) {
  auto& l = store_.line(id);
  if (l.backup >= 0) {
    const net::NodeId backup = l.backup;
    replicas_by_holder_[backup].erase(id);
    l.backup = -1;
    if (!holder_suspect(backup)) {
      MemRequest req;
      req.kind = MemRequest::Kind::kReplicaPromote;
      req.owner = node_.id();
      req.migrate_lines.push_back(id);
      cluster::RpcResult res = co_await rpc(net::Message::make(
          node_.id(), backup, kMemService, 24, std::move(req)));
      if (res.ok()) {
        const auto& rep = res.reply->as<MemReply>();
        co_await node_.compute(node_.costs().per_message_cpu);
        if (rep.ok) {
          l.where = Where::kRemote;
          l.holder = backup;
          hold_insert(backup, id);
          ++failover().promoted_lines;
          node_.stats().bump("store.replica_promotions");
          if (cause == RecoverCause::kCorrupt) {
            ++integrity().repaired_from_replica;
            node_.stats().bump("store.repaired_from_replica");
          }
          // Promotion consumed the backup copy: the line is now
          // under-replicated until re_replicate restores the mirror.
          unreplicated_.insert(id);
          if (obs::TraceRecorder* trace = store_.config().trace) {
            trace->instant(obs::EventKind::kPromote, node_.id(),
                           node_.sim().now(), id, backup);
          }
          co_return;
        }
        // The backup restarted and lost the replica too: fall through.
      }
      // On total failure the transport callback already declared it dead.
    }
  }
  if (co_await repair_from_disk(id)) {
    ++integrity().repaired_from_disk;
    node_.stats().bump("store.repaired_from_disk");
    unreplicated_.erase(id);
    co_return;
  }
  l.where = Where::kResident;
  if (cause == RecoverCause::kCorrupt) ++integrity().lines_lost;
  unreplicated_.erase(id);
  orphan_line(id);  // resident and empty; stays out of the LRU
}

sim::Task<bool> RemoteBackend::repair_from_disk(LineId id) {
  // The base backend's only local copy is the unmirrored-swap-out shadow
  // (simple swapping, no mirror node known at eviction time).
  const auto it = unmirrored_shadow_.find(id);
  if (it == unmirrored_shadow_.end()) co_return false;
  auto& l = store_.line(id);
  co_await node_.swap_disk().read(
      std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
      disk::Access::kRandom);
  UnmirroredShadow sh = std::move(it->second);
  unmirrored_shadow_.erase(it);
  if (sh.checksum != line_checksum(sh.entries)) {
    // Defensive — nothing in the simulator corrupts local disk contents.
    node_.stats().bump("store.shadow_corrupt_lines");
    co_return false;
  }
  l.entries = std::move(sh.entries);
  store_.make_resident(id);
  node_.stats().bump("store.shadow_repairs");
  co_return true;
}

bool RemoteBackend::verify_payload(const LinePayload& payload,
                                   net::NodeId holder) {
  if (payload.checksum == 0 || payload_intact(payload)) return true;
  ++integrity().checksum_mismatches;
  node_.stats().bump("store.checksum_mismatches");
  if (obs::TraceRecorder* trace = store_.config().trace) {
    trace->instant(obs::EventKind::kChecksumMismatch, node_.id(),
                   node_.sim().now(), payload.line_id, holder);
  }
  const int strikes = ++corrupt_strikes_[holder];
  if (strikes >= store_.config().quarantine_after && broker_ != nullptr &&
      !broker_->quarantined(holder)) {
    broker_->quarantine(holder);
    ++integrity().quarantines;
    node_.stats().bump("store.quarantines");
    if (obs::TraceRecorder* trace = store_.config().trace) {
      trace->instant(obs::EventKind::kQuarantine, node_.id(),
                     node_.sim().now(), holder, strikes);
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Swap-out and fault-in
// ---------------------------------------------------------------------------

net::NodeId RemoteBackend::pick_destination(std::int64_t bytes,
                                            placement::Purpose purpose,
                                            net::NodeId exclude,
                                            bool best_effort,
                                            net::NodeId prev) {
  RMS_CHECK(broker_ != nullptr);
  placement::PlacementRequest req;
  req.bytes = bytes;
  req.headroom = store_.config().destination_headroom_bytes;
  req.exclude = exclude;
  req.previous_holder = prev;
  req.now = node_.sim().now();
  req.best_effort = best_effort;
  req.purpose = purpose;
  const placement::PlacementDecision d = broker_->choose(req);
  if (d.best_effort_used) node_.stats().bump("store.best_effort_replicas");
  return d.node;
}

sim::Task<> RemoteBackend::swap_out(LineId id) {
  auto& l = store_.line(id);
  // `l.holder` still names where the line last lived (the field survives
  // fault-in) — the affinity policy's hint; others ignore it.
  const net::NodeId dest = pick_destination(l.bytes, placement::Purpose::kSwapOut,
                                            /*exclude=*/-1,
                                            /*best_effort=*/false, l.holder);
  if (dest < 0) {
    // Graceful degradation: no live, fresh memory node has room, but the
    // run must complete — fall back to the local swap disk.
    broker_->note_fallback_disk();
    ++failover().degraded_evictions;
    ++*degraded_;
    node_.stats().bump("store.degraded_disk_swap");
    if (obs::TraceRecorder* trace = store_.config().trace) {
      trace->instant(obs::EventKind::kDegraded, node_.id(), node_.sim().now(),
                     id, l.bytes);
    }
    co_await fallback_->swap_out(id);
    co_return;
  }
  MemRequest req;
  req.kind = MemRequest::Kind::kSwapOut;
  req.owner = node_.id();
  LinePayload payload;
  payload.line_id = id;
  payload.accounted_bytes = l.bytes;
  // Stamp once before the contents move: primary and mirror carry the same
  // checksum, and every later verification compares against this value.
  const std::uint64_t sum = line_checksum(l.entries);
  payload.checksum = sum;

  // Mirror on a second memory node before the primary push so a crash of
  // either node between here and the next probe loses nothing.
  net::NodeId backup = -1;
  if (store_.config().replicate_k > 0) {
    backup = pick_destination(l.bytes, placement::Purpose::kReplica, dest,
                              /*best_effort=*/true, l.backup);
  }
  if (backup >= 0) {
    MemRequest rreq;
    rreq.kind = MemRequest::Kind::kReplicaStore;
    rreq.owner = node_.id();
    LinePayload copy;
    copy.line_id = id;
    copy.entries = l.entries;  // deep copy; primary gets the move below
    copy.accounted_bytes = l.bytes;
    copy.checksum = sum;
    rreq.lines.push_back(std::move(copy));
    node_.send_to(backup, kMemService, store_.config().message_block_bytes,
                  std::move(rreq));
    l.backup = backup;
    replicas_by_holder_[backup].insert(id);
    ++failover().replicas_stored;
    node_.stats().bump("store.replica_stores");
    if (obs::TraceRecorder* trace = store_.config().trace) {
      trace->instant(obs::EventKind::kReplicaStore, node_.id(),
                     node_.sim().now(), id, backup);
    }
  }

  // Redundancy was requested but no second node is known right now (during
  // congestion the table often has a single fresh report): degrade the
  // mirror to a local disk shadow rather than leaving the line one
  // corruption away from loss. Exact until fault-in — simple swapping never
  // mutates remote contents. Update mode skips this (a snapshot would go
  // stale against remotely-applied ops) and relies on re_replicate instead.
  UnmirroredShadow sh;
  const bool shadow_this =
      store_.config().replicate_k > 0 && backup < 0 && !update_mode_;
  if (shadow_this) {
    sh.checksum = sum;
    sh.entries = l.entries;  // deep copy; primary gets the move below
  }

  payload.entries = std::move(l.entries);
  req.lines.push_back(std::move(payload));
  l.entries.clear();
  l.where = Where::kRemote;
  l.holder = dest;
  hold_insert(dest, id);
  if (store_.config().replicate_k > 0) {
    if (backup < 0) {
      unreplicated_.insert(id);  // no mirror destination had room
    } else {
      unreplicated_.erase(id);
    }
  }
  ++*swap_outs_;
  node_.stats().bump("store.remote_swap_out");
  // One-way push, padded to a message block (§5.1); the sender only pays
  // its protocol-stack cost.
  node_.send_to(dest, kMemService, store_.config().message_block_bytes,
                std::move(req));
  co_await node_.compute(node_.costs().per_message_cpu);
  if (backup >= 0) co_await node_.compute(node_.costs().per_message_cpu);
  if (shadow_this) {
    unmirrored_shadow_[id] = std::move(sh);
    node_.stats().bump("store.unmirrored_shadow_writes");
    co_await node_.swap_disk().write(
        std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
        disk::Access::kSequential);
  }
}

sim::Task<> RemoteBackend::fault_in(LineId id) {
  auto& l = store_.line(id);
  if (l.where == Where::kDisk) {
    // A line the degrade (or tiered-spill) path parked locally.
    co_await fallback_->fault_in(id);
    co_return;
  }
  RMS_CHECK(l.where == Where::kRemote);
  ++*faults_;
  l.where = Where::kFaulting;
  bool have_content = false;
  while (!have_content) {
    const net::NodeId holder = l.holder;
    bool lost = false;
    bool corrupt = false;
    if (holder_suspect(holder)) {
      lost = true;
    } else {
      MemRequest req;
      req.kind = MemRequest::Kind::kSwapIn;
      req.owner = node_.id();
      req.line_id = id;
      cluster::RpcResult res = co_await rpc(net::Message::make(
          node_.id(), holder, kMemService, 32, std::move(req)));
      if (!res.ok()) {
        // Every deadline missed: the holder is gone (the transport callback
        // marked it suspect as the last deadline expired). Re-home
        // everything it held — this line is kFaulting, so the handler skips
        // it and leaves it to us.
        co_await on_holder_failure(holder);
        lost = true;
      } else {
        const auto& rep = res.reply->as<MemReply>();
        co_await node_.compute(node_.costs().per_message_cpu);
        if (rep.ok) {
          RMS_CHECK(rep.lines.size() == 1 && rep.lines[0].line_id == id);
          if (!verify_payload(rep.lines[0], holder)) {
            // Corrupted in storage or on the wire: never use it. Repair
            // from the replica (or disk copy) instead.
            corrupt = true;
            lost = true;
          } else {
            l.entries = rep.lines[0].entries;
            hold_erase(holder, id);
            drop_backup(id);
            unreplicated_.erase(id);
            unmirrored_shadow_.erase(id);  // home again; snapshot is garbage
            have_content = true;
          }
        } else {
          // The holder answered but no longer has the line: it crashed and
          // restarted in between. The node itself is fine.
          node_.stats().bump("store.swap_in_lost");
          lost = true;
        }
      }
    }
    if (lost) {
      hold_erase(holder, id);
      co_await recover_lost_line(
          id, corrupt ? RecoverCause::kCorrupt : RecoverCause::kLost);
      if (l.where == Where::kRemote) {
        // Promoted to a surviving backup: retry the swap-in there.
        l.where = Where::kFaulting;
        continue;
      }
      // Orphaned (resident and empty) or repaired from the local disk
      // copy: either way the line is resident and nothing is left to load.
      co_return;
    }
  }
  // Still kFaulting with contents restored; the store finishes residency.
}

// ---------------------------------------------------------------------------
// Remote updates
// ---------------------------------------------------------------------------

sim::Task<bool> RemoteBackend::update(LineId id,
                                      const mining::Itemset& itemset) {
  auto& l = store_.line(id);
  if (!update_mode_ || l.where != Where::kRemote) co_return false;
  queue_update(id, itemset);
  co_await maybe_flush_batch(l.holder);
  co_await maybe_flush_batch(l.backup);
  co_return true;
}

bool RemoteBackend::buffer_migrating_update(LineId id,
                                            const mining::Itemset& itemset) {
  if (!update_mode_) return false;
  pending_updates_[id].push_back(itemset);
  ++*updates_sent_;  // counted as an update operation (it becomes one)
  return true;
}

void RemoteBackend::queue_update(LineId id, const mining::Itemset& itemset) {
  auto& l = store_.line(id);
  const auto append = [&](net::NodeId target) {
    auto& stream =
        update_streams_
            .try_emplace(target, store_.config().message_block_bytes)
            .first->second;
    if (stream.empty()) {
      stream.open().kind = MemRequest::Kind::kUpdateBatch;
      stream.open().owner = node_.id();
    }
    stream.open().updates.push_back(UpdateOp{id, itemset});
    stream.note(store_.config().update_op_bytes);
  };
  append(l.holder);
  ++*updates_sent_;
  if (l.backup >= 0) {
    // Mirror the op so the backup copy's counts track the primary's.
    append(l.backup);
    ++failover().updates_mirrored;
  }
}

sim::Task<> RemoteBackend::send_update_batch(net::NodeId holder) {
  const auto it = update_streams_.find(holder);
  if (it == update_streams_.end() || it->second.empty()) co_return;
  auto closed = it->second.take();
  if (holder_suspect(holder)) {
    // Nobody home; delivering would be a silent drop anyway. An op is truly
    // lost only when this target held the line's sole copy: mirror ops
    // (primary elsewhere) survive at the primary, and primary ops with a
    // live backup survive at the mirror — counting whole batches here would
    // double-count them against the copies that still apply.
    for (const UpdateOp& op : closed.batch.updates) {
      const auto& l = store_.line(op.line_id);
      if (l.holder == holder && l.backup < 0) ++failover().lost_update_ops;
    }
    node_.stats().bump("store.update_batches_dropped");
    co_return;
  }
  node_.stats().bump("store.update_batches");
  // Span, not instant: send -> local stack drain, so flush time is
  // attributable (the remote apply shows up as the holder's kServe span).
  obs::TraceRecorder* trace = store_.config().trace;
  const Time flush_started = node_.sim().now();
  const std::int64_t batch_ops = closed.ops;
  xport_.send_to(holder, kMemService, closed.bytes, std::move(closed.batch));
  co_await node_.compute(node_.costs().per_message_cpu);
  if (trace != nullptr) {
    trace->span(obs::EventKind::kUpdateBatch, node_.id(), flush_started,
                node_.sim().now(), holder, batch_ops);
  }
}

sim::Task<> RemoteBackend::maybe_flush_batch(net::NodeId holder) {
  if (holder < 0) co_return;
  const auto it = update_streams_.find(holder);
  if (it != update_streams_.end() && it->second.due()) {
    co_await send_update_batch(holder);
  }
}

sim::Task<> RemoteBackend::flush_updates() {
  // Collect holders first: sending mutates the map.
  std::vector<net::NodeId> holders;
  for (const auto& [holder, stream] : update_streams_) {
    if (!stream.empty()) holders.push_back(holder);
  }
  std::sort(holders.begin(), holders.end());
  for (net::NodeId h : holders) co_await send_update_batch(h);
}

// ---------------------------------------------------------------------------
// End-of-pass collection
// ---------------------------------------------------------------------------

sim::Task<bool> RemoteBackend::collect_fetch() {
  std::vector<net::NodeId> holders;
  for (const auto& [holder, ids] : lines_by_holder_) {
    if (!ids.empty()) holders.push_back(holder);
  }
  if (holders.empty()) co_return false;
  std::sort(holders.begin(), holders.end());
  if (xport_.window() >= 2 && holders.size() >= 2) {
    // Overlap the per-holder fetch round-trips instead of serializing them.
    co_await collect_fetch_pipelined(holders);
    co_return true;
  }
  for (net::NodeId holder : holders) {
    auto& held = lines_by_holder_[holder];
    if (held.empty()) continue;
    // Snapshot and pin: kFaulting keeps the concurrent failure handler off
    // these lines — whatever happens, this loop re-homes them. Lines a
    // concurrent migrate/reclaim parked (kMigrating) after the caller's
    // settle scan stay with that coroutine; it fires their triggers when it
    // settles them and the caller re-scans.
    std::vector<LineId> candidates(held.begin(), held.end());
    std::sort(candidates.begin(), candidates.end());
    std::vector<LineId> ids;
    for (LineId id : candidates) {
      if (store_.line(id).where != Where::kRemote) {
        node_.stats().bump("store.collect_skipped_inflight");
        continue;
      }
      store_.line(id).where = Where::kFaulting;
      ids.push_back(id);
    }
    if (ids.empty()) continue;
    for (LineId id : ids) hold_erase(holder, id);

    std::unordered_set<LineId> got;
    std::unordered_set<LineId> corrupt_ids;
    if (!holder_suspect(holder)) {
      MemRequest req;
      req.kind = MemRequest::Kind::kFetch;
      req.owner = node_.id();
      req.fetch_min_count = store_.config().fetch_filter_min_count;
      cluster::RpcResult res = co_await rpc(net::Message::make(
          node_.id(), holder, kMemService, 32, std::move(req)));
      if (res.ok()) {
        const auto& rep = res.reply->as<MemReply>();
        co_await node_.compute(node_.costs().per_message_cpu);
        for (const LinePayload& payload : rep.lines) {
          auto& l = store_.line(payload.line_id);
          if (l.where != Where::kFaulting || l.holder != holder) {
            // A stale primary from a false suspicion handled earlier; the
            // authoritative copy lives elsewhere.
            node_.stats().bump("store.stale_fetch_lines");
            continue;
          }
          if (!verify_payload(payload, holder)) {
            corrupt_ids.insert(payload.line_id);
            continue;  // repaired from the replica below, never used
          }
          l.entries = payload.entries;
          store_.make_resident(payload.line_id);
          drop_backup(payload.line_id);
          unreplicated_.erase(payload.line_id);
          got.insert(payload.line_id);
        }
      } else {
        co_await on_holder_failure(holder);
      }
    }
    // Lines the holder no longer has (crash-restart wiped them, or the
    // holder is dead) or served corrupt: promote the backup or orphan.
    for (LineId id : ids) {
      if (got.count(id)) continue;
      co_await recover_lost_line(id, corrupt_ids.count(id)
                                         ? RecoverCause::kCorrupt
                                         : RecoverCause::kLost);
    }
  }
  co_return true;
}

sim::Task<> RemoteBackend::collect_fetch_pipelined(
    const std::vector<net::NodeId>& holders) {
  // Pin every holder's lines up front (kFaulting keeps the concurrent
  // failure handler off them), then issue all live holders' kFetch RPCs
  // through the transport pipeline so their round-trips and server service
  // times overlap. Reply post-processing stays in holder order; recovery
  // may re-home lines onto other holders, which the caller's next
  // collect_fetch round picks up — exactly like the sequential path.
  std::vector<std::vector<LineId>> pinned(holders.size());
  for (std::size_t h = 0; h < holders.size(); ++h) {
    auto& held = lines_by_holder_[holders[h]];
    std::vector<LineId> candidates(held.begin(), held.end());
    std::sort(candidates.begin(), candidates.end());
    std::vector<LineId> ids;
    for (LineId id : candidates) {
      if (store_.line(id).where != Where::kRemote) {
        // Parked by a concurrent migrate/reclaim; that coroutine settles it
        // and fires its trigger, and the caller re-scans.
        node_.stats().bump("store.collect_skipped_inflight");
        continue;
      }
      store_.line(id).where = Where::kFaulting;
      ids.push_back(id);
    }
    for (LineId id : ids) hold_erase(holders[h], id);
    pinned[h] = std::move(ids);
  }

  std::vector<net::Message> msgs;
  std::vector<std::size_t> msg_holder;  // msgs[k] targets holders[msg_holder[k]]
  for (std::size_t h = 0; h < holders.size(); ++h) {
    if (pinned[h].empty() || holder_suspect(holders[h])) continue;
    MemRequest req;
    req.kind = MemRequest::Kind::kFetch;
    req.owner = node_.id();
    req.fetch_min_count = store_.config().fetch_filter_min_count;
    msgs.push_back(net::Message::make(node_.id(), holders[h], kMemService, 32,
                                      std::move(req)));
    msg_holder.push_back(h);
  }
  std::vector<cluster::RpcResult> results = co_await xport_.pipeline(
      std::move(msgs), rpc_op(MemRequest::Kind::kFetch));
  for (std::size_t k = 0; k < results.size(); ++k) {
    cluster::RpcResult& res = results[k];
    failover().rpc_retries += res.attempts - 1;
    failover().deadline_misses += res.ok() ? res.attempts - 1 : res.attempts;
  }

  std::size_t k = 0;  // cursor over results, in holder order
  for (std::size_t h = 0; h < holders.size(); ++h) {
    const net::NodeId holder = holders[h];
    const std::vector<LineId>& ids = pinned[h];
    if (ids.empty()) continue;
    std::unordered_set<LineId> got;
    std::unordered_set<LineId> corrupt_ids;
    if (k < msg_holder.size() && msg_holder[k] == h) {
      cluster::RpcResult& res = results[k++];
      if (res.ok()) {
        const auto& rep = res.reply->as<MemReply>();
        co_await node_.compute(node_.costs().per_message_cpu);
        for (const LinePayload& payload : rep.lines) {
          auto& l = store_.line(payload.line_id);
          if (l.where != Where::kFaulting || l.holder != holder) {
            node_.stats().bump("store.stale_fetch_lines");
            continue;
          }
          if (!verify_payload(payload, holder)) {
            corrupt_ids.insert(payload.line_id);
            continue;
          }
          l.entries = payload.entries;
          store_.make_resident(payload.line_id);
          drop_backup(payload.line_id);
          unreplicated_.erase(payload.line_id);
          got.insert(payload.line_id);
        }
      } else {
        co_await on_holder_failure(holder);
      }
    }
    for (LineId id : ids) {
      if (got.count(id)) continue;
      co_await recover_lost_line(id, corrupt_ids.count(id)
                                         ? RecoverCause::kCorrupt
                                         : RecoverCause::kLost);
    }
  }
}

sim::Task<> RemoteBackend::collect_finish() {
  // Remote lines are all home; surviving backup copies are now garbage and
  // nothing is left to re-replicate.
  unreplicated_.clear();
  unmirrored_shadow_.clear();
  for (auto& [backup, ids] : replicas_by_holder_) {
    if (ids.empty()) continue;
    ids.clear();
    if (suspected_.count(backup)) continue;
    MemRequest req;
    req.kind = MemRequest::Kind::kReplicaDrop;
    req.owner = node_.id();
    req.line_id = -1;  // all of this owner
    node_.send_to(backup, kMemService, 16, std::move(req));
  }
  for (std::size_t i = 0; i < store_.num_lines(); ++i) {
    store_.line(static_cast<LineId>(i)).backup = -1;
  }

  // Degraded (or tiered-spilled) lines stream back from the local disk.
  co_await fallback_->collect_finish();
}

// ---------------------------------------------------------------------------
// Migration (application side)
// ---------------------------------------------------------------------------

sim::Task<> RemoteBackend::migrate_away(net::NodeId holder) {
  if (holder_suspect(holder)) co_return;  // failure handling owns its lines
  const auto it = lines_by_holder_.find(holder);
  if (it == lines_by_holder_.end() || it->second.empty()) co_return;

  // 1. Mark this node's lines as migrating FIRST; from here on probes
  //    buffer (remote update) or wait on the line trigger (simple
  //    swapping), so no new update can target the old holder.
  std::vector<LineId> marked;
  std::int64_t marked_bytes = 0;
  for (LineId id : it->second) {
    auto& l = store_.line(id);
    if (l.where == Where::kFaulting) {
      // A swap-in is in flight for this line; it was requested before the
      // directive will arrive (same-pair FIFO), so the holder answers the
      // fault first and the line comes home by itself.
      continue;
    }
    RMS_CHECK(l.where == Where::kRemote);
    l.where = Where::kMigrating;
    marked.push_back(id);
    marked_bytes += l.bytes;
  }
  if (marked.empty()) co_return;
  std::sort(marked.begin(), marked.end());
  const Time migrate_started = node_.sim().now();

  // 2. Updates already queued for the old holder must precede the directive
  //    (same-pair FIFO keeps them ahead of it on the wire). With the lines
  //    marked, nothing can refill this batch behind our back.
  co_await send_update_batch(holder);

  const net::NodeId dest =
      pick_destination(marked_bytes, placement::Purpose::kMigration, holder);
  if (dest < 0) {
    // No live, fresh destination: leave the lines where they are; the
    // shortage will re-trigger on a later broadcast if it persists. Updates
    // buffered while the lines were marked still belong to the old holder.
    node_.stats().bump("store.migration_no_destination");
    for (LineId id : marked) store_.line(id).where = Where::kRemote;
    for (LineId id : marked) {
      auto& l = store_.line(id);
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --*updates_sent_;  // queue_update counts it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
        co_await maybe_flush_batch(l.backup);
      }
      store_.fire_migration_trigger(id);
    }
    co_return;
  }
  MemRequest req;
  req.kind = MemRequest::Kind::kMigrateDirective;
  req.owner = node_.id();
  req.migrate_dest = dest;
  req.migrate_lines = marked;

  node_.stats().bump("store.migrations_initiated");
  cluster::RpcResult res = co_await rpc(net::Message::make(
      node_.id(), holder, kMemService,
      16 + 8 * static_cast<std::int64_t>(marked.size()), std::move(req)));

  if (!res.ok()) {
    // The holder itself went silent mid-directive (and is suspect already,
    // via the transport callback). Put the marks back to kRemote so the
    // failure handler re-homes every line it held; it also fires the
    // triggers for them.
    for (LineId id : marked) store_.line(id).where = Where::kRemote;
    co_await on_holder_failure(holder);
    co_return;
  }
  const auto& rep = res.reply->as<MemReply>();
  co_await node_.compute(node_.costs().per_message_cpu);

  // 3. Re-point the management table. On rep.ok every marked line moved
  //    (probes only fault lines out of kMigrating via the trigger). With
  //    ok=false the destination died mid-push: rep.migrated lists the lines
  //    that were acknowledged before the push failed — those are at the
  //    (now dead) destination; the rest stayed at the holder.
  if (rep.ok) {
    RMS_CHECK_MSG(rep.migrated.size() == marked.size(),
                  "holder lost track of migrating lines");
  }
  std::unordered_set<LineId> moved(rep.migrated.begin(), rep.migrated.end());
  for (LineId id : marked) {
    auto& l = store_.line(id);
    RMS_CHECK(l.where == Where::kMigrating);
    l.where = Where::kRemote;
    if (moved.count(id)) {
      hold_erase(holder, id);
      l.holder = dest;
      hold_insert(dest, id);
    }
  }
  *lines_migrated_ += static_cast<std::int64_t>(moved.size());
  if (obs::TraceRecorder* trace = store_.config().trace) {
    trace->span(obs::EventKind::kMigrate, node_.id(), migrate_started,
                node_.sim().now(), holder,
                static_cast<std::int64_t>(moved.size()));
  }

  if (!rep.ok) {
    // Recover the lines stranded at the dead destination (promote backups
    // or orphan); their triggers fire inside the handler.
    co_await on_holder_failure(dest);
  }

  // 4. Flush updates buffered while the lines were in flight, then wake any
  //    probe blocked on a migrating line. Lines the failure handler already
  //    settled (promoted or orphaned) had their pending updates flushed or
  //    dropped there.
  for (LineId id : marked) {
    auto& l = store_.line(id);
    if (l.where == Where::kRemote) {
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --*updates_sent_;  // queue_update will count it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
        co_await maybe_flush_batch(l.backup);
      }
    }
    store_.fire_migration_trigger(id);
  }
}

// ---------------------------------------------------------------------------
// Reclamation (scheduler-driven revocation)
// ---------------------------------------------------------------------------

sim::Task<std::int64_t> RemoteBackend::reclaim(std::int64_t target_bytes) {
  if (target_bytes <= 0) co_return 0;
  // Holders in sorted order for determinism; snapshot the keys — the
  // recall mutates lines_by_holder_ underneath us.
  std::vector<net::NodeId> holders;
  for (const auto& [holder, ids] : lines_by_holder_) {
    if (!ids.empty()) holders.push_back(holder);
  }
  std::sort(holders.begin(), holders.end());
  std::int64_t freed = 0;
  for (net::NodeId holder : holders) {
    if (freed >= target_bytes) break;
    freed += co_await reclaim_from(holder, target_bytes - freed);
  }
  co_return freed;
}

sim::Task<std::int64_t> RemoteBackend::reclaim_from(net::NodeId holder,
                                                    std::int64_t target_bytes) {
  if (holder_suspect(holder)) co_return 0;  // failure handling owns its lines
  const auto held = lines_by_holder_.find(holder);
  if (held == lines_by_holder_.end() || held->second.empty()) co_return 0;

  // Park the recalled lines kMigrating first (sorted ids for determinism):
  // from here on probes buffer their ops (update mode) or wait on the line
  // trigger (simple swapping), so the recall owns the lines for its whole
  // duration — exactly migrate_away's discipline.
  std::vector<LineId> candidates(held->second.begin(), held->second.end());
  std::sort(candidates.begin(), candidates.end());
  std::vector<LineId> marked;
  std::int64_t marked_bytes = 0;
  for (LineId id : candidates) {
    if (marked_bytes >= target_bytes) break;
    auto& l = store_.line(id);
    // kFaulting lines come home by themselves (the holder answers the
    // in-flight swap-in first, same-pair FIFO); nothing else is recallable.
    if (l.where != Where::kRemote) continue;
    l.where = Where::kMigrating;
    marked.push_back(id);
    marked_bytes += l.bytes;
  }
  if (marked.empty()) co_return 0;
  const Time started = node_.sim().now();

  // Updates already queued for the holder must land before the per-line
  // fetches (same-pair FIFO keeps them ahead on the wire), so the recalled
  // contents include every op sent so far.
  co_await send_update_batch(holder);

  std::int64_t freed = 0;
  for (LineId id : marked) {
    auto& l = store_.line(id);
    RMS_CHECK(l.where == Where::kMigrating);
    bool lost = false;
    bool corrupt = false;
    if (holder_suspect(holder)) {
      lost = true;
    } else {
      MemRequest req;
      req.kind = MemRequest::Kind::kSwapIn;
      req.owner = node_.id();
      req.line_id = id;
      cluster::RpcResult res = co_await rpc(net::Message::make(
          node_.id(), holder, kMemService, 32, std::move(req)));
      if (!res.ok()) {
        // The holder went silent: re-home everything it held. Our marked
        // lines are kMigrating, so the handler skips them and leaves them
        // to the recovery below.
        co_await on_holder_failure(holder);
        lost = true;
      } else {
        const auto& rep = res.reply->as<MemReply>();
        co_await node_.compute(node_.costs().per_message_cpu);
        if (rep.ok) {
          RMS_CHECK(rep.lines.size() == 1 && rep.lines[0].line_id == id);
          if (!verify_payload(rep.lines[0], holder)) {
            corrupt = true;
            lost = true;
          } else {
            l.entries = rep.lines[0].entries;
            hold_erase(holder, id);
            drop_backup(id);
            unreplicated_.erase(id);
            unmirrored_shadow_.erase(id);  // home again; snapshot is garbage
            // Ops buffered while the line was parked apply locally now:
            // the recalled contents already include everything flushed
            // before the fetch, and the line has no remote copy left.
            const auto pend = pending_updates_.find(id);
            if (pend != pending_updates_.end()) {
              for (const mining::Itemset& s : pend->second) {
                --*updates_sent_;  // applied locally, not sent after all
                node_.stats().bump("store.reclaim_updates_applied");
                for (mining::CountedItemset& e : l.entries) {
                  if (e.items == s) {
                    ++e.count;
                    break;
                  }
                }
              }
              pending_updates_.erase(pend);
            }
            // The existing spill path: entries move to the local swap disk
            // and the line settles kDisk until a probe faults it back.
            co_await fallback_->swap_out(id);
            freed += l.bytes;
            node_.stats().bump("store.reclaimed_lines");
          }
        } else {
          // The holder answered but crashed and restarted in between; the
          // line's primary copy is gone.
          node_.stats().bump("store.swap_in_lost");
          lost = true;
        }
      }
    }
    if (lost) {
      hold_erase(holder, id);
      co_await recover_lost_line(
          id, corrupt ? RecoverCause::kCorrupt : RecoverCause::kLost);
      // Promoted lines settle kRemote at the surviving backup (still
      // donated, just elsewhere); repaired or orphaned lines are resident.
      // Requeue any ops buffered while the line was parked.
      if (l.where == Where::kRemote) {
        const auto pend = pending_updates_.find(id);
        if (pend != pending_updates_.end()) {
          for (const mining::Itemset& s : pend->second) {
            --*updates_sent_;  // queue_update counts it again
            queue_update(id, s);
          }
          pending_updates_.erase(pend);
          co_await maybe_flush_batch(l.holder);
          co_await maybe_flush_batch(l.backup);
        }
      }
    }
    store_.fire_migration_trigger(id);
  }
  node_.stats().bump("store.reclaim_recalls");
  if (obs::TraceRecorder* trace = store_.config().trace) {
    trace->span(obs::EventKind::kReclaim, node_.id(), started,
                node_.sim().now(), holder, freed);
  }
  co_return freed;
}

// ---------------------------------------------------------------------------
// Failure handling (application side)
// ---------------------------------------------------------------------------

sim::Task<> RemoteBackend::on_holder_failure(net::NodeId dead) {
  declare_dead(dead);

  // Queued one-way updates towards the dead node would be silent drops.
  // Count only the ops whose sole copy was there (see send_update_batch):
  // mirror ops survive at the primary, primary ops with a live backup
  // survive at the mirror — this runs before the backup-clearing block
  // below so those backups still read as alive.
  {
    const auto it = update_streams_.find(dead);
    if (it != update_streams_.end() && !it->second.empty()) {
      const auto closed = it->second.take();
      for (const UpdateOp& op : closed.batch.updates) {
        const auto& l = store_.line(op.line_id);
        if (l.holder == dead && l.backup < 0) ++failover().lost_update_ops;
      }
      node_.stats().bump("store.update_batches_dropped");
    }
  }

  // Backup copies stored at the dead node died with it; their primaries
  // are under-replicated until re_replicate runs below.
  std::vector<LineId> need_replica;
  {
    const auto it = replicas_by_holder_.find(dead);
    if (it != replicas_by_holder_.end()) {
      for (LineId id : it->second) {
        auto& l = store_.line(id);
        if (l.backup == dead) {
          l.backup = -1;
          unreplicated_.insert(id);
          if (l.where == Where::kRemote && l.holder != dead) {
            need_replica.push_back(id);
          }
        }
      }
      it->second.clear();
    }
  }

  // Snapshot the primaries this store had at the dead node. Lines already
  // kFaulting or kMigrating are owned by the coroutine that marked them
  // (fault_in / collect / migrate_away) and recover there; kMigrating keeps
  // probes parked on the trigger while we re-home.
  std::vector<LineId> victims;
  {
    const auto held = lines_by_holder_.find(dead);
    if (held != lines_by_holder_.end()) {
      for (LineId id : held->second) {
        if (store_.line(id).where == Where::kRemote) victims.push_back(id);
      }
      for (LineId id : victims) hold_erase(dead, id);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (LineId id : victims) store_.line(id).where = Where::kMigrating;

  for (LineId id : victims) {
    co_await recover_lost_line(id);
    auto& l = store_.line(id);
    if (l.where == Where::kRemote) {
      // Promoted: flush updates buffered while the line was dark.
      need_replica.push_back(id);
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --*updates_sent_;  // queue_update counts it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
      }
    }
  }

  for (LineId id : victims) store_.fire_migration_trigger(id);

  // Restore replicate_k: promotion consumed the promoted lines' mirrors,
  // and primaries whose backup died with `dead` lost theirs.
  if (store_.config().replicate_k > 0 && !need_replica.empty()) {
    co_await re_replicate(std::move(need_replica));
  }
}

// ---------------------------------------------------------------------------
// Redundancy restoration
// ---------------------------------------------------------------------------

sim::Task<> RemoteBackend::re_replicate(std::vector<LineId> ids) {
  if (store_.config().replicate_k <= 0) co_return;
  // Park the still-eligible lines kMigrating before the first suspend:
  // probes buffer their ops (update mode) or wait on the line trigger
  // (simple swapping), so nothing issued during our awaits can miss the
  // new replica. Grouped per holder, holders visited in sorted order.
  std::sort(ids.begin(), ids.end());
  std::map<net::NodeId, std::vector<LineId>> by_holder;
  std::vector<LineId> parked;
  for (LineId id : ids) {
    auto& l = store_.line(id);
    if (l.where != Where::kRemote || l.backup >= 0) continue;
    l.where = Where::kMigrating;
    by_holder[l.holder].push_back(id);
    parked.push_back(id);
  }
  for (auto& [holder, want] : by_holder) {
    if (holder_suspect(holder)) {
      // The holder died while we worked through earlier groups. Its
      // failure handler skipped these lines (we parked them), so settle
      // them here: no backup survives, repair from disk or orphan.
      for (LineId id : want) {
        auto& l = store_.line(id);
        if (l.where == Where::kMigrating && l.holder == holder) {
          hold_erase(holder, id);
          co_await recover_lost_line(id);
        }
      }
      continue;
    }
    // Flush queued ops first (same-pair FIFO lands them before the sync
    // RPC) so the holder's snapshot includes everything sent so far.
    co_await send_update_batch(holder);
    std::int64_t bytes = 0;
    for (LineId id : want) bytes += store_.line(id).bytes;
    const net::NodeId dest =
        pick_destination(bytes, placement::Purpose::kReReplicate, holder,
                         /*best_effort=*/true);
    if (dest < 0) {
      // No live, fresh node has room; the lines stay under-replicated (and
      // in unreplicated_) until a later trigger retries.
      node_.stats().bump("store.re_replication_no_destination");
      continue;
    }
    MemRequest req;
    req.kind = MemRequest::Kind::kReplicaSync;
    req.owner = node_.id();
    req.migrate_dest = dest;
    req.migrate_lines = want;
    cluster::RpcResult res = co_await rpc(net::Message::make(
        node_.id(), holder, kMemService,
        16 + 8 * static_cast<std::int64_t>(want.size()), std::move(req)));
    if (!res.ok()) {
      // The holder went silent mid-sync: its primaries are gone too.
      co_await on_holder_failure(holder);
      for (LineId id : want) {
        auto& l = store_.line(id);
        if (l.where == Where::kMigrating && l.holder == holder) {
          hold_erase(holder, id);
          co_await recover_lost_line(id);
        }
      }
      continue;
    }
    const auto& rep = res.reply->as<MemReply>();
    co_await node_.compute(node_.costs().per_message_cpu);
    const std::unordered_set<LineId> synced(rep.migrated.begin(),
                                            rep.migrated.end());
    for (LineId id : want) {
      auto& l = store_.line(id);
      const bool still = l.where == Where::kMigrating &&
                         l.holder == holder && l.backup < 0;
      if (synced.count(id) && still) {
        l.backup = dest;
        replicas_by_holder_[dest].insert(id);
        unreplicated_.erase(id);
        ++integrity().re_replications;
        ++failover().replicas_stored;
        node_.stats().bump("store.re_replications");
        if (obs::TraceRecorder* trace = store_.config().trace) {
          trace->instant(obs::EventKind::kReReplicate, node_.id(),
                         node_.sim().now(), id, dest);
        }
      } else if (synced.count(id)) {
        // The copy landed but the line's state moved on meanwhile; tell
        // the new backup to drop the stray replica.
        MemRequest drop;
        drop.kind = MemRequest::Kind::kReplicaDrop;
        drop.owner = node_.id();
        drop.line_id = id;
        node_.send_to(dest, kMemService, 16, std::move(drop));
      }
      // Lines the holder no longer had (res.ok with a partial `migrated`:
      // it restarted and lost them) stay under-replicated; the next
      // swap-in discovers the loss and recovers normally.
    }
  }
  // Un-park: restore kRemote, requeue ops buffered while the lines were in
  // flight (queue_update now mirrors them to the new backup), and wake any
  // probe blocked on the trigger.
  for (LineId id : parked) {
    auto& l = store_.line(id);
    if (l.where == Where::kMigrating) {
      l.where = Where::kRemote;
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --*updates_sent_;  // queue_update counts it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
        co_await maybe_flush_batch(l.backup);
      }
    }
    store_.fire_migration_trigger(id);
  }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

void RemoteBackend::check_invariants() const {
  // Replica tracking: replicas_by_holder_ and Line::backup must agree in
  // both directions.
  std::size_t tracked_replicas = 0;
  for (const auto& [backup, ids] : replicas_by_holder_) {
    for (LineId id : ids) {
      RMS_CHECK_MSG(store_.line(id).backup == backup,
                    "replica map points at a line backed up elsewhere");
    }
    tracked_replicas += ids.size();
  }
  std::size_t with_backup = 0;
  for (std::size_t i = 0; i < store_.num_lines(); ++i) {
    const auto id = static_cast<LineId>(i);
    const auto& l = store_.line(id);
    if (l.backup >= 0) {
      ++with_backup;
      const auto it = replicas_by_holder_.find(l.backup);
      RMS_CHECK_MSG(it != replicas_by_holder_.end() && it->second.count(id),
                    "line backup not tracked in the replica map");
    }
    if (l.where == Where::kRemote) {
      const auto it = lines_by_holder_.find(l.holder);
      RMS_CHECK_MSG(it != lines_by_holder_.end() && it->second.count(id),
                    "remote line missing from its holder's set");
      // Redundancy: with replication on, every remote primary lacking a
      // mirror must be queued for re-replication (stale extras — lines
      // that since came home — are allowed in the set).
      if (store_.config().replicate_k > 0 && l.backup < 0) {
        RMS_CHECK_MSG(unreplicated_.count(id) > 0,
                      "under-replicated remote line not queued for "
                      "re-replication");
      }
    }
  }
  RMS_CHECK_MSG(with_backup == tracked_replicas,
                "replica map size disagrees with per-line backups");

  // Holder tracking: every held line points back at its holder and is in a
  // remote-ish state (kFaulting/kMigrating lines stay in the map while the
  // coroutine that pinned them is in flight); remote_bytes_ matches.
  std::int64_t held_bytes = 0;
  for (const auto& [holder, ids] : lines_by_holder_) {
    for (LineId id : ids) {
      const auto& l = store_.line(id);
      RMS_CHECK_MSG(l.holder == holder, "held line points at another holder");
      RMS_CHECK_MSG(l.where == Where::kRemote || l.where == Where::kFaulting ||
                        l.where == Where::kMigrating,
                    "held line in a non-remote state");
      held_bytes += l.bytes;
    }
  }
  RMS_CHECK_MSG(held_bytes == remote_bytes_,
                "remote byte accounting drifted");

  // Update batching: bytes must track the op count exactly.
  for (const auto& [holder, stream] : update_streams_) {
    RMS_CHECK_MSG(
        stream.pending_ops() ==
            static_cast<std::int64_t>(stream.peek().updates.size()),
        "update stream op accounting out of sync with the open batch");
    RMS_CHECK_MSG(
        stream.pending_bytes() ==
            stream.pending_ops() * store_.config().update_op_bytes,
        "update stream byte accounting out of sync with queued ops");
  }

  RMS_CHECK_MSG(!update_mode_ || unmirrored_shadow_.empty(),
                "unmirrored shadow populated in update mode");
  for (const auto& [id, sh] : unmirrored_shadow_) {
    RMS_CHECK_MSG(sh.checksum != 0,
                  "unmirrored shadow copy without a checksum stamp");
  }

  fallback_->check_invariants();
}

}  // namespace rms::core
