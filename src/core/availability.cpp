#include "core/availability.hpp"

#include <unordered_map>

#include "transport/transport.hpp"

namespace rms::core {

sim::Process availability_monitor(cluster::Node& node, MonitorConfig config) {
  sim::Simulation& sim = node.sim();
  std::uint64_t seq = 0;
  for (;;) {
    if (!node.alive()) {
      // Crashed: stay silent until restart. seq keeps counting up from
      // where it was, so post-restart reports are accepted as fresh.
      co_await sim.timeout(config.interval);
      continue;
    }
    // Read the kernel statistics (the paper's `netstat -k`).
    co_await node.compute(node.costs().monitor_sample);
    const std::int64_t avail = node.memory().available();
    ++seq;
    for (net::NodeId dst : config.subscribers) {
      node.send_to(dst, kAvailInfo, kAvailabilityInfoBytes,
                   AvailabilityInfo{node.id(), avail, seq});
    }
    node.stats().bump("monitor.broadcasts");
    co_await sim.timeout(config.interval);
  }
}

sim::Process availability_client(cluster::Node& node,
                                 placement::MemoryBroker& broker,
                                 ClientConfig config,
                                 ShortageHandler on_shortage) {
  // Tracks which shortage events were already handled so one withdrawal
  // does not trigger a migration per broadcast.
  std::unordered_map<net::NodeId, bool> short_handled;
  transport::Inbox inbox(node, kAvailInfo);
  for (;;) {
    net::Message msg = co_await inbox.recv();
    const auto& info = msg.as<AvailabilityInfo>();
    // The broker write lands at delivery time, without queueing for the
    // CPU: the failure detector keys off these timestamps, and a long
    // compute chunk holding this node's CPU (e.g. the candidate-generation
    // scan) must not read as a cluster of dead memory nodes. CPU is charged
    // only when a report triggers actual work.
    if (!broker.update(info, node.sim().now())) continue;
    node.stats().bump("client.availability_updates");

    const bool is_short =
        info.available_bytes < config.shortage_threshold_bytes;
    bool& handled = short_handled[info.node];
    if (is_short && !handled) {
      handled = true;
      node.stats().bump("client.shortage_events");
      co_await node.compute(node.costs().context_switch);
      if (on_shortage) co_await on_shortage(info.node);
    } else if (!is_short) {
      handled = false;  // node recovered; re-arm
    }
  }
}

sim::Process failure_detector(cluster::Node& node,
                              placement::MemoryBroker& broker,
                              DetectorConfig config,
                              SuspectHandler on_suspect) {
  RMS_CHECK(config.expected_interval > 0);
  RMS_CHECK(config.miss_threshold >= 1);
  const Time check = config.check_interval > 0 ? config.check_interval
                                               : config.expected_interval;
  const Time silence_limit =
      config.expected_interval * static_cast<Time>(config.miss_threshold);
  // Constructed before the loop (registers the rpc.latency_ms histogram on
  // this node even when confirm_with_rpc never fires, as before).
  transport::Transport ping(
      node, transport::TransportOptions{config.ping_deadline,
                                        config.ping_retries, /*window=*/1});
  for (;;) {
    co_await node.sim().timeout(check);
    const Time now = node.sim().now();
    for (net::NodeId n : broker.memory_nodes()) {
      if (broker.dead(n)) continue;
      const Time last = broker.last_update(n);
      if (last < 0) continue;  // never reported; never chosen either
      if (now - last <= silence_limit) continue;
      if (config.confirm_with_rpc) {
        // Heartbeats went silent; ask the node directly before the verdict.
        MemRequest req;
        req.kind = MemRequest::Kind::kPing;
        req.owner = node.id();
        const cluster::RpcResult res = co_await ping.call(
            net::Message::make(node.id(), n, kMemService, 16, std::move(req)),
            rpc_op(MemRequest::Kind::kPing));
        if (res.ok()) {
          // Alive after all (the broadcast path is lossy or congested);
          // leave the entry stale so a fresh report revives it normally.
          node.stats().bump("detector.false_suspicions_avoided");
          continue;
        }
      }
      broker.mark_dead(n);
      node.stats().bump("detector.suspicions");
      if (on_suspect) co_await on_suspect(n);
    }
  }
}

}  // namespace rms::core
