#include "core/availability.hpp"

namespace rms::core {

AvailabilityTable::AvailabilityTable(std::vector<net::NodeId> memory_nodes)
    : memory_nodes_(std::move(memory_nodes)) {
  for (net::NodeId n : memory_nodes_) entries_.emplace(n, Entry{});
}

bool AvailabilityTable::update(const AvailabilityInfo& info, Time now) {
  const auto it = entries_.find(info.node);
  RMS_CHECK_MSG(it != entries_.end(),
                "availability report from an unregistered node");
  Entry& e = it->second;
  if (e.valid && info.seq <= e.seq) return false;  // stale broadcast
  e.available = info.available_bytes;
  e.seq = info.seq;
  e.updated = now;
  e.valid = true;
  return true;
}

std::int64_t AvailabilityTable::available(net::NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return 0;
  return it->second.available;
}

std::optional<net::NodeId> AvailabilityTable::choose_destination(
    std::int64_t bytes_needed, net::NodeId exclude) {
  if (memory_nodes_.empty()) return std::nullopt;
  for (std::size_t i = 0; i < memory_nodes_.size(); ++i) {
    const std::size_t at = (cursor_ + i) % memory_nodes_.size();
    const net::NodeId n = memory_nodes_[at];
    if (n == exclude) continue;
    if (available(n) >= bytes_needed) {
      cursor_ = (at + 1) % memory_nodes_.size();
      return n;
    }
  }
  return std::nullopt;
}

void AvailabilityTable::debit(net::NodeId node, std::int64_t bytes) {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return;
  it->second.available =
      it->second.available >= bytes ? it->second.available - bytes : 0;
}

sim::Process availability_monitor(cluster::Node& node, MonitorConfig config) {
  sim::Simulation& sim = node.sim();
  std::uint64_t seq = 0;
  for (;;) {
    // Read the kernel statistics (the paper's `netstat -k`).
    co_await node.compute(node.costs().monitor_sample);
    const std::int64_t avail = node.memory().available();
    ++seq;
    for (net::NodeId dst : config.subscribers) {
      node.send_to(dst, kAvailInfo, kAvailabilityInfoBytes,
                   AvailabilityInfo{node.id(), avail, seq});
    }
    node.stats().bump("monitor.broadcasts");
    co_await sim.timeout(config.interval);
  }
}

sim::Process availability_client(cluster::Node& node, AvailabilityTable& table,
                                 ClientConfig config,
                                 ShortageHandler on_shortage) {
  // Tracks which shortage events were already handled so one withdrawal
  // does not trigger a migration per broadcast.
  std::unordered_map<net::NodeId, bool> short_handled;
  for (;;) {
    net::Message msg = co_await node.mailbox().recv(kAvailInfo);
    const auto& info = msg.as<AvailabilityInfo>();
    co_await node.compute(node.costs().context_switch);
    if (!table.update(info, node.sim().now())) continue;
    node.stats().bump("client.availability_updates");

    const bool is_short =
        info.available_bytes < config.shortage_threshold_bytes;
    bool& handled = short_handled[info.node];
    if (is_short && !handled) {
      handled = true;
      node.stats().bump("client.shortage_events");
      if (on_shortage) co_await on_shortage(info.node);
    } else if (!is_short) {
      handled = false;  // node recovered; re-arm
    }
  }
}

}  // namespace rms::core
