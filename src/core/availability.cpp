#include "core/availability.hpp"

#include <algorithm>

#include "transport/transport.hpp"

namespace rms::core {

AvailabilityTable::AvailabilityTable(std::vector<net::NodeId> memory_nodes)
    : memory_nodes_(std::move(memory_nodes)) {
  for (net::NodeId n : memory_nodes_) entries_.emplace(n, Entry{});
}

bool AvailabilityTable::update(const AvailabilityInfo& info, Time now) {
  const auto it = entries_.find(info.node);
  RMS_CHECK_MSG(it != entries_.end(),
                "availability report from an unregistered node");
  Entry& e = it->second;
  if (e.valid && info.seq <= e.seq) return false;  // stale broadcast
  e.available = info.available_bytes;
  e.seq = info.seq;
  e.updated = now;
  e.valid = true;
  e.dead = false;  // a live heartbeat revives a suspected node
  return true;
}

std::int64_t AvailabilityTable::available(net::NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return 0;
  return it->second.available;
}

std::optional<net::NodeId> AvailabilityTable::choose_destination(
    std::int64_t bytes_needed, net::NodeId exclude, Time now) {
  if (memory_nodes_.empty()) return std::nullopt;
  for (std::size_t i = 0; i < memory_nodes_.size(); ++i) {
    const std::size_t at = (cursor_ + i) % memory_nodes_.size();
    const net::NodeId n = memory_nodes_[at];
    if (n == exclude) continue;
    if (dead(n)) continue;
    if (quarantined(n)) continue;
    if (now >= 0 && expired(n, now)) continue;
    if (available(n) >= bytes_needed) {
      cursor_ = (at + 1) % memory_nodes_.size();
      return n;
    }
  }
  return std::nullopt;
}

std::optional<net::NodeId> AvailabilityTable::choose_best_effort(
    net::NodeId exclude, Time now) {
  std::optional<net::NodeId> best;
  std::int64_t best_room = -1;
  for (const net::NodeId n : memory_nodes_) {
    if (n == exclude) continue;
    if (dead(n)) continue;
    if (quarantined(n)) continue;
    if (now >= 0 && expired(n, now)) continue;
    const auto it = entries_.find(n);
    if (it == entries_.end() || !it->second.valid) continue;
    if (it->second.available > best_room) {
      best_room = it->second.available;
      best = n;
    }
  }
  return best;
}

bool AvailabilityTable::expired(net::NodeId node, Time now) const {
  if (max_age_ <= 0) return false;
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return false;
  return now - it->second.updated > max_age_;
}

void AvailabilityTable::mark_dead(net::NodeId node) {
  const auto it = entries_.find(node);
  RMS_CHECK_MSG(it != entries_.end(), "mark_dead on an unregistered node");
  it->second.dead = true;
}

bool AvailabilityTable::dead(net::NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() && it->second.dead;
}

void AvailabilityTable::quarantine(net::NodeId node) {
  const auto it = entries_.find(node);
  RMS_CHECK_MSG(it != entries_.end(), "quarantine on an unregistered node");
  it->second.quarantined = true;
}

bool AvailabilityTable::quarantined(net::NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() && it->second.quarantined;
}

Time AvailabilityTable::last_update(net::NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return -1;
  return it->second.updated;
}

Time AvailabilityTable::oldest_report_age(Time now) const {
  Time oldest = 0;
  for (const net::NodeId n : memory_nodes_) {
    const auto it = entries_.find(n);
    if (it == entries_.end() || !it->second.valid || it->second.dead) continue;
    oldest = std::max(oldest, now - it->second.updated);
  }
  return oldest;
}

void AvailabilityTable::debit(net::NodeId node, std::int64_t bytes) {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return;
  it->second.available =
      it->second.available >= bytes ? it->second.available - bytes : 0;
}

sim::Process availability_monitor(cluster::Node& node, MonitorConfig config) {
  sim::Simulation& sim = node.sim();
  std::uint64_t seq = 0;
  for (;;) {
    if (!node.alive()) {
      // Crashed: stay silent until restart. seq keeps counting up from
      // where it was, so post-restart reports are accepted as fresh.
      co_await sim.timeout(config.interval);
      continue;
    }
    // Read the kernel statistics (the paper's `netstat -k`).
    co_await node.compute(node.costs().monitor_sample);
    const std::int64_t avail = node.memory().available();
    ++seq;
    for (net::NodeId dst : config.subscribers) {
      node.send_to(dst, kAvailInfo, kAvailabilityInfoBytes,
                   AvailabilityInfo{node.id(), avail, seq});
    }
    node.stats().bump("monitor.broadcasts");
    co_await sim.timeout(config.interval);
  }
}

sim::Process availability_client(cluster::Node& node, AvailabilityTable& table,
                                 ClientConfig config,
                                 ShortageHandler on_shortage) {
  // Tracks which shortage events were already handled so one withdrawal
  // does not trigger a migration per broadcast.
  std::unordered_map<net::NodeId, bool> short_handled;
  transport::Inbox inbox(node, kAvailInfo);
  for (;;) {
    net::Message msg = co_await inbox.recv();
    const auto& info = msg.as<AvailabilityInfo>();
    // The table write lands at delivery time, without queueing for the CPU:
    // the failure detector keys off these timestamps, and a long compute
    // chunk holding this node's CPU (e.g. the candidate-generation scan)
    // must not read as a cluster of dead memory nodes. CPU is charged only
    // when a report triggers actual work.
    if (!table.update(info, node.sim().now())) continue;
    node.stats().bump("client.availability_updates");

    const bool is_short =
        info.available_bytes < config.shortage_threshold_bytes;
    bool& handled = short_handled[info.node];
    if (is_short && !handled) {
      handled = true;
      node.stats().bump("client.shortage_events");
      co_await node.compute(node.costs().context_switch);
      if (on_shortage) co_await on_shortage(info.node);
    } else if (!is_short) {
      handled = false;  // node recovered; re-arm
    }
  }
}

sim::Process failure_detector(cluster::Node& node, AvailabilityTable& table,
                              DetectorConfig config,
                              SuspectHandler on_suspect) {
  RMS_CHECK(config.expected_interval > 0);
  RMS_CHECK(config.miss_threshold >= 1);
  const Time check = config.check_interval > 0 ? config.check_interval
                                               : config.expected_interval;
  const Time silence_limit =
      config.expected_interval * static_cast<Time>(config.miss_threshold);
  // Constructed before the loop (registers the rpc.latency_ms histogram on
  // this node even when confirm_with_rpc never fires, as before).
  transport::Transport ping(
      node, transport::TransportOptions{config.ping_deadline,
                                        config.ping_retries, /*window=*/1});
  for (;;) {
    co_await node.sim().timeout(check);
    const Time now = node.sim().now();
    for (net::NodeId n : table.memory_nodes()) {
      if (table.dead(n)) continue;
      const Time last = table.last_update(n);
      if (last < 0) continue;  // never reported; never chosen either
      if (now - last <= silence_limit) continue;
      if (config.confirm_with_rpc) {
        // Heartbeats went silent; ask the node directly before the verdict.
        MemRequest req;
        req.kind = MemRequest::Kind::kPing;
        req.owner = node.id();
        const cluster::RpcResult res = co_await ping.call(net::Message::make(
            node.id(), n, kMemService, 16, std::move(req)));
        if (res.ok()) {
          // Alive after all (the broadcast path is lossy or congested);
          // leave the entry stale so a fresh report revives it normally.
          node.stats().bump("detector.false_suspicions_avoided");
          continue;
        }
      }
      table.mark_dead(n);
      node.stats().bump("detector.suspicions");
      if (on_suspect) co_await on_suspect(n);
    }
  }
}

}  // namespace rms::core
