// Failover accounting for the crash-tolerant remote-swap path.
//
// One block per HashLineStore; the HPA runner merges every store's block
// into a run-level total that hpa::report prints when any fault-handling
// machinery actually fired.
#pragma once

#include <cstdint>

namespace rms::core {

struct FailoverStats {
  /// Memory nodes this store's node declared dead (detector verdicts plus
  /// in-band RPC-timeout verdicts).
  std::int64_t suspicions = 0;
  /// RPC attempts beyond the first (kSwapIn / kFetch / migration pushes).
  std::int64_t rpc_retries = 0;
  /// RPC deadlines that expired (each retry is preceded by one miss).
  std::int64_t deadline_misses = 0;
  /// Hash lines whose only copy died with a memory node: the line restarts
  /// empty and its candidate counts are lost.
  std::int64_t orphaned_lines = 0;
  std::int64_t orphaned_entries = 0;
  /// Lines recovered by promoting a backup copy (replicate_k = 1).
  std::int64_t promoted_lines = 0;
  /// Evictions that fell back to the disk-swap path because no live memory
  /// node qualified as a destination.
  std::int64_t degraded_evictions = 0;
  /// Backup copies shipped (replicate_k = 1).
  std::int64_t replicas_stored = 0;
  /// Remote-update ops mirrored to backup copies.
  std::int64_t updates_mirrored = 0;
  /// Remote-update ops dropped because the holder was already suspected.
  std::int64_t lost_update_ops = 0;

  void merge(const FailoverStats& o) {
    suspicions += o.suspicions;
    rpc_retries += o.rpc_retries;
    deadline_misses += o.deadline_misses;
    orphaned_lines += o.orphaned_lines;
    orphaned_entries += o.orphaned_entries;
    promoted_lines += o.promoted_lines;
    degraded_evictions += o.degraded_evictions;
    replicas_stored += o.replicas_stored;
    updates_mirrored += o.updates_mirrored;
    lost_update_ops += o.lost_update_ops;
  }

  bool any() const {
    return suspicions || rpc_retries || deadline_misses || orphaned_lines ||
           promoted_lines || degraded_evictions || replicas_stored ||
           lost_update_ops;
  }
};

}  // namespace rms::core
