// Swap policies for over-limit candidate memory (§4 and §5 of the paper).
#pragma once

#include <string>

namespace rms::core {

enum class SwapPolicy {
  /// Application nodes have enough memory; the monitor still runs (the
  /// paper's baseline in Figure 3, "no memory usage limit").
  kNoLimit,
  /// Swap evicted hash lines to the local SCSI disk (the paper's Figure 4
  /// baseline, "swapping out to hard disks").
  kDiskSwap,
  /// Dynamic remote memory acquisition with simple swapping (§4.3): evicted
  /// lines go to a memory-available node; a fault swaps the line back in.
  kRemoteSwap,
  /// Dynamic remote memory acquisition with remote update operations (§4.4):
  /// once a line is swapped out it is *fixed* on the remote node during the
  /// counting phase and accessed via one-way update messages.
  kRemoteUpdate,
  /// Tiered placement (extension): evicted lines go to remote memory first
  /// (simple-swapping semantics) until the per-store remote budget
  /// (`Config::tiered_remote_budget_bytes`) is full, then spill per line to
  /// the local disk. With an unlimited budget this is exactly kRemoteSwap —
  /// the budget formalizes the failover path's ad-hoc degrade-to-disk as a
  /// first-class composition of the remote and disk backends.
  kTiered,
};

inline const char* to_string(SwapPolicy p) {
  switch (p) {
    case SwapPolicy::kNoLimit: return "no-limit";
    case SwapPolicy::kDiskSwap: return "disk-swap";
    case SwapPolicy::kRemoteSwap: return "remote-swap";
    case SwapPolicy::kRemoteUpdate: return "remote-update";
    case SwapPolicy::kTiered: return "tiered";
  }
  return "?";
}

inline bool uses_remote_memory(SwapPolicy p) {
  return p == SwapPolicy::kRemoteSwap || p == SwapPolicy::kRemoteUpdate ||
         p == SwapPolicy::kTiered;
}

/// Victim selection for over-limit eviction. The paper uses LRU ("the hash
/// line swapped out is selected using a LRU algorithm", §4.3); FIFO and
/// Random are provided for the ablation bench.
enum class EvictionPolicy {
  kLru,
  kFifo,
  kRandom,
};

inline const char* to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kRandom: return "random";
  }
  return "?";
}

}  // namespace rms::core
