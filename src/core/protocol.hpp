// Wire protocol between application execution nodes and memory-available
// nodes (Figure 2 of the paper).
//
// One service tag per role keeps each server a single blocking loop:
//   kMemService   — swap-out / swap-in / update / fetch / migration traffic
//                   handled by the MemoryServer process on memory nodes;
//   kAvailInfo    — periodic availability broadcasts from monitor processes
//                   to the client processes on application nodes.
// The tag values themselves live in the transport layer's TagRegistry (the
// cluster-wide catalog, docs/PROTOCOL.md); these are role-named aliases.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/hash_line_table.hpp"
#include "mining/itemset.hpp"
#include "net/network.hpp"
#include "transport/tags.hpp"

namespace rms::core {

inline constexpr net::Tag kMemService = transport::TagRegistry::kMemService;
inline constexpr net::Tag kAvailInfo = transport::TagRegistry::kAvailInfo;

/// Global hash-line id (bucket index in the distributed candidate table).
using LineId = std::int64_t;

/// A hash line in flight: the swap unit (§4.3 — "the unit of swapping
/// operation is a hash line").
struct LinePayload {
  LineId line_id = -1;
  mining::HashLine entries;
  std::int64_t accounted_bytes = 0;
  /// Content checksum over `entries`, stamped when the line leaves its
  /// owner (swap-out / disk spill) and carried through every store, fetch,
  /// migration and replica hop. 0 means "unstamped" — verification is
  /// skipped (pre-checksum peers, hand-built test payloads).
  std::uint64_t checksum = 0;
};

/// Per-entry digest for the line checksum: splitmix64-style finalizer over
/// the itemset hash and the counter. The digest changes whenever a single
/// count bit flips, which is exactly the corruption the injector produces.
inline std::uint64_t entry_digest(const mining::CountedItemset& e) {
  std::uint64_t x =
      e.items.hash() ^ (0x9e3779b97f4a7c15ULL * (e.count + 1ULL));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-independent line checksum: a nonzero basis plus the sum of the
/// entry digests. Commutativity is load-bearing — the memory server applies
/// kUpdateBatch ops as per-entry increments and maintains the checksum
/// incrementally (+= digest(after) - digest(before)), so a mismatch, once
/// introduced, persists through any number of subsequent updates.
inline std::uint64_t line_checksum(const mining::HashLine& entries) {
  std::uint64_t sum = 0x9e3779b97f4a7c15ULL;  // nonzero: 0 means unstamped
  for (const mining::CountedItemset& e : entries) sum += entry_digest(e);
  return sum;
}

/// True when the payload is stamped and its entries match the checksum.
/// Callers treat unstamped payloads (checksum == 0) as trusted.
inline bool payload_intact(const LinePayload& p) {
  return p.checksum != 0 && p.checksum == line_checksum(p.entries);
}

/// One remote update operation (§4.4): probe `itemset` in line `line_id`,
/// incrementing its counter if it is a registered candidate.
struct UpdateOp {
  LineId line_id = -1;
  mining::Itemset itemset;
};

struct MemRequest {
  enum class Kind {
    kSwapOut,           // one-way: store lines[]
    kSwapIn,            // rpc: return and erase line_id
    kUpdateBatch,       // one-way: apply updates[]
    kFetch,             // rpc: return and erase every line owned by `owner`
    kMigrateDirective,  // rpc from app node: push my lines to migrate_dest
    kMigrateData,       // rpc between servers: adopt lines[]
    // ---- replication (failover extension; replicate_k = 1) ----
    kReplicaStore,      // one-way: keep lines[] as backup copies
    kReplicaPromote,    // rpc: promote replicas migrate_lines[] to primaries
    kReplicaDrop,       // one-way: drop replica line_id (-1: all of owner)
    kPing,              // rpc: liveness probe (failure-detector confirmation)
    // ---- integrity extension (redundancy restoration) ----
    kReplicaSync,       // rpc: push replica copies of my primaries
                        // migrate_lines[] to migrate_dest; reply.migrated =
                        // the lines actually synced
  };

  static constexpr const char* to_string(Kind k) {
    switch (k) {
      case Kind::kSwapOut: return "swap_out";
      case Kind::kSwapIn: return "swap_in";
      case Kind::kUpdateBatch: return "update_batch";
      case Kind::kFetch: return "fetch";
      case Kind::kMigrateDirective: return "migrate_directive";
      case Kind::kMigrateData: return "migrate_data";
      case Kind::kReplicaStore: return "replica_store";
      case Kind::kReplicaPromote: return "replica_promote";
      case Kind::kReplicaDrop: return "replica_drop";
      case Kind::kPing: return "ping";
      case Kind::kReplicaSync: return "replica_sync";
    }
    return "unknown";
  }

  Kind kind = Kind::kSwapOut;
  net::NodeId owner = -1;  // application node owning the lines
  LineId line_id = -1;     // kSwapIn
  /// kFetch option ("remote determination"): when > 0 the server drops
  /// entries below this support count before shipping lines home, so the
  /// end-of-pass transfer carries only potential large itemsets.
  std::uint32_t fetch_min_count = 0;
  std::vector<LinePayload> lines;     // kSwapOut / kMigrateData / kReplicaStore
  std::vector<UpdateOp> updates;      // kUpdateBatch
  net::NodeId migrate_dest = -1;      // kMigrateDirective / kReplicaSync
  std::vector<LineId> migrate_lines;  // kMigrateDirective / kReplicaPromote /
                                      // kReplicaSync
};

struct MemReply {
  /// False when the server could not honour the request: kSwapIn for a line
  /// it does not hold (lost in a crash-restart), or a migration whose
  /// destination went dead mid-push. Clients retry against a replica or
  /// degrade; they never treat ok=false as success.
  bool ok = true;
  std::vector<LinePayload> lines;  // kSwapIn (1) / kFetch (n)
  std::vector<LineId> migrated;    // kMigrateDirective / kReplicaPromote /
                                   // kReplicaSync: lines actually moved /
                                   // promoted / synced
};

/// Transport `op` annotation for a MemRequest kind (profiler's RPC-by-service
/// split; see obs::rpc_op_name). 0 is reserved for untagged calls.
inline constexpr std::int64_t rpc_op(MemRequest::Kind k) {
  return 1 + static_cast<std::int64_t>(k);
}

/// Monitor broadcast payload: "the process broadcasts it to all application
/// execution nodes" (§4.2).
struct AvailabilityInfo {
  net::NodeId node = -1;
  std::int64_t available_bytes = 0;
  std::uint64_t seq = 0;  // monotonic per monitor, late messages ignored
};

inline constexpr std::int64_t kAvailabilityInfoBytes = 24;

}  // namespace rms::core
