// Line-integrity accounting and the payload corruptor.
//
// The paper's premise — mining state living in *other machines'* memory for
// most of a multi-pass run — makes silent corruption the nastiest failure
// mode: a flipped bit in a swapped line would be counted straight into
// support totals. The integrity layer closes that hole end-to-end:
//
//   - every line payload carries a checksum (core/protocol.hpp), stamped
//     when the line leaves its owner and verified on every hop back;
//   - IntegrityStats aggregates what the verification machinery saw:
//     mismatches, repairs (replica / disk shadow), lines lost outright,
//     re-replications and holder quarantines;
//   - corrupt_line_payloads() is the fault-injection hook the Network
//     drives (type-erased through net::Network::CorruptFn — net/ stays
//     ignorant of the core wire protocol).
//
// The corruptor flips a bit in one entry's *count* and never touches
// line_id, update ops, or the checksum itself: every injected fault is
// detectable by construction, so tests can assert "never silently used"
// rather than "usually caught".
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace rms::core {

/// What the checksum machinery observed, summed over one store (and merged
/// across app nodes into the run result, like FailoverStats).
struct IntegrityStats {
  /// Checksum mismatches detected on fetched / faulted / spilled payloads.
  std::int64_t checksum_mismatches = 0;
  /// Corrupt lines recovered by promoting the replicate_k backup copy.
  std::int64_t repaired_from_replica = 0;
  /// Lines recovered from the TieredBackend's local disk shadow.
  std::int64_t repaired_from_disk = 0;
  /// Corrupt lines with no good copy left: orphaned (counts lost, never
  /// silently used).
  std::int64_t lines_lost = 0;
  /// Under-replicated lines re-mirrored to a fresh backup mid-run.
  std::int64_t re_replications = 0;
  /// Holders excluded from placement after repeated corrupt payloads.
  std::int64_t quarantines = 0;

  void merge(const IntegrityStats& o) {
    checksum_mismatches += o.checksum_mismatches;
    repaired_from_replica += o.repaired_from_replica;
    repaired_from_disk += o.repaired_from_disk;
    lines_lost += o.lines_lost;
    re_replications += o.re_replications;
    quarantines += o.quarantines;
  }

  bool any() const {
    return checksum_mismatches != 0 || repaired_from_replica != 0 ||
           repaired_from_disk != 0 || lines_lost != 0 ||
           re_replications != 0 || quarantines != 0;
  }
};

/// Payload corruptor for net::Network::set_corruptor: with probability
/// `rate` per stamped, non-empty line payload carried by a MemRequest /
/// MemReply, flip a bit in one entry's count. Messages without line
/// payloads draw nothing; a message with no hits is left untouched (the
/// immutable body is deep-copied only when a flip actually lands). Returns
/// the number of payloads corrupted.
int corrupt_line_payloads(net::Message& msg, double rate, Pcg32& rng);

}  // namespace rms::core
