// SwapBackend: the movement mechanism behind the residency core.
//
// HashLineStore owns the paper-visible policy surface — the memory-usage
// limit, LRU/FIFO/Random victim selection, the build/count phase machine and
// the per-line location state machine. *Where an evicted line goes and how
// it comes back* is mechanism, and it lives behind this interface:
//
//   DiskBackend    — the local swap disk (§5.2 "swapping out to hard disks")
//   RemoteBackend  — remote memory over RPC (§4.3 simple swapping, §4.4
//                    remote updates, replicate_k mirroring, orphan/promote
//                    crash recovery, migration)
//   TieredBackend  — remote-first placement under a byte budget, spilling
//                    per line to disk (composes the two above)
//
// The store calls the backend only from its own state-machine transitions:
// a backend receives a line already unlinked from the LRU (swap_out) or
// still parked (fault_in) and manipulates the line table through the store's
// backend-access surface (HashLineStore::line / make_resident /
// orphan_accounting / migration triggers). New placement strategies —
// compressed lines, multi-replica, pipelined swap-out — are one subclass
// plus a factory case; nothing in the store or the mining loop changes.
#pragma once

#include <cstddef>
#include <memory>

#include "core/protocol.hpp"
#include "mining/itemset.hpp"
#include "sim/task.hpp"

namespace rms::core {

class HashLineStore;

class SwapBackend {
 public:
  explicit SwapBackend(HashLineStore& store) : store_(store) {}
  virtual ~SwapBackend() = default;

  SwapBackend(const SwapBackend&) = delete;
  SwapBackend& operator=(const SwapBackend&) = delete;

  /// Stable identifier used to namespace this backend's counters in the
  /// store's StatsRegistry ("backend.<name>.*").
  virtual const char* name() const = 0;

  /// Move a victim line out. On entry the line is kResident, non-empty, and
  /// already unlinked from the LRU with its bytes uncharged from residency;
  /// on return its entries live in the backend and `where` reflects the
  /// placement (kRemote / kDisk).
  virtual sim::Task<> swap_out(LineId id) = 0;

  /// Bring a non-resident line's entries back. On return either the entries
  /// are restored and the line is still kFaulting (the store re-charges
  /// residency and re-links the LRU), or crash recovery orphaned the line
  /// (resident and empty). The store wraps this with pagefault accounting.
  virtual sim::Task<> fault_in(LineId id) = 0;

  /// Count-phase probe of a non-resident line. Returns true when the probe
  /// was absorbed in place (a one-way remote update op, §4.4) — the caller
  /// is done; false when the line must fault home instead.
  virtual sim::Task<bool> update(LineId id, const mining::Itemset& itemset);

  /// Count-phase probe of a line whose holder is executing a migration
  /// directive. Returns true when the update was buffered until the line
  /// settles; false when the caller must wait on the migration trigger.
  virtual bool buffer_migrating_update(LineId id,
                                       const mining::Itemset& itemset);

  /// Send all partially-filled one-way update batches.
  virtual sim::Task<> flush_updates();

  /// End-of-pass collection, fetch step: bring home every line the backend
  /// holds on remote nodes. Returns true when any holder was visited (the
  /// store re-scans: recovery may have re-pointed lines mid-fetch); false
  /// when nothing is held remotely.
  virtual sim::Task<bool> collect_fetch();

  /// End-of-pass collection, final step: release auxiliary copies and
  /// stream any locally-parked lines back in. Every line is kResident when
  /// this returns.
  virtual sim::Task<> collect_finish();

  /// Availability-client callback: move this store's lines away from a
  /// holder that ran short of memory (§4.2).
  virtual sim::Task<> migrate_away(net::NodeId holder);

  /// Scheduler-driven revocation: recall up to `target_bytes` of primary
  /// copies parked in remote memory and spill them to the local swap disk,
  /// promptly freeing donated capacity for a higher-priority tenant.
  /// Returns the bytes actually freed (0 for backends with no remote tier).
  virtual sim::Task<std::int64_t> reclaim(std::int64_t target_bytes);

  /// Failure-detector callback (also fired in-band on RPC exhaustion):
  /// `dead` is gone — drop queued traffic towards it and re-home every line
  /// it held. Idempotent.
  virtual sim::Task<> on_holder_failure(net::NodeId dead);

  // ---- Introspection ----
  virtual std::size_t lines_at(net::NodeId holder) const;
  virtual std::size_t replicas_at(net::NodeId holder) const;
  /// Gauge-friendly residency breakdown (cheap; polled by the metrics
  /// sampler). Defaults cover backends without that tier.
  virtual std::size_t remote_lines() const { return 0; }
  virtual std::size_t disk_lines() const { return 0; }
  virtual std::int64_t remote_held_bytes() const { return 0; }
  virtual std::int64_t outstanding_rpcs() const { return 0; }
  /// Per-peer RPC window the backend's transport runs with (1 = the fully
  /// synchronous paper behaviour; backends without RPCs report 1).
  virtual int rpc_window() const { return 1; }
  /// Backend-side consistency checks, called from
  /// HashLineStore::check_invariants(). Aborts on violation.
  virtual void check_invariants() const {}

 protected:
  HashLineStore& store_;
};

/// Build the backend for `store.config().policy` (nullptr for kNoLimit —
/// a store that never evicts needs no movement mechanism).
std::unique_ptr<SwapBackend> make_swap_backend(HashLineStore& store);

}  // namespace rms::core
