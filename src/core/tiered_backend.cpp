#include "core/tiered_backend.hpp"

#include "obs/trace.hpp"

namespace rms::core {

TieredBackend::TieredBackend(HashLineStore& store)
    : RemoteBackend(store, Options{/*update_mode=*/false}, "tiered"),
      budget_(store.config().tiered_remote_budget_bytes),
      budget_spills_(&store.stats_mut().slot("backend.tiered.budget_spills")) {
}

sim::Task<> TieredBackend::swap_out(LineId id) {
  const std::int64_t bytes = store_.line(id).bytes;
  if (budget_ >= 0 && remote_bytes() + bytes > budget_) {
    // The remote tier is full: spill this victim to the local disk. The
    // budget frees up as probes fault remote lines back home.
    ++*budget_spills_;
    node_.stats().bump("store.tiered_budget_spill");
    if (obs::TraceRecorder* trace = store_.config().trace) {
      trace->instant(obs::EventKind::kTieredSpill, node_.id(),
                     node_.sim().now(), id, bytes);
    }
    co_await disk().swap_out(id);
    co_return;
  }
  co_await RemoteBackend::swap_out(id);
}

}  // namespace rms::core
