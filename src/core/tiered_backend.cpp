#include "core/tiered_backend.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace rms::core {

TieredBackend::TieredBackend(HashLineStore& store)
    : RemoteBackend(store, Options{/*update_mode=*/false}, "tiered"),
      budget_(store.config().tiered_remote_budget_bytes),
      shadow_enabled_(store.config().integrity_disk_shadow),
      budget_spills_(&store.stats_mut().slot("backend.tiered.budget_spills")) {
}

sim::Task<> TieredBackend::swap_out(LineId id) {
  auto& l = store_.line(id);
  const std::int64_t bytes = l.bytes;
  if (budget_ >= 0 && remote_bytes() + bytes > budget_) {
    // The remote tier is full: spill this victim to the local disk. The
    // budget frees up as probes fault remote lines back home.
    ++*budget_spills_;
    node_.stats().bump("store.tiered_budget_spill");
    if (obs::TraceRecorder* trace = store_.config().trace) {
      trace->instant(obs::EventKind::kTieredSpill, node_.id(),
                     node_.sim().now(), id, bytes);
    }
    co_await disk().swap_out(id);
    co_return;
  }
  Shadow sh;
  if (shadow_enabled_) {
    // Snapshot before the base moves the contents out. Written behind only
    // if the line actually lands remotely (a degrade-to-disk already has a
    // checksummed spill record).
    sh.checksum = line_checksum(l.entries);
    sh.entries = l.entries;
  }
  co_await RemoteBackend::swap_out(id);
  if (shadow_enabled_ && l.where == Where::kRemote) {
    shadow_[id] = std::move(sh);
    node_.stats().bump("store.shadow_writes");
    co_await node_.swap_disk().write(
        std::max<std::int64_t>(bytes, store_.config().message_block_bytes),
        disk::Access::kSequential);
  }
}

sim::Task<> TieredBackend::fault_in(LineId id) {
  co_await RemoteBackend::fault_in(id);
  // Home (with contents, repaired, or orphaned): the shadow is garbage now.
  shadow_.erase(id);
}

sim::Task<bool> TieredBackend::repair_from_disk(LineId id) {
  const auto it = shadow_.find(id);
  if (it == shadow_.end()) {
    // No full-coverage shadow; the base may hold an unmirrored-swap-out one.
    co_return co_await RemoteBackend::repair_from_disk(id);
  }
  auto& l = store_.line(id);
  co_await node_.swap_disk().read(
      std::max<std::int64_t>(l.bytes, store_.config().message_block_bytes),
      disk::Access::kRandom);
  Shadow sh = std::move(it->second);
  shadow_.erase(it);
  if (sh.checksum != line_checksum(sh.entries)) {
    // The shadow rotted too; the caller orphans. Defensive — nothing in
    // the simulator corrupts local disk contents.
    node_.stats().bump("store.shadow_corrupt_lines");
    co_return false;
  }
  l.entries = std::move(sh.entries);
  store_.make_resident(id);
  node_.stats().bump("store.shadow_repairs");
  co_return true;
}

sim::Task<> TieredBackend::collect_finish() {
  co_await RemoteBackend::collect_finish();
  shadow_.clear();  // every line is home
}

void TieredBackend::check_invariants() const {
  RemoteBackend::check_invariants();
  RMS_CHECK_MSG(shadow_enabled_ || shadow_.empty(),
                "integrity shadow populated while disabled");
  for (const auto& [id, sh] : shadow_) {
    RMS_CHECK_MSG(sh.checksum != 0, "shadow copy without a checksum stamp");
  }
}

}  // namespace rms::core
