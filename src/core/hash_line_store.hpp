// HashLineStore: the memory-limited candidate-itemset store on an
// application execution node — the heart of the paper's contribution.
//
// It keeps the node's share of the distributed hash-line table under a
// configurable memory-usage limit (the paper's 12–15 MB sweeps). Accounted
// memory is 24 bytes per candidate itemset. When an insert or swap-in pushes
// residency over the limit, LRU-selected hash lines are evicted through the
// active SwapPolicy:
//
//   kDiskSwap      — line written to the local swap disk; a later probe
//                    faults it back in (>= 13 ms on the 7,200 rpm model).
//   kRemoteSwap    — line pushed to a memory-available node chosen from the
//                    AvailabilityTable; a probe faults it back (~2.3 ms).
//   kRemoteUpdate  — during the counting phase an evicted line stays fixed
//                    remotely and probes become one-way, batched update
//                    messages (§4.4) — no fault round-trips, no thrashing.
//
// The store also owns the application side of migration (§4.2): when the
// availability client reports a holder short of memory, `migrate_away`
// flushes pending traffic, directs the holder to push this node's lines to a
// fresh destination, and re-points the memory-management table on completion.
//
// Threading discipline: one logical mutator (the HPA build/count process)
// plus the availability client calling `migrate_away` and the failure
// detector calling `handle_holder_failure`; the line-state machine
// (kFaulting / kMigrating) makes that interleaving safe.
//
// Failure tolerance (robustness extension): every synchronous memory-service
// RPC carries a deadline and bounded retries with exponential backoff. A
// holder that misses every deadline is declared dead; its lines are
// recovered from backup copies (replicate_k = 1 mirrors each swapped-out
// line on a second memory node) or, without a replica, restart empty
// ("orphaned" — counted as count loss). Evictions that find no live
// destination degrade to the local disk-swap path, so a run always
// completes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/availability.hpp"
#include "core/failover.hpp"
#include "core/policy.hpp"
#include "core/protocol.hpp"
#include "mining/hash_line_table.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rms::core {

class HashLineStore {
 public:
  struct Config {
    std::size_t num_lines = 1;            // local hash lines on this node
    std::int64_t memory_limit_bytes = -1; // -1: no limit
    SwapPolicy policy = SwapPolicy::kNoLimit;
    /// Victim selection (the paper uses LRU, §4.3).
    EvictionPolicy eviction = EvictionPolicy::kLru;
    std::uint64_t eviction_seed = 0x11ce;  // for EvictionPolicy::kRandom
    std::int64_t message_block_bytes = 4096;  // swap unit on the wire (§5.1)
    std::int64_t update_op_bytes = 16;        // line id + itemset in a batch
    /// Headroom a destination must report before receiving a line.
    std::int64_t destination_headroom_bytes = 64 << 10;
    /// "Remote determination": when > 0, end-of-pass fetches ask the
    /// memory servers to drop entries below this support count before
    /// shipping lines home (extension; 0 = fetch everything).
    std::uint32_t fetch_filter_min_count = 0;
    // ---- failover (crash-tolerant swapping) ----
    /// Mirror each swapped-out line on this many additional memory nodes
    /// (0 or 1). With 1, counts survive any single memory-node crash.
    int replicate_k = 0;
    /// Per-attempt deadline for synchronous memory-service RPCs.
    Time rpc_deadline = msec(2000);
    /// Retries beyond the first attempt (exponential backoff) before the
    /// peer is declared dead.
    int rpc_max_retries = 2;
  };

  /// kBuild: candidate generation (inserts; remote lines fault back even
  /// under kRemoteUpdate). kCount: support counting (probes; kRemoteUpdate
  /// switches to one-way updates). The paper applies the update interface
  /// "to the itemsets counting phase" only (§4.4).
  enum class Phase { kBuild, kCount };

  HashLineStore(cluster::Node& node, Config config, AvailabilityTable* avail);

  HashLineStore(const HashLineStore&) = delete;
  HashLineStore& operator=(const HashLineStore&) = delete;

  void set_phase(Phase phase);
  Phase phase() const { return phase_; }

  /// Register a candidate in local line `line` (build phase). May evict.
  sim::Task<> insert(LineId line, const mining::Itemset& itemset);

  /// Support-count probe (count phase). Resident lines are probed in place;
  /// non-resident lines fault or emit a remote update per the policy.
  sim::Task<> probe(LineId line, const mining::Itemset& itemset);

  /// Read query: number of entries in `line` whose first item equals `key`
  /// (the hash-join probe: entries encode keyed tuples). Reads need the
  /// data, so non-resident lines fault in under every policy — one-way
  /// remote updates cannot answer them.
  sim::Task<std::uint32_t> count_matches(LineId line, mining::Item key);

  /// Send all partially-filled update batches (end of counting phase).
  sim::Task<> flush_updates();

  /// Bring every line's final contents home and stream its entries. Used by
  /// the large-itemset determination step; the memory limit is not enforced
  /// while collecting (the counting structures are torn down right after).
  sim::Task<> collect(
      const std::function<void(const mining::CountedItemset&)>& fn);

  /// Migration (availability client callback): move this node's lines away
  /// from `holder` to a destination chosen from the availability table.
  sim::Task<> migrate_away(net::NodeId holder);

  /// Failure handling (failure detector callback, also invoked in-band when
  /// an RPC to a holder misses every deadline): declare `dead` dead, drop
  /// queued traffic towards it, and re-home every line it held — promoting
  /// backup copies where they exist, orphaning the rest. Idempotent.
  sim::Task<> handle_holder_failure(net::NodeId dead);

  // ---- Introspection ----
  std::int64_t resident_bytes() const { return resident_bytes_; }
  std::int64_t total_bytes() const { return total_bytes_; }
  std::size_t size() const { return size_; }
  std::int64_t pagefaults() const { return pagefaults_; }
  std::int64_t swap_outs() const { return swap_outs_; }
  std::int64_t updates_sent() const { return updates_sent_; }
  std::int64_t lines_migrated() const { return lines_migrated_; }
  std::size_t lines_at(net::NodeId holder) const;
  std::size_t replicas_at(net::NodeId holder) const;
  const FailoverStats& failover() const { return failover_; }

  /// Debug helper: verify the internal invariants (LRU list <-> residency
  /// vector consistency, byte accounting, location bookkeeping). Aborts on
  /// violation; O(num_lines). Property tests call this between operations.
  void check_invariants() const;
  /// Accounted bytes of one line (kept while the line is swapped out).
  std::int64_t line_bytes(LineId id) const {
    RMS_CHECK(id >= 0 && static_cast<std::size_t>(id) < lines_.size());
    return lines_[static_cast<std::size_t>(id)].bytes;
  }
  const Config& config() const { return config_; }

 private:
  enum class Where : std::uint8_t {
    kResident,
    kRemote,
    kDisk,
    kFaulting,   // synchronous swap-in in flight
    kMigrating,  // holder executing a migration directive
  };

  struct Line {
    mining::HashLine entries;  // meaningful only when resident
    Where where = Where::kResident;
    net::NodeId holder = -1;
    net::NodeId backup = -1;  // replica holder while remote (replicate_k)
    std::int64_t bytes = 0;  // accounted bytes, kept while away
    std::int32_t lru_prev = -1;
    std::int32_t lru_next = -1;
    std::int32_t vec_pos = -1;  // index into resident_vec_
  };

  struct UpdateBatch {
    MemRequest request;
    std::int64_t bytes = 0;
  };

  Line& line(LineId id) {
    RMS_CHECK(id >= 0 && static_cast<std::size_t>(id) < lines_.size());
    return lines_[static_cast<std::size_t>(id)];
  }

  // Residency list over non-empty resident lines. Under LRU the head is
  // the most recently used line; under FIFO insertion order is kept
  // (touch is a no-op); Random samples the side vector.
  void lru_push_front(LineId id);
  void lru_remove(LineId id);
  void lru_touch(LineId id);
  LineId lru_back() const { return lru_tail_; }
  LineId pick_victim(LineId pinned);

  bool over_limit() const {
    return config_.memory_limit_bytes >= 0 &&
           resident_bytes_ > config_.memory_limit_bytes;
  }

  /// Evict LRU lines (never `pinned`) until within the limit.
  sim::Task<> enforce_limit(LineId pinned);
  sim::Task<> evict(LineId id);
  sim::Task<> evict_to_disk(LineId id);
  sim::Task<> fault_in(LineId id);
  void queue_update(LineId id, const mining::Itemset& itemset);
  sim::Task<> send_update_batch(net::NodeId holder);
  sim::Task<> maybe_flush_batch(net::NodeId holder);
  /// -1 when no live, fresh node has room (callers degrade).
  net::NodeId pick_destination(std::int64_t bytes, net::NodeId exclude = -1);
  sim::Trigger& migration_trigger(LineId id);

  // ---- failover machinery ----
  /// Deadline + retry wrapper around Node::request_with_deadline that also
  /// accumulates FailoverStats.
  sim::Task<cluster::RpcResult> rpc(net::Message msg);
  /// First-time suspicion bookkeeping (table mark + counters). Idempotent.
  void declare_dead(net::NodeId holder);
  /// True while `holder` is suspected; fresh heartbeats in the availability
  /// table (crash + restart) clear the local suspicion lazily.
  bool holder_suspect(net::NodeId holder);
  /// The line's only copy is gone: restart it empty and count the loss.
  void orphan_line(LineId id);
  /// Stop tracking (and drop) the backup copy of a line that came home.
  void drop_backup(LineId id);
  /// The primary copy of `id` is lost (holder dead or wiped): promote the
  /// backup if one survives (line becomes kRemote at the backup) or orphan
  /// (line becomes resident and empty). Caller owns the line's state.
  sim::Task<> recover_lost_line(LineId id);

  cluster::Node& node_;
  Config config_;
  AvailabilityTable* avail_;
  Phase phase_ = Phase::kBuild;

  std::vector<Line> lines_;
  LineId lru_head_ = -1;
  LineId lru_tail_ = -1;
  std::vector<LineId> resident_vec_;  // for EvictionPolicy::kRandom
  Pcg32 eviction_rng_;

  std::int64_t resident_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  std::size_t size_ = 0;

  // Location bookkeeping for migration and collection.
  std::unordered_map<net::NodeId, std::unordered_set<LineId>> lines_by_holder_;
  std::unordered_map<net::NodeId, std::unordered_set<LineId>>
      replicas_by_holder_;
  std::unordered_set<net::NodeId> suspected_;
  std::unordered_map<LineId, mining::HashLine> disk_store_;
  std::unordered_map<net::NodeId, UpdateBatch> update_batches_;
  std::unordered_map<LineId, std::vector<mining::Itemset>> pending_updates_;
  std::unordered_map<LineId, std::unique_ptr<sim::Trigger>> migration_waits_;

  std::int64_t pagefaults_ = 0;
  std::int64_t swap_outs_ = 0;
  std::int64_t updates_sent_ = 0;
  std::int64_t lines_migrated_ = 0;
  FailoverStats failover_;
};

}  // namespace rms::core
