// HashLineStore: the memory-limited candidate-itemset store on an
// application execution node — the heart of the paper's contribution.
//
// The store is the paper-visible *residency core*: it keeps the node's share
// of the distributed hash-line table under a configurable memory-usage limit
// (the paper's 12–15 MB sweeps, 24 accounted bytes per candidate itemset),
// selects victims (LRU per §4.3, FIFO/Random for the ablation bench), runs
// the build/count phase machine, and drives the per-line location state
// machine (kResident / kRemote / kDisk / kFaulting / kMigrating).
//
// *Where* an evicted line goes and how it comes back is delegated to a
// pluggable SwapBackend (core/swap_backend.hpp), selected from the policy:
//
//   kDiskSwap      — DiskBackend: line written to the local swap disk; a
//                    later probe faults it back (>= 13 ms, 7,200 rpm model).
//   kRemoteSwap    — RemoteBackend: line pushed to a memory-available node
//                    chosen by the placement::MemoryBroker; a probe faults
//                    it back (~2.3 ms).
//   kRemoteUpdate  — RemoteBackend in update mode: during the counting phase
//                    an evicted line stays fixed remotely and probes become
//                    one-way, batched update messages (§4.4).
//   kTiered        — TieredBackend: remote-first under a byte budget, then
//                    per-line spill to the local disk.
//
// The remote backend also owns the application side of migration (§4.2) and
// of failure tolerance: deadline-bounded RPCs through transport::Transport,
// replica promotion / orphan recovery, and degradation to the disk path when
// no live destination qualifies, so a run always completes. The store keeps
// the paper-visible accounting (FailoverStats, pagefault/swap counters) and
// exposes a small mutation surface (line table, residency transitions,
// migration triggers) that backends drive.
//
// Threading discipline: one logical mutator (the HPA build/count process)
// plus the availability client calling `migrate_away` and the failure
// detector calling `handle_holder_failure`; the line-state machine
// (kFaulting / kMigrating) makes that interleaving safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/failover.hpp"
#include "core/integrity.hpp"
#include "core/policy.hpp"
#include "core/protocol.hpp"
#include "mining/hash_line_table.hpp"
#include "placement/placement.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rms::obs {
class TraceRecorder;
}

namespace rms::core {

class SwapBackend;

class HashLineStore {
 public:
  struct Config {
    std::size_t num_lines = 1;            // local hash lines on this node
    std::int64_t memory_limit_bytes = -1; // -1: no limit
    SwapPolicy policy = SwapPolicy::kNoLimit;
    /// Victim selection (the paper uses LRU, §4.3).
    EvictionPolicy eviction = EvictionPolicy::kLru;
    std::uint64_t eviction_seed = 0x11ce;  // for EvictionPolicy::kRandom
    std::int64_t message_block_bytes = 4096;  // swap unit on the wire (§5.1)
    std::int64_t update_op_bytes = 16;        // line id + itemset in a batch
    /// Headroom a destination must report before receiving a line.
    std::int64_t destination_headroom_bytes = 64 << 10;
    /// "Remote determination": when > 0, end-of-pass fetches ask the
    /// memory servers to drop entries below this support count before
    /// shipping lines home (extension; 0 = fetch everything).
    std::uint32_t fetch_filter_min_count = 0;
    /// kTiered only: byte budget for primary copies parked in remote
    /// memory; evictions that would exceed it spill to the local disk
    /// instead. -1 = unlimited (degenerates to kRemoteSwap). Replica
    /// copies are not counted — the budget bounds the primary working
    /// set the remote tier absorbs.
    std::int64_t tiered_remote_budget_bytes = -1;
    // ---- failover (crash-tolerant swapping) ----
    /// Mirror each swapped-out line on this many additional memory nodes
    /// (0 or 1). With 1, counts survive any single memory-node crash.
    int replicate_k = 0;
    /// Per-attempt deadline for synchronous memory-service RPCs.
    Time rpc_deadline = msec(2000);
    /// Retries beyond the first attempt (exponential backoff) before the
    /// peer is declared dead.
    int rpc_max_retries = 2;
    /// Sliding window of outstanding memory-service RPCs per peer
    /// connection (transport flow control). 1 preserves the paper's fully
    /// synchronous behaviour bit-for-bit; >= 2 lets end-of-pass collection
    /// pipeline fetches across memory servers.
    int rpc_window = 1;
    // ---- integrity (checksummed lines + self-repair) ----
    /// After this many corrupt payloads from one holder, quarantine it in
    /// the placement broker (excluded from destination choice for the
    /// rest of the run).
    int quarantine_after = 3;
    /// kTiered only: keep a checksummed disk-shadow copy of every line
    /// parked in remote memory, charged to the local swap disk, so a
    /// corrupt or lost primary without a replica repairs from disk instead
    /// of orphaning. Off by default (extra disk traffic changes timing).
    bool integrity_disk_shadow = false;
    /// Optional trace sink (null: tracing fully disabled). Spans for
    /// swap-out / fault-in, instants for orphans and tiered spills; the
    /// remote backend adds RPC/failover events. Must outlive the store.
    obs::TraceRecorder* trace = nullptr;
  };

  /// kBuild: candidate generation (inserts; remote lines fault back even
  /// under kRemoteUpdate). kCount: support counting (probes; kRemoteUpdate
  /// switches to one-way updates). The paper applies the update interface
  /// "to the itemsets counting phase" only (§4.4).
  enum class Phase { kBuild, kCount };

  /// Location state machine, driven by the store and its backend together.
  enum class Where : std::uint8_t {
    kResident,
    kRemote,
    kDisk,
    kFaulting,   // synchronous swap-in in flight
    kMigrating,  // holder executing a migration directive
  };

  struct Line {
    mining::HashLine entries;  // meaningful only when resident
    Where where = Where::kResident;
    net::NodeId holder = -1;
    net::NodeId backup = -1;  // replica holder while remote (replicate_k)
    std::int64_t bytes = 0;  // accounted bytes, kept while away
    std::int32_t lru_prev = -1;
    std::int32_t lru_next = -1;
    std::int32_t vec_pos = -1;  // index into resident_vec_
  };

  HashLineStore(cluster::Node& node, Config config,
                placement::MemoryBroker* broker);
  ~HashLineStore();  // out of line: SwapBackend is incomplete here

  HashLineStore(const HashLineStore&) = delete;
  HashLineStore& operator=(const HashLineStore&) = delete;

  void set_phase(Phase phase);
  Phase phase() const { return phase_; }

  /// Register a candidate in local line `line` (build phase). May evict.
  sim::Task<> insert(LineId line, const mining::Itemset& itemset);

  /// Support-count probe (count phase). Resident lines are probed in place;
  /// non-resident lines fault or emit a remote update per the backend.
  sim::Task<> probe(LineId line, const mining::Itemset& itemset);

  /// Read query: number of entries in `line` whose first item equals `key`
  /// (the hash-join probe: entries encode keyed tuples). Reads need the
  /// data, so non-resident lines fault in under every policy — one-way
  /// remote updates cannot answer them.
  sim::Task<std::uint32_t> count_matches(LineId line, mining::Item key);

  /// Send all partially-filled update batches (end of counting phase).
  sim::Task<> flush_updates();

  /// Bring every line's final contents home and stream its entries. Used by
  /// the large-itemset determination step; the memory limit is not enforced
  /// while collecting (the counting structures are torn down right after).
  sim::Task<> collect(
      const std::function<void(const mining::CountedItemset&)>& fn);

  /// Migration (availability client callback): move this node's lines away
  /// from `holder` to a destination chosen by the placement broker.
  sim::Task<> migrate_away(net::NodeId holder);

  /// Scheduler-driven revocation: recall up to `target_bytes` of this
  /// store's donated primary copies home and spill them to the local swap
  /// disk, promptly freeing pool capacity for a higher-priority tenant.
  /// Returns the bytes freed (0 without a remote backend).
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes);

  /// Failure handling (failure detector callback, also invoked in-band when
  /// an RPC to a holder misses every deadline): declare `dead` dead, drop
  /// queued traffic towards it, and re-home every line it held — promoting
  /// backup copies where they exist, orphaning the rest. Idempotent.
  sim::Task<> handle_holder_failure(net::NodeId dead);

  // ---- Introspection ----
  std::int64_t resident_bytes() const { return resident_bytes_; }
  std::int64_t total_bytes() const { return total_bytes_; }
  std::size_t size() const { return size_; }
  std::int64_t pagefaults() const { return *pagefaults_; }
  std::int64_t swap_outs() const { return *swap_outs_; }
  std::int64_t updates_sent() const {
    return stats_.counter("store.updates_sent");
  }
  std::int64_t lines_migrated() const {
    return stats_.counter("store.lines_migrated");
  }
  std::size_t lines_at(net::NodeId holder) const;
  std::size_t replicas_at(net::NodeId holder) const;
  // Gauge-friendly residency breakdown (all O(1) or O(#holders); the
  // MetricsSampler polls these every monitor interval).
  std::size_t resident_lines() const { return resident_vec_.size(); }
  std::size_t remote_lines() const;       // primaries parked in remote memory
  std::size_t disk_lines() const;         // lines parked on the local disk
  std::int64_t remote_held_bytes() const; // primary bytes held remotely
  std::int64_t outstanding_rpcs() const;  // swap-path RPCs in flight
  int rpc_window() const;                 // active sliding-window size
  const FailoverStats& failover() const { return failover_; }
  const IntegrityStats& integrity() const { return integrity_; }
  /// Store-owned registry: the residency core's counters ("store.*") plus
  /// the active backend's ("backend.<name>.*"), rendered uniformly by
  /// hpa::print_report and the benches.
  const StatsRegistry& stats() const { return stats_; }

  /// Debug helper: verify the internal invariants (LRU list <-> residency
  /// vector consistency, byte accounting, location bookkeeping — including
  /// the backend's replica/holder maps and batch accounting). Aborts on
  /// violation; O(num_lines). Property tests call this between operations.
  void check_invariants() const;
  /// Accounted bytes of one line (kept while the line is swapped out).
  std::int64_t line_bytes(LineId id) const {
    RMS_CHECK(id >= 0 && static_cast<std::size_t>(id) < lines_.size());
    return lines_[static_cast<std::size_t>(id)].bytes;
  }
  const Config& config() const { return config_; }

  // ---- Backend mutation surface ----
  // SwapBackends move line contents and drive location transitions through
  // these; the store keeps the byte accounting and the LRU consistent.
  cluster::Node& node() { return node_; }
  placement::MemoryBroker* broker() { return broker_; }
  Line& line(LineId id) {
    RMS_CHECK(id >= 0 && static_cast<std::size_t>(id) < lines_.size());
    return lines_[static_cast<std::size_t>(id)];
  }
  const Line& line(LineId id) const {
    RMS_CHECK(id >= 0 && static_cast<std::size_t>(id) < lines_.size());
    return lines_[static_cast<std::size_t>(id)];
  }
  std::size_t num_lines() const { return lines_.size(); }
  /// A line whose contents are back in `entries`: charge residency and link
  /// it into the LRU (empty lines stay out of the list).
  void make_resident(LineId id);
  /// The line's only copy is gone: count the loss and restart it empty.
  /// The caller settles the location state; the line stays out of the LRU.
  void orphan_accounting(LineId id);
  /// Probes blocked on a migrating line park on this per-line trigger.
  sim::Trigger& migration_trigger(LineId id);
  /// Wake every probe parked on `id` (no-op when nobody waits).
  void fire_migration_trigger(LineId id);
  FailoverStats& failover_mut() { return failover_; }
  IntegrityStats& integrity_mut() { return integrity_; }
  StatsRegistry& stats_mut() { return stats_; }

 private:
  // Residency list over non-empty resident lines. Under LRU the head is
  // the most recently used line; under FIFO insertion order is kept
  // (touch is a no-op); Random samples the side vector.
  void lru_push_front(LineId id);
  void lru_remove(LineId id);
  void lru_touch(LineId id);
  LineId lru_back() const { return lru_tail_; }
  LineId pick_victim(LineId pinned);

  bool over_limit() const {
    return config_.memory_limit_bytes >= 0 &&
           resident_bytes_ > config_.memory_limit_bytes;
  }

  /// Evict victim lines (never `pinned`) until within the limit.
  sim::Task<> enforce_limit(LineId pinned);
  /// Unlink a victim from residency and hand it to the backend.
  sim::Task<> evict(LineId id);
  /// Pagefault accounting around SwapBackend::fault_in.
  sim::Task<> fault_in(LineId id);

  cluster::Node& node_;
  Config config_;
  placement::MemoryBroker* broker_;
  Phase phase_ = Phase::kBuild;

  std::vector<Line> lines_;
  LineId lru_head_ = -1;
  LineId lru_tail_ = -1;
  std::vector<LineId> resident_vec_;  // for EvictionPolicy::kRandom
  Pcg32 eviction_rng_;

  std::int64_t resident_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  std::size_t size_ = 0;

  std::unordered_map<LineId, std::unique_ptr<sim::Trigger>> migration_waits_;

  StatsRegistry stats_;
  std::int64_t* pagefaults_ = nullptr;  // &stats_.slot("store.pagefaults")
  std::int64_t* swap_outs_ = nullptr;   // &stats_.slot("store.swap_outs")
  FailoverStats failover_;
  IntegrityStats integrity_;

  // Constructed last (reads config/broker/stats through the accessors).
  std::unique_ptr<SwapBackend> backend_;
};

}  // namespace rms::core
