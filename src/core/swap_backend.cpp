#include "core/swap_backend.hpp"

#include "core/disk_backend.hpp"
#include "core/hash_line_store.hpp"
#include "core/remote_backend.hpp"
#include "core/tiered_backend.hpp"

namespace rms::core {

// Default implementations: a backend with no remote presence has nothing to
// update, flush, fetch, migrate, or recover. (Completing without suspending
// keeps these timing-neutral in the simulation.)

sim::Task<bool> SwapBackend::update(LineId /*id*/,
                                    const mining::Itemset& /*itemset*/) {
  co_return false;
}

bool SwapBackend::buffer_migrating_update(LineId /*id*/,
                                          const mining::Itemset& /*itemset*/) {
  return false;
}

sim::Task<> SwapBackend::flush_updates() { co_return; }

sim::Task<bool> SwapBackend::collect_fetch() { co_return false; }

sim::Task<> SwapBackend::collect_finish() { co_return; }

sim::Task<> SwapBackend::migrate_away(net::NodeId /*holder*/) { co_return; }

sim::Task<std::int64_t> SwapBackend::reclaim(std::int64_t /*target_bytes*/) {
  co_return 0;
}

sim::Task<> SwapBackend::on_holder_failure(net::NodeId /*dead*/) { co_return; }

std::size_t SwapBackend::lines_at(net::NodeId /*holder*/) const { return 0; }

std::size_t SwapBackend::replicas_at(net::NodeId /*holder*/) const {
  return 0;
}

std::unique_ptr<SwapBackend> make_swap_backend(HashLineStore& store) {
  switch (store.config().policy) {
    case SwapPolicy::kNoLimit:
      // A store that never evicts needs no movement mechanism.
      return nullptr;
    case SwapPolicy::kDiskSwap:
      return std::make_unique<DiskBackend>(store);
    case SwapPolicy::kRemoteSwap:
      return std::make_unique<RemoteBackend>(
          store, RemoteBackend::Options{/*update_mode=*/false}, "remote");
    case SwapPolicy::kRemoteUpdate:
      return std::make_unique<RemoteBackend>(
          store, RemoteBackend::Options{/*update_mode=*/true},
          "remote-update");
    case SwapPolicy::kTiered:
      return std::make_unique<TieredBackend>(store);
  }
  RMS_CHECK_MSG(false, "unknown swap policy");
  return nullptr;
}

}  // namespace rms::core
