// MemoryServer: the process running on a memory-available node that lends
// its RAM to application execution nodes (§4.2–4.4).
//
// It stores swapped-out hash lines keyed by (owner application node, line
// id), answers swap-in faults, applies one-way remote-update batches, hands
// complete line sets back at end of pass (kFetch), and executes migration
// directives by pushing an owner's lines to another memory-available node.
//
// Requests are handled strictly one at a time — the single 200 MHz CPU — so
// a small memory-node pool saturates exactly like the paper's Figure 3.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "cluster/cluster.hpp"
#include "core/protocol.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace rms::core {

class MemoryServer {
 public:
  struct Config {
    std::int64_t message_block_bytes = 4096;  // swap unit on the wire (§5.1)
  };

  explicit MemoryServer(cluster::Node& node) : MemoryServer(node, Config{}) {}
  MemoryServer(cluster::Node& node, Config config);

  MemoryServer(const MemoryServer&) = delete;
  MemoryServer& operator=(const MemoryServer&) = delete;

  /// The service loop; spawn exactly once.
  sim::Process serve();

  /// Introspection for tests and reports.
  std::size_t stored_lines() const { return store_.size(); }
  std::int64_t stored_bytes() const { return stored_bytes_; }
  cluster::Node& node() { return node_; }

 private:
  static std::uint64_t key(net::NodeId owner, LineId line) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner))
            << 40) ^
           static_cast<std::uint64_t>(line);
  }

  sim::Task<> handle(net::Message msg);
  sim::Task<> handle_migrate_directive(const net::Message& msg);
  void adopt_line(net::NodeId owner, LinePayload line);
  LinePayload release_line(net::NodeId owner, LineId id);

  cluster::Node& node_;
  Config config_;
  std::unordered_map<std::uint64_t, LinePayload> store_;
  std::unordered_map<net::NodeId, std::unordered_set<LineId>> lines_by_owner_;
  std::int64_t stored_bytes_ = 0;
};

}  // namespace rms::core
