// MemoryServer: the process running on a memory-available node that lends
// its RAM to application execution nodes (§4.2–4.4).
//
// It stores swapped-out hash lines keyed by (owner application node, line
// id), answers swap-in faults, applies one-way remote-update batches, hands
// complete line sets back at end of pass (kFetch), and executes migration
// directives by pushing an owner's lines to another memory-available node.
// With replication enabled on the client side it additionally keeps backup
// copies (kReplicaStore) in a separate map — never returned by kSwapIn or
// kFetch — and promotes them to primaries on request (kReplicaPromote) when
// the primary holder crashes.
//
// Requests are handled strictly one at a time — the single 200 MHz CPU — so
// a small memory-node pool saturates exactly like the paper's Figure 3.
// The one exception is kMigrateDirective: its data pushes block on another
// *server's* acks, so it runs as a detached process. Two donors migrating
// toward each other (routine when a multi-tenant shortage hits several
// stores at once) would otherwise deadlock the sequential loops — each ack
// stuck in an inbox behind the peer's busy push — until the push deadlines
// expire, stalling swap-ins long enough to read as donor death.
//
// Failure semantics: the server registers a crash hook with its node; a
// crash-stop wipes every stored line and replica (volatile RAM) and drains
// queued requests. A handler suspended across a crash observes the node's
// epoch change and abandons instead of mutating the wiped store. A swap-in
// for a line the (restarted) server does not hold answers ok=false rather
// than aborting — the client recovers from a replica or degrades.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"
#include "transport/transport.hpp"

namespace rms::obs {
class TraceRecorder;
}

namespace rms::core {

class MemoryServer {
 public:
  struct Config {
    std::int64_t message_block_bytes = 4096;  // swap unit on the wire (§5.1)
    /// Deadline + retry for server-to-server migration data pushes; a push
    /// that misses every deadline marks the destination dead and the
    /// directive replies ok=false with the partial `migrated` list.
    Time migrate_push_deadline = msec(2000);
    int migrate_push_retries = 1;
    /// Sliding window for server-to-server migration pushes (transport
    /// flow control; 1 = fully synchronous, the paper behaviour).
    int rpc_window = 1;
    /// Optional trace sink (null: no tracing): a kServe span per handled
    /// request on this server's node track. Must outlive the server.
    obs::TraceRecorder* trace = nullptr;
  };

  explicit MemoryServer(cluster::Node& node) : MemoryServer(node, Config{}) {}
  MemoryServer(cluster::Node& node, Config config);

  MemoryServer(const MemoryServer&) = delete;
  MemoryServer& operator=(const MemoryServer&) = delete;

  /// The service loop; spawn exactly once.
  sim::Process serve();

  /// Introspection for tests and reports.
  std::size_t stored_lines() const { return stored_lines_; }
  std::size_t replica_lines() const { return replica_lines_; }
  std::int64_t stored_bytes() const { return stored_bytes_; }
  cluster::Node& node() { return node_; }

  /// At-rest fault injection (FaultPlan corruption episodes): flip one
  /// count bit in each stored, stamped line — primaries and replicas —
  /// with probability `flip_rate`. Deterministic iteration order (owners
  /// and line ids sorted). Returns the number of lines corrupted.
  int corrupt_stored(double flip_rate, Pcg32& rng);

  /// Scrub pass: recompute every stored payload's checksum and drop the
  /// mismatched copies (a dropped primary answers later swap-ins with
  /// ok=false, so the owner recovers from the replica or orphans — the bad
  /// data is never shipped). Returns the number of copies dropped.
  int verify_stored();

  /// Drop every primary and replica stored for `owner`, returning the
  /// accounted bytes released. The scheduler calls this when a job
  /// completes or is torn down so any straggler copies (a line the owner
  /// died before fetching, a replica whose drop message was lost) return
  /// to the donor pool immediately instead of leaking for the rest of the
  /// simulation. A completed job has already fetched everything home, so
  /// this is normally a no-op.
  std::int64_t release_owner(net::NodeId owner);

 private:
  // Per-owner line maps: the (owner, line) key is the pair itself, so line
  // ids with bits >= 40 can never collide across owners.
  using OwnerLines = std::unordered_map<LineId, LinePayload>;

  sim::Task<> handle(net::Message msg, std::uint64_t epoch);
  sim::Process run_migrate_directive(net::Message msg, std::uint64_t epoch);
  sim::Task<> handle_migrate_directive(const net::Message& msg,
                                       std::uint64_t epoch);
  sim::Task<> handle_replica_sync(const net::Message& msg,
                                  std::uint64_t epoch);
  void adopt_line(net::NodeId owner, LinePayload line, bool allow_replace);
  LinePayload release_line(net::NodeId owner, LineId id);
  void store_replica(net::NodeId owner, LinePayload line);
  void drop_replica(net::NodeId owner, LineId id);
  void wipe_on_crash();

  LinePayload* find_line(net::NodeId owner, LineId id);
  LinePayload* find_replica(net::NodeId owner, LineId id);

  cluster::Node& node_;
  Config config_;
  /// Deadline/retry policy for server-to-server migration data pushes.
  transport::Transport migrate_xport_;
  /// The memory-service endpoint this server's loop blocks on.
  transport::Inbox inbox_;
  std::unordered_map<net::NodeId, OwnerLines> store_;
  std::unordered_map<net::NodeId, OwnerLines> replicas_;
  std::size_t stored_lines_ = 0;
  std::size_t replica_lines_ = 0;
  std::int64_t stored_bytes_ = 0;  // primaries + replicas
};

}  // namespace rms::core
