#include "core/hash_line_store.hpp"

#include <algorithm>

namespace rms::core {

HashLineStore::HashLineStore(cluster::Node& node, Config config,
                             AvailabilityTable* avail)
    : node_(node),
      config_(config),
      avail_(avail),
      eviction_rng_(config.eviction_seed,
                    static_cast<std::uint64_t>(node.id()) * 2 + 1) {
  RMS_CHECK(config_.num_lines > 0);
  RMS_CHECK_MSG(config_.replicate_k >= 0 && config_.replicate_k <= 1,
                "replicate_k supports at most one backup copy");
  RMS_CHECK(config_.rpc_deadline > 0 && config_.rpc_max_retries >= 0);
  if (uses_remote_memory(config_.policy)) {
    RMS_CHECK_MSG(avail_ != nullptr,
                  "remote policies need an AvailabilityTable");
  }
  lines_.resize(config_.num_lines);
}

void HashLineStore::set_phase(Phase phase) { phase_ = phase; }

std::size_t HashLineStore::lines_at(net::NodeId holder) const {
  const auto it = lines_by_holder_.find(holder);
  return it == lines_by_holder_.end() ? 0 : it->second.size();
}

std::size_t HashLineStore::replicas_at(net::NodeId holder) const {
  const auto it = replicas_by_holder_.find(holder);
  return it == replicas_by_holder_.end() ? 0 : it->second.size();
}

void HashLineStore::check_invariants() const {
  // Byte accounting and per-line state.
  std::int64_t resident = 0;
  std::int64_t total = 0;
  std::size_t entries = 0;
  std::size_t in_vec = 0;
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const Line& l = lines_[i];
    total += l.bytes;
    if (l.where == Where::kResident) {
      resident += l.bytes;
      RMS_CHECK_MSG(l.bytes == static_cast<std::int64_t>(l.entries.size()) *
                                    mining::Itemset::kAccountedBytes,
                    "resident line bytes out of sync with entries");
      entries += l.entries.size();
    } else {
      RMS_CHECK_MSG(l.entries.empty(), "non-resident line keeps content");
    }
    const bool in_residency_vec = l.vec_pos >= 0;
    if (in_residency_vec) {
      ++in_vec;
      RMS_CHECK(static_cast<std::size_t>(l.vec_pos) < resident_vec_.size());
      RMS_CHECK_MSG(resident_vec_[static_cast<std::size_t>(l.vec_pos)] ==
                        static_cast<LineId>(i),
                    "residency vector position out of sync");
      RMS_CHECK_MSG(l.where == Where::kResident && l.bytes > 0,
                    "only non-empty resident lines live in the LRU");
    } else {
      RMS_CHECK_MSG(l.lru_prev < 0 && l.lru_next < 0 &&
                        lru_head_ != static_cast<LineId>(i) &&
                        lru_tail_ != static_cast<LineId>(i),
                    "line outside the residency vector is linked in the LRU");
    }
  }
  RMS_CHECK_MSG(in_vec == resident_vec_.size(),
                "residency vector holds unknown lines");
  RMS_CHECK_MSG(resident == resident_bytes_, "resident byte counter drifted");

  // Walk the LRU list: must visit exactly the residency-vector members.
  std::size_t walked = 0;
  LineId prev = -1;
  for (LineId id = lru_head_; id >= 0;
       id = lines_[static_cast<std::size_t>(id)].lru_next) {
    const Line& l = lines_[static_cast<std::size_t>(id)];
    RMS_CHECK_MSG(l.lru_prev == static_cast<std::int32_t>(prev),
                  "LRU back-link broken");
    RMS_CHECK_MSG(l.vec_pos >= 0, "LRU member missing from residency vector");
    prev = id;
    ++walked;
    RMS_CHECK_MSG(walked <= resident_vec_.size() + 1, "LRU list cycles");
  }
  RMS_CHECK_MSG(prev == lru_tail_, "LRU tail out of sync");
  RMS_CHECK_MSG(walked == resident_vec_.size(),
                "LRU list and residency vector diverge");
}

// ---------------------------------------------------------------------------
// LRU maintenance
// ---------------------------------------------------------------------------

void HashLineStore::lru_push_front(LineId id) {
  Line& l = line(id);
  l.lru_prev = -1;
  l.lru_next = static_cast<std::int32_t>(lru_head_);
  if (lru_head_ >= 0) line(lru_head_).lru_prev = static_cast<std::int32_t>(id);
  lru_head_ = id;
  if (lru_tail_ < 0) lru_tail_ = id;

  l.vec_pos = static_cast<std::int32_t>(resident_vec_.size());
  resident_vec_.push_back(id);
}

void HashLineStore::lru_remove(LineId id) {
  Line& l = line(id);
  if (l.lru_prev >= 0) {
    line(l.lru_prev).lru_next = l.lru_next;
  } else if (lru_head_ == id) {
    lru_head_ = l.lru_next;
  }
  if (l.lru_next >= 0) {
    line(l.lru_next).lru_prev = l.lru_prev;
  } else if (lru_tail_ == id) {
    lru_tail_ = l.lru_prev;
  }
  l.lru_prev = l.lru_next = -1;

  // Swap-remove from the residency vector.
  RMS_CHECK(l.vec_pos >= 0);
  const auto pos = static_cast<std::size_t>(l.vec_pos);
  const LineId moved = resident_vec_.back();
  resident_vec_[pos] = moved;
  line(moved).vec_pos = static_cast<std::int32_t>(pos);
  resident_vec_.pop_back();
  l.vec_pos = -1;
}

void HashLineStore::lru_touch(LineId id) {
  if (config_.eviction != EvictionPolicy::kLru) return;  // FIFO/Random
  if (lru_head_ == id) return;
  // Relink to the front; residency-vector position is order-independent.
  Line& l = line(id);
  if (l.lru_prev >= 0) {
    line(l.lru_prev).lru_next = l.lru_next;
  }
  if (l.lru_next >= 0) {
    line(l.lru_next).lru_prev = l.lru_prev;
  } else if (lru_tail_ == id) {
    lru_tail_ = l.lru_prev;
  }
  l.lru_prev = -1;
  l.lru_next = static_cast<std::int32_t>(lru_head_);
  if (lru_head_ >= 0) line(lru_head_).lru_prev = static_cast<std::int32_t>(id);
  lru_head_ = id;
  if (lru_tail_ < 0) lru_tail_ = id;
}

LineId HashLineStore::pick_victim(LineId pinned) {
  if (config_.eviction == EvictionPolicy::kRandom) {
    if (resident_vec_.empty()) return -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const LineId id = resident_vec_[eviction_rng_.below(
          static_cast<std::uint32_t>(resident_vec_.size()))];
      if (id != pinned) return id;
    }
    // The pinned line keeps being drawn (tiny residency): fall back to any
    // other resident line.
    for (LineId id : resident_vec_) {
      if (id != pinned) return id;
    }
    return -1;
  }
  // LRU and FIFO both evict from the list tail (FIFO never reorders it).
  LineId victim = lru_back();
  if (victim == pinned) {
    const std::int32_t prev = line(victim).lru_prev;
    victim = prev;
  }
  return victim;
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

sim::Task<> HashLineStore::insert(LineId id, const mining::Itemset& itemset) {
  Line& l = line(id);
  while (l.where == Where::kMigrating) {
    co_await migration_trigger(id).wait();
  }
  if (l.where != Where::kResident) {
    // Build-phase insert into an evicted line: bring it home first (simple
    // swapping applies during candidate generation under every policy).
    co_await fault_in(id);
  }
  // Invariant: a line is in the LRU list iff it is resident and non-empty.
  const bool was_empty = (l.bytes == 0);
  l.entries.push_back(mining::CountedItemset{itemset, 0});
  l.bytes += mining::Itemset::kAccountedBytes;
  resident_bytes_ += mining::Itemset::kAccountedBytes;
  total_bytes_ += mining::Itemset::kAccountedBytes;
  ++size_;
  if (was_empty) {
    lru_push_front(id);
  } else {
    lru_touch(id);
  }
  if (over_limit()) co_await enforce_limit(id);
}

sim::Task<> HashLineStore::probe(LineId id, const mining::Itemset& itemset) {
  Line& l = line(id);

  while (l.where == Where::kMigrating) {
    if (phase_ == Phase::kCount && config_.policy == SwapPolicy::kRemoteUpdate) {
      // Buffer the update until the line settles at its new holder.
      pending_updates_[id].push_back(itemset);
      ++updates_sent_;  // counted as an update operation (it becomes one)
      co_return;
    }
    co_await migration_trigger(id).wait();
  }

  bool faulted = false;
  switch (l.where) {
    case Where::kResident:
      break;
    case Where::kRemote: {
      if (phase_ == Phase::kCount &&
          config_.policy == SwapPolicy::kRemoteUpdate) {
        queue_update(id, itemset);
        co_await maybe_flush_batch(l.holder);
        co_await maybe_flush_batch(l.backup);
        co_return;
      }
      co_await fault_in(id);
      faulted = true;
      break;
    }
    case Where::kDisk: {
      co_await fault_in(id);
      faulted = true;
      break;
    }
    case Where::kFaulting:
    case Where::kMigrating:
      RMS_CHECK_MSG(false, "concurrent mutation of a hash line");
  }

  for (mining::CountedItemset& e : l.entries) {
    if (e.items == itemset) {
      ++e.count;
      break;
    }
  }
  if (l.bytes > 0) lru_touch(id);  // empty lines never enter the LRU
  if (faulted && over_limit()) co_await enforce_limit(id);
}

sim::Task<std::uint32_t> HashLineStore::count_matches(LineId id,
                                                      mining::Item key) {
  Line& l = line(id);
  while (l.where == Where::kMigrating) {
    co_await migration_trigger(id).wait();
  }
  bool faulted = false;
  if (l.where != Where::kResident) {
    co_await fault_in(id);
    faulted = true;
  }
  std::uint32_t matches = 0;
  for (const mining::CountedItemset& e : l.entries) {
    if (!e.items.empty() && e.items.front() == key) ++matches;
  }
  if (l.bytes > 0) lru_touch(id);
  if (faulted && over_limit()) co_await enforce_limit(id);
  co_return matches;
}

sim::Task<> HashLineStore::flush_updates() {
  // Collect holders first: sending mutates the map.
  std::vector<net::NodeId> holders;
  for (const auto& [holder, batch] : update_batches_) {
    if (!batch.request.updates.empty()) holders.push_back(holder);
  }
  std::sort(holders.begin(), holders.end());
  for (net::NodeId h : holders) co_await send_update_batch(h);
}

sim::Task<> HashLineStore::collect(
    const std::function<void(const mining::CountedItemset&)>& fn) {
  // Fetch remote lines home, holder by holder (updates already sent to a
  // holder are applied before its fetch: same-pair FIFO plus a sequential
  // server loop). A failed fetch can re-point lines at a backup holder, and
  // the failure detector can re-home lines concurrently, so re-scan until
  // nothing is migrating and nothing is remote. Each pass first settles
  // in-flight migrations and pushes out buffered updates.
  for (;;) {
    bool waited = false;
    for (LineId id = 0; id < static_cast<LineId>(lines_.size()); ++id) {
      if (line(id).where == Where::kMigrating) {
        co_await migration_trigger(id).wait();
        waited = true;
      }
    }
    co_await flush_updates();

    std::vector<net::NodeId> holders;
    for (const auto& [holder, ids] : lines_by_holder_) {
      if (!ids.empty()) holders.push_back(holder);
    }
    if (holders.empty()) {
      if (waited) continue;  // a settle may have re-pointed lines; re-scan
      break;
    }
    std::sort(holders.begin(), holders.end());
    for (net::NodeId holder : holders) {
      auto& held = lines_by_holder_[holder];
      if (held.empty()) continue;
      // Snapshot and pin: kFaulting keeps the concurrent failure handler
      // off these lines — whatever happens, this loop re-homes them.
      std::vector<LineId> ids(held.begin(), held.end());
      std::sort(ids.begin(), ids.end());
      for (LineId id : ids) {
        RMS_CHECK(line(id).where == Where::kRemote);
        line(id).where = Where::kFaulting;
      }
      held.clear();

      std::unordered_set<LineId> got;
      if (!holder_suspect(holder)) {
        MemRequest req;
        req.kind = MemRequest::Kind::kFetch;
        req.owner = node_.id();
        req.fetch_min_count = config_.fetch_filter_min_count;
        cluster::RpcResult res = co_await rpc(net::Message::make(
            node_.id(), holder, kMemService, 32, std::move(req)));
        if (res.ok()) {
          const auto& rep = res.reply->as<MemReply>();
          co_await node_.compute(node_.costs().per_message_cpu);
          for (const LinePayload& payload : rep.lines) {
            Line& l = line(payload.line_id);
            if (l.where != Where::kFaulting || l.holder != holder) {
              // A stale primary from a false suspicion handled earlier;
              // the authoritative copy lives elsewhere.
              node_.stats().bump("store.stale_fetch_lines");
              continue;
            }
            l.entries = payload.entries;
            l.where = Where::kResident;
            l.holder = -1;
            resident_bytes_ += l.bytes;
            if (l.bytes > 0) lru_push_front(payload.line_id);
            drop_backup(payload.line_id);
            got.insert(payload.line_id);
          }
        } else {
          declare_dead(holder);
          co_await handle_holder_failure(holder);
        }
      }
      // Lines the holder no longer has (crash-restart wiped them, or the
      // holder is dead): promote the backup or orphan.
      for (LineId id : ids) {
        if (got.count(id)) continue;
        co_await recover_lost_line(id);
      }
    }
  }

  // Remote lines are all home; surviving backup copies are now garbage.
  for (auto& [backup, ids] : replicas_by_holder_) {
    if (ids.empty()) continue;
    ids.clear();
    if (suspected_.count(backup)) continue;
    MemRequest req;
    req.kind = MemRequest::Kind::kReplicaDrop;
    req.owner = node_.id();
    req.line_id = -1;  // all of this owner
    node_.send_to(backup, kMemService, 16, std::move(req));
  }
  for (Line& l : lines_) l.backup = -1;

  // Disk lines stream back sequentially (the swap area is contiguous).
  for (LineId id = 0; id < static_cast<LineId>(lines_.size()); ++id) {
    Line& l = line(id);
    if (l.where != Where::kDisk) continue;
    co_await node_.swap_disk().read(
        std::max<std::int64_t>(l.bytes, config_.message_block_bytes),
        disk::Access::kSequential);
    const auto it = disk_store_.find(id);
    RMS_CHECK(it != disk_store_.end());
    l.entries = std::move(it->second);
    disk_store_.erase(it);
    l.where = Where::kResident;
    resident_bytes_ += l.bytes;
    lru_push_front(id);
  }

  for (const Line& l : lines_) {
    RMS_CHECK(l.where == Where::kResident);
    for (const mining::CountedItemset& e : l.entries) fn(e);
  }
}

// ---------------------------------------------------------------------------
// Eviction and faulting
// ---------------------------------------------------------------------------

net::NodeId HashLineStore::pick_destination(std::int64_t bytes,
                                            net::NodeId exclude) {
  RMS_CHECK(avail_ != nullptr);
  const auto dest = avail_->choose_destination(
      bytes + config_.destination_headroom_bytes, exclude, node_.sim().now());
  if (!dest.has_value()) return -1;
  avail_->debit(*dest, bytes);
  return *dest;
}

// ---------------------------------------------------------------------------
// Failover machinery
// ---------------------------------------------------------------------------

sim::Task<cluster::RpcResult> HashLineStore::rpc(net::Message msg) {
  cluster::RpcResult res = co_await node_.request_with_deadline(
      std::move(msg), config_.rpc_deadline, config_.rpc_max_retries);
  failover_.rpc_retries += res.attempts - 1;
  // Every attempt but a successful last one expired its deadline.
  failover_.deadline_misses += res.ok() ? res.attempts - 1 : res.attempts;
  co_return res;
}

void HashLineStore::declare_dead(net::NodeId holder) {
  if (!suspected_.insert(holder).second) return;
  ++failover_.suspicions;
  node_.stats().bump("store.suspicions");
  if (avail_ != nullptr && !avail_->dead(holder)) avail_->mark_dead(holder);
}

bool HashLineStore::holder_suspect(net::NodeId holder) {
  if (suspected_.count(holder) == 0) return false;
  if (avail_ != nullptr && !avail_->dead(holder)) {
    // The availability table accepted a newer heartbeat: the node restarted
    // (its store wiped — our lines there were already re-homed). Forgive.
    suspected_.erase(holder);
    return false;
  }
  return true;
}

void HashLineStore::orphan_line(LineId id) {
  Line& l = line(id);
  const std::int64_t lost_entries = l.bytes / mining::Itemset::kAccountedBytes;
  total_bytes_ -= l.bytes;
  size_ -= static_cast<std::size_t>(lost_entries);
  ++failover_.orphaned_lines;
  failover_.orphaned_entries += lost_entries;
  node_.stats().bump("store.orphaned_lines");
  l.bytes = 0;
  l.entries.clear();
  l.holder = -1;
  l.backup = -1;
  const auto pend = pending_updates_.find(id);
  if (pend != pending_updates_.end()) {
    failover_.lost_update_ops +=
        static_cast<std::int64_t>(pend->second.size());
    pending_updates_.erase(pend);
  }
}

void HashLineStore::drop_backup(LineId id) {
  Line& l = line(id);
  if (l.backup < 0) return;
  replicas_by_holder_[l.backup].erase(id);
  if (!holder_suspect(l.backup)) {
    MemRequest req;
    req.kind = MemRequest::Kind::kReplicaDrop;
    req.owner = node_.id();
    req.line_id = id;
    node_.send_to(l.backup, kMemService, 16, std::move(req));
  }
  l.backup = -1;
}

sim::Task<> HashLineStore::recover_lost_line(LineId id) {
  Line& l = line(id);
  if (l.backup >= 0) {
    const net::NodeId backup = l.backup;
    replicas_by_holder_[backup].erase(id);
    l.backup = -1;
    if (!holder_suspect(backup)) {
      MemRequest req;
      req.kind = MemRequest::Kind::kReplicaPromote;
      req.owner = node_.id();
      req.migrate_lines.push_back(id);
      cluster::RpcResult res = co_await rpc(net::Message::make(
          node_.id(), backup, kMemService, 24, std::move(req)));
      if (res.ok()) {
        const auto& rep = res.reply->as<MemReply>();
        co_await node_.compute(node_.costs().per_message_cpu);
        if (rep.ok) {
          l.where = Where::kRemote;
          l.holder = backup;
          lines_by_holder_[backup].insert(id);
          ++failover_.promoted_lines;
          node_.stats().bump("store.replica_promotions");
          co_return;
        }
        // The backup restarted and lost the replica too: fall through.
      } else {
        declare_dead(backup);
      }
    }
  }
  l.where = Where::kResident;
  orphan_line(id);  // resident and empty; stays out of the LRU
}

sim::Task<> HashLineStore::enforce_limit(LineId pinned) {
  while (over_limit()) {
    const LineId victim = pick_victim(pinned);
    if (victim < 0) break;  // only the pinned line is resident
    co_await evict(victim);
  }
}

sim::Task<> HashLineStore::evict(LineId id) {
  Line& l = line(id);
  RMS_CHECK(l.where == Where::kResident);
  RMS_CHECK(l.bytes > 0);
  ++swap_outs_;
  lru_remove(id);
  resident_bytes_ -= l.bytes;

  switch (config_.policy) {
    case SwapPolicy::kNoLimit:
      RMS_CHECK_MSG(false, "eviction under kNoLimit");
      break;

    case SwapPolicy::kDiskSwap:
      co_await evict_to_disk(id);
      break;

    case SwapPolicy::kRemoteSwap:
    case SwapPolicy::kRemoteUpdate: {
      const net::NodeId dest = pick_destination(l.bytes);
      if (dest < 0) {
        // Graceful degradation: no live, fresh memory node has room, but
        // the run must complete — fall back to the local swap disk.
        ++failover_.degraded_evictions;
        node_.stats().bump("store.degraded_disk_swap");
        co_await evict_to_disk(id);
        break;
      }
      MemRequest req;
      req.kind = MemRequest::Kind::kSwapOut;
      req.owner = node_.id();
      LinePayload payload;
      payload.line_id = id;
      payload.accounted_bytes = l.bytes;

      // Mirror on a second memory node before the primary push so a crash
      // of either node between here and the next probe loses nothing.
      net::NodeId backup = -1;
      if (config_.replicate_k > 0) backup = pick_destination(l.bytes, dest);
      if (backup >= 0) {
        MemRequest rreq;
        rreq.kind = MemRequest::Kind::kReplicaStore;
        rreq.owner = node_.id();
        LinePayload copy;
        copy.line_id = id;
        copy.entries = l.entries;  // deep copy; primary gets the move below
        copy.accounted_bytes = l.bytes;
        rreq.lines.push_back(std::move(copy));
        node_.send_to(backup, kMemService, config_.message_block_bytes,
                      std::move(rreq));
        l.backup = backup;
        replicas_by_holder_[backup].insert(id);
        ++failover_.replicas_stored;
        node_.stats().bump("store.replica_stores");
      }

      payload.entries = std::move(l.entries);
      req.lines.push_back(std::move(payload));
      l.entries.clear();
      l.where = Where::kRemote;
      l.holder = dest;
      lines_by_holder_[dest].insert(id);
      node_.stats().bump("store.remote_swap_out");
      // One-way push, padded to a message block (§5.1); the sender only
      // pays its protocol-stack cost.
      node_.send_to(dest, kMemService, config_.message_block_bytes,
                    std::move(req));
      co_await node_.compute(node_.costs().per_message_cpu);
      if (backup >= 0) co_await node_.compute(node_.costs().per_message_cpu);
      break;
    }
  }
}

sim::Task<> HashLineStore::evict_to_disk(LineId id) {
  // Write-behind to the contiguous swap area: sequential, and the probe
  // that triggered the eviction waits for the write to be queued, like
  // a dirty-page writeback under memory pressure.
  Line& l = line(id);
  disk_store_[id] = std::move(l.entries);
  l.entries.clear();
  l.where = Where::kDisk;
  l.holder = -1;
  node_.stats().bump("store.disk_swap_out");
  co_await node_.swap_disk().write(
      std::max<std::int64_t>(l.bytes, config_.message_block_bytes),
      disk::Access::kSequential);
}

sim::Task<> HashLineStore::fault_in(LineId id) {
  Line& l = line(id);
  ++pagefaults_;
  node_.stats().bump("store.pagefaults");
  const Time started = node_.sim().now();

  if (l.where == Where::kRemote) {
    l.where = Where::kFaulting;
    bool have_content = false;
    while (!have_content) {
      const net::NodeId holder = l.holder;
      bool lost = false;
      if (holder_suspect(holder)) {
        lost = true;
      } else {
        MemRequest req;
        req.kind = MemRequest::Kind::kSwapIn;
        req.owner = node_.id();
        req.line_id = id;
        cluster::RpcResult res = co_await rpc(net::Message::make(
            node_.id(), holder, kMemService, 32, std::move(req)));
        if (!res.ok()) {
          // Every deadline missed: the holder is gone. Re-home everything
          // it held (this line is kFaulting, so the handler skips it and
          // leaves it to us).
          declare_dead(holder);
          co_await handle_holder_failure(holder);
          lost = true;
        } else {
          const auto& rep = res.reply->as<MemReply>();
          co_await node_.compute(node_.costs().per_message_cpu);
          if (rep.ok) {
            RMS_CHECK(rep.lines.size() == 1 && rep.lines[0].line_id == id);
            l.entries = rep.lines[0].entries;
            lines_by_holder_[holder].erase(id);
            drop_backup(id);
            have_content = true;
          } else {
            // The holder answered but no longer has the line: it crashed
            // and restarted in between. The node itself is fine.
            node_.stats().bump("store.swap_in_lost");
            lost = true;
          }
        }
      }
      if (lost) {
        lines_by_holder_[holder].erase(id);
        co_await recover_lost_line(id);
        if (l.where == Where::kRemote) {
          // Promoted to a surviving backup: retry the swap-in there.
          l.where = Where::kFaulting;
          continue;
        }
        // Orphaned: resident and empty, counted; nothing left to load.
        const double ms = to_millis(node_.sim().now() - started);
        node_.stats().sample("store.fault_ms", ms);
        node_.stats().record("store.fault_ms", ms);
        co_return;
      }
    }
  } else {
    RMS_CHECK(l.where == Where::kDisk);
    l.where = Where::kFaulting;
    co_await node_.swap_disk().read(
        std::max<std::int64_t>(l.bytes, config_.message_block_bytes),
        disk::Access::kRandom);
    const auto it = disk_store_.find(id);
    RMS_CHECK(it != disk_store_.end());
    l.entries = std::move(it->second);
    disk_store_.erase(it);
  }

  l.where = Where::kResident;
  l.holder = -1;
  resident_bytes_ += l.bytes;
  lru_push_front(id);
  const double fault_ms = to_millis(node_.sim().now() - started);
  node_.stats().sample("store.fault_ms", fault_ms);
  node_.stats().record("store.fault_ms", fault_ms);
}

// ---------------------------------------------------------------------------
// Remote updates
// ---------------------------------------------------------------------------

void HashLineStore::queue_update(LineId id, const mining::Itemset& itemset) {
  Line& l = line(id);
  const auto append = [&](net::NodeId target) {
    UpdateBatch& batch = update_batches_[target];
    if (batch.request.updates.empty()) {
      batch.request.kind = MemRequest::Kind::kUpdateBatch;
      batch.request.owner = node_.id();
    }
    batch.request.updates.push_back(UpdateOp{id, itemset});
    batch.bytes += config_.update_op_bytes;
  };
  append(l.holder);
  ++updates_sent_;
  if (l.backup >= 0) {
    // Mirror the op so the backup copy's counts track the primary's.
    append(l.backup);
    ++failover_.updates_mirrored;
  }
}

sim::Task<> HashLineStore::send_update_batch(net::NodeId holder) {
  UpdateBatch& batch = update_batches_[holder];
  if (batch.request.updates.empty()) co_return;
  const std::int64_t ops =
      static_cast<std::int64_t>(batch.request.updates.size());
  const std::int64_t bytes = batch.bytes;
  MemRequest req = std::move(batch.request);
  batch.request = MemRequest{};
  batch.bytes = 0;
  if (holder_suspect(holder)) {
    // Nobody home; delivering would be a silent drop anyway. Count it.
    failover_.lost_update_ops += ops;
    node_.stats().bump("store.update_batches_dropped");
    co_return;
  }
  node_.stats().bump("store.update_batches");
  node_.send_to(holder, kMemService, bytes, std::move(req));
  co_await node_.compute(node_.costs().per_message_cpu);
}

sim::Task<> HashLineStore::maybe_flush_batch(net::NodeId holder) {
  if (holder >= 0 &&
      update_batches_[holder].bytes >= config_.message_block_bytes) {
    co_await send_update_batch(holder);
  }
}

// ---------------------------------------------------------------------------
// Migration (application side)
// ---------------------------------------------------------------------------

sim::Trigger& HashLineStore::migration_trigger(LineId id) {
  auto& slot = migration_waits_[id];
  if (!slot) slot = std::make_unique<sim::Trigger>(node_.sim());
  return *slot;
}

sim::Task<> HashLineStore::migrate_away(net::NodeId holder) {
  if (holder_suspect(holder)) co_return;  // failure handling owns its lines
  const auto it = lines_by_holder_.find(holder);
  if (it == lines_by_holder_.end() || it->second.empty()) co_return;

  // 1. Mark this node's lines as migrating FIRST; from here on probes
  //    buffer (remote update) or wait on the line trigger (simple
  //    swapping), so no new update can target the old holder.
  std::vector<LineId> marked;
  std::int64_t marked_bytes = 0;
  for (LineId id : it->second) {
    Line& l = line(id);
    if (l.where == Where::kFaulting) {
      // A swap-in is in flight for this line; it was requested before the
      // directive will arrive (same-pair FIFO), so the holder answers the
      // fault first and the line comes home by itself.
      continue;
    }
    RMS_CHECK(l.where == Where::kRemote);
    l.where = Where::kMigrating;
    marked.push_back(id);
    marked_bytes += l.bytes;
  }
  if (marked.empty()) co_return;
  std::sort(marked.begin(), marked.end());

  // 2. Updates already queued for the old holder must precede the directive
  //    (same-pair FIFO keeps them ahead of it on the wire). With the lines
  //    marked, nothing can refill this batch behind our back.
  co_await send_update_batch(holder);

  const net::NodeId dest = pick_destination(marked_bytes, holder);
  if (dest < 0) {
    // No live, fresh destination: leave the lines where they are; the
    // shortage will re-trigger on a later broadcast if it persists. Updates
    // buffered while the lines were marked still belong to the old holder.
    node_.stats().bump("store.migration_no_destination");
    for (LineId id : marked) line(id).where = Where::kRemote;
    for (LineId id : marked) {
      Line& l = line(id);
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --updates_sent_;  // queue_update counts it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
        co_await maybe_flush_batch(l.backup);
      }
      const auto trig = migration_waits_.find(id);
      if (trig != migration_waits_.end()) {
        trig->second->fire();
        migration_waits_.erase(trig);
      }
    }
    co_return;
  }
  MemRequest req;
  req.kind = MemRequest::Kind::kMigrateDirective;
  req.owner = node_.id();
  req.migrate_dest = dest;
  req.migrate_lines = marked;

  node_.stats().bump("store.migrations_initiated");
  cluster::RpcResult res = co_await rpc(net::Message::make(
      node_.id(), holder, kMemService,
      16 + 8 * static_cast<std::int64_t>(marked.size()), std::move(req)));

  if (!res.ok()) {
    // The holder itself went silent mid-directive. Put the marks back to
    // kRemote so the failure handler re-homes every line it held; it also
    // fires the triggers for them.
    declare_dead(holder);
    for (LineId id : marked) line(id).where = Where::kRemote;
    co_await handle_holder_failure(holder);
    co_return;
  }
  const auto& rep = res.reply->as<MemReply>();
  co_await node_.compute(node_.costs().per_message_cpu);

  // 3. Re-point the management table. On rep.ok every marked line moved
  //    (probes only fault lines out of kMigrating via the trigger). With
  //    ok=false the destination died mid-push: rep.migrated lists the lines
  //    that were acknowledged before the push failed — those are at the
  //    (now dead) destination; the rest stayed at the holder.
  if (rep.ok) {
    RMS_CHECK_MSG(rep.migrated.size() == marked.size(),
                  "holder lost track of migrating lines");
  }
  std::unordered_set<LineId> moved(rep.migrated.begin(), rep.migrated.end());
  auto& old_set = lines_by_holder_[holder];
  auto& new_set = lines_by_holder_[dest];
  for (LineId id : marked) {
    Line& l = line(id);
    RMS_CHECK(l.where == Where::kMigrating);
    l.where = Where::kRemote;
    if (moved.count(id)) {
      l.holder = dest;
      old_set.erase(id);
      new_set.insert(id);
    }
  }
  lines_migrated_ += static_cast<std::int64_t>(moved.size());

  if (!rep.ok) {
    // Recover the lines stranded at the dead destination (promote backups
    // or orphan); their triggers fire inside the handler.
    co_await handle_holder_failure(dest);
  }

  // 4. Flush updates buffered while the lines were in flight, then wake any
  //    probe blocked on a migrating line. Lines the failure handler already
  //    settled (promoted or orphaned) had their pending updates flushed or
  //    dropped there.
  for (LineId id : marked) {
    Line& l = line(id);
    if (l.where == Where::kRemote) {
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --updates_sent_;  // queue_update will count it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
        co_await maybe_flush_batch(l.backup);
      }
    }
    const auto trig = migration_waits_.find(id);
    if (trig != migration_waits_.end()) {
      trig->second->fire();
      migration_waits_.erase(trig);
    }
  }
}

// ---------------------------------------------------------------------------
// Failure handling (application side)
// ---------------------------------------------------------------------------

sim::Task<> HashLineStore::handle_holder_failure(net::NodeId dead) {
  declare_dead(dead);

  // Queued one-way updates towards the dead node would be silent drops.
  {
    const auto it = update_batches_.find(dead);
    if (it != update_batches_.end() && !it->second.request.updates.empty()) {
      failover_.lost_update_ops +=
          static_cast<std::int64_t>(it->second.request.updates.size());
      node_.stats().bump("store.update_batches_dropped");
      it->second.request = MemRequest{};
      it->second.bytes = 0;
    }
  }

  // Backup copies stored at the dead node died with it.
  {
    const auto it = replicas_by_holder_.find(dead);
    if (it != replicas_by_holder_.end()) {
      for (LineId id : it->second) {
        Line& l = line(id);
        if (l.backup == dead) l.backup = -1;
      }
      it->second.clear();
    }
  }

  // Snapshot the primaries this store had at the dead node. Lines already
  // kFaulting or kMigrating are owned by the coroutine that marked them
  // (fault_in / collect / migrate_away) and recover there; kMigrating keeps
  // probes parked on the trigger while we re-home.
  std::vector<LineId> victims;
  {
    const auto held = lines_by_holder_.find(dead);
    if (held != lines_by_holder_.end()) {
      for (LineId id : held->second) {
        if (line(id).where == Where::kRemote) victims.push_back(id);
      }
      for (LineId id : victims) held->second.erase(id);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (LineId id : victims) line(id).where = Where::kMigrating;

  for (LineId id : victims) {
    co_await recover_lost_line(id);
    Line& l = line(id);
    if (l.where == Where::kRemote) {
      // Promoted: flush updates buffered while the line was dark.
      const auto pend = pending_updates_.find(id);
      if (pend != pending_updates_.end()) {
        for (const mining::Itemset& s : pend->second) {
          --updates_sent_;  // queue_update counts it again
          queue_update(id, s);
        }
        pending_updates_.erase(pend);
        co_await maybe_flush_batch(l.holder);
      }
    }
  }

  for (LineId id : victims) {
    const auto trig = migration_waits_.find(id);
    if (trig != migration_waits_.end()) {
      trig->second->fire();
      migration_waits_.erase(trig);
    }
  }
}

}  // namespace rms::core
