#include "core/hash_line_store.hpp"

#include <algorithm>

#include "core/swap_backend.hpp"
#include "obs/trace.hpp"

namespace rms::core {

HashLineStore::HashLineStore(cluster::Node& node, Config config,
                             placement::MemoryBroker* broker)
    : node_(node),
      config_(config),
      broker_(broker),
      eviction_rng_(config.eviction_seed,
                    static_cast<std::uint64_t>(node.id()) * 2 + 1) {
  RMS_CHECK(config_.num_lines > 0);
  RMS_CHECK_MSG(config_.replicate_k >= 0 && config_.replicate_k <= 1,
                "replicate_k supports at most one backup copy");
  RMS_CHECK(config_.rpc_deadline > 0 && config_.rpc_max_retries >= 0);
  RMS_CHECK_MSG(config_.rpc_window >= 1, "rpc_window must be >= 1");
  if (uses_remote_memory(config_.policy)) {
    RMS_CHECK_MSG(broker_ != nullptr,
                  "remote policies need a placement::MemoryBroker");
  }
  lines_.resize(config_.num_lines);
  pagefaults_ = &stats_.slot("store.pagefaults");
  swap_outs_ = &stats_.slot("store.swap_outs");
  stats_.slot("store.updates_sent");
  stats_.slot("store.lines_migrated");
  backend_ = make_swap_backend(*this);
}

HashLineStore::~HashLineStore() = default;

void HashLineStore::set_phase(Phase phase) { phase_ = phase; }

std::size_t HashLineStore::lines_at(net::NodeId holder) const {
  return backend_ ? backend_->lines_at(holder) : 0;
}

std::size_t HashLineStore::replicas_at(net::NodeId holder) const {
  return backend_ ? backend_->replicas_at(holder) : 0;
}

std::size_t HashLineStore::remote_lines() const {
  return backend_ ? backend_->remote_lines() : 0;
}

std::size_t HashLineStore::disk_lines() const {
  return backend_ ? backend_->disk_lines() : 0;
}

std::int64_t HashLineStore::remote_held_bytes() const {
  return backend_ ? backend_->remote_held_bytes() : 0;
}

std::int64_t HashLineStore::outstanding_rpcs() const {
  return backend_ ? backend_->outstanding_rpcs() : 0;
}

int HashLineStore::rpc_window() const {
  return backend_ ? backend_->rpc_window() : 1;
}

void HashLineStore::check_invariants() const {
  // Byte accounting and per-line state.
  std::int64_t resident = 0;
  std::int64_t total = 0;
  std::size_t entries = 0;
  std::size_t in_vec = 0;
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const Line& l = lines_[i];
    total += l.bytes;
    if (l.where == Where::kResident) {
      resident += l.bytes;
      RMS_CHECK_MSG(l.bytes == static_cast<std::int64_t>(l.entries.size()) *
                                    mining::Itemset::kAccountedBytes,
                    "resident line bytes out of sync with entries");
      entries += l.entries.size();
    } else {
      RMS_CHECK_MSG(l.entries.empty(), "non-resident line keeps content");
    }
    const bool in_residency_vec = l.vec_pos >= 0;
    if (in_residency_vec) {
      ++in_vec;
      RMS_CHECK(static_cast<std::size_t>(l.vec_pos) < resident_vec_.size());
      RMS_CHECK_MSG(resident_vec_[static_cast<std::size_t>(l.vec_pos)] ==
                        static_cast<LineId>(i),
                    "residency vector position out of sync");
      RMS_CHECK_MSG(l.where == Where::kResident && l.bytes > 0,
                    "only non-empty resident lines live in the LRU");
    } else {
      RMS_CHECK_MSG(l.lru_prev < 0 && l.lru_next < 0 &&
                        lru_head_ != static_cast<LineId>(i) &&
                        lru_tail_ != static_cast<LineId>(i),
                    "line outside the residency vector is linked in the LRU");
    }
  }
  RMS_CHECK_MSG(in_vec == resident_vec_.size(),
                "residency vector holds unknown lines");
  RMS_CHECK_MSG(resident == resident_bytes_, "resident byte counter drifted");

  // Walk the LRU list: must visit exactly the residency-vector members.
  std::size_t walked = 0;
  LineId prev = -1;
  for (LineId id = lru_head_; id >= 0;
       id = lines_[static_cast<std::size_t>(id)].lru_next) {
    const Line& l = lines_[static_cast<std::size_t>(id)];
    RMS_CHECK_MSG(l.lru_prev == static_cast<std::int32_t>(prev),
                  "LRU back-link broken");
    RMS_CHECK_MSG(l.vec_pos >= 0, "LRU member missing from residency vector");
    prev = id;
    ++walked;
    RMS_CHECK_MSG(walked <= resident_vec_.size() + 1, "LRU list cycles");
  }
  RMS_CHECK_MSG(prev == lru_tail_, "LRU tail out of sync");
  RMS_CHECK_MSG(walked == resident_vec_.size(),
                "LRU list and residency vector diverge");

  if (backend_) backend_->check_invariants();
}

// ---------------------------------------------------------------------------
// LRU maintenance
// ---------------------------------------------------------------------------

void HashLineStore::lru_push_front(LineId id) {
  Line& l = line(id);
  l.lru_prev = -1;
  l.lru_next = static_cast<std::int32_t>(lru_head_);
  if (lru_head_ >= 0) line(lru_head_).lru_prev = static_cast<std::int32_t>(id);
  lru_head_ = id;
  if (lru_tail_ < 0) lru_tail_ = id;

  l.vec_pos = static_cast<std::int32_t>(resident_vec_.size());
  resident_vec_.push_back(id);
}

void HashLineStore::lru_remove(LineId id) {
  Line& l = line(id);
  if (l.lru_prev >= 0) {
    line(l.lru_prev).lru_next = l.lru_next;
  } else if (lru_head_ == id) {
    lru_head_ = l.lru_next;
  }
  if (l.lru_next >= 0) {
    line(l.lru_next).lru_prev = l.lru_prev;
  } else if (lru_tail_ == id) {
    lru_tail_ = l.lru_prev;
  }
  l.lru_prev = l.lru_next = -1;

  // Swap-remove from the residency vector.
  RMS_CHECK(l.vec_pos >= 0);
  const auto pos = static_cast<std::size_t>(l.vec_pos);
  const LineId moved = resident_vec_.back();
  resident_vec_[pos] = moved;
  line(moved).vec_pos = static_cast<std::int32_t>(pos);
  resident_vec_.pop_back();
  l.vec_pos = -1;
}

void HashLineStore::lru_touch(LineId id) {
  if (config_.eviction != EvictionPolicy::kLru) return;  // FIFO/Random
  if (lru_head_ == id) return;
  // Relink to the front; residency-vector position is order-independent.
  Line& l = line(id);
  if (l.lru_prev >= 0) {
    line(l.lru_prev).lru_next = l.lru_next;
  }
  if (l.lru_next >= 0) {
    line(l.lru_next).lru_prev = l.lru_prev;
  } else if (lru_tail_ == id) {
    lru_tail_ = l.lru_prev;
  }
  l.lru_prev = -1;
  l.lru_next = static_cast<std::int32_t>(lru_head_);
  if (lru_head_ >= 0) line(lru_head_).lru_prev = static_cast<std::int32_t>(id);
  lru_head_ = id;
  if (lru_tail_ < 0) lru_tail_ = id;
}

LineId HashLineStore::pick_victim(LineId pinned) {
  if (config_.eviction == EvictionPolicy::kRandom) {
    if (resident_vec_.empty()) return -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const LineId id = resident_vec_[eviction_rng_.below(
          static_cast<std::uint32_t>(resident_vec_.size()))];
      if (id != pinned) return id;
    }
    // The pinned line keeps being drawn (tiny residency): fall back to any
    // other resident line.
    for (LineId id : resident_vec_) {
      if (id != pinned) return id;
    }
    return -1;
  }
  // LRU and FIFO both evict from the list tail (FIFO never reorders it).
  LineId victim = lru_back();
  if (victim == pinned) {
    const std::int32_t prev = line(victim).lru_prev;
    victim = prev;
  }
  return victim;
}

// ---------------------------------------------------------------------------
// Backend mutation surface
// ---------------------------------------------------------------------------

void HashLineStore::make_resident(LineId id) {
  Line& l = line(id);
  l.where = Where::kResident;
  l.holder = -1;
  resident_bytes_ += l.bytes;
  if (l.bytes > 0) lru_push_front(id);
}

void HashLineStore::orphan_accounting(LineId id) {
  Line& l = line(id);
  const std::int64_t lost_entries = l.bytes / mining::Itemset::kAccountedBytes;
  total_bytes_ -= l.bytes;
  size_ -= static_cast<std::size_t>(lost_entries);
  ++failover_.orphaned_lines;
  failover_.orphaned_entries += lost_entries;
  node_.stats().bump("store.orphaned_lines");
  if (config_.trace != nullptr) {
    config_.trace->instant(obs::EventKind::kOrphan, node_.id(),
                           node_.sim().now(), id, lost_entries);
  }
  l.bytes = 0;
  l.entries.clear();
  l.holder = -1;
  l.backup = -1;
}

sim::Trigger& HashLineStore::migration_trigger(LineId id) {
  auto& slot = migration_waits_[id];
  if (!slot) slot = std::make_unique<sim::Trigger>(node_.sim());
  return *slot;
}

void HashLineStore::fire_migration_trigger(LineId id) {
  const auto trig = migration_waits_.find(id);
  if (trig != migration_waits_.end()) {
    trig->second->fire();
    migration_waits_.erase(trig);
  }
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

sim::Task<> HashLineStore::insert(LineId id, const mining::Itemset& itemset) {
  Line& l = line(id);
  while (l.where == Where::kMigrating) {
    co_await migration_trigger(id).wait();
  }
  if (l.where != Where::kResident) {
    // Build-phase insert into an evicted line: bring it home first (simple
    // swapping applies during candidate generation under every backend).
    co_await fault_in(id);
  }
  // Invariant: a line is in the LRU list iff it is resident and non-empty.
  const bool was_empty = (l.bytes == 0);
  l.entries.push_back(mining::CountedItemset{itemset, 0});
  l.bytes += mining::Itemset::kAccountedBytes;
  resident_bytes_ += mining::Itemset::kAccountedBytes;
  total_bytes_ += mining::Itemset::kAccountedBytes;
  ++size_;
  if (was_empty) {
    lru_push_front(id);
  } else {
    lru_touch(id);
  }
  if (over_limit()) co_await enforce_limit(id);
}

sim::Task<> HashLineStore::probe(LineId id, const mining::Itemset& itemset) {
  Line& l = line(id);

  while (l.where == Where::kMigrating) {
    // A remote-update backend buffers the op until the line settles at its
    // new holder; otherwise park on the line trigger.
    if (phase_ == Phase::kCount && backend_ &&
        backend_->buffer_migrating_update(id, itemset)) {
      co_return;
    }
    co_await migration_trigger(id).wait();
  }

  bool faulted = false;
  if (l.where != Where::kResident) {
    RMS_CHECK_MSG(l.where == Where::kRemote || l.where == Where::kDisk,
                  "concurrent mutation of a hash line");
    if (phase_ == Phase::kCount && backend_ &&
        co_await backend_->update(id, itemset)) {
      // Absorbed in place as a one-way remote update (§4.4).
      co_return;
    }
    co_await fault_in(id);
    faulted = true;
  }

  for (mining::CountedItemset& e : l.entries) {
    if (e.items == itemset) {
      ++e.count;
      break;
    }
  }
  if (l.bytes > 0) lru_touch(id);  // empty lines never enter the LRU
  if (faulted && over_limit()) co_await enforce_limit(id);
}

sim::Task<std::uint32_t> HashLineStore::count_matches(LineId id,
                                                      mining::Item key) {
  Line& l = line(id);
  while (l.where == Where::kMigrating) {
    co_await migration_trigger(id).wait();
  }
  bool faulted = false;
  if (l.where != Where::kResident) {
    co_await fault_in(id);
    faulted = true;
  }
  std::uint32_t matches = 0;
  for (const mining::CountedItemset& e : l.entries) {
    if (!e.items.empty() && e.items.front() == key) ++matches;
  }
  if (l.bytes > 0) lru_touch(id);
  if (faulted && over_limit()) co_await enforce_limit(id);
  co_return matches;
}

sim::Task<> HashLineStore::flush_updates() {
  if (backend_) co_await backend_->flush_updates();
}

sim::Task<> HashLineStore::collect(
    const std::function<void(const mining::CountedItemset&)>& fn) {
  // Fetch remote lines home, holder by holder (updates already sent to a
  // holder are applied before its fetch: same-pair FIFO plus a sequential
  // server loop). A failed fetch can re-point lines at a backup holder, and
  // the failure detector can re-home lines concurrently, so re-scan until
  // nothing is migrating and nothing is remote. Each pass first settles
  // in-flight migrations and pushes out buffered updates.
  for (;;) {
    bool waited = false;
    for (LineId id = 0; id < static_cast<LineId>(lines_.size()); ++id) {
      if (line(id).where == Where::kMigrating) {
        co_await migration_trigger(id).wait();
        waited = true;
      }
    }
    if (!backend_) break;
    co_await backend_->flush_updates();
    if (!co_await backend_->collect_fetch()) {
      if (waited) continue;  // a settle may have re-pointed lines; re-scan
      break;
    }
  }

  // Remote lines are all home; drop auxiliary copies and stream any
  // disk-parked lines back in.
  if (backend_) co_await backend_->collect_finish();

  for (const Line& l : lines_) {
    RMS_CHECK(l.where == Where::kResident);
    for (const mining::CountedItemset& e : l.entries) fn(e);
  }
}

sim::Task<> HashLineStore::migrate_away(net::NodeId holder) {
  if (backend_) co_await backend_->migrate_away(holder);
}

sim::Task<std::int64_t> HashLineStore::reclaim(std::int64_t target_bytes) {
  if (backend_ == nullptr) co_return 0;
  co_return co_await backend_->reclaim(target_bytes);
}

sim::Task<> HashLineStore::handle_holder_failure(net::NodeId dead) {
  if (backend_) co_await backend_->on_holder_failure(dead);
}

// ---------------------------------------------------------------------------
// Eviction and faulting
// ---------------------------------------------------------------------------

sim::Task<> HashLineStore::enforce_limit(LineId pinned) {
  while (over_limit()) {
    const LineId victim = pick_victim(pinned);
    if (victim < 0) break;  // only the pinned line is resident
    co_await evict(victim);
  }
}

sim::Task<> HashLineStore::evict(LineId id) {
  Line& l = line(id);
  RMS_CHECK(l.where == Where::kResident);
  RMS_CHECK(l.bytes > 0);
  RMS_CHECK_MSG(backend_ != nullptr, "eviction under kNoLimit");
  ++*swap_outs_;
  lru_remove(id);
  resident_bytes_ -= l.bytes;
  const Time started = node_.sim().now();
  co_await backend_->swap_out(id);
  if (config_.trace != nullptr) {
    config_.trace->span(obs::EventKind::kSwapOut, node_.id(), started,
                        node_.sim().now(), id, l.bytes);
  }
}

sim::Task<> HashLineStore::fault_in(LineId id) {
  RMS_CHECK_MSG(backend_ != nullptr, "fault under kNoLimit");
  Line& l = line(id);
  ++*pagefaults_;
  node_.stats().bump("store.pagefaults");
  const Time started = node_.sim().now();

  co_await backend_->fault_in(id);

  if (l.where != Where::kResident) {
    // Normal path: the backend restored the contents and left the line
    // pinned kFaulting; charge residency here. (A crash-recovery orphan
    // comes back already resident and empty — nothing to charge.)
    RMS_CHECK(l.where == Where::kFaulting);
    make_resident(id);
  }
  const double fault_ms = to_millis(node_.sim().now() - started);
  node_.stats().sample("store.fault_ms", fault_ms);
  node_.stats().record("store.fault_ms", fault_ms);
  if (config_.trace != nullptr) {
    config_.trace->span(obs::EventKind::kFaultIn, node_.id(), started,
                        node_.sim().now(), id, l.bytes);
  }
}

}  // namespace rms::core
