// RemoteBackend: dynamic remote memory acquisition over the memory-service
// RPC protocol — the paper's contribution (§4.3 simple swapping, §4.4 remote
// updates) plus the crash-tolerance extension.
//
// Evicted lines are pushed to a memory-available node chosen by the
// placement::MemoryBroker (optionally mirrored, replicate_k = 1);
// probes fault them back, or — in update mode during the counting phase —
// become one-way batched update operations coalesced through a
// transport::Stream per target. All synchronous traffic goes through a
// transport::Transport whose failure callback feeds the suspicion
// machinery, so an unresponsive holder is detected in-band and its lines are
// re-homed: backup copies are promoted, the rest restart empty (orphaned).
// With `rpc_window >= 2` end-of-pass collection pipelines its fetches
// across memory servers instead of serializing one round-trip per holder.
// Evictions that find no live destination degrade to an owned DiskBackend —
// the same fallback TieredBackend uses deliberately when its remote budget
// fills up.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/disk_backend.hpp"
#include "core/hash_line_store.hpp"
#include "core/swap_backend.hpp"
#include "transport/stream.hpp"
#include "transport/transport.hpp"

namespace rms::core {

class RemoteBackend : public SwapBackend {
 public:
  struct Options {
    /// §4.4: during the counting phase evicted lines stay fixed remotely
    /// and probes become one-way update messages instead of faults.
    bool update_mode = false;
  };

  /// `stat_ns` namespaces this backend's counters ("backend.<ns>.*") and is
  /// returned by name(); subclasses pass their own.
  RemoteBackend(HashLineStore& store, Options options,
                const char* stat_ns = "remote");

  const char* name() const override { return name_; }

  sim::Task<> swap_out(LineId id) override;
  sim::Task<> fault_in(LineId id) override;
  sim::Task<bool> update(LineId id, const mining::Itemset& itemset) override;
  bool buffer_migrating_update(LineId id,
                               const mining::Itemset& itemset) override;
  sim::Task<> flush_updates() override;
  sim::Task<bool> collect_fetch() override;
  sim::Task<> collect_finish() override;
  sim::Task<> migrate_away(net::NodeId holder) override;
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes) override;
  sim::Task<> on_holder_failure(net::NodeId dead) override;

  std::size_t lines_at(net::NodeId holder) const override;
  std::size_t replicas_at(net::NodeId holder) const override;
  std::size_t remote_lines() const override;
  std::size_t disk_lines() const override;
  std::int64_t remote_held_bytes() const override { return remote_bytes_; }
  std::int64_t outstanding_rpcs() const override;
  int rpc_window() const override { return xport_.window(); }
  void check_invariants() const override;

 protected:
  using Where = HashLineStore::Where;

  /// The degradation target (also TieredBackend's deliberate spill target).
  DiskBackend& disk() { return *fallback_; }
  /// Accounted bytes of primary copies currently parked remotely.
  std::int64_t remote_bytes() const { return remote_bytes_; }
  FailoverStats& failover() { return store_.failover_mut(); }
  IntegrityStats& integrity() { return store_.integrity_mut(); }

  /// Last-resort repair hook: produce the line's contents from a local disk
  /// copy (TieredBackend's integrity shadow). Returns true when the line was
  /// made resident with verified contents; the base backend keeps no such
  /// copy and always fails.
  virtual sim::Task<bool> repair_from_disk(LineId id);

  cluster::Node& node_;

 private:
  /// Transport::call plus the store's FailoverStats accounting.
  sim::Task<cluster::RpcResult> rpc(net::Message msg);
  /// First-time suspicion bookkeeping (broker mark + counters). Idempotent;
  /// wired as the transport failure callback.
  void declare_dead(net::NodeId holder);
  /// True while `holder` is suspected; fresh heartbeats in the broker's
  /// availability view (crash + restart) clear the local suspicion lazily.
  bool holder_suspect(net::NodeId holder);
  /// The line's only copy is gone: restart it empty and count the loss.
  void orphan_line(LineId id);
  /// Stop tracking (and drop) the backup copy of a line that came home.
  void drop_backup(LineId id);
  /// Why a primary copy needs recovering: lost with its holder (crash /
  /// restart wipe) or withheld because it failed checksum verification.
  enum class RecoverCause { kLost, kCorrupt };
  /// The primary copy of `id` is unusable (holder dead, wiped, or serving
  /// corrupt data): promote the backup if one survives (line becomes
  /// kRemote at the backup), repair from a local disk copy if the subclass
  /// keeps one, or orphan (line becomes resident and empty — bad data is
  /// never used). Caller owns the line's state.
  sim::Task<> recover_lost_line(LineId id,
                                RecoverCause cause = RecoverCause::kLost);
  /// Verify a fetched payload against its checksum. On mismatch: count it,
  /// strike (and possibly quarantine) the holder, and return false — the
  /// caller must treat the line as lost with RecoverCause::kCorrupt.
  /// Unstamped payloads (checksum == 0) pass.
  bool verify_payload(const LinePayload& payload, net::NodeId holder);
  /// Restore replicate_k for lines whose backup copy is gone (promotion
  /// consumed it, or the backup node died): push a kReplicaSync directive to
  /// each line's holder so it copies the primary to a freshly chosen backup
  /// node. Parks the lines kMigrating across its awaits.
  sim::Task<> re_replicate(std::vector<LineId> ids);
  void queue_update(LineId id, const mining::Itemset& itemset);
  sim::Task<> send_update_batch(net::NodeId holder);
  sim::Task<> maybe_flush_batch(net::NodeId holder);
  /// One holder's share of reclaim(): park up to `target_bytes` of this
  /// store's lines there kMigrating, fetch them home one kSwapIn at a time
  /// (the holder releases each line immediately, so donated bytes drop as
  /// the recall progresses), and spill each through the disk fallback.
  sim::Task<std::int64_t> reclaim_from(net::NodeId holder,
                                       std::int64_t target_bytes);
  /// collect_fetch with rpc_window >= 2: pin every holder's lines, issue
  /// the fetch RPCs through Transport::pipeline so their round-trips
  /// overlap, then post-process replies in holder order.
  sim::Task<> collect_fetch_pipelined(const std::vector<net::NodeId>& holders);
  /// One broker decision (placement::MemoryBroker::choose) plus this
  /// store's accounting. -1 when no live, fresh node has room (callers
  /// degrade). With `best_effort` (replica placement) a stale-estimate miss
  /// falls back to the least-loaded live node instead: mirrors must not
  /// silently lapse. `prev` is the line's previous holder when one is
  /// known — the affinity policy's hint.
  net::NodeId pick_destination(std::int64_t bytes,
                               placement::Purpose purpose,
                               net::NodeId exclude = -1,
                               bool best_effort = false,
                               net::NodeId prev = -1);
  /// lines_by_holder_ mutations paired with remote_bytes_ accounting.
  void hold_insert(net::NodeId holder, LineId id);
  void hold_erase(net::NodeId holder, LineId id);

  const bool update_mode_;
  const char* name_;
  placement::MemoryBroker* broker_;
  transport::Transport xport_;
  std::unique_ptr<DiskBackend> fallback_;

  // Location bookkeeping for migration, collection, and recovery.
  std::unordered_map<net::NodeId, std::unordered_set<LineId>> lines_by_holder_;
  std::unordered_map<net::NodeId, std::unordered_set<LineId>>
      replicas_by_holder_;
  std::unordered_set<net::NodeId> suspected_;
  /// Checksum-mismatch strikes per holder; at config().quarantine_after the
  /// holder is quarantined in the placement broker.
  std::unordered_map<net::NodeId, int> corrupt_strikes_;
  /// Remote primaries that should carry a backup (replicate_k > 0) but
  /// currently do not: fed by promotion and backup-node death, drained by
  /// re_replicate. May hold stale ids (lines that since came home); the
  /// invariant is one-directional — every under-replicated remote line is
  /// listed here.
  std::unordered_set<LineId> unreplicated_;
  /// Last-resort redundancy for simple swapping: a local disk copy of a
  /// swap-out that found no mirror node (during congestion the broker
  /// often knows just one fresh destination). Remote contents are
  /// immutable outside update mode, so the copy stays exact until the line
  /// comes home. Consulted by repair_from_disk; never populated in update
  /// mode, where a snapshot would go stale against remotely-applied ops.
  struct UnmirroredShadow {
    mining::HashLine entries;
    std::uint64_t checksum = 0;
  };
  std::unordered_map<LineId, UnmirroredShadow> unmirrored_shadow_;
  /// One-way update batching, one byte-budgeted stream per target node.
  std::unordered_map<net::NodeId, transport::Stream<MemRequest>>
      update_streams_;
  std::unordered_map<LineId, std::vector<mining::Itemset>> pending_updates_;
  std::int64_t remote_bytes_ = 0;

  std::int64_t* updates_sent_;    // store.updates_sent
  std::int64_t* lines_migrated_;  // store.lines_migrated
  std::int64_t* swap_outs_;       // backend.<ns>.swap_outs
  std::int64_t* faults_;          // backend.<ns>.faults
  std::int64_t* degraded_;        // backend.<ns>.degraded_to_disk
};

}  // namespace rms::core
