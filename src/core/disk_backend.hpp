// DiskBackend: swap evicted hash lines to the local swap disk (§5.2, the
// paper's Figure 4 baseline). Also serves as the degradation target for the
// remote backends: RemoteBackend delegates here when no live memory node
// qualifies as a destination, and TieredBackend when its remote budget is
// full.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/hash_line_store.hpp"
#include "core/swap_backend.hpp"

namespace rms::core {

class DiskBackend final : public SwapBackend {
 public:
  explicit DiskBackend(HashLineStore& store);

  const char* name() const override { return "disk"; }

  /// Write-behind to the contiguous swap area: sequential, and the probe
  /// that triggered the eviction waits for the write to be queued, like a
  /// dirty-page writeback under memory pressure.
  sim::Task<> swap_out(LineId id) override;

  /// Random read from the swap area (the line's blocks sit wherever the
  /// write-behind landed them).
  sim::Task<> fault_in(LineId id) override;

  /// Disk lines stream back sequentially (the swap area is contiguous).
  sim::Task<> collect_finish() override;

  std::size_t disk_lines() const override { return disk_store_.size(); }

  void check_invariants() const override;

 private:
  /// Spilled contents with the checksum stamped at swap_out; verified on
  /// every read back. A mismatch (media corruption — nothing in the
  /// simulator injects it, but the read path never trusts the bytes)
  /// orphans the line instead of restoring garbage.
  struct SpillRecord {
    mining::HashLine entries;
    std::uint64_t checksum = 0;
  };

  /// Returns false (and counts the loss, erasing the record) when the
  /// stored copy fails verification; the line is orphaned by the caller.
  bool restore_verified(LineId id);

  cluster::Node& node_;
  std::unordered_map<LineId, SpillRecord> disk_store_;
  std::int64_t* swap_outs_;  // backend.disk.swap_outs
  std::int64_t* faults_;     // backend.disk.faults
};

}  // namespace rms::core
