#include "core/integrity.hpp"

#include <memory>
#include <vector>

#include "core/protocol.hpp"

namespace rms::core {
namespace {

/// Indices of `lines` elements that drew a corruption hit. One bernoulli
/// per stamped, non-empty payload keeps the draw sequence independent of
/// whether anything actually flips.
std::vector<std::size_t> draw_hits(const std::vector<LinePayload>& lines,
                                   double rate, Pcg32& rng) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].checksum == 0 || lines[i].entries.empty()) continue;
    if (rng.bernoulli(rate)) hits.push_back(i);
  }
  return hits;
}

/// Flip one bit of one entry's count; the stale checksum now testifies
/// against the payload.
void flip(LinePayload& p, Pcg32& rng) {
  const auto n = static_cast<std::uint32_t>(p.entries.size());
  p.entries[rng.below(n)].count ^= 0x4u;
}

}  // namespace

int corrupt_line_payloads(net::Message& msg, double rate, Pcg32& rng) {
  if (rate <= 0.0) return 0;
  if (msg.is<MemRequest>()) {
    const MemRequest& req = msg.as<MemRequest>();
    const std::vector<std::size_t> hits = draw_hits(req.lines, rate, rng);
    if (hits.empty()) return 0;
    MemRequest copy = req;
    for (std::size_t i : hits) flip(copy.lines[i], rng);
    msg.body = std::make_shared<const MemRequest>(std::move(copy));
    return static_cast<int>(hits.size());
  }
  if (msg.is<MemReply>()) {
    const MemReply& rep = msg.as<MemReply>();
    const std::vector<std::size_t> hits = draw_hits(rep.lines, rate, rng);
    if (hits.empty()) return 0;
    MemReply copy = rep;
    for (std::size_t i : hits) flip(copy.lines[i], rng);
    msg.body = std::make_shared<const MemReply>(std::move(copy));
    return static_cast<int>(hits.size());
  }
  return 0;
}

}  // namespace rms::core
