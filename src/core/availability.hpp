// Dynamic decision mechanism for remote memory availability (§4.2, Fig. 2).
//
// Memory-available nodes run an AvailabilityMonitor process that samples the
// node's free memory every `interval` (the paper uses `netstat -k` on a 3 s
// period) and broadcasts it to all application execution nodes. Each
// application node runs an availability client process that keeps the last
// report per memory node in an AvailabilityTable — the paper's shared-memory
// segment — which swap-destination choice and migration policy read.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/protocol.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace rms::core {

class AvailabilityTable {
 public:
  /// `memory_nodes`: the candidate memory-available nodes, in preference
  /// order for the round-robin destination scan.
  explicit AvailabilityTable(std::vector<net::NodeId> memory_nodes);

  /// Record a monitor broadcast; stale (out-of-order) reports are dropped.
  /// Returns true if the entry changed.
  bool update(const AvailabilityInfo& info, Time now);

  /// Last reported available bytes (0 until the first report arrives — an
  /// unknown node is never chosen as a swap destination).
  std::int64_t available(net::NodeId node) const;

  /// Pick a destination with at least `bytes_needed` reported available,
  /// round-robin across qualifying nodes so that consecutive swap-outs
  /// spread over all memory-available nodes. Returns nullopt if nobody
  /// qualifies. `exclude` removes a node from consideration (the shorted
  /// holder during migration).
  std::optional<net::NodeId> choose_destination(std::int64_t bytes_needed,
                                                net::NodeId exclude = -1);

  /// Debit a local estimate after choosing a destination, so many swap-outs
  /// between two monitor reports do not all pile onto one node.
  void debit(net::NodeId node, std::int64_t bytes);

  const std::vector<net::NodeId>& memory_nodes() const {
    return memory_nodes_;
  }

 private:
  struct Entry {
    std::int64_t available = 0;
    std::uint64_t seq = 0;
    Time updated = -1;
    bool valid = false;
  };

  std::vector<net::NodeId> memory_nodes_;
  std::unordered_map<net::NodeId, Entry> entries_;
  std::size_t cursor_ = 0;  // round-robin position
};

struct MonitorConfig {
  Time interval = sec(3);  // the paper's default sampling period
  std::vector<net::NodeId> subscribers;  // application execution nodes
};

/// The monitor process running on a memory-available node. Spawn once per
/// memory node; runs until simulation teardown.
sim::Process availability_monitor(cluster::Node& node, MonitorConfig config);

struct ClientConfig {
  /// A memory node reporting less than this is "short" and triggers the
  /// migration callback (§4.2: new processes began using its memory).
  std::int64_t shortage_threshold_bytes = 256 << 10;
};

/// Shortage callback: invoked (and awaited) when a memory node's report
/// drops below the threshold. Typically HashLineStore::migrate_away.
using ShortageHandler = std::function<sim::Task<>(net::NodeId holder)>;

/// The client process running on an application execution node: receives
/// kAvailInfo broadcasts, refreshes `table`, and drives migration when a
/// holder runs short. Spawn once per application node.
sim::Process availability_client(cluster::Node& node, AvailabilityTable& table,
                                 ClientConfig config,
                                 ShortageHandler on_shortage);

}  // namespace rms::core
