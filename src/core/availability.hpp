// Dynamic decision mechanism for remote memory availability (§4.2, Fig. 2).
//
// Memory-available nodes run an AvailabilityMonitor process that samples the
// node's free memory every `interval` (the paper uses `netstat -k` on a 3 s
// period) and broadcasts it to all application execution nodes. Each
// application node runs an availability client process that keeps the last
// report per memory node in an AvailabilityTable — the paper's shared-memory
// segment — which swap-destination choice and migration policy read.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/protocol.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace rms::core {

class AvailabilityTable {
 public:
  /// `memory_nodes`: the candidate memory-available nodes, in preference
  /// order for the round-robin destination scan.
  explicit AvailabilityTable(std::vector<net::NodeId> memory_nodes);

  /// Record a monitor broadcast; stale (out-of-order) reports are dropped.
  /// Returns true if the entry changed. A fresh report revives a node that
  /// was marked dead (crash + restart: the monitor resumes broadcasting
  /// with its sequence intact).
  bool update(const AvailabilityInfo& info, Time now);

  /// Last reported available bytes (0 until the first report arrives — an
  /// unknown node is never chosen as a swap destination).
  std::int64_t available(net::NodeId node) const;

  /// Pick a destination with at least `bytes_needed` reported available,
  /// round-robin across qualifying nodes so that consecutive swap-outs
  /// spread over all memory-available nodes. Returns nullopt if nobody
  /// qualifies. `exclude` removes a node from consideration (the shorted
  /// holder during migration). Nodes marked dead are always skipped; with a
  /// max age configured and `now >= 0`, entries whose last report is older
  /// than the max age are treated as invalid too (a node that died right
  /// after one fat report must not attract swap-outs forever).
  std::optional<net::NodeId> choose_destination(std::int64_t bytes_needed,
                                                net::NodeId exclude = -1,
                                                Time now = -1);

  /// Best-effort variant for replica placement: the live, fresh,
  /// non-quarantined node with the most reported room, with no minimum.
  /// Local debits between two monitor reports routinely drive every
  /// estimate below the threshold even though the servers have plenty of
  /// real room (servers never hard-reject a store; sustained overload is
  /// corrected by withdrawal-driven migration). Denying a mirror on such a
  /// stale estimate would leave the line one corruption away from loss, so
  /// redundancy placement degrades to "least loaded" instead of "none".
  std::optional<net::NodeId> choose_best_effort(net::NodeId exclude = -1,
                                                Time now = -1);

  /// Expire entries not refreshed within `max_age` (<= 0 disables, the
  /// default). Typically N monitor intervals.
  void set_max_age(Time max_age) { max_age_ = max_age; }
  Time max_age() const { return max_age_; }
  bool expired(net::NodeId node, Time now) const;

  /// Failure-detector verdicts. A dead node is excluded from destination
  /// choice until a fresh report revives it.
  void mark_dead(net::NodeId node);
  bool dead(net::NodeId node) const;

  /// Integrity verdicts. A quarantined node served repeatedly corrupt
  /// payloads: it is excluded from destination choice for the rest of the
  /// run. Unlike `dead`, quarantine is sticky — fresh heartbeats do not
  /// clear it (the node is alive, just untrusted).
  void quarantine(net::NodeId node);
  bool quarantined(net::NodeId node) const;
  /// Time of the last accepted report (-1 before the first one).
  Time last_update(net::NodeId node) const;
  /// Heartbeat staleness: age of the oldest accepted report across live
  /// memory nodes (0 when nothing has reported). A metrics gauge — a rising
  /// value means monitors have gone quiet.
  Time oldest_report_age(Time now) const;

  /// Debit a local estimate after choosing a destination, so many swap-outs
  /// between two monitor reports do not all pile onto one node.
  void debit(net::NodeId node, std::int64_t bytes);

  const std::vector<net::NodeId>& memory_nodes() const {
    return memory_nodes_;
  }

 private:
  struct Entry {
    std::int64_t available = 0;
    std::uint64_t seq = 0;
    Time updated = -1;
    bool valid = false;
    bool dead = false;
    bool quarantined = false;  // sticky: update() never clears it
  };

  std::vector<net::NodeId> memory_nodes_;
  std::unordered_map<net::NodeId, Entry> entries_;
  std::size_t cursor_ = 0;  // round-robin position
  Time max_age_ = 0;        // <= 0: reports never expire
};

struct MonitorConfig {
  Time interval = sec(3);  // the paper's default sampling period
  std::vector<net::NodeId> subscribers;  // application execution nodes
};

/// The monitor process running on a memory-available node. Spawn once per
/// memory node; runs until simulation teardown.
sim::Process availability_monitor(cluster::Node& node, MonitorConfig config);

struct ClientConfig {
  /// A memory node reporting less than this is "short" and triggers the
  /// migration callback (§4.2: new processes began using its memory).
  std::int64_t shortage_threshold_bytes = 256 << 10;
};

/// Shortage callback: invoked (and awaited) when a memory node's report
/// drops below the threshold. Typically HashLineStore::migrate_away.
using ShortageHandler = std::function<sim::Task<>(net::NodeId holder)>;

/// The client process running on an application execution node: receives
/// kAvailInfo broadcasts, refreshes `table`, and drives migration when a
/// holder runs short. Spawn once per application node.
sim::Process availability_client(cluster::Node& node, AvailabilityTable& table,
                                 ClientConfig config,
                                 ShortageHandler on_shortage);

struct DetectorConfig {
  /// The monitors' broadcast period (MonitorConfig::interval).
  Time expected_interval = sec(3);
  /// Declare a memory node dead after this many missed heartbeats — i.e.
  /// when its last accepted report is older than miss_threshold intervals.
  int miss_threshold = 3;
  /// How often the detector scans the table; defaults to one interval.
  Time check_interval = 0;  // <= 0: use expected_interval
  /// Confirm heartbeat silence with a direct kPing RPC (through the shared
  /// transport::Transport) before delivering the verdict: a node whose
  /// broadcasts are merely delayed answers the ping and is spared. Off by
  /// default — the paper-calibrated experiments use pure heartbeat timing.
  bool confirm_with_rpc = false;
  /// Per-attempt deadline / retries for the confirmation ping.
  Time ping_deadline = msec(500);
  int ping_retries = 0;
};

/// Suspicion callback: invoked (and awaited) once per detected death.
/// Typically HashLineStore::handle_holder_failure.
using SuspectHandler = std::function<sim::Task<>(net::NodeId suspect)>;

/// The failure-detector process running on an application execution node: a
/// periodic scan over the availability table that marks a memory node dead
/// after `miss_threshold` missed heartbeats (kAvailInfo seq/timestamps are
/// maintained by the availability client) and awaits the suspect handler.
/// It runs on a timer, not on message arrival, so it still fires when every
/// monitor has gone silent. Nodes that never reported are ignored — they
/// were never eligible as swap destinations. Spawn once per application
/// node, alongside the availability client.
sim::Process failure_detector(cluster::Node& node, AvailabilityTable& table,
                              DetectorConfig config, SuspectHandler on_suspect);

}  // namespace rms::core
