// Dynamic decision mechanism for remote memory availability (§4.2, Fig. 2).
//
// Memory-available nodes run an AvailabilityMonitor process that samples the
// node's free memory every `interval` (the paper uses `netstat -k` on a 3 s
// period) and broadcasts it to all application execution nodes. Each
// application node runs an availability client process that feeds the last
// report per memory node into its placement::MemoryBroker — the paper's
// shared-memory segment, now owned by the placement subsystem — which every
// swap-destination choice and the migration policy read. A companion
// failure-detector process scans the same view for silent monitors.
#pragma once

#include <functional>

#include "cluster/cluster.hpp"
#include "core/protocol.hpp"
#include "placement/placement.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace rms::core {

struct MonitorConfig {
  Time interval = sec(3);  // the paper's default sampling period
  std::vector<net::NodeId> subscribers;  // application execution nodes
};

/// The monitor process running on a memory-available node. Spawn once per
/// memory node; runs until simulation teardown.
sim::Process availability_monitor(cluster::Node& node, MonitorConfig config);

struct ClientConfig {
  /// A memory node reporting less than this is "short" and triggers the
  /// migration callback (§4.2: new processes began using its memory).
  std::int64_t shortage_threshold_bytes = 256 << 10;
};

/// Shortage callback: invoked (and awaited) when a memory node's report
/// drops below the threshold. Typically HashLineStore::migrate_away.
using ShortageHandler = std::function<sim::Task<>(net::NodeId holder)>;

/// The client process running on an application execution node: receives
/// kAvailInfo broadcasts, refreshes the broker's availability view, and
/// drives migration when a holder runs short. Spawn once per application
/// node.
sim::Process availability_client(cluster::Node& node,
                                 placement::MemoryBroker& broker,
                                 ClientConfig config,
                                 ShortageHandler on_shortage);

struct DetectorConfig {
  /// The monitors' broadcast period (MonitorConfig::interval).
  Time expected_interval = sec(3);
  /// Declare a memory node dead after this many missed heartbeats — i.e.
  /// when its last accepted report is older than miss_threshold intervals.
  int miss_threshold = 3;
  /// How often the detector scans the broker's view; defaults to one
  /// interval.
  Time check_interval = 0;  // <= 0: use expected_interval
  /// Confirm heartbeat silence with a direct kPing RPC (through the shared
  /// transport::Transport) before delivering the verdict: a node whose
  /// broadcasts are merely delayed answers the ping and is spared. Off by
  /// default — the paper-calibrated experiments use pure heartbeat timing.
  bool confirm_with_rpc = false;
  /// Per-attempt deadline / retries for the confirmation ping.
  Time ping_deadline = msec(500);
  int ping_retries = 0;
};

/// Suspicion callback: invoked (and awaited) once per detected death.
/// Typically HashLineStore::handle_holder_failure.
using SuspectHandler = std::function<sim::Task<>(net::NodeId suspect)>;

/// The failure-detector process running on an application execution node: a
/// periodic scan over the broker's availability view that marks a memory
/// node dead after `miss_threshold` missed heartbeats (kAvailInfo
/// seq/timestamps are maintained by the availability client) and awaits the
/// suspect handler. It runs on a timer, not on message arrival, so it still
/// fires when every monitor has gone silent. Nodes that never reported are
/// ignored — they were never eligible as swap destinations. Spawn once per
/// application node, alongside the availability client.
sim::Process failure_detector(cluster::Node& node,
                              placement::MemoryBroker& broker,
                              DetectorConfig config, SuspectHandler on_suspect);

}  // namespace rms::core
