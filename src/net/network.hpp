// Star-topology network model of the ATM-connected PC cluster.
//
// Every node hangs off one switch port (the paper's 128-port HITACHI
// AN1000-20, 155 Mbps UTP-5 per port). A message:
//
//   1. serializes through the sender's TX port at the effective bandwidth
//      (155 Mbps raw minus ATM cell + LLC/SNAP + TCP/IP overhead ~= 120 Mbps,
//      the point-to-point throughput the paper measures),
//   2. crosses the switch with a fixed propagation + protocol-stack latency
//      (calibrated so a small-message round trip is ~0.5 ms, §5.2),
//   3. is delivered to the destination's mailbox.
//
// Cells cut through the switch, so transmission time is charged once —
// matching the paper's Table 4 decomposition (RTT 0.5 ms + 0.3 ms for a 4 KB
// block). Receiver-side contention is modelled where it physically lives in
// this system: the memory server's per-request service time.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace rms::net {

/// Tags identify the logical service a message belongs to (like MPI tags).
using Tag = std::int32_t;
using NodeId = std::int32_t;

struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  Tag tag = 0;
  Tag reply_tag = -1;              // >= 0 when the sender awaits a reply
  std::int64_t payload_bytes = 0;  // application payload (wire adds headers)
  std::any body;                   // holds std::shared_ptr<const T>

  /// Attach a typed body; the payload byte count is the *simulated* size.
  template <typename T>
  static Message make(NodeId src, NodeId dst, Tag tag, std::int64_t bytes,
                      T value) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.tag = tag;
    m.payload_bytes = bytes;
    m.body = std::make_shared<const T>(std::move(value));
    return m;
  }

  template <typename T>
  const T& as() const {
    const auto* p = std::any_cast<std::shared_ptr<const T>>(&body);
    RMS_CHECK_MSG(p != nullptr, "message body type mismatch");
    return **p;
  }

  /// Non-aborting type test, for channels that can carry more than one body
  /// type (e.g. a reply tag that may also receive a local timeout sentinel).
  template <typename T>
  bool is() const {
    return std::any_cast<std::shared_ptr<const T>>(&body) != nullptr;
  }

  bool has_body() const { return body.has_value(); }
};

struct LinkParams {
  /// Effective per-port goodput after ATM/LLC/TCP overheads.
  std::int64_t bandwidth_bps = 120'000'000;
  /// One-way fixed latency: wire + switch + protocol stacks on both ends.
  Time propagation = usec(240);
  /// Per-message header bytes added on the wire (TCP/IP + LLC/SNAP).
  std::int64_t header_bytes = 48;

  // --- TCP-style reliability (the authors' companion work [2][21] tunes
  // --- exactly this on the real cluster). loss_rate = 0 bypasses the
  // --- machinery entirely.
  /// Probability that one transmission attempt is lost (cell drops in the
  /// switch under UBR traffic, §3.2).
  double loss_rate = 0.0;
  /// Retransmission timeout after a lost attempt. Solaris' coarse TCP
  /// timers (200 ms) are the paper-era default; the companion work shows
  /// what tuning it buys.
  Time retransmit_timeout = msec(200);
  /// Exponential backoff cap (doublings).
  int max_backoff_doublings = 6;

  /// The paper's measured constants for the pilot system.
  static LinkParams atm155();
  /// atm155 with transmission losses and a configurable RTO.
  static LinkParams atm155_lossy(double loss_rate,
                                 Time retransmit_timeout = msec(200));
  /// A 10Base-T Ethernet alternative (the cluster's control network) for
  /// what-if comparisons.
  static LinkParams ethernet10();
};

class Network {
 public:
  using DeliveryFn = std::function<void(Message)>;
  /// Payload corruptor: mutates the message in place with the given per-
  /// payload flip probability and returns how many payloads were corrupted.
  /// Type-erased so net/ stays ignorant of the application wire protocol
  /// (core installs corrupt_line_payloads here).
  using CorruptFn = std::function<int(Message&, double, Pcg32&)>;

  Network(sim::Simulation& sim, std::size_t num_nodes, LinkParams params);

  /// Register the destination-side delivery hook for a node (the cluster
  /// node's mailbox). Must be set before traffic reaches the node.
  void set_delivery(NodeId node, DeliveryFn fn);

  /// Asynchronous send; the message is delivered after TX serialization and
  /// propagation. Messages between the same (src, dst) pair keep FIFO order.
  void send(Message msg);

  /// Unicast-fanout broadcast from `src` to every other node (the paper's
  /// monitor processes broadcast availability this way over the TLI mesh).
  void broadcast(NodeId src, Tag tag, std::int64_t payload_bytes,
                 const std::function<std::any(NodeId)>& body_for);

  std::size_t num_nodes() const { return tx_ports_.size(); }
  const LinkParams& params() const { return params_; }

  /// Change the attempt loss probability at runtime (scripted loss bursts).
  /// Takes effect from the next transmission attempt, including pending
  /// retransmissions — `transfer` re-reads the parameter per attempt.
  void set_loss_rate(double loss_rate);

  /// Install the payload corruptor (null disables injection entirely).
  void set_corruptor(CorruptFn fn);

  /// Scripted corruption episodes: each delivered message touching `focus`
  /// (src or dst; focus < 0 means every link) runs through the corruptor
  /// with per-payload probability `rate`. rate = 0 ends the episode and,
  /// like loss_rate = 0, draws nothing — disabled runs stay bit-identical.
  void set_corruption(double rate, NodeId focus = -1);

  /// Time to clock `payload_bytes` (+headers) through one port.
  Time transmission_time(std::int64_t payload_bytes) const;

  StatsRegistry& stats() { return stats_; }
  const StatsRegistry& stats() const { return stats_; }

 private:
  sim::Process transfer(Message msg);
  void arrive(Message msg, std::uint64_t seq);
  void deliver_now(Message msg);

  /// In-order delivery state per (src, dst) pair — the TCP byte-stream
  /// guarantee our protocols (FIFO swap/update ordering) rely on.
  struct PairState {
    std::uint64_t next_send = 0;
    std::uint64_t next_deliver = 0;
    std::map<std::uint64_t, Message> reorder;  // arrived out of order
  };
  PairState& pair(NodeId src, NodeId dst);

  sim::Simulation& sim_;
  LinkParams params_;
  std::vector<std::unique_ptr<sim::Resource>> tx_ports_;
  std::vector<DeliveryFn> delivery_;
  std::unordered_map<std::uint64_t, PairState> pairs_;
  Pcg32 loss_rng_;
  CorruptFn corruptor_;
  double corrupt_rate_ = 0.0;
  NodeId corrupt_node_ = -1;  // -1: every link
  Pcg32 corrupt_rng_;
  StatsRegistry stats_;
};

}  // namespace rms::net
