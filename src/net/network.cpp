#include "net/network.hpp"

namespace rms::net {

LinkParams LinkParams::atm155() {
  // 155.52 Mbps SONET payload; ATM 48/53 cell efficiency and TCP/IP over
  // LLC/SNAP bring point-to-point goodput to the ~120 Mbps the paper
  // measures. Propagation covers UTP wire, AN1000-20 switching and the
  // Solaris TLI/TCP stacks: calibrated so a small-message RTT is ~0.5 ms.
  LinkParams p;
  p.bandwidth_bps = 120'000'000;
  p.propagation = usec(240);
  p.header_bytes = 48;
  return p;
}

LinkParams LinkParams::atm155_lossy(double loss_rate,
                                    Time retransmit_timeout) {
  LinkParams p = atm155();
  RMS_CHECK(loss_rate >= 0.0 && loss_rate < 1.0);
  p.loss_rate = loss_rate;
  p.retransmit_timeout = retransmit_timeout;
  return p;
}

LinkParams LinkParams::ethernet10() {
  LinkParams p;
  p.bandwidth_bps = 9'000'000;
  p.propagation = usec(400);
  p.header_bytes = 26;
  return p;
}

Network::Network(sim::Simulation& sim, std::size_t num_nodes,
                 LinkParams params)
    : sim_(sim),
      params_(params),
      delivery_(num_nodes),
      loss_rng_(0xca11ab1e, 0x1c),
      corrupt_rng_(0xb17f11b5, 0x1d) {
  RMS_CHECK(num_nodes > 0);
  RMS_CHECK(params_.bandwidth_bps > 0);
  RMS_CHECK(params_.loss_rate >= 0.0 && params_.loss_rate < 1.0);
  tx_ports_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    tx_ports_.push_back(std::make_unique<sim::Resource>(sim_, 1));
  }
}

Network::PairState& Network::pair(NodeId src, NodeId dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  return pairs_[key];
}

void Network::set_loss_rate(double loss_rate) {
  RMS_CHECK(loss_rate >= 0.0 && loss_rate < 1.0);
  params_.loss_rate = loss_rate;
}

void Network::set_corruptor(CorruptFn fn) { corruptor_ = std::move(fn); }

void Network::set_corruption(double rate, NodeId focus) {
  RMS_CHECK(rate >= 0.0 && rate < 1.0);
  corrupt_rate_ = rate;
  corrupt_node_ = focus;
}

void Network::set_delivery(NodeId node, DeliveryFn fn) {
  RMS_CHECK(node >= 0 && static_cast<std::size_t>(node) < delivery_.size());
  delivery_[static_cast<std::size_t>(node)] = std::move(fn);
}

Time Network::transmission_time(std::int64_t payload_bytes) const {
  return transmit_time(payload_bytes + params_.header_bytes,
                       params_.bandwidth_bps);
}

void Network::send(Message msg) {
  RMS_CHECK(msg.src >= 0 &&
            static_cast<std::size_t>(msg.src) < tx_ports_.size());
  RMS_CHECK(msg.dst >= 0 &&
            static_cast<std::size_t>(msg.dst) < delivery_.size());
  RMS_CHECK_MSG(msg.src != msg.dst, "loopback messages bypass the network");
  stats_.bump("net.messages");
  stats_.bump("net.payload_bytes", msg.payload_bytes);
  stats_.bump("net.wire_bytes", msg.payload_bytes + params_.header_bytes);
  sim_.spawn(transfer(std::move(msg)));
}

void Network::broadcast(NodeId src, Tag tag, std::int64_t payload_bytes,
                        const std::function<std::any(NodeId)>& body_for) {
  for (std::size_t n = 0; n < delivery_.size(); ++n) {
    const auto dst = static_cast<NodeId>(n);
    if (dst == src || !delivery_[n]) continue;
    Message m;
    m.src = src;
    m.dst = dst;
    m.tag = tag;
    m.payload_bytes = payload_bytes;
    m.body = body_for(dst);
    send(std::move(m));
  }
}

sim::Process Network::transfer(Message msg) {
  // Assign the per-pair sequence number up front: FIFO order is defined by
  // send order, and retransmissions must not leapfrog later messages.
  const std::uint64_t seq = pair(msg.src, msg.dst).next_send++;

  auto& port = *tx_ports_[static_cast<std::size_t>(msg.src)];
  Time backoff = params_.retransmit_timeout;
  int doublings = 0;
  for (;;) {
    // Serialize through the sender's switch port, then cut through the
    // switch.
    {
      auto lease = co_await port.acquire();
      co_await sim_.timeout(transmission_time(msg.payload_bytes));
    }
    co_await sim_.timeout(params_.propagation);
    if (params_.loss_rate <= 0.0 ||
        !loss_rng_.bernoulli(params_.loss_rate)) {
      break;  // attempt survived
    }
    // Lost in the switch: wait out the retransmission timer and try again
    // (coarse TCP timers with exponential backoff, as on the real cluster).
    stats_.bump("net.retransmissions");
    co_await sim_.timeout(backoff);
    if (doublings < params_.max_backoff_doublings) {
      backoff *= 2;
      ++doublings;
    }
  }
  arrive(std::move(msg), seq);
}

void Network::arrive(Message msg, std::uint64_t seq) {
  PairState& ps = pair(msg.src, msg.dst);
  if (seq != ps.next_deliver) {
    // Out of order (an earlier message of this pair is still being
    // retransmitted): buffer until the stream catches up.
    stats_.bump("net.reordered");
    ps.reorder.emplace(seq, std::move(msg));
    return;
  }
  ++ps.next_deliver;
  deliver_now(std::move(msg));
  while (!ps.reorder.empty() &&
         ps.reorder.begin()->first == ps.next_deliver) {
    Message next = std::move(ps.reorder.begin()->second);
    ps.reorder.erase(ps.reorder.begin());
    ++ps.next_deliver;
    deliver_now(std::move(next));
  }
}

void Network::deliver_now(Message msg) {
  // Corruption episodes flip bits just before delivery — after reordering,
  // so retransmitted attempts are not double-exposed. rate == 0 (the
  // default) draws nothing, keeping injection-free runs bit-identical.
  if (corrupt_rate_ > 0.0 && corruptor_ &&
      (corrupt_node_ < 0 || msg.src == corrupt_node_ ||
       msg.dst == corrupt_node_)) {
    const int n = corruptor_(msg, corrupt_rate_, corrupt_rng_);
    if (n > 0) stats_.bump("net.corrupted_payloads", n);
  }
  auto& deliver = delivery_[static_cast<std::size_t>(msg.dst)];
  RMS_CHECK_MSG(static_cast<bool>(deliver),
                "message sent to a node with no delivery hook");
  deliver(std::move(msg));
}

}  // namespace rms::net
