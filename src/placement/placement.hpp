// rms::placement — the unified swap-destination decision subsystem.
//
// The paper's central mechanism is choosing remote memory *dynamically* from
// whatever nodes currently have room (§4.2, Fig. 2). Before this subsystem
// existed that choice was smeared across the layers: AvailabilityTable held
// a round-robin scan, RemoteBackend wrapped it with threshold/exclusion/
// best-effort fallback logic, and the replica, re-replication and migration
// paths each re-derived freshness and quarantine handling. The MemoryBroker
// absorbs all of it:
//
//   * the availability view (per-node last report, seq ordering, staleness
//     expiry) — what AvailabilityTable used to be;
//   * liveness and trust state (failure-detector deaths, integrity-layer
//     quarantines);
//   * per-node in-flight debits (local estimate adjustments between two
//     monitor reports so consecutive swap-outs do not pile onto one node);
//   * one decision API: choose(PlacementRequest) -> PlacementDecision,
//     behind a pluggable PlacementPolicy.
//
// Policies (selected per run, --placement on every bench):
//
//   kPaperRoundRobin  — the paper's heuristic: scan from a cursor, first
//                       node with room wins. Bit-identical to the
//                       pre-broker AvailabilityTable::choose_destination.
//   kLeastLoaded      — qualifying node with the most reported room.
//   kPowerOfTwoChoices— two random qualifying candidates, pick the roomier
//                       (the classic load-balancing win under stale
//                       estimates).
//   kAffinity         — prefer the line's previous holder when it still
//                       qualifies (maximizes replica/shadow reuse and
//                       server-side locality), else the paper scan.
//
// Every decision shares one eligibility filter (exclude / dead / quarantine
// / staleness / threshold-with-headroom), one best-effort fallback (least
// loaded live node, used for replica placement where "no mirror" is worse
// than "loaded mirror"), and one debit step — the logic that used to be
// copy-pasted between RemoteBackend::pick_destination and the replica /
// kReplicaSync paths. Decisions are counted per policy
// ("placement.<policy>.{chosen,denied,fallback_disk,stale_skip,...}") and
// traced as kPlacement instants.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "core/protocol.hpp"
#include "net/network.hpp"

namespace rms::obs {
class TraceRecorder;
}

namespace rms::placement {

/// Destination-choice strategy. kPaperRoundRobin reproduces the paper's
/// behaviour bit-for-bit and is the default everywhere.
enum class PolicyKind {
  kPaperRoundRobin,
  kLeastLoaded,
  kPowerOfTwoChoices,
  kAffinity,
};

/// Canonical flag spelling: "paper-rr", "least-loaded", "power2",
/// "affinity". Also the counter namespace ("placement.<name>.*").
const char* policy_name(PolicyKind kind);
/// Parse a --placement value; nullopt for an unknown spelling.
std::optional<PolicyKind> parse_policy(const std::string& name);
/// Every policy, in declaration order (bench sweeps, test matrices).
std::vector<PolicyKind> all_policies();

/// Why a destination is being chosen. Does not change eligibility — it
/// feeds the decision trace and lets policies specialize if they care.
enum class Purpose : std::uint8_t {
  kSwapOut,      // primary copy of an evicted line
  kReplica,      // mirror copy at swap-out time (replicate_k)
  kMigration,    // target for a holder running short
  kReReplicate,  // restoring a lost mirror (kReplicaSync)
};

struct PlacementRequest {
  /// Bytes the destination will be debited for on success.
  std::int64_t bytes = 0;
  /// Extra headroom the destination must report beyond `bytes` before it
  /// qualifies (Config::destination_headroom_bytes).
  std::int64_t headroom = 0;
  /// A node removed from consideration (the shorted holder during
  /// migration, the primary's holder for a mirror).
  net::NodeId exclude = -1;
  /// The line's previous holder, when known (-1 otherwise). Only kAffinity
  /// reads it.
  net::NodeId previous_holder = -1;
  /// Simulation clock for staleness expiry. Must be >= 0 whenever a max
  /// age is configured — the broker rejects a disabled clock instead of
  /// silently skipping expiry (the old `now = -1` call-site bug).
  Time now = -1;
  /// Replica placement: when no node meets the threshold, degrade to the
  /// least-loaded live node instead of returning "none" (a mirror denied
  /// on a stale estimate would leave the line one corruption from loss).
  bool best_effort = false;
  Purpose purpose = Purpose::kSwapOut;
};

struct PlacementDecision {
  net::NodeId node = -1;  // -1: denied (callers degrade to disk or skip)
  /// The threshold scan failed and the best-effort fallback produced the
  /// node (callers count these as best-effort replicas).
  bool best_effort_used = false;

  bool ok() const { return node >= 0; }
};

/// Per-tenant accounting of donated remote-memory bytes, shared by every
/// broker of one job's application nodes (the scheduler attaches one ledger
/// per running job). The remote backend charges it as primary copies land on
/// donors and releases them as lines come home, so `charged_bytes` tracks
/// the tenant's actual donated footprint at all times. choose() denies
/// kSwapOut placements that would push the charge past the quota — the
/// caller's existing degrade-to-disk path absorbs the eviction, so one
/// tenant's swap-out storm cannot starve another tenant's pool share.
/// Migration is exempt (it moves bytes that are already charged), and
/// replica mirrors are not counted: like the tiered budget, the quota
/// bounds the primary working set.
struct TenantLedger {
  std::int64_t tenant = -1;
  std::int64_t quota_bytes = -1;  // -1: unlimited
  std::int64_t charged_bytes = 0;
  std::int64_t quota_denied = 0;  // choose() denials against this ledger

  bool would_exceed(std::int64_t bytes) const {
    return quota_bytes >= 0 && charged_bytes + bytes > quota_bytes;
  }
  void charge(std::int64_t bytes) { charged_bytes += bytes; }
  void release(std::int64_t bytes) {
    charged_bytes -= bytes;
    RMS_CHECK_MSG(charged_bytes >= 0, "tenant ledger released uncharged bytes");
  }
};

class MemoryBroker;

/// Pluggable destination strategy. pick() runs after the broker has
/// classified every memory node for the request (see
/// MemoryBroker::candidate_ok); it returns a node for which candidate_ok
/// is true, or nullopt when no candidate qualifies. The broker applies the
/// shared best-effort fallback, debit, counters and trace around it.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual PolicyKind kind() const = 0;
  virtual std::optional<net::NodeId> pick(MemoryBroker& broker,
                                          const PlacementRequest& req) = 0;
};

/// Factory for the built-in strategies.
std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind);

/// The placement subsystem's heart: one instance per application execution
/// node, shared by every placement consumer on it (swap-out, replica
/// placement, migration targeting, re-replication) and fed by the
/// availability client, the failure detector, and the integrity layer.
class MemoryBroker {
 public:
  /// `memory_nodes`: the candidate memory-available nodes, in preference
  /// order for the round-robin scan. `rng_stream` decorrelates the
  /// randomized policies across brokers (pass the owning node id).
  explicit MemoryBroker(std::vector<net::NodeId> memory_nodes,
                        PolicyKind policy = PolicyKind::kPaperRoundRobin,
                        std::uint64_t rng_stream = 0);

  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  // ---- Decision API ----

  /// Choose a destination for `req` under the active policy: classify
  /// every memory node once, let the policy pick, apply the best-effort
  /// fallback when requested, debit the winner, count and trace the
  /// decision. Aborts if a max age is configured but `req.now` is
  /// negative — staleness expiry must never be silently disabled.
  PlacementDecision choose(const PlacementRequest& req);

  /// The active policy (decision counters are namespaced by its name).
  PolicyKind policy() const { return policy_->kind(); }
  /// Swap in a strategy (tests and custom policies); resets nothing else.
  void set_policy(std::unique_ptr<PlacementPolicy> policy);

  /// A denied swap-out that degraded to the local disk; counted under
  /// "placement.<policy>.fallback_disk" next to the decisions themselves.
  void note_fallback_disk();

  // ---- Tenant arbitration (multi-job scheduling) ----

  /// Attach the owning tenant's ledger: kSwapOut requests that would push
  /// its charged bytes past the quota are denied before any candidate is
  /// considered (counted under "placement.<policy>.quota_denied"). Detach
  /// with nullptr; the ledger must outlive the attachment. Single-job runs
  /// never attach one, so the default path is untouched.
  void set_tenant_ledger(TenantLedger* ledger) { ledger_ = ledger; }
  TenantLedger* tenant_ledger() const { return ledger_; }
  /// Donated-footprint accounting, forwarded to the attached ledger (no-op
  /// without one). Called by the remote backend as primary copies land on
  /// (tenant_charge) and leave (tenant_release) donor nodes.
  void tenant_charge(std::int64_t bytes) {
    if (ledger_ != nullptr) ledger_->charge(bytes);
  }
  void tenant_release(std::int64_t bytes) {
    if (ledger_ != nullptr) ledger_->release(bytes);
  }

  // ---- Availability view (fed by the availability client) ----

  /// Record a monitor broadcast; stale (out-of-order) reports are dropped.
  /// Returns true if the entry changed. A fresh report revives a node that
  /// was marked dead (crash + restart: the monitor resumes broadcasting
  /// with its sequence intact).
  bool update(const core::AvailabilityInfo& info, Time now);

  /// Last reported available bytes minus in-flight debits (0 until the
  /// first report arrives — an unknown node is never chosen).
  std::int64_t available(net::NodeId node) const;

  /// Expire entries not refreshed within `max_age` (<= 0 disables, the
  /// default). Typically N monitor intervals.
  void set_max_age(Time max_age) { max_age_ = max_age; }
  Time max_age() const { return max_age_; }
  bool expired(net::NodeId node, Time now) const;

  /// Failure-detector verdicts. A dead node is excluded from destination
  /// choice until a fresh report revives it.
  void mark_dead(net::NodeId node);
  bool dead(net::NodeId node) const;

  /// Integrity verdicts. A quarantined node served repeatedly corrupt
  /// payloads: it is excluded from destination choice for the rest of the
  /// run. Unlike `dead`, quarantine is sticky — fresh heartbeats do not
  /// clear it (the node is alive, just untrusted).
  void quarantine(net::NodeId node);
  bool quarantined(net::NodeId node) const;

  /// Time of the last accepted report (-1 before the first one).
  Time last_update(net::NodeId node) const;
  /// Heartbeat staleness: age of the oldest accepted report across live
  /// memory nodes (0 when nothing has reported). A metrics gauge — a
  /// rising value means monitors have gone quiet.
  Time oldest_report_age(Time now) const;

  /// Debit a local estimate (choose() does this for its winner; exposed
  /// for callers that place bytes outside the broker's decisions).
  void debit(net::NodeId node, std::int64_t bytes);

  const std::vector<net::NodeId>& memory_nodes() const {
    return memory_nodes_;
  }

  // ---- Policy support surface ----

  /// True when memory_nodes()[i] passed the eligibility filter for the
  /// request currently being decided (exclude, liveness, trust, freshness,
  /// threshold + headroom). Valid only inside PlacementPolicy::pick.
  bool candidate_ok(std::size_t i) const { return candidate_ok_[i]; }
  /// Deterministic per-broker stream for randomized policies.
  Pcg32& rng() { return rng_; }
  /// Policy-internal event counter ("placement.<policy>.<leaf>").
  void note(const char* leaf);

  // ---- Observability ----

  /// Per-policy decision counters; merged into the run's stats by the
  /// runner, so they land in reports and run artifacts.
  const StatsRegistry& stats() const { return stats_; }
  /// Trace decisions as kPlacement instants on `track` (the owning node).
  void set_trace(obs::TraceRecorder* trace, std::int32_t track) {
    trace_ = trace;
    track_ = track;
  }

 private:
  struct Entry {
    std::int64_t available = 0;
    std::uint64_t seq = 0;
    Time updated = -1;
    bool valid = false;
    bool dead = false;
    bool quarantined = false;  // sticky: update() never clears it
  };

  /// Best-effort fallback: the live, fresh, non-quarantined node with the
  /// most reported room, no minimum (the old choose_best_effort).
  std::optional<net::NodeId> least_loaded_live(const PlacementRequest& req);

  std::int64_t& slot(const char* leaf);

  std::vector<net::NodeId> memory_nodes_;
  std::unordered_map<net::NodeId, Entry> entries_;
  Time max_age_ = 0;  // <= 0: reports never expire

  std::unique_ptr<PlacementPolicy> policy_;
  TenantLedger* ledger_ = nullptr;  // attached while a scheduled job runs
  std::vector<char> candidate_ok_;  // scratch, sized like memory_nodes_
  Pcg32 rng_;

  StatsRegistry stats_;
  std::int64_t* chosen_ = nullptr;
  std::int64_t* denied_ = nullptr;
  std::int64_t* fallback_disk_ = nullptr;
  std::int64_t* stale_skip_ = nullptr;
  std::int64_t* best_effort_ = nullptr;

  obs::TraceRecorder* trace_ = nullptr;
  std::int32_t track_ = -1;
};

}  // namespace rms::placement
