#include "placement/placement.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace rms::placement {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPaperRoundRobin: return "paper-rr";
    case PolicyKind::kLeastLoaded: return "least-loaded";
    case PolicyKind::kPowerOfTwoChoices: return "power2";
    case PolicyKind::kAffinity: return "affinity";
  }
  return "?";
}

std::optional<PolicyKind> parse_policy(const std::string& name) {
  for (PolicyKind k : all_policies()) {
    if (name == policy_name(k)) return k;
  }
  return std::nullopt;
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::kPaperRoundRobin, PolicyKind::kLeastLoaded,
          PolicyKind::kPowerOfTwoChoices, PolicyKind::kAffinity};
}

namespace {

/// The paper's heuristic (§4.2): scan from a cursor, first node with room
/// wins, cursor lands one past the winner so consecutive swap-outs spread
/// over all memory-available nodes. The cursor advances only on success —
/// exactly the pre-broker AvailabilityTable::choose_destination, which the
/// placement_test regression holds this policy to.
class PaperRoundRobin final : public PlacementPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kPaperRoundRobin; }

  std::optional<net::NodeId> pick(MemoryBroker& broker,
                                  const PlacementRequest& req) override {
    (void)req;
    const auto& nodes = broker.memory_nodes();
    if (nodes.empty()) return std::nullopt;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::size_t at = (cursor_ + i) % nodes.size();
      if (!broker.candidate_ok(at)) continue;
      cursor_ = (at + 1) % nodes.size();
      return nodes[at];
    }
    return std::nullopt;
  }

 private:
  std::size_t cursor_ = 0;
};

/// Qualifying node with the most reported room; ties break towards the
/// earlier node in memory_nodes order (deterministic).
class LeastLoaded final : public PlacementPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kLeastLoaded; }

  std::optional<net::NodeId> pick(MemoryBroker& broker,
                                  const PlacementRequest& req) override {
    (void)req;
    const auto& nodes = broker.memory_nodes();
    std::optional<net::NodeId> best;
    std::int64_t best_room = -1;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!broker.candidate_ok(i)) continue;
      const std::int64_t room = broker.available(nodes[i]);
      if (room > best_room) {
        best_room = room;
        best = nodes[i];
      }
    }
    return best;
  }
};

/// Two random qualifying candidates, pick the roomier — the classic
/// load-balancing result: under stale estimates two choices get most of the
/// benefit of full information at a fraction of the herding. Draws come
/// from the broker's per-node PCG stream, so runs stay bit-reproducible.
class PowerOfTwoChoices final : public PlacementPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kPowerOfTwoChoices; }

  std::optional<net::NodeId> pick(MemoryBroker& broker,
                                  const PlacementRequest& req) override {
    (void)req;
    const auto& nodes = broker.memory_nodes();
    eligible_.clear();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (broker.candidate_ok(i)) eligible_.push_back(i);
    }
    if (eligible_.empty()) return std::nullopt;
    if (eligible_.size() == 1) return nodes[eligible_[0]];
    const auto m = static_cast<std::uint32_t>(eligible_.size());
    std::uint32_t a = broker.rng().below(m);
    std::uint32_t b = broker.rng().below(m - 1);
    if (b >= a) ++b;  // two *distinct* candidates
    const std::size_t ia = eligible_[a];
    const std::size_t ib = eligible_[b];
    // Ties break towards the earlier node in memory_nodes order.
    const std::int64_t room_a = broker.available(nodes[ia]);
    const std::int64_t room_b = broker.available(nodes[ib]);
    if (room_a > room_b) return nodes[ia];
    if (room_b > room_a) return nodes[ib];
    return nodes[std::min(ia, ib)];
  }

 private:
  std::vector<std::size_t> eligible_;  // scratch, reused across picks
};

/// Prefer the line's previous holder while it still qualifies: the holder
/// may still have the line's replica or shadow warm, and steering a line
/// back where it lived concentrates each owner's lines on fewer servers.
/// Falls back to the paper scan (own cursor) when the hint misses.
class Affinity final : public PlacementPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kAffinity; }

  std::optional<net::NodeId> pick(MemoryBroker& broker,
                                  const PlacementRequest& req) override {
    const auto& nodes = broker.memory_nodes();
    if (req.previous_holder >= 0) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] != req.previous_holder) continue;
        if (broker.candidate_ok(i)) {
          broker.note("affinity_hits");
          return nodes[i];
        }
        break;
      }
    }
    if (nodes.empty()) return std::nullopt;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::size_t at = (cursor_ + i) % nodes.size();
      if (!broker.candidate_ok(at)) continue;
      cursor_ = (at + 1) % nodes.size();
      return nodes[at];
    }
    return std::nullopt;
  }

 private:
  std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPaperRoundRobin:
      return std::make_unique<PaperRoundRobin>();
    case PolicyKind::kLeastLoaded: return std::make_unique<LeastLoaded>();
    case PolicyKind::kPowerOfTwoChoices:
      return std::make_unique<PowerOfTwoChoices>();
    case PolicyKind::kAffinity: return std::make_unique<Affinity>();
  }
  RMS_CHECK_MSG(false, "unknown placement policy");
  return nullptr;
}

MemoryBroker::MemoryBroker(std::vector<net::NodeId> memory_nodes,
                           PolicyKind policy, std::uint64_t rng_stream)
    : memory_nodes_(std::move(memory_nodes)),
      candidate_ok_(memory_nodes_.size(), 0),
      rng_(0x9e3779b97f4a7c15ULL, rng_stream) {
  for (net::NodeId n : memory_nodes_) entries_.emplace(n, Entry{});
  set_policy(make_policy(policy));
}

void MemoryBroker::set_policy(std::unique_ptr<PlacementPolicy> policy) {
  RMS_CHECK(policy != nullptr);
  policy_ = std::move(policy);
  chosen_ = &slot("chosen");
  denied_ = &slot("denied");
  fallback_disk_ = &slot("fallback_disk");
  stale_skip_ = &slot("stale_skip");
  best_effort_ = &slot("best_effort");
}

std::int64_t& MemoryBroker::slot(const char* leaf) {
  return stats_.slot(std::string("placement.") +
                     policy_name(policy_->kind()) + "." + leaf);
}

void MemoryBroker::note(const char* leaf) { ++slot(leaf); }

void MemoryBroker::note_fallback_disk() { ++*fallback_disk_; }

PlacementDecision MemoryBroker::choose(const PlacementRequest& req) {
  // Satellite fix: staleness expiry used to be silently disabled by call
  // sites passing now = -1. The broker makes the clock structural — with a
  // max age configured, every decision must carry the simulation time.
  RMS_CHECK_MSG(max_age_ <= 0 || req.now >= 0,
                "placement with a max age needs the simulation clock");
  // Tenant arbitration: a swap-out that would push the tenant's donated
  // footprint past its quota is denied outright — the caller's existing
  // degrade-to-disk path absorbs the eviction. Migration stays exempt (it
  // moves bytes that are already charged), as do replica purposes (mirrors
  // are not charged to the ledger).
  if (ledger_ != nullptr && req.purpose == Purpose::kSwapOut &&
      ledger_->would_exceed(req.bytes)) {
    ++ledger_->quota_denied;
    ++*denied_;
    note("quota_denied");
    if (trace_ != nullptr) {
      trace_->instant(obs::EventKind::kPlacement, track_,
                      req.now >= 0 ? req.now : 0, -1, req.bytes);
    }
    return {};
  }
  const std::int64_t threshold = req.bytes + req.headroom;
  for (std::size_t i = 0; i < memory_nodes_.size(); ++i) {
    const net::NodeId n = memory_nodes_[i];
    bool ok = false;
    if (n != req.exclude && !dead(n) && !quarantined(n)) {
      if (req.now >= 0 && expired(n, req.now)) {
        ++*stale_skip_;  // live and trusted, but its report has gone stale
      } else {
        ok = available(n) >= threshold;
      }
    }
    candidate_ok_[i] = ok ? 1 : 0;
  }

  PlacementDecision decision;
  std::optional<net::NodeId> picked = policy_->pick(*this, req);
  if (!picked.has_value() && req.best_effort) {
    picked = least_loaded_live(req);
    if (picked.has_value()) {
      decision.best_effort_used = true;
      ++*best_effort_;
    }
  }
  if (picked.has_value()) {
    RMS_CHECK_MSG(!quarantined(*picked),
                  "quarantined node chosen as a swap destination");
    decision.node = *picked;
    debit(*picked, req.bytes);
    ++*chosen_;
  } else {
    ++*denied_;
  }
  if (trace_ != nullptr) {
    trace_->instant(obs::EventKind::kPlacement, track_,
                    req.now >= 0 ? req.now : 0, decision.node, req.bytes);
  }
  return decision;
}

std::optional<net::NodeId> MemoryBroker::least_loaded_live(
    const PlacementRequest& req) {
  // Local debits between two monitor reports routinely drive every estimate
  // below the threshold even though the servers have plenty of real room
  // (servers never hard-reject a store; sustained overload is corrected by
  // withdrawal-driven migration). Denying a mirror on such a stale estimate
  // would leave the line one corruption away from loss, so redundancy
  // placement degrades to "least loaded" instead of "none".
  std::optional<net::NodeId> best;
  std::int64_t best_room = -1;
  for (const net::NodeId n : memory_nodes_) {
    if (n == req.exclude) continue;
    if (dead(n)) continue;
    if (quarantined(n)) continue;
    if (req.now >= 0 && expired(n, req.now)) continue;
    const auto it = entries_.find(n);
    if (it == entries_.end() || !it->second.valid) continue;
    if (it->second.available > best_room) {
      best_room = it->second.available;
      best = n;
    }
  }
  return best;
}

bool MemoryBroker::update(const core::AvailabilityInfo& info, Time now) {
  const auto it = entries_.find(info.node);
  RMS_CHECK_MSG(it != entries_.end(),
                "availability report from an unregistered node");
  Entry& e = it->second;
  if (e.valid && info.seq <= e.seq) return false;  // stale broadcast
  e.available = info.available_bytes;
  e.seq = info.seq;
  e.updated = now;
  e.valid = true;
  e.dead = false;  // a live heartbeat revives a suspected node
  return true;
}

std::int64_t MemoryBroker::available(net::NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return 0;
  return it->second.available;
}

bool MemoryBroker::expired(net::NodeId node, Time now) const {
  if (max_age_ <= 0) return false;
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return false;
  return now - it->second.updated > max_age_;
}

void MemoryBroker::mark_dead(net::NodeId node) {
  const auto it = entries_.find(node);
  RMS_CHECK_MSG(it != entries_.end(), "mark_dead on an unregistered node");
  it->second.dead = true;
}

bool MemoryBroker::dead(net::NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() && it->second.dead;
}

void MemoryBroker::quarantine(net::NodeId node) {
  const auto it = entries_.find(node);
  RMS_CHECK_MSG(it != entries_.end(), "quarantine on an unregistered node");
  it->second.quarantined = true;
}

bool MemoryBroker::quarantined(net::NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() && it->second.quarantined;
}

Time MemoryBroker::last_update(net::NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return -1;
  return it->second.updated;
}

Time MemoryBroker::oldest_report_age(Time now) const {
  Time oldest = 0;
  for (const net::NodeId n : memory_nodes_) {
    const auto it = entries_.find(n);
    if (it == entries_.end() || !it->second.valid || it->second.dead) continue;
    oldest = std::max(oldest, now - it->second.updated);
  }
  return oldest;
}

void MemoryBroker::debit(net::NodeId node, std::int64_t bytes) {
  const auto it = entries_.find(node);
  if (it == entries_.end() || !it->second.valid) return;
  it->second.available =
      it->second.available >= bytes ? it->second.available - bytes : 0;
}

}  // namespace rms::placement
