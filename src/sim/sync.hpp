// Synchronization primitives built on the kernel: one-shot Trigger and
// reusable counting Barrier. HPA's per-pass phase changes use Barrier; fault
// injection and shutdown use Trigger.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "sim/simulation.hpp"

namespace rms::sim {

/// One-shot broadcast event. Awaiters suspend until fire(); awaiting a fired
/// trigger resumes immediately.
class Trigger {
 public:
  explicit Trigger(Simulation& sim) : sim_(sim) {}

  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) sim_.schedule_now(h);
    waiters_.clear();
  }

  bool fired() const { return fired_; }

  auto wait() {
    struct Awaiter {
      Trigger* t;
      bool await_ready() const noexcept { return t->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation& sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Reusable counting barrier for `parties` processes. The Nth arrival wakes
/// everyone and resets the barrier for the next phase (generation counter
/// guards against same-instant re-entry).
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties)
      : sim_(sim), parties_(parties) {
    RMS_CHECK(parties_ > 0);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  auto arrive() {
    struct Awaiter {
      Barrier* b;
      bool await_ready() {
        if (b->arrived_ + 1 == b->parties_) {
          // Last arrival: release the cohort and pass through.
          b->arrived_ = 0;
          ++b->generation_;
          for (auto h : b->waiters_) b->sim_.schedule_now(h);
          b->waiters_.clear();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++b->arrived_;
        b->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  std::uint64_t generation() const { return generation_; }

 private:
  Simulation& sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace rms::sim
