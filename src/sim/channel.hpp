// Channel<T>: an unbounded, awaitable FIFO mailbox between processes.
//
// send() never blocks (the simulated transports impose their own flow
// control through net::Network / sim::Resource); recv() suspends the caller
// until a value arrives. Values are delivered in send order, and a waiting
// receiver is woken through the event queue so same-instant interleavings
// stay deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "sim/simulation.hpp"

namespace rms::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(sim) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deposit a value; wakes the longest-waiting receiver, if any.
  void send(T value) {
    if (!waiters_.empty()) {
      RecvAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->value.emplace(std::move(value));
      sim_.schedule_now(w->handle);
      return;
    }
    items_.push_back(std::move(value));
  }

  /// Awaitable receive; resumes with the next value in FIFO order.
  auto recv() { return RecvAwaiter{this}; }

  /// Non-blocking receive: returns nullopt if the queue is empty.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t pending() const { return items_.size(); }
  std::size_t waiting_receivers() const { return waiters_.size(); }

 private:
  struct RecvAwaiter {
    Channel* ch = nullptr;
    std::optional<T> value{};
    std::coroutine_handle<> handle{};

    bool await_ready() {
      if (ch->items_.empty()) return false;
      value.emplace(std::move(ch->items_.front()));
      ch->items_.pop_front();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch->waiters_.push_back(this);
    }
    T await_resume() {
      RMS_CHECK(value.has_value());
      return std::move(*value);
    }
  };

  Simulation& sim_;
  std::deque<T> items_;
  std::deque<RecvAwaiter*> waiters_;
};

}  // namespace rms::sim
