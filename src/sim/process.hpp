// Process: the coroutine type for simulation activities.
//
// A process is any coroutine returning `Process`. It starts suspended;
// `Simulation::spawn` schedules its first step at the current virtual time.
// Co_awaiting a Process suspends the awaiter until that process finishes
// (join). The coroutine frame self-destroys on completion; join handles
// outlive it through a small shared control block.
//
// Example:
//   sim::Process server(sim::Simulation& sim, sim::Channel<int>& in) {
//     for (;;) {
//       int request = co_await in.recv();
//       co_await sim.timeout(msec(2));  // service time
//       ...
//     }
//   }
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "sim/simulation.hpp"

namespace rms::sim {

struct Simulation::ProcessState {
  std::coroutine_handle<> handle;  // null once the frame is gone
  Simulation* sim = nullptr;
  bool started = false;
  bool done = false;
  std::vector<std::coroutine_handle<>> joiners;

  ~ProcessState() {
    // A process that was never spawned still owns its frame.
    if (handle && !started) handle.destroy();
  }
};

class Process {
 public:
  using State = Simulation::ProcessState;

  struct promise_type {
    // Weak so the frame does not keep its own control block alive: an
    // unspawned Process must reclaim the frame when the last handle drops
    // (the Simulation owns a strong reference for every spawned process).
    std::weak_ptr<State> state;

    Process get_return_object() {
      auto st = std::make_shared<State>();
      st->handle = std::coroutine_handle<promise_type>::from_promise(*this);
      state = st;
      return Process{std::move(st)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Mark completion and wake joiners through the scheduler (never
        // resume inline: determinism requires all wakeups to be ordered by
        // the event queue), then reclaim the frame.
        const std::shared_ptr<State> st = h.promise().state.lock();
        RMS_CHECK_MSG(st != nullptr,
                      "running process lost its control block");
        st->done = true;
        st->handle = nullptr;
        if (!st->joiners.empty()) {
          RMS_CHECK_MSG(st->sim != nullptr, "joined process was never spawned");
          for (auto j : st->joiners) st->sim->schedule_now(j);
          st->joiners.clear();
        }
        h.destroy();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    [[noreturn]] void unhandled_exception() {
      // Simulation processes must handle their own errors; an escaping
      // exception would leave the virtual world in an undefined state.
      RMS_CHECK_MSG(false, "exception escaped a sim::Process");
      __builtin_unreachable();
    }
  };

  /// True once the coroutine has run to completion.
  bool done() const { return state_->done; }

  /// Join: suspend until this process completes. Completed processes resume
  /// immediately.
  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        RMS_CHECK_MSG(st->started, "co_await on a process that was not spawned");
        st->joiners.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  friend class Simulation;
  explicit Process(std::shared_ptr<State> st) : state_(std::move(st)) {}

  std::shared_ptr<State> state_;
};

}  // namespace rms::sim
