// Deterministic discrete-event simulation kernel.
//
// The whole cluster (nodes, network ports, disks, monitor daemons) runs as
// C++20 coroutine processes over one virtual clock. A single OS thread and a
// (time, sequence)-ordered event queue make every run bit-reproducible: two
// events at the same virtual instant fire in the order they were scheduled.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace rms::sim {

class Process;

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Resume `h` at absolute virtual time `at` (>= now).
  void schedule(Time at, std::coroutine_handle<> h);

  /// Resume `h` at the current virtual instant, after already-queued events
  /// for this instant.
  void schedule_now(std::coroutine_handle<> h) { schedule(now_, h); }

  /// Invoke `fn` at absolute virtual time `at`. Used for fault injection
  /// ("at t=120s, withdraw memory node 3").
  void call_at(Time at, std::function<void()> fn);

  /// Awaitable that suspends the calling process for `delay` (>= 0).
  auto timeout(Time delay) {
    RMS_CHECK(delay >= 0);
    struct Awaiter {
      Simulation& sim;
      Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, now_ + delay};
  }

  /// Start a process; it begins executing at the current virtual time.
  /// Returns a join handle (copy of the process) that can be co_awaited.
  Process spawn(Process p);

  /// Run until the event queue drains or `request_stop` is called. Returns
  /// the final virtual time.
  Time run();

  /// Halt `run`/`run_until` after the current event. Used by experiment
  /// coordinators once the workload completes while daemon processes
  /// (monitors, servers) still have timers pending.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Destroy every still-suspended process frame and drop pending events.
  /// Call before tearing down objects the processes reference (channels,
  /// resources, nodes); the destructor calls it as a backstop.
  void shutdown();

  /// Run all events with timestamp <= `until`; afterwards now() == until if
  /// the queue outlived the horizon. Returns true if events remain.
  bool run_until(Time until);

  /// Number of events executed so far (for kernel tests and budgeting).
  std::uint64_t executed_events() const { return executed_; }

 private:
  friend class Process;

  struct Event {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;       // either handle...
    std::function<void()> fn;             // ...or callback
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event& ev);

  // Spawned-process bookkeeping so suspended frames are reclaimed at
  // teardown (servers waiting on channels when the run ends).
  struct ProcessState;
  void adopt(std::shared_ptr<ProcessState> st);

  Time now_ = 0;
  bool stop_requested_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::shared_ptr<ProcessState>> processes_;
};

}  // namespace rms::sim
