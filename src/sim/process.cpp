#include "sim/process.hpp"

// Process is header-only; this TU exists so the module has a home in the
// library target and a place for future non-inline diagnostics.
