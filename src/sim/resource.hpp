// Resource: a counted FCFS server — the queueing primitive behind disk arms,
// network ports and memory-server CPUs.
//
// `co_await res.acquire()` returns an RAII Lease; destroying the lease hands
// the slot to the next waiter (through the event queue). With capacity 1
// this is exactly the FCFS single-server queue whose contention produces the
// paper's "memory available node becomes the bottleneck" effect (Figure 3).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/check.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace rms::sim {

class Resource;

/// RAII ownership of one resource slot.
class Lease {
 public:
  Lease() = default;
  explicit Lease(Resource* r) : res_(r) {}
  Lease(Lease&& o) noexcept : res_(std::exchange(o.res_, nullptr)) {}
  Lease& operator=(Lease&& o) noexcept {
    if (this != &o) {
      release();
      res_ = std::exchange(o.res_, nullptr);
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { release(); }

  /// Release early (idempotent).
  void release();

  bool holds() const { return res_ != nullptr; }

 private:
  Resource* res_ = nullptr;
};

class Resource {
 public:
  Resource(Simulation& sim, std::int64_t capacity)
      : sim_(sim), capacity_(capacity) {
    RMS_CHECK(capacity_ > 0);
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable acquire; resumes holding a Lease.
  auto acquire() { return AcquireAwaiter{this}; }

  std::int64_t capacity() const { return capacity_; }
  std::int64_t in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

  /// Total completed acquisitions (for utilization accounting in tests).
  std::uint64_t total_acquired() const { return total_acquired_; }

 private:
  friend class Lease;

  struct AcquireAwaiter {
    Resource* res;
    bool await_ready() {
      if (res->in_use_ < res->capacity_) {
        ++res->in_use_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      res->waiters_.push_back(h);
    }
    Lease await_resume() {
      // Slot was counted either in await_ready or transferred by release().
      ++res->total_acquired_;
      return Lease{res};
    }
  };

  void release_slot() {
    if (!waiters_.empty()) {
      // Transfer the slot directly to the next waiter; in_use_ unchanged.
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_now(h);
      return;
    }
    RMS_CHECK(in_use_ > 0);
    --in_use_;
  }

  Simulation& sim_;
  std::int64_t capacity_;
  std::int64_t in_use_ = 0;
  std::uint64_t total_acquired_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

inline void Lease::release() {
  if (res_ != nullptr) {
    Resource* r = std::exchange(res_, nullptr);
    r->release_slot();
  }
}

}  // namespace rms::sim
