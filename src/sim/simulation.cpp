#include "sim/simulation.hpp"

#include "sim/process.hpp"

namespace rms::sim {

Simulation::~Simulation() { shutdown(); }

void Simulation::shutdown() {
  // Reclaim frames of processes still suspended (e.g. servers blocked on a
  // channel when the run ended). Destroying a suspended coroutine runs the
  // destructors of its locals (leases release, RAII unwinds), so this must
  // happen while the objects those locals reference are still alive.
  stop_requested_ = true;
  for (auto& st : processes_) {
    if (st->handle && st->started) {
      auto h = st->handle;
      st->handle = nullptr;
      h.destroy();
    }
  }
  processes_.clear();
  // Pending events may hold handles into the frames just destroyed; they
  // must never run.
  while (!queue_.empty()) queue_.pop();
}

void Simulation::schedule(Time at, std::coroutine_handle<> h) {
  RMS_CHECK_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(Event{at, seq_++, h, {}});
}

void Simulation::call_at(Time at, std::function<void()> fn) {
  RMS_CHECK_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(Event{at, seq_++, nullptr, std::move(fn)});
}

void Simulation::adopt(std::shared_ptr<ProcessState> st) {
  processes_.push_back(std::move(st));
}

Process Simulation::spawn(Process p) {
  auto& st = p.state_;
  RMS_CHECK_MSG(!st->started, "process spawned twice");
  st->sim = this;
  st->started = true;
  adopt(st);
  schedule(now_, st->handle);
  return p;
}

void Simulation::dispatch(Event& ev) {
  now_ = ev.at;
  ++executed_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.fn();
  }
}

Time Simulation::run() {
  while (!queue_.empty() && !stop_requested_) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  return now_;
}

bool Simulation::run_until(Time until) {
  RMS_CHECK(until >= now_);
  while (!queue_.empty() && !stop_requested_ && queue_.top().at <= until) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  now_ = until;
  return !queue_.empty();
}

}  // namespace rms::sim
