// Task<T>: a lazy, awaitable sub-operation within a Process.
//
// Process is the unit of concurrency (spawned, scheduled); Task is the unit
// of composition (a blocking sub-call such as a disk access or an RPC).
// `co_await disk.read(...)` starts the task inline via symmetric transfer,
// and the task resumes its caller when it finishes — all on the same virtual
// timeline, with no extra scheduler round-trips.
//
// Lifetime: a Task must be awaited exactly once; the temporary returned by
// the callee lives in the awaiting coroutine's frame for the duration of the
// await-expression, which is exactly the task's lifetime.
#pragma once

#include <coroutine>
#include <utility>

#include "common/check.hpp"

namespace rms::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Hand control straight back to the awaiter (symmetric transfer).
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  [[noreturn]] void unhandled_exception() {
    RMS_CHECK_MSG(false, "exception escaped a sim::Task");
    __builtin_unreachable();
  }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    T value{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;  // start the task now
      }
      T await_resume() { return std::move(h.promise().value); }
    };
    RMS_CHECK_MSG(h_ && !h_.done(), "Task awaited twice or moved-from");
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const noexcept {}
    };
    RMS_CHECK_MSG(h_ && !h_.done(), "Task awaited twice or moved-from");
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace rms::sim
