// Fixed-width console table printer used by the experiment harnesses.
//
// Every bench binary reproduces one table or figure from the paper and prints
// it in the same row/series layout; this helper keeps that output aligned and
// can mirror rows to a CSV file for plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rms {

class TablePrinter {
 public:
  /// `title` is printed above the header, e.g. "Figure 3: execution time...".
  explicit TablePrinter(std::string title, std::vector<std::string> columns);

  /// Append one row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  /// Render the table to stdout.
  void print() const;

  /// Write the table (header + rows) as CSV to `path`. Returns false if the
  /// file could not be opened.
  bool write_csv(const std::string& path) const;

  /// Format helpers for cells.
  static std::string num(double v, int precision = 1);
  static std::string integer(std::int64_t v);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rms
