// Lightweight runtime checks, enabled in all build types.
//
// The simulator is a research instrument: violated invariants must abort
// loudly rather than silently corrupt an experiment, including in Release
// builds (P.6/P.7 of the C++ Core Guidelines: make run-time errors checkable
// and catch them early).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rms::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "RMS_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace rms::detail

/// Abort with a diagnostic if `expr` is false. Always on.
#define RMS_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::rms::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                  \
  } while (false)

/// RMS_CHECK with an explanatory message.
#define RMS_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::rms::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)
