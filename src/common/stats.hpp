// Counters and summary statistics collected during a simulation run.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace rms {

/// Running summary of a stream of samples (count / sum / min / max / mean).
/// Used for latency and queue-length observations; cheap enough to keep per
/// node and per device.
class Summary {
 public:
  void add(double v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  void merge(const Summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-memory latency histogram with logarithmic buckets (2% resolution)
/// supporting percentile queries. Values are expected in milliseconds but
/// any positive unit works; zero/negative values land in the first bucket.
class Histogram {
 public:
  void add(double v) {
    ++total_;
    summary_.add(v);
    ++buckets_[bucket_of(v)];
  }

  std::uint64_t count() const { return total_; }
  const Summary& summary() const { return summary_; }

  /// Value at percentile p in [0, 1]; returns the bucket's representative
  /// value (upper edge), 0 if empty.
  double percentile(double p) const {
    if (total_ == 0) return 0.0;
    RMS_CHECK(p >= 0.0 && p <= 1.0);
    // A single sample IS every percentile; the bucket upper edge would
    // over-report it (and disagree with summary().max()).
    if (total_ == 1) return summary_.max();
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= target) return upper_edge(b);
    }
    return upper_edge(kBuckets - 1);
  }

  void merge(const Histogram& other) {
    total_ += other.total_;
    summary_.merge(other.summary_);
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

 private:
  // Buckets span [kMin, kMin * kGrowth^kBuckets): 1 us .. ~1000 s in ms
  // units at 7% growth.
  static constexpr double kMin = 1e-3;
  static constexpr double kGrowth = 1.07;
  static constexpr std::size_t kBuckets = 310;

  // log(kGrowth) is not constexpr-computable portably; cache it (and its
  // reciprocal, so bucket_of does a single log) in function-local statics.
  static double log_growth() {
    static const double v = std::log(kGrowth);
    return v;
  }
  static double inv_log_growth() {
    static const double v = 1.0 / std::log(kGrowth);
    return v;
  }

  static std::size_t bucket_of(double v) {
    if (v <= kMin) return 0;
    const double idx = std::log(v / kMin) * inv_log_growth();
    const auto b = static_cast<std::size_t>(idx) + 1;
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  static double upper_edge(std::size_t b) {
    return kMin * std::exp(static_cast<double>(b) * log_growth());
  }

  std::uint64_t total_ = 0;
  Summary summary_;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// A named bag of counters and summaries. Components hold a `StatsRegistry`
/// and tests/benches read it after the run; names are stable identifiers
/// (e.g. "pagefaults", "swap_out_bytes").
class StatsRegistry {
 public:
  /// Increment a named counter.
  void bump(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Stable reference to a named counter for hot-path increments (std::map
  /// nodes never move, so the reference survives later insertions). The
  /// counter participates in counter()/counters()/merge() as usual. The
  /// reference is invalidated by clear().
  std::int64_t& slot(const std::string& name) { return counters_[name]; }

  /// Record a named sample.
  void sample(const std::string& name, double v) { summaries_[name].add(v); }

  /// Record a named sample into a percentile histogram (heavier than
  /// `sample`; use for latency distributions worth quantiles).
  void record(const std::string& name, double v) { histograms_[name].add(v); }

  /// Stable pointer to a named histogram for hot-path recording (std::map
  /// node stability, as with slot()). Invalidated by clear().
  Histogram* histogram_mut(const std::string& name) {
    return &histograms_[name];
  }

  std::int64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  const Summary& summary(const std::string& name) const {
    static const Summary kEmpty;
    const auto it = summaries_.find(name);
    return it == summaries_.end() ? kEmpty : it->second;
  }

  const Histogram& histogram(const std::string& name) const {
    static const Histogram kEmpty;
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? kEmpty : it->second;
  }

  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void merge(const StatsRegistry& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
    for (const auto& [k, v] : other.summaries_) summaries_[k].merge(v);
    for (const auto& [k, v] : other.histograms_) histograms_[k].merge(v);
  }

  void clear() {
    counters_.clear();
    summaries_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Summary> summaries_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rms
