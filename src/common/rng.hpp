// Deterministic random number generation.
//
// Every stochastic component of the simulator (workload generator, disk seek
// jitter, itemset corruption, ...) draws from its own explicitly-seeded
// stream so that experiments are bit-reproducible and adding randomness to
// one component never perturbs another.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace rms {

/// PCG32 (O'Neill): small, fast, statistically solid, and fully portable —
/// unlike std::mt19937 it has a tiny state and trivially seedable streams.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// `seed` selects the starting point, `stream` selects one of 2^63
  /// independent sequences.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    (void)next();
    state_ += seed;
    (void)next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform in [0, bound). Uses Lemire-style rejection to avoid modulo bias.
  std::uint32_t below(std::uint32_t bound) {
    RMS_CHECK(bound > 0);
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    RMS_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Two draws to cover 64-bit spans.
    const std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
    return lo + static_cast<std::int64_t>(r % span);
  }

  /// True with probability `p`.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Uniform double in [0, 1) with full 53-bit resolution.
  double uniform01() {
    const std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
    return static_cast<double>(r >> 11) * 0x1.0p-53;
  }

  /// Poisson-distributed value with the given mean (Knuth for small means,
  /// normal approximation clamped at zero for large ones).
  std::uint32_t poisson(double mean);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal();

 private:
  result_type next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

inline double Pcg32::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * __builtin_log(u);
}

inline double Pcg32::normal() {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(6.283185307179586 * u2);
}

inline std::uint32_t Pcg32::poisson(double mean) {
  RMS_CHECK(mean >= 0.0);
  if (mean < 30.0) {
    const double limit = __builtin_exp(-mean);
    double prod = uniform01();
    std::uint32_t n = 0;
    while (prod > limit) {
      prod *= uniform01();
      ++n;
    }
    return n;
  }
  const double v = mean + __builtin_sqrt(mean) * normal();
  return v <= 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
}

}  // namespace rms
