#include "common/stats.hpp"

// Header-only today; this TU anchors the library target and keeps room for
// heavier reporting (percentile digests) without touching the header.
