// Virtual time for the cluster simulator.
//
// All simulated timestamps and durations are integer nanoseconds. Integer
// time keeps the discrete-event kernel deterministic across platforms and
// makes equality comparisons in tests exact.
#pragma once

#include <cstdint>

namespace rms {

/// A point in virtual time or a duration, in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Construct durations readably: `usec(12)`, `msec(3)`, `sec(5)`.
constexpr Time nsec(std::int64_t n) { return n; }
constexpr Time usec(std::int64_t n) { return n * kMicrosecond; }
constexpr Time msec(std::int64_t n) { return n * kMillisecond; }
constexpr Time sec(std::int64_t n) { return n * kSecond; }

/// Convert a virtual duration to floating-point seconds (for reports only).
constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

/// Convert a virtual duration to floating-point milliseconds.
constexpr double to_millis(Time t) { return static_cast<double>(t) / 1e6; }

/// Duration of transmitting `bytes` at `bits_per_second` (rounded up).
constexpr Time transmit_time(std::int64_t bytes, std::int64_t bits_per_second) {
  // bytes * 8 bits / (bits/s) seconds -> nanoseconds.
  const std::int64_t bits = bytes * 8;
  return (bits * kSecond + bits_per_second - 1) / bits_per_second;
}

}  // namespace rms
