// Tiny command-line flag parser for the bench / example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags abort with a usage message so experiment typos never silently run
// the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rms {

class Flags {
 public:
  /// Parse argv. `spec` maps flag name -> help text; only flags in the spec
  /// are accepted.
  Flags(int argc, const char* const* argv,
        std::map<std::string, std::string> spec);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Render the usage text built from the spec.
  std::string usage() const;

 private:
  std::string program_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rms
