#include "common/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/check.hpp"

namespace rms {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  RMS_CHECK(!columns_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RMS_CHECK_MSG(cells.size() == columns_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::printf("\n%s\n", title_.c_str());
  auto rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("+-");
      for (std::size_t i = 0; i < width[c]; ++i) std::printf("-");
      std::printf("-");
    }
    std::printf("+\n");
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("| %-*s ", static_cast<int>(width[c]), cells[c].c_str());
    }
    std::printf("|\n");
  };
  rule();
  line(columns_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

bool TablePrinter::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(f, "%s%s", cells[c].c_str(),
                   c + 1 == cells.size() ? "\n" : ",");
    }
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  std::fclose(f);
  return true;
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::integer(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace rms
