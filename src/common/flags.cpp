#include "common/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace rms {
namespace {

[[noreturn]] void die(const std::string& msg, const std::string& usage) {
  std::fprintf(stderr, "error: %s\n%s", msg.c_str(), usage.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             std::map<std::string, std::string> spec)
    : program_(argc > 0 ? argv[0] : "prog"), spec_(std::move(spec)) {
  spec_.emplace("help", "show this help");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--flag value` form: consume the next token if it is not a flag and
      // the spec expects a value (heuristic: next token exists and does not
      // start with --).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (spec_.find(name) == spec_.end()) {
      die("unknown flag --" + name, usage());
    }
    values_[name] = value;
  }
  if (has("help")) {
    std::printf("%s", usage().c_str());
    std::exit(0);
  }
}

bool Flags::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& [name, help] : spec_) {
    out += "  --" + name + ": " + help + "\n";
  }
  return out;
}

}  // namespace rms
