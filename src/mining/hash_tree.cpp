#include "mining/hash_tree.hpp"

namespace rms::mining {

HashTree::HashTree(std::size_t k, std::size_t fanout,
                   std::size_t leaf_capacity)
    : k_(k), fanout_(fanout), leaf_capacity_(leaf_capacity) {
  RMS_CHECK(k_ >= 1 && k_ <= Itemset::kMaxK);
  RMS_CHECK(fanout_ >= 2);
  RMS_CHECK(leaf_capacity_ >= 1);
}

void HashTree::insert(const Itemset& candidate) {
  RMS_CHECK(candidate.size() == k_);
  insert_into(root_, 0, candidate);
  ++size_;
}

void HashTree::insert_into(Node& node, std::size_t depth,
                           const Itemset& candidate) {
  Node* n = &node;
  std::size_t d = depth;
  while (!n->leaf) {
    n = n->children[hash_item(candidate[d])].get();
    ++d;
  }
  n->bucket.push_back(CountedItemset{candidate, 0});
  // Interior nodes hash on the item at their depth, so a leaf can only
  // split while depth < k.
  if (n->bucket.size() > leaf_capacity_ && d < k_) split(*n, d);
}

void HashTree::split(Node& node, std::size_t depth) {
  std::vector<CountedItemset> bucket = std::move(node.bucket);
  node.bucket.clear();
  node.leaf = false;
  node.children.resize(fanout_);
  for (auto& c : node.children) c = std::make_unique<Node>();
  for (CountedItemset& e : bucket) {
    Node& child = *node.children[hash_item(e.items[depth])];
    child.bucket.push_back(std::move(e));
  }
  // A skewed hash may leave one child overfull; split recursively.
  for (auto& c : node.children) {
    if (c->bucket.size() > leaf_capacity_ && depth + 1 < k_) {
      split(*c, depth + 1);
    }
  }
}

void HashTree::count_transaction(std::span<const Item> tx,
                                 bool short_circuit) {
  if (tx.size() < k_) return;
  count_in(root_, tx, 0, 0, short_circuit);
}

void HashTree::count_in(Node& node, std::span<const Item> tx,
                        std::size_t start, std::size_t depth,
                        bool short_circuit) {
  if (node.leaf) {
    for (CountedItemset& e : node.bucket) {
      ++comparisons_;
      // The path already matched items [0, depth) by hash value; verify the
      // full candidate against the transaction suffix.
      if (e.items.subset_of(tx.data(), tx.data() + tx.size())) ++e.count;
    }
    return;
  }
  // Descend on each remaining transaction item. With short-circuiting, stop
  // once too few items remain to complete a k-subset.
  const std::size_t needed = k_ - depth;
  const std::size_t limit =
      short_circuit && tx.size() >= needed ? tx.size() - needed + 1
                                           : tx.size();
  // Visit each child at most once per distinct hash value.
  std::vector<char> visited(fanout_, 0);
  for (std::size_t i = start; i < limit; ++i) {
    const std::size_t h = hash_item(tx[i]);
    if (visited[h] != 0) continue;
    visited[h] = 1;
    count_in(*node.children[h], tx, i + 1, depth + 1, short_circuit);
  }
}

std::vector<CountedItemset> HashTree::entries() const {
  std::vector<CountedItemset> out;
  out.reserve(size_);
  collect(root_, out);
  return out;
}

void HashTree::collect(const Node& node, std::vector<CountedItemset>& out) const {
  if (node.leaf) {
    out.insert(out.end(), node.bucket.begin(), node.bucket.end());
    return;
  }
  for (const auto& c : node.children) collect(*c, out);
}

}  // namespace rms::mining
