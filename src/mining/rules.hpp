// Association-rule derivation from mined large itemsets.
//
// The paper mines large itemsets and notes that "association rules that
// satisfy user-specified minimum confidence can be derived from these large
// itemsets" (§2.1); this module performs that final step (the classic
// "if customers buy A and B then 90% of them also buy C" output).
#pragma once

#include <vector>

#include "mining/apriori.hpp"
#include "mining/itemset.hpp"

namespace rms::mining {

struct Rule {
  Itemset antecedent;   // "customers buy A and B"
  Itemset consequent;   // "... also buy C"
  double support = 0;   // fraction of transactions containing A ∪ C
  double confidence = 0;  // supp(A ∪ C) / supp(A)

  std::string to_string() const;
};

/// Derive every rule with confidence >= `min_confidence` from the mining
/// result. Rules are sorted by descending confidence, then support.
std::vector<Rule> derive_rules(const AprioriResult& mined,
                               double min_confidence);

}  // namespace rms::mining
