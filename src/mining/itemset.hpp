// Itemset: a small sorted set of item ids, stored inline.
//
// Association-rule mining manipulates millions of these, so the type is a
// fixed-capacity value (no heap): up to kMaxK items plus a length byte.
// Itemsets are always kept sorted ascending, which makes the Apriori join
// step and subset tests linear.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace rms::mining {

using Item = std::uint32_t;

class Itemset {
 public:
  static constexpr std::size_t kMaxK = 8;

  Itemset() = default;

  /// From a sorted, duplicate-free list.
  Itemset(std::initializer_list<Item> items) {
    for (Item it : items) push_back(it);
  }

  /// Append an item greater than the current maximum.
  void push_back(Item item) {
    RMS_CHECK_MSG(size_ < kMaxK, "itemset capacity exceeded");
    RMS_CHECK_MSG(size_ == 0 || items_[size_ - 1] < item,
                  "items must be appended in ascending order");
    items_[size_++] = item;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Item operator[](std::size_t i) const {
    RMS_CHECK(i < size_);
    return items_[i];
  }
  Item front() const { return (*this)[0]; }
  Item back() const { return (*this)[size_ - 1]; }

  const Item* begin() const { return items_.data(); }
  const Item* end() const { return items_.data() + size_; }

  /// The k-1 prefix (for the Apriori join).
  Itemset prefix() const {
    RMS_CHECK(size_ > 0);
    Itemset p;
    for (std::size_t i = 0; i + 1 < size_; ++i) p.push_back(items_[i]);
    return p;
  }

  /// Itemset with element `drop` removed (for prune / rule generation).
  Itemset without(std::size_t drop) const {
    RMS_CHECK(drop < size_);
    Itemset r;
    for (std::size_t i = 0; i < size_; ++i) {
      if (i != drop) r.push_back(items_[i]);
    }
    return r;
  }

  /// Itemset extended by one larger item.
  Itemset with(Item item) const {
    Itemset r = *this;
    r.push_back(item);
    return r;
  }

  /// True if *this is a subset of the sorted range [b, e).
  bool subset_of(const Item* b, const Item* e) const {
    const Item* p = b;
    for (std::size_t i = 0; i < size_; ++i) {
      while (p != e && *p < items_[i]) ++p;
      if (p == e || *p != items_[i]) return false;
      ++p;
    }
    return true;
  }

  bool operator==(const Itemset& o) const {
    if (size_ != o.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (items_[i] != o.items_[i]) return false;
    }
    return true;
  }

  bool operator<(const Itemset& o) const {
    const std::size_t n = size_ < o.size_ ? size_ : o.size_;
    for (std::size_t i = 0; i < n; ++i) {
      if (items_[i] != o.items_[i]) return items_[i] < o.items_[i];
    }
    return size_ < o.size_;
  }

  /// Stable 64-bit hash (FNV-1a over the items); identical across runs and
  /// platforms, so candidate partitioning is reproducible.
  std::uint64_t hash() const {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < size_; ++i) {
      h ^= items_[i];
      h *= 1099511628211ULL;
      h ^= h >> 29;
    }
    return h;
  }

  /// Paper's memory accounting: each candidate itemset occupies 24 bytes
  /// (structure area + data area, §5.1), independent of k.
  static constexpr std::int64_t kAccountedBytes = 24;

  std::string to_string() const;

 private:
  std::array<Item, kMaxK> items_{};
  std::uint8_t size_ = 0;
};

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    return static_cast<std::size_t>(s.hash());
  }
};

/// A counted candidate: the unit the paper's hash lines store (24 bytes of
/// accounted memory per entry).
struct CountedItemset {
  Itemset items;
  std::uint32_t count = 0;
};

}  // namespace rms::mining
