// Hash tree for candidate support counting (Agrawal–Srikant VLDB'94).
//
// EXTENSION MODULE — the target paper stores candidates in hash lines; the
// hash tree is the classic alternative and the subject of the shared-memory
// optimization literature. It is included for the ablation bench
// (`bench_ext_hashtree`) comparing the two structures and measuring the
// effect of short-circuited subset checking (skipping subtree descents that
// cannot produce a match because too few transaction items remain).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "mining/itemset.hpp"

namespace rms::mining {

class HashTree {
 public:
  /// `k` is the candidate size; `fanout` the interior hash width; leaves
  /// split once they exceed `leaf_capacity` (unless already at depth k).
  HashTree(std::size_t k, std::size_t fanout = 32,
           std::size_t leaf_capacity = 16);

  void insert(const Itemset& candidate);

  /// Increment the count of every candidate contained in the (sorted)
  /// transaction. With `short_circuit`, descents that cannot complete a
  /// k-subset are pruned.
  void count_transaction(std::span<const Item> tx, bool short_circuit = true);

  /// Collect all (itemset, count) entries.
  std::vector<CountedItemset> entries() const;

  std::size_t size() const { return size_; }

  /// Number of candidate-vs-transaction comparisons performed so far — the
  /// metric the short-circuiting ablation reports.
  std::uint64_t comparisons() const { return comparisons_; }

 private:
  struct Node {
    bool leaf = true;
    std::vector<CountedItemset> bucket;            // when leaf
    std::vector<std::unique_ptr<Node>> children;   // when interior
  };

  std::size_t hash_item(Item it) const { return it % fanout_; }
  void insert_into(Node& node, std::size_t depth, const Itemset& candidate);
  void split(Node& node, std::size_t depth);
  void count_in(Node& node, std::span<const Item> tx, std::size_t start,
                std::size_t depth, bool short_circuit);
  void collect(const Node& node, std::vector<CountedItemset>& out) const;

  std::size_t k_;
  std::size_t fanout_;
  std::size_t leaf_capacity_;
  std::size_t size_ = 0;
  std::uint64_t comparisons_ = 0;
  Node root_;
};

}  // namespace rms::mining
