// Synthetic basket-data generator (Agrawal–Srikant, VLDB'94 §2.4.3 — the
// IBM Quest generator the paper used to produce its transaction files).
//
// The generator first draws a table of "potential maximal itemsets"
// (customer behaviour patterns) and then assembles each transaction from a
// weighted mixture of those patterns, corrupting them to model partial
// purchases. Workloads are named like the literature: Txx = average
// transaction size, Iyy = average pattern size, Dzz = transaction count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mining/itemset.hpp"
#include "mining/transaction_db.hpp"

namespace rms::mining {

struct QuestParams {
  std::int64_t num_transactions = 100'000;  // D
  std::uint32_t num_items = 5'000;          // N
  double avg_transaction_size = 10.0;       // |T|
  double avg_pattern_size = 4.0;            // |I|
  std::int64_t num_patterns = 2'000;        // |L|
  double correlation = 0.5;   // fraction of items shared with previous pattern
  double corruption_mean = 0.5;  // mean per-pattern corruption level
  std::uint64_t seed = 20000501;  // IPPS 2000 vintage

  /// The paper's experiment workload (§5.1): 1 M tx, 5,000 items — scaled
  /// by `scale` on the transaction count only (candidate volume is governed
  /// by minimum support, not D; see DESIGN.md §2).
  static QuestParams paper_experiment(double scale = 0.1);

  /// The paper's Table 2 workload (§3.3): 10 M tx, 5,000 items.
  static QuestParams paper_table2(double scale = 0.01);
};

class QuestGenerator {
 public:
  explicit QuestGenerator(QuestParams params);

  /// Generate the whole database.
  TransactionDb generate();

  /// Generate a single transaction (exposed for tests and streaming use).
  std::vector<Item> next_transaction();

  const QuestParams& params() const { return params_; }

 private:
  struct Pattern {
    std::vector<Item> items;      // sorted
    double corruption = 0.5;      // probability an item is dropped
  };

  void build_patterns();
  std::size_t pick_pattern();

  QuestParams params_;
  Pcg32 rng_;
  std::vector<Pattern> patterns_;
  std::vector<double> cumulative_weight_;  // for roulette selection
  std::vector<Item> carry_;  // pattern deferred to the next transaction
};

}  // namespace rms::mining
