#include "mining/itemset.hpp"

#include <cstdio>

namespace rms::mining {

std::string Itemset::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < size_; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%s%u", i == 0 ? "" : ",", items_[i]);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace rms::mining
