#include "mining/hash_line_table.hpp"

// Header-only; anchors the TU in the library target.
