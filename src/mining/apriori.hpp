// Sequential Apriori miner (Agrawal–Srikant), the reference algorithm the
// paper parallelizes. Used directly by examples and as ground truth for the
// HPA cluster runs: every swap policy must produce byte-identical large
// itemsets.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "mining/candidate_gen.hpp"
#include "mining/hash_line_table.hpp"
#include "mining/itemset.hpp"
#include "mining/transaction_db.hpp"

namespace rms::mining {

/// Enumerate the size-k subsets of sorted `items`, streaming each as an
/// Itemset. Items are filtered through `keep` first (pass-1 pruning: only
/// large-1 items can appear in a large k-itemset).
template <typename Keep, typename Fn>
void for_each_k_subset(std::span<const Item> items, std::size_t k,
                       const Keep& keep, Fn&& fn) {
  RMS_CHECK(k >= 1 && k <= Itemset::kMaxK);
  std::vector<Item> filtered;
  filtered.reserve(items.size());
  for (Item it : items) {
    if (keep(it)) filtered.push_back(it);
  }
  if (filtered.size() < k) return;

  // Iterative combination walk over `filtered`.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    Itemset s;
    for (std::size_t i = 0; i < k; ++i) s.push_back(filtered[idx[i]]);
    fn(s);
    // Advance.
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (idx[pos] != pos + filtered.size() - k) break;
      if (pos == 0) return;
    }
    if (idx[pos] == pos + filtered.size() - k) return;
    ++idx[pos];
    for (std::size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
}

struct PassInfo {
  std::size_t k = 0;
  std::int64_t candidates = 0;  // paper Table 2 "C"
  std::int64_t large = 0;       // paper Table 2 "L"
};

struct AprioriResult {
  std::vector<PassInfo> passes;
  /// Every large itemset (all sizes) with its absolute support count.
  std::unordered_map<Itemset, std::uint32_t, ItemsetHash> support;
  /// Large itemsets grouped by size; index 0 holds the 1-itemsets.
  std::vector<std::vector<Itemset>> large_by_k;
  std::int64_t num_transactions = 0;

  /// Minimum-support threshold used (absolute count).
  std::uint32_t min_count = 0;
};

struct AprioriOptions {
  /// Hash lines for the candidate table (paper: 800,000 total).
  std::size_t hash_lines = 1 << 16;
  std::size_t max_k = Itemset::kMaxK;
};

/// Mine all large itemsets with support >= minsup (fraction of |db|).
AprioriResult apriori(const TransactionDb& db, double minsup,
                      const AprioriOptions& options = {});

}  // namespace rms::mining
