#include "mining/candidate_gen.hpp"

namespace rms::mining {

std::vector<Itemset> generate_candidates(
    const std::vector<Itemset>& large_prev) {
  std::vector<Itemset> out;
  for_each_candidate(large_prev, [&](const Itemset& c) { out.push_back(c); });
  return out;
}

std::int64_t count_candidates(const std::vector<Itemset>& large_prev) {
  std::int64_t n = 0;
  for_each_candidate(large_prev, [&](const Itemset&) { ++n; });
  return n;
}

}  // namespace rms::mining
