#include "mining/rules.hpp"

#include <algorithm>
#include <cstdio>

namespace rms::mining {

std::string Rule::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  (sup %.4f, conf %.3f)", support,
                confidence);
  return antecedent.to_string() + " => " + consequent.to_string() + buf;
}

std::vector<Rule> derive_rules(const AprioriResult& mined,
                               double min_confidence) {
  RMS_CHECK(min_confidence > 0.0 && min_confidence <= 1.0);
  std::vector<Rule> rules;
  const double n = static_cast<double>(mined.num_transactions);

  for (std::size_t k = 2; k <= mined.large_by_k.size(); ++k) {
    for (const Itemset& z : mined.large_by_k[k - 1]) {
      const auto z_it = mined.support.find(z);
      RMS_CHECK(z_it != mined.support.end());
      const double z_count = z_it->second;

      // Every non-empty proper subset is an antecedent candidate; subsets of
      // a large itemset are large, so their supports are already known.
      const auto mask_limit = static_cast<std::uint32_t>(1u << z.size());
      for (std::uint32_t mask = 1; mask + 1 < mask_limit; ++mask) {
        Itemset ante;
        Itemset cons;
        for (std::size_t i = 0; i < z.size(); ++i) {
          if ((mask >> i) & 1u) {
            ante.push_back(z[i]);
          } else {
            cons.push_back(z[i]);
          }
        }
        const auto a_it = mined.support.find(ante);
        RMS_CHECK_MSG(a_it != mined.support.end(),
                      "subset of a large itemset must be large");
        const double conf = z_count / static_cast<double>(a_it->second);
        if (conf >= min_confidence) {
          rules.push_back(Rule{ante, cons, z_count / n, conf});
        }
      }
    }
  }

  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.support != b.support) return a.support > b.support;
    if (a.antecedent < b.antecedent) return true;
    if (b.antecedent < a.antecedent) return false;
    return a.consequent < b.consequent;
  });
  return rules;
}

}  // namespace rms::mining
