// Transaction database: the basket data each cluster node scans from its
// local disk.
//
// Stored as a flat item array plus offsets (cache-friendly for the scan-heavy
// counting passes). `approx_bytes` mirrors the paper's accounting ("the size
// of the transaction data is about 80 Mbytes in total" for 1 M transactions),
// which drives the simulated 64 KB-block disk reads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "mining/itemset.hpp"

namespace rms::mining {

class TransactionDb {
 public:
  /// Append one transaction; `items` must be sorted and duplicate-free.
  void add(std::span<const Item> items);

  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Items of transaction `i` (sorted ascending).
  std::span<const Item> tx(std::size_t i) const {
    RMS_CHECK(i < size());
    return {items_.data() + offsets_[i],
            offsets_[i + 1] - offsets_[i]};
  }

  std::size_t total_items() const { return items_.size(); }

  /// On-disk footprint used by the disk model: per-transaction header plus
  /// 4 bytes per item id (matches the paper's ~80 B/transaction for T10).
  std::int64_t approx_bytes() const {
    return static_cast<std::int64_t>(size()) * kTxHeaderBytes +
           static_cast<std::int64_t>(items_.size()) * 4;
  }

  /// Split round-robin into `parts` databases (the paper divides the
  /// generated file across node disks).
  std::vector<TransactionDb> partition(std::size_t parts) const;

  static constexpr std::int64_t kTxHeaderBytes = 40;

 private:
  std::vector<Item> items_;
  std::vector<std::size_t> offsets_ = {0};
};

}  // namespace rms::mining
