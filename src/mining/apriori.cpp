#include "mining/apriori.hpp"

#include <algorithm>

namespace rms::mining {

AprioriResult apriori(const TransactionDb& db, double minsup,
                      const AprioriOptions& options) {
  RMS_CHECK(minsup > 0.0 && minsup <= 1.0);
  RMS_CHECK(!db.empty());

  AprioriResult res;
  res.num_transactions = static_cast<std::int64_t>(db.size());
  res.min_count = static_cast<std::uint32_t>(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(minsup * static_cast<double>(db.size()) +
                                   0.5)));

  // ---- Pass 1: item supports by direct array count. ----
  Item max_item = 0;
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (Item it : db.tx(t)) max_item = std::max(max_item, it);
  }
  std::vector<std::uint32_t> item_count(static_cast<std::size_t>(max_item) + 1,
                                        0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (Item it : db.tx(t)) ++item_count[it];
  }

  std::vector<Itemset> large_prev;
  std::vector<char> is_large1(item_count.size(), 0);
  for (Item it = 0; it < item_count.size(); ++it) {
    if (item_count[it] >= res.min_count) {
      Itemset s;
      s.push_back(it);
      large_prev.push_back(s);
      is_large1[it] = 1;
      res.support.emplace(s, item_count[it]);
    }
  }
  res.passes.push_back(PassInfo{
      1, static_cast<std::int64_t>(item_count.size()),
      static_cast<std::int64_t>(large_prev.size())});
  res.large_by_k.push_back(large_prev);

  const auto keep = [&](Item it) {
    return it < is_large1.size() && is_large1[it] != 0;
  };

  // ---- Passes k >= 2. ----
  for (std::size_t k = 2; k <= options.max_k && !large_prev.empty(); ++k) {
    HashLineTable table(options.hash_lines);
    for_each_candidate(large_prev, [&](const Itemset& c) { table.insert(c); });
    if (table.size() == 0) break;

    for (std::size_t t = 0; t < db.size(); ++t) {
      for_each_k_subset(db.tx(t), k, keep,
                        [&](const Itemset& s) { (void)table.probe(s); });
    }

    std::vector<Itemset> large_k;
    table.for_each([&](const CountedItemset& e) {
      if (e.count >= res.min_count) {
        large_k.push_back(e.items);
        res.support.emplace(e.items, e.count);
      }
    });
    std::sort(large_k.begin(), large_k.end());

    res.passes.push_back(PassInfo{k,
                                  static_cast<std::int64_t>(table.size()),
                                  static_cast<std::int64_t>(large_k.size())});
    res.large_by_k.push_back(large_k);
    large_prev = std::move(large_k);
  }

  return res;
}

}  // namespace rms::mining
