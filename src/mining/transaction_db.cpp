#include "mining/transaction_db.hpp"

namespace rms::mining {

void TransactionDb::add(std::span<const Item> items) {
  for (std::size_t i = 1; i < items.size(); ++i) {
    RMS_CHECK_MSG(items[i - 1] < items[i],
                  "transaction items must be sorted and unique");
  }
  items_.insert(items_.end(), items.begin(), items.end());
  offsets_.push_back(items_.size());
}

std::vector<TransactionDb> TransactionDb::partition(std::size_t parts) const {
  RMS_CHECK(parts > 0);
  std::vector<TransactionDb> out(parts);
  for (std::size_t i = 0; i < size(); ++i) {
    out[i % parts].add(tx(i));
  }
  return out;
}

}  // namespace rms::mining
