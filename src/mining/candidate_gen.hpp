// Apriori candidate generation: join + prune (Agrawal–Srikant).
//
// Candidate k-itemsets are built by joining large (k-1)-itemsets that share
// their first k-2 items, then pruning any candidate with a non-large
// (k-1)-subset. `for_each_candidate` streams candidates to a callback so HPA
// nodes can filter by owner without materializing all C(|L1|,2) pairs
// (4.87 M in the paper's pass 2).
#pragma once

#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "mining/itemset.hpp"

namespace rms::mining {

namespace detail {

inline bool share_prefix(const Itemset& a, const Itemset& b) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace detail

/// Stream candidate k-itemsets generated from sorted large (k-1)-itemsets.
/// `large_prev` must be sorted ascending and duplicate-free; all members must
/// have equal size k-1 >= 1.
template <typename Fn>
void for_each_candidate(const std::vector<Itemset>& large_prev, Fn&& fn) {
  if (large_prev.empty()) return;
  const std::size_t k_prev = large_prev[0].size();

  // Prune lookup. For k = 2 every 1-subset is large by construction.
  std::unordered_set<Itemset, ItemsetHash> prev_set;
  if (k_prev >= 2) {
    prev_set.reserve(large_prev.size() * 2);
    for (const Itemset& s : large_prev) {
      RMS_CHECK(s.size() == k_prev);
      prev_set.insert(s);
    }
  }

  // Join step: pairs (i, j), i < j, sharing the first k-2 items. Since the
  // input is sorted, each prefix group is a contiguous run.
  for (std::size_t i = 0; i < large_prev.size(); ++i) {
    for (std::size_t j = i + 1; j < large_prev.size(); ++j) {
      if (!detail::share_prefix(large_prev[i], large_prev[j])) break;
      Itemset cand = large_prev[i].with(large_prev[j].back());

      // Prune step: every (k-1)-subset must be large. Subsets obtained by
      // dropping the last two positions equal the join parents; check the
      // rest.
      bool pruned = false;
      if (k_prev >= 2) {
        for (std::size_t d = 0; d + 2 < cand.size(); ++d) {
          if (prev_set.find(cand.without(d)) == prev_set.end()) {
            pruned = true;
            break;
          }
        }
      }
      if (!pruned) fn(cand);
    }
  }
}

/// Materialized candidate list (convenience for the sequential miner).
std::vector<Itemset> generate_candidates(const std::vector<Itemset>& large_prev);

/// Number of candidates without materializing them.
std::int64_t count_candidates(const std::vector<Itemset>& large_prev);

}  // namespace rms::mining
