#include "mining/generator.hpp"

#include <algorithm>

namespace rms::mining {

QuestParams QuestParams::paper_experiment(double scale) {
  QuestParams p;
  p.num_transactions =
      static_cast<std::int64_t>(1'000'000 * scale + 0.5);
  p.num_items = 5'000;
  p.avg_transaction_size = 10.0;
  p.avg_pattern_size = 4.0;
  p.num_patterns = 2'000;
  p.seed = 20000501;
  return p;
}

QuestParams QuestParams::paper_table2(double scale) {
  QuestParams p;
  p.num_transactions =
      static_cast<std::int64_t>(10'000'000 * scale + 0.5);
  p.num_items = 5'000;
  p.avg_transaction_size = 10.0;
  p.avg_pattern_size = 4.0;
  p.num_patterns = 2'000;
  p.seed = 19970301;
  return p;
}

QuestGenerator::QuestGenerator(QuestParams params)
    : params_(params), rng_(params.seed, 0x9e3779b97f4a7c15ULL) {
  RMS_CHECK(params_.num_items >= 2);
  RMS_CHECK(params_.num_patterns >= 1);
  RMS_CHECK(params_.avg_transaction_size >= 1.0);
  RMS_CHECK(params_.avg_pattern_size >= 1.0);
  build_patterns();
}

void QuestGenerator::build_patterns() {
  patterns_.resize(static_cast<std::size_t>(params_.num_patterns));
  std::vector<Item> prev;
  double total_weight = 0.0;
  cumulative_weight_.reserve(patterns_.size());
  for (auto& pat : patterns_) {
    // Pattern length: Poisson around the mean, at least 1.
    std::size_t len = std::max<std::uint32_t>(
        1, rng_.poisson(params_.avg_pattern_size));
    len = std::min<std::size_t>(len, Itemset::kMaxK);

    // Share an exponentially-distributed fraction of items with the previous
    // pattern (customer behaviours overlap), fill the rest uniformly.
    std::size_t shared = 0;
    if (!prev.empty()) {
      const double frac =
          std::min(1.0, rng_.exponential(params_.correlation));
      shared = std::min(prev.size(),
                        static_cast<std::size_t>(frac * static_cast<double>(len)));
    }
    std::vector<Item> items;
    items.reserve(len);
    for (std::size_t i = 0; i < shared; ++i) {
      items.push_back(prev[rng_.below(static_cast<std::uint32_t>(prev.size()))]);
    }
    while (items.size() < len) {
      items.push_back(rng_.below(params_.num_items));
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    pat.items = items;
    prev = items;

    // Corruption level ~ clipped normal(mean, 0.1).
    pat.corruption = std::clamp(
        params_.corruption_mean + 0.1 * rng_.normal(), 0.0, 1.0);

    // Pattern weight ~ exponential(1), later normalized by roulette lookup.
    total_weight += rng_.exponential(1.0);
    cumulative_weight_.push_back(total_weight);
  }
}

std::size_t QuestGenerator::pick_pattern() {
  const double r = rng_.uniform01() * cumulative_weight_.back();
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), r);
  return static_cast<std::size_t>(it - cumulative_weight_.begin());
}

std::vector<Item> QuestGenerator::next_transaction() {
  const std::size_t target = std::max<std::uint32_t>(
      1, rng_.poisson(params_.avg_transaction_size));

  std::vector<Item> tx;
  tx.reserve(target + Itemset::kMaxK);

  // A pattern deferred from the previous transaction goes in first.
  if (!carry_.empty()) {
    tx.insert(tx.end(), carry_.begin(), carry_.end());
    carry_.clear();
  }

  int stall_guard = 64;  // pathological corruption could loop forever
  while (tx.size() < target && stall_guard-- > 0) {
    const Pattern& pat = patterns_[pick_pattern()];
    std::vector<Item> picked;
    picked.reserve(pat.items.size());
    for (Item item : pat.items) {
      if (!rng_.bernoulli(pat.corruption)) picked.push_back(item);
    }
    if (picked.empty()) continue;
    if (tx.size() + picked.size() > target && !tx.empty()) {
      // Oversized: half the time the pattern still goes in, half the time it
      // is deferred to the next transaction (Agrawal–Srikant).
      if (rng_.bernoulli(0.5)) {
        tx.insert(tx.end(), picked.begin(), picked.end());
      } else {
        carry_ = std::move(picked);
      }
      break;
    }
    tx.insert(tx.end(), picked.begin(), picked.end());
  }
  if (tx.empty()) {
    tx.push_back(rng_.below(params_.num_items));
  }
  std::sort(tx.begin(), tx.end());
  tx.erase(std::unique(tx.begin(), tx.end()), tx.end());
  return tx;
}

TransactionDb QuestGenerator::generate() {
  TransactionDb db;
  for (std::int64_t i = 0; i < params_.num_transactions; ++i) {
    const std::vector<Item> tx = next_transaction();
    db.add(tx);
  }
  return db;
}

}  // namespace rms::mining
