// HashLineTable: the paper's candidate-itemset structure.
//
// "During the execution of HPA, itemsets are kept in memory as linked
// structures that are classified by a hash function ... all itemsets having
// the same hash value are assigned to the same hash line" (§3.3). A hash
// line is therefore both the lookup bucket and — crucially — the unit of
// swapping in the remote-memory system (§4.3).
//
// This class is the *plain* (memory-resident) table used by the sequential
// miner; core::HashLineStore wraps the same line layout with the memory
// limit, LRU and swap policies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "mining/itemset.hpp"

namespace rms::mining {

/// One hash line: the itemsets sharing a hash value, with their counters.
using HashLine = std::vector<CountedItemset>;

class HashLineTable {
 public:
  explicit HashLineTable(std::size_t num_lines) : lines_(num_lines) {
    RMS_CHECK(num_lines > 0);
  }

  std::size_t num_lines() const { return lines_.size(); }

  std::size_t line_of(const Itemset& s) const {
    return static_cast<std::size_t>(s.hash() % lines_.size());
  }

  /// Register a candidate (count starts at `count`). Duplicate inserts are
  /// a logic error upstream and are checked.
  void insert(const Itemset& s, std::uint32_t count = 0) {
    HashLine& line = lines_[line_of(s)];
    for (const CountedItemset& e : line) {
      RMS_CHECK_MSG(!(e.items == s), "duplicate candidate insert");
    }
    line.push_back(CountedItemset{s, count});
    ++size_;
  }

  /// Support-count probe: if `s` is a registered candidate, increment its
  /// counter and return true.
  bool probe(const Itemset& s) {
    for (CountedItemset& e : lines_[line_of(s)]) {
      if (e.items == s) {
        ++e.count;
        return true;
      }
    }
    return false;
  }

  /// Current count of a candidate, or -1 if not registered.
  std::int64_t count_of(const Itemset& s) const {
    for (const CountedItemset& e : lines_[line_of(s)]) {
      if (e.items == s) return e.count;
    }
    return -1;
  }

  const HashLine& line(std::size_t i) const {
    RMS_CHECK(i < lines_.size());
    return lines_[i];
  }

  /// Total registered candidates.
  std::size_t size() const { return size_; }

  /// Paper-style accounted memory (24 bytes per candidate itemset).
  std::int64_t accounted_bytes() const {
    return static_cast<std::int64_t>(size_) * Itemset::kAccountedBytes;
  }

  /// Visit every (itemset, count).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const HashLine& line : lines_) {
      for (const CountedItemset& e : line) fn(e);
    }
  }

 private:
  std::vector<HashLine> lines_;
  std::size_t size_ = 0;
};

}  // namespace rms::mining
