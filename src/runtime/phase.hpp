// PhaseRegistry: the dynamic phase catalog of one workload.
//
// A workload declares its per-pass phases by name (HPA: build, count,
// determine; hash_join: build, probe) instead of the fixed three-phase enum
// the runner used to hard-code. Phase ids are dense indices in declaration
// order — which is also execution order, since PhasedRunner runs phases in
// registry order — so per-pass timings and reports can be stored in plain
// vectors indexed by PhaseId.
//
// The registry is workload-local. TraceRecorder keeps its own process-wide
// name table (TraceRecorder::register_phase) so traces from different
// workloads sharing one recorder cannot collide; PhasedRunner maps local
// ids to recorder ids when it emits phase spans.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace rms::runtime {

/// Dense workload-local phase index (0 = first declared phase).
using PhaseId = std::size_t;

class PhaseRegistry {
 public:
  /// Declare the next phase. Names must be unique within one workload.
  PhaseId add(std::string name) {
    for (const std::string& existing : names_) {
      RMS_CHECK_MSG(existing != name, "duplicate phase name");
    }
    names_.push_back(std::move(name));
    return names_.size() - 1;
  }

  std::size_t size() const { return names_.size(); }

  const std::string& name(PhaseId id) const {
    RMS_CHECK(id < names_.size());
    return names_[id];
  }

  /// All phase names in declaration (== execution) order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace rms::runtime
