// Workload catalog: the named workloads a bench binary can select with
// --workload. Kept as a static in-tree table (the workloads are all
// library code; dynamic registration across translation units would be
// dropped by the archiver for unreferenced objects).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace rms::runtime {

struct WorkloadInfo {
  std::string name;
  std::string description;
};

/// Every selectable workload, in presentation order.
const std::vector<WorkloadInfo>& workload_catalog();

/// The catalog entry for `name`, or nullopt (caller renders the friendly
/// error; see workload_names()).
std::optional<WorkloadInfo> find_workload(const std::string& name);

/// "hpa | hash_join | hash_aggregate" — for usage/error strings.
std::string workload_names();

}  // namespace rms::runtime
