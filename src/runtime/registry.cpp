#include "runtime/registry.hpp"

namespace rms::runtime {

const std::vector<WorkloadInfo>& workload_catalog() {
  static const std::vector<WorkloadInfo> kCatalog = {
      {"hpa",
       "Hash Partitioned Apriori mining over the transaction DB "
       "(src/hpa; the paper's workload)"},
      {"hash_join",
       "distributed hash join: partitioned build + streamed probe "
       "(src/workloads/hash_join)"},
      {"hash_aggregate",
       "remote-memory-backed group-by over the transaction DB "
       "(src/workloads/hash_aggregate)"},
  };
  return kCatalog;
}

std::optional<WorkloadInfo> find_workload(const std::string& name) {
  for (const WorkloadInfo& info : workload_catalog()) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

std::string workload_names() {
  std::string out;
  for (const WorkloadInfo& info : workload_catalog()) {
    if (!out.empty()) out += " | ";
    out += info.name;
  }
  return out;
}

}  // namespace rms::runtime
