#include "runtime/runner.hpp"

#include "common/check.hpp"

namespace rms::runtime {

PhasedRunner::PhasedRunner(sim::Simulation& sim, Workload& workload,
                           const RunnerConfig& cfg)
    : sim_(sim), workload_(workload), cfg_(cfg) {
  RMS_CHECK(cfg_.participants >= 1);
  RMS_CHECK_MSG(!workload_.has_prologue() || cfg_.first_pass >= 1,
                "a prologue needs first_pass >= 1 to number itself");
  workload_.register_phases(phases_);
  RMS_CHECK_MSG(phases_.size() > 0, "a workload must register phases");
  if (cfg_.trace != nullptr) {
    trace_phase_ids_.reserve(phases_.size());
    for (PhaseId p = 0; p < phases_.size(); ++p) {
      trace_phase_ids_.push_back(cfg_.trace->register_phase(phases_.name(p)));
    }
  }
  RMS_CHECK_MSG(cfg_.tracks.empty() || cfg_.tracks.size() == cfg_.participants,
                "participant track mapping must cover every participant");
  phase_start_.assign(phases_.size(), 0);
  phase_end_.assign(phases_.size(), 0);
  barrier_ = std::make_unique<sim::Barrier>(sim_, cfg_.participants);
}

void PhasedRunner::start() {
  for (std::size_t i = 0; i < cfg_.participants; ++i) {
    sim_.spawn(participant(i));
  }
  sim_.spawn(coordinator());
}

void PhasedRunner::barrier_instant(std::size_t idx, std::size_t pass) {
  // A kBarrier instant on this participant's node track as it arrives at a
  // phase barrier — the skew between the first and last arrival is the
  // load-imbalance the paper's Table 3/4 discussion is about.
  if (cfg_.trace != nullptr) {
    const std::int32_t track = cfg_.tracks.empty()
                                   ? static_cast<std::int32_t>(idx)
                                   : cfg_.tracks[idx];
    cfg_.trace->instant(obs::EventKind::kBarrier, track, sim_.now(),
                        static_cast<std::int64_t>(pass));
  }
}

void PhasedRunner::record_pass(std::size_t pass) {
  PassTiming t;
  t.pass = pass;
  t.start = pass_start_;
  t.end = sim_.now();
  t.phase_start = phase_start_;
  t.phase_end = phase_end_;
  if (cfg_.trace != nullptr) {
    const auto k = static_cast<std::int64_t>(pass);
    const auto track = obs::TraceRecorder::kPhaseTrack;
    cfg_.trace->span(obs::EventKind::kPass, track, t.start, t.end, k);
    for (PhaseId p = 0; p < phases_.size(); ++p) {
      cfg_.trace->span(obs::EventKind::kPhase, track, phase_start_[p],
                       phase_end_[p], k, trace_phase_ids_[p]);
    }
  }
  workload_.end_pass(t);
  passes_.push_back(std::move(t));
}

sim::Process PhasedRunner::participant(std::size_t idx) {
  if (cfg_.warmup > 0) co_await sim_.timeout(cfg_.warmup);
  co_await barrier_->arrive();

  if (workload_.has_prologue()) {
    if (idx == 0) pass_start_ = sim_.now();
    co_await workload_.prologue(idx);
    co_await barrier_->arrive();
    if (idx == 0) {
      PassTiming t;
      t.pass = cfg_.first_pass - 1;
      t.start = pass_start_;
      t.end = sim_.now();
      if (cfg_.trace != nullptr) {
        cfg_.trace->span(obs::EventKind::kPass,
                         obs::TraceRecorder::kPhaseTrack, t.start, t.end,
                         static_cast<std::int64_t>(t.pass));
      }
      workload_.end_prologue(t);
      passes_.push_back(std::move(t));
    }
  }

  for (std::size_t pass = cfg_.first_pass; pass <= cfg_.max_pass; ++pass) {
    // Participant 0 maintains the shared state this reads; every
    // participant sees the same answer (Workload contract).
    if (workload_.done(pass)) break;

    co_await barrier_->arrive();
    if (idx == 0) {
      pass_start_ = sim_.now();
      workload_.begin_pass(pass);
    }
    co_await barrier_->arrive();
    if (!workload_.proceed(pass)) {
      if (idx == 0) workload_.abort_pass(pass);
      co_await barrier_->arrive();
      break;
    }

    for (PhaseId p = 0; p < phases_.size(); ++p) {
      if (idx == 0) phase_start_[p] = sim_.now();
      co_await workload_.run_phase(idx, p, pass);
      barrier_instant(idx, pass);
      co_await barrier_->arrive();
      if (idx == 0) phase_end_[p] = sim_.now();
      if (cfg_.validate_invariants) workload_.check_invariants(idx);
    }

    if (idx == 0) record_pass(pass);
    co_await barrier_->arrive();
    if (cfg_.validate_invariants) workload_.check_invariants(idx);
    workload_.end_pass_local(idx, pass);
  }

  co_await barrier_->arrive();
  if (idx == 0) {
    total_time_ = sim_.now();
    finished_ = true;
  }
}

sim::Process PhasedRunner::coordinator() {
  // Poll cheaply for completion, then halt the world (monitors and servers
  // run forever by design) — or, for a scheduled job sharing its simulation
  // with other tenants, hand completion to the scheduler instead.
  while (!finished_) {
    co_await sim_.timeout(cfg_.poll_interval);
  }
  if (cfg_.on_finished) {
    cfg_.on_finished();
  } else {
    sim_.request_stop();
  }
}

}  // namespace rms::runtime
