// PhasedRunner: the generic SPMD pass/phase orchestrator.
//
// Owns everything that used to be duplicated between hpa::Runner::app_main
// and examples/hash_join.cpp's hand-rolled loop: the barrier sequence, the
// per-phase timing stamps (barrier release to barrier release, so phase
// times tile the pass exactly), kPass/kPhase trace spans on the phase track,
// kBarrier arrival instants on each participant's node track, invariant
// hooks, and the completion coordinator that halts the simulation once the
// last barrier releases (memory servers and monitors run forever by
// design).
//
// The runner does NOT own world construction — clusters, stores, brokers,
// servers, and fault plans are workload-specific and stay with the
// workload's run_*() entry point. The caller spawns its daemons, calls
// start(), then sim.run().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "obs/trace.hpp"
#include "runtime/phase.hpp"
#include "runtime/workload.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace rms::runtime {

struct RunnerConfig {
  /// SPMD participants; participant i's trace track is node id i (or
  /// tracks[i] when a mapping is set).
  std::size_t participants = 1;
  /// Participant -> trace-track (node id) mapping for runs whose
  /// participants do not execute on nodes 0..N-1 (scheduled jobs on slot
  /// nodes). Empty: participant i uses track i, the single-job default.
  std::vector<std::int32_t> tracks;
  /// First phased pass number (HPA: 2 — pass 1 is the prologue). The
  /// prologue, when the workload has one, is numbered first_pass - 1.
  std::size_t first_pass = 1;
  /// Last pass number to attempt (inclusive); done() can stop earlier.
  std::size_t max_pass = 1;
  /// Call Workload::check_invariants after every phase/report barrier.
  bool validate_invariants = false;
  /// Timeout before the first barrier (HPA: 10 ms so the first
  /// availability broadcasts land before any swap decision).
  Time warmup = 0;
  /// Completion poll interval of the coordinator process.
  Time poll_interval = msec(100);
  /// Optional event sink for pass/phase spans and barrier instants.
  obs::TraceRecorder* trace = nullptr;
  /// Completion hook. Unset (the single-job default): the coordinator
  /// halts the simulation once the final barrier releases. Set (scheduled
  /// jobs sharing one simulation): the coordinator calls it instead — the
  /// world must keep running for the other tenants.
  std::function<void()> on_finished;
};

class PhasedRunner {
 public:
  /// Registers the workload's phases (and their trace names when a
  /// recorder is configured). The workload and config must outlive run().
  PhasedRunner(sim::Simulation& sim, Workload& workload,
               const RunnerConfig& cfg);

  PhasedRunner(const PhasedRunner&) = delete;
  PhasedRunner& operator=(const PhasedRunner&) = delete;

  /// Spawn the participant processes and the coordinator. The caller still
  /// drives sim.run() (after spawning its own daemons).
  void start();

  /// True once every participant passed the final barrier (check after
  /// sim.run() returns: false means the simulation drained early).
  bool finished() const { return finished_; }
  /// Virtual completion time (the final barrier's release).
  Time total_time() const { return total_time_; }
  /// Barrier-aligned timing of every completed pass, prologue included.
  const std::vector<PassTiming>& passes() const { return passes_; }
  const PhaseRegistry& phases() const { return phases_; }

 private:
  sim::Process participant(std::size_t idx);
  sim::Process coordinator();
  void record_pass(std::size_t pass);
  void barrier_instant(std::size_t idx, std::size_t pass);

  sim::Simulation& sim_;
  Workload& workload_;
  const RunnerConfig cfg_;
  PhaseRegistry phases_;
  /// TraceRecorder phase ids per local PhaseId (the recorder's name table
  /// is process-wide; ids can differ from the workload-local ones).
  std::vector<std::int64_t> trace_phase_ids_;
  std::unique_ptr<sim::Barrier> barrier_;

  // Participant-0 timing stamps for the pass in flight.
  Time pass_start_ = 0;
  std::vector<Time> phase_start_;
  std::vector<Time> phase_end_;

  std::vector<PassTiming> passes_;
  Time total_time_ = 0;
  bool finished_ = false;
};

}  // namespace rms::runtime
