// CpuCharger: chunked CPU-time charging for per-operation cost loops.
//
// Charging compute() per probe/parse/generate would make the event count
// proportional to the dataset; accumulating logical operations and flushing
// one compute await per `chunk` operations keeps it proportional to
// messages/faults while preserving the total charged time exactly.
// It lives in runtime/ because every phased workload's kernel loops charge
// CPU this way (HPA scan/probe, hash_join build/probe, hash_aggregate scan).
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "sim/task.hpp"

namespace rms::runtime {

/// Charge CPU in chunks: accumulates logical operations and converts them
/// into one `compute` await per `chunk` operations, keeping the event count
/// proportional to messages/faults instead of probes.
class CpuCharger {
 public:
  CpuCharger(cluster::Node& node, Time per_op, std::int64_t chunk = 8192)
      : node_(node), per_op_(per_op), chunk_(chunk) {}

  sim::Task<> add(std::int64_t ops) {
    pending_ += ops;
    if (pending_ >= chunk_) co_await flush();
  }

  sim::Task<> flush() {
    if (pending_ > 0) {
      const Time t = per_op_ * pending_;
      pending_ = 0;
      co_await node_.compute(t);
    }
  }

 private:
  cluster::Node& node_;
  Time per_op_;
  std::int64_t chunk_;
  std::int64_t pending_ = 0;
};

}  // namespace rms::runtime
