// Workload: what one SPMD phased algorithm must provide to PhasedRunner.
//
// The paper's HPA miner, the hash-join example, and the hash_aggregate
// group-by all share one skeleton: N participants run passes of named
// phases in lockstep, separated by barriers, over remote-memory-backed
// partitioned state, until a convergence predicate fires. The skeleton —
// barriers, phase timing, trace spans/instants, invariant hooks, the
// completion coordinator — lives in PhasedRunner; the algorithm-specific
// bodies live behind this interface.
//
// Hook order for one pass (every hook below runs at a barrier-aligned
// instant; "node 0" hooks run on participant 0 only):
//
//   done(pass)            all    convergence check before the pass starts
//   --- barrier ---
//   begin_pass(pass)      node 0 serial setup (e.g. candidate generation)
//   --- barrier ---
//   proceed(pass)         all    false => abort_pass(pass) on node 0,
//                                one barrier, and the run ends
//   for each registered phase p:
//     run_phase(i, p, k)  all    the phase body (may spawn/await)
//     --- barrier ---             (instant traced per participant)
//     check_invariants(i) all    only when RunnerConfig.validate_invariants
//   end_pass(timing)      node 0 assemble the pass report
//   --- barrier ---
//   check_invariants(i)   all
//   end_pass_local(i, k)  all    merge per-node stats, tear down pass state
//
// Purity contract: every hook except prologue() and run_phase() must be
// virtual-time-pure — no awaits, no compute charges, no randomness that
// differs across participants — because the runner calls them between
// barrier release and the next await, where any charge would perturb the
// lockstep schedule. The HPA port's bit-identical fig4 artifact is the
// regression that enforces this.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"
#include "runtime/phase.hpp"
#include "sim/task.hpp"

namespace rms::runtime {

/// Barrier-aligned timing of one pass, assembled by the runner and handed
/// to Workload::end_pass on participant 0.
struct PassTiming {
  std::size_t pass = 0;
  Time start = 0;
  Time end = 0;
  /// Per-phase windows indexed by PhaseId: start is the previous barrier's
  /// release, end is this phase's barrier release. Empty for the prologue.
  std::vector<Time> phase_start;
  std::vector<Time> phase_end;

  Time duration() const { return end - start; }
  Time phase_time(PhaseId p) const {
    return p < phase_end.size() ? phase_end[p] - phase_start[p] : 0;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Declare the per-pass phases, in execution order. Called once before
  /// any participant runs.
  virtual void register_phases(PhaseRegistry& phases) = 0;

  /// Whether the run opens with a prologue pass (HPA's pass 1: a phase-less
  /// pass that runs before the phased loop, numbered first_pass - 1).
  virtual bool has_prologue() const { return false; }
  /// One participant's prologue body.
  virtual sim::Task<> prologue(std::size_t idx) {
    (void)idx;
    co_return;
  }
  /// Participant 0, after the prologue barrier: record the prologue pass.
  virtual void end_prologue(const PassTiming& timing) { (void)timing; }

  /// Convergence: true when pass `pass` should not run. Checked by every
  /// participant against shared state — must agree across participants.
  virtual bool done(std::size_t pass) const = 0;

  /// Participant 0, between the pass's first two barriers: serial pass
  /// setup against the canonical shared state.
  virtual void begin_pass(std::size_t pass) { (void)pass; }

  /// After the setup barrier: false aborts the whole run without running
  /// this pass's phases. Must agree across participants.
  virtual bool proceed(std::size_t pass) const {
    (void)pass;
    return true;
  }
  /// Participant 0, when proceed() returned false: undo begin_pass state.
  virtual void abort_pass(std::size_t pass) { (void)pass; }

  /// One participant's body for one phase of one pass. May await and spawn
  /// sub-processes; the runner barriers after it returns.
  virtual sim::Task<> run_phase(std::size_t idx, PhaseId phase,
                                std::size_t pass) = 0;

  /// Per-participant invariant assertions (RunnerConfig.validate_invariants
  /// gates the calls). Must be pure: no virtual-time effects.
  virtual void check_invariants(std::size_t idx) { (void)idx; }

  /// Participant 0, after the last phase barrier: assemble the pass report
  /// from the barrier-aligned timing.
  virtual void end_pass(const PassTiming& timing) { (void)timing; }

  /// Every participant, after the report barrier: merge per-node stats and
  /// tear down per-pass state.
  virtual void end_pass_local(std::size_t idx, std::size_t pass) {
    (void)idx;
    (void)pass;
  }
};

}  // namespace rms::runtime
