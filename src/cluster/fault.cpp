#include "cluster/fault.hpp"

namespace rms::cluster {

void FaultPlan::install(Cluster& cluster, CorruptionHooks hooks) const {
  sim::Simulation& sim = cluster.sim();
  for (const Crash& c : crashes) {
    RMS_CHECK(c.node >= 0 && static_cast<std::size_t>(c.node) < cluster.size());
    RMS_CHECK(c.at >= 0);
    RMS_CHECK(c.restart_at < 0 || c.restart_at > c.at);
    Node& victim = cluster.node(c.node);
    sim.call_at(c.at, [&victim] { victim.crash(); });
    if (c.restart_at >= 0) {
      sim.call_at(c.restart_at, [&victim] { victim.restart(); });
    }
  }
  const double base_loss = cluster.config().link.loss_rate;
  for (const LossBurst& b : loss_bursts) {
    RMS_CHECK(b.at >= 0 && b.duration > 0);
    RMS_CHECK(b.loss_rate >= 0.0 && b.loss_rate < 1.0);
    net::Network* net = &cluster.network();
    sim.call_at(b.at, [net, rate = b.loss_rate] { net->set_loss_rate(rate); });
    sim.call_at(b.at + b.duration,
                [net, base_loss] { net->set_loss_rate(base_loss); });
  }
  for (const Corruption& c : corruption) {
    RMS_CHECK(c.at >= 0 && c.duration > 0);
    RMS_CHECK(c.flip_rate >= 0.0 && c.flip_rate < 1.0);
    RMS_CHECK(c.rest_flip_rate >= 0.0 && c.rest_flip_rate < 1.0);
    if (c.flip_rate > 0.0) {
      net::Network* net = &cluster.network();
      sim.call_at(c.at, [net, rate = c.flip_rate, node = c.node] {
        net->set_corruption(rate, node);
      });
      sim.call_at(c.at + c.duration, [net] { net->set_corruption(0.0, -1); });
    }
    if (c.rest_flip_rate > 0.0 && hooks.at_rest) {
      sim.call_at(c.at, [fn = hooks.at_rest, node = c.node,
                         rate = c.rest_flip_rate] { fn(node, rate); });
    }
    if (c.scrub && hooks.scrub) {
      sim.call_at(c.at + c.duration,
                  [fn = hooks.scrub, node = c.node] { fn(node); });
    }
  }
}

}  // namespace rms::cluster
