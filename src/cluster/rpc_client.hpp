// RpcClient: the one place deadline/retry/suspicion-feedback policy for
// synchronous RPCs lives.
//
// Node::request_with_deadline is the mechanism (stable reply tag, exponential
// backoff, timeout sentinel); RpcClient is the policy layer every caller of
// that mechanism shares: the hash-line store's swap backends, the memory
// server's migration data pushes, and the failure detector's optional
// suspicion-confirmation pings. It owns the RpcOptions for its traffic class,
// accumulates retry/deadline-miss totals, tracks consecutive failures per
// peer, and fires an optional failure callback the moment a peer exhausts
// every attempt — which is how in-band timeout verdicts reach the failover
// layer without each call site re-implementing the bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "cluster/cluster.hpp"
#include "sim/task.hpp"

namespace rms::obs {
class TraceRecorder;
}

namespace rms::cluster {

/// Per-traffic-class RPC policy knobs.
struct RpcOptions {
  /// Per-attempt deadline; doubles on each retry (exponential backoff).
  Time deadline = msec(2000);
  /// Retries beyond the first attempt before the call is declared failed.
  int max_retries = 2;
  /// Optional trace sink (null: no tracing). Each call records a span plus
  /// retry/failure instants on the caller's node track.
  obs::TraceRecorder* trace = nullptr;
};

class RpcClient {
 public:
  RpcClient(Node& node, RpcOptions options)
      : node_(node), options_(options) {
    RMS_CHECK(options_.deadline > 0 && options_.max_retries >= 0);
    latency_ms_ = node_.stats().histogram_mut("rpc.latency_ms");
  }

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Invoked synchronously when a call to a peer exhausts every attempt
  /// (the peer is presumed crashed). Must not suspend; typically marks the
  /// peer suspect so later traffic short-circuits.
  void set_on_failure(std::function<void(NodeId)> fn) {
    on_failure_ = std::move(fn);
  }

  /// Issue one deadline-bounded call. On success the peer's consecutive
  /// failure count resets; on total failure it increments and the failure
  /// callback fires.
  sim::Task<RpcResult> call(net::Message msg);

  const RpcOptions& options() const { return options_; }
  Node& node() { return node_; }

  // ---- Introspection ----
  /// Attempts beyond the first, summed over every call.
  std::int64_t retries() const { return retries_; }
  /// Deadlines that expired (every attempt but a successful last one).
  std::int64_t deadline_misses() const { return deadline_misses_; }
  /// Calls that exhausted every attempt.
  std::int64_t failed_calls() const { return failed_calls_; }
  /// Back-to-back failed calls to `peer` since its last success.
  int consecutive_failures(NodeId peer) const {
    const auto it = consecutive_failures_.find(peer);
    return it == consecutive_failures_.end() ? 0 : it->second;
  }
  /// Calls issued but not yet returned (a metrics gauge: visible spikes
  /// during retry storms).
  std::int64_t in_flight() const { return in_flight_; }

 private:
  Node& node_;
  RpcOptions options_;
  std::function<void(NodeId)> on_failure_;
  std::int64_t retries_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t failed_calls_ = 0;
  std::int64_t in_flight_ = 0;
  Histogram* latency_ms_ = nullptr;  // node stats "rpc.latency_ms"
  std::unordered_map<NodeId, int> consecutive_failures_;
};

}  // namespace rms::cluster
