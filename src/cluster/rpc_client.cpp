#include "cluster/rpc_client.hpp"

#include "obs/trace.hpp"

namespace rms::cluster {

sim::Task<RpcResult> RpcClient::call(net::Message msg) {
  const NodeId peer = msg.dst;
  const Time started = node_.sim().now();
  ++in_flight_;
  RpcResult res = co_await node_.request_with_deadline(
      std::move(msg), options_.deadline, options_.max_retries);
  --in_flight_;
  retries_ += res.attempts - 1;
  // Every attempt but a successful last one expired its deadline.
  deadline_misses_ += res.ok() ? res.attempts - 1 : res.attempts;
  if (res.ok()) {
    consecutive_failures_.erase(peer);
  } else {
    ++failed_calls_;
    ++consecutive_failures_[peer];
    if (on_failure_) on_failure_(peer);
  }
  const Time ended = node_.sim().now();
  latency_ms_->add(to_millis(ended - started));
  if (options_.trace != nullptr) {
    options_.trace->span(obs::EventKind::kRpc, node_.id(), started, ended,
                         peer, res.attempts);
    if (res.attempts > 1) {
      options_.trace->instant(obs::EventKind::kRpcRetry, node_.id(), ended,
                              peer, res.attempts - 1);
    }
    if (!res.ok()) {
      options_.trace->instant(obs::EventKind::kRpcFailed, node_.id(), ended,
                              peer, res.attempts);
    }
  }
  co_return res;
}

}  // namespace rms::cluster
