#include "cluster/rpc_client.hpp"

namespace rms::cluster {

sim::Task<RpcResult> RpcClient::call(net::Message msg) {
  const NodeId peer = msg.dst;
  RpcResult res = co_await node_.request_with_deadline(
      std::move(msg), options_.deadline, options_.max_retries);
  retries_ += res.attempts - 1;
  // Every attempt but a successful last one expired its deadline.
  deadline_misses_ += res.ok() ? res.attempts - 1 : res.attempts;
  if (res.ok()) {
    consecutive_failures_.erase(peer);
  } else {
    ++failed_calls_;
    ++consecutive_failures_[peer];
    if (on_failure_) on_failure_(peer);
  }
  co_return res;
}

}  // namespace rms::cluster
