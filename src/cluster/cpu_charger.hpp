// CpuCharger: chunked CPU-time charging for per-operation cost loops.
//
// Charging compute() per probe/parse/generate would make the event count
// proportional to the dataset; accumulating logical operations and flushing
// one compute await per `chunk` operations keeps it proportional to
// messages/faults while preserving the total charged time exactly.
// Previously a private copy lived in hpa.cpp's anonymous namespace with
// sibling logic in examples/hash_join.cpp; this is the shared home.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "sim/task.hpp"

namespace rms::cluster {

/// Charge CPU in chunks: accumulates logical operations and converts them
/// into one `compute` await per `chunk` operations, keeping the event count
/// proportional to messages/faults instead of probes.
class CpuCharger {
 public:
  CpuCharger(Node& node, Time per_op, std::int64_t chunk = 8192)
      : node_(node), per_op_(per_op), chunk_(chunk) {}

  sim::Task<> add(std::int64_t ops) {
    pending_ += ops;
    if (pending_ >= chunk_) co_await flush();
  }

  sim::Task<> flush() {
    if (pending_ > 0) {
      const Time t = per_op_ * pending_;
      pending_ = 0;
      co_await node_.compute(t);
    }
  }

 private:
  Node& node_;
  Time per_op_;
  std::int64_t chunk_;
  std::int64_t pending_ = 0;
};

}  // namespace rms::cluster
