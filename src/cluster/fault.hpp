// Scripted fault injection for a cluster run.
//
// The migration experiment (§4.2, Figure 5) models *cooperative* withdrawal:
// a memory-available node keeps running but reports zero free memory. A
// FaultPlan expresses the failures the paper's protocol cannot see — a node
// that crash-stops at a virtual time (its stored lines vanish, its monitor
// goes silent, in-flight messages to it are dropped), optionally restarting
// empty later, plus transient message-loss bursts layered on the link's
// loss model (`LinkParams::atm155_lossy`).
//
// All injections are pure event-queue callbacks (`Simulation::call_at`), so
// a plan adds nothing to a run's timing beyond the faults themselves and
// every run stays deterministic.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"

namespace rms::cluster {

/// At-rest corruption callbacks a FaultPlan drives. The cluster layer knows
/// nothing about memory servers, so the application wires these up (hpa
/// iterates its MemoryServers): `at_rest(node, flip_rate)` flips bits in
/// the lines a node currently stores (node < 0: every memory node);
/// `scrub(node)` runs the server-side verify pass that drops mismatched
/// copies.
struct CorruptionHooks {
  std::function<void(NodeId, double)> at_rest;
  std::function<void(NodeId)> scrub;
};

struct FaultPlan {
  /// Crash-stop `node` at `at`; with `restart_at >= 0` the node rejoins
  /// (empty) at that time, otherwise it stays down for the whole run.
  struct Crash {
    NodeId node = -1;
    Time at = 0;
    Time restart_at = -1;
  };

  /// Between `at` and `at + duration` every transmission attempt is lost
  /// with probability `loss_rate`; afterwards the link's configured base
  /// loss rate is restored. Bursts must not overlap.
  struct LossBurst {
    Time at = 0;
    Time duration = 0;
    double loss_rate = 0.3;
  };

  /// Payload-corruption episode. Between `at` and `at + duration` every
  /// message touching `node` (src or dst; node < 0: every link) has each
  /// line payload corrupted with probability `flip_rate`. `rest_flip_rate`
  /// additionally flips bits in the lines stored *at rest* on `node` (or
  /// all memory nodes) once, at `at`; with `scrub` set the servers run a
  /// verify pass at `at + duration` that drops mismatched copies. Both
  /// at-rest actions need CorruptionHooks wired by the application layer.
  struct Corruption {
    Time at = 0;
    Time duration = 0;
    double flip_rate = 0.0;       // in-flight, per payload per delivery
    double rest_flip_rate = 0.0;  // at-rest, per stored line, once at `at`
    NodeId node = -1;             // -1: every link / every memory node
    bool scrub = false;
  };

  std::vector<Crash> crashes;
  std::vector<LossBurst> loss_bursts;
  std::vector<Corruption> corruption;

  /// Schedule every scripted fault on the cluster's clock. The cluster must
  /// outlive the simulation run (the callbacks hold references into it).
  /// `hooks` is only needed when corruption episodes use rest_flip_rate or
  /// scrub; the default ignores those actions.
  void install(Cluster& cluster, CorruptionHooks hooks = {}) const;
};

}  // namespace rms::cluster
