// Scripted fault injection for a cluster run.
//
// The migration experiment (§4.2, Figure 5) models *cooperative* withdrawal:
// a memory-available node keeps running but reports zero free memory. A
// FaultPlan expresses the failures the paper's protocol cannot see — a node
// that crash-stops at a virtual time (its stored lines vanish, its monitor
// goes silent, in-flight messages to it are dropped), optionally restarting
// empty later, plus transient message-loss bursts layered on the link's
// loss model (`LinkParams::atm155_lossy`).
//
// All injections are pure event-queue callbacks (`Simulation::call_at`), so
// a plan adds nothing to a run's timing beyond the faults themselves and
// every run stays deterministic.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"

namespace rms::cluster {

struct FaultPlan {
  /// Crash-stop `node` at `at`; with `restart_at >= 0` the node rejoins
  /// (empty) at that time, otherwise it stays down for the whole run.
  struct Crash {
    NodeId node = -1;
    Time at = 0;
    Time restart_at = -1;
  };

  /// Between `at` and `at + duration` every transmission attempt is lost
  /// with probability `loss_rate`; afterwards the link's configured base
  /// loss rate is restored. Bursts must not overlap.
  struct LossBurst {
    Time at = 0;
    Time duration = 0;
    double loss_rate = 0.3;
  };

  std::vector<Crash> crashes;
  std::vector<LossBurst> loss_bursts;

  /// Schedule every scripted fault on the cluster's clock. The cluster must
  /// outlive the simulation run (the callbacks hold references into it).
  void install(Cluster& cluster) const;
};

}  // namespace rms::cluster
