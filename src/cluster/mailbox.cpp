#include "cluster/mailbox.hpp"

// Header-only; anchors the TU in the library target.
